// Scoreboard: a wait-free, causally convergent leaderboard built from
// op-based PN-counters (internal/crdt) over the live goroutine
// transport — the cloud-service shape the paper's introduction
// motivates: every node accepts score updates with no coordination,
// reads are local and instantaneous, and once the network quiesces all
// nodes agree on every total (causal convergence in the eventual-
// consistency branch of Fig. 1).
//
// Run with: go run ./examples/scoreboard
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/paper-repro/ccbm/internal/crdt"
	"github.com/paper-repro/ccbm/internal/net"
)

const (
	nodes   = 4
	players = 3
)

func main() {
	// One logical counter per player; each counter's replicas live at
	// processes 0..nodes-1 of a dedicated transport lane.
	lanes := make([]*net.Live, players)
	scores := make([][]*crdt.PNCounter, nodes) // scores[node][player]
	for id := range scores {
		scores[id] = make([]*crdt.PNCounter, players)
	}
	for pl := 0; pl < players; pl++ {
		lanes[pl] = net.NewLive(nodes)
		defer lanes[pl].Close()
		for id := 0; id < nodes; id++ {
			scores[id][pl] = crdt.NewPNCounter(lanes[pl], id)
		}
	}

	// Burst of concurrent score updates: every node records points for
	// random players from its own goroutine, with no synchronisation —
	// each Inc returns immediately (wait-freedom).
	var wg sync.WaitGroup
	for id := 0; id < nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for i := 0; i < 50; i++ {
				scores[id][rng.Intn(players)].Inc(1 + rng.Intn(5))
			}
		}(id)
	}
	wg.Wait()

	fmt.Println("mid-flight (nodes may disagree while messages propagate):")
	printBoard(scores)

	// Let every broadcast drain; afterwards all replicas of every
	// counter hold the same value — no reconciliation step needed.
	for _, lane := range lanes {
		lane.Quiesce()
	}
	fmt.Println("\nafter quiescence (all nodes agree):")
	printBoard(scores)

	for pl := 0; pl < players; pl++ {
		for id := 1; id < nodes; id++ {
			if scores[id][pl].Value() != scores[0][pl].Value() {
				fmt.Println("DIVERGED — this must never happen")
				return
			}
		}
	}
	fmt.Println("\nconverged: every node reports the same leaderboard")
}

func printBoard(scores [][]*crdt.PNCounter) {
	for id := range scores {
		fmt.Printf("  node %d:", id)
		for pl, c := range scores[id] {
			fmt.Printf("  player%d=%4d", pl, c.Value())
		}
		fmt.Println()
	}
}
