// Clientserver: the cc/client SDK end to end — an in-process CCv
// cluster behind its HTTP front-end, driven through the versioned
// wire protocol with typed object handles, pipelined batching, and a
// per-request read target, then spot-checked by the online monitor.
// Swap the httptest server for a real ccserved address and nothing
// else changes.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/paper-repro/ccbm/cc/client"
	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

func main() {
	// A sharded CCv cluster with an eager monitor, served over HTTP.
	c, err := cluster.New(cluster.Config{
		Shards:    2,
		Replicas:  3,
		Criterion: "CCv",
		Monitor:   cluster.MonitorConfig{SampleEvery: 1, WindowOps: 8, Grace: 50 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewHTTPHandler(c))
	defer srv.Close()

	// The SDK: batching coalesces async invocations from all sessions
	// into pipelined POST /v1/batch round trips.
	cli, err := client.New(client.NewHTTPTransport(srv.URL),
		client.WithBatching(32, 500*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	h, err := cli.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: criterion=%s protocol=v%d\n", h.Criterion, h.Protocol)

	// Typed handles from the ADT registry. Session 1 pipelines five
	// increments (futures) and then reads its own writes.
	sess := cli.Session(1)
	cart, err := sess.Counter(ctx, "cart:42")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cart.IncAsync(2) // one wire round trip for all five, order preserved
	}
	n, err := cart.Get(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cart after 5 async inc(2): %d (read-your-writes)\n", n)

	// A queue through the same session, synchronous this time.
	jobs, err := sess.Queue(ctx, "jobs")
	if err != nil {
		log.Fatal(err)
	}
	jobs.Push(ctx, 7)
	jobs.Push(ctx, 9)
	if v, ok, _ := jobs.Pop(ctx); ok {
		fmt.Printf("first job: %d\n", v)
	}

	// Per-request consistency target (Pileus-style): a ReadAny read
	// round-robins over the shard's replicas — it may be stale and
	// waives read-your-writes, which is the price of load spread.
	weak := sess.WithTarget(wire.ReadAny)
	out, err := weak.Call(ctx, "cart:42", "get")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ReadAny get: %s (stale is allowed)\n", out.String())

	// Drain the client, stop the cluster, and ask the online monitor
	// how the recorded fragments checked out against CCv.
	cli.Close()
	c.Close()
	sum := c.Monitor().Summary()
	fmt.Printf("monitor: %d verdicts, %d satisfied, %d violations\n",
		sum.Verdicts, sum.Satisfied, len(sum.Violations))
}
