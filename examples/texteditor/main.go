// Texteditor: collaborative text editing over the deterministic
// network simulator, using the RGA replicated sequence (internal/crdt)
// — the CCI-model scenario [23] the paper uses to motivate weak causal
// consistency: convergence plus causality plus intention preservation,
// with no locks and no server.
//
// Two editors type into a shared document, a partition splits them,
// both keep editing their own view, and on healing the replicas merge
// into the same text with each editor's typing intact (not
// interleaved character-by-character).
//
// Run with: go run ./examples/texteditor
package main

import (
	"fmt"

	"github.com/paper-repro/ccbm/internal/crdt"
	"github.com/paper-repro/ccbm/internal/sim"
)

func main() {
	nw := sim.New(2, 42)
	alice := crdt.NewRGA(nw, 0)
	bob := crdt.NewRGA(nw, 1)

	typeText := func(r *crdt.RGA, at int, s string) {
		for i, c := range s {
			r.InsertAt(at+i, int(c))
		}
	}

	// A shared headline, fully propagated.
	typeText(alice, 0, "consistency")
	nw.Run(0)
	fmt.Printf("shared start:   alice=%q bob=%q\n", alice.String(), bob.String())

	// The network partitions; both editors keep working on their local
	// replica — operations stay wait-free, nobody blocks (the whole
	// point of the weak-consistency branch: CAP-proof availability).
	nw.Partition([]int{0}, []int{1})
	typeText(alice, 0, "causal ")         // prepend
	typeText(bob, bob.Len(), " criteria") // append
	bob.DeleteAt(0)                       // bob also deletes the 'c'
	fmt.Printf("partitioned:    alice=%q bob=%q\n", alice.String(), bob.String())

	// Heal the partition. The simulator dropped the copies sent while
	// the link was cut, so each side runs anti-entropy (Sync
	// retransmits everything it has seen; duplicates are discarded by
	// the broadcast layer). Both replicas converge, and each editor's
	// contiguous edit survives intact.
	nw.Heal()
	alice.Sync()
	bob.Sync()
	nw.Run(0)
	fmt.Printf("after healing:  alice=%q bob=%q\n", alice.String(), bob.String())

	if alice.Key() == bob.Key() {
		fmt.Println("converged: both editors see the same document")
	} else {
		fmt.Println("DIVERGED — this must never happen")
	}
}
