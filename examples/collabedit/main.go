// Collaborative editing with causal convergence (experiment for the
// CCI discussion of Sec. 3.2): two users edit a shared sequence of
// characters concurrently. Under causal convergence (the paper's
// replacement candidate for eventual consistency, Sec. 5), both
// replicas converge to the same document; under plain causal
// consistency they may not, because concurrent inserts can be applied
// in different orders.
//
// The document is the Sequence ADT: ins(pos, v) and del(pos) updates,
// read queries. Characters are encoded as integers (their rune values)
// so the shared object stays within the paper's integer alphabets.
package main

import (
	"fmt"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
)

func render(vals []int) string {
	out := make([]rune, len(vals))
	for i, v := range vals {
		out[i] = rune(v)
	}
	return string(out)
}

func scenario(mode core.Mode) (string, string) {
	cluster := core.NewCluster(2, adt.Sequence{}, mode, 7)

	// Both replicas start from the shared prefix "go".
	cluster.Invoke(0, "ins", 0, 'g')
	cluster.Invoke(0, "ins", 1, 'o')
	cluster.Settle()

	// Concurrently: user 0 appends "al" while user 1 appends "od".
	cluster.Invoke(0, "ins", 2, 'a')
	cluster.Invoke(1, "ins", 2, 'o')
	cluster.Invoke(0, "ins", 3, 'l')
	cluster.Invoke(1, "ins", 3, 'd')
	cluster.Settle()

	d0 := render(cluster.Invoke(0, "read").Vals)
	d1 := render(cluster.Invoke(1, "read").Vals)
	return d0, d1
}

func main() {
	fmt.Println("Two users concurrently edit the document \"go\":")
	fmt.Println("  user 0 types \"al\" (aiming for \"goal\")")
	fmt.Println("  user 1 types \"od\" (aiming for \"good\")")
	fmt.Println()

	d0, d1 := scenario(core.ModeCCv)
	fmt.Printf("causal convergence (CCv): user0=%q user1=%q  converged=%v\n", d0, d1, d0 == d1)

	c0, c1 := scenario(core.ModeCC)
	fmt.Printf("causal consistency  (CC): user0=%q user1=%q  converged=%v\n", c0, c1, c0 == c1)

	fmt.Println()
	fmt.Println("CCv arbitrates the concurrent inserts by a shared total order")
	fmt.Println("(Lamport timestamps), so both replicas settle on one document.")
	fmt.Println("CC only promises each user a view consistent with causality —")
	fmt.Println("the documents may interleave the edits differently forever.")
}
