// Jobqueue: the paper's queue anomalies (Fig. 3f) and their fix
// (Fig. 3g). Two workers pop jobs from a causally consistent FIFO
// queue. Because weak criteria couple the transition and output parts
// of pop loosely, two concurrent pops can return the SAME job while
// another job is silently lost — causal consistency guarantees neither
// existence nor unicity. The paper's remedy replaces pop with hd (read
// the head) and rh(v) (remove the head only if it equals v): jobs may
// then be processed twice, but none is ever lost.
package main

import (
	"fmt"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
)

func popQueue() {
	fmt.Println("-- Queue with pop (Fig. 3f) --")
	cluster := core.NewCluster(2, adt.Queue{}, core.ModeCC, 3)
	cluster.Invoke(0, "push", 1)
	cluster.Invoke(0, "push", 2)
	cluster.Settle() // both workers see queue [1, 2]

	// Both workers pop concurrently (no delivery in between).
	j0 := cluster.Invoke(0, "pop")
	j1 := cluster.Invoke(1, "pop")
	cluster.Settle()
	// Each worker pops again after hearing about the other's pop.
	k0 := cluster.Invoke(0, "pop")
	k1 := cluster.Invoke(1, "pop")
	cluster.Settle()

	fmt.Printf("worker0 popped: %v then %v\n", j0, k0)
	fmt.Printf("worker1 popped: %v then %v\n", j1, k1)
	fmt.Println("job 1 ran twice, job 2 was lost: CC guarantees neither")
	fmt.Println("unicity nor existence for pop (Fig. 3f).")
	fmt.Println()
}

func hdRhQueue() {
	fmt.Println("-- Queue with hd/rh (Fig. 3g) --")
	cluster := core.NewCluster(2, adt.Queue2{}, core.ModeCC, 3)
	cluster.Invoke(0, "push", 1)
	cluster.Invoke(0, "push", 2)
	cluster.Settle()

	process := func(w int) []int {
		var done []int
		for i := 0; i < 2; i++ {
			hd := cluster.Invoke(w, "hd")
			if hd.Bot || len(hd.Vals) == 0 {
				break
			}
			job := hd.Vals[0]
			done = append(done, job)
			cluster.Invoke(w, "rh", job) // remove only if still the head
		}
		return done
	}

	// Interleave the two workers without deliveries, then settle.
	d0 := process(0)
	d1 := process(1)
	cluster.Settle()
	// Drain what remains.
	rest0 := process(0)
	rest1 := process(1)
	cluster.Settle()

	fmt.Printf("worker0 processed: %v then %v\n", d0, rest0)
	fmt.Printf("worker1 processed: %v then %v\n", d1, rest1)

	seen := map[int]bool{}
	for _, jobs := range [][]int{d0, d1, rest0, rest1} {
		for _, j := range jobs {
			seen[j] = true
		}
	}
	lost := []int{}
	for _, j := range []int{1, 2} {
		if !seen[j] {
			lost = append(lost, j)
		}
	}
	fmt.Printf("lost jobs: %v — rh removes the head only when it matches,\n", lost)
	fmt.Println("so every job is processed at least once (possibly twice).")
}

func main() {
	popQueue()
	hdRhQueue()
	// Show the spec-side difference too: pop is update AND query; hd is
	// a pure query, rh a pure update (Sec. 2.1's classification).
	q, q2 := adt.Queue{}, adt.Queue2{}
	fmt.Println()
	fmt.Printf("pop: update=%v query=%v (coupled — the root of the anomaly)\n",
		q.IsUpdate(cc.NewInput("pop")), q.IsQuery(cc.NewInput("pop")))
	fmt.Printf("hd:  update=%v query=%v / rh: update=%v query=%v (decoupled)\n",
		q2.IsUpdate(cc.NewInput("hd")), q2.IsQuery(cc.NewInput("hd")),
		q2.IsUpdate(cc.NewInput("rh", 1)), q2.IsQuery(cc.NewInput("rh", 1)))
}
