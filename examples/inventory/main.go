// Inventory: a replicated key-value inventory built on the OR-map
// (internal/crdt), showing the conflict surface weak consistency
// necessarily exposes — and how applications resolve it.
//
// Two warehouse nodes update stock counts without coordination. While
// they work in parallel the same item can receive concurrent puts;
// the OR-map keeps BOTH values (unlike a last-writer-wins register,
// which would silently drop one), the application notices the
// conflict at read time, and a later put — issued after both values
// are visible — resolves it for everyone. Causal convergence
// guarantees all nodes end with the same catalogue.
//
// Run with: go run ./examples/inventory
package main

import (
	"fmt"

	"github.com/paper-repro/ccbm/internal/crdt"
	"github.com/paper-repro/ccbm/internal/sim"
)

const (
	itemBolts = iota
	itemNuts
	itemGears
)

var names = map[int]string{itemBolts: "bolts", itemNuts: "nuts", itemGears: "gears"}

func main() {
	nw := sim.New(2, 7)
	east := crdt.NewORMap(nw, 0)
	west := crdt.NewORMap(nw, 1)

	// Initial stock, fully propagated.
	east.Put(itemBolts, 100)
	east.Put(itemNuts, 250)
	nw.Run(0)

	// Concurrent recounts of the same item at both sites, plus a new
	// item in the west and a deletion in the east — all wait-free.
	east.Put(itemBolts, 90)
	west.Put(itemBolts, 80)
	west.Put(itemGears, 40)
	east.Delete(itemNuts)
	nw.Run(0)

	fmt.Println("after concurrent updates (both sites agree, conflicts kept):")
	printCatalogue("east", east)
	printCatalogue("west", west)

	// The bolts count is in conflict: both recounts survive. Resolve
	// by auditing and putting a value that supersedes both.
	if vals := east.Get(itemBolts); len(vals) > 1 {
		resolved := vals[0] // audit policy: take the lower count
		fmt.Printf("\nbolts conflict %v -> resolving to %d\n", vals, resolved)
		east.Put(itemBolts, resolved)
	}
	nw.Run(0)

	fmt.Println("\nafter resolution:")
	printCatalogue("east", east)
	printCatalogue("west", west)
	if east.Key() == west.Key() {
		fmt.Println("\nconverged: both warehouses hold the same catalogue")
	} else {
		fmt.Println("\nDIVERGED — this must never happen")
	}
}

func printCatalogue(site string, m *crdt.ORMap) {
	fmt.Printf("  %s:", site)
	for _, k := range m.Keys() {
		fmt.Printf("  %s=%v", names[k], m.Get(k))
	}
	fmt.Println()
}
