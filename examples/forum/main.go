// Forum: the paper's motivating scenario for weak causal consistency
// (Sec. 3.2) — "a process must not be aware of an operation done in
// response to another operation without being aware of the initial
// operation": nobody should see an answer without the question it
// answers.
//
// A question register and an answer register are replicated at three
// sites. The author posts the question; a responder reads it and posts
// the answer, so the answer is causally after the question. Message
// delays are random: we search the seed space for an adversarial
// schedule in which, under eventually consistent (unordered) delivery,
// the reader observes the answer before the question — then replay the
// exact same schedule under causal delivery, where the anomaly is
// impossible (the answer is buffered until the question arrives).
package main

import (
	"fmt"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
)

const (
	author    = 0
	responder = 1
	reader    = 2

	questionReg = 0
	answerReg   = 1
)

// run executes the scenario under the given mode and seed and probes
// the reader the moment the answer becomes visible (or the run ends).
// It returns the question and answer values the reader saw at that
// moment.
func run(mode core.Mode, seed int64) (question, answer int) {
	cluster := core.NewCluster(3, adt.NewWindowArray(2, 1), mode, seed)
	cluster.Net.MinDelay, cluster.Net.MaxDelay = 1, 100 // wide jitter

	cluster.Invoke(author, "w", questionReg, 1)
	// Deliver until the responder can read the question, then answer.
	for cluster.Invoke(responder, "r", questionReg).Vals[0] == 0 {
		if !cluster.Net.Step() {
			break
		}
	}
	cluster.Invoke(responder, "w", answerReg, 2)

	// Deliver until the reader sees the answer (or quiescence), then
	// probe the question register.
	for cluster.Invoke(reader, "r", answerReg).Vals[0] == 0 {
		if !cluster.Net.Step() {
			break
		}
	}
	answer = cluster.Invoke(reader, "r", answerReg).Vals[0]
	question = cluster.Invoke(reader, "r", questionReg).Vals[0]
	cluster.Settle()
	return question, answer
}

func main() {
	fmt.Println("The answer is causally after the question; delivery delays are random.")

	// Find an adversarial schedule for the unordered (EC) runtime.
	var badSeed int64 = -1
	for seed := int64(0); seed < 1000; seed++ {
		if q, a := run(core.ModeEC, seed); a != 0 && q == 0 {
			badSeed = seed
			break
		}
	}
	if badSeed < 0 {
		fmt.Println("no adversarial schedule found in 1000 seeds (unexpected)")
		return
	}
	q, a := run(core.ModeEC, badSeed)
	fmt.Printf("\nschedule #%d, eventual consistency:\n", badSeed)
	fmt.Printf("  reader sees answer=%d with question=%d — the ANSWER ARRIVED ALONE.\n", a, q)

	q, a = run(core.ModeCC, badSeed)
	fmt.Printf("\nsame schedule #%d, causal consistency:\n", badSeed)
	fmt.Printf("  reader sees answer=%d question=%d — ", a, q)
	if a != 0 && q == 0 {
		fmt.Println("causality violated (bug!)")
	} else {
		fmt.Println("never the answer without the question.")
	}
	fmt.Println("\nCausal broadcast buffers the answer until its causal past (the")
	fmt.Println("question) has been delivered — weak causal consistency's whole point.")
}
