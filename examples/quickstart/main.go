// Quickstart: three replicas share a causally consistent array of
// window streams (the paper's Fig. 4 object) over the deterministic
// network simulator. We perform a few writes and reads, print what each
// replica observes, and then verify the recorded execution with the
// causal-consistency checker — the full loop of this repository in
// thirty lines.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/paper-repro/ccbm/cc/checker"
	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
)

func main() {
	// Three processes, an array of 2 window streams of size 2,
	// causally consistent replication, deterministic seed.
	cluster := core.NewCluster(3, adt.NewWindowArray(2, 2), core.ModeCC, 42)

	// p0 writes 1 to stream 0; p1 concurrently writes 2 to the same
	// stream. No messages have been delivered yet, so each sees only
	// its own write.
	cluster.Invoke(0, "w", 0, 1)
	cluster.Invoke(1, "w", 0, 2)
	fmt.Println("p0 reads stream 0:", cluster.Invoke(0, "r", 0)) // (0,1)
	fmt.Println("p1 reads stream 0:", cluster.Invoke(1, "r", 0)) // (0,2)

	// Deliver all in-flight messages (quiescence).
	cluster.Settle()
	fmt.Println("after settling:")
	fmt.Println("p0 reads stream 0:", cluster.Invoke(0, "r", 0))
	fmt.Println("p1 reads stream 0:", cluster.Invoke(1, "r", 0))
	fmt.Println("p2 reads stream 0:", cluster.Invoke(2, "r", 0))

	// Every execution of this runtime is causally consistent (Prop. 6);
	// verify this very run with the exact checker.
	h := cluster.Recorder.History()
	res, err := checker.Check(context.Background(), "CC", h)
	if err != nil {
		log.Fatalf("checker error: %v", err)
	}
	fmt.Printf("\nrecorded history:\n%s", h)
	fmt.Println("causally consistent:", res.Satisfied)
}
