// Package cc is the public facade of the ccbm library, a Go
// reproduction of "Causal Consistency: Beyond Memory" (Perrin,
// Mostéfaoui, Jard — PPoPP 2016).
//
// The library is split into a contract and an engine. The engine — the
// exact search procedures, the replicated-object runtime, the network
// simulator — lives under internal/ and may change freely between
// versions. The contract is this package tree:
//
//   - cc (this package): the sequential-specification model shared by
//     everything else — operations, inputs, outputs, abstract data
//     types — plus the textual ADT registry.
//   - cc/histories: distributed histories (labelled partial orders of
//     events), their builder, and the text formats the tools speak.
//   - cc/checker: the consistency criteria themselves — a string-keyed
//     registry of checkers, context-aware single-history checking, and
//     the streaming batch classifier.
//   - cc/cluster: the serving runtime — a sharded replicated object
//     store with pluggable replication backends ("broadcast" or
//     anti-entropy gossip, Config.Replication), elastic topology
//     (objects placed on a bounded-load consistent-hash ring;
//     AddShard/DrainShard migrate them live without breaking causal
//     session guarantees), scripted fault injection (partition/heal,
//     crash/restart, link degradation via ApplyFault), convergence
//     fingerprints, and an online monitor streaming live windows into
//     the checkers.
//   - cc/cluster/wire: the versioned wire protocol — request/response
//     structs, typed error codes with pinned HTTP statuses, fault,
//     ring-topology (epoch'd placement; stale_ring redirects), and
//     readiness messages.
//   - cc/client: the client SDK — sessions, futures, batching, and
//     self-healing (bounded jittered retry, per-session failover that
//     re-attaches the causal frontier so read-your-writes survives the
//     move, per-replica circuit breakers).
//   - cc/sla: consistency SLAs — staleness tracking and
//     utility-maximizing adaptive read routing over the criteria
//     hierarchy.
//   - cc/bench: the workload and load-measurement subsystem — a
//     registry of named scenarios (read-heavy, write-heavy,
//     session-cart, insert-grow, scan-range) each declaring its ADT
//     mix, key distribution and op percentages; an open-loop driver
//     whose latency clock starts at each op's *intended* arrival
//     (coordinated-omission-safe); a log-bucketed histogram; and a
//     knee-finding ramp controller.
//
// # Quickstart
//
//	h, err := histories.Parse("adt: W2\np0: w(1) r/(0,1)\np1: w(2) r/(0,2)")
//	if err != nil { ... }
//	res, err := checker.Check(ctx, "CC", h, checker.WithTimeout(2*time.Second))
//	if err != nil { ... }
//	fmt.Println(res.Satisfied)
//
// The types in this package are aliases of the engine's own: values
// returned by internal constructors and by the public facade are
// interchangeable, and the facade adds no wrapping cost.
package cc

import (
	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Version is the facade's semantic version. The cc package tree
// follows the usual compatibility contract: exported identifiers are
// only added, never removed or re-typed, within a major version (the
// API-lock test pins the surface).
const Version = "v0.9.0"

// The sequential-specification model (Sec. 2.1 of the paper): an ADT
// is a deterministic transition system over immutable states, an
// operation is an input symbol paired with the output it returned.
type (
	// ADT is a sequential specification: a transition system with an
	// initial state, a step function, and update/query classification.
	ADT = spec.ADT
	// State is one immutable ADT state.
	State = spec.State
	// Input is a method invocation: name plus integer arguments.
	Input = spec.Input
	// Output is a returned value: ⊥, one integer, or a tuple.
	Output = spec.Output
	// Operation is an input paired with its recorded output, possibly
	// hidden (no output to justify, Def. 2).
	Operation = spec.Operation
)

// Bot is the ⊥ output (updates whose return value is not observed).
var Bot = spec.Bot

// NewInput builds an input symbol.
func NewInput(method string, args ...int) Input { return spec.NewInput(method, args...) }

// IntOutput builds a single-integer output.
func IntOutput(v int) Output { return spec.IntOutput(v) }

// TupleOutput builds a tuple output.
func TupleOutput(vs ...int) Output { return spec.TupleOutput(vs...) }

// NewOp pairs an input with its recorded output.
func NewOp(in Input, out Output) Operation { return spec.NewOp(in, out) }

// HiddenOp builds a hidden operation (Def. 2): an input whose output
// the checkers never need to justify.
func HiddenOp(in Input) Operation { return spec.HiddenOp(in) }

// ParseOperation parses the tools' textual operation syntax, e.g.
// "w(1)", "r/(0,1)", "rx/3".
func ParseOperation(s string) (Operation, error) { return spec.ParseOperation(s) }

// FormatSeq renders operations as the paper's dot-separated word.
func FormatSeq(seq []Operation) string { return spec.FormatSeq(seq) }

// Run applies the inputs to t from its initial state and returns the
// final state with every output produced along the way.
func Run(t ADT, ins []Input) (State, []Output) { return spec.Run(t, ins) }

// Admissible reports whether the operation sequence is a word of the
// ADT's sequential language L(T): every visible output matches the one
// the specification produces.
func Admissible(t ADT, seq []Operation) bool { return spec.Admissible(t, seq) }

// LookupADT resolves a textual ADT name — the same names history files
// use in their "adt:" header. Recognized forms include "W2" (window
// stream), "W2^4" (window-stream array), "M[a-e]" (integer memory),
// "Queue", "Queue2", "Stack", "Counter", "GSet", "Sequence",
// "Register", "CAS" and "RWSet"; see the history format documentation.
func LookupADT(name string) (ADT, error) { return adt.Lookup(name) }
