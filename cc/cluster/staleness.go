package cluster

// Staleness exposure: every replica keeps per-origin high-water
// timestamps (core.Station.HighWater — the wall-clock send stamp of
// the latest update batch delivered from each origin). The snapshot
// here is what GET /v1/staleness serves and what the readyz/ring
// replication-lag fields are computed from; the per-query piggyback
// (wire.InvokeResponse.HighWater) is taken on the serving path in
// batch.go. A replica's lag is its worst per-origin deficit against
// the freshest vector in its shard — how far behind its delivery
// (broadcast or anti-entropy gossip) is running, in time units.

import (
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// shardLagUS computes each replica's replication lag in microseconds
// from the shard's high-water vectors: the worst componentwise
// deficit against the shard-wide maximum.
func shardLagUS(hws [][]int64) []int64 {
	if len(hws) == 0 {
		return nil
	}
	freshest := append([]int64(nil), hws[0]...)
	for _, hw := range hws[1:] {
		for o, v := range hw {
			if o < len(freshest) && v > freshest[o] {
				freshest[o] = v
			}
		}
	}
	lags := make([]int64, len(hws))
	for r, hw := range hws {
		var worst int64
		for o, v := range hw {
			if o < len(freshest) {
				if d := freshest[o] - v; d > worst {
					worst = d
				}
			}
		}
		lags[r] = worst / 1000 // nanoseconds → microseconds
	}
	return lags
}

// StalenessWire snapshots every replica's high-water vector and lag —
// the body of GET /v1/staleness. Drained shards keep their slot with
// no replicas, so shard indices stay aligned with the ring.
func (c *Cluster) StalenessWire() *wire.StalenessResponse {
	resp := &wire.StalenessResponse{Protocol: wire.ProtocolVersion}
	for _, sh := range c.shardList() {
		ss := wire.ShardStaleness{Shard: sh.idx, Drained: sh.drained.Load()}
		if !ss.Drained {
			hws := make([][]int64, len(sh.stations))
			for r, st := range sh.stations {
				hws[r] = st.HighWater()
			}
			lags := shardLagUS(hws)
			for r := range hws {
				ss.Replicas = append(ss.Replicas, wire.ReplicaStaleness{HW: hws[r], LagUS: lags[r]})
			}
		}
		resp.Shards = append(resp.Shards, ss)
	}
	return resp
}

// MaxLagUS returns the worst per-replica replication lag across the
// cluster, in microseconds — the readyz-level convergence gauge. 0
// when every replica has delivered everything its shard has sent.
func (c *Cluster) MaxLagUS() int64 {
	var worst int64
	for _, sh := range c.shardList() {
		if sh.drained.Load() {
			continue
		}
		hws := make([][]int64, len(sh.stations))
		for r, st := range sh.stations {
			hws[r] = st.HighWater()
		}
		for _, lag := range shardLagUS(hws) {
			if lag > worst {
				worst = lag
			}
		}
	}
	return worst
}
