package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster"
)

// TestClusterServeLoadMonitor is the in-process smoke of the whole
// serving stack: a sharded CCv cluster with an aggressive monitor, a
// closed-loop load of concurrent sessions over mixed ADTs, then clean
// shutdown with non-empty, non-violating monitor verdicts.
func TestClusterServeLoadMonitor(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards:    2,
		Replicas:  3,
		Criterion: "CCv",
		BatchOps:  8,
		Monitor: cluster.MonitorConfig{
			SampleEvery: 1, // sample everything: this test is about the monitor
			WindowOps:   16,
			Grace:       50 * time.Millisecond,
			Timeout:     5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	adts := []string{"Counter", "Register", "GSet", "RWSet"}
	var objects []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("obj-%d", i)
		if err := c.CreateObject(name, adts[i%len(adts)]); err != nil {
			t.Fatal(err)
		}
		objects = append(objects, name)
	}
	var wg sync.WaitGroup
	for sess := 0; sess < 6; sess++ {
		wg.Add(1)
		go func(sess int) {
			defer wg.Done()
			s := c.Session(sess)
			rng := rand.New(rand.NewSource(int64(sess)))
			for i := 0; i < 80; i++ {
				idx := rng.Intn(len(objects))
				name, kind := objects[idx], adts[idx%len(adts)]
				var err error
				if rng.Float64() < 0.5 {
					_, err = s.Call(name, queryMethod[kind])
				} else {
					_, err = s.Call(name, updateMethod[kind], sess*1000+i)
				}
				if err != nil {
					t.Errorf("session %d: %v", sess, err)
					return
				}
			}
		}(sess)
	}
	wg.Wait()
	stats := c.Stats()
	if stats.Totals.Invocations == 0 || stats.Totals.Broadcasts == 0 {
		t.Fatalf("no traffic recorded: %+v", stats.Totals)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(stats.Shards))
	}
	// Both shards must have seen objects (hash routing spreads 8 names).
	for i, sh := range stats.Shards {
		if sh.Stations[0].Objects == 0 {
			t.Errorf("shard %d hosts no objects", i)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	sum := c.Monitor().Summary()
	if sum.SampledObjects != 8 {
		t.Fatalf("sampled %d objects, want 8", sum.SampledObjects)
	}
	if sum.Verdicts == 0 {
		t.Fatal("monitor produced no verdicts")
	}
	for _, v := range sum.Violations {
		t.Errorf("monitor violation: %+v", v)
	}
	t.Logf("monitor: %d windows, %d verdicts, %d satisfied, %d exhausted",
		sum.WindowsSubmitted, sum.Verdicts, sum.Satisfied, sum.Exhausted)
}

var (
	updateMethod = map[string]string{"Counter": "inc", "Register": "w", "GSet": "add", "RWSet": "add"}
	queryMethod  = map[string]string{"Counter": "get", "Register": "r", "GSet": "elems", "RWSet": "elems"}
)

// TestSessionReadYourWrites pins the session contract on every
// criterion: a session's query observes its own completed updates.
func TestSessionReadYourWrites(t *testing.T) {
	for _, crit := range []string{"CC", "PC", "EC", "CCv"} {
		c, err := cluster.New(cluster.Config{
			Criterion: crit,
			Replicas:  3,
			BatchOps:  4,
			Monitor:   cluster.MonitorConfig{Disable: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CreateObject("r", "Register"); err != nil {
			t.Fatal(err)
		}
		s := c.Session(1)
		for i := 1; i <= 20; i++ {
			if _, err := s.Call("r", "w", i); err != nil {
				t.Fatal(err)
			}
			out, err := s.Call("r", "r")
			if err != nil {
				t.Fatal(err)
			}
			if !out.Equal(cc.IntOutput(i)) {
				t.Fatalf("%s: read %v after writing %d", crit, out, i)
			}
		}
		c.Close()
	}
}

// TestClusterObjectErrors pins the error paths.
func TestClusterObjectErrors(t *testing.T) {
	c, err := cluster.New(cluster.Config{Monitor: cluster.MonitorConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateObject("x", "NoSuchADT"); err == nil {
		t.Fatal("unknown ADT accepted")
	}
	if err := c.CreateObject("x", "Counter"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("x", "Counter"); err != nil {
		t.Fatalf("idempotent create failed: %v", err)
	}
	if err := c.CreateObject("x", "Register"); err == nil {
		t.Fatal("conflicting re-create accepted")
	}
	if _, err := c.Session(0).Call("ghost", "r"); err == nil {
		t.Fatal("invoke on unknown object succeeded")
	}
	if got := c.Objects(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Objects() = %v", got)
	}
}

// TestClusterCrashUnderLoad crashes a replica mid-traffic: surviving
// sessions keep completing (wait-freedom), sessions pinned to the
// crashed replica keep completing locally, and shutdown stays clean.
func TestClusterCrashUnderLoad(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards:    1,
		Replicas:  3,
		Criterion: "CC",
		BatchOps:  4,
		Monitor:   cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("o", "Counter"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for sess := 0; sess < 6; sess++ {
		wg.Add(1)
		go func(sess int) {
			defer wg.Done()
			s := c.Session(sess)
			for i := 0; i < 200; i++ {
				if _, err := s.Call("o", "inc", 1); err != nil {
					t.Errorf("session %d: %v", sess, err)
					return
				}
			}
		}(sess)
	}
	time.Sleep(2 * time.Millisecond)
	if err := c.CrashReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := c.Stats()
	if !st.Shards[0].Crashed[1] {
		t.Fatal("replica 1 not marked crashed")
	}
	if st.Totals.Invocations != 6*200 {
		t.Fatalf("lost invocations under crash: %d", st.Totals.Invocations)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashReplica(0, 99); err == nil {
		t.Fatal("bad replica index accepted")
	}
}

// TestHTTPRoundTrip drives the HTTP front-end end to end against an
// httptest server: create, invoke, stats, monitor, crash, health.
func TestHTTPRoundTrip(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Criterion: "CC",
		Replicas:  2,
		Monitor:   cluster.MonitorConfig{SampleEvery: 1, WindowOps: 4, Grace: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewHTTPHandler(c))
	defer srv.Close()
	defer c.Close()

	post := func(path string, body any) (int, map[string]any) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}
	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, _ := get("/v1/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, m := post("/v1/objects", map[string]string{"name": "k", "adt": "Counter"}); code != 200 {
		t.Fatalf("create = %d %v", code, m)
	}
	if code, m := post("/v1/objects", map[string]string{"name": "k", "adt": "Register"}); code != 409 {
		t.Fatalf("conflicting create = %d %v", code, m)
	}
	for i := 0; i < 6; i++ {
		code, m := post("/v1/invoke", map[string]any{"session": 1, "object": "k", "method": "inc", "args": []int{2}})
		if code != 200 {
			t.Fatalf("invoke = %d %v", code, m)
		}
	}
	code, m := post("/v1/invoke", map[string]any{"session": 1, "object": "k", "method": "get"})
	if code != 200 || m["output"] != "12" {
		t.Fatalf("get = %d %v", code, m)
	}
	if code, m := post("/v1/invoke", map[string]any{"session": 1, "object": "ghost", "method": "get"}); code != 404 {
		t.Fatalf("ghost invoke = %d %v", code, m)
	}
	if code, _ := get("/v1/stats"); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if code, m := post("/v1/crash", map[string]int{"shard": 0, "replica": 1}); code != 200 {
		t.Fatalf("crash = %d %v", code, m)
	}
	if code, m := post("/v1/crash", map[string]int{"shard": 9, "replica": 0}); code != 400 {
		t.Fatalf("bad crash = %d %v", code, m)
	}
	// The 4-op window filled; after the grace the verdict appears.
	deadline := time.After(10 * time.Second)
	for {
		_, m := get("/v1/monitor?verdicts=1")
		sum, _ := m["summary"].(map[string]any)
		if sum != nil && sum["verdicts"].(float64) > 0 {
			if sum["satisfied"].(float64) == 0 {
				t.Fatalf("no satisfied verdicts: %v", m)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("monitor never produced a verdict: %v", m)
		default:
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestCriterionCanonicalization pins that a lowercase criterion is
// canonicalized to the checker registry's spelling — an
// uncanonicalized "ccv" used to silently disable the monitor (the
// registry key is case-sensitive).
func TestCriterionCanonicalization(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Criterion: "ccv",
		Monitor:   cluster.MonitorConfig{SampleEvery: 1, WindowOps: 4, Grace: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Criterion(); got != "CCv" {
		t.Fatalf("Criterion() = %q, want CCv", got)
	}
	if err := c.CreateObject("o", "Counter"); err != nil {
		t.Fatal(err)
	}
	s := c.Session(0)
	for i := 0; i < 6; i++ {
		if _, err := s.Call("o", "inc", 1); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	sum := c.Monitor().Summary()
	if sum.SampledObjects != 1 || sum.Verdicts == 0 {
		t.Fatalf("monitor disabled by lowercase criterion: %+v", sum)
	}
	for _, v := range c.Monitor().Verdicts() {
		if v.Criterion != "CCv" {
			t.Fatalf("verdict criterion = %q", v.Criterion)
		}
	}
	if _, err := cluster.New(cluster.Config{Criterion: "bogus"}); err == nil {
		t.Fatal("bogus criterion accepted")
	}
}

// TestMonitorSampling pins SampleEvery.
func TestMonitorSampling(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Monitor: cluster.MonitorConfig{SampleEvery: 3, WindowOps: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := c.CreateObject(fmt.Sprintf("o%d", i), "Counter"); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if got := c.Monitor().Summary().SampledObjects; got != 3 {
		t.Fatalf("sampled %d, want 3", got)
	}
}
