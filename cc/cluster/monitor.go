package cluster

import (
	"context"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/checker"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// DefaultWindowOps is the default size of a sampled object's checked
// window. The DPOR-style pruned searches (on by default, see NoPrune)
// keep exact checking tractable at this size; it was 24 when the
// monitor ran the exhaustive searches.
const DefaultWindowOps = 40

// MonitorConfig tunes the online consistency monitor.
type MonitorConfig struct {
	// Disable turns the monitor off entirely.
	Disable bool
	// SampleEvery samples one in N created objects (1 = every object);
	// default 4.
	SampleEvery int
	// WindowOps is the number of operations a sampled object's checked
	// window holds; default DefaultWindowOps. Windows much larger than
	// this make the exact checkers the bottleneck even with pruning.
	WindowOps int
	// Grace is how long a full window keeps accepting the operations
	// that were already in flight at its cutoff; default 250ms.
	Grace time.Duration
	// Criteria overrides the checked criteria (registered names);
	// default: exactly the criterion the cluster claims.
	Criteria []string
	// Budget bounds each check's search nodes (0 = checker default).
	Budget int
	// Timeout bounds each check's wall clock; default 2s.
	Timeout time.Duration
	// Workers bounds concurrent checks; default 1 (keep the monitor off
	// the serving path's cores).
	Workers int
	// NoPrune disables the DPOR-style pruners of the exact checkers.
	// The monitor prunes by default: verdicts are identical to the
	// exhaustive searches, and the node reduction is what makes
	// DefaultWindowOps-sized windows affordable online.
	NoPrune bool
	// MaxWindowSessions caps the distinct sessions admitted into one
	// sampled window (default 3; -1 disables the cap). The exact
	// checkers' cost grows with cross-session interleavings, so a
	// window touched by a wide fan-in of sessions can exhaust any
	// budget. Over-cap sessions are weakened, never mangled: their
	// updates are recorded as hidden operations on their own proc —
	// true program order and state effects stay, and a hidden output
	// needs no justification — and their queries are skipped entirely.
	// Both are pure weakenings of the recorded fragment, so the cap
	// can never introduce a spurious violation, and a window that was
	// satisfied uncapped stays satisfied capped.
	MaxWindowSessions int
}

func (m *MonitorConfig) fill(criterion string) {
	if m.SampleEvery <= 0 {
		m.SampleEvery = 4
	}
	if m.WindowOps <= 0 {
		m.WindowOps = DefaultWindowOps
	}
	if m.Grace <= 0 {
		m.Grace = 250 * time.Millisecond
	}
	if len(m.Criteria) == 0 {
		m.Criteria = []string{criterion}
	}
	if m.Timeout <= 0 {
		m.Timeout = 2 * time.Second
	}
	if m.Workers <= 0 {
		m.Workers = 1
	}
	if m.MaxWindowSessions == 0 {
		m.MaxWindowSessions = 3
	}
}

// Verdict is the outcome of one criterion on one sampled window. Its
// definition lives in cc/cluster/wire (it is also the NDJSON line
// type of the monitor stream endpoint); this alias keeps the Go API
// where the monitor is.
type Verdict = wire.Verdict

// Summary aggregates the monitor's output so far (wire form:
// wire.MonitorSummary). Exhausted counts verdict-less outcomes whose
// search ran out of budget or time; Errors counts hard checker
// failures. The two are different signals: many Exhausted means the
// windows are too expensive, any Errors means the monitor hookup is
// broken.
type Summary = wire.MonitorSummary

// Monitor spot-checks the criterion the cluster claims, online: a
// sample of objects is designated at creation, each sampled object's
// first WindowOps operations are recorded as a timed history (proc =
// session id), and every completed window streams into a
// checker.Classifier running the claimed criterion.
//
// The contract of a sampled verdict, precisely:
//
//   - A window is a causally closed fragment: an operation enters it
//     only if it was invoked (updates) or completed (queries) before
//     the window's cutoff, so every update a recorded query observed
//     is itself in the window (an update observed by a query with
//     res ≤ cutoff was invoked before that query completed).
//   - "Satisfied" therefore means: this fragment of the live execution
//     admits a witness for the criterion. It is evidence, not proof,
//     for the run as a whole — unsampled objects, operations after the
//     window, and exhausted searches are unchecked.
//   - "Not satisfied" on a clean (non-exhausted) verdict is a real
//     consistency violation of the recorded fragment, with one
//     caveat: an update whose session stalled longer than Grace after
//     the cutoff may be missing from the window, which can manifest as
//     a spurious violation. Treat violations as alarms to investigate,
//     not as proof by themselves.
//   - Budget- or timeout-exhausted verdicts say nothing either way
//     (the exact checkers are exponential in the worst case).
//   - EC is near-vacuous on sampled windows: the EC checker constrains
//     only ω-flagged (infinitely repeated) reads, which live windows
//     never contain, so an EC cluster's verdicts are trivially
//     satisfied. Monitoring earns its keep on CC, CCv and PC; for EC
//     it is a liveness signal only (windows flow end to end).
type Monitor struct {
	cfg      MonitorConfig
	disabled bool

	in     chan checker.Item
	cancel context.CancelFunc
	done   chan struct{}

	mu            sync.Mutex
	created       int // objects seen by maybeSample
	recs          []*objRecorder
	verdicts      []Verdict
	subs          []chan Verdict
	ended         bool // collect finished; no further verdicts will appear
	submitted     int
	dropped       int
	streamDropped int // verdicts stalled stream subscribers missed
	cappedOps     int // ops weakened/skipped by MaxWindowSessions
	closed        bool
	seq           int
}

func newMonitor(cfg MonitorConfig, criterion string) *Monitor {
	if cfg.Disable {
		return &Monitor{disabled: true, done: make(chan struct{})}
	}
	cfg.fill(criterion)
	m := &Monitor{
		cfg:  cfg,
		in:   make(chan checker.Item, 64),
		done: make(chan struct{}),
	}
	opts := []checker.Option{
		checker.WithCriteria(cfg.Criteria...),
		checker.WithTimeout(cfg.Timeout),
		checker.WithWorkers(cfg.Workers),
		checker.WithPruning(!cfg.NoPrune),
	}
	if cfg.Budget > 0 {
		opts = append(opts, checker.WithBudget(cfg.Budget))
	}
	cl := checker.NewClassifier(opts...)
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	out, err := cl.Stream(ctx, m.in)
	if err != nil {
		// Unknown criterion name in Criteria: degrade to disabled
		// rather than take the serving path down.
		cancel()
		m.disabled = true
		close(m.done)
		return m
	}
	go m.collect(out)
	return m
}

// collect folds classifier results into verdicts and fans them out to
// stream subscribers.
func (m *Monitor) collect(out <-chan checker.ItemResult) {
	defer close(m.done)
	for r := range out {
		m.mu.Lock()
		for _, name := range m.cfg.Criteria {
			res, ok := r.Results[name]
			if !ok {
				continue
			}
			v := Verdict{
				Object:    r.Item.Name,
				Criterion: name,
				Satisfied: res.Satisfied,
				Exhausted: res.Exhausted,
				Ops:       r.Item.H.N(),
				Sessions:  len(r.Item.H.Processes()),
				Explored:  res.Explored,
				ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
			}
			if res.Err != nil && res.Exhausted == "" {
				v.Err = res.Err.Error()
			}
			m.verdicts = append(m.verdicts, v)
			for _, ch := range m.subs {
				select {
				case ch <- v:
				default:
					// A stalled subscriber misses verdicts rather than ever
					// blocking the monitor — but the miss is counted, so a
					// consumer asserting on the stream can detect it was
					// incomplete instead of reporting clean-by-omission.
					m.streamDropped++
				}
			}
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.ended = true
	for _, ch := range m.subs {
		close(ch)
	}
	m.subs = nil
	m.mu.Unlock()
}

// Subscribe returns a channel that replays every verdict produced so
// far and then streams new ones live, plus a cancel function
// releasing the subscription (after which the channel is closed). The
// channel is also closed when the monitor closes. Sends to a
// subscriber that stops draining are dropped rather than ever
// blocking the monitor; the buffer absorbs bursts. A disabled monitor
// returns an already-closed channel.
func (m *Monitor) Subscribe() (<-chan Verdict, func()) {
	if m.disabled {
		ch := make(chan Verdict)
		close(ch)
		return ch, func() {}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan Verdict, len(m.verdicts)+256)
	for _, v := range m.verdicts {
		ch <- v
	}
	if m.ended {
		close(ch)
		return ch, func() {}
	}
	m.subs = append(m.subs, ch)
	return ch, func() { m.unsubscribe(ch) }
}

// unsubscribe removes one subscriber; idempotent (collect's own close
// at stream end removes the whole list first).
func (m *Monitor) unsubscribe(ch chan Verdict) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.subs {
		if s == ch {
			m.subs = append(m.subs[:i], m.subs[i+1:]...)
			close(ch)
			return
		}
	}
}

// maybeSample decides at creation whether to record the object;
// non-nil means sampled.
func (m *Monitor) maybeSample(name string, t cc.ADT) *objRecorder {
	if m.disabled {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	i := m.created
	m.created++
	if i%m.cfg.SampleEvery != 0 {
		return nil
	}
	rec := &objRecorder{m: m, obj: name, t: t}
	m.recs = append(m.recs, rec)
	return rec
}

// submit hands a finalized window to the classifier without ever
// blocking the serving path: a full input buffer drops the window.
func (m *Monitor) submit(obj string, t cc.ADT, ops []checker.TimedOp) {
	h := checker.TimedToHistory(t, ops)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.seq++
	item := checker.Item{Index: m.seq, Name: obj, H: h}
	select {
	case m.in <- item:
		m.submitted++
	default:
		m.dropped++
	}
	m.mu.Unlock()
}

// Verdicts returns a snapshot of every verdict produced so far.
func (m *Monitor) Verdicts() []Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Verdict(nil), m.verdicts...)
}

// Summary aggregates the verdicts produced so far.
func (m *Monitor) Summary() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{
		SampledObjects:   len(m.recs),
		WindowsSubmitted: m.submitted,
		WindowsDropped:   m.dropped,
		StreamDropped:    m.streamDropped,
		CappedOps:        m.cappedOps,
		Verdicts:         len(m.verdicts),
	}
	for _, v := range m.verdicts {
		switch {
		case v.Err != "":
			s.Errors++
		case v.Exhausted != "":
			s.Exhausted++
		case v.Satisfied:
			s.Satisfied++
		default:
			s.Violations = append(s.Violations, v)
		}
	}
	return s
}

// Close finalizes open windows (submitting those with at least two
// operations), stops the classifier input, and waits for in-flight
// checks to produce their verdicts.
func (m *Monitor) Close() {
	if m.disabled {
		return
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	recs := append([]*objRecorder(nil), m.recs...)
	m.mu.Unlock()
	for _, r := range recs {
		r.finalize(true)
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	close(m.in)
	<-m.done
}

// noteCapped counts one operation weakened or skipped by the
// MaxWindowSessions cap. (Safe under an objRecorder's mu: the only
// lock order is recorder → monitor, never the reverse.)
func (m *Monitor) noteCapped() {
	m.mu.Lock()
	m.cappedOps++
	m.mu.Unlock()
}

// objRecorder records one sampled object's window.
type objRecorder struct {
	m   *Monitor
	obj string
	t   cc.ADT

	mu       sync.Mutex
	ops      []checker.TimedOp
	sessions map[int]struct{} // sessions admitted in full (visible ops)
	filled   bool             // the window reached WindowOps; cutoff is final
	cutoff   float64          // meaningful once filled
	done     bool
}

// record appends one completed operation. Once the window has filled,
// only operations already in flight at the cutoff are accepted —
// updates by invocation time, queries by completion time — which keeps
// the window causally closed (see Monitor). A window admits at most
// MaxWindowSessions distinct sessions in full; later sessions are
// weakened (updates hidden, queries skipped) so wide fan-in cannot
// blow up the check — see the MonitorConfig field for why this is a
// sound weakening.
func (r *objRecorder) record(session int, op cc.Operation, inv, res float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	if max := r.m.cfg.MaxWindowSessions; max > 0 {
		if r.sessions == nil {
			r.sessions = make(map[int]struct{}, max)
		}
		if _, in := r.sessions[session]; !in {
			if len(r.sessions) < max {
				r.sessions[session] = struct{}{}
			} else if r.t.IsUpdate(op.In) {
				// Over-cap update: keep its state effect and program
				// order on its true proc, but hide its output (Def. 2) —
				// no obligation added, no observation lost.
				op = cc.HiddenOp(op.In)
				r.m.noteCapped()
			} else {
				// Over-cap query: dropping it only removes obligations.
				r.m.noteCapped()
				return
			}
		}
	}
	if r.filled {
		isUpdate := r.t.IsUpdate(op.In)
		if (isUpdate && inv > r.cutoff) || (!isUpdate && res > r.cutoff) {
			return
		}
		if isUpdate && res > r.cutoff {
			// The update belongs to the window (invoked before the
			// cutoff) but completed after it, so its recorded output may
			// reference updates the window excludes (e.g. a pop that
			// returned a post-cutoff push). Record it hidden (Def. 2):
			// its state effect stays, its output needs no justification.
			// Its replayed effect can only diverge from reality past the
			// point where an excluded update was applied — and no
			// admitted query observes that region (any such query would
			// have res > cutoff), so the window stays sound.
			op = cc.HiddenOp(op.In)
		}
	}
	r.ops = append(r.ops, checker.TimedOp{Proc: session, Op: op, Inv: inv, Res: res})
	if !r.filled && len(r.ops) >= r.m.cfg.WindowOps {
		// The window fills exactly once; a boolean, not a cutoff
		// sentinel, records it (a window whose recorded res times are
		// all zero — e.g. a clock starting at the first operation —
		// must still close, and must not re-arm the grace timer on
		// every later record).
		r.filled = true
		// The cutoff must cover every operation already recorded: record
		// calls can land out of res order (a session may be descheduled
		// between computing res and acquiring the lock), and a cutoff
		// below a recorded query's res would re-admit the closure race
		// the rule exists to prevent.
		for _, o := range r.ops {
			if o.Res > r.cutoff {
				r.cutoff = o.Res
			}
		}
		time.AfterFunc(r.m.cfg.Grace, func() { r.finalize(false) })
	}
}

// finalize closes the window and submits it. force (at monitor Close)
// submits even a half-filled window, as long as it has two operations.
func (r *objRecorder) finalize(force bool) {
	r.mu.Lock()
	if r.done || (!r.filled && !force) {
		r.mu.Unlock()
		return
	}
	r.done = true
	ops := r.ops
	r.mu.Unlock()
	if len(ops) < 2 {
		return
	}
	r.m.submit(r.obj, r.t, ops)
}
