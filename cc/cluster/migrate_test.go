package cluster_test

// Live-migration correctness: elastic topology changes must preserve
// every session guarantee the static cluster gave — read-your-writes
// across a drain, per-shard replica convergence in all four modes and
// both replication backends, and clean failure (object untouched,
// retry succeeds) when a crashed replica blocks the quiesce.

import (
	"fmt"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster"
)

func migrationObjects(t *testing.T, c *cluster.Cluster, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("obj-%02d", i)
		if err := c.CreateObject(names[i], "Counter"); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// TestAddShardLiveMigration grows a serving cluster by one shard and
// pins that the rebalance actually moved objects, the ring epoch
// advanced, and every migrated counter still reads the total its
// session wrote before the move.
func TestAddShardLiveMigration(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 2, Replicas: 3, Criterion: "CCv", BatchOps: 4,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := migrationObjects(t, c, 16)
	s := c.Session(0)
	for i, name := range names {
		for k := 0; k <= i; k++ {
			if _, err := s.Call(name, "inc", 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := make(map[string]int)
	for _, name := range names {
		sh, ok := c.ObjectShard(name)
		if !ok {
			t.Fatalf("%s has no shard", name)
		}
		before[name] = sh
	}
	epoch0 := c.RingEpoch()

	idx, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("new shard index %d, want 2", idx)
	}
	if got := c.RingEpoch(); got != epoch0+1 {
		t.Fatalf("ring epoch %d after AddShard, want %d", got, epoch0+1)
	}
	if got := c.Shards(); got != 3 {
		t.Fatalf("Shards() = %d, want 3", got)
	}
	// The deterministic global re-placement may shuffle objects between
	// the old shards too; what must hold is that the new shard took on
	// real load.
	moved, onNew := 0, 0
	for _, name := range names {
		sh, _ := c.ObjectShard(name)
		if sh != before[name] {
			moved++
		}
		if sh == idx {
			onNew++
		}
	}
	if moved == 0 || onNew == 0 {
		t.Fatalf("AddShard moved %d objects, %d onto the new shard", moved, onNew)
	}
	// Read-your-writes across the move: the same session sees exactly
	// the totals it wrote, wherever each object lives now.
	for i, name := range names {
		out, err := s.Call(name, "get")
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(cc.IntOutput(i + 1)) {
			t.Fatalf("%s reads %v after migration, want %d", name, out, i+1)
		}
	}
	if err := c.AwaitConvergence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Logf("moved %d/%d objects onto shard %d", moved, len(names), idx)
}

// TestDrainShardReadYourWrites empties one shard live and pins that
// its objects survive with session guarantees intact, shard numbering
// stays stable, and a second drain of the same shard is refused.
func TestDrainShardReadYourWrites(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 3, Replicas: 3, Criterion: "CC", BatchOps: 4,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := migrationObjects(t, c, 18)
	s := c.Session(0)
	for i, name := range names {
		if _, err := s.Call(name, "inc", i+7); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	if got := c.Shards(); got != 3 {
		t.Fatalf("Shards() = %d after drain, want 3 (stable numbering)", got)
	}
	for _, name := range names {
		sh, ok := c.ObjectShard(name)
		if !ok {
			t.Fatalf("%s lost its shard", name)
		}
		if sh == 1 {
			t.Fatalf("%s still routed to drained shard 1", name)
		}
	}
	// The drained session keeps its guarantees: reads see prior writes,
	// and new writes land.
	for i, name := range names {
		out, err := s.Call(name, "get")
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(cc.IntOutput(i + 7)) {
			t.Fatalf("%s reads %v after drain, want %d", name, out, i+7)
		}
		if _, err := s.Call(name, "inc", 1); err != nil {
			t.Fatalf("%s rejects writes after drain: %v", name, err)
		}
	}
	if err := c.DrainShard(1); err == nil {
		t.Fatal("second drain of shard 1 accepted")
	}
	if err := c.DrainShard(99); err == nil {
		t.Fatal("drain of unknown shard accepted")
	}
	if err := c.AwaitConvergence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationFingerprintEquality runs traffic, grows the cluster,
// runs more traffic, and asserts per-shard replica fingerprints agree
// — in all four modes, under both replication backends.
func TestMigrationFingerprintEquality(t *testing.T) {
	for _, repl := range []string{"broadcast", "antientropy"} {
		for _, crit := range []string{"CC", "CCv", "PC", "EC"} {
			t.Run(repl+"/"+crit, func(t *testing.T) {
				c, err := cluster.New(cluster.Config{
					Shards: 2, Replicas: 3, Criterion: crit, BatchOps: 4,
					Replication: repl, GossipInterval: time.Millisecond,
					Monitor: cluster.MonitorConfig{Disable: true},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				names := migrationObjects(t, c, 10)
				for sess := 0; sess < 3; sess++ {
					s := c.Session(sess)
					for i, name := range names {
						if _, err := s.Call(name, "inc", sess+i+1); err != nil {
							t.Fatal(err)
						}
					}
				}
				if _, err := c.AddShard(); err != nil {
					t.Fatal(err)
				}
				for sess := 0; sess < 3; sess++ {
					s := c.Session(sess)
					for _, name := range names {
						if _, err := s.Call(name, "inc", 1); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := c.AwaitConvergence(10 * time.Second); err != nil {
					t.Fatalf("%v (fingerprints %v)", err, c.Fingerprints())
				}
				for si, fps := range c.Fingerprints() {
					for r := 1; r < len(fps); r++ {
						if fps[r] != fps[0] {
							t.Fatalf("shard %d replica %d fingerprint %x != replica 0 %x", si, r, fps[r], fps[0])
						}
					}
				}
			})
		}
	}
}

// TestMigrationCrashRecovery pins the failure path: a crashed source
// replica blocks the quiesce, the drain fails cleanly with the object
// population untouched and serving, and the same drain retried after
// repair succeeds.
func TestMigrationCrashRecovery(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 2, Replicas: 3, Criterion: "CC", BatchOps: 2,
		MigrateTimeout: 150 * time.Millisecond,
		Resync:         true, // the restarted replica must repair missed batches
		Monitor:        cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := migrationObjects(t, c, 12)
	s := c.Session(0) // pinned to replica 0: keeps serving through the stop
	for i, name := range names {
		if _, err := s.Call(name, "inc", i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StopReplica(1, 2); err != nil {
		t.Fatal(err)
	}
	// Fresh updates after the stop: the live replicas broadcast batches
	// the stopped replica can never apply, so shard 1 cannot quiesce.
	for _, name := range names {
		if _, err := s.Call(name, "inc", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DrainShard(1); err == nil {
		t.Fatal("drain succeeded with a crashed source replica")
	}
	// Clean failure: everything still serves with the values intact.
	for i, name := range names {
		out, err := s.Call(name, "get")
		if err != nil {
			t.Fatalf("%s unavailable after failed drain: %v", name, err)
		}
		if !out.Equal(cc.IntOutput(i + 2)) {
			t.Fatalf("%s reads %v after failed drain, want %d", name, out, i+2)
		}
	}
	if err := c.RestartReplica(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainShard(1); err != nil {
		t.Fatalf("drain retry after repair: %v", err)
	}
	for _, name := range names {
		if sh, _ := c.ObjectShard(name); sh == 1 {
			t.Fatalf("%s still on drained shard after retry", name)
		}
	}
	for i, name := range names {
		out, err := s.Call(name, "get")
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(cc.IntOutput(i + 2)) {
			t.Fatalf("%s reads %v after recovered drain, want %d", name, out, i+2)
		}
	}
	if err := c.AwaitConvergence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
