package cluster

// White-box tests for the bounded-load consistent-hash ring: the load
// bound is a hard invariant, rebalance is a pure function of the
// member set, and the hot-path lookup allocates nothing.

import (
	"fmt"
	"math"
	"testing"
)

func ringWithShards(n int) *ring {
	r := newRing(64, 1.25)
	for i := 0; i < n; i++ {
		r.addShard(i)
	}
	return r
}

// TestRingBoundedLoad places a large population and asserts no shard
// ever exceeds the bound ceil(average × factor) — the consistent-
// hashing-with-bounded-loads guarantee, which plain consistent hashing
// does not give.
func TestRingBoundedLoad(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 8} {
		r := ringWithShards(shards)
		const n = 1000
		for i := 0; i < n; i++ {
			s := r.place(fmt.Sprintf("obj-%04d", i))
			if s < 0 || s >= shards {
				t.Fatalf("%d shards: place returned %d", shards, s)
			}
			r.assign(s)
		}
		bound := int(math.Ceil(float64(n) / float64(shards) * 1.25))
		for idx, l := range r.loads {
			if l > bound {
				t.Errorf("%d shards: shard %d load %d exceeds bound %d", shards, idx, l, bound)
			}
		}
		if r.total != n {
			t.Errorf("%d shards: total %d, want %d", shards, r.total, n)
		}
	}
}

// TestRingRebalanceDeterministic pins that re-placement is a pure
// function of the member set and population: two rings walked through
// the same topology changes produce identical assignments, and a
// rebalance against an unchanged member set moves nothing.
func TestRingRebalanceDeterministic(t *testing.T) {
	build := func() (*ring, map[string]int) {
		r := ringWithShards(3)
		cur := make(map[string]int)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("obj-%03d", i)
			s := r.place(k)
			r.assign(s)
			cur[k] = s
		}
		r.addShard(3)
		moves := r.rebalance(cur)
		for k, to := range moves {
			cur[k] = to
		}
		return r, cur
	}
	r1, cur1 := build()
	_, cur2 := build()
	for k, s := range cur1 {
		if cur2[k] != s {
			t.Fatalf("non-deterministic rebalance: %s on %d vs %d", k, s, cur2[k])
		}
	}
	// Idempotence: same members, same population → no moves.
	if again := r1.rebalance(cur1); len(again) != 0 {
		t.Fatalf("rebalance against unchanged members moved %d objects", len(again))
	}
}

// TestRingRemovedShardNeverPlaced pins that place and rebalance never
// select a removed shard, and that removal forces every resident
// object to move.
func TestRingRemovedShardNeverPlaced(t *testing.T) {
	r := ringWithShards(4)
	cur := make(map[string]int)
	for i := 0; i < 160; i++ {
		k := fmt.Sprintf("obj-%03d", i)
		s := r.place(k)
		r.assign(s)
		cur[k] = s
	}
	r.removeShard(2)
	moves := r.rebalance(cur)
	for k, was := range cur {
		to, moved := moves[k]
		if moved && to == 2 {
			t.Fatalf("%s rebalanced onto removed shard 2", k)
		}
		if was == 2 && !moved {
			t.Fatalf("%s stranded on removed shard 2", k)
		}
	}
	for i := 0; i < 100; i++ {
		if s := r.place(fmt.Sprintf("new-%03d", i)); s == 2 {
			t.Fatal("place selected a removed shard")
		}
	}
}

// TestRingPlaceZeroAlloc pins the hot path: a placement lookup must
// not allocate (the old mod-hash path paid one fnv.New32a allocation
// per routing decision).
func TestRingPlaceZeroAlloc(t *testing.T) {
	r := ringWithShards(4)
	for i := 0; i < 64; i++ {
		r.assign(r.place(fmt.Sprintf("obj-%03d", i)))
	}
	var sink int
	allocs := testing.AllocsPerRun(200, func() {
		sink = r.place("obj-042")
	})
	if allocs != 0 {
		t.Fatalf("place allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}

func BenchmarkRingPlace(b *testing.B) {
	r := ringWithShards(8)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj-%04d", i)
		r.assign(r.place(keys[i]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.place(keys[i%len(keys)])
	}
}

func BenchmarkHash64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hash64("obj-0042")
	}
}
