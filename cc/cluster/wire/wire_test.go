package wire

import (
	"net/http"
	"testing"
)

// TestStatusMapping pins every error code's HTTP status — the wire
// contract says a shipped code never changes its status.
func TestStatusMapping(t *testing.T) {
	want := map[ErrorCode]int{
		CodeBadRequest:  400,
		CodeTooLarge:    413,
		CodeNotFound:    404,
		CodeConflict:    409,
		CodeUnavailable: 503,
		CodeStaleRing:   421,
		CodeInternal:    500,
	}
	if len(want) != len(httpStatus) {
		t.Fatalf("status table has %d codes, test pins %d — pin the new code", len(httpStatus), len(want))
	}
	for code, status := range want {
		if got := code.HTTPStatus(); got != status {
			t.Errorf("%s.HTTPStatus() = %d, want %d", code, got, status)
		}
		if got := CodeForStatus(status); got != code {
			t.Errorf("CodeForStatus(%d) = %s, want %s", status, got, code)
		}
	}
	if got := ErrorCode("no_such_code").HTTPStatus(); got != http.StatusInternalServerError {
		t.Errorf("unknown code status = %d, want 500", got)
	}
	if got := CodeForStatus(418); got != CodeInternal {
		t.Errorf("CodeForStatus(418) = %s, want internal", got)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := Errf(CodeNotFound, "object %q", "x")
	if e.Error() != `not_found: object "x"` {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestReadTargetValid(t *testing.T) {
	for _, tc := range []struct {
		t  ReadTarget
		ok bool
	}{
		{"", true}, {ReadAffinity, true}, {ReadAny, true},
		{"bogus", false}, {"Affinity", false},
	} {
		if got := tc.t.Valid(); got != tc.ok {
			t.Errorf("ReadTarget(%q).Valid() = %v, want %v", tc.t, got, tc.ok)
		}
	}
}
