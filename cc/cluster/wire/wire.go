// Package wire is the versioned wire contract between a cluster
// server (cc/cluster's HTTP front-end, cmd/ccserved) and its clients
// (cc/client, cmd/ccload): every request and response struct, the
// typed error codes with their pinned HTTP status mapping, the
// per-request read targets, and the hardened JSON decoding rules.
//
// The contract is part of the public cc facade and follows its
// compatibility rules (the API-lock test pins the surface): within a
// protocol version, fields are only added, never removed or renamed,
// and the status mapping of an error code never changes.
//
// # Protocol versions
//
//	v0  (PR 4)   ad-hoc JSON inline in cc/cluster: one round-trip per
//	             operation, errors as {"error":"message"} strings.
//	             Superseded; no longer served.
//	v1  (this)   this package: typed {"error":{"code","message"}}
//	             errors, POST /v1/batch with ordered per-session
//	             invocation groups, per-request read targets, and
//	             NDJSON verdict streaming on GET /v1/monitor/stream.
//	v1 (PR 6)    additive, same version: POST /v1/fault (scripted
//	             partition/heal/crash/restart and per-link
//	             delay/jitter/drop), GET /v1/readyz (readiness split
//	             from liveness: 503 while draining), session failover
//	             fields (InvokeRequest.Replica / BatchGroup.Replica
//	             pin a replica; Frontiers re-attach a session's causal
//	             frontier, preserving read-your-writes across
//	             failover), frontier echoes on update responses,
//	             HealthzResponse.{Shards,Replicas,Replication}, and
//	             MonitorSummary.StreamDropped. Old v1 clients ignore
//	             the new response fields; old servers reject the new
//	             request fields as unknown, which a client treats as
//	             "no failover support".
//	v1 (PR 7)    additive, same version: elastic sharding. GET
//	             /v1/ring describes the consistent-hash ring
//	             (RingResponse); requests may carry the ring epoch
//	             they were routed under (InvokeRequest.Epoch,
//	             BatchRequest.Epoch), and a server whose topology has
//	             moved on answers CodeStaleRing (421) — a retryable
//	             redirect telling the client to refresh its ring and
//	             retry; every response carries the current epoch in
//	             the X-CCBM-Ring-Epoch header; ShardStats.Drained
//	             marks shards whose objects have migrated away. A
//	             request with no epoch (0) is served unconditionally,
//	             so pre-elastic clients keep working.
//	v1 (PR 8)    additive, same version: consistency SLAs. GET
//	             /v1/staleness reports per-replica per-origin
//	             high-water timestamps (StalenessResponse); query
//	             responses piggyback the serving replica's high-water
//	             vector (InvokeResponse.HighWater) so SLA clients
//	             track staleness for free on the hot path; the
//	             ReadReplica target plus InvokeRequest.ReadReplica /
//	             BatchGroup.ReadReplica route one query to an explicit
//	             replica without moving the session (the
//	             bounded-staleness read); FaultReplicaDelay injects a
//	             per-replica serving delay (asymmetric topologies);
//	             ReadyzResponse.MaxLagUS and RingShard.ReplicaLagUS
//	             expose replication lag; StatsResponse.WeakReads
//	             counts session-unordered reads distinctly.
//
// GET /v1/healthz reports the protocol version a server speaks, so a
// client can refuse a mismatched server instead of misparsing it.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/paper-repro/ccbm/cc/checker"
)

// ProtocolVersion is the wire protocol version this package defines.
// It is carried by HealthzResponse and bumped on any change an
// existing client could misparse.
const ProtocolVersion = 1

// PathPrefix is the URL prefix of every versioned endpoint.
const PathPrefix = "/v1"

// Body-size limits enforced by the server (http.MaxBytesReader).
// Single-operation requests are tiny; only the batch endpoint carries
// real payloads.
const (
	// MaxRequestBytes bounds every non-batch request body.
	MaxRequestBytes = 1 << 20
	// MaxBatchBytes bounds a POST /v1/batch body.
	MaxBatchBytes = 16 << 20
)

// ErrorCode classifies a request failure. Codes are part of the wire
// contract: clients dispatch on them (retry on CodeUnavailable, fail
// fast otherwise), so a code, once shipped, keeps its meaning and its
// HTTP status.
type ErrorCode string

const (
	// CodeBadRequest: the request is malformed — undecodable JSON,
	// unknown fields, missing required fields, an unknown ADT or read
	// target, or an out-of-range shard/replica index.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeTooLarge: the request body exceeded the server's limit.
	CodeTooLarge ErrorCode = "too_large"
	// CodeNotFound: the named object does not exist.
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict: the object exists with a different ADT.
	CodeConflict ErrorCode = "conflict"
	// CodeUnavailable: the cluster is draining or closed, the routed
	// replica is crash-stopped, or the replica could not catch up to
	// the request's frontier in time; the request was valid and may be
	// retried (possibly against another replica).
	CodeUnavailable ErrorCode = "unavailable"
	// CodeStaleRing: the request carried a ring epoch older than the
	// server's current topology (a shard was added or drained since the
	// client last looked). Retryable after a ring refresh (GET
	// /v1/ring); the operation itself never ran.
	CodeStaleRing ErrorCode = "stale_ring"
	// CodeInternal: the server failed to produce a response.
	CodeInternal ErrorCode = "internal"
)

// httpStatus pins the HTTP status of every error code. The table-
// driven status suite in cc/cluster asserts this mapping end to end,
// so the wire package cannot silently change a code's status.
var httpStatus = map[ErrorCode]int{
	CodeBadRequest:  http.StatusBadRequest,            // 400
	CodeTooLarge:    http.StatusRequestEntityTooLarge, // 413
	CodeNotFound:    http.StatusNotFound,              // 404
	CodeConflict:    http.StatusConflict,              // 409
	CodeUnavailable: http.StatusServiceUnavailable,    // 503
	CodeStaleRing:   http.StatusMisdirectedRequest,    // 421 — keeps CodeForStatus bijective
	CodeInternal:    http.StatusInternalServerError,   // 500
}

// HTTPStatus returns the pinned HTTP status of the code (500 for an
// unknown code: an unrecognized failure is an internal one).
func (c ErrorCode) HTTPStatus() int {
	if s, ok := httpStatus[c]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// CodeForStatus is the client-side fallback mapping for responses
// whose body carried no typed error (a proxy error page, a v0
// server): the inverse of HTTPStatus where it is one, CodeInternal
// otherwise.
func CodeForStatus(status int) ErrorCode {
	for c, s := range httpStatus {
		if s == status {
			return c
		}
	}
	return CodeInternal
}

// Error is the typed wire error: a stable code plus a human-readable
// message. It implements error, so clients can errors.As on it.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Errf builds an Error with a formatted message.
func Errf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Error implements the error interface.
func (e *Error) Error() string { return string(e.Code) + ": " + e.Message }

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Err *Error `json:"error"`
}

// ReadTarget is the per-request consistency target of a query
// (Pileus-style): how strongly the read is tied to its session.
type ReadTarget string

const (
	// ReadAffinity (the default, also the meaning of an empty target)
	// routes the query to the session's pinned replica, preserving the
	// paper's sequential-process view: the session reads its own
	// completed updates.
	ReadAffinity ReadTarget = "affinity"
	// ReadAny routes the query to any replica of the object's shard
	// (round-robin), trading the session guarantees for load spread:
	// the read may miss the session's own recent updates, and it is
	// excluded from the session's monitored history (it deliberately
	// left the session ordering the monitor checks).
	ReadAny ReadTarget = "any"
	// ReadReplica routes the query to the explicit replica named by
	// the request's ReadReplica field, without moving the session's
	// updates off its pinned replica — the SLA router's primitive for
	// bounded-staleness and eventual reads against a chosen replica.
	// Like ReadAny it abandons the session ordering: the read is
	// excluded from the monitored history, and counted as a weak read.
	ReadReplica ReadTarget = "replica"
)

// Valid reports whether the target is one the protocol defines (the
// empty string counts as ReadAffinity).
func (t ReadTarget) Valid() bool {
	return t == "" || t == ReadAffinity || t == ReadAny || t == ReadReplica
}

// Weak reports whether the target abandons the session ordering
// (ReadAny, ReadReplica): such reads are excluded from the monitored
// history and counted in StatsResponse.WeakReads.
func (t ReadTarget) Weak() bool {
	return t == ReadAny || t == ReadReplica
}

// CreateObjectRequest registers a named object of a registered ADT.
// POST /v1/objects; idempotent when the ADT matches.
type CreateObjectRequest struct {
	Name string `json:"name"`
	ADT  string `json:"adt"`
}

// OKResponse acknowledges a request with no payload (create, crash).
type OKResponse struct {
	OK bool `json:"ok"`
}

// HealthzResponse reports liveness, the cluster's criterion and
// topology, and the protocol version the server speaks. GET
// /v1/healthz. Liveness only — a draining server still answers OK
// here; readiness is GET /v1/readyz.
type HealthzResponse struct {
	OK        bool   `json:"ok"`
	Criterion string `json:"criterion"`
	Protocol  int    `json:"protocol"`
	// Shards and Replicas describe the topology (a failover client
	// rotates its replica pin modulo Replicas); Replication names the
	// dissemination backend ("broadcast" or "antientropy"). Zero/empty
	// on pre-PR-6 servers.
	Shards      int    `json:"shards,omitempty"`
	Replicas    int    `json:"replicas,omitempty"`
	Replication string `json:"replication,omitempty"`
}

// ReadyzResponse reports readiness to take traffic. GET /v1/readyz:
// status 200 with Ready=true while serving, 503 with Ready=false
// while draining (SIGTERM received, in-flight requests finishing) —
// so a load balancer or chaos harness can tell drain from death
// (a dead process answers neither endpoint).
type ReadyzResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Protocol int  `json:"protocol"`
	// MaxLagUS is the largest per-replica replication lag across the
	// cluster, in microseconds: the worst componentwise deficit of any
	// replica's high-water vector against its shard's freshest — how
	// far behind the slowest replica's anti-entropy/broadcast delivery
	// is running. 0 when fully converged.
	MaxLagUS int64 `json:"max_lag_us,omitempty"`
}

// RingEpochHeader is the response header every versioned endpoint
// carries: the server's current ring epoch, so a client can notice a
// topology change from any response without polling GET /v1/ring.
const RingEpochHeader = "X-CCBM-Ring-Epoch"

// RingShard is one shard's slot in a RingResponse. Drained slots stay
// listed (indices are stable) but take no placements.
type RingShard struct {
	Shard   int  `json:"shard"`
	Active  bool `json:"active"`
	Drained bool `json:"drained,omitempty"`
	// Objects is the shard's placement load (hosted objects);
	// Invocations its served operations since start — together they
	// show both placement balance and traffic balance.
	Objects     int   `json:"objects"`
	Invocations int64 `json:"invocations"`
	// ReplicaLagUS is the per-replica replication lag (microseconds):
	// each replica's worst per-origin high-water deficit against the
	// shard-wide freshest vector. Empty on drained shards.
	ReplicaLagUS []int64 `json:"replica_lag_us,omitempty"`
}

// RingResponse describes the server's consistent-hash ring. GET
// /v1/ring. Epoch bumps on every topology change (shard added or
// drained); a client echoes it on requests (InvokeRequest.Epoch) to
// be told — via CodeStaleRing — when its view goes stale.
type RingResponse struct {
	Epoch      int64       `json:"epoch"`
	VNodes     int         `json:"vnodes"`
	LoadFactor float64     `json:"load_factor"`
	Shards     []RingShard `json:"shards"`
	Protocol   int         `json:"protocol"`
}

// ShardFrontier is one shard's causal delivery frontier: the
// per-origin count of delivered updates at the replica that served
// the request. A server echoes it on update responses in the causal
// criteria (CC, CCv); a client hands its accumulated frontiers back
// when re-attaching the session to another replica, and the new
// replica serves only once its own frontier dominates — preserving
// read-your-writes across failover. Non-causal criteria (PC, EC)
// have no frontier to exchange.
type ShardFrontier struct {
	Shard int   `json:"shard"`
	VC    []int `json:"vc"`
}

// InvokeRequest executes one operation. POST /v1/invoke. All requests
// carrying the same session id must come from one sequential client.
type InvokeRequest struct {
	Session int        `json:"session"`
	Object  string     `json:"object"`
	Method  string     `json:"method"`
	Args    []int      `json:"args,omitempty"`
	Target  ReadTarget `json:"target,omitempty"`
	// Replica pins the session to an explicit replica instead of the
	// default (session id mod replica count) — the failover hook. Nil
	// keeps the default.
	Replica *int `json:"replica,omitempty"`
	// Frontiers re-attaches the session's causal frontier (see
	// ShardFrontier); the server waits until the serving replica has
	// caught up, or fails with CodeUnavailable.
	Frontiers []ShardFrontier `json:"frontiers,omitempty"`
	// Epoch is the ring epoch the client routed under; a server whose
	// topology has moved on answers CodeStaleRing instead of serving.
	// 0 (or absent) serves unconditionally.
	Epoch int64 `json:"epoch,omitempty"`
	// ReadReplica names the serving replica of a ReadReplica-target
	// query. Required (and in range) when Target is ReadReplica;
	// ignored otherwise. Unlike Replica it moves only this query, not
	// the session.
	ReadReplica *int `json:"read_replica,omitempty"`
}

// HighWater is a replica's per-origin high-water vector: HW[o] is the
// wall-clock send stamp (unix nanos) of the latest update batch the
// replica has delivered from origin o, initialized to the replica's
// birth. Piggybacked on query responses; the componentwise deficit
// against the freshest vector seen anywhere is the replica's
// staleness, which bounded-staleness SLAs compare against.
type HighWater struct {
	Shard   int     `json:"shard"`
	Replica int     `json:"replica"`
	HW      []int64 `json:"hw"`
}

// InvokeResponse is the wire form of one operation's result. Output
// is the display rendering; Bot/Vals carry the structured value.
type InvokeResponse struct {
	Output string `json:"output"`
	Bot    bool   `json:"bot"`
	Vals   []int  `json:"vals,omitempty"`
	// Frontier is the serving replica's causal frontier after an
	// update, in the causal criteria — and after a weak query (ReadAny,
	// ReadReplica), where it lets the client compare the session's
	// accumulated frontier against the serving replica's at response
	// time: dominance means the weak read delivered read-my-writes
	// anyway, the upgrade the SLA verdict machinery records. Nil
	// otherwise.
	Frontier *ShardFrontier `json:"frontier,omitempty"`
	// HighWater is the serving replica's high-water vector, piggybacked
	// on every successful operation so SLA clients track per-replica
	// staleness for free on the hot path.
	HighWater *HighWater `json:"hw,omitempty"`
}

// CrashRequest crash-stops one replica of one shard. POST /v1/crash.
type CrashRequest struct {
	Shard   int `json:"shard"`
	Replica int `json:"replica"`
}

// FaultAction names one scripted fault of a FaultRequest.
type FaultAction string

const (
	// FaultPartition cuts every link between the replica groups in
	// Groups (both directions; cuts accumulate until a heal). Messages
	// lost to the cut are recovered by the replication backend's
	// repair path after FaultHeal, if it has one (anti-entropy always;
	// broadcast only with resync enabled).
	FaultPartition FaultAction = "partition"
	// FaultHeal removes every partition cut and triggers the
	// backend's repair path on every replica.
	FaultHeal FaultAction = "heal"
	// FaultCrash crash-stops one replica: it stops receiving, its
	// queued deliveries drop, and it refuses service with
	// CodeUnavailable until restarted.
	FaultCrash FaultAction = "crash"
	// FaultRestart revives a crashed replica and triggers the repair
	// path so it catches up on what it missed.
	FaultRestart FaultAction = "restart"
	// FaultLink degrades one link: delay plus uniform jitter plus a
	// drop probability. Zero values clear the link's fault.
	FaultLink FaultAction = "link"
	// FaultLinkClear removes every per-link degradation.
	FaultLinkClear FaultAction = "link_clear"
	// FaultReplicaDelay injects a fixed serving delay (DelayUS) on one
	// replica index, across every shard: each operation served by that
	// replica sleeps the delay before answering — the asymmetric-
	// latency topology the SLA router is built to exploit. 0 clears
	// the replica's delay.
	FaultReplicaDelay FaultAction = "replica_delay"
)

// FaultRequest injects one scripted fault. POST /v1/fault. Every
// injected fault is a legal behavior of the paper's asynchronous
// system (arbitrary finite delays, message loss, crash-stop) — the
// endpoint only makes the adversary schedulable, which is what the
// chaos harness drives. Shard selects one shard; nil applies the
// fault to every shard.
type FaultRequest struct {
	Action   FaultAction `json:"action"`
	Shard    *int        `json:"shard,omitempty"`
	Replica  int         `json:"replica,omitempty"`   // crash, restart
	Groups   [][]int     `json:"groups,omitempty"`    // partition: replica groups to separate
	From     int         `json:"from,omitempty"`      // link
	To       int         `json:"to,omitempty"`        // link
	DelayUS  int64       `json:"delay_us,omitempty"`  // link: fixed delay, microseconds
	JitterUS int64       `json:"jitter_us,omitempty"` // link: uniform extra delay bound
	Drop     float64     `json:"drop,omitempty"`      // link: drop probability in [0,1]
}

// ReplicaStaleness is one replica's slice of a ShardStaleness: its
// high-water vector (see HighWater) and its lag — the worst
// per-origin deficit against the shard-wide freshest vector, in
// microseconds.
type ReplicaStaleness struct {
	HW    []int64 `json:"hw"`
	LagUS int64   `json:"lag_us"`
}

// ShardStaleness is one shard's slice of a StalenessResponse:
// Replicas[r] is replica r's high-water state. Drained shards keep
// their slot with no replicas.
type ShardStaleness struct {
	Shard    int                `json:"shard"`
	Drained  bool               `json:"drained,omitempty"`
	Replicas []ReplicaStaleness `json:"replicas,omitempty"`
}

// StalenessResponse is the cluster-wide staleness snapshot. GET
// /v1/staleness. An SLA client refreshes it periodically to re-learn
// conditions at replicas its router has been avoiding (their
// piggybacked vectors stop arriving once no reads route there).
type StalenessResponse struct {
	Shards   []ShardStaleness `json:"shards"`
	Protocol int              `json:"protocol"`
}

// BatchOp is one operation inside a batch group.
type BatchOp struct {
	Object string `json:"object"`
	Method string `json:"method"`
	Args   []int  `json:"args,omitempty"`
}

// BatchGroup is one session's ordered run of operations. The server
// executes a group's operations in slice order under the session's
// sequential discipline; distinct groups are independent sessions and
// execute concurrently (their operations commute in the paper's
// session-based causal model).
type BatchGroup struct {
	Session int        `json:"session"`
	Target  ReadTarget `json:"target,omitempty"`
	Ops     []BatchOp  `json:"ops"`
	// Replica and Frontiers are the session failover hook (see
	// InvokeRequest): pin the serving replica and wait for it to reach
	// the session's causal frontier before the group runs.
	Replica   *int            `json:"replica,omitempty"`
	Frontiers []ShardFrontier `json:"frontiers,omitempty"`
	// ReadReplica names the serving replica of the group's queries when
	// Target is ReadReplica (see InvokeRequest.ReadReplica). Updates in
	// the group still run at the session's pinned replica.
	ReadReplica *int `json:"read_replica,omitempty"`
}

// BatchRequest is an ordered set of per-session invocation groups.
// POST /v1/batch. A session id may appear in at most one group (two
// groups for one session would race its program order); the server
// rejects duplicates with CodeBadRequest.
type BatchRequest struct {
	Groups []BatchGroup `json:"groups"`
	// Epoch is the ring epoch the client routed under (see
	// InvokeRequest.Epoch); stale epochs fail the whole batch with
	// CodeStaleRing before any group runs.
	Epoch int64 `json:"epoch,omitempty"`
}

// BatchResult is one operation's outcome: exactly one of Output and
// Err is set. A failed operation does not abort its group; later
// operations still run (each carries its own result).
type BatchResult struct {
	Output *InvokeResponse `json:"output,omitempty"`
	Err    *Error          `json:"error,omitempty"`
}

// BatchGroupResult mirrors one BatchGroup: Results[i] is Ops[i]'s
// outcome. Frontiers carries the serving replica's causal frontier
// for every shard the group updated (causal criteria only).
type BatchGroupResult struct {
	Session   int             `json:"session"`
	Results   []BatchResult   `json:"results"`
	Frontiers []ShardFrontier `json:"frontiers,omitempty"`
}

// BatchResponse mirrors the request: Groups[i] answers request group
// i.
type BatchResponse struct {
	Groups []BatchGroupResult `json:"groups"`
}

// ShardStats is the per-shard slice of a StatsResponse. Crashed marks
// transport-level crashes (CrashReplica: the replica keeps serving
// its partitioned state wait-free); Down marks fault-injected
// crash-stops (the replica refuses service with CodeUnavailable until
// restarted).
type ShardStats struct {
	Crashed []bool `json:"crashed"`
	Down    []bool `json:"down,omitempty"`
	// Drained marks a shard whose objects have migrated away
	// (DrainShard): the slot keeps its index, but nothing serves there.
	Drained bool `json:"drained,omitempty"`
}

// StatsResponse is a point-in-time snapshot of the cluster's
// activity. GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Objects       int     `json:"objects"`
	Criterion     string  `json:"criterion"`
	Invocations   int64   `json:"invocations"`
	Updates       int64   `json:"updates"`
	Queries       int64   `json:"queries"`
	Applied       int64   `json:"applied"`
	Broadcasts    int64   `json:"broadcasts"`
	BatchedOps    int64   `json:"batched_ops"`
	// WeakReads counts queries served outside their session's ordering
	// (ReadAny, ReadReplica) — reads the monitor deliberately excludes
	// from its checked histories, so operators can see how much of the
	// read traffic carries the weaker guarantee.
	WeakReads int64        `json:"weak_reads,omitempty"`
	Shards    []ShardStats `json:"shards"`
}

// Verdict is the outcome of one criterion on one sampled monitor
// window (see cc/cluster.Monitor for the precise contract of a
// sampled verdict). Also the NDJSON line type of /v1/monitor/stream.
type Verdict struct {
	Object    string        `json:"object"`
	Criterion string        `json:"criterion"`
	Satisfied bool          `json:"satisfied"`
	Exhausted checker.Cause `json:"exhausted,omitempty"`
	Err       string        `json:"err,omitempty"`
	Ops       int           `json:"ops"`
	Sessions  int           `json:"sessions"`
	Explored  int64         `json:"explored"`
	ElapsedMS float64       `json:"elapsed_ms"`
}

// MonitorSummary aggregates the monitor's output so far. Exhausted
// counts verdict-less outcomes whose search ran out of budget or
// time; Errors counts hard checker failures. StreamDropped counts
// verdicts a stalled stream subscriber missed (the monitor never
// blocks on a subscriber) — a chaos run that asserts on streamed
// verdicts must check it to rule out clean-by-omission.
type MonitorSummary struct {
	SampledObjects   int       `json:"sampled_objects"`
	WindowsSubmitted int       `json:"windows_submitted"`
	WindowsDropped   int       `json:"windows_dropped"`
	Verdicts         int       `json:"verdicts"`
	Satisfied        int       `json:"satisfied"`
	Violations       []Verdict `json:"violations,omitempty"`
	Exhausted        int       `json:"exhausted"`
	Errors           int       `json:"errors"`
	StreamDropped    int       `json:"stream_dropped"`
	// CappedOps counts operations weakened or skipped because their
	// session arrived after a window already held its maximum distinct
	// sessions (MonitorConfig.MaxWindowSessions): over-cap updates are
	// recorded hidden, over-cap queries are not recorded.
	CappedOps int `json:"capped_ops,omitempty"`
}

// MonitorResponse answers GET /v1/monitor; Verdicts is populated only
// when the request asked for it (?verdicts=1).
type MonitorResponse struct {
	Summary  MonitorSummary `json:"summary"`
	Verdicts []Verdict      `json:"verdicts,omitempty"`
}

// DecodeJSON reads one JSON value from an HTTP request body under the
// protocol's hardening rules: the body is capped at maxBytes
// (http.MaxBytesReader), unknown fields are rejected, and trailing
// data after the value is rejected. A nil return means dst is
// populated.
func DecodeJSON(w http.ResponseWriter, r *http.Request, dst any, maxBytes int64) *Error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return Errf(CodeTooLarge, "request body exceeds %d bytes", mbe.Limit)
		}
		return Errf(CodeBadRequest, "invalid JSON: %v", err)
	}
	if dec.More() {
		return Errf(CodeBadRequest, "trailing data after JSON value")
	}
	return nil
}
