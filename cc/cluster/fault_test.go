package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// TestStopReplicaUnavailableWire pins the wire contract for a crashed
// replica: a session routed to it gets CodeUnavailable (HTTP 503,
// retryable) — never CodeInternal (500, not retryable) — and the
// replica serves again after a restart.
func TestStopReplicaUnavailableWire(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Criterion: "CC",
		Replicas:  3,
		Resync:    true,
		Monitor:   cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateObject("ctr", "Counter"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewHTTPHandler(c))
	defer srv.Close()

	invoke := func(sess int) (int, *wire.Error) {
		body, _ := json.Marshal(&wire.InvokeRequest{Session: sess, Object: "ctr", Method: "inc", Args: []int{1}})
		resp, err := http.Post(srv.URL+"/v1/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return resp.StatusCode, nil
		}
		var er wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("non-2xx body is not an ErrorResponse: %v", err)
		}
		return resp.StatusCode, er.Err
	}

	// Session 1 routes to replica 1 (session id mod replica count).
	if status, werr := invoke(1); status != http.StatusOK {
		t.Fatalf("healthy invoke: status %d, err %v", status, werr)
	}
	if err := c.StopReplica(cluster.AllShards, 1); err != nil {
		t.Fatal(err)
	}
	status, werr := invoke(1)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("crashed-replica invoke: status %d (err %v), want 503", status, werr)
	}
	if werr == nil || werr.Code != wire.CodeUnavailable {
		t.Fatalf("crashed-replica invoke: code %v, want %v", werr, wire.CodeUnavailable)
	}
	// Sessions on live replicas are untouched.
	if status, werr := invoke(0); status != http.StatusOK {
		t.Fatalf("live-replica invoke during crash: status %d, err %v", status, werr)
	}
	if err := c.RestartReplica(cluster.AllShards, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConvergence(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if status, werr := invoke(1); status != http.StatusOK {
		t.Fatalf("restarted-replica invoke: status %d, err %v", status, werr)
	}
}

// TestConvergenceAfterPartitionProperty is the anti-entropy
// acceptance property, run against both backends and across the
// criteria families (delivery-order CC vs arbitrated EC/CCv): random
// mixed-ADT updates land on both sides of a partition, the heal's
// repair path runs, and every replica reaches an identical
// fingerprint. The EC run also demands satisfied monitor verdicts —
// the paper's eventual-consistency witness over the live execution.
func TestConvergenceAfterPartitionProperty(t *testing.T) {
	adts := []string{"Counter", "Register", "GSet", "RWSet"}
	for _, tc := range []struct {
		criterion, replication string
	}{
		{"CC", "antientropy"},
		{"CC", "broadcast"},
		{"EC", "antientropy"},
		{"EC", "broadcast"},
		{"CCv", "antientropy"},
		{"CCv", "broadcast"},
	} {
		t.Run(tc.criterion+"/"+tc.replication, func(t *testing.T) {
			c, err := cluster.New(cluster.Config{
				Criterion:      tc.criterion,
				Replicas:       3,
				Replication:    tc.replication,
				GossipInterval: 2 * time.Millisecond,
				Resync:         true,
				Monitor: cluster.MonitorConfig{
					SampleEvery: 1,
					WindowOps:   8,
					Timeout:     5 * time.Second,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, adt := range adts {
				if err := c.CreateObject(fmt.Sprintf("o%d", i), adt); err != nil {
					t.Fatal(err)
				}
			}
			// Replica 0 on one side, 1 and 2 on the other; sessions keep
			// writing to their home replicas on both sides (wait-free).
			if err := c.PartitionReplicas(cluster.AllShards, [][]int{{0}, {1, 2}}); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 120; i++ {
				sess := rng.Intn(6)
				oi := rng.Intn(len(adts))
				name, kind := fmt.Sprintf("o%d", oi), adts[oi]
				var err error
				if rng.Float64() < 0.6 {
					_, err = c.Session(sess).Call(name, updateMethod[kind], sess*1000+i)
				} else {
					_, err = c.Session(sess).Call(name, queryMethod[kind])
				}
				if err != nil {
					t.Fatalf("op %d (session %d, %s): %v", i, sess, name, err)
				}
			}
			repaired, err := c.Heal(cluster.AllShards)
			if err != nil {
				t.Fatal(err)
			}
			if !repaired {
				t.Fatal("Heal repaired nothing: partition was not in force")
			}
			if err := c.AwaitConvergence(10 * time.Second); err != nil {
				t.Fatalf("%v (fingerprints %v)", err, c.Fingerprints())
			}
			for si, fps := range c.Fingerprints() {
				for r := 1; r < len(fps); r++ {
					if fps[r] != fps[0] {
						t.Fatalf("shard %d replica %d fingerprint %x != replica 0's %x", si, r, fps[r], fps[0])
					}
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			sum := c.Monitor().Summary()
			for _, v := range sum.Violations {
				t.Errorf("monitor violation: %+v", v)
			}
			if tc.criterion == "EC" && sum.Satisfied == 0 {
				t.Fatalf("EC run produced no satisfied verdicts: %+v", sum)
			}
		})
	}
}

// TestMonitorStreamDropped pins the subscriber-overflow accounting: a
// subscriber that never drains its channel loses verdicts past the
// buffer, and the monitor counts every silent drop instead of
// blocking the checker pipeline. A sampled object yields exactly one
// window, so overflowing the ~256-verdict buffer takes many objects.
func TestMonitorStreamDropped(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Criterion: "EC",
		Replicas:  2,
		Monitor: cluster.MonitorConfig{
			SampleEvery: 1,
			WindowOps:   2,
			Grace:       time.Millisecond,
			Timeout:     5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, cancel := c.Monitor().Subscribe() // never drained
	defer cancel()
	s := c.Session(0)
	const objects = 400
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("ctr-%d", i)
		if err := c.CreateObject(name, "Counter"); err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 2; op++ {
			if _, err := s.Call(name, "inc", 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Monitor().Summary().StreamDropped == 0 {
		if time.Now().After(deadline) {
			sum := c.Monitor().Summary()
			t.Fatalf("no stream drops after %d verdicts (%d windows submitted, %d dropped)",
				sum.Verdicts, sum.WindowsSubmitted, sum.WindowsDropped)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
