package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// TestHTTPStatusTable is the table-driven pin of the wire protocol's
// HTTP status mapping, end to end through the real handler: per error
// class the status and the typed error code can't silently change.
func TestHTTPStatusTable(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards:   1,
		Replicas: 2,
		Monitor:  cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateObject("k", "Counter"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewHTTPHandler(c))
	defer srv.Close()

	closed, err := cluster.New(cluster.Config{Monitor: cluster.MonitorConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	closedSrv := httptest.NewServer(cluster.NewHTTPHandler(closed))
	defer closedSrv.Close()

	hugeBody := `{"name":"` + strings.Repeat("x", wire.MaxRequestBytes+4096) + `","adt":"Counter"}`

	cases := []struct {
		name       string
		server     *httptest.Server
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   wire.ErrorCode // "" for success responses
	}{
		{"healthz ok", srv, "GET", "/v1/healthz", "", 200, ""},
		{"create ok", srv, "POST", "/v1/objects", `{"name":"fresh","adt":"Register"}`, 200, ""},
		{"invoke ok", srv, "POST", "/v1/invoke", `{"session":1,"object":"k","method":"inc","args":[1]}`, 200, ""},
		{"batch ok", srv, "POST", "/v1/batch", `{"groups":[{"session":1,"ops":[{"object":"k","method":"get"}]}]}`, 200, ""},
		{"crash ok", srv, "POST", "/v1/crash", `{"shard":0,"replica":1}`, 200, ""},

		{"invalid json", srv, "POST", "/v1/objects", `{"name":`, 400, wire.CodeBadRequest},
		{"unknown field", srv, "POST", "/v1/objects", `{"name":"x","adt":"Counter","bogus":1}`, 400, wire.CodeBadRequest},
		{"trailing data", srv, "POST", "/v1/objects", `{"name":"x","adt":"Counter"}{"again":1}`, 400, wire.CodeBadRequest},
		{"missing fields", srv, "POST", "/v1/objects", `{"name":"x"}`, 400, wire.CodeBadRequest},
		{"unknown adt", srv, "POST", "/v1/objects", `{"name":"x","adt":"NoSuchADT"}`, 400, wire.CodeBadRequest},
		{"oversized body", srv, "POST", "/v1/objects", hugeBody, 413, wire.CodeTooLarge},
		{"type conflict", srv, "POST", "/v1/objects", `{"name":"k","adt":"Register"}`, 409, wire.CodeConflict},

		{"invoke unknown object", srv, "POST", "/v1/invoke", `{"session":1,"object":"ghost","method":"get"}`, 404, wire.CodeNotFound},
		{"invoke unknown method", srv, "POST", "/v1/invoke", `{"session":1,"object":"k","method":"frobnicate"}`, 400, wire.CodeBadRequest},
		{"invoke bad arity", srv, "POST", "/v1/invoke", `{"session":1,"object":"k","method":"inc","args":[1,2]}`, 400, wire.CodeBadRequest},
		{"invoke bad target", srv, "POST", "/v1/invoke", `{"session":1,"object":"k","method":"get","target":"bogus"}`, 400, wire.CodeBadRequest},

		{"batch no groups", srv, "POST", "/v1/batch", `{"groups":[]}`, 400, wire.CodeBadRequest},
		{"batch duplicate session", srv, "POST", "/v1/batch",
			`{"groups":[{"session":1,"ops":[{"object":"k","method":"get"}]},{"session":1,"ops":[{"object":"k","method":"get"}]}]}`,
			400, wire.CodeBadRequest},
		{"batch bad target", srv, "POST", "/v1/batch", `{"groups":[{"session":1,"target":"bogus","ops":[]}]}`, 400, wire.CodeBadRequest},

		{"crash bad shard", srv, "POST", "/v1/crash", `{"shard":9,"replica":0}`, 400, wire.CodeBadRequest},
		{"crash bad replica", srv, "POST", "/v1/crash", `{"shard":0,"replica":9}`, 400, wire.CodeBadRequest},

		{"create on closed cluster", closedSrv, "POST", "/v1/objects", `{"name":"x","adt":"Counter"}`, 503, wire.CodeUnavailable},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				resp *http.Response
				err  error
			)
			if tc.method == "GET" {
				resp, err = tc.server.Client().Get(tc.server.URL + tc.path)
			} else {
				resp, err = tc.server.Client().Post(tc.server.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content-type = %q", ct)
			}
			if tc.wantCode == "" {
				return
			}
			var er wire.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			if er.Err == nil || er.Err.Code != tc.wantCode {
				t.Fatalf("error body = %+v, want code %s", er.Err, tc.wantCode)
			}
			if er.Err.Message == "" {
				t.Fatal("error body carries no message")
			}
			if er.Err.Code.HTTPStatus() != tc.wantStatus {
				t.Fatalf("code %s pins status %d but response was %d", er.Err.Code, er.Err.Code.HTTPStatus(), tc.wantStatus)
			}
		})
	}
	c.Close()
}

// TestBatchEndpointSemantics pins per-op error isolation inside a
// group and the response's group/result mirroring.
func TestBatchEndpointSemantics(t *testing.T) {
	c, err := cluster.New(cluster.Config{Monitor: cluster.MonitorConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateObject("cnt", "Counter"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewHTTPHandler(c))
	defer srv.Close()

	body := `{"groups":[
		{"session":1,"ops":[
			{"object":"cnt","method":"inc","args":[5]},
			{"object":"ghost","method":"get"},
			{"object":"cnt","method":"get"}]},
		{"session":2,"ops":[{"object":"cnt","method":"inc","args":[1]}]}]}`
	resp, err := srv.Client().Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var br wire.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Groups) != 2 || br.Groups[0].Session != 1 || br.Groups[1].Session != 2 {
		t.Fatalf("groups = %+v", br.Groups)
	}
	g := br.Groups[0].Results
	if len(g) != 3 {
		t.Fatalf("group 0 results = %d", len(g))
	}
	if g[0].Err != nil || g[0].Output == nil || !g[0].Output.Bot {
		t.Fatalf("inc result = %+v", g[0])
	}
	if g[1].Err == nil || g[1].Err.Code != wire.CodeNotFound {
		t.Fatalf("ghost result = %+v", g[1])
	}
	// The failed op did not abort the group: the read still ran and
	// observed the session's earlier inc (read-your-writes).
	if g[2].Err != nil || g[2].Output == nil || len(g[2].Output.Vals) != 1 || g[2].Output.Vals[0] < 5 {
		t.Fatalf("get result = %+v", g[2])
	}
}
