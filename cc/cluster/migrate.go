package cluster

// Elastic sharding: live object migration behind AddShard/DrainShard.
//
// A migration is freeze → quiesce → ship → flip → drop:
//
//  1. Freeze. The object's gate is write-locked, so no new operation
//     can submit to any station for it; operations already submitted
//     are in the shard's broadcast pipeline.
//  2. Quiesce. Every source station flushes its pending batch, the
//     per-origin broadcast counts are snapshotted, and the migration
//     waits until every source replica's DeliveredBatches vector
//     dominates the snapshot — at that point every update of the
//     frozen object (and everything causally before it) is applied at
//     every source replica, in all four modes. Traffic for OTHER
//     objects on the shard keeps flowing throughout; its counts only
//     grow past the snapshot, never under it.
//  3. Ship. Each source replica's folded state for the object is
//     exported and imported replica-by-replica on the destination as
//     that replica's new fold base (core.Station.ImportObject). No log
//     entries travel: everything migrated is strictly in the past of
//     any timestamp the destination later assigns, so CCv's total
//     order extends causality across the move by construction, and a
//     session's own writes are in every destination replica's base —
//     read-your-writes survives without any frontier wait. Replica r
//     ships to replica r, preserving CC/PC's legitimate per-replica
//     divergence.
//  4. Flip + drop. The object's shard index flips to the destination,
//     the gate opens (queued operations proceed against the new
//     shard), and the source copies are dropped.
//
// A quiesce that cannot complete (a crashed source replica holds the
// count back) fails the migration after Config.MigrateTimeout: the
// object unfreezes untouched and keeps serving from the source shard;
// repair the replica and retry. DrainShard records the drained
// shard's final causal frontier so session frontiers naming it remain
// answerable (see drainedFrontier).

import (
	"fmt"
	"sort"
	"time"

	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// AddShard grows the cluster by one replica group, rebalances the
// object population onto the enlarged ring (bounded loads), and
// migrates every re-placed object live. It returns the new shard's
// index. The ring epoch bumps immediately, so clients refresh their
// topology; objects keep serving throughout (each is frozen only for
// its own quiesce-and-ship window).
func (c *Cluster) AddShard() (int, error) {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	idx := len(c.shards)
	sh := c.newShard(idx)
	shs := make([]*shard, idx+1)
	copy(shs, c.shards)
	shs[idx] = sh
	c.shards = shs
	c.ring.addShard(idx)
	moves := c.rebalanceLocked()
	c.epoch.Add(1)
	c.mu.Unlock()
	if err := c.migrateAll(moves); err != nil {
		return idx, err
	}
	return idx, nil
}

// DrainShard removes one replica group: its objects migrate live to
// the remaining shards, the shard's final causal frontier is recorded
// for session re-attachment, and its transports shut down. The slot
// keeps its index (stable shard numbering); routing never selects a
// drained shard again. Draining the last active shard is refused.
func (c *Cluster) DrainShard(idx int) error {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if idx < 0 || idx >= len(c.shards) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no shard %d", idx)
	}
	sh := c.shards[idx]
	if sh.drained.Load() {
		c.mu.Unlock()
		return fmt.Errorf("cluster: shard %d already drained", idx)
	}
	// Refuse to drain the last active shard — unless idx already left
	// the ring (a prior attempt failed mid-migration and this call is
	// resuming the partial drain).
	if _, member := c.ring.loads[idx]; member && len(c.ring.loads) <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot drain the last active shard")
	}
	if len(c.ring.loads) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no active shard to migrate to")
	}
	c.ring.removeShard(idx)
	moves := c.rebalanceLocked()
	c.epoch.Add(1)
	c.mu.Unlock()
	if err := c.migrateAll(moves); err != nil {
		// Partial drain: the ring no longer places onto idx, but objects
		// that failed to move keep serving there. Retry after repair.
		return err
	}
	// Record the handoff frontier before the transports close: a session
	// frontier naming this shard is answerable forever after.
	final := vclock.New(c.cfg.Replicas)
	for _, st := range sh.stations {
		st.Flush()
		if vc := st.Frontier(); vc != nil {
			final.Merge(vc)
		}
	}
	c.mu.Lock()
	c.drainFinal[idx] = final
	c.mu.Unlock()
	sh.drained.Store(true)
	sh.close()
	return nil
}

// rebalanceLocked re-places the whole population against the current
// ring members and returns the objects that must move, sorted by name
// for a deterministic migration order. Caller holds c.mu.
func (c *Cluster) rebalanceLocked() []move {
	cur := make(map[string]int, len(c.objects))
	for name, o := range c.objects {
		cur[name] = o.shard
	}
	moved := c.ring.rebalance(cur)
	moves := make([]move, 0, len(moved))
	for name, to := range moved {
		moves = append(moves, move{name: name, to: to})
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a].name < moves[b].name })
	return moves
}

// move is one planned object migration.
type move struct {
	name string
	to   int
}

// migrateAll runs the planned migrations one object at a time (each
// freezes only its own object; the rest of the population serves).
func (c *Cluster) migrateAll(moves []move) error {
	for _, mv := range moves {
		if err := c.migrate(mv.name, mv.to); err != nil {
			return fmt.Errorf("migrate %q to shard %d: %w", mv.name, mv.to, err)
		}
	}
	return nil
}

// migrate moves one object between shards: freeze, quiesce the source
// group, ship per-replica snapshots, flip the routing, drop the
// source copies. On error the object is untouched and still serves
// from its source shard.
func (c *Cluster) migrate(name string, to int) error {
	c.mu.RLock()
	o := c.objects[name]
	shs := c.shards
	c.mu.RUnlock()
	if o == nil {
		return nil // deleted concurrently; nothing to move
	}
	o.gate.Lock()
	defer o.gate.Unlock()
	from := o.shard
	if from == to || to < 0 || to >= len(shs) {
		return nil
	}
	src, dst := shs[from], shs[to]
	if err := c.quiesceShard(src, c.cfg.MigrateTimeout); err != nil {
		return err
	}
	for r, st := range dst.stations {
		state, ok := src.stations[r].ExportObject(name)
		if !ok {
			// The replica never hosted the object (no update ever reached
			// it before the freeze); create it at the initial state.
			if err := st.ImportObject(name, o.adtName, o.t.Init()); err != nil {
				return err
			}
			continue
		}
		if err := st.ImportObject(name, o.adtName, state); err != nil {
			return err
		}
	}
	c.mu.Lock()
	o.shard = to
	c.mu.Unlock()
	for _, st := range src.stations {
		st.DropObject(name)
	}
	return nil
}

// quiesceShard blocks until every station of the group has applied
// every batch any member had broadcast by the time of the call: flush
// all pending batches, snapshot the per-origin broadcast counts, and
// wait (capped exponential backoff) for each station's delivered
// vector to dominate the snapshot. Concurrent traffic on the shard
// only pushes the delivered vectors further; a crashed or partitioned
// replica makes the wait time out, failing the caller cleanly.
func (c *Cluster) quiesceShard(sh *shard, timeout time.Duration) error {
	for _, st := range sh.stations {
		st.Flush()
	}
	need := make([]int64, len(sh.stations))
	for i, st := range sh.stations {
		need[i] = st.Stats().Broadcasts
	}
	deadline := time.Now().Add(timeout)
	delay := 100 * time.Microsecond
	for {
		if c.shardQuietAt(sh, need) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: shard %d did not quiesce within %v", sh.idx, timeout)
		}
		time.Sleep(delay)
		if delay < 5*time.Millisecond {
			delay *= 2
		}
	}
}

// shardQuietAt reports whether every station's delivered-batch vector
// dominates need.
func (c *Cluster) shardQuietAt(sh *shard, need []int64) bool {
	for _, st := range sh.stations {
		got := st.DeliveredBatches()
		for i, n := range need {
			if i >= len(got) || got[i] < n {
				return false
			}
		}
	}
	return true
}

// drainedFrontier resolves a drained shard's recorded handoff
// frontier; ok reports whether the shard is drained.
func (c *Cluster) drainedFrontier(shardIdx int) (vclock.VC, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vc, ok := c.drainFinal[shardIdx]
	return vc, ok
}

// RingWire renders the ring's current topology and load accounting in
// wire form — the body of GET /v1/ring. Placement loads count hosted
// objects; Invocations reports each shard's served operations from
// core.Station stats, so a hot shard shows even when object counts
// are level.
func (c *Cluster) RingWire() *wire.RingResponse {
	c.mu.RLock()
	resp := &wire.RingResponse{
		Epoch:      c.epoch.Load(),
		LoadFactor: c.cfg.LoadFactor,
		VNodes:     c.cfg.VirtualNodes,
		Protocol:   wire.ProtocolVersion,
	}
	loads := make(map[int]int, len(c.ring.loads))
	for idx, l := range c.ring.loads {
		loads[idx] = l
	}
	shs := c.shards
	c.mu.RUnlock()
	for _, sh := range shs {
		rs := wire.RingShard{Shard: sh.idx, Drained: sh.drained.Load()}
		if !rs.Drained {
			rs.Active = true
			rs.Objects = loads[sh.idx]
			hws := make([][]int64, len(sh.stations))
			for r, st := range sh.stations {
				hws[r] = st.HighWater()
			}
			rs.ReplicaLagUS = shardLagUS(hws)
		}
		for _, st := range sh.stations {
			rs.Invocations += st.Stats().Invocations
		}
		resp.Shards = append(resp.Shards, rs)
	}
	return resp
}
