package cluster

// The bounded-load consistent-hash ring that replaced the static
// mod-hash placement: each shard owns a set of virtual nodes on a
// 64-bit ring, an object lands on the first shard clockwise from its
// hash whose load stays under the bound ceil((total+1)/shards ×
// factor) — consistent hashing with bounded loads (Mirrokni et al.),
// the same discipline as the CHWBL scheme in SNIPPETS. Topology
// changes (AddShard, DrainShard) re-place the whole population
// deterministically against a freshly built load table, so the set of
// moved objects is a pure function of the member set — no hidden
// history dependence.
//
// The ring's placement loads count objects; the serving-side load the
// operator sees (RingWire) additionally reports each shard's served
// invocations from core.Station stats, so a hot shard is visible even
// when object counts are level.

import (
	"fmt"
	"math"
	"sort"
)

// hash64 is FNV-1a over the string bytes, inlined so a ring lookup
// allocates nothing (hash/fnv's New32a costs one allocation per call,
// which the old shardOf paid on every placement).
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// vnode is one virtual node: a ring position owned by a shard.
type vnode struct {
	hash  uint64
	shard int
}

// ring is the placement state. Not safe for concurrent use; the
// cluster guards it with its own mutex.
type ring struct {
	vper   int     // virtual nodes per shard
	factor float64 // load bound multiplier (> 1)
	vnodes []vnode // sorted by hash
	loads  map[int]int
	total  int // sum of loads
}

func newRing(vper int, factor float64) *ring {
	return &ring{vper: vper, factor: factor, loads: make(map[int]int)}
}

// addShard inserts the shard's virtual nodes; no-op when present.
func (r *ring) addShard(idx int) {
	if _, ok := r.loads[idx]; ok {
		return
	}
	r.loads[idx] = 0
	for v := 0; v < r.vper; v++ {
		r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("shard-%d/vnode-%d", idx, v)), shard: idx})
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
}

// removeShard deletes the shard's virtual nodes and load slot; no-op
// when absent. Objects still assigned to it are the caller's to
// migrate (place never returns a removed shard).
func (r *ring) removeShard(idx int) {
	if _, ok := r.loads[idx]; !ok {
		return
	}
	r.total -= r.loads[idx]
	delete(r.loads, idx)
	keep := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.shard != idx {
			keep = append(keep, v)
		}
	}
	r.vnodes = keep
}

// members returns the shard indices on the ring, sorted.
func (r *ring) members() []int {
	ms := make([]int, 0, len(r.loads))
	for idx := range r.loads {
		ms = append(ms, idx)
	}
	sort.Ints(ms)
	return ms
}

// bound is the load ceiling for the next placement: the average load
// after it lands, scaled by the factor and rounded up.
func (r *ring) bound() int {
	n := len(r.loads)
	if n == 0 {
		return 0
	}
	return int(math.Ceil(float64(r.total+1) / float64(n) * r.factor))
}

// place returns the shard the key lands on under the current loads:
// the first shard clockwise from hash64(key) whose load admits one
// more object, falling back to the least-loaded shard if a full lap
// found none (possible only at factor ≤ 1, which the config rejects).
// place does not mutate the ring (assign records the landing) and
// performs no allocation — it is the hot-path lookup.
func (r *ring) place(key string) int {
	if len(r.vnodes) == 0 {
		return -1
	}
	h := hash64(key)
	b := r.bound()
	// First vnode at or clockwise of h (binary search, wrapping).
	lo, hi := 0, len(r.vnodes)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.vnodes[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := 0; i < len(r.vnodes); i++ {
		v := r.vnodes[(lo+i)%len(r.vnodes)]
		if r.loads[v.shard]+1 <= b {
			return v.shard
		}
	}
	best, bestLoad := -1, math.MaxInt
	for idx, l := range r.loads {
		if l < bestLoad || (l == bestLoad && idx < best) {
			best, bestLoad = idx, l
		}
	}
	return best
}

// assign records one object landing on the shard.
func (r *ring) assign(shard int) {
	r.loads[shard]++
	r.total++
}

// unassign records one object leaving the shard.
func (r *ring) unassign(shard int) {
	if r.loads[shard] > 0 {
		r.loads[shard]--
		r.total--
	}
}

// rebalance re-places every key deterministically: loads reset to
// zero, keys place in sorted order against the incrementally growing
// load table, and the returned map holds exactly the keys whose shard
// changed from cur. The ring's loads afterwards reflect the new
// assignment.
func (r *ring) rebalance(cur map[string]int) map[string]int {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for idx := range r.loads {
		r.loads[idx] = 0
	}
	r.total = 0
	moves := make(map[string]int)
	for _, k := range keys {
		to := r.place(k)
		if to < 0 {
			continue
		}
		r.assign(to)
		if to != cur[k] {
			moves[k] = to
		}
	}
	return moves
}
