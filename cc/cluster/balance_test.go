package cluster_test

// Pins for the two serving-path fixes that rode along with elastic
// sharding: ReadAny's per-shard round-robin must spread queries
// uniformly (the old shared counter skewed under multi-shard
// interleaving), and AwaitConvergence must behave sanely at both ends
// of the timeout range (fast nil when already converged, prompt typed
// error when convergence is impossible).

import (
	"fmt"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// TestReadAnyUniformSpread drives ReadAny queries at objects on every
// shard and asserts each shard's replicas served an equal share —
// round-robin must stay uniform per shard even when queries interleave
// across shards.
func TestReadAnyUniformSpread(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 2, Replicas: 3, Criterion: "CC", BatchOps: 1,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var names []string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("obj-%d", i)
		if err := c.CreateObject(name, "Counter"); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	s := c.Session(0)
	for _, name := range names {
		if _, err := s.Call(name, "inc", 1); err != nil {
			t.Fatal(err)
		}
	}
	// ReadAny trades read-your-writes for spread; converge first so
	// every replica answers 1.
	if err := c.AwaitConvergence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	const rounds = 120
	for i := 0; i < rounds; i++ {
		// Interleave shards on purpose: cycling the object list
		// alternates which shard the next ReadAny lands on.
		name := names[i%len(names)]
		out, err := s.InvokeTarget(name, cc.NewInput("get"), wire.ReadAny)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(cc.IntOutput(1)) {
			t.Fatalf("ReadAny on %s read %v, want 1", name, out)
		}
	}
	for si, sh := range c.Stats().Shards {
		var min, max int64 = 1 << 62, 0
		for _, st := range sh.Stations {
			if st.Queries < min {
				min = st.Queries
			}
			if st.Queries > max {
				max = st.Queries
			}
		}
		// Perfect round-robin within a shard differs by at most one
		// query between replicas; allow one more for the crash-skip path.
		if max-min > 2 {
			t.Errorf("shard %d ReadAny skew: replica queries range %d..%d", si, min, max)
		}
		if max == 0 {
			t.Errorf("shard %d served no queries", si)
		}
	}
}

// TestAwaitConvergenceTimeoutBehavior pins the backoff rework: an
// already-converged cluster returns nil fast even at a sub-2ms timeout
// (where the mid-flight re-kick is skipped entirely), and a cluster
// that cannot converge (partition, no resync history) reports the
// typed failure promptly after the bound instead of hanging.
func TestAwaitConvergenceTimeoutBehavior(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 1, Replicas: 3, Criterion: "CC", BatchOps: 1,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateObject("o", "Counter"); err != nil {
		t.Fatal(err)
	}
	s := c.Session(0)
	if _, err := s.Call("o", "inc", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConvergence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := c.AwaitConvergence(time.Millisecond); err != nil {
		t.Fatalf("converged cluster failed a 1ms wait: %v", err)
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Fatalf("converged fast path took %v", d)
	}

	// Isolate the pinned replica and diverge it; without resync history
	// the cluster cannot converge, so the wait must fail at ~timeout.
	if err := c.PartitionReplicas(0, [][]int{{0}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Call("o", "inc", 1); err != nil {
			t.Fatal(err)
		}
	}
	t0 = time.Now()
	err = c.AwaitConvergence(200 * time.Millisecond)
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("diverged partitioned cluster reported convergence")
	}
	if elapsed < 200*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("failed wait took %v, want ~200ms bound", elapsed)
	}
}
