// Package cluster is the serving layer of the ccbm runtime: a live,
// sharded multi-object service over the paper's wait-free replicated
// object construction (Sec. 6), with an online consistency monitor.
//
// A Cluster hosts many named objects of any registered ADT. Objects
// are hash-sharded across independent replica groups; each group is n
// processes (internal/core.Station) over one live transport, running
// the delivery discipline of the configured criterion (CC, PC, EC or
// CCv). Updates ride batched broadcasts on the hot path; queries read
// replica-local state, so every operation is wait-free.
//
// Clients speak through Sessions. A Session is pinned to one replica
// per shard, which gives it the paper's "sequential process" view:
// its operations execute in program order against a single replica,
// and its updates are visible to its own later operations. A Session
// must not be used from two goroutines at once (give each client
// goroutine its own).
//
// The online monitor samples objects at creation and records their
// first operations as a timed history; completed windows stream into
// cc/checker's Classifier, so the cluster continuously spot-checks the
// criterion it claims while serving traffic. See Monitor for exactly
// what a sampled verdict does and does not guarantee.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// ErrClosed reports an operation against a cluster that has been
// Closed — a shutdown-in-progress condition, not a data error.
var ErrClosed = errors.New("cluster: closed")

// ErrUnknownObject reports an operation on an object no CreateObject
// registered. Wire mapping: wire.CodeNotFound.
var ErrUnknownObject = errors.New("cluster: unknown object")

// ErrTypeConflict reports a CreateObject whose name is already taken
// by another ADT. Wire mapping: wire.CodeConflict.
var ErrTypeConflict = errors.New("cluster: object type conflict")

// Config parameterizes a Cluster.
type Config struct {
	// Shards is the number of independent replica groups objects are
	// hashed across; default 1.
	Shards int
	// Replicas is the number of processes per group; default 3.
	Replicas int
	// Criterion selects the group's consistency criterion: "CC"
	// (default), "PC", "EC" or "CCv".
	Criterion string
	// BatchOps is the maximum number of updates per broadcast batch;
	// default 32, 1 disables batching.
	BatchOps int
	// BatchWait bounds how long an update waits for its batch to fill;
	// default 200µs.
	BatchWait time.Duration
	// Replication selects the dissemination backend: "broadcast" (the
	// default — reliable causal/FIFO/unordered broadcast, assumes
	// eventually reliable links) or "antientropy" (gossip with
	// version-vector digests and batched delta shipping — partitions
	// merely pause convergence).
	Replication string
	// GossipInterval is the anti-entropy round period; default 10ms.
	// Anti-entropy backend only.
	GossipInterval time.Duration
	// Resync keeps the broadcast backend's envelope log so Heal and
	// RestartReplica can retransmit what a partition or crash lost
	// (memory grows with the communication history). The anti-entropy
	// backend always can — its sync state is the log.
	Resync bool
	// VirtualNodes is the number of ring positions per shard on the
	// consistent-hash ring; default 64. More virtual nodes smooth the
	// hash-space split at the cost of a larger ring.
	VirtualNodes int
	// LoadFactor bounds placement imbalance: no shard is assigned more
	// than ceil(average × LoadFactor) objects (consistent hashing with
	// bounded loads). Default 1.25; must exceed 1.
	LoadFactor float64
	// MigrateTimeout bounds each per-object migration's quiescence wait
	// during AddShard/DrainShard; past it the migration fails cleanly
	// and the object keeps serving from its source shard. Default 10s.
	MigrateTimeout time.Duration
	// Monitor configures the online consistency monitor.
	Monitor MonitorConfig
}

func (c *Config) fill() error {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Criterion == "" {
		c.Criterion = "CC"
	}
	mode, err := core.ParseMode(c.Criterion)
	if err != nil {
		return err
	}
	// Canonicalize the spelling: the monitor passes the criterion name
	// to the checker registry, whose keys are case-sensitive ("CCv");
	// an uncanonicalized "ccv" would silently disable the monitor.
	c.Criterion = mode.String()
	repl, err := core.ParseReplication(c.Replication)
	if err != nil {
		return err
	}
	c.Replication = repl.String()
	if c.BatchOps == 0 {
		c.BatchOps = 32
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 200 * time.Microsecond
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.LoadFactor <= 1 {
		return fmt.Errorf("cluster: load factor %v must exceed 1", c.LoadFactor)
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 10 * time.Second
	}
	return nil
}

// shard is one replica group over its own transport. A drained shard
// keeps its slot in the cluster's shard slice — shard indices stay
// stable for session frontiers and stats — but its transports are
// closed and routing never selects it.
type shard struct {
	idx      int
	net      *net.Live
	stations []*core.Station

	// rr spreads ReadAny queries across this shard's replicas. It is
	// per-shard deliberately: a cluster-global counter shared by every
	// shard lets interleaved cross-shard traffic stride over one
	// shard's replicas unevenly (e.g. two shards × two replicas pins
	// every ReadAny of each shard to a single replica).
	rr atomic.Uint32

	drained   atomic.Bool
	closeOnce sync.Once
}

func (sh *shard) close() {
	sh.closeOnce.Do(func() {
		for _, st := range sh.stations {
			st.Close()
		}
		sh.net.Close()
	})
}

// object is the cluster-level record of a named object.
type object struct {
	name    string
	adtName string
	t       cc.ADT
	rec     *objRecorder // non-nil when the monitor sampled it

	// gate freezes the object during migration: every invocation holds
	// the read side while it reads shard and submits to a station; the
	// migration holds the write side, so new operations queue (Go's
	// RWMutex blocks new readers once a writer waits) until the object
	// has moved. shard is read under the gate (or c.mu for map walks).
	gate  sync.RWMutex
	shard int
}

// Cluster is a live, sharded multi-object service.
type Cluster struct {
	cfg   Config
	mode  core.Mode
	repl  core.Replication
	mon   *Monitor
	start time.Time

	// epoch is the ring epoch: starts at 1 and bumps on every topology
	// change (AddShard, DrainShard). Clients carrying a stale epoch get
	// a retryable redirect (wire.CodeStaleRing) telling them to refresh.
	epoch atomic.Int64

	// draining marks a graceful shutdown in progress: /v1/readyz
	// reports not-ready while in-flight work finishes.
	draining atomic.Bool

	// rebalMu serializes topology changes (one AddShard/DrainShard at a
	// time); it is never held while serving traffic.
	rebalMu sync.Mutex

	// delays[r] is the injected serving delay of replica index r across
	// every shard, in nanoseconds (SetReplicaDelay): each operation
	// served by that replica sleeps the delay before answering — the
	// asymmetric-latency topology the SLA router routes around.
	delays []atomic.Int64

	// weakReads counts queries served outside their session's ordering
	// (wire.ReadTarget.Weak): the monitor excludes them from its checked
	// histories, so they are tallied separately for operators.
	weakReads atomic.Int64

	mu      sync.RWMutex
	shards  []*shard // append-only; snapshots via shardList are immutable
	ring    *ring
	objects map[string]*object
	// drainFinal records, per drained shard, the final causal frontier
	// at handoff: a session frontier naming a drained shard is satisfied
	// iff it is dominated by this value (everything up to it is baked
	// into the migrated snapshots), and unservable otherwise.
	drainFinal map[int]vclock.VC
	closed     bool
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	mode, _ := core.ParseMode(cfg.Criterion)
	repl, _ := core.ParseReplication(cfg.Replication)
	c := &Cluster{
		cfg:        cfg,
		mode:       mode,
		repl:       repl,
		ring:       newRing(cfg.VirtualNodes, cfg.LoadFactor),
		objects:    make(map[string]*object),
		drainFinal: make(map[int]vclock.VC),
		start:      time.Now(),
		delays:     make([]atomic.Int64, cfg.Replicas),
	}
	c.epoch.Store(1)
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, c.newShard(i))
		c.ring.addShard(i)
	}
	c.mon = newMonitor(cfg.Monitor, cfg.Criterion)
	return c, nil
}

// newShard builds one replica group.
func (c *Cluster) newShard(idx int) *shard {
	sh := &shard{idx: idx, net: net.NewLive(c.cfg.Replicas)}
	birth := time.Now().UnixNano() // shared: see core.StationConfig.Birth
	for r := 0; r < c.cfg.Replicas; r++ {
		sh.stations = append(sh.stations, core.NewStation(sh.net, r, c.mode,
			core.StationConfig{
				BatchOps:       c.cfg.BatchOps,
				BatchWait:      c.cfg.BatchWait,
				Replication:    c.repl,
				GossipInterval: c.cfg.GossipInterval,
				Retain:         c.cfg.Resync,
				Birth:          birth,
			}))
	}
	return sh
}

// shardList snapshots the shard slice. The slice is append-only under
// c.mu (AddShard copies before appending), so a snapshot is immutable
// and safe to iterate without the lock.
func (c *Cluster) shardList() []*shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shards
}

// RingEpoch returns the current ring epoch (bumped on every AddShard
// and DrainShard).
func (c *Cluster) RingEpoch() int64 { return c.epoch.Load() }

// ObjectShard reports the shard currently hosting the named object.
func (c *Cluster) ObjectShard(name string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.objects[name]
	if !ok {
		return 0, false
	}
	return o.shard, true
}

// Criterion returns the configured consistency criterion.
func (c *Cluster) Criterion() string { return c.cfg.Criterion }

// Monitor returns the cluster's online monitor.
func (c *Cluster) Monitor() *Monitor { return c.mon }

// CreateObject registers a named object of the given registered ADT
// ("Counter", "Register", "W2^4", "M[a-c]", ...) on every replica of
// its shard. Creating an existing object is a no-op when the type
// matches and an error otherwise.
func (c *Cluster) CreateObject(name, adtName string) error {
	t, err := cc.LookupADT(adtName)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if o, ok := c.objects[name]; ok {
		if o.adtName != adtName {
			return fmt.Errorf("%w: %q already exists with ADT %s", ErrTypeConflict, name, o.adtName)
		}
		return nil
	}
	target := c.ring.place(name)
	if target < 0 {
		return fmt.Errorf("cluster: no shard accepts %q (empty ring)", name)
	}
	o := &object{name: name, adtName: adtName, t: t, shard: target}
	for _, st := range c.shards[target].stations {
		if err := st.EnsureObject(name, adtName); err != nil {
			return err
		}
	}
	c.ring.assign(target)
	o.rec = c.mon.maybeSample(name, t)
	c.objects[name] = o
	return nil
}

// Objects returns the names of the registered objects, sorted.
func (c *Cluster) Objects() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.objects))
	for n := range c.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Session opens the client view for session id: operations routed
// through it are pinned to replica id mod Replicas of each shard, in
// program order. Sessions are cheap; open one per client goroutine
// (a Session must not be used concurrently, or its program order —
// and the monitor's recorded history — becomes meaningless).
func (c *Cluster) Session(id int) *Session {
	// Euclidean mod keeps negative ids valid without aliasing them onto
	// their positive counterparts (the id is also the monitor's proc).
	r := id % c.cfg.Replicas
	if r < 0 {
		r += c.cfg.Replicas
	}
	return &Session{c: c, id: id, replica: r}
}

// Session is one client's sequential view of the cluster.
type Session struct {
	c       *Cluster
	id      int
	replica int
	// readRep is the explicit serving replica of ReadReplica-target
	// queries (wire.InvokeRequest.ReadReplica); nil until a wire
	// request sets it. It moves only those queries — updates and
	// affinity reads stay at the pinned replica.
	readRep *int
}

// ID returns the session id.
func (s *Session) ID() int { return s.id }

// Invoke executes one operation on a named object at the session's
// pinned replica (the ReadAffinity target).
func (s *Session) Invoke(object string, in cc.Input) (cc.Output, error) {
	return s.InvokeTarget(object, in, wire.ReadAffinity)
}

// Call is Invoke with the method/args convenience.
func (s *Session) Call(object, method string, args ...int) (cc.Output, error) {
	return s.Invoke(object, cc.NewInput(method, args...))
}

// CrashReplica crash-stops one process of one shard: it stops
// receiving, its queued deliveries are dropped, and its sends are
// discarded — while its sessions keep being served wait-free from the
// now-partitioned local state (the paper's crash model at serving
// granularity). There is no heal; crash testing is the point.
func (c *Cluster) CrashReplica(shardIdx, replica int) error {
	shs := c.shardList()
	if shardIdx < 0 || shardIdx >= len(shs) {
		return fmt.Errorf("cluster: no shard %d", shardIdx)
	}
	if replica < 0 || replica >= c.cfg.Replicas {
		return fmt.Errorf("cluster: no replica %d", replica)
	}
	if shs[shardIdx].drained.Load() {
		return fmt.Errorf("cluster: shard %d is drained", shardIdx)
	}
	shs[shardIdx].net.Crash(replica)
	return nil
}

// Compact garbage-collects the stable prefix of every CCv replica's
// update logs (see core.Station.Compact); it returns the total number
// of entries folded away. Call it periodically on long-lived CCv
// clusters; other criteria return 0.
func (c *Cluster) Compact() int {
	total := 0
	for _, sh := range c.shardList() {
		if sh.drained.Load() {
			continue
		}
		for _, st := range sh.stations {
			total += st.Compact()
		}
	}
	return total
}

// ShardStats is the per-shard slice of a Stats snapshot. Crashed
// marks transport-level crashes (CrashReplica); Down marks
// fault-injected crash-stops (StopReplica).
type ShardStats struct {
	Crashed  []bool
	Down     []bool
	Drained  bool
	Stations []core.StationStats
}

// Stats is a point-in-time snapshot of the cluster's activity.
// Totals sums every station's counters; its Objects field is the
// cluster-level count of distinct objects (the per-station Objects
// gauges would multiply-count each object once per replica).
// WeakReads counts queries served outside their session's ordering
// (ReadAny, ReadReplica).
type Stats struct {
	Uptime    time.Duration
	Objects   int
	Criteria  string
	WeakReads int64
	Totals    core.StationStats
	Shards    []ShardStats
}

// Stats snapshots every station's counters.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	nobj := len(c.objects)
	c.mu.RUnlock()
	s := Stats{
		Uptime:    time.Since(c.start),
		Objects:   nobj,
		Criteria:  c.cfg.Criterion,
		WeakReads: c.weakReads.Load(),
	}
	s.Totals.Objects = nobj
	for _, sh := range c.shardList() {
		ss := ShardStats{Drained: sh.drained.Load()}
		for r, st := range sh.stations {
			t := st.Stats()
			ss.Stations = append(ss.Stations, t)
			ss.Crashed = append(ss.Crashed, sh.net.Crashed(r))
			ss.Down = append(ss.Down, st.Down())
			s.Totals.Invocations += t.Invocations
			s.Totals.Updates += t.Updates
			s.Totals.Queries += t.Queries
			s.Totals.Applied += t.Applied
			s.Totals.Broadcasts += t.Broadcasts
			s.Totals.BatchedOps += t.BatchedOps
			s.Totals.LogLen += t.LogLen
		}
		s.Shards = append(s.Shards, ss)
	}
	return s
}

// Close flushes every station, shuts the transports down, and closes
// the monitor (submitting any open sampled windows). Idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	shs := c.shards
	c.mu.Unlock()
	for _, sh := range shs {
		sh.close()
	}
	c.mon.Close()
	return nil
}
