package cluster_test

import (
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

func newStalenessCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Shards: 1, Replicas: 3, Criterion: "CCv", BatchOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.CreateObject("x", "Counter"); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStalenessSnapshotConverges checks the high-water plumbing end to
// end: updates advance the origin's stamp everywhere, and once every
// replica has delivered everything, the per-replica lag is zero.
func TestStalenessSnapshotConverges(t *testing.T) {
	c := newStalenessCluster(t)
	s := c.Session(0)
	for i := 0; i < 5; i++ {
		if _, err := s.Call("x", "inc", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitConvergence(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp := c.StalenessWire()
	if len(resp.Shards) != 1 || len(resp.Shards[0].Replicas) != 3 {
		t.Fatalf("unexpected staleness shape: %+v", resp)
	}
	var stamp int64
	for r, rs := range resp.Shards[0].Replicas {
		if len(rs.HW) != 3 {
			t.Fatalf("replica %d: hw len %d, want 3", r, len(rs.HW))
		}
		if rs.LagUS != 0 {
			t.Errorf("replica %d: lag %dus after convergence, want 0", r, rs.LagUS)
		}
		if r == 0 {
			stamp = rs.HW[0]
		} else if rs.HW[0] != stamp {
			t.Errorf("replica %d: origin-0 stamp %d, want %d (converged)", r, rs.HW[0], stamp)
		}
	}
	if got := c.MaxLagUS(); got != 0 {
		t.Errorf("MaxLagUS = %d after convergence, want 0", got)
	}
}

// TestInvokepiggybacksHighWater checks that both update and query
// responses carry the serving replica's high-water vector, and that a
// weak query additionally echoes the replica's frontier.
func TestInvokePiggybacksHighWater(t *testing.T) {
	c := newStalenessCluster(t)
	upd, e := c.InvokeWire(&wire.InvokeRequest{Session: 0, Object: "x", Method: "inc", Args: []int{1}})
	if e != nil {
		t.Fatal(e)
	}
	if upd.HighWater == nil || upd.HighWater.Replica != 0 || len(upd.HighWater.HW) != 3 {
		t.Fatalf("update high-water = %+v", upd.HighWater)
	}
	rr := 2
	q, e := c.InvokeWire(&wire.InvokeRequest{
		Session: 0, Object: "x", Method: "get", Target: wire.ReadReplica, ReadReplica: &rr,
	})
	if e != nil {
		t.Fatal(e)
	}
	if q.HighWater == nil || q.HighWater.Replica != 2 {
		t.Fatalf("read-replica high-water = %+v, want replica 2", q.HighWater)
	}
	if q.Frontier == nil {
		t.Fatal("weak query should echo the serving replica's frontier")
	}
	if got := c.StatsWire().WeakReads; got != 1 {
		t.Errorf("WeakReads = %d, want 1", got)
	}
}

// TestReadReplicaValidation checks the explicit-replica target's error
// paths: the replica must be named and in range.
func TestReadReplicaValidation(t *testing.T) {
	c := newStalenessCluster(t)
	if _, e := c.InvokeWire(&wire.InvokeRequest{
		Session: 0, Object: "x", Method: "get", Target: wire.ReadReplica,
	}); e == nil {
		t.Error("read_replica missing: expected error")
	}
	bad := 9
	if _, e := c.InvokeWire(&wire.InvokeRequest{
		Session: 0, Object: "x", Method: "get", Target: wire.ReadReplica, ReadReplica: &bad,
	}); e == nil {
		t.Error("read_replica out of range: expected error")
	}
}

// TestReplicaDelayFault checks the per-replica serving delay: the
// fault dispatch route, the getter, validation, and that a delayed
// replica actually serves slower than an undelayed one.
func TestReplicaDelayFault(t *testing.T) {
	c := newStalenessCluster(t)
	if err := c.SetReplicaDelay(1, -time.Millisecond); err == nil {
		t.Error("negative delay: expected error")
	}
	if err := c.SetReplicaDelay(9, time.Millisecond); err == nil {
		t.Error("replica out of range: expected error")
	}
	if e := c.ApplyFault(&wire.FaultRequest{
		Action: wire.FaultReplicaDelay, Replica: 1, DelayUS: 30_000,
	}); e != nil {
		t.Fatal(e)
	}
	if got := c.ReplicaDelay(1); got != 30*time.Millisecond {
		t.Fatalf("ReplicaDelay(1) = %v, want 30ms", got)
	}
	rr := 1
	start := time.Now()
	if _, e := c.InvokeWire(&wire.InvokeRequest{
		Session: 0, Object: "x", Method: "get", Target: wire.ReadReplica, ReadReplica: &rr,
	}); e != nil {
		t.Fatal(e)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("delayed read took %v, want >= 30ms", elapsed)
	}
	// Clearing the delay restores fast serving.
	if err := c.SetReplicaDelay(1, 0); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, e := c.InvokeWire(&wire.InvokeRequest{
		Session: 0, Object: "x", Method: "get", Target: wire.ReadReplica, ReadReplica: &rr,
	}); e != nil {
		t.Fatal(e)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("undelayed read took %v, want fast", elapsed)
	}
}

// TestStalenessUnderPartition checks the staleness signal itself: a
// replica cut off from the broadcast falls behind (its lag grows with
// wall time), and readyz/ring surface it.
func TestStalenessUnderPartition(t *testing.T) {
	// Anti-entropy: a partition merely pauses convergence, so the heal
	// at the end actually drains the lag (broadcast would need Resync).
	c, err := cluster.New(cluster.Config{
		Shards: 1, Replicas: 3, Criterion: "CCv", BatchOps: 1,
		Replication: "antientropy", GossipInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.CreateObject("x", "Counter"); err != nil {
		t.Fatal(err)
	}
	// Partition replica 2 away from {0, 1}.
	if err := c.PartitionReplicas(0, [][]int{{0, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	s := c.Session(0)
	if _, err := s.Call("x", "inc", 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the deficit become visible in wall time
	if _, err := s.Call("x", "inc", 1); err != nil {
		t.Fatal(err)
	}
	resp := c.StalenessWire()
	lag2 := resp.Shards[0].Replicas[2].LagUS
	if lag2 < 10_000 {
		t.Errorf("partitioned replica lag = %dus, want >= 10ms", lag2)
	}
	if got := c.MaxLagUS(); got < lag2 {
		t.Errorf("MaxLagUS = %d < partitioned replica's %d", got, lag2)
	}
	ring := c.RingWire()
	if len(ring.Shards) != 1 || len(ring.Shards[0].ReplicaLagUS) != 3 {
		t.Fatalf("ring lag shape: %+v", ring.Shards[0])
	}
	if ring.Shards[0].ReplicaLagUS[2] < 10_000 {
		t.Errorf("ring lag for replica 2 = %dus, want >= 10ms", ring.Shards[0].ReplicaLagUS[2])
	}
	// Heal and converge: the lag drains back to zero.
	if _, err := c.Heal(0); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitConvergence(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.MaxLagUS(); got != 0 {
		t.Errorf("MaxLagUS = %d after heal+convergence, want 0", got)
	}
}
