package cluster

// Scripted fault injection and the convergence probes the chaos
// harness (cmd/ccchaos) drives. Every injected fault is a legal
// behavior of the paper's asynchronous system — arbitrary finite
// delays, message loss, crash-stop failures — so nothing here can
// make a correct criterion implementation produce a violation; it
// only makes the adversary schedulable.
//
// Two crash notions coexist deliberately. CrashReplica (PR 4) is a
// transport-level crash: the process stops receiving and sending but
// keeps serving its partitioned local state wait-free — the paper's
// crash model at serving granularity. StopReplica is an operational
// crash-stop: the replica also refuses service (CodeUnavailable), so
// clients retry or fail over instead of reading a corpse; RestartReplica
// revives it and triggers the replication backend's repair path.

import (
	"fmt"
	"time"

	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/xhash"
)

// AllShards selects every shard in the fault methods taking a shard
// index.
const AllShards = -1

// eachShard runs f over the selected shards (AllShards = every active
// one). Drained shards are skipped on AllShards — their transports are
// gone, there is nothing left to fault — and naming one explicitly is
// an error.
func (c *Cluster) eachShard(shardIdx int, f func(*shard)) error {
	shs := c.shardList()
	if shardIdx == AllShards {
		for _, sh := range shs {
			if !sh.drained.Load() {
				f(sh)
			}
		}
		return nil
	}
	if shardIdx < 0 || shardIdx >= len(shs) {
		return fmt.Errorf("cluster: no shard %d", shardIdx)
	}
	if shs[shardIdx].drained.Load() {
		return fmt.Errorf("cluster: shard %d is drained", shardIdx)
	}
	f(shs[shardIdx])
	return nil
}

func (c *Cluster) checkReplica(replica int) error {
	if replica < 0 || replica >= c.cfg.Replicas {
		return fmt.Errorf("cluster: no replica %d", replica)
	}
	return nil
}

// PartitionReplicas cuts every link between the given replica groups
// (both directions) on the selected shards. Groups need not cover all
// replicas; cuts accumulate across calls until Heal. Messages lost to
// a cut are recovered by the backend's repair path at Heal, if it has
// one (anti-entropy always; broadcast only with Config.Resync).
func (c *Cluster) PartitionReplicas(shardIdx int, groups [][]int) error {
	for _, g := range groups {
		for _, r := range g {
			if err := c.checkReplica(r); err != nil {
				return err
			}
		}
	}
	return c.eachShard(shardIdx, func(sh *shard) {
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				sh.net.Partition(groups[i], groups[j])
			}
		}
	})
}

// Heal removes every partition cut on the selected shards and
// triggers the repair path on every replica, so the groups reconverge
// (gossip digests pull what was missed; a retained broadcast log is
// re-flooded). It reports whether every station had a repair path —
// false means links are restored but convergence on lost messages is
// not guaranteed (broadcast backend without Config.Resync).
func (c *Cluster) Heal(shardIdx int) (repaired bool, err error) {
	repaired = true
	err = c.eachShard(shardIdx, func(sh *shard) {
		sh.net.Heal()
		for _, st := range sh.stations {
			if !st.Resync() {
				repaired = false
			}
		}
	})
	return repaired, err
}

// StopReplica crash-stops one replica of the selected shards
// (AllShards = that replica index on every shard): its transport
// stops receiving, queued deliveries drop, and it refuses service
// with an error the wire layer maps to CodeUnavailable.
func (c *Cluster) StopReplica(shardIdx, replica int) error {
	if err := c.checkReplica(replica); err != nil {
		return err
	}
	return c.eachShard(shardIdx, func(sh *shard) {
		sh.stations[replica].SetDown(true)
		sh.net.Crash(replica)
	})
}

// RestartReplica revives a stopped replica on the selected shards:
// the transport delivers to it again, service resumes, and every
// replica's repair path runs so the restarted copy catches up on what
// it missed while down.
func (c *Cluster) RestartReplica(shardIdx, replica int) error {
	if err := c.checkReplica(replica); err != nil {
		return err
	}
	return c.eachShard(shardIdx, func(sh *shard) {
		sh.net.Restart(replica)
		sh.stations[replica].SetDown(false)
		for _, st := range sh.stations {
			st.Resync()
		}
	})
}

// SetLinkFault degrades the from→to link on the selected shards:
// every message waits delay plus a uniform draw in [0, jitter), and
// is dropped with probability drop. Zero values clear the fault.
func (c *Cluster) SetLinkFault(shardIdx, from, to int, delay, jitter time.Duration, drop float64) error {
	if err := c.checkReplica(from); err != nil {
		return err
	}
	if err := c.checkReplica(to); err != nil {
		return err
	}
	if drop < 0 || drop > 1 {
		return fmt.Errorf("cluster: drop probability %v out of [0,1]", drop)
	}
	return c.eachShard(shardIdx, func(sh *shard) {
		sh.net.SetLinkFault(from, to, delay, jitter, drop)
	})
}

// ClearLinkFaults removes every per-link degradation on the selected
// shards.
func (c *Cluster) ClearLinkFaults(shardIdx int) error {
	return c.eachShard(shardIdx, func(sh *shard) { sh.net.ClearLinkFaults() })
}

// SetReplicaDelay injects a fixed serving delay on one replica index,
// across every shard: each operation served by that replica sleeps
// the delay before answering (pipelined batch updates pay it once per
// flush barrier — the barrier is one logical answer). It models an
// asymmetric topology — a replica placed far from the client — which
// is what the SLA router's latency axis routes around; replication
// lag between replicas is modeled separately by SetLinkFault. Zero
// clears the delay.
func (c *Cluster) SetReplicaDelay(replica int, d time.Duration) error {
	if err := c.checkReplica(replica); err != nil {
		return err
	}
	if d < 0 {
		return fmt.Errorf("cluster: negative replica delay %v", d)
	}
	c.delays[replica].Store(int64(d))
	return nil
}

// ReplicaDelay reports the replica's injected serving delay.
func (c *Cluster) ReplicaDelay(replica int) time.Duration {
	if replica < 0 || replica >= len(c.delays) {
		return 0
	}
	return time.Duration(c.delays[replica].Load())
}

// ReplicaDown reports whether the replica is fault-stopped
// (StopReplica without a matching RestartReplica).
func (c *Cluster) ReplicaDown(shardIdx, replica int) bool {
	shs := c.shardList()
	if shardIdx < 0 || shardIdx >= len(shs) || c.checkReplica(replica) != nil {
		return false
	}
	return shs[shardIdx].stations[replica].Down()
}

// StartDrain marks a graceful shutdown in progress: /v1/readyz turns
// not-ready while in-flight requests keep being served, so load
// balancers route around the process before it goes away.
func (c *Cluster) StartDrain() { c.draining.Store(true) }

// Draining reports whether a graceful shutdown is in progress.
func (c *Cluster) Draining() bool { return c.draining.Load() }

// Replicas returns the per-shard replica count.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// Shards returns the shard count, drained slots included (shard
// indices are stable; see ShardStats.Drained for liveness).
func (c *Cluster) Shards() int { return len(c.shardList()) }

// Replication returns the canonical name of the dissemination
// backend ("broadcast" or "antientropy").
func (c *Cluster) Replication() string { return c.repl.String() }

// Fingerprints returns, per shard, each replica's state fingerprint
// (core.Station.Fingerprint): equal values within a shard mean that
// shard's replicas hold identical states for every object.
// Drained shards contribute an empty slice, keeping indices aligned.
func (c *Cluster) Fingerprints() [][]uint64 {
	shs := c.shardList()
	fps := make([][]uint64, len(shs))
	for i, sh := range shs {
		if sh.drained.Load() {
			fps[i] = []uint64{}
			continue
		}
		fps[i] = make([]uint64, len(sh.stations))
		for r, st := range sh.stations {
			fps[i][r] = st.Fingerprint()
		}
	}
	return fps
}

// Converged reports whether every shard's replicas currently hold
// identical states (equal fingerprints). Replicas that are down or
// transport-crashed are excluded — a stopped replica is behind by
// design until its restart resyncs it.
func (c *Cluster) Converged() bool {
	for _, sh := range c.shardList() {
		if sh.drained.Load() {
			continue
		}
		have := false
		var fp uint64
		for r, st := range sh.stations {
			if st.Down() || sh.net.Crashed(r) {
				continue
			}
			f := st.Fingerprint()
			if have && f != fp {
				return false
			}
			have, fp = true, f
		}
	}
	return true
}

// AwaitConvergence flushes every pending batch, triggers the repair
// path once, and polls until every active shard's live replicas agree
// on every object's state (halfway through the timeout it triggers
// repair once more, covering a round that raced the flush). It is the
// chaos harness's post-heal assertion; call it only while traffic is
// paused — convergence is a quiescent property.
//
// The poll backs off exponentially (100µs doubling to a 10ms cap)
// instead of spinning at a fixed 1ms: on a single-CPU box a tight
// sleep-poll loop starves the very delivery goroutines it is waiting
// on, turning the wait it measures into the wait it causes.
func (c *Cluster) AwaitConvergence(timeout time.Duration) error {
	resync := func() {
		for _, sh := range c.shardList() {
			if sh.drained.Load() {
				continue
			}
			for _, st := range sh.stations {
				st.Flush()
				st.Resync()
			}
		}
	}
	resync()
	start := time.Now()
	deadline := start.Add(timeout)
	// One mid-flight repair re-kick, at start+timeout/2. The old form —
	// deadline.Add(-timeout/2) — is the same instant, but combined with
	// the "not yet rekicked" flag it fired on the FIRST poll for any
	// timeout short enough that the first wakeup landed past the
	// midpoint, wasting the one re-kick immediately; anchoring on start
	// and skipping the re-kick entirely for sub-2ms timeouts (the first
	// backoff steps alone overshoot such a midpoint) keeps it meaningful.
	rekickAt := start.Add(timeout / 2)
	rekicked := timeout < 2*time.Millisecond
	delay := 100 * time.Microsecond
	for {
		if c.Converged() {
			return nil
		}
		now := time.Now()
		if now.After(deadline) {
			return fmt.Errorf("cluster: replicas not converged after %v", timeout)
		}
		if !rekicked && now.After(rekickAt) {
			rekicked = true
			resync()
		}
		time.Sleep(delay)
		if delay < 10*time.Millisecond {
			delay *= 2
		}
	}
}

// frontierStation resolves one replica of one shard, or nil when out
// of range — the frontier-wait path's lookup.
func (c *Cluster) frontierStation(shardIdx, replica int) *core.Station {
	shs := c.shardList()
	if shardIdx < 0 || shardIdx >= len(shs) || c.checkReplica(replica) != nil {
		return nil
	}
	return shs[shardIdx].stations[replica]
}

// ApplyFault dispatches one wire-form fault request — the shared
// entry point of the HTTP front-end (POST /v1/fault) and the loopback
// transport, so both speak identical fault semantics. A nil return
// means the fault is in effect.
func (c *Cluster) ApplyFault(req *wire.FaultRequest) *wire.Error {
	shardIdx := AllShards
	if req.Shard != nil {
		shardIdx = *req.Shard
	}
	var err error
	switch req.Action {
	case wire.FaultPartition:
		if len(req.Groups) < 2 {
			return wire.Errf(wire.CodeBadRequest, "partition needs at least two groups")
		}
		err = c.PartitionReplicas(shardIdx, req.Groups)
	case wire.FaultHeal:
		_, err = c.Heal(shardIdx)
	case wire.FaultCrash:
		err = c.StopReplica(shardIdx, req.Replica)
	case wire.FaultRestart:
		err = c.RestartReplica(shardIdx, req.Replica)
	case wire.FaultLink:
		err = c.SetLinkFault(shardIdx, req.From, req.To,
			time.Duration(req.DelayUS)*time.Microsecond,
			time.Duration(req.JitterUS)*time.Microsecond, req.Drop)
	case wire.FaultLinkClear:
		err = c.ClearLinkFaults(shardIdx)
	case wire.FaultReplicaDelay:
		err = c.SetReplicaDelay(req.Replica, time.Duration(req.DelayUS)*time.Microsecond)
	default:
		return wire.Errf(wire.CodeBadRequest, "unknown fault action %q", req.Action)
	}
	return WireError(err)
}

// FingerprintAll folds every shard's fingerprints into one value — a
// convenient single number for logs and bench records.
func (c *Cluster) FingerprintAll() uint64 {
	h := xhash.Seed
	for _, fps := range c.Fingerprints() {
		for _, f := range fps {
			h = xhash.Mix(h, f)
		}
	}
	return h
}
