package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"

	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// httpServer is the server side of the cc/cluster/wire protocol — the
// HTTP surface cmd/ccserved serves and cc/client's HTTP transport
// speaks. Every request and response body is a wire struct; every
// failure is a typed wire.Error at its pinned status.
type httpServer struct {
	c *Cluster
}

// NewHTTPHandler builds the versioned HTTP front-end for c:
//
//	POST /v1/objects         create an object             (wire.CreateObjectRequest → wire.OKResponse)
//	POST /v1/invoke          one operation                (wire.InvokeRequest → wire.InvokeResponse)
//	POST /v1/batch           per-session op groups        (wire.BatchRequest → wire.BatchResponse)
//	POST /v1/crash           crash-stop a replica         (wire.CrashRequest → wire.OKResponse)
//	POST /v1/fault           scripted fault injection     (wire.FaultRequest → wire.OKResponse)
//	GET  /v1/ring            consistent-hash ring + epoch (wire.RingResponse)
//	GET  /v1/staleness       per-replica high-water marks (wire.StalenessResponse)
//	GET  /v1/stats           activity snapshot            (wire.StatsResponse)
//	GET  /v1/monitor         monitor summary              (wire.MonitorResponse; ?verdicts=1 adds the full list)
//	GET  /v1/monitor/stream  NDJSON verdict stream        (one wire.Verdict per line, replay then live)
//	GET  /v1/healthz         liveness + protocol version  (wire.HealthzResponse)
//	GET  /v1/readyz          readiness: 503 while draining (wire.ReadyzResponse)
//
// Request bodies are capped (wire.MaxRequestBytes, wire.MaxBatchBytes
// for the batch endpoint), unknown JSON fields are rejected, and all
// requests carrying the same session id must come from one sequential
// client (see Session).
//
// Every response additionally carries the current ring epoch in the
// wire.RingEpochHeader header, so a client notices topology changes
// from any response without polling GET /v1/ring.
func NewHTTPHandler(c *Cluster) http.Handler {
	s := &httpServer{c: c}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+wire.PathPrefix+"/objects", s.createObject)
	mux.HandleFunc("POST "+wire.PathPrefix+"/invoke", s.invoke)
	mux.HandleFunc("POST "+wire.PathPrefix+"/batch", s.batch)
	mux.HandleFunc("POST "+wire.PathPrefix+"/crash", s.crash)
	mux.HandleFunc("POST "+wire.PathPrefix+"/fault", s.fault)
	mux.HandleFunc("GET "+wire.PathPrefix+"/ring", s.ring)
	mux.HandleFunc("GET "+wire.PathPrefix+"/staleness", s.staleness)
	mux.HandleFunc("GET "+wire.PathPrefix+"/stats", s.stats)
	mux.HandleFunc("GET "+wire.PathPrefix+"/monitor", s.monitor)
	mux.HandleFunc("GET "+wire.PathPrefix+"/monitor/stream", s.monitorStream)
	mux.HandleFunc("GET "+wire.PathPrefix+"/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, wire.HealthzResponse{
			OK: true, Criterion: c.Criterion(), Protocol: wire.ProtocolVersion,
			Shards: c.Shards(), Replicas: c.Replicas(), Replication: c.Replication(),
		})
	})
	mux.HandleFunc("GET "+wire.PathPrefix+"/readyz", func(w http.ResponseWriter, _ *http.Request) {
		draining := c.Draining()
		status := http.StatusOK
		if draining {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, wire.ReadyzResponse{
			Ready: !draining, Draining: draining, Protocol: wire.ProtocolVersion,
			MaxLagUS: c.MaxLagUS(),
		})
	})
	return epochHeader(c, mux)
}

// epochHeader stamps the current ring epoch on every response.
func epochHeader(c *Cluster, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.RingEpochHeader, strconv.FormatInt(c.RingEpoch(), 10))
		next.ServeHTTP(w, r)
	})
}

// writeJSON marshals first and only then writes, so an encoding
// failure becomes a proper 500 instead of a silently truncated 200
// body. A write error after a successful marshal means the client
// went away; there is no one left to tell.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		e := wire.Errf(wire.CodeInternal, "encode response: %v", err)
		b, _ = json.Marshal(wire.ErrorResponse{Err: e})
		code = e.Code.HTTPStatus()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeErr writes a typed wire error at its pinned status.
func writeErr(w http.ResponseWriter, e *wire.Error) {
	writeJSON(w, e.Code.HTTPStatus(), wire.ErrorResponse{Err: e})
}

func (s *httpServer) createObject(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateObjectRequest
	if e := wire.DecodeJSON(w, r, &req, wire.MaxRequestBytes); e != nil {
		writeErr(w, e)
		return
	}
	if req.Name == "" || req.ADT == "" {
		writeErr(w, wire.Errf(wire.CodeBadRequest, "need name and adt"))
		return
	}
	if err := s.c.CreateObject(req.Name, req.ADT); err != nil {
		writeErr(w, WireError(err))
		return
	}
	writeJSON(w, http.StatusOK, wire.OKResponse{OK: true})
}

func (s *httpServer) invoke(w http.ResponseWriter, r *http.Request) {
	var req wire.InvokeRequest
	if e := wire.DecodeJSON(w, r, &req, wire.MaxRequestBytes); e != nil {
		writeErr(w, e)
		return
	}
	resp, e := s.c.InvokeWire(&req)
	if e != nil {
		writeErr(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *httpServer) batch(w http.ResponseWriter, r *http.Request) {
	var req wire.BatchRequest
	if e := wire.DecodeJSON(w, r, &req, wire.MaxBatchBytes); e != nil {
		writeErr(w, e)
		return
	}
	resp, e := s.c.ExecuteBatch(&req)
	if e != nil {
		writeErr(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *httpServer) crash(w http.ResponseWriter, r *http.Request) {
	var req wire.CrashRequest
	if e := wire.DecodeJSON(w, r, &req, wire.MaxRequestBytes); e != nil {
		writeErr(w, e)
		return
	}
	if err := s.c.CrashReplica(req.Shard, req.Replica); err != nil {
		writeErr(w, WireError(err))
		return
	}
	writeJSON(w, http.StatusOK, wire.OKResponse{OK: true})
}

// fault dispatches one scripted fault (see the fault API in fault.go
// and wire.FaultAction). FaultRequest.Shard nil targets every shard.
func (s *httpServer) fault(w http.ResponseWriter, r *http.Request) {
	var req wire.FaultRequest
	if e := wire.DecodeJSON(w, r, &req, wire.MaxRequestBytes); e != nil {
		writeErr(w, e)
		return
	}
	if e := s.c.ApplyFault(&req); e != nil {
		writeErr(w, e)
		return
	}
	writeJSON(w, http.StatusOK, wire.OKResponse{OK: true})
}

func (s *httpServer) ring(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.c.RingWire())
}

func (s *httpServer) staleness(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.c.StalenessWire())
}

func (s *httpServer) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.c.StatsWire())
}

func (s *httpServer) monitor(w http.ResponseWriter, r *http.Request) {
	resp := wire.MonitorResponse{Summary: s.c.Monitor().Summary()}
	if r.URL.Query().Get("verdicts") != "" {
		resp.Verdicts = s.c.Monitor().Verdicts()
	}
	writeJSON(w, http.StatusOK, resp)
}

// monitorStream streams verdicts as NDJSON — every verdict so far,
// then new ones live as the classifier emits them — until the client
// disconnects or the monitor closes.
func (s *httpServer) monitorStream(w http.ResponseWriter, r *http.Request) {
	ch, cancel := s.c.Monitor().Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before the first verdict exists, so a
		// subscriber to a quiet monitor gets a live stream instead of
		// blocking on buffered headers.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(v); err != nil {
				return // client gone
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
