package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/internal/core"
)

// NewHTTPHandler exposes a cluster over HTTP/JSON — the wire surface
// cmd/ccserved serves and cmd/ccload drives:
//
//	POST /v1/objects  {"name":"cart:1","adt":"Counter"}
//	POST /v1/invoke   {"session":7,"object":"cart:1","method":"inc","args":[1]}
//	POST /v1/crash    {"shard":0,"replica":1}
//	GET  /v1/stats
//	GET  /v1/monitor            (full verdict list: /v1/monitor?verdicts=1)
//	GET  /v1/healthz
//
// Sessions are identified by the client-chosen "session" integer; all
// requests carrying the same id must come from one sequential client
// (see Session).
type httpServer struct {
	c *Cluster
}

// NewHTTPHandler builds the HTTP/JSON front-end for c.
func NewHTTPHandler(c *Cluster) http.Handler {
	s := &httpServer{c: c}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/objects", s.createObject)
	mux.HandleFunc("POST /v1/invoke", s.invoke)
	mux.HandleFunc("POST /v1/crash", s.crash)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /v1/monitor", s.monitor)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "criterion": c.Criterion()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *httpServer) createObject(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		ADT  string `json:"adt"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" || req.ADT == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need name and adt"))
		return
	}
	if _, err := cc.LookupADT(req.ADT); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.c.CreateObject(req.Name, req.ADT); err != nil {
		// A valid request can still fail two ways: the cluster is
		// draining (retryable) or the name is taken by another type.
		code := http.StatusConflict
		if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// InvokeResponse is the wire form of one operation's result.
type InvokeResponse struct {
	Output string `json:"output"`
	Bot    bool   `json:"bot"`
	Vals   []int  `json:"vals,omitempty"`
}

func (s *httpServer) invoke(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session int    `json:"session"`
		Object  string `json:"object"`
		Method  string `json:"method"`
		Args    []int  `json:"args"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.c.Session(req.Session).Invoke(req.Object, cc.NewInput(req.Method, req.Args...))
	if err != nil {
		// Shutdown in progress is retryable and not the client's fault;
		// everything else here is an unknown object.
		code := http.StatusNotFound
		if errors.Is(err, core.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, InvokeResponse{Output: out.String(), Bot: out.Bot, Vals: out.Vals})
}

func (s *httpServer) crash(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shard   int `json:"shard"`
		Replica int `json:"replica"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.c.CrashReplica(req.Shard, req.Replica); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *httpServer) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Stats())
}

func (s *httpServer) monitor(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"summary": s.c.Monitor().Summary()}
	if r.URL.Query().Get("verdicts") != "" {
		resp["verdicts"] = s.c.Monitor().Verdicts()
	}
	writeJSON(w, http.StatusOK, resp)
}
