package cluster

// The wire-facing execution engine: per-request read targets, ordered
// per-session batch groups, and the classification of cluster errors
// into their typed wire form. Both front-ends — the HTTP handler in
// http.go and cc/client's in-process loopback transport — run on
// these entry points, so the two speak byte-for-byte the same
// protocol semantics.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// WireError classifies a cluster error into its typed wire form: a
// shutdown in progress or a crash-stopped replica is retryable
// (CodeUnavailable), an unknown object is CodeNotFound, an object/ADT
// clash is CodeConflict, and everything else the client asked for
// wrongly is CodeBadRequest. A nil error maps to nil.
func WireError(err error) *wire.Error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrClosed), errors.Is(err, core.ErrClosed), errors.Is(err, core.ErrDown):
		return wire.Errf(wire.CodeUnavailable, "%v", err)
	case errors.Is(err, ErrUnknownObject):
		return wire.Errf(wire.CodeNotFound, "%v", err)
	case errors.Is(err, ErrTypeConflict):
		return wire.Errf(wire.CodeConflict, "%v", err)
	default:
		return wire.Errf(wire.CodeBadRequest, "%v", err)
	}
}

// outputToWire renders one operation result in its wire form.
func outputToWire(out cc.Output) *wire.InvokeResponse {
	return &wire.InvokeResponse{Output: out.String(), Bot: out.Bot, Vals: out.Vals}
}

// validateInput rejects inputs the object's ADT does not define
// before they reach a station. The spec contract makes Step total
// only over well-formed inputs — an unknown method or wrong arity
// panics — and a panic on the serving path would wedge the station
// (queries step under its mutex) or kill the delivery goroutine
// (updates step on delivery). The trial step runs against the initial
// state, which catches exactly the method/arity panics the registry
// ADTs throw, without touching live state.
func validateInput(t cc.ADT, in cc.Input) (err error) {
	if !t.IsUpdate(in) && !t.IsQuery(in) {
		return fmt.Errorf("cluster: ADT %s has no method %q", t.Name(), in.Method)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: invalid input %s for ADT %s: %v", in, t.Name(), r)
		}
	}()
	t.Step(t.Init(), in)
	return nil
}

// station routes one operation: updates and affinity reads go to the
// session's pinned replica, ReadReplica reads to the session's
// explicit read replica (the SLA router's choice), and ReadAny reads
// round-robin over the object's shard (transport-crashed replicas
// included — they still serve wait-free from their partitioned local
// state, which is exactly the weak read ReadAny buys — but
// fault-stopped replicas are skipped: they refuse service outright,
// and routing a weak read into a guaranteed error helps no one).
func (c *Cluster) station(sh *shard, affinity int, target wire.ReadTarget, readRep *int, isUpdate bool) *core.Station {
	sts := sh.stations
	if isUpdate {
		return sts[affinity]
	}
	switch target {
	case wire.ReadReplica:
		if readRep != nil {
			return sts[*readRep]
		}
	case wire.ReadAny:
		for range sts {
			st := sts[int(sh.rr.Add(1)%uint32(len(sts)))]
			if !st.Down() {
				return st
			}
		}
	}
	return sts[affinity]
}

// sleepReplica applies the replica's injected serving delay, if any
// (SetReplicaDelay). Called with no locks held.
func (c *Cluster) sleepReplica(replica int) {
	if replica < 0 || replica >= len(c.delays) {
		return
	}
	if d := c.delays[replica].Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// highWater snapshots a serving station's high-water vector in wire
// form — the per-query staleness piggyback.
func highWater(shardIdx int, st *core.Station) *wire.HighWater {
	return &wire.HighWater{Shard: shardIdx, Replica: st.ID(), HW: st.HighWater()}
}

// InvokeTarget executes one operation with a per-request read target
// (Pileus-style). ReadAffinity is Invoke; ReadAny routes a query to
// any replica of the object's shard, trading the session's
// read-your-writes for load spread — such a read abandons the
// session's ordering, so it is also excluded from the session's
// monitored history. Updates always run at the pinned replica
// regardless of target (program order is not negotiable).
func (s *Session) InvokeTarget(object string, in cc.Input, target wire.ReadTarget) (cc.Output, error) {
	out, _, _, err := s.invokeTarget(object, in, target)
	return out, err
}

// invokeTarget is InvokeTarget plus the shard index the operation ran
// on and the station that served it — the wire layer echoes a frontier
// and a high-water vector for that (shard, replica), and reading the
// shard under the object's gate is the only race-free way to learn it
// (a migration may flip o.shard the instant the gate releases).
func (s *Session) invokeTarget(object string, in cc.Input, target wire.ReadTarget) (cc.Output, int, *core.Station, error) {
	if !target.Valid() {
		return cc.Output{}, 0, nil, fmt.Errorf("cluster: unknown read target %q", target)
	}
	if target == wire.ReadReplica && s.readRep == nil {
		return cc.Output{}, 0, nil, fmt.Errorf("cluster: read target %q needs a read replica", target)
	}
	c := s.c
	c.mu.RLock()
	o, ok := c.objects[object]
	c.mu.RUnlock()
	if !ok {
		return cc.Output{}, 0, nil, fmt.Errorf("%w %q", ErrUnknownObject, object)
	}
	if err := validateInput(o.t, in); err != nil {
		return cc.Output{}, 0, nil, err
	}
	isUpdate := o.t.IsUpdate(in)
	// The gate's read side pins the object to its shard for the whole
	// invocation: a concurrent migration blocks (and queues every later
	// arrival) until the operation has fully submitted, so nothing slips
	// between the quiescence snapshot and the snapshot shipping.
	o.gate.RLock()
	shardIdx := o.shard
	st := c.station(c.shardList()[shardIdx], s.replica, target, s.readRep, isUpdate)
	if o.rec == nil || (!isUpdate && target.Weak()) {
		if !isUpdate && target.Weak() {
			c.weakReads.Add(1)
		}
		out, err := st.Invoke(object, in)
		o.gate.RUnlock()
		c.sleepReplica(st.ID())
		return out, shardIdx, st, err
	}
	inv := time.Since(c.start).Seconds()
	out, err := st.Invoke(object, in)
	o.gate.RUnlock()
	c.sleepReplica(st.ID())
	if err == nil {
		o.rec.record(s.id, cc.NewOp(in, out), inv, time.Since(c.start).Seconds())
	}
	return out, shardIdx, st, err
}

// groupPend is one in-flight update of a batch group.
type groupPend struct {
	idx   int
	wait  func() cc.Output
	o     *object
	in    cc.Input
	inv   float64
	shard int
}

// InvokeGroup executes one session's ordered run of operations — the
// server side of one wire.BatchGroup. Semantics are exactly those of
// calling InvokeTarget once per op in order, but updates are
// pipelined: each is submitted to its station without waiting (origin
// FIFO keeps their order), and the group only blocks when a query
// needs the session's earlier updates applied (read-your-writes) or
// when the group ends. A failed operation carries its own typed error
// and does not abort the rest of the group.
func (s *Session) InvokeGroup(ops []wire.BatchOp, target wire.ReadTarget) []wire.BatchResult {
	results, _ := s.invokeGroup(ops, target)
	return results
}

// invokeGroup is InvokeGroup plus the set of shards the group
// successfully updated, read under each object's gate at submission
// time — the wire layer echoes frontiers for those shards, and
// re-resolving the shard after the fact would race a migration.
func (s *Session) invokeGroup(ops []wire.BatchOp, target wire.ReadTarget) ([]wire.BatchResult, map[int]bool) {
	results := make([]wire.BatchResult, len(ops))
	updated := make(map[int]bool)
	if !target.Valid() {
		e := wire.Errf(wire.CodeBadRequest, "unknown read target %q", target)
		for i := range results {
			results[i].Err = e
		}
		return results, updated
	}
	if target == wire.ReadReplica && s.readRep == nil {
		e := wire.Errf(wire.CodeBadRequest, "read target %q needs a read_replica", target)
		for i := range results {
			results[i].Err = e
		}
		return results, updated
	}
	c := s.c
	pending := make(map[*core.Station][]groupPend)
	// resolve collects a station's pipelined updates in submission
	// order, recording each in the monitor with its true submit time —
	// so the recorded per-session, per-object order is identical to
	// per-op calls (TimedToHistory orders a process's ops by Inv).
	// The station's injected delay (SetReplicaDelay) applies once per
	// barrier, not per pipelined op: the barrier is one logical answer,
	// the way a far replica's batch RPC pays one round trip.
	resolve := func(st *core.Station) {
		ps := pending[st]
		delete(pending, st)
		if len(ps) == 0 {
			return
		}
		c.sleepReplica(st.ID())
		for _, p := range ps {
			out := p.wait()
			if p.o.rec != nil {
				p.o.rec.record(s.id, cc.NewOp(p.in, out), p.inv, time.Since(c.start).Seconds())
			}
			results[p.idx] = wire.BatchResult{Output: outputToWire(out)}
		}
		// One high-water snapshot serves every update of the barrier: the
		// client only needs the vector to advance its known-freshest view.
		hw := st.HighWater()
		for _, p := range ps {
			if results[p.idx].Output != nil {
				results[p.idx].Output.HighWater = &wire.HighWater{Shard: p.shard, Replica: st.ID(), HW: hw}
			}
		}
	}
	for i, bop := range ops {
		in := cc.NewInput(bop.Method, bop.Args...)
		c.mu.RLock()
		o, ok := c.objects[bop.Object]
		c.mu.RUnlock()
		if !ok {
			results[i].Err = wire.Errf(wire.CodeNotFound, "%v %q", ErrUnknownObject, bop.Object)
			continue
		}
		if err := validateInput(o.t, in); err != nil {
			results[i].Err = WireError(err)
			continue
		}
		isUpdate := o.t.IsUpdate(in)
		// Gate held per op: the shard read and the submission are atomic
		// with respect to migration (see invokeTarget). The pipelined
		// wait() runs gate-free — the output was recorded at local apply,
		// which a migration's quiescence already waited for.
		o.gate.RLock()
		shardIdx := o.shard
		st := c.station(c.shardList()[shardIdx], s.replica, target, s.readRep, isUpdate)
		if isUpdate {
			inv := time.Since(c.start).Seconds()
			wait, err := st.InvokeAsync(bop.Object, in)
			o.gate.RUnlock()
			if err != nil {
				results[i].Err = WireError(err)
				continue
			}
			updated[shardIdx] = true
			pending[st] = append(pending[st], groupPend{idx: i, wait: wait, o: o, in: in, inv: inv, shard: shardIdx})
			continue
		}
		// A same-station query must observe the session's pipelined
		// updates (an object's updates and its affinity reads share a
		// station, so this preserves read-your-writes). A weak query
		// (ReadAny, ReadReplica) waives that ordering, so it skips the
		// barrier too.
		weak := target.Weak()
		if !weak {
			resolve(st)
		} else {
			c.weakReads.Add(1)
		}
		inv := time.Since(c.start).Seconds()
		out, err := st.Invoke(bop.Object, in)
		var frontier *wire.ShardFrontier
		if weak {
			// Snapshot the serving replica's frontier under the gate: the
			// client compares it against the session's accumulated frontier
			// to learn whether this weak read delivered read-my-writes
			// anyway (the SLA delivered-consistency verdict).
			if vc := st.Frontier(); vc != nil {
				frontier = &wire.ShardFrontier{Shard: shardIdx, VC: vc}
			}
		}
		o.gate.RUnlock()
		c.sleepReplica(st.ID())
		if err != nil {
			results[i].Err = WireError(err)
			continue
		}
		if o.rec != nil && !weak {
			o.rec.record(s.id, cc.NewOp(in, out), inv, time.Since(c.start).Seconds())
		}
		resp := outputToWire(out)
		resp.Frontier = frontier
		resp.HighWater = highWater(shardIdx, st)
		results[i] = wire.BatchResult{Output: resp}
	}
	for st := range pending {
		resolve(st)
	}
	return results, updated
}

// frontierWait bounds how long a request carrying a session frontier
// may block for the serving replica to catch up; past it the request
// fails retryably (CodeUnavailable) instead of wedging the client.
const frontierWait = 2 * time.Second

// sessionFor opens the session a wire request names, honoring its
// failover fields: an explicit Replica pin overrides the default
// (session id mod replica count), readRep names the serving replica
// of ReadReplica-target queries, and any carried Frontiers are
// waited for — the serving replica must have delivered everything the
// session has already seen before it serves (read-your-writes across
// failover). A replica that cannot catch up within frontierWait
// yields CodeUnavailable.
func (c *Cluster) sessionFor(id int, replica, readRep *int, frontiers []wire.ShardFrontier) (*Session, *wire.Error) {
	s := c.Session(id)
	if replica != nil {
		if err := c.checkReplica(*replica); err != nil {
			return nil, wire.Errf(wire.CodeBadRequest, "%v", err)
		}
		s.replica = *replica
	}
	if readRep != nil {
		if err := c.checkReplica(*readRep); err != nil {
			return nil, wire.Errf(wire.CodeBadRequest, "%v", err)
		}
		s.readRep = readRep
	}
	for _, f := range frontiers {
		// A frontier naming a drained shard is answered from the recorded
		// handoff frontier: everything up to the handoff is baked into the
		// snapshots the migration shipped, so a dominated frontier is
		// satisfied everywhere the objects now live; anything beyond it
		// cannot exist (the shard quiesced before it closed), so a
		// non-dominated frontier is a stale client retrying forever —
		// refuse it retryably and let the ring refresh reroute it.
		if final, drained := c.drainedFrontier(f.Shard); drained {
			if vclock.VC(f.VC).LessEq(final) {
				continue
			}
			return nil, wire.Errf(wire.CodeUnavailable,
				"shard %d drained behind the session frontier", f.Shard)
		}
		st := c.frontierStation(f.Shard, s.replica)
		if st == nil {
			return nil, wire.Errf(wire.CodeBadRequest, "frontier names no shard %d", f.Shard)
		}
		if !st.WaitFrontier(f.VC, frontierWait) {
			return nil, wire.Errf(wire.CodeUnavailable,
				"replica %d of shard %d behind the session frontier", s.replica, f.Shard)
		}
	}
	return s, nil
}

// frontier reads the serving replica's causal frontier for one
// shard, in wire form; nil in criteria with no frontier (PC, EC).
func (c *Cluster) frontier(shardIdx, replica int) *wire.ShardFrontier {
	st := c.frontierStation(shardIdx, replica)
	if st == nil {
		return nil
	}
	vc := st.Frontier()
	if vc == nil {
		return nil
	}
	return &wire.ShardFrontier{Shard: shardIdx, VC: vc}
}

// checkEpoch rejects a request carrying a stale ring epoch with the
// retryable redirect (CodeStaleRing): the client refreshes its ring
// view (GET /v1/ring) and retries. Epoch 0 means "no epoch attached"
// — pre-elastic clients keep working, they just never learn about
// topology changes proactively.
func (c *Cluster) checkEpoch(epoch int64) *wire.Error {
	if epoch == 0 {
		return nil
	}
	if cur := c.epoch.Load(); epoch != cur {
		return wire.Errf(wire.CodeStaleRing, "ring epoch %d is stale (current %d)", epoch, cur)
	}
	return nil
}

// InvokeWire executes one wire invocation — the single-op entry point
// shared by the HTTP front-end and the loopback transport.
func (c *Cluster) InvokeWire(req *wire.InvokeRequest) (*wire.InvokeResponse, *wire.Error) {
	if e := c.checkEpoch(req.Epoch); e != nil {
		return nil, e
	}
	s, e := c.sessionFor(req.Session, req.Replica, req.ReadReplica, req.Frontiers)
	if e != nil {
		return nil, e
	}
	in := cc.NewInput(req.Method, req.Args...)
	out, shardIdx, st, err := s.invokeTarget(req.Object, in, req.Target)
	if err != nil {
		return nil, WireError(err)
	}
	resp := outputToWire(out)
	resp.HighWater = highWater(shardIdx, st)
	c.mu.RLock()
	o := c.objects[req.Object]
	c.mu.RUnlock()
	switch {
	case o != nil && o.t.IsUpdate(in):
		// Echo the frontier reached after the update applied locally: a
		// conservative snapshot (it may include concurrent deliveries),
		// which only ever makes a failover wait longer, never unsound.
		// The shard is the one the op actually ran on (read under the
		// object's gate) — o.shard may already point elsewhere.
		resp.Frontier = c.frontier(shardIdx, s.replica)
	case req.Target.Weak():
		// Echo the serving replica's frontier on a weak read, so the
		// client can tell whether the read delivered read-my-writes
		// anyway (frontier comparison at response time — the SLA
		// delivered-consistency verdict).
		if vc := st.Frontier(); vc != nil {
			resp.Frontier = &wire.ShardFrontier{Shard: shardIdx, VC: vc}
		}
	}
	return resp, nil
}

// ExecuteBatch runs one wire batch: groups are independent sessions
// and execute concurrently (their invocations commute in the paper's
// session-based causal model); each group's ops run in order under
// the session's sequential discipline. A session id may appear in at
// most one group — two groups would race one session's program order,
// so duplicates are rejected outright.
func (c *Cluster) ExecuteBatch(req *wire.BatchRequest) (*wire.BatchResponse, *wire.Error) {
	if e := c.checkEpoch(req.Epoch); e != nil {
		return nil, e
	}
	if len(req.Groups) == 0 {
		return nil, wire.Errf(wire.CodeBadRequest, "batch has no groups")
	}
	seen := make(map[int]bool, len(req.Groups))
	for _, g := range req.Groups {
		if seen[g.Session] {
			return nil, wire.Errf(wire.CodeBadRequest, "session %d appears in more than one group", g.Session)
		}
		seen[g.Session] = true
		if !g.Target.Valid() {
			return nil, wire.Errf(wire.CodeBadRequest, "unknown read target %q", g.Target)
		}
	}
	resp := &wire.BatchResponse{Groups: make([]wire.BatchGroupResult, len(req.Groups))}
	var wg sync.WaitGroup
	for i, g := range req.Groups {
		wg.Add(1)
		go func(i int, g wire.BatchGroup) {
			defer wg.Done()
			s, e := c.sessionFor(g.Session, g.Replica, g.ReadReplica, g.Frontiers)
			if e != nil {
				// A failover precondition failure (bad pin, frontier
				// timeout) fails the whole group: its ops never ran, and
				// each result says why, retryably where the code allows.
				results := make([]wire.BatchResult, len(g.Ops))
				for j := range results {
					results[j].Err = e
				}
				resp.Groups[i] = wire.BatchGroupResult{Session: g.Session, Results: results}
				return
			}
			results, updated := s.invokeGroup(g.Ops, g.Target)
			resp.Groups[i] = wire.BatchGroupResult{
				Session:   g.Session,
				Results:   results,
				Frontiers: c.groupFrontiers(s, updated),
			}
		}(i, g)
	}
	wg.Wait()
	return resp, nil
}

// groupFrontiers reads the serving replica's causal frontier for
// every shard the group successfully updated (empty in criteria with
// no frontier), sorted by shard for a stable wire form. The shard set
// was recorded at submission time under each object's gate, so it
// names the shards the updates actually ran on even across a
// concurrent migration.
func (c *Cluster) groupFrontiers(s *Session, updated map[int]bool) []wire.ShardFrontier {
	var fs []wire.ShardFrontier
	for sh := range updated {
		if f := c.frontier(sh, s.replica); f != nil {
			fs = append(fs, *f)
		}
	}
	sort.Slice(fs, func(a, b int) bool { return fs[a].Shard < fs[b].Shard })
	return fs
}

// StatsWire renders a stats snapshot in its wire form.
func (c *Cluster) StatsWire() *wire.StatsResponse {
	st := c.Stats()
	resp := &wire.StatsResponse{
		UptimeSeconds: st.Uptime.Seconds(),
		Objects:       st.Objects,
		Criterion:     st.Criteria,
		WeakReads:     st.WeakReads,
		Invocations:   st.Totals.Invocations,
		Updates:       st.Totals.Updates,
		Queries:       st.Totals.Queries,
		Applied:       st.Totals.Applied,
		Broadcasts:    st.Totals.Broadcasts,
		BatchedOps:    st.Totals.BatchedOps,
	}
	for _, sh := range st.Shards {
		resp.Shards = append(resp.Shards, wire.ShardStats{Crashed: sh.Crashed, Down: sh.Down, Drained: sh.Drained})
	}
	return resp
}
