package cluster

import (
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
)

// Internal regression tests for the window-closing machinery: the
// "window filled" state must be a boolean set exactly once, not a
// cutoff-is-zero sentinel. Before the fix, a window whose recorded
// res times were all zero (a clock starting at the first operation)
// never engaged the grace filter, re-armed the grace timer on every
// later record, and was only ever submitted by Close's force path.

func monitorADT(t *testing.T) cc.ADT {
	t.Helper()
	a, err := cc.LookupADT("Register")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func waitSubmitted(t *testing.T, m *Monitor, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		got := m.submitted
		m.mu.Unlock()
		if got >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("window was never submitted")
}

// TestMonitorWindowClosesAtZeroRes: a window whose operations all
// carry res == 0 must still fill, pass its grace period and submit —
// without waiting for Close.
func TestMonitorWindowClosesAtZeroRes(t *testing.T) {
	m := newMonitor(MonitorConfig{SampleEvery: 1, WindowOps: 4, Grace: 10 * time.Millisecond}, "CC")
	defer m.Close()
	rec := m.maybeSample("obj", monitorADT(t))
	if rec == nil {
		t.Fatal("SampleEvery=1 did not sample")
	}
	w := cc.NewOp(cc.NewInput("w", 1), cc.Bot)
	for i := 0; i < 4; i++ {
		rec.record(0, w, 0, 0)
	}
	waitSubmitted(t, m, 1)
	rec.mu.Lock()
	filled, done := rec.filled, rec.done
	rec.mu.Unlock()
	if !filled || !done {
		t.Fatalf("recorder state after grace: filled=%v done=%v, want both", filled, done)
	}
}

// TestMonitorNoDuplicateWindowAtGraceBoundary: operations landing
// while the grace period runs keep len(ops) ≥ WindowOps true; the
// fill branch must not re-arm the grace timer for them, and the
// window must be submitted exactly once.
func TestMonitorNoDuplicateWindowAtGraceBoundary(t *testing.T) {
	m := newMonitor(MonitorConfig{SampleEvery: 1, WindowOps: 4, Grace: 30 * time.Millisecond}, "CC")
	rec := m.maybeSample("obj", monitorADT(t))
	w := cc.NewOp(cc.NewInput("w", 1), cc.Bot)
	for i := 0; i < 4; i++ {
		rec.record(0, w, 0, 0)
	}
	rec.mu.Lock()
	cutoff := rec.cutoff
	rec.mu.Unlock()
	// In-flight operations during grace (res ≤ cutoff ⇒ admitted).
	for i := 0; i < 6; i++ {
		rec.record(1, w, cutoff, cutoff)
		time.Sleep(time.Millisecond)
	}
	waitSubmitted(t, m, 1)
	// Give any (buggy) re-armed grace timers time to fire, then close.
	time.Sleep(60 * time.Millisecond)
	m.Close()
	sum := m.Summary()
	if sum.WindowsSubmitted != 1 {
		t.Fatalf("window submitted %d times, want exactly 1", sum.WindowsSubmitted)
	}
	if sum.Errors > 0 {
		t.Fatalf("monitor errors: %+v", sum)
	}
}

// TestMonitorSessionCapWeakensOverCapSessions pins the
// MaxWindowSessions semantics deterministically: the first cap
// distinct sessions are admitted in full; a later session's query is
// skipped (never recorded) and its update is recorded hidden on its
// true proc (program order and state effect stay, output obligation
// dropped). Both weakened ops are counted in Summary.CappedOps.
func TestMonitorSessionCapWeakensOverCapSessions(t *testing.T) {
	m := newMonitor(MonitorConfig{
		SampleEvery: 1, WindowOps: 32, Grace: 10 * time.Millisecond,
		MaxWindowSessions: 2,
	}, "CC")
	defer m.Close()
	rec := m.maybeSample("obj", monitorADT(t))
	w := cc.NewOp(cc.NewInput("w", 1), cc.Bot)
	r := cc.NewOp(cc.NewInput("r"), cc.IntOutput(1))

	rec.record(0, w, 1, 2) // admits session 0
	rec.record(1, w, 3, 4) // admits session 1
	rec.record(2, r, 5, 6) // over cap: query, skipped
	rec.record(2, w, 7, 8) // over cap: update, recorded hidden
	rec.record(0, r, 9, 10)

	type opView struct {
		proc   int
		hidden bool
		method string
	}
	rec.mu.Lock()
	var ops []opView
	for _, o := range rec.ops {
		ops = append(ops, opView{o.Proc, o.Op.Hidden, o.Op.In.Method})
	}
	rec.mu.Unlock()

	want := []opView{
		{0, false, "w"},
		{1, false, "w"},
		{2, true, "w"}, // over-cap update: true proc, hidden
		{0, false, "r"},
	}
	if len(ops) != len(want) {
		t.Fatalf("recorded %d ops %+v, want %d", len(ops), ops, len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
	if got := m.Summary().CappedOps; got != 2 {
		t.Fatalf("CappedOps = %d, want 2 (one skipped query + one hidden update)", got)
	}
}

// TestMonitorSessionCapDisabled: MaxWindowSessions -1 admits every
// session in full (the pre-cap behavior).
func TestMonitorSessionCapDisabled(t *testing.T) {
	m := newMonitor(MonitorConfig{
		SampleEvery: 1, WindowOps: 32, Grace: 10 * time.Millisecond,
		MaxWindowSessions: -1,
	}, "CC")
	defer m.Close()
	rec := m.maybeSample("obj", monitorADT(t))
	w := cc.NewOp(cc.NewInput("w", 1), cc.Bot)
	for s := 0; s < 6; s++ {
		rec.record(s, w, float64(2*s), float64(2*s+1))
	}
	rec.mu.Lock()
	n := len(rec.ops)
	hidden := 0
	for _, o := range rec.ops {
		if o.Op.Hidden {
			hidden++
		}
	}
	rec.mu.Unlock()
	if n != 6 || hidden != 0 {
		t.Fatalf("uncapped recorder kept %d ops (%d hidden), want all 6 visible", n, hidden)
	}
	if got := m.Summary().CappedOps; got != 0 {
		t.Fatalf("CappedOps = %d, want 0 when the cap is disabled", got)
	}
}

// TestMonitorGraceCutoffCoversRecordedOps: the cutoff computed when
// the window fills must cover the maximum recorded res, even when the
// filling operation is not the latest one (out-of-order record calls).
func TestMonitorGraceCutoffCoversRecordedOps(t *testing.T) {
	m := newMonitor(MonitorConfig{SampleEvery: 1, WindowOps: 3, Grace: 10 * time.Millisecond}, "CC")
	defer m.Close()
	rec := m.maybeSample("obj", monitorADT(t))
	w := cc.NewOp(cc.NewInput("w", 1), cc.Bot)
	rec.record(0, w, 1, 2)
	rec.record(0, w, 3, 9) // latest res, recorded before the filling op
	rec.record(1, w, 4, 5) // fills the window
	rec.mu.Lock()
	cutoff, filled := rec.cutoff, rec.filled
	rec.mu.Unlock()
	if !filled {
		t.Fatal("window did not fill at WindowOps operations")
	}
	if cutoff != 9 {
		t.Fatalf("cutoff = %v, want the recorded max res 9", cutoff)
	}
}
