package cc_test

// The API-lock test: the exported surface of the public facade (cc,
// cc/checker, cc/histories, cc/client, cc/cluster/wire) is rendered
// to a canonical text and compared against testdata/api.golden. Any
// addition, removal or signature change fails the test until the
// golden file is regenerated — run with UPDATE_APILOCK=1 to rewrite
// it — making API drift a reviewed, deliberate act rather than an
// accident. The wire package's lock doubles as the protocol lock:
// renaming a wire struct field is a protocol change and shows up
// here.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// facadeDirs lists the locked packages, relative to this file's
// directory (the cc package root).
var facadeDirs = []string{".", "bench", "checker", "histories", "client", "cluster", "cluster/wire", "sla"}

// apiSurface renders the exported declarations of one package
// directory, one line per identifier, deterministically sorted.
func apiSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var lines []string
	for pkgName, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv != nil || !d.Name.IsExported() {
						continue // methods live on aliased engine types
					}
					lines = append(lines, pkgName+": "+renderFunc(t, fset, d))
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								lines = append(lines, fmt.Sprintf("%s: type %s%s", pkgName, s.Name.Name, typeKind(s)))
							}
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, n := range s.Names {
								if n.IsExported() {
									lines = append(lines, fmt.Sprintf("%s: %s %s", pkgName, kind, n.Name))
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// renderFunc prints a function declaration's signature without its
// body or doc comment, collapsed onto one line.
func renderFunc(t *testing.T, fset *token.FileSet, d *ast.FuncDecl) string {
	t.Helper()
	clone := *d
	clone.Body = nil
	clone.Doc = nil
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, &clone); err != nil {
		t.Fatalf("print %s: %v", d.Name.Name, err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// typeKind classifies a type spec: alias, struct, interface or other.
func typeKind(s *ast.TypeSpec) string {
	if s.Assign != token.NoPos {
		return " = (alias)"
	}
	switch s.Type.(type) {
	case *ast.StructType:
		return " (struct)"
	case *ast.InterfaceType:
		return " (interface)"
	default:
		return ""
	}
}

func TestAPILock(t *testing.T) {
	var all []string
	for _, dir := range facadeDirs {
		all = append(all, apiSurface(t, dir)...)
	}
	got := strings.Join(all, "\n") + "\n"

	golden := filepath.Join("testdata", "api.golden")
	if os.Getenv("UPDATE_APILOCK") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d identifiers)", golden, len(all))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_APILOCK=1 to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Show a per-line diff, the kind of drift this test exists to flag.
	gotSet := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	wantSet := strings.Split(strings.TrimSuffix(string(want), "\n"), "\n")
	in := func(xs []string, x string) bool {
		for _, v := range xs {
			if v == x {
				return true
			}
		}
		return false
	}
	for _, w := range wantSet {
		if !in(gotSet, w) {
			t.Errorf("removed or changed: %s", w)
		}
	}
	for _, g := range gotSet {
		if !in(wantSet, g) {
			t.Errorf("added or changed:   %s", g)
		}
	}
	t.Error("public API surface drifted from cc/testdata/api.golden; " +
		"if intentional, regenerate with UPDATE_APILOCK=1 go test ./cc/")
}
