// Package histories is the public facade over the engine's history
// model: distributed histories (Def. 4 of the paper) as labelled
// partial orders of events, a builder for constructing them
// programmatically, and the two text formats the command-line tools
// speak (plain histories and interval-timed histories).
//
// The types are aliases of the engine's: a *histories.History is a
// *internal/history.History, so values built here flow into
// cc/checker (and into the internal runtime's recorders) without
// conversion.
package histories

import (
	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/internal/history"
)

type (
	// History is a distributed history H = (Σ, E, Λ, 7→) over an ADT:
	// events, transitively-closed program order, processes as maximal
	// chains, and the ω-marking that encodes infinite executions.
	History = history.History
	// Event is a single method execution by a process.
	Event = history.Event
	// Builder accumulates events process by process (plus optional
	// cross-process edges) and derives the immutable History.
	Builder = history.Builder
	// TimedEvent is one operation execution with a real-time
	// [invocation,response] interval — the input of the
	// linearizability checker.
	TimedEvent = history.TimedEvent
)

// Parse reads the textual history format used by the tools and tests:
//
//	adt: W2
//	p0: w(1) r/(0,1) r/(1,2)*
//	p1: w(2) r/(0,2) r/(1,2)*
//
// The first non-empty, non-comment line names the ADT (cc.LookupADT);
// each following line gives one process's operations, a trailing '*'
// marking an ω-event (the final read repeats forever). Lines starting
// with '#' are comments.
func Parse(text string) (*History, error) { return history.Parse(text) }

// MustParse is Parse for tests and fixtures; it panics on error.
func MustParse(text string) *History { return history.MustParse(text) }

// ParseTimed reads the timed-history format:
//
//	adt: Register
//	p0: [0,1]w(1) [2,3]r/1
//	p1: [1.5,2.5]r/0
//
// Each operation is prefixed with its [invocation,response] interval;
// "inf" marks an operation that never returned.
func ParseTimed(text string) (cc.ADT, []TimedEvent, error) { return history.ParseTimed(text) }

// NewBuilder starts an empty history over the given ADT.
func NewBuilder(t cc.ADT) *Builder { return history.NewBuilder(t) }

// FromProcesses builds a history from per-process operation sequences,
// the common case of sequential processes with no cross-process edges.
func FromProcesses(t cc.ADT, procs [][]cc.Operation) *History {
	return history.FromProcesses(t, procs)
}
