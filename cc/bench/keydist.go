package bench

import "math/rand"

// KeyDist names an object-popularity distribution.
type KeyDist string

const (
	// KeyUniform draws every object equally often.
	KeyUniform KeyDist = "uniform"
	// KeyZipf skews popularity by a Zipf law (hot objects exist).
	KeyZipf KeyDist = "zipf"
	// KeyLatest skews popularity toward the most recently created
	// object (the YCSB "latest" shape for growing keyspaces).
	KeyLatest KeyDist = "latest"
)

// Chooser draws object indices in [0, n): the moving parameter n lets
// growing-keyspace workloads widen the range mid-run. Choosers are
// not safe for concurrent use (each worker owns one, like its rng).
type Chooser func(n int) int

// NewChooser builds a chooser over the distribution. skew is the Zipf
// exponent for KeyZipf and KeyLatest (values <= 1 fall back to the
// package defaults 1.1); KeyUniform ignores it. For KeyZipf the range
// is fixed at the first call's n (matching rand.Zipf); KeyLatest
// re-anchors on every call: index n-1 is the hottest.
func NewChooser(d KeyDist, skew float64, rng *rand.Rand) Chooser {
	if skew <= 1 {
		skew = 1.1
	}
	switch d {
	case KeyZipf:
		var zipf *rand.Zipf
		return func(n int) int {
			if n <= 1 {
				return 0
			}
			if zipf == nil {
				zipf = rand.NewZipf(rng, skew, 1, uint64(n-1))
			}
			return int(zipf.Uint64()) % n
		}
	case KeyLatest:
		// Zipf over recency: draw a backward offset from the newest
		// index. The offset distribution is anchored wide once so the
		// range can keep growing.
		zipf := rand.NewZipf(rng, skew, 1, 1<<20)
		return func(n int) int {
			if n <= 1 {
				return 0
			}
			off := int(zipf.Uint64()) % n
			return n - 1 - off
		}
	default: // KeyUniform
		return func(n int) int {
			if n <= 1 {
				return 0
			}
			return rng.Intn(n)
		}
	}
}
