package bench

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketsAreContiguous: every value maps to a valid
// bucket, bucket indices are monotone in the value, and the
// reconstructed midpoint stays within the promised relative error.
func TestHistogramBucketsAreContiguous(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 127, 128, 255, 256, 257, 511, 512, 513,
		1000, 4095, 4096, 1 << 20, (1 << 20) + 1, 1 << 40, math.MaxInt64 / 2} {
		b := bucketOf(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, b, histBuckets)
		}
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d: not monotone", v, b, prev)
		}
		prev = b
		mid := bucketMid(b)
		if v < histExact {
			if mid != v {
				t.Fatalf("exact region: bucketMid(bucketOf(%d)) = %d", v, mid)
			}
			continue
		}
		if relErr := math.Abs(float64(mid-v)) / float64(v); relErr > 1.0/float64(histSub) {
			t.Fatalf("value %d: midpoint %d, relative error %.4f > %.4f",
				v, mid, relErr, 1.0/float64(histSub))
		}
	}
}

// TestHistogramQuantilesMatchExact compares the histogram's quantiles
// against exact order statistics of a random sample, within the
// bucketing precision.
func TestHistogramQuantilesMatchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	const n = 50000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~6 decades, the shape latencies take.
		v := int64(math.Exp(rng.Float64()*14)) + rng.Int63n(100)
		vals[i] = v
		h.Record(v)
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := sorted[int(q*float64(n))]
		got := h.Quantile(q)
		if relErr := math.Abs(float64(got-exact)) / float64(exact); relErr > 2.0/float64(histSub) {
			t.Errorf("q%.3f: histogram %d vs exact %d (rel err %.4f)", q, got, exact, relErr)
		}
	}
	if got, want := h.Max(), sorted[n-1]; got != want {
		t.Errorf("Max = %d, want exact %d", got, want)
	}
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	if mean := h.Mean(); math.Abs(mean-sum/n) > 1e-6*sum/n {
		t.Errorf("Mean = %f, want exact %f", mean, sum/n)
	}
}

// TestHistogramQuantileNeverExceedsMax: the reported quantile is
// clamped to the exact recorded maximum (a bucket midpoint must not
// invent a latency larger than anything observed).
func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got > 1000 {
			t.Fatalf("Quantile(%v) = %d > recorded max 1000", q, got)
		}
	}
}

// TestHistogramConcurrentRecord: concurrent recorders lose no counts.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.RecordDuration(time.Duration(rng.Intn(1_000_000)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
}

// TestHistogramMerge: merging equals recording everything into one.
func TestHistogramMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(1 << 22))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Max() != all.Max() {
		t.Fatalf("merge count/max = %d/%d, want %d/%d", a.Count(), a.Max(), all.Count(), all.Max())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%v: merged %d != combined %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestHistogramEmpty: zero-sample summaries are all zero, not NaN.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	p := h.Percentiles()
	if p.Count != 0 || p.MeanUS != 0 || p.P99US != 0 || p.MaxUS != 0 {
		t.Fatalf("empty percentiles = %+v, want zeros", p)
	}
}
