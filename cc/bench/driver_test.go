package bench

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// stubWorkload is a minimal Workload for driver tests: one Register
// object, every op a read.
type stubWorkload struct{}

func (stubWorkload) Name() string      { return "stub" }
func (stubWorkload) Doc() string       { return "driver-test stub" }
func (stubWorkload) Init(Config) error { return nil }
func (stubWorkload) Profile() Profile {
	return Profile{ADTs: []string{"Register"}, Dist: KeyUniform,
		Mix: []MixEntry{{Kind: "read", Fraction: 1}}}
}
func (stubWorkload) Objects() []ObjectSpec {
	return []ObjectSpec{{Name: "o", ADT: "Register"}}
}
func (stubWorkload) NewWorker(id int, rng *rand.Rand) Worker { return stubWorker{} }

type stubWorker struct{}

func (stubWorker) NextOp(step int) Op {
	return Op{Object: "o", ADT: "Register", Input: newInput("r"), Kind: "read"}
}

// stallExecutor executes ops instantly except for one injected stall:
// call number stallAt (1-based) sleeps stallFor before returning.
type stallExecutor struct {
	calls    atomic.Int64
	setups   atomic.Int64
	stallAt  int64
	stallFor time.Duration
}

func (e *stallExecutor) Setup(ctx context.Context, objs []ObjectSpec) error {
	e.setups.Add(1)
	return nil
}

func (e *stallExecutor) Do(ctx context.Context, worker int, op Op) error {
	if n := e.calls.Add(1); n == e.stallAt {
		time.Sleep(e.stallFor)
	}
	return nil
}

// TestRunCoordinatedOmission is the point of the open-loop driver: a
// single 50ms service stall must show up in the intended-clock p99
// (the arrivals due during the stall are charged their queueing
// delay) while the naive stopwatch p99 stays low (only the one
// stalled call was slow by that clock). A closed-loop/naive harness
// reports the second number and hides the outage — coordinated
// omission.
func TestRunCoordinatedOmission(t *testing.T) {
	exec := &stallExecutor{stallAt: 400, stallFor: 50 * time.Millisecond}
	rep, err := Run(context.Background(), stubWorkload{}, exec, RunConfig{
		Workers:  1,
		Rate:     1250, // 0.8ms period: the stall swallows ~62 arrivals
		Arrival:  ArrivalFixed,
		Duration: 600 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.Arrival != ArrivalFixed {
		t.Fatalf("mode/arrival = %s/%s, want open/fixed", rep.Mode, rep.Arrival)
	}
	if rep.Ops < 500 {
		t.Fatalf("only %d ops in 600ms at 1250/s — driver stalled?", rep.Ops)
	}
	intendedP99 := time.Duration(rep.Intended.Quantile(0.99))
	serviceP99 := time.Duration(rep.Service.Quantile(0.99))
	t.Logf("ops=%d intended p99=%v service p99=%v", rep.Ops, intendedP99, serviceP99)
	// Pin both sides: the stall is visible on the intended clock...
	if intendedP99 < 25*time.Millisecond {
		t.Errorf("intended p99 = %v, want >= 25ms: the open-loop clock lost the stall", intendedP99)
	}
	// ...and (mostly) invisible on the stopwatch, which is exactly why
	// the stopwatch alone must not be trusted.
	if serviceP99 >= 25*time.Millisecond {
		t.Errorf("service p99 = %v, want < 25ms: stopwatch should hide the stall", serviceP99)
	}
	if max := time.Duration(rep.Service.Max()); max < 50*time.Millisecond {
		t.Errorf("service max = %v, want >= 50ms (the one stalled call)", max)
	}
}

// TestRunClosedLoopClocksCoincide: with Rate == 0 the intended clock
// degenerates to the stopwatch — same counts, same quantiles.
func TestRunClosedLoopClocksCoincide(t *testing.T) {
	exec := &stallExecutor{stallAt: -1}
	rep, err := Run(context.Background(), stubWorkload{}, exec, RunConfig{
		Workers:  2,
		Duration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" || rep.Arrival != "" {
		t.Fatalf("mode/arrival = %s/%q, want closed/empty", rep.Mode, rep.Arrival)
	}
	if rep.Ops == 0 || rep.Intended.Count() != rep.Ops || rep.Service.Count() != rep.Ops {
		t.Fatalf("counts: ops=%d intended=%d service=%d", rep.Ops, rep.Intended.Count(), rep.Service.Count())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a, b := rep.Intended.Quantile(q), rep.Service.Quantile(q); a != b {
			t.Errorf("closed loop q%v: intended %d != service %d", q, a, b)
		}
	}
	if rep.Mix["read"] != 1 {
		t.Errorf("mix = %v, want all read", rep.Mix)
	}
}

type failExecutor struct{ setupErr error }

func (e *failExecutor) Setup(ctx context.Context, objs []ObjectSpec) error { return e.setupErr }
func (e *failExecutor) Do(ctx context.Context, worker int, op Op) error {
	return errors.New("boom")
}

// TestRunCountsErrors: Do errors are tallied, not fatal; Setup errors
// are fatal.
func TestRunCountsErrors(t *testing.T) {
	rep, err := Run(context.Background(), stubWorkload{}, &failExecutor{}, RunConfig{
		Duration: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Errors != rep.Ops {
		t.Fatalf("ops=%d errors=%d, want every op counted as an error", rep.Ops, rep.Errors)
	}
	if _, err := Run(context.Background(), stubWorkload{}, &failExecutor{setupErr: errors.New("no")}, RunConfig{}); err == nil {
		t.Fatal("Setup error was not fatal")
	}
}
