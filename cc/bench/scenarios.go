package bench

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// The built-in scenarios. Each declares its shape in Profile() —
// blurr-style op percentages, realized with a single uniform draw per
// op so the realized mix matches the declared one exactly in
// expectation (the scenario statistical test holds them to it).
func init() {
	MustRegister(func() Workload { return &readHeavy{} })
	MustRegister(func() Workload { return &writeHeavy{} })
	MustRegister(func() Workload { return &sessionCart{} })
	MustRegister(func() Workload { return &insertGrow{} })
	MustRegister(func() Workload { return &scanRange{} })
}

// pickKind draws one mix entry with a single uniform variate.
func pickKind(rng *rand.Rand, mix []MixEntry) MixEntry {
	u := rng.Float64()
	acc := 0.0
	for _, m := range mix {
		acc += m.Fraction
		if u < acc {
			return m
		}
	}
	return mix[len(mix)-1]
}

// ---------------------------------------------------------------- //

// readHeavy is the cache shape: a zipf-hot Register/GSet population,
// 95% reads.
type readHeavy struct {
	objs []ObjectSpec
}

func (w *readHeavy) Name() string { return "read-heavy" }
func (w *readHeavy) Doc() string {
	return "read-heavy cache: 95% reads over a zipf-hot Register/GSet population"
}

func (w *readHeavy) Profile() Profile {
	return Profile{
		ADTs: []string{"Register", "GSet"},
		Dist: KeyZipf, Skew: 1.1,
		Mix: []MixEntry{
			{Kind: "read", Fraction: 0.95},
			{Kind: "write", Fraction: 0.05, Update: true},
		},
	}
}

func (w *readHeavy) Init(cfg Config) error {
	cfg.fill()
	w.objs = make([]ObjectSpec, cfg.Objects)
	for i := range w.objs {
		adt := "Register"
		if i%2 == 1 {
			adt = "GSet"
		}
		w.objs[i] = ObjectSpec{Name: fmt.Sprintf("cache-%03d", i), ADT: adt}
	}
	return nil
}

func (w *readHeavy) Objects() []ObjectSpec { return w.objs }

func (w *readHeavy) NewWorker(id int, rng *rand.Rand) Worker {
	return &readHeavyWorker{w: w, rng: rng, pick: NewChooser(KeyZipf, 1.1, rng)}
}

type readHeavyWorker struct {
	w    *readHeavy
	rng  *rand.Rand
	pick Chooser
}

func (wk *readHeavyWorker) NextOp(step int) Op {
	kind := pickKind(wk.rng, wk.w.Profile().Mix)
	obj := wk.w.objs[wk.pick(len(wk.w.objs))]
	op := Op{Object: obj.Name, ADT: obj.ADT, Update: kind.Update, Kind: kind.Kind}
	switch {
	case kind.Kind == "write" && obj.ADT == "Register":
		op.Input = newInput("w", step+1)
	case kind.Kind == "write": // GSet
		op.Input = newInput("add", wk.rng.Intn(64))
	case obj.ADT == "Register":
		op.Input = newInput("r")
	case wk.rng.Intn(2) == 0:
		op.Input = newInput("has", wk.rng.Intn(64))
	default:
		op.Input = newInput("elems")
	}
	return op
}

// ---------------------------------------------------------------- //

// writeHeavy is the counter fleet: every object a Counter, uniform
// popularity, 80% updates.
type writeHeavy struct {
	objs []ObjectSpec
}

func (w *writeHeavy) Name() string { return "write-heavy" }
func (w *writeHeavy) Doc() string {
	return "write-heavy counter fleet: 80% inc/dec updates on uniform Counters"
}

func (w *writeHeavy) Profile() Profile {
	return Profile{
		ADTs: []string{"Counter"},
		Dist: KeyUniform,
		Mix: []MixEntry{
			{Kind: "inc", Fraction: 0.50, Update: true},
			{Kind: "dec", Fraction: 0.30, Update: true},
			{Kind: "read", Fraction: 0.20},
		},
	}
}

func (w *writeHeavy) Init(cfg Config) error {
	cfg.fill()
	w.objs = make([]ObjectSpec, cfg.Objects)
	for i := range w.objs {
		w.objs[i] = ObjectSpec{Name: fmt.Sprintf("ctr-%03d", i), ADT: "Counter"}
	}
	return nil
}

func (w *writeHeavy) Objects() []ObjectSpec { return w.objs }

func (w *writeHeavy) NewWorker(id int, rng *rand.Rand) Worker {
	return &writeHeavyWorker{w: w, rng: rng, pick: NewChooser(KeyUniform, 0, rng)}
}

type writeHeavyWorker struct {
	w    *writeHeavy
	rng  *rand.Rand
	pick Chooser
}

func (wk *writeHeavyWorker) NextOp(step int) Op {
	kind := pickKind(wk.rng, wk.w.Profile().Mix)
	obj := wk.w.objs[wk.pick(len(wk.w.objs))]
	op := Op{Object: obj.Name, ADT: obj.ADT, Update: kind.Update, Kind: kind.Kind}
	switch kind.Kind {
	case "inc":
		op.Input = newInput("inc", 1+wk.rng.Intn(3))
	case "dec":
		op.Input = newInput("dec", 1+wk.rng.Intn(2))
	default:
		op.Input = newInput("get")
	}
	return op
}

// ---------------------------------------------------------------- //

// sessionCart gives every worker its own RWSet cart whose views
// depend on the session's own adds (read-your-writes is load-bearing:
// an affinity read right after an add must observe it), plus a shared
// GSet catalog the sessions browse and occasionally restock.
type sessionCart struct {
	carts    []ObjectSpec
	catalogs []ObjectSpec
}

func (w *sessionCart) Name() string { return "session-cart" }
func (w *sessionCart) Doc() string {
	return "session carts with read-your-writes dependence over a shared catalog"
}

func (w *sessionCart) Profile() Profile {
	return Profile{
		ADTs: []string{"RWSet", "GSet"},
		Dist: KeyUniform,
		Mix: []MixEntry{
			{Kind: "cart-add", Fraction: 0.25, Update: true},
			{Kind: "cart-del", Fraction: 0.05, Update: true},
			{Kind: "cart-view", Fraction: 0.35},
			{Kind: "catalog-browse", Fraction: 0.30},
			{Kind: "catalog-stock", Fraction: 0.05, Update: true},
		},
	}
}

func (w *sessionCart) Init(cfg Config) error {
	cfg.fill()
	w.carts = make([]ObjectSpec, cfg.Workers)
	for i := range w.carts {
		w.carts[i] = ObjectSpec{Name: fmt.Sprintf("cart-w%02d", i), ADT: "RWSet"}
	}
	w.catalogs = make([]ObjectSpec, cfg.Objects)
	for i := range w.catalogs {
		w.catalogs[i] = ObjectSpec{Name: fmt.Sprintf("catalog-%02d", i), ADT: "GSet"}
	}
	return nil
}

func (w *sessionCart) Objects() []ObjectSpec {
	return append(append([]ObjectSpec(nil), w.carts...), w.catalogs...)
}

func (w *sessionCart) NewWorker(id int, rng *rand.Rand) Worker {
	return &sessionCartWorker{
		w: w, rng: rng,
		cart: w.carts[id%len(w.carts)].Name,
		pick: NewChooser(KeyUniform, 0, rng),
	}
}

type sessionCartWorker struct {
	w    *sessionCart
	rng  *rand.Rand
	cart string
	pick Chooser
}

func (wk *sessionCartWorker) NextOp(step int) Op {
	kind := pickKind(wk.rng, wk.w.Profile().Mix)
	op := Op{Update: kind.Update, Kind: kind.Kind}
	switch kind.Kind {
	case "cart-add":
		op.Object, op.ADT = wk.cart, "RWSet"
		op.Input = newInput("add", wk.rng.Intn(128))
	case "cart-del":
		op.Object, op.ADT = wk.cart, "RWSet"
		op.Input = newInput("rem", wk.rng.Intn(128))
	case "cart-view":
		op.Object, op.ADT = wk.cart, "RWSet"
		op.Input = newInput("elems")
	case "catalog-stock":
		cat := wk.w.catalogs[wk.pick(len(wk.w.catalogs))]
		op.Object, op.ADT = cat.Name, cat.ADT
		op.Input = newInput("add", wk.rng.Intn(64))
	default: // catalog-browse
		cat := wk.w.catalogs[wk.pick(len(wk.w.catalogs))]
		op.Object, op.ADT = cat.Name, cat.ADT
		if wk.rng.Intn(2) == 0 {
			op.Input = newInput("has", wk.rng.Intn(64))
		} else {
			op.Input = newInput("elems")
		}
	}
	return op
}

// ---------------------------------------------------------------- //

// insertGrow is the growing-keyspace shape (YCSB "latest"): inserts
// mint brand-new Register objects mid-run, and reads skew toward the
// most recently inserted keys.
type insertGrow struct {
	objs  []ObjectSpec
	count atomic.Int64 // keys minted so far (shared across workers)
}

func (w *insertGrow) Name() string { return "insert-grow" }
func (w *insertGrow) Doc() string {
	return "growing keyspace: inserts mint new Registers, reads skew to the latest keys"
}

func (w *insertGrow) Profile() Profile {
	return Profile{
		ADTs: []string{"Register"},
		Dist: KeyLatest, Skew: 1.1,
		Mix: []MixEntry{
			{Kind: "insert", Fraction: 0.05, Update: true},
			{Kind: "update", Fraction: 0.15, Update: true},
			{Kind: "read", Fraction: 0.80},
		},
	}
}

func growName(i int64) string { return fmt.Sprintf("grow-%05d", i) }

func (w *insertGrow) Init(cfg Config) error {
	cfg.fill()
	w.objs = make([]ObjectSpec, cfg.Objects)
	for i := range w.objs {
		w.objs[i] = ObjectSpec{Name: growName(int64(i)), ADT: "Register"}
	}
	w.count.Store(int64(cfg.Objects))
	return nil
}

func (w *insertGrow) Objects() []ObjectSpec { return w.objs }

func (w *insertGrow) NewWorker(id int, rng *rand.Rand) Worker {
	return &insertGrowWorker{w: w, rng: rng, pick: NewChooser(KeyLatest, 1.1, rng)}
}

type insertGrowWorker struct {
	w    *insertGrow
	rng  *rand.Rand
	pick Chooser
}

func (wk *insertGrowWorker) NextOp(step int) Op {
	kind := pickKind(wk.rng, wk.w.Profile().Mix)
	op := Op{ADT: "Register", Update: kind.Update, Kind: kind.Kind}
	switch kind.Kind {
	case "insert":
		n := wk.w.count.Add(1) - 1
		op.Object, op.Create = growName(n), true
		op.Input = newInput("w", step+1)
	case "update":
		op.Object = growName(int64(wk.pick(int(wk.w.count.Load()))))
		op.Input = newInput("w", step+1)
	default:
		op.Object = growName(int64(wk.pick(int(wk.w.count.Load()))))
		op.Input = newInput("r")
	}
	return op
}

// ---------------------------------------------------------------- //

// scanRange exercises the scan/range shapes: full reads of Sequence
// objects (ordered scans) and GSet element dumps, against positional
// inserts and deletes.
type scanRange struct {
	seqs []ObjectSpec
	sets []ObjectSpec
}

func (w *scanRange) Name() string { return "scan-range" }
func (w *scanRange) Doc() string {
	return "scan/range ops: Sequence scans and positional ins/del, GSet dumps"
}

func (w *scanRange) Profile() Profile {
	return Profile{
		ADTs: []string{"Sequence", "GSet"},
		Dist: KeyZipf, Skew: 1.1,
		Mix: []MixEntry{
			{Kind: "scan", Fraction: 0.50},
			{Kind: "insert", Fraction: 0.25, Update: true},
			{Kind: "delete", Fraction: 0.10, Update: true},
			{Kind: "member", Fraction: 0.10},
			{Kind: "stock", Fraction: 0.05, Update: true},
		},
	}
}

func (w *scanRange) Init(cfg Config) error {
	cfg.fill()
	nSeq := (cfg.Objects + 1) / 2
	nSet := cfg.Objects - nSeq
	if nSet == 0 {
		nSet = 1
	}
	w.seqs = make([]ObjectSpec, nSeq)
	for i := range w.seqs {
		w.seqs[i] = ObjectSpec{Name: fmt.Sprintf("seq-%03d", i), ADT: "Sequence"}
	}
	w.sets = make([]ObjectSpec, nSet)
	for i := range w.sets {
		w.sets[i] = ObjectSpec{Name: fmt.Sprintf("set-%03d", i), ADT: "GSet"}
	}
	return nil
}

func (w *scanRange) Objects() []ObjectSpec {
	return append(append([]ObjectSpec(nil), w.seqs...), w.sets...)
}

func (w *scanRange) NewWorker(id int, rng *rand.Rand) Worker {
	return &scanRangeWorker{
		w: w, rng: rng,
		pickSeq: NewChooser(KeyZipf, 1.1, rng),
		pickSet: NewChooser(KeyZipf, 1.1, rng),
	}
}

type scanRangeWorker struct {
	w                *scanRange
	rng              *rand.Rand
	pickSeq, pickSet Chooser
}

func (wk *scanRangeWorker) NextOp(step int) Op {
	kind := pickKind(wk.rng, wk.w.Profile().Mix)
	op := Op{Update: kind.Update, Kind: kind.Kind}
	seq := func() ObjectSpec { return wk.w.seqs[wk.pickSeq(len(wk.w.seqs))] }
	set := func() ObjectSpec { return wk.w.sets[wk.pickSet(len(wk.w.sets))] }
	switch kind.Kind {
	case "insert":
		o := seq()
		op.Object, op.ADT = o.Name, o.ADT
		op.Input = newInput("ins", wk.rng.Intn(step+1), 'a'+wk.rng.Intn(26))
	case "delete":
		o := seq()
		op.Object, op.ADT = o.Name, o.ADT
		op.Input = newInput("del", wk.rng.Intn(step+1))
	case "member":
		o := set()
		op.Object, op.ADT = o.Name, o.ADT
		op.Input = newInput("has", wk.rng.Intn(64))
	case "stock":
		o := set()
		op.Object, op.ADT = o.Name, o.ADT
		op.Input = newInput("add", wk.rng.Intn(64))
	default: // scan
		if wk.rng.Intn(2) == 0 {
			o := seq()
			op.Object, op.ADT = o.Name, o.ADT
			op.Input = newInput("read")
		} else {
			o := set()
			op.Object, op.ADT = o.Name, o.ADT
			op.Input = newInput("elems")
		}
	}
	return op
}
