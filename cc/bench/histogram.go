package bench

import (
	"math/bits"
	"sync/atomic"
	"time"

	"github.com/paper-repro/ccbm/internal/benchrec"
)

// Percentiles is the rendered summary of a Histogram (µs), the shape
// the BENCH_*.json records carry (internal/benchrec defines it; the
// alias keeps the one definition).
type Percentiles = benchrec.Percentiles

// histSubBits fixes the histogram's relative precision: every bucket
// spans at most a 2^-histSubBits ≈ 0.8% slice of its value, the
// HDR-histogram trade (bounded relative error, constant-time record,
// no per-sample allocation) that replaces the sorted-slice
// percentiles the load tools used to keep privately.
const histSubBits = 7

const (
	histSub     = 1 << histSubBits // linear sub-buckets per segment
	histExact   = 2 * histSub      // values below this index exactly
	histBuckets = (64-histSubBits-1)*histSub + histExact
)

// Histogram is a log-bucketed latency histogram safe for concurrent
// recording: values below 2^8 ns index exactly, larger values index by
// (exponent segment, 8 significant bits), so any recorded duration is
// reconstructed within 0.8%. The zero value is NOT ready; use
// NewHistogram.
type Histogram struct {
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram. Values are recorded in
// nanoseconds (RecordDuration) and summarized in microseconds.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, histBuckets)}
}

// bucketOf maps a non-negative value to its bucket index: values
// below histExact index exactly, larger ones by (exponent segment,
// top histSubBits+1 bits).
func bucketOf(v int64) int {
	if v < histExact {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - histSubBits - 1 // ≥ 1
	return exp*histSub + int(v>>uint(exp))         // v>>exp in [histSub, 2*histSub)
}

// bucketMid reconstructs a bucket's representative value (midpoint).
func bucketMid(i int) int64 {
	if i < histExact {
		return int64(i)
	}
	exp := uint(i/histSub - 1)
	mant := int64(i%histSub) + histSub
	return mant<<exp + (int64(1)<<exp)/2
}

// Record adds one value in nanoseconds (negative values clamp to 0).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration records a latency.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the exact maximum recorded value in nanoseconds.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the exact mean in nanoseconds (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0,1] in nanoseconds,
// within the histogram's relative precision (0 when empty). The
// returned value is the representative of the bucket holding the
// q-ranked sample, never above the exact recorded maximum.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketMid(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// Merge folds other's recorded values into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Percentiles renders the standard summary in microseconds.
func (h *Histogram) Percentiles() Percentiles {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return Percentiles{
		Count:  h.Count(),
		MeanUS: h.Mean() / 1e3,
		P50US:  us(h.Quantile(0.50)),
		P95US:  us(h.Quantile(0.95)),
		P99US:  us(h.Quantile(0.99)),
		P999US: us(h.Quantile(0.999)),
		MaxUS:  us(h.Max()),
	}
}
