package bench

import (
	"context"
	"sync"

	"github.com/paper-repro/ccbm/cc/client"
)

// ClientExecutor drives generated ops through a cc/client.Client,
// mapping workers to sessions one-to-one (worker i = session base+i),
// which gives every worker the paper's per-session guarantees —
// session-dependent scenarios (session-cart) rely on read-your-writes
// holding within a worker. Ops with Create set lazily create their
// object first (idempotent on the server), so growing-keyspace
// scenarios mint objects mid-run.
type ClientExecutor struct {
	cli  *client.Client
	base int

	mu       sync.Mutex
	sessions map[int]*client.Session
	created  map[string]bool
}

// NewClientExecutor wraps a client. base offsets session ids so
// concurrent executors (or a chaos tool's own sessions) don't collide.
func NewClientExecutor(cli *client.Client, base int) *ClientExecutor {
	return &ClientExecutor{
		cli:      cli,
		base:     base,
		sessions: make(map[int]*client.Session),
		created:  make(map[string]bool),
	}
}

// Setup creates the workload's initial object population.
func (e *ClientExecutor) Setup(ctx context.Context, objs []ObjectSpec) error {
	for _, o := range objs {
		if err := e.create(ctx, o.Name, o.ADT); err != nil {
			return err
		}
	}
	return nil
}

func (e *ClientExecutor) create(ctx context.Context, name, adt string) error {
	e.mu.Lock()
	done := e.created[name]
	e.mu.Unlock()
	if done {
		return nil
	}
	if err := e.cli.CreateObject(ctx, name, adt); err != nil {
		return err
	}
	e.mu.Lock()
	e.created[name] = true
	e.mu.Unlock()
	return nil
}

func (e *ClientExecutor) session(worker int) *client.Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[worker]
	if !ok {
		s = e.cli.Session(e.base + worker)
		e.sessions[worker] = s
	}
	return s
}

// Do executes one generated op on the worker's session.
func (e *ClientExecutor) Do(ctx context.Context, worker int, op Op) error {
	if op.Create {
		if err := e.create(ctx, op.Object, op.ADT); err != nil {
			return err
		}
	}
	_, err := e.session(worker).Invoke(ctx, op.Object, op.Input)
	return err
}
