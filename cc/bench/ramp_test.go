package bench

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// degradingExecutor is fast for the first fastSteps ramp steps, then
// takes perOp for every call — a service with a hard capacity edge.
// It keys off Setup calls, which Ramp re-runs once per step.
type degradingExecutor struct {
	setups    atomic.Int64
	fastSteps int64
	perOp     time.Duration
}

func (e *degradingExecutor) Setup(ctx context.Context, objs []ObjectSpec) error {
	e.setups.Add(1)
	return nil
}

func (e *degradingExecutor) Do(ctx context.Context, worker int, op Op) error {
	if e.setups.Load() > e.fastSteps {
		time.Sleep(e.perOp)
	}
	return nil
}

// TestRampFindsKnee: three fast steps, then the executor degrades to
// 20ms/op — a single worker at the fourth step's 400 ops/s achieves
// at most ~50/s, far under the 0.9 floor. The knee must be the third
// step (the last sustained rate).
func TestRampFindsKnee(t *testing.T) {
	exec := &degradingExecutor{fastSteps: 3, perOp: 20 * time.Millisecond}
	res, err := Ramp(context.Background(), stubWorkload{}, exec, RunConfig{
		Workers: 1,
		Arrival: ArrivalFixed,
		Seed:    1,
	}, RampConfig{
		StartRate:    50,
		Factor:       2,
		Steps:        6,
		StepDuration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("ramp ran %d steps %+v, want 4 (three sustained + the break)", len(res.Steps), res.Steps)
	}
	for i := 0; i < 3; i++ {
		if !res.Steps[i].Sustained {
			t.Errorf("step %d (%.0f ops/s) not sustained: %+v", i, res.Steps[i].OfferedRate, res.Steps[i])
		}
	}
	if res.Steps[3].Sustained {
		t.Errorf("step 3 (%.0f ops/s) sustained despite 20ms/op service", res.Steps[3].OfferedRate)
	}
	if res.Knee == nil {
		t.Fatal("no knee reported")
	}
	if res.Knee.Step != 2 || res.Knee.Rate != 200 {
		t.Errorf("knee = %+v, want step 2 at 200 ops/s", res.Knee)
	}
	if res.Knee.Reason != "achieved rate below floor" {
		t.Errorf("knee reason = %q", res.Knee.Reason)
	}
	lr := res.Result()
	if lr.Mode != "ramp" || lr.Knee == nil || len(lr.Steps) != 4 || lr.Intended == nil {
		t.Errorf("Result() = mode %q, knee %v, %d steps — want the knee step rendered", lr.Mode, lr.Knee, len(lr.Steps))
	}
}

// TestRampNothingSustains: when even the first step breaks the
// service there is no knee, and the failure is still documented in
// Steps.
func TestRampNothingSustains(t *testing.T) {
	exec := &degradingExecutor{fastSteps: 0, perOp: 20 * time.Millisecond}
	res, err := Ramp(context.Background(), stubWorkload{}, exec, RunConfig{
		Workers: 1,
		Arrival: ArrivalFixed,
	}, RampConfig{
		StartRate:    400,
		StepDuration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Knee != nil {
		t.Fatalf("knee = %+v, want none when nothing sustains", res.Knee)
	}
	if len(res.Steps) != 1 || res.Steps[0].Sustained {
		t.Fatalf("steps = %+v, want one unsustained step", res.Steps)
	}
	lr := res.Result()
	if lr.Mode != "ramp" || lr.Knee != nil {
		t.Errorf("Result() mode/knee = %q/%v", lr.Mode, lr.Knee)
	}
}

// TestRampAllSustain: a service that never breaks exhausts the ramp;
// the knee is the final step with the exhaustion reason.
func TestRampAllSustain(t *testing.T) {
	exec := &degradingExecutor{fastSteps: 1 << 30}
	res, err := Ramp(context.Background(), stubWorkload{}, exec, RunConfig{
		Workers: 1,
		Arrival: ArrivalFixed,
	}, RampConfig{
		StartRate:    50,
		Factor:       2,
		Steps:        3,
		StepDuration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 || res.Knee == nil || res.Knee.Step != 2 {
		t.Fatalf("steps=%d knee=%+v, want 3 steps with knee at the last", len(res.Steps), res.Knee)
	}
	if res.Knee.Reason != "ramp exhausted without breaking the service" {
		t.Errorf("knee reason = %q", res.Knee.Reason)
	}
}
