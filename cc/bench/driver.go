package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/internal/benchrec"
)

// Arrival names an open-loop arrival process.
type Arrival string

const (
	// ArrivalPoisson draws exponential inter-arrival gaps (memoryless
	// open-loop traffic, the usual model of independent clients).
	ArrivalPoisson Arrival = "poisson"
	// ArrivalFixed spaces arrivals deterministically at 1/rate.
	ArrivalFixed Arrival = "fixed"
)

// Executor runs generated operations against a system under test.
// Setup is called once per Run with the workload's initial population
// (creates must be idempotent: ramps re-run Setup every step). Do
// executes one op for one worker; workers call Do concurrently, each
// with its own worker id, and expect read-your-writes per worker (the
// executor should map workers to sessions one-to-one).
type Executor interface {
	Setup(ctx context.Context, objs []ObjectSpec) error
	Do(ctx context.Context, worker int, op Op) error
}

// RunConfig parameterizes one measured load run.
type RunConfig struct {
	// Workers is the number of concurrent generator routines (one
	// session each). <= 0 means 1.
	Workers int
	// Rate is the total offered rate in ops/s across all workers. 0
	// runs the classic closed loop: each worker issues its next op as
	// soon as the previous returns, and the intended clock degenerates
	// to the stopwatch.
	Rate float64
	// Arrival picks the open-loop arrival process (default poisson).
	Arrival Arrival
	// Duration bounds the run (default 1s). Arrivals stop at the
	// deadline; ops already due still execute, so a backlogged run ends
	// shortly after.
	Duration time.Duration
	// Seed drives the workload and the arrival clocks.
	Seed int64
}

func (c *RunConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
}

// Report is the measured outcome of one Run.
type Report struct {
	Scenario string
	Mode     string // "open" or "closed"
	Arrival  Arrival
	Workers  int
	Offered  float64 // configured rate (0 for closed loop)
	Achieved float64 // measured ops/s
	Elapsed  time.Duration
	Ops      int64
	Errors   int64
	// Intended measures from each op's intended arrival time — the
	// coordinated-omission-safe clock that charges queueing delay to
	// the service. Service measures the naive stopwatch (invocation to
	// return). In a closed loop the two coincide.
	Intended *Histogram
	Service  *Histogram
	// Mix is the realized op-kind mix, as fractions of Ops.
	Mix map[string]float64
}

// Result renders the report as the BENCH_*.json record shape.
func (r *Report) Result() LoadResult {
	res := LoadResult{
		Scenario:     r.Scenario,
		Mode:         r.Mode,
		Arrival:      string(r.Arrival),
		Workers:      r.Workers,
		OfferedRate:  r.Offered,
		AchievedRate: r.Achieved,
		Ops:          r.Ops,
		Errors:       r.Errors,
		Mix:          r.Mix,
	}
	if r.Intended != nil && r.Intended.Count() > 0 {
		p := r.Intended.Percentiles()
		res.Intended = &p
	}
	if r.Service != nil && r.Service.Count() > 0 {
		p := r.Service.Percentiles()
		res.Service = &p
	}
	if r.Mode == "closed" {
		res.Arrival = ""
	}
	return res
}

// Run drives one measured load run of an Init'ed workload against an
// executor. With cfg.Rate > 0 it is open loop: each worker owns a
// slice of the target rate and an arrival clock; an op's latency is
// measured from its *intended* arrival, so when the service stalls,
// the ops that should have started during the stall are charged their
// queueing delay instead of being silently omitted. With cfg.Rate ==
// 0 it is the classic closed loop. Errors from Do are counted, not
// fatal; ctx cancellation ends the run early.
func Run(ctx context.Context, w Workload, exec Executor, cfg RunConfig) (*Report, error) {
	cfg.fill()
	if err := exec.Setup(ctx, w.Objects()); err != nil {
		return nil, fmt.Errorf("bench: setup: %w", err)
	}

	rep := &Report{
		Scenario: w.Name(),
		Mode:     "open",
		Arrival:  cfg.Arrival,
		Workers:  cfg.Workers,
		Offered:  cfg.Rate,
		Intended: NewHistogram(),
		Service:  NewHistogram(),
	}
	if cfg.Rate <= 0 {
		rep.Mode, rep.Arrival = "closed", ""
	}

	type workerTally struct {
		ops, errs int64
		mix       map[string]int64
	}
	tallies := make([]workerTally, cfg.Workers)
	perWorker := cfg.Rate / float64(cfg.Workers)

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Two independent streams so arrival-clock draws never
			// perturb the workload's op draws.
			opRNG := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			arrRNG := rand.New(rand.NewSource(cfg.Seed*7919 + int64(id) + 1))
			worker := w.NewWorker(id, opRNG)
			t := &tallies[id]
			t.mix = make(map[string]int64)

			// Stagger workers across one period so the aggregate
			// arrival stream is smooth from the start.
			intended := start
			if cfg.Rate > 0 {
				intended = start.Add(time.Duration(float64(id) / cfg.Rate * float64(time.Second)))
			}
			for step := 0; ; step++ {
				if ctx.Err() != nil {
					return
				}
				if cfg.Rate > 0 {
					if intended.After(deadline) {
						return
					}
					// Open loop: wait for the intended arrival. Never
					// skip a late arrival — executing it immediately
					// and charging the delay is the whole point.
					if d := time.Until(intended); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				} else if !time.Now().Before(deadline) {
					return
				}
				op := worker.NextOp(step)
				t0 := time.Now()
				err := exec.Do(ctx, id, op)
				done := time.Now()
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					t.errs++
				}
				t.ops++
				t.mix[op.Kind]++
				rep.Service.RecordDuration(done.Sub(t0))
				if cfg.Rate > 0 {
					rep.Intended.RecordDuration(done.Sub(intended))
					intended = intended.Add(arrivalGap(cfg.Arrival, perWorker, arrRNG))
				} else {
					rep.Intended.RecordDuration(done.Sub(t0))
				}
			}
		}(i)
	}
	wg.Wait()

	rep.Elapsed = time.Since(start)
	mix := make(map[string]int64)
	for i := range tallies {
		rep.Ops += tallies[i].ops
		rep.Errors += tallies[i].errs
		for k, n := range tallies[i].mix {
			mix[k] += n
		}
	}
	if rep.Elapsed > 0 {
		rep.Achieved = float64(rep.Ops) / rep.Elapsed.Seconds()
	}
	if rep.Ops > 0 {
		rep.Mix = make(map[string]float64, len(mix))
		for k, n := range mix {
			rep.Mix[k] = float64(n) / float64(rep.Ops)
		}
	}
	return rep, ctx.Err()
}

// arrivalGap draws one inter-arrival gap for a single worker's clock.
func arrivalGap(a Arrival, rate float64, rng *rand.Rand) time.Duration {
	period := float64(time.Second) / rate
	if a == ArrivalFixed {
		return time.Duration(period)
	}
	// Exponential gap, clamped so one extreme draw cannot park a
	// worker past any plausible run.
	g := rng.ExpFloat64() * period
	if max := 50 * period; g > max {
		g = max
	}
	return time.Duration(math.Max(g, 0))
}

// NewScenario looks up, configures and Inits a named scenario in one
// call, sizing the workload's Config from the run's.
func NewScenario(name string, objects int, cfg RunConfig) (Workload, error) {
	cfg.fill()
	w, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := w.Init(Config{Objects: objects, Workers: cfg.Workers, Seed: cfg.Seed}); err != nil {
		return nil, fmt.Errorf("bench: init %s: %w", name, err)
	}
	return w, nil
}

// AppendRecord appends a labelled, host-stamped entry to a BENCH_*.json
// trajectory file (the internal/benchrec format).
func AppendRecord(path, label string, results any) (int, error) {
	return benchrec.Append(path, benchrec.NewHost(label, results))
}

// LoadResult is the structured record of a load run (the shape stored
// in BENCH_runtime.json); Report.Result and RampResult.Result produce
// it.
type LoadResult = benchrec.LoadResult
