package bench

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/paper-repro/ccbm/cc"
)

// TestScenarioMixMatchesProfile holds every registered scenario to
// its declared Profile: over many draws the realized op-kind
// fractions must match the declared percentages within binomial
// tolerance, every op's Update flag must agree with both the declared
// mix entry and the ADT's own classification of the input, and every
// op must target a declared ADT. (Same statistical style as
// internal/workload's generator tests: 4.5 sigma keeps the false
// failure rate per check around 1e-5 while catching a mix that is
// off by a point.)
func TestScenarioMixMatchesProfile(t *testing.T) {
	const draws = 40000
	for _, info := range Scenarios() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			w, err := Lookup(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Init(Config{Objects: 8, Workers: 4, Seed: 11}); err != nil {
				t.Fatal(err)
			}
			if len(w.Objects()) == 0 {
				t.Fatal("Init produced no initial objects")
			}

			declared := make(map[string]MixEntry)
			var total float64
			for _, m := range info.Profile.Mix {
				declared[m.Kind] = m
				total += m.Fraction
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("declared mix fractions sum to %v, want 1", total)
			}
			adts := make(map[string]cc.ADT)
			for _, name := range info.Profile.ADTs {
				a, err := cc.LookupADT(name)
				if err != nil {
					t.Fatalf("profile declares unknown ADT %q: %v", name, err)
				}
				adts[name] = a
			}

			wk := w.NewWorker(0, rand.New(rand.NewSource(42)))
			counts := make(map[string]int)
			for step := 0; step < draws; step++ {
				op := wk.NextOp(step)
				m, ok := declared[op.Kind]
				if !ok {
					t.Fatalf("step %d: generated undeclared kind %q", step, op.Kind)
				}
				counts[op.Kind]++
				if op.Update != m.Update {
					t.Fatalf("step %d: kind %q Update=%v, declared %v", step, op.Kind, op.Update, m.Update)
				}
				a, ok := adts[op.ADT]
				if !ok {
					t.Fatalf("step %d: op targets undeclared ADT %q", step, op.ADT)
				}
				if a.IsUpdate(op.Input) != op.Update {
					t.Fatalf("step %d: kind %q input %v: ADT says update=%v, op says %v",
						step, op.Kind, op.Input, a.IsUpdate(op.Input), op.Update)
				}
				if op.Object == "" {
					t.Fatalf("step %d: empty object name", step)
				}
			}

			for kind, m := range declared {
				ratio := float64(counts[kind]) / draws
				tol := 4.5 * math.Sqrt(m.Fraction*(1-m.Fraction)/draws)
				if math.Abs(ratio-m.Fraction) > tol {
					t.Errorf("kind %q: realized %.4f, declared %.4f (tol %.4f over %d draws)",
						kind, ratio, m.Fraction, tol, draws)
				}
			}
		})
	}
}

// TestScenarioWorkersIndependent: distinct workers with distinct rngs
// generate without data races and with per-worker state (session-cart
// workers own different carts).
func TestScenarioWorkersIndependent(t *testing.T) {
	w, err := Lookup("session-cart")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(Config{Objects: 4, Workers: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	carts := make(map[string]bool)
	for id := 0; id < 3; id++ {
		wk := w.NewWorker(id, rand.New(rand.NewSource(int64(id))))
		for step := 0; step < 200; step++ {
			op := wk.NextOp(step)
			if op.ADT == "RWSet" {
				carts[op.Object] = true
			}
		}
	}
	if len(carts) != 3 {
		t.Fatalf("3 workers touched %d distinct carts %v, want their own 3", len(carts), carts)
	}
}

// TestInsertGrowMintsObjects: insert ops carry Create and extend the
// keyspace past the initial population.
func TestInsertGrowMintsObjects(t *testing.T) {
	w, err := Lookup("insert-grow")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(Config{Objects: 4, Workers: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	initial := make(map[string]bool)
	for _, o := range w.Objects() {
		initial[o.Name] = true
	}
	wk := w.NewWorker(0, rand.New(rand.NewSource(9)))
	created := 0
	for step := 0; step < 2000; step++ {
		op := wk.NextOp(step)
		if op.Create {
			created++
			if initial[op.Object] {
				t.Fatalf("step %d: Create for pre-existing object %s", step, op.Object)
			}
		}
	}
	if created == 0 {
		t.Fatal("2000 ops minted no new objects at 5% insert")
	}
}

// Registry behavior: unknown lookups fail with the catalog, names are
// sorted, duplicates are rejected, and Lookup hands out fresh
// instances (two runs must not share Init state).
func TestScenarioRegistry(t *testing.T) {
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup of unknown scenario succeeded")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"read-heavy", "write-heavy", "session-cart", "insert-grow", "scan-range"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scenario %q not registered (have %v)", want, names)
		}
	}
	if err := Register(func() Workload { return &readHeavy{} }); err == nil {
		t.Error("duplicate Register succeeded")
	}
	a, _ := Lookup("read-heavy")
	b, _ := Lookup("read-heavy")
	if a == b {
		t.Error("Lookup returned a shared instance")
	}
	for _, info := range Scenarios() {
		if info.Doc == "" {
			t.Errorf("scenario %q has no doc line", info.Name)
		}
	}
}

// TestNewChooserBounds: every distribution stays in [0, n), and
// KeyLatest actually skews to the newest (highest) indices.
func TestNewChooserBounds(t *testing.T) {
	for _, dist := range []KeyDist{KeyUniform, KeyZipf, KeyLatest} {
		rng := rand.New(rand.NewSource(5))
		pick := NewChooser(dist, 1.1, rng)
		for i := 0; i < 5000; i++ {
			n := 1 + i%37
			if got := pick(n); got < 0 || got >= n {
				t.Fatalf("%s: pick(%d) = %d out of range", dist, n, got)
			}
		}
	}
	rng := rand.New(rand.NewSource(6))
	pick := NewChooser(KeyLatest, 1.1, rng)
	top := 0
	const n, draws = 100, 10000
	for i := 0; i < draws; i++ {
		if pick(n) >= n-10 {
			top++
		}
	}
	// Uniform would put 0.10 of draws on the newest decile; the zipf
	// anchor concentrates ~4x that there.
	if frac := float64(top) / draws; frac < 0.25 {
		t.Errorf("latest: only %.2f of draws hit the newest 10%% of keys", frac)
	}
}
