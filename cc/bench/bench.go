// Package bench is the public workload and load-testing subsystem of
// the cc serving stack: named YCSB-grade scenarios behind a pluggable
// Workload interface, an open-loop arrival-rate driver whose latency
// clock starts at each operation's *intended* start (so queueing
// delay is measured instead of silently omitted — the coordinated
// omission pathology of closed-loop harnesses), an HDR-style
// log-bucketed latency histogram, and a ramp controller that steps
// the offered rate until the service stops keeping up and reports
// the knee of the throughput/latency curve.
//
// # Workloads
//
// A Workload declares its shape — ADT mix, key distribution
// (zipf/uniform/latest), op percentages — and produces per-worker op
// streams. Scenarios register by name, exactly like checker.Register
// registers criteria:
//
//	w, err := bench.Lookup("read-heavy")
//	err = w.Init(bench.Config{Objects: 16, Workers: 8, Seed: 1})
//	worker := w.NewWorker(0, rng)
//	op := worker.NextOp(step) // {Object, Input, Update, Kind}
//
// Five scenarios are built in: read-heavy (cache reads over
// Register/GSet, zipf), write-heavy (a counter fleet, uniform),
// session-cart (per-session carts whose reads depend on the
// session's own writes, plus a shared catalog), insert-grow (a
// growing keyspace with inserts and latest-skewed reads), and
// scan-range (scan/range ops on Sequence and GSet).
//
// # Open-loop driving
//
// Run schedules arrivals on a target-rate clock (Poisson or fixed
// interval, split across workers) and executes each op through an
// Executor (NewClientExecutor adapts a cc/client.Client). Latency is
// recorded twice: from the intended arrival time (the number that
// includes queueing delay and survives stalls) and from the actual
// invocation (naive stopwatch service time). Rate 0 degrades to the
// classic closed loop, where the two clocks coincide.
//
// # Finding the knee
//
// Ramp repeats Run at stepped offered rates until the achieved rate
// falls below FloorRatio of offered or the intended-clock p99 blows
// past MaxP99, then reports the last sustained step as the knee.
// Reports append to the repo's BENCH_*.json trajectory via
// AppendRecord.
package bench
