package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/internal/workload"
)

// ObjectSpec names one object a workload needs, with its registry ADT.
type ObjectSpec struct {
	Name string
	ADT  string
}

// Op is one generated operation. Kind ties the op back to the
// workload's declared mix (Profile.Mix), so a harness can verify the
// realized percentages against the declared ones. Create asks the
// executor to (idempotently) create the object first — the growing-
// keyspace scenarios mint objects mid-run.
type Op struct {
	Object string
	ADT    string // registry ADT name (used when Create is set)
	Create bool
	Input  cc.Input
	Update bool
	Kind   string
}

// Config parameterizes a workload instance for one run.
type Config struct {
	// Objects scales the base object population (each scenario
	// documents how it interprets it); <= 0 uses the scenario default.
	Objects int
	// Workers is how many concurrent workers (one session each) the
	// run will drive; per-worker scenarios (session-cart) size their
	// population by it. <= 0 means 1.
	Workers int
	// Seed drives every random choice the workload makes.
	Seed int64
}

func (c *Config) fill() {
	if c.Objects <= 0 {
		c.Objects = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// MixEntry declares one op kind and its exact fraction of the
// generated stream (blurr-style percentages, as probabilities).
type MixEntry struct {
	Kind     string
	Fraction float64
	Update   bool // whether ops of this kind mutate state
}

// Profile is a workload's declared shape: the ADTs it populates, the
// key (object-popularity) distribution, and the op mix. The scenario
// statistical tests hold every registered workload to its Profile.
type Profile struct {
	ADTs []string
	Dist KeyDist
	Skew float64 // Zipf exponent, when Dist uses one
	Mix  []MixEntry
}

// WriteFraction sums the declared update kinds.
func (p Profile) WriteFraction() float64 {
	var w float64
	for _, m := range p.Mix {
		if m.Update {
			w += m.Fraction
		}
	}
	return w
}

// Workload is one experiment scenario (the yabf shape): Init is
// called once per run with the run's Config, Objects lists the
// initial population to create, and NewWorker returns the per-worker
// state (one per client routine; the returned Worker is NOT shared).
type Workload interface {
	// Name is the registry key, e.g. "read-heavy".
	Name() string
	// Doc is a one-line description, shown by -list-scenarios.
	Doc() string
	// Profile declares the scenario's ADT mix, key distribution and op
	// percentages.
	Profile() Profile
	// Init prepares shared state. Called once, before any worker.
	Init(cfg Config) error
	// Objects lists the initial object population, valid after Init.
	Objects() []ObjectSpec
	// NewWorker creates the state for one client routine. Workers of
	// one workload may share structures internally, but NextOp on
	// distinct workers must be safe to call concurrently.
	NewWorker(id int, rng *rand.Rand) Worker
}

// Worker generates one client routine's operation stream. step is a
// monotone per-worker counter (keeps written values distinct, which
// keeps the exact checkers sharp).
type Worker interface {
	NextOp(step int) Op
}

// ScenarioInfo describes one registered scenario.
type ScenarioInfo struct {
	Name    string
	Doc     string
	Profile Profile
}

var scenarios = struct {
	sync.RWMutex
	byName map[string]func() Workload
}{byName: make(map[string]func() Workload)}

// Register adds a workload factory to the scenario registry under the
// name (and doc) of the instance it produces. It fails on an empty
// name or a duplicate; the built-ins claim read-heavy, write-heavy,
// session-cart, insert-grow and scan-range.
func Register(make func() Workload) error {
	w := make()
	name := w.Name()
	if name == "" {
		return fmt.Errorf("bench: Register: empty workload name")
	}
	scenarios.Lock()
	defer scenarios.Unlock()
	if _, dup := scenarios.byName[name]; dup {
		return fmt.Errorf("bench: Register %q: already registered", name)
	}
	scenarios.byName[name] = make
	return nil
}

// MustRegister is Register for package init blocks; it panics on
// error.
func MustRegister(make func() Workload) {
	if err := Register(make); err != nil {
		panic(err)
	}
}

// Lookup returns a fresh, un-Init'ed instance of a named scenario.
func Lookup(name string) (Workload, error) {
	scenarios.RLock()
	make, ok := scenarios.byName[name]
	scenarios.RUnlock()
	if !ok {
		return nil, fmt.Errorf("bench: unknown scenario %q (registered: %v)", name, Names())
	}
	return make(), nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	scenarios.RLock()
	defer scenarios.RUnlock()
	names := make([]string, 0, len(scenarios.byName))
	for name := range scenarios.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Scenarios describes every registered scenario, sorted by name.
func Scenarios() []ScenarioInfo {
	infos := make([]ScenarioInfo, 0)
	for _, name := range Names() {
		w, err := Lookup(name)
		if err != nil {
			continue
		}
		infos = append(infos, ScenarioInfo{Name: w.Name(), Doc: w.Doc(), Profile: w.Profile()})
	}
	return infos
}

// newInput is cc.NewInput, shortened for the scenario op tables.
func newInput(method string, args ...int) cc.Input { return cc.NewInput(method, args...) }

// OpGen produces a random invocation for one ADT; step is a monotone
// counter generators use to keep written values distinct. It is the
// engine's own generator type (internal/workload), re-exported so the
// load tools share one implementation.
type OpGen = workload.OpGen

// GeneratorFor returns the standard per-ADT operation generator for a
// registry ADT name ("Counter", "Register", "W2^4", ...). writeRatio
// is the probability of an update, realized exactly with one uniform
// draw per op; Queue is the documented exception (push and pop are
// both updates — the ratio biases producing vs consuming).
func GeneratorFor(adtName string, writeRatio float64) (OpGen, error) {
	t, err := cc.LookupADT(adtName)
	if err != nil {
		return nil, err
	}
	return workload.GeneratorFor(t, writeRatio)
}
