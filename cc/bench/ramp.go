package bench

import (
	"context"
	"time"

	"github.com/paper-repro/ccbm/internal/benchrec"
)

// RampStep is one measured step of a ramp (the BENCH_*.json shape).
type RampStep = benchrec.RampStep

// Knee is the ramp controller's verdict: the highest offered rate the
// service sustained.
type Knee = benchrec.Knee

// RampConfig parameterizes a knee-finding ramp.
type RampConfig struct {
	// StartRate is the first step's offered rate in ops/s (default
	// 100). Each subsequent step multiplies by Factor (default 1.5).
	StartRate float64
	Factor    float64
	// Steps bounds the ramp (default 8).
	Steps int
	// StepDuration is each step's measurement window (default 1s).
	StepDuration time.Duration
	// FloorRatio declares a step unsustained when achieved/offered
	// falls below it (default 0.9).
	FloorRatio float64
	// MaxP99 declares a step unsustained when the intended-clock p99
	// exceeds it. 0 disables the latency criterion.
	MaxP99 time.Duration
}

func (c *RampConfig) fill() {
	if c.StartRate <= 0 {
		c.StartRate = 100
	}
	if c.Factor <= 1 {
		c.Factor = 1.5
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	if c.StepDuration <= 0 {
		c.StepDuration = time.Second
	}
	if c.FloorRatio <= 0 || c.FloorRatio > 1 {
		c.FloorRatio = 0.9
	}
}

// RampResult is the outcome of a ramp: every measured step, the knee
// (nil when even the first step was unsustained), and the per-step
// reports for callers that want the full histograms.
type RampResult struct {
	Scenario string
	Steps    []RampStep
	Knee     *Knee
	Reports  []*Report
}

// Result renders the ramp as the BENCH_*.json record shape. The
// percentile records are the knee step's (the last sustained rate) —
// or the first step's when nothing sustained, so the failure is
// still documented.
func (r *RampResult) Result() LoadResult {
	pick := 0
	if r.Knee != nil {
		pick = r.Knee.Step
	}
	var res LoadResult
	if pick < len(r.Reports) {
		res = r.Reports[pick].Result()
	}
	res.Scenario = r.Scenario
	res.Mode = "ramp"
	res.Steps = r.Steps
	res.Knee = r.Knee
	return res
}

// Ramp steps the offered rate geometrically until the service stops
// keeping up — achieved rate below FloorRatio of offered, or intended
// p99 past MaxP99 — and reports the last sustained step as the knee.
// The workload is Init'ed once and re-drives the same population at
// every step (Setup re-runs, idempotently). cfg's Rate and Duration
// are overridden per step.
func Ramp(ctx context.Context, w Workload, exec Executor, cfg RunConfig, rc RampConfig) (*RampResult, error) {
	rc.fill()
	res := &RampResult{Scenario: w.Name()}
	rate := rc.StartRate
	baseSeed := cfg.Seed
	for step := 0; step < rc.Steps; step++ {
		cfg.Rate = rate
		cfg.Duration = rc.StepDuration
		cfg.Seed = baseSeed + int64(step)*1000 // fresh op streams each step
		rep, err := Run(ctx, w, exec, cfg)
		if err != nil {
			return res, err
		}
		p99 := time.Duration(rep.Intended.Quantile(0.99))
		sustained := rep.Achieved >= rc.FloorRatio*rep.Offered
		reason := ""
		if !sustained {
			reason = "achieved rate below floor"
		} else if rc.MaxP99 > 0 && p99 > rc.MaxP99 {
			sustained = false
			reason = "intended p99 over limit"
		}
		res.Reports = append(res.Reports, rep)
		res.Steps = append(res.Steps, RampStep{
			OfferedRate:  rep.Offered,
			AchievedRate: rep.Achieved,
			P99US:        float64(p99) / 1e3,
			Errors:       rep.Errors,
			Sustained:    sustained,
		})
		if !sustained {
			if res.Knee != nil {
				res.Knee.Reason = reason
			}
			return res, nil
		}
		res.Knee = &Knee{
			Rate:     rep.Offered,
			Achieved: rep.Achieved,
			P99US:    float64(p99) / 1e3,
			Step:     step,
			Reason:   "ramp exhausted without breaking the service",
		}
		rate *= rc.Factor
	}
	return res, nil
}
