// Package sla makes the paper's consistency hierarchy operational the
// way Pileus does (Terry et al., SOSP'13): a client declares a ranked
// list of {consistency, staleness bound, latency target, utility}
// alternatives, and an adaptive router picks, per read, the sub-SLA ×
// replica pair with the highest expected utility given the observed
// per-replica conditions — EWMA latency and staleness derived from the
// high-water timestamps replicas piggyback on responses.
//
// The consistency levels are the serving-side rendering of the zone
// lattice (Fig. 2 of the paper): ReadMyWrites keeps the session's
// sequential-process view (the session reads its own completed
// updates — the cluster's affinity read), Bounded tolerates a bounded
// replication lag at any replica, Eventual reads any replica's local
// state unconditionally. Weaker levels are strictly cheaper to serve
// (any replica qualifies), which is exactly the trade the utilities
// price.
//
// The package is transport-agnostic: cc/client owns the wire plumbing
// and feeds a Tracker from response piggybacks; everything here is
// pure bookkeeping and policy, usable against any source of replica
// conditions.
package sla

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Consistency is a declared read guarantee, ordered ReadMyWrites >
// Bounded > Eventual (each level implies the ones below it).
type Consistency string

const (
	// ReadMyWrites guarantees the read observes every update the
	// session has completed: it routes to the session's affinity
	// replica (or an explicitly frontier-synced one). The strongest
	// level an SLA can ask for — the paper's session/causal view.
	ReadMyWrites Consistency = "read-my-writes"
	// Bounded guarantees the serving replica's high-water marks are
	// within the sub-SLA's MaxStaleness of the freshest known state:
	// bounded-staleness(d). Any sufficiently caught-up replica
	// qualifies.
	Bounded Consistency = "bounded"
	// Eventual takes any replica's local state as-is — the weakest,
	// cheapest read.
	Eventual Consistency = "eventual"
)

// Valid reports whether the level is one the package defines.
func (c Consistency) Valid() bool {
	return c == ReadMyWrites || c == Bounded || c == Eventual
}

// SubSLA is one ranked alternative of an SLA.
type SubSLA struct {
	// Consistency is the promised read guarantee.
	Consistency Consistency
	// MaxStaleness is the d of bounded-staleness(d); Bounded only.
	MaxStaleness time.Duration
	// TargetLatency is the read-latency goal; 0 means no latency
	// target (always met).
	TargetLatency time.Duration
	// Utility is the value of a read delivered at this level within
	// the target latency. Must be positive; ranking by declaration
	// order breaks expected-utility ties, so utilities need not be
	// distinct.
	Utility float64
}

// String renders the sub-SLA in the Parse grammar.
func (s SubSLA) String() string {
	var b strings.Builder
	switch s.Consistency {
	case ReadMyWrites:
		b.WriteString("rmw")
	case Bounded:
		fmt.Fprintf(&b, "bounded:%v", s.MaxStaleness)
	default:
		b.WriteString(string(s.Consistency))
	}
	if s.TargetLatency > 0 {
		fmt.Fprintf(&b, "@%v", s.TargetLatency)
	}
	fmt.Fprintf(&b, "=%v", s.Utility)
	return b.String()
}

// SLA is an ordered list of alternatives, strongest first. Order is
// the rank: when two choices tie on expected utility, the earlier
// sub-SLA wins.
type SLA []SubSLA

// Validate checks the SLA is well-formed: non-empty, known
// consistency levels, a positive staleness bound where Bounded asks
// for one, positive utilities.
func (s SLA) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("sla: empty SLA")
	}
	for i, sub := range s {
		if !sub.Consistency.Valid() {
			return fmt.Errorf("sla: sub-SLA %d: unknown consistency %q", i, sub.Consistency)
		}
		if sub.Consistency == Bounded && sub.MaxStaleness <= 0 {
			return fmt.Errorf("sla: sub-SLA %d: bounded needs a positive staleness bound", i)
		}
		if sub.Utility <= 0 {
			return fmt.Errorf("sla: sub-SLA %d: utility %v must be positive", i, sub.Utility)
		}
		if sub.TargetLatency < 0 || sub.MaxStaleness < 0 {
			return fmt.Errorf("sla: sub-SLA %d: negative duration", i)
		}
	}
	return nil
}

// String renders the SLA in the Parse grammar.
func (s SLA) String() string {
	parts := make([]string, len(s))
	for i, sub := range s {
		parts[i] = sub.String()
	}
	return strings.Join(parts, ",")
}

// Parse reads an SLA from its flag spelling: comma-separated
// sub-SLAs, each
//
//	<consistency>[:<staleness>][@<latency>]=<utility>
//
// where consistency is rmw (or read-my-writes), bounded (staleness
// bound required), or eventual; durations use Go syntax. Example —
// the canonical Pileus-style declaration:
//
//	rmw@5ms=1.0,bounded:100ms@2ms=0.5,eventual=0.1
func Parse(spec string) (SLA, error) {
	var s SLA
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, util, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("sla: %q: missing =utility", part)
		}
		u, err := strconv.ParseFloat(util, 64)
		if err != nil {
			return nil, fmt.Errorf("sla: %q: bad utility %q", part, util)
		}
		var sub SubSLA
		sub.Utility = u
		if levelPart, lat, ok := strings.Cut(head, "@"); ok {
			head = levelPart
			if sub.TargetLatency, err = time.ParseDuration(lat); err != nil {
				return nil, fmt.Errorf("sla: %q: bad latency %q", part, lat)
			}
		}
		cons, stale, hasStale := strings.Cut(head, ":")
		switch cons {
		case "rmw", "read-my-writes":
			sub.Consistency = ReadMyWrites
		case "bounded":
			sub.Consistency = Bounded
		case "eventual":
			sub.Consistency = Eventual
		default:
			return nil, fmt.Errorf("sla: %q: unknown consistency %q", part, cons)
		}
		if hasStale {
			if sub.MaxStaleness, err = time.ParseDuration(stale); err != nil {
				return nil, fmt.Errorf("sla: %q: bad staleness bound %q", part, stale)
			}
		}
		s = append(s, sub)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Met reports whether the delivered conditions satisfy sub-SLA i's
// consistency promise (the latency axis is judged separately): a read
// that delivered read-my-writes satisfies every level, a read within
// the staleness bound satisfies Bounded, anything satisfies Eventual.
func (s SLA) Met(i int, rmw bool, staleness time.Duration) bool {
	if i < 0 || i >= len(s) {
		return true // nothing was promised
	}
	switch s[i].Consistency {
	case ReadMyWrites:
		return rmw
	case Bounded:
		return rmw || staleness <= s[i].MaxStaleness
	}
	return true
}

// Achieved returns the rank and utility of the strongest (earliest)
// sub-SLA the read's delivered conditions satisfy on BOTH axes —
// consistency and latency. (-1, 0) when no alternative was met; a
// trailing Eventual with no latency target makes that impossible.
func (s SLA) Achieved(rmw bool, staleness, latency time.Duration) (int, float64) {
	for i, sub := range s {
		if sub.TargetLatency > 0 && latency > sub.TargetLatency {
			continue
		}
		if s.Met(i, rmw, staleness) {
			return i, sub.Utility
		}
	}
	return -1, 0
}
