package sla

import (
	"sync"
	"time"
)

// FailureCooldown is how long a replica stays disfavored after a
// failed operation: the router treats it as unavailable until the
// cooldown lapses or a success clears it, so reads stop piling onto a
// crashed replica while the estimate is cold.
const FailureCooldown = time.Second

// latencyHalfLife is the decay schedule for latency estimates that
// stop receiving samples: after latencyHalfLife without an
// observation, the reported estimate starts halving per further
// half-life. Without decay, one latency spike at the best replica
// would push the router away permanently — abandoned replicas get no
// new samples, so a stale pessimistic estimate could never recover.
// Decay is the probe: the estimate shrinks until the replica wins a
// read again and gets resampled.
const latencyHalfLife = 500 * time.Millisecond

// Condition is the tracker's current view of one replica — the inputs
// a Router prices.
type Condition struct {
	Replica int
	// Latency is the EWMA round-trip latency of operations served by
	// the replica; LatencyKnown is false until one is observed (an
	// unknown replica is priced optimistically, which is what makes
	// the router explore it).
	Latency      time.Duration
	LatencyKnown bool
	// Staleness is the EWMA staleness: how far the replica's
	// high-water vector trailed the freshest state known to this
	// client, worst across shards. StalenessKnown is false until a
	// high-water observation arrives.
	Staleness      time.Duration
	StalenessKnown bool
	// Failed marks a replica inside its failure cooldown.
	Failed bool
}

// Tracker is the client-side condition monitor: per-replica EWMA
// latency and staleness, fed by response observations (cc/client
// wires it to the high-water piggybacks) or bulk staleness snapshots
// (GET /v1/staleness). Safe for concurrent use.
type Tracker struct {
	alpha float64

	mu       sync.Mutex
	lat      map[int]time.Duration          // replica → EWMA latency
	latAt    map[int]time.Time              // replica → last latency sample (decay clock)
	stal     map[shardReplica]time.Duration // (shard, replica) → EWMA staleness
	known    map[int][]int64                // shard → freshest high-water vector seen anywhere
	missAt   map[shardReplica][]int64       // per origin: unix ns the current miss was first seen (0 = caught up)
	failedAt map[int]time.Time              // replica → last failure
}

type shardReplica struct{ shard, replica int }

// NewTracker builds a tracker. alpha is the EWMA weight of a new
// sample in (0, 1]; 0 defaults to 0.3 — fresh enough to follow a
// partition within a handful of reads, smooth enough to ignore one
// slow outlier.
func NewTracker(alpha float64) *Tracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Tracker{
		alpha:    alpha,
		lat:      make(map[int]time.Duration),
		latAt:    make(map[int]time.Time),
		stal:     make(map[shardReplica]time.Duration),
		known:    make(map[int][]int64),
		missAt:   make(map[shardReplica][]int64),
		failedAt: make(map[int]time.Time),
	}
}

func ewma(old, sample time.Duration, alpha float64, known bool) time.Duration {
	if !known {
		return sample
	}
	return time.Duration(alpha*float64(sample) + (1-alpha)*float64(old))
}

// ObserveLatency feeds one served operation's round-trip latency and
// clears the replica's failure cooldown (it answered).
func (t *Tracker) ObserveLatency(replica int, d time.Duration) {
	if replica < 0 {
		return
	}
	t.mu.Lock()
	old, ok := t.lat[replica]
	t.lat[replica] = ewma(old, d, t.alpha, ok)
	t.latAt[replica] = time.Now()
	delete(t.failedAt, replica)
	t.mu.Unlock()
}

// ObserveFailure marks a failed operation at the replica, starting
// its cooldown.
func (t *Tracker) ObserveFailure(replica int) {
	if replica < 0 {
		return
	}
	t.mu.Lock()
	t.failedAt[replica] = time.Now()
	t.mu.Unlock()
}

// ObserveHighWater feeds one replica's piggybacked high-water vector:
// it advances the freshest-known vector for the shard and returns the
// replica's instantaneous staleness — how long the replica has been
// known to be missing deliveries, worst across origins — which also
// updates the replica's staleness EWMA. The return value is what
// delivered-consistency verdicts compare against the promised bound.
//
// Staleness is deliberately NOT the raw high-water timestamp deficit
// (known[o] − hw[o]). After an idle stretch, the first new write
// would make every replica that has not delivered it yet look stale
// by the entire idle gap — a phantom of minutes for a delivery lag of
// microseconds. Instead the tracker clocks each miss from the moment
// it was first observed: a replica's staleness grows with wall time
// only while it stays behind, which is exactly the partition signal,
// and collapses to zero the moment it catches up.
func (t *Tracker) ObserveHighWater(shard, replica int, hw []int64) time.Duration {
	if replica < 0 || len(hw) == 0 {
		return 0
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	known := t.known[shard]
	if len(known) < len(hw) {
		known = append(known, make([]int64, len(hw)-len(known))...)
	}
	k := shardReplica{shard, replica}
	miss := t.missAt[k]
	if len(miss) < len(hw) {
		miss = append(miss, make([]int64, len(hw)-len(miss))...)
	}
	var worst int64
	for o, v := range hw {
		if v > known[o] {
			known[o] = v
		}
		switch {
		case v >= known[o]:
			miss[o] = 0 // caught up with everything known from this origin
		case miss[o] == 0:
			miss[o] = now // miss starts now: the clock, not the stamp gap
		}
		if miss[o] != 0 {
			if d := now - miss[o]; d > worst {
				worst = d
			}
		}
	}
	t.known[shard] = known
	t.missAt[k] = miss
	sample := time.Duration(worst)
	old, ok := t.stal[k]
	t.stal[k] = ewma(old, sample, t.alpha, ok)
	t.mu.Unlock()
	return sample
}

// Conditions snapshots the view of replicas 0..n-1. A replica's
// staleness is its worst EWMA across shards (a read may land on any
// shard, so the router prices the pessimistic one).
func (t *Tracker) Conditions(n int) []Condition {
	now := time.Now()
	out := make([]Condition, n)
	t.mu.Lock()
	for r := range out {
		out[r].Replica = r
		if l, ok := t.lat[r]; ok {
			if age := now.Sub(t.latAt[r]); age > latencyHalfLife {
				// No recent samples: decay toward optimism so the
				// replica eventually wins a read and gets re-probed.
				for age > latencyHalfLife && l > 0 {
					l, age = l/2, age-latencyHalfLife
				}
			}
			out[r].Latency, out[r].LatencyKnown = l, true
		}
		if at, ok := t.failedAt[r]; ok && now.Sub(at) < FailureCooldown {
			out[r].Failed = true
		}
	}
	for k, s := range t.stal {
		if k.replica < 0 || k.replica >= n {
			continue
		}
		c := &out[k.replica]
		if !c.StalenessKnown || s > c.Staleness {
			c.Staleness, c.StalenessKnown = s, true
		}
	}
	t.mu.Unlock()
	return out
}
