package sla

import (
	"math/rand"
	"time"
)

// Route is how a chosen read reaches its replica, in cluster terms.
type Route int

const (
	// RouteAffinity is the session's affinity read (read_target
	// "affinity"): the replica holding the session's own updates.
	RouteAffinity Route = iota
	// RouteReplica pins the read to Choice.Replica (read_target
	// "replica") without moving the session.
	RouteReplica
	// RouteAny lets the server pick (read_target "any").
	RouteAny
)

// String renders the route as its wire read-target spelling.
func (r Route) String() string {
	switch r {
	case RouteAffinity:
		return "affinity"
	case RouteReplica:
		return "replica"
	case RouteAny:
		return "any"
	}
	return "unknown"
}

// Choice is a router's decision for one read: which sub-SLA it is
// trying to deliver, through which route, and the expected utility it
// priced the pair at. Sub is an index into the SLA; -1 means the
// choice was not made against a ranked SLA (the static baselines).
type Choice struct {
	Sub     int
	Route   Route
	Replica int
	EU      float64
}

// Router picks a sub-SLA × replica pair for one read. affinity is the
// session's current affinity replica; conds is the Tracker's snapshot
// of every replica.
type Router interface {
	Choose(s SLA, affinity int, conds []Condition) Choice
}

// pLatency estimates the probability the replica serves within
// target: target/(target+ewma). No target or no observation yet → 1
// (optimistic cold start: unknown replicas get explored).
func pLatency(target time.Duration, c Condition) float64 {
	if target <= 0 || !c.LatencyKnown || c.Latency <= 0 {
		return 1
	}
	return float64(target) / float64(target+c.Latency)
}

// pBounded estimates the probability the replica delivers within the
// staleness bound d: 1 − s/(2d), clamped to [0, 1] — certain at
// staleness 0, even odds at the bound, hopeless at twice the bound.
// Unknown staleness → 1 (optimistic cold start).
func pBounded(d time.Duration, c Condition) float64 {
	if !c.StalenessKnown || d <= 0 {
		return 1
	}
	p := 1 - float64(c.Staleness)/float64(2*d)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MaxUtility is the Pileus-style adaptive router: for every (sub-SLA,
// candidate replica) pair it computes the expected utility
//
//	P(consistency met) × P(latency met) × utility
//
// and picks the maximum; strict improvement is required to displace an
// earlier (stronger) sub-SLA or a lower replica, so ties resolve to
// the strongest promise. ReadMyWrites candidates are {affinity} only;
// Bounded and Eventual consider every replica not in failure
// cooldown. If every candidate of every sub-SLA is failed, it falls
// back to the last (weakest) sub-SLA at the affinity replica — the
// read must go somewhere, and affinity is where retry machinery
// already points.
type MaxUtility struct {
	// Explore is the probability a read is routed to a uniformly
	// random non-failed replica (through the strongest non-RMW
	// sub-SLA) instead of the argmax. Greedy routing starves the
	// condition monitor: replicas the router abandons stop producing
	// samples, so a pessimistic estimate could otherwise pin the
	// router on a worse path forever. 0 disables exploration (fully
	// deterministic — what the unit tests use); clients default to
	// DefaultExplore.
	Explore float64
}

// DefaultExplore is the exploration rate cc/client wires in when the
// application does not pick its own router.
const DefaultExplore = 0.05

// Choose implements Router.
func (m MaxUtility) Choose(s SLA, affinity int, conds []Condition) Choice {
	if m.Explore > 0 && rand.Float64() < m.Explore {
		if c, ok := explore(s, affinity, conds); ok {
			return c
		}
	}
	best := Choice{Sub: -1, Replica: -1, EU: -1}
	for i, sub := range s {
		var cands []Condition
		if sub.Consistency == ReadMyWrites {
			if affinity >= 0 && affinity < len(conds) {
				cands = conds[affinity : affinity+1]
			}
		} else {
			cands = conds
		}
		for _, c := range cands {
			if c.Failed {
				continue
			}
			eu := pLatency(sub.TargetLatency, c)
			if sub.Consistency == Bounded {
				eu *= pBounded(sub.MaxStaleness, c)
			}
			eu *= sub.Utility
			if eu > best.EU {
				best = Choice{Sub: i, Replica: c.Replica, EU: eu}
			}
		}
	}
	if best.Sub < 0 {
		// Everything is failed; send the weakest promise to affinity and
		// let the client's retry/failover machinery sort it out.
		return Choice{Sub: len(s) - 1, Route: RouteAffinity, Replica: affinity, EU: 0}
	}
	switch {
	case s[best.Sub].Consistency == ReadMyWrites:
		best.Route = RouteAffinity
	case best.Replica == affinity:
		// Affinity already serves the strongest view of the session's own
		// writes; asking for it by name buys nothing over the affinity
		// read, and the affinity read also delivers read-my-writes.
		best.Route = RouteAffinity
	default:
		best.Route = RouteReplica
	}
	return best
}

// explore builds the exploration choice: the strongest sub-SLA that
// may legally be served off-affinity (anything but ReadMyWrites — an
// RMW promise cannot be kept by a random replica), at a uniformly
// random non-failed replica. ok is false when the SLA has no such sub
// or every replica is in cooldown.
func explore(s SLA, affinity int, conds []Condition) (Choice, bool) {
	sub := -1
	for i := range s {
		if s[i].Consistency != ReadMyWrites {
			sub = i
			break
		}
	}
	if sub < 0 {
		return Choice{}, false
	}
	live := make([]Condition, 0, len(conds))
	for _, c := range conds {
		if !c.Failed {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return Choice{}, false
	}
	c := live[rand.Intn(len(live))]
	eu := pLatency(s[sub].TargetLatency, c)
	if s[sub].Consistency == Bounded {
		eu *= pBounded(s[sub].MaxStaleness, c)
	}
	ch := Choice{Sub: sub, Route: RouteReplica, Replica: c.Replica, EU: eu * s[sub].Utility}
	if ch.Replica == affinity {
		ch.Route = RouteAffinity
	}
	return ch, true
}

// StaticAffinity is the non-adaptive baseline that always reads at
// the session's affinity replica (the cluster's default read). Sub is
// -1: it promises nothing from the SLA, so delivered utility is
// whatever SLA.Achieved credits it with.
type StaticAffinity struct{}

// Choose implements Router.
func (StaticAffinity) Choose(_ SLA, affinity int, _ []Condition) Choice {
	return Choice{Sub: -1, Route: RouteAffinity, Replica: affinity}
}

// StaticAny is the non-adaptive baseline that always issues the
// server-routed any-replica read.
type StaticAny struct{}

// Choose implements Router.
func (StaticAny) Choose(_ SLA, _ int, _ []Condition) Choice {
	return Choice{Sub: -1, Route: RouteAny, Replica: -1}
}
