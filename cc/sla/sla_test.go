package sla

import (
	"testing"
	"time"
)

func canonical() SLA {
	return SLA{
		{Consistency: ReadMyWrites, TargetLatency: 5 * time.Millisecond, Utility: 1.0},
		{Consistency: Bounded, MaxStaleness: 100 * time.Millisecond, TargetLatency: 2 * time.Millisecond, Utility: 0.5},
		{Consistency: Eventual, Utility: 0.1},
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "rmw@5ms=1,bounded:100ms@2ms=0.5,eventual=0.1"
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	want := canonical()
	if len(s) != len(want) {
		t.Fatalf("got %d sub-SLAs, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("sub %d = %+v, want %+v", i, s[i], want[i])
		}
	}
	back, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", s.String(), err)
	}
	for i := range s {
		if back[i] != s[i] {
			t.Errorf("roundtrip sub %d = %+v, want %+v", i, back[i], s[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                // empty
		"rmw",             // no utility
		"rmw=x",           // bad utility
		"rmw=0",           // zero utility
		"bounded=0.5",     // bounded without a bound
		"bounded:zzz=0.5", // bad bound
		"rmw@zzz=1",       // bad latency
		"strong=1",        // unknown level
		"eventual=-1",     // negative utility
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestMetAndAchieved(t *testing.T) {
	s := canonical()
	if !s.Met(0, true, time.Hour) {
		t.Error("rmw delivered should meet sub 0 regardless of staleness")
	}
	if s.Met(0, false, 0) {
		t.Error("sub 0 without rmw should miss")
	}
	if !s.Met(1, false, 50*time.Millisecond) {
		t.Error("staleness 50ms should meet bounded:100ms")
	}
	if s.Met(1, false, 200*time.Millisecond) {
		t.Error("staleness 200ms should miss bounded:100ms")
	}
	if !s.Met(1, true, 200*time.Millisecond) {
		t.Error("delivered rmw should meet bounded at any staleness")
	}
	if !s.Met(2, false, time.Hour) || !s.Met(-1, false, 0) {
		t.Error("eventual and no-promise always met")
	}

	// Fast rmw read: full utility.
	if i, u := s.Achieved(true, 0, time.Millisecond); i != 0 || u != 1.0 {
		t.Errorf("Achieved(rmw, fast) = (%d, %v), want (0, 1)", i, u)
	}
	// rmw but slow (10ms > both latency targets): only eventual's
	// no-target sub is met.
	if i, u := s.Achieved(true, 0, 10*time.Millisecond); i != 2 || u != 0.1 {
		t.Errorf("Achieved(rmw, slow) = (%d, %v), want (2, 0.1)", i, u)
	}
	// Fresh-enough weak read within 2ms: bounded.
	if i, u := s.Achieved(false, 50*time.Millisecond, time.Millisecond); i != 1 || u != 0.5 {
		t.Errorf("Achieved(bounded-fresh) = (%d, %v), want (1, 0.5)", i, u)
	}
	// Too stale: eventual.
	if i, u := s.Achieved(false, time.Second, time.Millisecond); i != 2 || u != 0.1 {
		t.Errorf("Achieved(stale) = (%d, %v), want (2, 0.1)", i, u)
	}
}

func cond(r int, lat, stal time.Duration, failed bool) Condition {
	c := Condition{Replica: r, Failed: failed}
	if lat >= 0 {
		c.Latency, c.LatencyKnown = lat, true
	}
	if stal >= 0 {
		c.Staleness, c.StalenessKnown = stal, true
	}
	return c
}

func TestMaxUtilityPrefersFreshFastAffinity(t *testing.T) {
	s := canonical()
	// Affinity (0) is fast and fresh; 1 and 2 are slow.
	conds := []Condition{
		cond(0, 500*time.Microsecond, 0, false),
		cond(1, 20*time.Millisecond, 0, false),
		cond(2, 20*time.Millisecond, 0, false),
	}
	ch := MaxUtility{}.Choose(s, 0, conds)
	if ch.Sub != 0 || ch.Route != RouteAffinity {
		t.Fatalf("choice = %+v, want sub 0 via affinity", ch)
	}
}

func TestMaxUtilityDowngradesWhenAffinitySlow(t *testing.T) {
	s := canonical()
	// Affinity is 1 (slow, 20ms); replica 0 is fast and fresh. The rmw
	// sub's EU collapses (5/(5+20)×1 = 0.2) and bounded at replica 0
	// (≈ 2/2.5 × 0.5 = 0.4) wins.
	conds := []Condition{
		cond(0, 500*time.Microsecond, 0, false),
		cond(1, 20*time.Millisecond, 0, false),
		cond(2, 20*time.Millisecond, 0, false),
	}
	ch := MaxUtility{}.Choose(s, 1, conds)
	if ch.Sub != 1 || ch.Route != RouteReplica || ch.Replica != 0 {
		t.Fatalf("choice = %+v, want sub 1 via replica 0", ch)
	}
}

func TestMaxUtilityAvoidsStaleReplica(t *testing.T) {
	s := canonical()
	// Replica 0 is fast but hopelessly stale (≥ 2×bound ⇒ P(bounded)=0);
	// affinity 1 is slow but certain. rmw at affinity (EU 0.2) must beat
	// bounded at 0 (EU 0) and eventual anywhere (≤ 0.1).
	conds := []Condition{
		cond(0, 500*time.Microsecond, time.Second, false),
		cond(1, 20*time.Millisecond, 0, false),
	}
	ch := MaxUtility{}.Choose(s, 1, conds)
	if ch.Sub != 0 || ch.Route != RouteAffinity {
		t.Fatalf("choice = %+v, want sub 0 via affinity", ch)
	}
}

func TestMaxUtilitySkipsFailedAndFallsBack(t *testing.T) {
	s := canonical()
	conds := []Condition{
		cond(0, time.Millisecond, 0, true), // failed
		cond(1, time.Millisecond, 0, false),
	}
	ch := MaxUtility{}.Choose(s, 0, conds)
	if ch.Replica != 1 || ch.Route != RouteReplica {
		t.Fatalf("choice = %+v, want replica 1", ch)
	}
	// Everything failed: weakest promise at affinity.
	all := []Condition{cond(0, 0, 0, true), cond(1, 0, 0, true)}
	ch = MaxUtility{}.Choose(s, 0, all)
	if ch.Sub != len(s)-1 || ch.Route != RouteAffinity {
		t.Fatalf("fallback choice = %+v, want last sub via affinity", ch)
	}
}

func TestMaxUtilityColdStartExplores(t *testing.T) {
	s := canonical()
	// No observations at all: every probability is 1, so the strongest
	// sub wins at its first candidate — the affinity read.
	conds := []Condition{{Replica: 0}, {Replica: 1}}
	ch := MaxUtility{}.Choose(s, 1, conds)
	if ch.Sub != 0 || ch.Route != RouteAffinity {
		t.Fatalf("cold-start choice = %+v, want sub 0 via affinity", ch)
	}
}

func TestStaticRouters(t *testing.T) {
	s := canonical()
	if ch := (StaticAffinity{}).Choose(s, 3, nil); ch.Sub != -1 || ch.Route != RouteAffinity || ch.Replica != 3 {
		t.Fatalf("StaticAffinity = %+v", ch)
	}
	if ch := (StaticAny{}).Choose(s, 3, nil); ch.Sub != -1 || ch.Route != RouteAny {
		t.Fatalf("StaticAny = %+v", ch)
	}
}

func TestTrackerHighWaterAndConditions(t *testing.T) {
	trk := NewTracker(1) // alpha 1: samples pass through undamped
	base := time.Now().UnixNano()
	// Replica 0 is the freshest view; replica 1 trails origin 0. The
	// first observation of the miss reads as ~0 staleness — the miss
	// clock starts at detection, not at the stamp gap (a stamp gap
	// after an idle stretch is delivery lag, not staleness).
	trk.ObserveHighWater(0, 0, []int64{base, base + 1})
	stal := trk.ObserveHighWater(0, 1, []int64{base - 40_000_000, base + 1})
	if stal > 10*time.Millisecond {
		t.Fatalf("fresh miss staleness = %v, want ~0", stal)
	}
	// While the replica stays behind, staleness grows with wall time.
	time.Sleep(20 * time.Millisecond)
	stal = trk.ObserveHighWater(0, 1, []int64{base - 40_000_000, base + 1})
	if stal < 20*time.Millisecond {
		t.Fatalf("persistent miss staleness = %v, want >= 20ms", stal)
	}
	// Catching up collapses it back to zero.
	if s := trk.ObserveHighWater(0, 1, []int64{base, base + 1}); s != 0 {
		t.Fatalf("caught-up staleness = %v, want 0", s)
	}
	trk.ObserveLatency(0, 2*time.Millisecond)
	trk.ObserveFailure(1)
	conds := trk.Conditions(3)
	if !conds[0].LatencyKnown || conds[0].Latency != 2*time.Millisecond {
		t.Errorf("replica 0 latency = %+v", conds[0])
	}
	if !conds[1].StalenessKnown || conds[1].Staleness != 0 {
		t.Errorf("replica 1 staleness = %+v, want known 0", conds[1])
	}
	if !conds[1].Failed {
		t.Error("replica 1 should be in failure cooldown")
	}
	if conds[2].LatencyKnown || conds[2].StalenessKnown || conds[2].Failed {
		t.Errorf("replica 2 should be unknown, got %+v", conds[2])
	}
	// A served op clears the cooldown.
	trk.ObserveLatency(1, time.Millisecond)
	if trk.Conditions(2)[1].Failed {
		t.Error("success should clear the failure cooldown")
	}
	// The freshest-known vector is monotone: feeding replica 0 an older
	// view marks IT as missing rather than regressing the baseline.
	trk.ObserveHighWater(0, 0, []int64{base - 100_000_000, base + 1})
	time.Sleep(5 * time.Millisecond)
	if s := trk.ObserveHighWater(0, 0, []int64{base - 100_000_000, base + 1}); s < 5*time.Millisecond {
		t.Errorf("regressed vector should read as stale itself, got %v", s)
	}
}

func TestTrackerLatencyDecay(t *testing.T) {
	trk := NewTracker(1)
	trk.ObserveLatency(0, 40*time.Millisecond)
	if got := trk.Conditions(1)[0].Latency; got != 40*time.Millisecond {
		t.Fatalf("fresh estimate = %v, want 40ms (no decay yet)", got)
	}
	// Backdate the sample two half-lives: the reported estimate decays
	// toward optimism so an abandoned replica gets re-probed.
	trk.mu.Lock()
	trk.latAt[0] = time.Now().Add(-2 * latencyHalfLife)
	trk.mu.Unlock()
	got := trk.Conditions(1)[0].Latency
	if got > 20*time.Millisecond || got < 5*time.Millisecond {
		t.Fatalf("decayed estimate = %v, want roughly 10-20ms", got)
	}
}

func TestProbabilityModels(t *testing.T) {
	// pLatency: equal target and EWMA → 0.5; unknown → 1.
	c := cond(0, 5*time.Millisecond, -1, false)
	if p := pLatency(5*time.Millisecond, c); p != 0.5 {
		t.Errorf("pLatency = %v, want 0.5", p)
	}
	if p := pLatency(5*time.Millisecond, Condition{}); p != 1 {
		t.Errorf("pLatency unknown = %v, want 1", p)
	}
	// pBounded: 0 at twice the bound, 0.5 at the bound, 1 when fresh.
	d := 100 * time.Millisecond
	if p := pBounded(d, cond(0, -1, 200*time.Millisecond, false)); p != 0 {
		t.Errorf("pBounded(2d) = %v, want 0", p)
	}
	if p := pBounded(d, cond(0, -1, 100*time.Millisecond, false)); p != 0.5 {
		t.Errorf("pBounded(d) = %v, want 0.5", p)
	}
	if p := pBounded(d, cond(0, -1, 0, false)); p != 1 {
		t.Errorf("pBounded(0) = %v, want 1", p)
	}
}
