package checker_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc/checker"
	"github.com/paper-repro/ccbm/cc/histories"
)

// The context-cancellation contract: every registered criterion must
// unwind within its poll interval once the context dies. The searches
// poll at least every few thousand nodes (microseconds of work), so
// the generous wall-clock bounds here fail only if a checker stops
// honoring ctx altogether.

// cancelHistory returns a history the given criterion accepts as
// input: the memory history for the memory-only criteria, a W2
// history (with an ω-read so UC actually searches) otherwise.
func cancelHistory(c checker.Criterion) *histories.History {
	if c.MemoryOnly {
		return histories.MustParse(fig3i)
	}
	return histories.MustParse(`adt: W2
p0: w(1) r/(0,1) r/(1,2)*
p1: w(2) r/(0,2) r/(1,2)*`)
}

// TestPreCancelledContext pins that a context cancelled before the
// call returns context.Canceled from every registered criterion
// without any search work.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range checker.All() {
		res, err := checker.Check(ctx, c.Name, cancelHistory(c))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", c.Name, err)
			continue
		}
		if res == nil || res.Exhausted != checker.CauseCanceled {
			t.Errorf("%s: res = %+v, want Exhausted = canceled", c.Name, res)
		}
		if res != nil && res.Explored != 0 {
			t.Errorf("%s: explored %d nodes under a dead context", c.Name, res.Explored)
		}
	}
}

// TestDeadlineUnwindsPromptly drives every registered criterion into a
// 1ms deadline on a history whose searches run much longer, and
// requires the call back within a poll interval (bounded far above at
// 5s for CI noise). A criterion that legitimately finishes inside the
// deadline reports a clean verdict, which also passes — EC, for
// example, is a linear scan.
func TestDeadlineUnwindsPromptly(t *testing.T) {
	// Fig. 3h over M[a-e]: the hardest of the paper's fixtures (its
	// CCv claim alone takes tens of milliseconds), so most criteria
	// are still searching when the deadline lands.
	hard := histories.MustParse(`adt: M[a-e]
p0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3
p1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3`)
	for _, c := range checker.All() {
		h := hard
		if c.MemoryOnly {
			h = histories.MustParse(fig3i)
		}
		type reply struct {
			res *checker.Result
			err error
		}
		done := make(chan reply, 1)
		start := time.Now()
		go func() {
			res, err := checker.Check(context.Background(), c.Name, h,
				checker.WithTimeout(time.Millisecond))
			done <- reply{res, err}
		}()
		select {
		case r := <-done:
			if r.err != nil {
				t.Errorf("%s: err = %v", c.Name, r.err)
				continue
			}
			if r.res.Exhausted != "" && r.res.Exhausted != checker.CauseTimeout {
				t.Errorf("%s: Exhausted = %q, want timeout or clean finish", c.Name, r.res.Exhausted)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: did not unwind within 5s of a 1ms deadline (elapsed %v)",
				c.Name, time.Since(start))
		}
	}
}

// TestMidSearchCancel cancels a long causal search from another
// goroutine and requires prompt unwinding with the context error.
func TestMidSearchCancel(t *testing.T) {
	h := histories.MustParse(`adt: M[a-e]
p0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3
p1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3`)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := checker.Check(ctx, "CCv", h)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// Either the search finished before the cancellation landed
		// (fine) or it must report the cancellation.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-search cancel: err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled search did not unwind within 5s")
	}
}
