package checker

import (
	"fmt"

	"github.com/paper-repro/ccbm/cc/histories"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/porder"
)

// Witness carries the evidence justifying a positive verdict. Its
// shape depends on the criterion: a single linearization (SC, UC,
// linearizability), per-process linearizations (PC, CM), or a causal
// order with per-event linearizations (WCC, CC, CCv).
type Witness = check.Witness

// PruneStats counts the work each DPOR-style pruner did during a
// pruned search (WithPruning): frames cut through canonical state
// fingerprints, branches excluded by sleep sets, and frontier events
// skipped by the symmetry quotient.
type PruneStats = check.PruneStats

// ValidateWitness re-derives a positive verdict from first
// principles: it checks, independently of the search that produced
// it, that w is genuine evidence that h satisfies the named
// criterion. It covers the criteria whose witnesses carry enough
// structure (the causal family and SC); useful as a safety net over
// pruned searches.
func ValidateWitness(h *histories.History, criterion string, w *Witness) error {
	var crit check.Criterion
	switch criterion {
	case check.CritWCC.String():
		crit = check.CritWCC
	case check.CritCC.String():
		crit = check.CritCC
	case check.CritCCv.String():
		crit = check.CritCCv
	case check.CritSC.String():
		crit = check.CritSC
	default:
		return fmt.Errorf("checker: no independent validator for %q", criterion)
	}
	return check.ValidateWitness(h, crit, w)
}

// FormatLin renders a witness order as the paper's dot-separated word
// with every output visible.
func FormatLin(h *histories.History, order []int) string {
	return check.FormatLin(h, order, porder.FullBitset(h.N()))
}

// FormatWitness renders a witness into human-readable lines, one per
// linearization, using the projection the criterion actually checked
// (full visibility for SC, per-process for PC/CM, per-event for the
// causal family). The criterion name selects the projection; it must
// be the one the witness came from.
func FormatWitness(h *histories.History, criterion string, w *Witness) []string {
	if w == nil {
		return nil
	}
	var out []string
	switch {
	case w.Linearization != nil:
		out = append(out, fmt.Sprintf("lin: %s", FormatLin(h, w.Linearization)))
	case w.PerProcess != nil:
		for p, lin := range w.PerProcess {
			if lin == nil {
				continue
			}
			out = append(out, fmt.Sprintf("p%d: %s", p, check.FormatLin(h, lin, h.ProcEvents(p))))
		}
	case w.PerEvent != nil:
		for e, lin := range w.PerEvent {
			if lin == nil {
				continue
			}
			vis := porder.BitsetOf(h.N(), e)
			if criterion == check.CritCC.String() {
				vis = h.ProcEvents(h.Events[e].Proc)
			}
			out = append(out, fmt.Sprintf("%s: %s", h.Events[e].Op, check.FormatLin(h, lin, vis)))
		}
	}
	return out
}
