package checker

import (
	"context"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/histories"
	"github.com/paper-repro/ccbm/internal/check"
)

// TimedOp is one completed method execution with its real-time
// [invocation,response] interval — the input of the linearizability
// checker, the one criterion that constrains real time and therefore
// does not operate on plain histories (or live in the registry).
type TimedOp = check.TimedOp

// LinCriterion is the Result.Criterion value Linearizable reports.
const LinCriterion = "LIN"

// Linearizable reports whether the timed history is linearizable with
// respect to t: some total order of the operations, admissible for t,
// extends the real-time precedence relation. The witness (on success)
// is the linearization as indices into ops. Options, context handling
// and the Result contract are exactly Check's.
func Linearizable(ctx context.Context, t cc.ADT, ops []TimedOp, opts ...Option) (*Result, error) {
	c := Criterion{
		Name: LinCriterion,
		Func: func(ctx context.Context, _ *histories.History, p Params) (bool, *Witness, error) {
			ok, order, err := check.Linearizable(ctx, t, ops, p.engine())
			if !ok || err != nil {
				return false, nil, err
			}
			return true, &Witness{Linearization: order}, nil
		},
	}
	return runCriterion(ctx, c, nil, newParams(opts))
}

// TimedToHistory forgets real time, keeping only the per-process
// program order — the projection under which linearizability
// questions become sequential-consistency questions.
func TimedToHistory(t cc.ADT, ops []TimedOp) *histories.History {
	return check.TimedToHistory(t, ops)
}

// TimedOps converts parsed timed events (histories.ParseTimed) into
// the checker's input.
func TimedOps(evs []histories.TimedEvent) []TimedOp {
	ops := make([]TimedOp, len(evs))
	for i, ev := range evs {
		ops[i] = TimedOp{Proc: ev.Proc, Op: ev.Op, Inv: ev.Inv, Res: ev.Res}
	}
	return ops
}

// SessionGuarantees holds the outcome of Terry's four session
// guarantees (Read Your Writes, Monotonic Reads, Monotonic Writes,
// Writes Follow Reads).
type SessionGuarantees = check.SessionGuarantees

// Sessions checks Terry's four session guarantees on a memory history
// whose written values are distinct per register (ErrDuplicateValues
// otherwise; ErrNotMemory on non-memory ADTs).
func Sessions(h *histories.History, opts ...Option) (SessionGuarantees, error) {
	return check.Sessions(h, newParams(opts).engine())
}
