// Package checker is the public facade over the engine's consistency
// checkers: a string-keyed registry of criteria, context-aware
// single-history checking with functional options, and a streaming
// batch classifier.
//
// The paper's criteria (EC, UC, PC, WCC, CCv, CC, CM, SC) are
// registered at init time; user-defined criteria register through the
// same API and are dispatched uniformly — by checker.Check, by the
// Classifier, and by the command-line tools' -criteria flags.
package checker

import (
	"context"
	"fmt"
	"sync"

	"github.com/paper-repro/ccbm/cc/histories"
	"github.com/paper-repro/ccbm/internal/check"
)

// CheckFunc is the decision procedure of a registered criterion. It
// reports whether the history satisfies the criterion, with an
// optional witness. Implementations must honor ctx — returning
// ctx.Err() promptly once the context is cancelled or past its
// deadline — and should return an error wrapping ErrBudget when they
// abandon the search after Params.Budget nodes, and ErrNotMemory when
// the criterion only applies to memory histories.
type CheckFunc func(ctx context.Context, h *histories.History, p Params) (bool, *Witness, error)

// Criterion is one entry of the registry: a named consistency
// criterion and its decision procedure.
type Criterion struct {
	// Name is the registry key, e.g. "SC". Case-sensitive, non-empty,
	// unique.
	Name string
	// Doc is a one-line description, shown by the tools' -list flags.
	Doc string
	// MemoryOnly marks criteria that only apply to memory histories
	// (the built-in CM); batch callers skip them on other ADTs.
	MemoryOnly bool
	// Func decides the criterion.
	Func CheckFunc
}

var registry = struct {
	sync.RWMutex
	byName map[string]Criterion
	order  []string
}{byName: make(map[string]Criterion)}

// Register adds a criterion to the registry. It fails on an empty
// name, a nil Func, or a name that is already registered (the
// built-ins claim EC, UC, PC, WCC, CCv, CC, CM and SC).
func Register(c Criterion) error {
	if c.Name == "" {
		return fmt.Errorf("checker: Register: empty criterion name")
	}
	if c.Func == nil {
		return fmt.Errorf("checker: Register %q: nil Func", c.Name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[c.Name]; dup {
		return fmt.Errorf("checker: Register %q: already registered", c.Name)
	}
	registry.byName[c.Name] = c
	registry.order = append(registry.order, c.Name)
	return nil
}

// MustRegister is Register for package init blocks; it panics on
// error.
func MustRegister(c Criterion) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// Lookup resolves a criterion name.
func Lookup(name string) (Criterion, bool) {
	registry.RLock()
	defer registry.RUnlock()
	c, ok := registry.byName[name]
	return c, ok
}

// All returns every registered criterion in registration order: the
// built-ins from weakest to strongest along the paper's Fig. 1
// branches (EC, UC, PC, WCC, CCv, CC, CM, SC), then user-defined
// criteria in the order they registered.
func All() []Criterion {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Criterion, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns the registered criterion names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// builtinOf maps registered built-in names back to the engine's
// criterion enum, so the Classifier can route them through the batch
// engine's native path.
var builtinOf = make(map[string]check.Criterion)

var builtinDocs = map[check.Criterion]string{
	check.CritEC:  "eventual consistency (Vogels): all ω-reads of one input agree",
	check.CritUC:  "update consistency: some total update order explains the limit reads",
	check.CritPC:  "pipelined consistency (PRAM): each process explains the history alone",
	check.CritWCC: "weak causal consistency (Def. 8): causal order + per-event explanation",
	check.CritCCv: "causal convergence (Def. 12): causal order inside one shared total order",
	check.CritCC:  "causal consistency (Def. 9): causal order + per-process explanation",
	check.CritCM:  "causal memory (Def. 11): writes-into order, memory histories only",
	check.CritSC:  "sequential consistency (Def. 5): one linearization explains everything",
}

func init() {
	for _, c := range check.AllCriteria {
		c := c
		builtinOf[c.String()] = c
		MustRegister(Criterion{
			Name:       c.String(),
			Doc:        builtinDocs[c],
			MemoryOnly: c == check.CritCM,
			Func: func(ctx context.Context, h *histories.History, p Params) (bool, *Witness, error) {
				return check.Check(ctx, c, h, p.engine())
			},
		})
	}
}

// Implications returns the paper's Fig. 1 arrows among the built-in
// criteria as (stronger, weaker) name pairs: every history satisfying
// the first also satisfies the second.
func Implications() [][2]string {
	imps := check.Implications()
	out := make([][2]string, len(imps))
	for i, imp := range imps {
		out[i] = [2]string{imp[0].String(), imp[1].String()}
	}
	return out
}
