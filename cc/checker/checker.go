package checker

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/paper-repro/ccbm/cc/histories"
	"github.com/paper-repro/ccbm/internal/check"
)

// Sentinel errors, re-exported from the engine so facade users can
// errors.Is against them without reaching into internal/.
var (
	// ErrBudget reports that a search exceeded its node budget.
	ErrBudget = check.ErrBudget
	// ErrNotMemory reports that a memory-only criterion was applied to
	// a history over a non-memory ADT.
	ErrNotMemory = check.ErrNotMemory
	// ErrOmegaUpdate reports an ω-flagged update operation; the
	// encoding only supports repeating pure queries.
	ErrOmegaUpdate = check.ErrOmegaUpdate
	// ErrDuplicateValues reports that the session-guarantee checkers
	// saw two writes of the same value to one register.
	ErrDuplicateValues = check.ErrDuplicateValues
)

// DefaultBudget is the default search-node budget of every checker.
const DefaultBudget = check.DefaultMaxNodes

// Params are the resolved parameters of a checker invocation, built
// from functional options. User-defined CheckFuncs receive them and
// should honor Budget and Parallelism; Timeout is already applied (as
// a context deadline) by the time a CheckFunc runs.
type Params struct {
	// Budget bounds the search-tree nodes explored; 0 means
	// DefaultBudget.
	Budget int
	// Parallelism, when > 1, fans the causal-family searches of one
	// history out over that many subtree workers.
	Parallelism int
	// Timeout bounds one check's wall-clock time; 0 means none. Check
	// applies it as a context deadline, which the searches poll every
	// few thousand nodes.
	Timeout time.Duration
	// Workers bounds the histories classified concurrently by a
	// Classifier; 0 means GOMAXPROCS. Ignored by Check.
	Workers int
	// Criteria selects the criteria a Classifier runs, by registered
	// name; nil means all registered. Ignored by Check.
	Criteria []string
	// Pruning enables the DPOR-style pruners of the causal-family
	// searches (canonical state fingerprints, sleep-set exclusion,
	// symmetry quotient). Verdicts are identical to the exhaustive
	// search; witnesses may be renamed equivalents when the history has
	// identical-program processes.
	Pruning bool

	stats *check.Stats
}

// Option tunes Check, Linearizable, Sessions or NewClassifier.
type Option func(*Params)

// WithBudget bounds the number of search-tree nodes one check may
// explore; exceeding it yields a Result with Exhausted == CauseBudget.
func WithBudget(nodes int) Option { return func(p *Params) { p.Budget = nodes } }

// WithParallelism fans the causal-family searches of one history out
// over n subtree workers (verdicts and witnesses are identical to the
// sequential search).
func WithParallelism(n int) Option { return func(p *Params) { p.Parallelism = n } }

// WithTimeout bounds one check's wall-clock time via a context
// deadline; expiry yields a Result with Exhausted == CauseTimeout.
func WithTimeout(d time.Duration) Option { return func(p *Params) { p.Timeout = d } }

// WithWorkers bounds the number of histories a Classifier checks
// concurrently (default GOMAXPROCS).
func WithWorkers(n int) Option { return func(p *Params) { p.Workers = n } }

// WithCriteria selects the criteria a Classifier runs, by registered
// name (default: all registered criteria).
func WithCriteria(names ...string) Option {
	return func(p *Params) { p.Criteria = append([]string(nil), names...) }
}

// WithPruning toggles the DPOR-style pruning layer of the
// causal-family searches (default off). Pruned searches return the
// same verdicts as exhaustive ones while exploring fewer nodes;
// per-pruner counters are surfaced as Result.Pruned. Witnesses are
// bit-identical except when the history has identical-program
// processes, where the symmetry quotient may return a renamed (still
// valid) equivalent.
func WithPruning(on bool) Option { return func(p *Params) { p.Pruning = on } }

// CountNodes adds n to the invocation's explored-node statistic
// (surfaced as Result.Explored). The built-in criteria report
// automatically; user-defined CheckFuncs may call it to participate.
func (p Params) CountNodes(n int64) {
	if p.stats != nil {
		p.stats.Nodes += n
	}
}

// engine translates the public parameters into engine options.
func (p Params) engine() check.Options {
	opt := check.Options{MaxNodes: p.Budget, Parallelism: p.Parallelism, Stats: p.stats}
	if p.Pruning {
		opt.Prune = check.PruneAll()
	}
	return opt
}

func newParams(opts []Option) Params {
	var p Params
	for _, o := range opts {
		o(&p)
	}
	return p
}

// Cause says why a check ended without reaching a verdict.
type Cause string

const (
	// CauseBudget: the node budget (WithBudget) ran out.
	CauseBudget Cause = "budget"
	// CauseTimeout: a deadline — WithTimeout's or the caller
	// context's — expired.
	CauseTimeout Cause = "timeout"
	// CauseCanceled: the caller's context was cancelled.
	CauseCanceled Cause = "canceled"
)

// Result is the unified outcome of one criterion on one history.
type Result struct {
	// Criterion is the registered name of the criterion checked.
	Criterion string
	// Satisfied is the verdict; meaningful only when Err == nil and
	// Exhausted is empty.
	Satisfied bool
	// Witness justifies a positive verdict (per-criterion shape: a
	// linearization, per-process or per-event linearizations, a causal
	// order); nil otherwise.
	Witness *Witness
	// Explored is the number of search-tree nodes visited.
	Explored int64
	// Pruned counts the frames and branches each pruner cut, when
	// pruning was enabled (WithPruning); zero otherwise.
	Pruned PruneStats
	// Elapsed is the check's wall-clock time.
	Elapsed time.Duration
	// Exhausted is non-empty when the search ended without a verdict:
	// node budget ran out, deadline expired, or context cancelled.
	Exhausted Cause
	// Err is the error the checker returned, if any: the budget error
	// (Exhausted == CauseBudget), the context error (CauseTimeout /
	// CauseCanceled, unless the timeout came from WithTimeout, which
	// is reported in Exhausted alone), or a hard error such as
	// ErrNotMemory or a malformed history.
	Err error
}

// Check runs one registered criterion on one history.
//
//	res, err := checker.Check(ctx, "CC", h, checker.WithTimeout(2*time.Second))
//
// The criterion is resolved in the registry (built-ins plus anything
// the caller Registered). Cancellation and deadlines are idiomatic:
// the searches poll ctx every few thousand explored nodes and unwind
// with ctx.Err(). Check returns a non-nil Result whenever the
// criterion ran, even on error — budget exhaustion, a WithTimeout
// expiry or a cancellation still carries the explored-node count,
// elapsed time and the Exhausted cause. Err is nil only for a clean
// verdict, so `if err != nil` remains the simple calling convention;
// callers that want to distinguish exhaustion from hard errors read
// res.Exhausted or errors.Is(err, checker.ErrBudget).
func Check(ctx context.Context, criterion string, h *histories.History, opts ...Option) (*Result, error) {
	c, ok := Lookup(criterion)
	if !ok {
		return nil, fmt.Errorf("checker: unknown criterion %q (registered: %s)",
			criterion, strings.Join(Names(), ", "))
	}
	return runCriterion(ctx, c, h, newParams(opts))
}

// runCriterion drives one CheckFunc under the resolved parameters and
// folds its outcome into a Result.
func runCriterion(ctx context.Context, c Criterion, h *histories.History, p Params) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stats := &check.Stats{}
	p.stats = stats
	cctx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	start := time.Now()
	ok, w, err := c.Func(cctx, h, p)
	res := &Result{
		Criterion: c.Name,
		Satisfied: ok,
		Witness:   w,
		Explored:  stats.Nodes,
		Pruned:    stats.Prune,
		Elapsed:   time.Since(start),
		Err:       err,
	}
	if err == nil {
		return res, nil
	}
	res.Satisfied, res.Witness = false, nil
	switch {
	case errors.Is(err, ErrBudget):
		res.Exhausted = CauseBudget
	case errors.Is(err, context.DeadlineExceeded):
		res.Exhausted = CauseTimeout
		if p.Timeout > 0 && ctx.Err() == nil {
			// WithTimeout's own deadline, not the caller's: reported in
			// Exhausted, not as an error.
			res.Err = nil
			return res, nil
		}
	case errors.Is(err, context.Canceled):
		res.Exhausted = CauseCanceled
	}
	return res, err
}
