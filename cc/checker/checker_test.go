package checker_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/checker"
	"github.com/paper-repro/ccbm/cc/histories"
)

// fig3c is the paper's Fig. 3c history: causally consistent but not
// sequentially consistent and not causally convergent.
const fig3c = `adt: W2
p0: w(1) r/(2,1)
p1: w(2) r/(1,2)`

// fig3i is a memory history (Fig. 3i): CM but not CC.
const fig3i = `adt: M[a-d]
p0: wa(1) wa(2) wb(3) rd/3 rc/1 wa(1)
p1: wc(1) wc(2) wd(3) rb/3 ra/1 wc(1)`

func TestCheckVerdicts(t *testing.T) {
	h := histories.MustParse(fig3c)
	ctx := context.Background()
	for _, tc := range []struct {
		criterion string
		want      bool
	}{
		{"CC", true}, {"WCC", true}, {"PC", true}, {"SC", false}, {"CCv", false},
	} {
		res, err := checker.Check(ctx, tc.criterion, h)
		if err != nil {
			t.Fatalf("Check(%s): %v", tc.criterion, err)
		}
		if res.Satisfied != tc.want {
			t.Errorf("Check(%s) = %v, want %v", tc.criterion, res.Satisfied, tc.want)
		}
		if res.Criterion != tc.criterion {
			t.Errorf("Check(%s): res.Criterion = %q", tc.criterion, res.Criterion)
		}
		if res.Satisfied && res.Witness == nil {
			t.Errorf("Check(%s): satisfied without witness", tc.criterion)
		}
		if tc.criterion != "EC" && res.Explored == 0 {
			t.Errorf("Check(%s): no explored nodes recorded", tc.criterion)
		}
	}
}

func TestCheckUnknownCriterion(t *testing.T) {
	h := histories.MustParse(fig3c)
	_, err := checker.Check(context.Background(), "nope", h)
	if err == nil || !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "SC") {
		t.Fatalf("unknown criterion: err = %v, want mention of the name and the registry", err)
	}
}

func TestCheckNotMemory(t *testing.T) {
	h := histories.MustParse(fig3c)
	_, err := checker.Check(context.Background(), "CM", h)
	if !errors.Is(err, checker.ErrNotMemory) {
		t.Fatalf("CM on W2 history: err = %v, want ErrNotMemory", err)
	}
	res, err := checker.Check(context.Background(), "CM", histories.MustParse(fig3i))
	if err != nil || !res.Satisfied {
		t.Fatalf("CM on 3i = (%v, %v), want satisfied", res, err)
	}
}

func TestCheckBudgetExhaustion(t *testing.T) {
	h := histories.MustParse(fig3c)
	res, err := checker.Check(context.Background(), "CC", h, checker.WithBudget(3))
	if !errors.Is(err, checker.ErrBudget) {
		t.Fatalf("starved check: err = %v, want ErrBudget", err)
	}
	if res == nil || res.Exhausted != checker.CauseBudget {
		t.Fatalf("starved check: res = %+v, want Exhausted = budget", res)
	}
	if res.Satisfied || res.Witness != nil {
		t.Fatalf("starved check claims a verdict: %+v", res)
	}
}

func TestRegisterUserCriterion(t *testing.T) {
	// A toy criterion: the history has at least one update. Registered
	// once for the whole test binary (the registry is global).
	name := "HasUpdate"
	if _, dup := checker.Lookup(name); !dup {
		checker.MustRegister(checker.Criterion{
			Name: name,
			Doc:  "at least one update event (test criterion)",
			Func: func(ctx context.Context, h *histories.History, p checker.Params) (bool, *checker.Witness, error) {
				if err := ctx.Err(); err != nil {
					return false, nil, err
				}
				p.CountNodes(int64(h.N()))
				for _, e := range h.Events {
					if h.ADT.IsUpdate(e.Op.In) {
						return true, &checker.Witness{}, nil
					}
				}
				return false, nil, nil
			},
		})
	}
	h := histories.MustParse(fig3c)
	res, err := checker.Check(context.Background(), name, h)
	if err != nil || !res.Satisfied {
		t.Fatalf("Check(%s) = (%+v, %v), want satisfied", name, res, err)
	}
	if res.Explored != int64(h.N()) {
		t.Errorf("CountNodes not surfaced: Explored = %d, want %d", res.Explored, h.N())
	}

	// The registry rejects duplicates and malformed entries.
	if err := checker.Register(checker.Criterion{Name: name, Func: nil}); err == nil {
		t.Error("Register with nil Func succeeded")
	}
	if err := checker.Register(checker.Criterion{Name: "", Func: func(context.Context, *histories.History, checker.Params) (bool, *checker.Witness, error) {
		return false, nil, nil
	}}); err == nil {
		t.Error("Register with empty name succeeded")
	}

	// The Classifier dispatches it next to the built-ins.
	cl := checker.NewClassifier(checker.WithCriteria("SC", "CC", name))
	ir, err := cl.Classify(context.Background(), h)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	for _, want := range []string{"SC", "CC", name} {
		if _, ok := ir.Results[want]; !ok {
			t.Errorf("Classifier missing %q: %v", want, ir.Results)
		}
	}
	if !ir.Results[name].Satisfied {
		t.Errorf("Classifier: %s not satisfied", name)
	}
	if ir.Results["SC"].Satisfied || !ir.Results["CC"].Satisfied {
		t.Errorf("Classifier built-in verdicts wrong: %+v", ir.Results)
	}
}

func TestClassifierStream(t *testing.T) {
	texts := []string{fig3c, fig3i, fig3c}
	in := make(chan checker.Item)
	go func() {
		defer close(in)
		for i, text := range texts {
			in <- checker.Item{Index: i, Name: "h", H: histories.MustParse(text)}
		}
	}()
	out, err := checker.NewClassifier().Stream(context.Background(), in)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	seen := 0
	for r := range out {
		seen++
		if e := r.Err(); e != nil {
			t.Fatalf("item %d: %v", r.Item.Index, e)
		}
		if len(r.LatticeViolations) > 0 {
			t.Fatalf("item %d: lattice violations %v", r.Item.Index, r.LatticeViolations)
		}
		if r.Item.Index == 0 || r.Item.Index == 2 {
			if !r.Results["CC"].Satisfied || r.Results["SC"].Satisfied {
				t.Errorf("item %d: wrong verdicts %+v", r.Item.Index, r.Results)
			}
			wantProfile := []string{"EC", "UC", "PC", "WCC", "CC"}
			if strings.Join(r.Profile, " ") != strings.Join(wantProfile, " ") {
				t.Errorf("item %d: profile %v, want %v", r.Item.Index, r.Profile, wantProfile)
			}
		} else if _, ok := r.Results["CM"]; !ok {
			t.Errorf("item 1 (memory history): CM skipped: %v", r.Results)
		}
	}
	if seen != len(texts) {
		t.Fatalf("Stream emitted %d results, want %d", seen, len(texts))
	}
}

func TestClassifierUnknownCriterion(t *testing.T) {
	in := make(chan checker.Item)
	close(in)
	_, err := checker.NewClassifier(checker.WithCriteria("bogus")).Stream(context.Background(), in)
	if err == nil || !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("Stream with unknown criterion: err = %v", err)
	}
}

func TestClassifyAndImplications(t *testing.T) {
	cl, err := checker.Classify(context.Background(), histories.MustParse(fig3c))
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if !cl["CC"] || cl["SC"] {
		t.Fatalf("Classify verdicts wrong: %v", cl)
	}
	if _, ok := cl["CM"]; ok {
		t.Fatalf("Classify reported CM on a non-memory history: %v", cl)
	}
	if bad := checker.VerifyImplications(cl); len(bad) > 0 {
		t.Fatalf("implication violations: %v", bad)
	}
	// A fabricated classification with a broken arrow is caught.
	if bad := checker.VerifyImplications(checker.Classification{"SC": true, "CC": false}); len(bad) != 1 {
		t.Fatalf("fabricated violation not caught: %v", bad)
	}
}

func TestLinearizableFacade(t *testing.T) {
	reg, err := cc.LookupADT("Register")
	if err != nil {
		t.Fatal(err)
	}
	// The classic stale read: SC but not linearizable.
	stale := []checker.TimedOp{
		{Proc: 0, Op: cc.NewOp(cc.NewInput("w", 1), cc.Bot), Inv: 0, Res: 1},
		{Proc: 1, Op: cc.NewOp(cc.NewInput("r"), cc.IntOutput(0)), Inv: 2, Res: 3},
	}
	res, err := checker.Linearizable(context.Background(), reg, stale)
	if err != nil || res.Satisfied {
		t.Fatalf("stale read: Linearizable = (%+v, %v), want unsatisfied", res, err)
	}
	sc, err := checker.Check(context.Background(), "SC", checker.TimedToHistory(reg, stale))
	if err != nil || !sc.Satisfied {
		t.Fatalf("stale read: SC = (%+v, %v), want satisfied", sc, err)
	}
}

func TestSessionsFacade(t *testing.T) {
	g, err := checker.Sessions(histories.MustParse(`adt: M[x]
p0: wx(1) rx/1
p1: rx/1`))
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if !g.All() {
		t.Fatalf("Sessions = %+v, want all guarantees", g)
	}
}

func TestTimeoutCause(t *testing.T) {
	// A W2 history with enough events that the causal search outlives a
	// microscopic timeout; the result must report CauseTimeout with a
	// nil error (WithTimeout's own deadline is data, not failure).
	h := histories.MustParse(`adt: M[a-e]
p0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3
p1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3`)
	res, err := checker.Check(context.Background(), "CC", h, checker.WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatalf("timed-out check: err = %v, want nil", err)
	}
	if res.Exhausted != checker.CauseTimeout {
		t.Fatalf("timed-out check: res = %+v, want Exhausted = timeout", res)
	}
}

// The hardest Fig. 3 history (3h): CC holds but takes the search deep
// into backtracking territory, so pruning has something to cut.
const fig3h = `adt: M[a-e]
p0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3
p1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3`

func TestCheckWithPruning(t *testing.T) {
	h := histories.MustParse(fig3h)
	ctx := context.Background()
	for _, criterion := range []string{"WCC", "CC", "CCv"} {
		plain, err := checker.Check(ctx, criterion, h)
		if err != nil {
			t.Fatalf("Check(%s): %v", criterion, err)
		}
		pruned, err := checker.Check(ctx, criterion, h, checker.WithPruning(true))
		if err != nil {
			t.Fatalf("Check(%s, pruning): %v", criterion, err)
		}
		if plain.Satisfied != pruned.Satisfied {
			t.Errorf("Check(%s): verdict flipped under pruning: %v vs %v",
				criterion, plain.Satisfied, pruned.Satisfied)
		}
		if plain.Pruned.Total() != 0 {
			t.Errorf("Check(%s): pruning counters nonzero without WithPruning: %+v",
				criterion, plain.Pruned)
		}
		if pruned.Explored > plain.Explored {
			t.Errorf("Check(%s): pruned search explored more nodes: %d vs %d",
				criterion, pruned.Explored, plain.Explored)
		}
		if pruned.Satisfied {
			if err := checker.ValidateWitness(h, criterion, pruned.Witness); err != nil {
				t.Errorf("Check(%s): pruned witness invalid: %v", criterion, err)
			}
		}
	}
	// CC is the backtracking-heavy criterion on 3h: pruning must cut
	// the exploration by well over 2× and say so in the counters.
	plain, _ := checker.Check(ctx, "CC", h)
	pruned, _ := checker.Check(ctx, "CC", h, checker.WithPruning(true))
	if pruned.Explored*2 > plain.Explored {
		t.Errorf("CC on 3h: pruning reduced exploration only %d → %d (< 2×)",
			plain.Explored, pruned.Explored)
	}
	if pruned.Pruned.Total() == 0 {
		t.Error("CC on 3h: pruning counters all zero")
	}
}
