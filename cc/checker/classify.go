package checker

import (
	"context"

	"github.com/paper-repro/ccbm/cc/histories"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/porder"
)

// Classification maps criterion names to verdicts. A missing entry
// means the criterion was not applicable (memory-only criteria on
// non-memory histories).
type Classification map[string]bool

// Classify runs every built-in criterion on the history and returns
// the verdict map. Memory-only criteria are skipped on non-memory
// histories; any other checker error (budget, ω-encoding, a cancelled
// context) aborts the classification. For per-criterion timeouts,
// statistics or user-registered criteria, use a Classifier instead.
func Classify(ctx context.Context, h *histories.History, opts ...Option) (Classification, error) {
	p := newParams(opts)
	cctx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	cl, err := check.Classify(cctx, h, p.engine())
	if err != nil {
		return nil, err
	}
	out := make(Classification, len(cl))
	for c, ok := range cl {
		out[c.String()] = ok
	}
	return out, nil
}

// VerifyImplications checks every Fig. 1 arrow on a classification
// and returns the violated (stronger, weaker) pairs — expected none;
// anything else indicates a checker bug.
func VerifyImplications(cl Classification) [][2]string {
	var bad [][2]string
	for _, imp := range Implications() {
		s, okS := cl[imp[0]]
		w, okW := cl[imp[1]]
		if okS && okW && s && !w {
			bad = append(bad, imp)
		}
	}
	return bad
}

// The time-zone view of Fig. 2: how a causal order partitions a
// history around one event.

// Zones partitions a history's events relative to one event and a
// causal order, reproducing the six time zones of the paper's Fig. 2.
type Zones = check.Zones

// CausalOrder is a strict, transitively closed order over a history's
// events, as built by CausalOrderFrom.
type CausalOrder = porder.Rel

// CausalOrderFrom builds a causal order: the transitive closure of
// the history's program order plus the given extra (from, to) edges.
func CausalOrderFrom(h *histories.History, extra [][2]int) *CausalOrder {
	return check.CausalOrderFrom(h, extra)
}

// ZonesOf computes the time zones of event e under the causal order.
func ZonesOf(h *histories.History, causal *CausalOrder, e int) Zones {
	return check.ZonesOf(h, causal, e)
}
