package checker

import (
	"context"
	"errors"
	"fmt"

	"github.com/paper-repro/ccbm/cc/histories"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/history"
)

// Item is one history submitted to a Classifier. Index is echoed back
// so streaming consumers can restore input order; Name is free text
// for reporting (a file name, an enumeration index, ...).
type Item struct {
	Index int
	Name  string
	H     *histories.History
}

// ItemResult is the classification of one Item: one Result per
// attempted criterion, keyed by registered name. Memory-only criteria
// are skipped (no entry) on non-memory histories.
type ItemResult struct {
	Item Item
	// Results holds one entry per attempted criterion.
	Results map[string]*Result
	// Profile lists the satisfied built-in criteria, weakest first —
	// the history's position in the paper's Fig. 1 hierarchy.
	Profile []string
	// LatticeViolations lists the Fig. 1 implication arrows violated
	// by the verdicts (expected empty; non-empty means a checker bug).
	LatticeViolations [][2]string
}

// Err returns the first hard error among the results, in registry
// order. Budget exhaustion and timeouts are reported data (see
// Result.Exhausted), not errors; a cancelled batch context does
// surface here.
func (r *ItemResult) Err() error {
	for _, name := range Names() {
		if res, ok := r.Results[name]; ok && res.Err != nil && res.Exhausted != CauseBudget {
			return res.Err
		}
	}
	return nil
}

// Classifier checks histories against a set of registered criteria —
// one at a time or as a streaming batch over a bounded worker pool.
// Configure it once with the same functional options Check takes,
// plus WithWorkers and WithCriteria:
//
//	cl := checker.NewClassifier(
//		checker.WithCriteria("SC", "CC", "CCv"),
//		checker.WithTimeout(2*time.Second),
//	)
//	out, err := cl.Stream(ctx, items)
type Classifier struct {
	p Params
}

// NewClassifier builds a Classifier from functional options.
func NewClassifier(opts ...Option) *Classifier {
	return &Classifier{p: newParams(opts)}
}

// split resolves the configured criterion names into the engine's
// built-in enum values and ExtraChecker adapters for user-registered
// criteria, preserving registry order when no subset was configured.
func (cl *Classifier) split() ([]check.Criterion, []check.ExtraChecker, error) {
	names := cl.p.Criteria
	if names == nil {
		names = Names()
	}
	var builtins []check.Criterion
	var extras []check.ExtraChecker
	for _, name := range names {
		if c, ok := builtinOf[name]; ok {
			builtins = append(builtins, c)
			continue
		}
		crit, ok := Lookup(name)
		if !ok {
			return nil, nil, fmt.Errorf("checker: unknown criterion %q (registered: %v)", name, Names())
		}
		fn := crit.Func
		p := cl.p
		extras = append(extras, check.ExtraChecker{
			Name: crit.Name,
			Fn: func(ctx context.Context, h *history.History, o check.Options) (bool, *check.Witness, error) {
				q := p
				q.Budget, q.Parallelism, q.stats = o.MaxNodes, o.Parallelism, o.Stats
				return fn(ctx, h, q)
			},
		})
	}
	if builtins == nil {
		// An explicit empty built-in set (extras only): the engine
		// treats nil Criteria as "all", so pin an empty, non-nil slice.
		builtins = []check.Criterion{}
	}
	return builtins, extras, nil
}

// Stream classifies a sequence of items through the engine's bounded
// worker pool, emitting one ItemResult per item as it completes. The
// output channel is unordered (use Item.Index to restore input order)
// and closes once every item is classified; the caller must close the
// input channel and drain the output. Cancelling ctx makes in-flight
// checks unwind within their poll interval, the remaining items
// flowing through with the context error in their results.
func (cl *Classifier) Stream(ctx context.Context, items <-chan Item) (<-chan ItemResult, error) {
	builtins, extras, err := cl.split()
	if err != nil {
		return nil, err
	}
	in := make(chan check.BatchItem)
	go func() {
		defer close(in)
		for it := range items {
			in <- check.BatchItem{Index: it.Index, Name: it.Name, H: it.H}
		}
	}()
	results := check.ClassifyAll(ctx, in, check.BatchOptions{
		Options:  cl.p.engine(),
		Workers:  cl.p.Workers,
		Timeout:  cl.p.Timeout,
		Criteria: builtins,
		Extra:    extras,
	})
	out := make(chan ItemResult)
	go func() {
		defer close(out)
		for r := range results {
			out <- convertBatchResult(r)
		}
	}()
	return out, nil
}

// Batch is Stream over a slice, returning results in input order
// (Item.Index is overwritten with the slice position).
func (cl *Classifier) Batch(ctx context.Context, items []Item) ([]ItemResult, error) {
	in := make(chan Item)
	out, err := cl.Stream(ctx, in)
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(in)
		for i, it := range items {
			it.Index = i
			in <- it
		}
	}()
	res := make([]ItemResult, len(items))
	for r := range out {
		res[r.Item.Index] = r
	}
	return res, nil
}

// Classify runs the configured criteria on a single history.
func (cl *Classifier) Classify(ctx context.Context, h *histories.History) (*ItemResult, error) {
	res, err := cl.Batch(ctx, []Item{{H: h}})
	if err != nil {
		return nil, err
	}
	return &res[0], nil
}

func convertBatchResult(r check.BatchResult) ItemResult {
	ir := ItemResult{
		Item:    Item{Index: r.Item.Index, Name: r.Item.Name, H: r.Item.H},
		Results: make(map[string]*Result, len(r.Outcomes)+len(r.ExtraOutcomes)),
	}
	for c, o := range r.Outcomes {
		ir.Results[c.String()] = outcomeResult(c.String(), o)
	}
	for name, o := range r.ExtraOutcomes {
		ir.Results[name] = outcomeResult(name, o)
	}
	for _, c := range check.AllCriteria {
		if r.Class[c] {
			ir.Profile = append(ir.Profile, c.String())
		}
	}
	for _, v := range r.LatticeViolations {
		ir.LatticeViolations = append(ir.LatticeViolations, [2]string{v[0].String(), v[1].String()})
	}
	return ir
}

// outcomeResult folds one engine outcome into the unified Result.
func outcomeResult(name string, o check.CriterionOutcome) *Result {
	res := &Result{
		Criterion: name,
		Satisfied: o.Satisfied,
		Explored:  o.Explored,
		Pruned:    o.Pruned,
		Elapsed:   o.Elapsed,
		Err:       o.Err,
	}
	switch {
	case o.TimedOut:
		res.Exhausted = CauseTimeout
	case o.BudgetExceeded:
		res.Exhausted = CauseBudget
	case errors.Is(o.Err, context.DeadlineExceeded):
		res.Exhausted = CauseTimeout
	case errors.Is(o.Err, context.Canceled):
		res.Exhausted = CauseCanceled
	}
	return res
}
