package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/client"
	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// newMonitoredCluster builds a CCv cluster whose monitor samples
// every object and whose windows only finalize at Close (WindowOps
// far above the traffic), so both per-op and batched runs submit
// identical complete windows.
func newMonitoredCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Shards:    2,
		Replicas:  3,
		Criterion: "CCv",
		BatchOps:  8,
		Monitor: cluster.MonitorConfig{
			SampleEvery: 1,
			WindowOps:   10_000,
			Timeout:     10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// verdictKey is the comparable part of a verdict: what was checked
// and what came out (timings and explored counts legitimately vary).
type verdictKey struct {
	Object    string
	Criterion string
	Satisfied bool
	Ops       int
	Sessions  int
}

func verdictKeys(t *testing.T, vs []wire.Verdict) []verdictKey {
	t.Helper()
	keys := make([]verdictKey, 0, len(vs))
	for _, v := range vs {
		if v.Err != "" || v.Exhausted != "" {
			t.Fatalf("verdict neither clean nor decided: %+v", v)
		}
		keys = append(keys, verdictKey{v.Object, v.Criterion, v.Satisfied, v.Ops, v.Sessions})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Object != keys[j].Object {
			return keys[i].Object < keys[j].Object
		}
		return keys[i].Criterion < keys[j].Criterion
	})
	return keys
}

// driveRegisters runs the deterministic per-session workload —
// session i owns register "reg-i" and alternates w(k)/r — and
// returns the observed read values per session. The workload and its
// expected outputs are identical whether cli batches or not.
func driveRegisters(t *testing.T, cli *client.Client, sessions, rounds int) [][]int {
	t.Helper()
	ctx := context.Background()
	got := make([][]int, sessions)
	var wg sync.WaitGroup
	for sess := 0; sess < sessions; sess++ {
		wg.Add(1)
		go func(sess int) {
			defer wg.Done()
			s := cli.Session(sess)
			name := fmt.Sprintf("reg-%d", sess)
			reg, err := s.Register(ctx, name)
			if err != nil {
				t.Errorf("session %d: %v", sess, err)
				return
			}
			for k := 1; k <= rounds; k++ {
				reg.WriteAsync(k) // pipelined under batching
				v, err := reg.Read(ctx)
				if err != nil {
					t.Errorf("session %d read: %v", sess, err)
					return
				}
				got[sess] = append(got[sess], v)
			}
		}(sess)
	}
	wg.Wait()
	return got
}

// TestBatchMatchesPerOp is the batch-semantics round trip: the same
// deterministic workload driven per-op and batched/pipelined must
// yield the same outputs (per-session ordering: every read observes
// the session's latest write) and the same monitor verdicts on
// identical complete windows.
func TestBatchMatchesPerOp(t *testing.T) {
	const sessions, rounds = 4, 25
	run := func(batched bool) ([][]int, []verdictKey) {
		c := newMonitoredCluster(t)
		var opts []client.Option
		if batched {
			opts = append(opts, client.WithBatching(16, 200*time.Microsecond))
		}
		cli, err := client.New(client.NewLoopback(c), opts...)
		if err != nil {
			t.Fatal(err)
		}
		got := driveRegisters(t, cli, sessions, rounds)
		if err := cli.Close(); err != nil {
			t.Fatal(err)
		}
		c.Close()
		sum := c.Monitor().Summary()
		if sum.Verdicts == 0 {
			t.Fatal("monitor produced no verdicts")
		}
		return got, verdictKeys(t, c.Monitor().Verdicts())
	}

	perOp, perOpVerdicts := run(false)
	batched, batchedVerdicts := run(true)

	for sess := 0; sess < sessions; sess++ {
		for k := 1; k <= rounds; k++ {
			if perOp[sess][k-1] != k {
				t.Fatalf("per-op: session %d read %d after writing %d", sess, perOp[sess][k-1], k)
			}
			if batched[sess][k-1] != k {
				t.Fatalf("batched: session %d read %d after writing %d", sess, batched[sess][k-1], k)
			}
		}
	}
	if len(perOpVerdicts) != len(batchedVerdicts) {
		t.Fatalf("verdict count differs: per-op %d, batched %d", len(perOpVerdicts), len(batchedVerdicts))
	}
	for i := range perOpVerdicts {
		if perOpVerdicts[i] != batchedVerdicts[i] {
			t.Fatalf("verdict %d differs:\nper-op  %+v\nbatched %+v", i, perOpVerdicts[i], batchedVerdicts[i])
		}
	}
	for _, v := range batchedVerdicts {
		if !v.Satisfied {
			t.Fatalf("batched run violated its criterion: %+v", v)
		}
		if v.Ops != 2*rounds || v.Sessions != 1 {
			t.Fatalf("window shape drifted: %+v", v)
		}
	}
}

// TestPipelinedSessionOrdering hammers one session with deeply
// pipelined async ops across many small batches: every read future
// must return the session's latest preceding write, proving program
// order survives batching across batch boundaries.
func TestPipelinedSessionOrdering(t *testing.T) {
	c := newMonitoredCluster(t)
	defer c.Close()
	cli, err := client.New(client.NewLoopback(c),
		client.WithBatching(4, 100*time.Microsecond), client.WithMaxInflight(8))
	if err != nil {
		t.Fatal(err)
	}
	s := cli.Session(1)
	if _, err := s.Object(context.Background(), "r", "Register"); err != nil {
		t.Fatal(err)
	}
	const n = 200
	reads := make([]*client.Future, 0, n)
	for i := 1; i <= n; i++ {
		s.CallAsync("r", "w", i)
		reads = append(reads, s.CallAsync("r", "r"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, f := range reads {
		out, err := f.Get(ctx)
		if err != nil {
			t.Fatalf("read %d: %v", i+1, err)
		}
		if !out.Equal(cc.IntOutput(i + 1)) {
			t.Fatalf("read %d returned %s, want %d", i+1, out.String(), i+1)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedObjectReadYourWrites drives one shared counter from many
// batched sessions concurrently: each session's read must be at least
// the sum of its own completed increments, and the monitor's CCv
// verdict on the shared window must be satisfied.
func TestSharedObjectReadYourWrites(t *testing.T) {
	c := newMonitoredCluster(t)
	cli, err := client.New(client.NewLoopback(c), client.WithBatching(32, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const sessions, rounds = 4, 10
	var wg sync.WaitGroup
	for sess := 0; sess < sessions; sess++ {
		wg.Add(1)
		go func(sess int) {
			defer wg.Done()
			s := cli.Session(sess)
			cnt, err := s.Counter(ctx, "shared")
			if err != nil {
				t.Errorf("session %d: %v", sess, err)
				return
			}
			mine := 0
			for i := 0; i < rounds; i++ {
				cnt.IncAsync(1)
				mine++
				got, err := cnt.Get(ctx)
				if err != nil {
					t.Errorf("session %d get: %v", sess, err)
					return
				}
				if got < mine {
					t.Errorf("session %d read %d below its own %d increments", sess, got, mine)
					return
				}
			}
		}(sess)
	}
	wg.Wait()
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	sum := c.Monitor().Summary()
	if sum.Verdicts == 0 {
		t.Fatal("monitor produced no verdicts")
	}
	if len(sum.Violations) > 0 {
		t.Fatalf("monitor violations under batching: %+v", sum.Violations)
	}
}

// TestHTTPTransportEndToEnd runs the SDK over real HTTP (httptest):
// typed handles, batching, typed errors, the protocol handshake and
// the NDJSON verdict stream.
func TestHTTPTransportEndToEnd(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Criterion: "CC",
		Replicas:  2,
		Monitor:   cluster.MonitorConfig{SampleEvery: 1, WindowOps: 6, Grace: 20 * time.Millisecond, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewHTTPHandler(c))
	defer srv.Close()
	defer c.Close()

	cli, err := client.New(client.NewHTTPTransport(srv.URL), client.WithBatching(8, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	h, err := cli.Health(ctx)
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Protocol != wire.ProtocolVersion || h.Criterion != "CC" {
		t.Fatalf("healthz = %+v", h)
	}

	s := cli.Session(1)
	cnt, err := s.Counter(ctx, "hits")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cnt.IncAsync(2)
	}
	n, err := cnt.Get(ctx)
	if err != nil || n != 12 {
		t.Fatalf("get = %d, %v; want 12", n, err)
	}

	q, err := s.Queue(ctx, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Push(ctx, 7); err != nil {
		t.Fatal(err)
	}
	v, ok, err := q.Pop(ctx)
	if err != nil || !ok || v != 7 {
		t.Fatalf("pop = %d, %v, %v; want 7", v, ok, err)
	}
	if _, ok, err := q.Pop(ctx); err != nil || ok {
		t.Fatalf("pop on empty = ok=%v err=%v", ok, err)
	}

	// Typed errors survive the wire.
	_, err = s.Call(ctx, "ghost", "get")
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeNotFound {
		t.Fatalf("ghost invoke error = %v, want wire.CodeNotFound", err)
	}
	if _, err := s.Object(ctx, "hits", "Register"); !errors.As(err, &we) || we.Code != wire.CodeConflict {
		t.Fatalf("conflicting create error = %v, want wire.CodeConflict", err)
	}
	if _, err := s.Call(ctx, "hits", "frobnicate"); !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("unknown method error = %v, want wire.CodeBadRequest", err)
	}

	// The stats round trip reports the traffic.
	st, err := cli.Stats(ctx)
	if err != nil || st.Invocations == 0 {
		t.Fatalf("stats = %+v, %v", st, err)
	}

	// The verdict stream replays and then follows live verdicts; the
	// 6-op window on "hits" has filled, so at least one verdict must
	// arrive without closing the cluster.
	streamCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	ch, err := cli.WatchVerdicts(streamCtx)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case v, ok := <-ch:
		if !ok {
			t.Fatal("verdict stream closed without a verdict")
		}
		if v.Object == "" || v.Criterion != "CC" {
			t.Fatalf("stream verdict = %+v", v)
		}
	case <-streamCtx.Done():
		t.Fatal("no verdict on the stream within the deadline")
	}
}

// TestReadAnyTarget pins the ReadAny contract: the read is served
// (possibly stale), and it leaves the session's monitored history —
// the sampled window holds only the affinity ops.
func TestReadAnyTarget(t *testing.T) {
	c := newMonitoredCluster(t)
	cli, err := client.New(client.NewLoopback(c))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s := cli.Session(3)
	reg, err := s.Register(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if err := reg.Write(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := reg.Read(ctx); err != nil || v != 3 {
		t.Fatalf("affinity read = %d, %v; want 3", v, err)
	}
	any := s.WithTarget(wire.ReadAny)
	for i := 0; i < 9; i++ {
		if _, err := any.Call(ctx, "r", "r"); err != nil {
			t.Fatalf("ReadAny read: %v", err)
		}
	}
	// An unknown target is rejected with a typed error.
	var we *wire.Error
	if _, err := s.WithTarget("bogus").Call(ctx, "r", "r"); !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("bogus target error = %v", err)
	}
	cli.Close()
	c.Close()
	vs := c.Monitor().Verdicts()
	if len(vs) == 0 {
		t.Fatal("no verdicts")
	}
	for _, v := range vs {
		if v.Ops != 4 { // 3 writes + 1 affinity read; the 9 ReadAny reads are excluded
			t.Fatalf("window ops = %d, want 4 (ReadAny reads must not be recorded): %+v", v.Ops, v)
		}
		if !v.Satisfied {
			t.Fatalf("violation: %+v", v)
		}
	}
}

// TestClientValidationAndClose pins option validation and the closed
// client's behavior.
func TestClientValidationAndClose(t *testing.T) {
	c, err := cluster.New(cluster.Config{Monitor: cluster.MonitorConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := client.New(client.NewLoopback(c), client.WithReadTarget("bogus")); err == nil {
		t.Fatal("bogus read target accepted")
	}
	if _, err := client.New(client.NewLoopback(c), client.WithBatching(0, time.Millisecond)); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := client.New(client.NewLoopback(c), client.WithMaxInflight(0)); err == nil {
		t.Fatal("zero inflight accepted")
	}
	cli, err := client.New(client.NewLoopback(c), client.WithBatching(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s := cli.Session(0)
	if _, err := s.Counter(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
	if _, err := s.Call(ctx, "x", "get"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("invoke after close = %v, want ErrClosed", err)
	}
	if _, err := s.CallAsync("x", "inc", 1).Get(ctx); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("async invoke after close = %v, want ErrClosed", err)
	}
}
