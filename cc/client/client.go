// Package client is the public SDK for the cc serving layer: a
// typed, session-oriented view of a cluster over the versioned wire
// protocol in cc/cluster/wire.
//
// A Client wraps a pluggable Transport — HTTP against a ccserved
// address, or an in-process loopback around a *cluster.Cluster — and
// hands out Session handles. A Session preserves the paper's
// per-process sequential discipline: its operations take effect in
// program order and its affinity reads observe its own completed
// updates. Independent sessions commute (Perrin et al.'s
// session-based causal model), which is exactly what the SDK's
// batching exploits: with WithBatching, asynchronous invocations from
// many sessions coalesce into pipelined POST /v1/batch round trips
// (size + delay flush, mirroring the server's own broadcast
// batching), while each session's ops stay ordered — a session never
// has ops in two in-flight batches at once.
//
//	tr := client.NewHTTPTransport("http://127.0.0.1:8344")
//	cli, err := client.New(tr, client.WithBatching(64, 500*time.Microsecond))
//	sess := cli.Session(7)
//	cnt, err := sess.Counter(ctx, "cart:1")
//	fut := cnt.IncAsync(1)              // pipelined
//	n, err := cnt.Get(ctx)              // read-your-writes
//	out, err := fut.Get(ctx)
//
// Per-request consistency targets (Pileus-style) ride on every read:
// the default wire.ReadAffinity keeps the session contract, while
// sess.WithTarget(wire.ReadAny) trades read-your-writes for load
// spread across the shard's replicas.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/cc/sla"
)

// ErrClosed reports an operation submitted after Client.Close.
var ErrClosed = errors.New("client: closed")

// config collects the options New accepts.
type config struct {
	batchOps    int
	batchDelay  time.Duration
	maxInflight int
	target      wire.ReadTarget
	heal        healConfig
	sla         sla.SLA
	slaRouter   sla.Router
}

// Option configures a Client.
type Option func(*config)

// WithBatching turns on client-side batching: asynchronous
// invocations queue until maxOps are pending or maxDelay has passed
// since the first, then flush as one POST /v1/batch. Up to
// WithMaxInflight batches pipeline concurrently; a session's ops
// never span two in-flight batches (program order). Without this
// option every invocation is its own round trip.
func WithBatching(maxOps int, maxDelay time.Duration) Option {
	return func(c *config) {
		c.batchOps = maxOps
		c.batchDelay = maxDelay
	}
}

// WithMaxInflight bounds the number of concurrently in-flight batch
// requests (default 4). Only meaningful with WithBatching.
func WithMaxInflight(n int) Option {
	return func(c *config) { c.maxInflight = n }
}

// WithReadTarget sets the default read target of every session
// (default wire.ReadAffinity). Sessions override per-handle with
// Session.WithTarget.
func WithReadTarget(t wire.ReadTarget) Option {
	return func(c *config) { c.target = t }
}

// Client is a handle on one cluster through one transport. All
// methods are safe for concurrent use; per-session sequentiality is
// the Session's contract, not the Client's.
type Client struct {
	tr     Transport
	target wire.ReadTarget
	batch  *batcher // nil when batching is disabled

	// Self-healing state (see selfheal.go): per-session failover pins
	// and causal frontiers, per-replica circuit breakers, and the
	// learned replica count for rotation. All no-ops when no
	// self-healing option is set.
	heal     healConfig
	replicas atomic.Int32
	// Consistency-SLA state (see sla.go): the per-replica condition
	// tracker, delivered-verdict counters, and the object → ADT cache
	// that classifies reads. defSLA/defRouter seed new sessions.
	sla       *slaState
	defSLA    sla.SLA
	defRouter sla.Router
	adts      sync.Map // object name → cc.ADT
	// ringEpoch caches the server's ring epoch once Ring has been
	// called (0 = never fetched: requests carry no epoch and the server
	// serves them unconditionally). Requests echo it so the server can
	// answer CodeStaleRing when the topology moves on; the retry path
	// then refreshes the ring and re-attempts transparently.
	ringEpoch atomic.Int64
	healMu    sync.Mutex
	sessHeal  map[int]*healState
	breakers  map[int]*breaker
	met       metCounters

	mu     sync.Mutex
	seq    map[int]*seqState // per-session FIFO for unbatched async ops
	closed bool
}

// New builds a client over the transport.
func New(tr Transport, opts ...Option) (*Client, error) {
	cfg := config{maxInflight: 4, target: wire.ReadAffinity}
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.target.Valid() {
		return nil, fmt.Errorf("client: unknown read target %q", cfg.target)
	}
	if cfg.maxInflight < 1 {
		return nil, fmt.Errorf("client: max inflight must be at least 1, got %d", cfg.maxInflight)
	}
	if cfg.sla != nil {
		if err := cfg.sla.Validate(); err != nil {
			return nil, err
		}
	}
	c := &Client{
		tr:        tr,
		target:    cfg.target,
		heal:      cfg.heal,
		sla:       newSLAState(),
		defSLA:    cfg.sla,
		defRouter: cfg.slaRouter,
		seq:       make(map[int]*seqState),
		sessHeal:  make(map[int]*healState),
		breakers:  make(map[int]*breaker),
	}
	if cfg.batchOps != 0 || cfg.batchDelay != 0 {
		if cfg.batchOps < 1 {
			return nil, fmt.Errorf("client: batch size must be at least 1, got %d", cfg.batchOps)
		}
		if cfg.batchDelay <= 0 {
			cfg.batchDelay = 500 * time.Microsecond
		}
		c.batch = newBatcher(tr, cfg.batchOps, cfg.batchDelay, cfg.maxInflight)
		c.batch.cli = c
	}
	return c, nil
}

// Close flushes and drains any pending batches, then closes the
// transport. Operations submitted after Close fail with ErrClosed;
// operations already submitted complete.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.batch != nil {
		c.batch.close()
	}
	return c.tr.Close()
}

// Session opens the sequential client view for a session id. All
// operations through one session id — across however many Session
// values share it — must come from one logical sequential client;
// give each concurrent actor its own id.
func (c *Client) Session(id int) *Session {
	return &Session{c: c, id: id, target: c.target, sla: c.defSLA, slaRouter: c.defRouter}
}

// CreateObject registers a named object of a registered ADT
// ("Counter", "Register", "W2^4", ...); idempotent when the ADT
// matches.
func (c *Client) CreateObject(ctx context.Context, name, adtName string) error {
	if err := c.tr.CreateObject(ctx, &wire.CreateObjectRequest{Name: name, ADT: adtName}); err != nil {
		return err
	}
	c.rememberADT(name, adtName)
	return nil
}

// Health checks the server and verifies it speaks this SDK's
// protocol version (the response is returned even on mismatch).
func (c *Client) Health(ctx context.Context) (*wire.HealthzResponse, error) {
	h, err := c.tr.Healthz(ctx)
	if err != nil {
		return nil, err
	}
	return h, protocolCheck(h)
}

// Ring fetches the server's consistent-hash ring description —
// topology, per-shard loads, current epoch — and caches the epoch:
// from then on the client's requests carry it, so a topology change
// (shard added or drained) surfaces as a stale-ring redirect that the
// retry machinery answers with a refresh instead of the client
// silently routing on a dead view.
func (c *Client) Ring(ctx context.Context) (*wire.RingResponse, error) {
	r, err := c.tr.Ring(ctx)
	if err != nil {
		return nil, err
	}
	c.ringEpoch.Store(r.Epoch)
	return r, nil
}

// refreshRing re-learns the ring after a stale-ring redirect. If the
// fetch fails the cached epoch resets to 0 — serve unconditionally —
// so the client degrades to epoch-less requests rather than wedging
// on a topology it can no longer describe.
func (c *Client) refreshRing(ctx context.Context) {
	r, err := c.tr.Ring(ctx)
	if err != nil {
		c.ringEpoch.Store(0)
		return
	}
	c.ringEpoch.Store(r.Epoch)
}

// Stats snapshots the cluster's activity counters.
func (c *Client) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	return c.tr.Stats(ctx)
}

// MonitorSummary fetches the online monitor's aggregate summary.
func (c *Client) MonitorSummary(ctx context.Context) (*wire.MonitorSummary, error) {
	resp, err := c.tr.Monitor(ctx, false)
	if err != nil {
		return nil, err
	}
	return &resp.Summary, nil
}

// MonitorVerdicts fetches every verdict the monitor has produced.
func (c *Client) MonitorVerdicts(ctx context.Context) ([]wire.Verdict, error) {
	resp, err := c.tr.Monitor(ctx, true)
	if err != nil {
		return nil, err
	}
	return resp.Verdicts, nil
}

// WatchVerdicts streams monitor verdicts (NDJSON over HTTP, a direct
// subscription on loopback): every verdict so far, then new ones
// live. The channel closes when ctx is cancelled or the server's
// monitor closes.
func (c *Client) WatchVerdicts(ctx context.Context) (<-chan wire.Verdict, error) {
	return c.tr.MonitorStream(ctx)
}

// CrashReplica crash-stops one replica of one shard (crash testing is
// the point; there is no heal).
func (c *Client) CrashReplica(ctx context.Context, shard, replica int) error {
	return c.tr.Crash(ctx, &wire.CrashRequest{Shard: shard, Replica: replica})
}

// seqState orders one session's unbatched asynchronous invocations:
// each op chains on the previous op's completion channel, so
// submission order is execution order even though each op runs in its
// own goroutine. The chain is guarded by Client.mu (lookup and tail
// swap must be atomic, or a concurrent eviction could fork the
// chain).
type seqState struct {
	tail chan struct{}
}

// seqPush appends one op to the session's FIFO chain, returning the
// channel it must wait on (nil when it is the chain head) and its own
// completion channel.
func (c *Client) seqPush(id int) (prev, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.seq[id]
	if !ok {
		st = &seqState{}
		c.seq[id] = st
	}
	prev = st.tail
	done = make(chan struct{})
	st.tail = done
	return prev, done
}

// seqDrained drops the session's chain state when the op that just
// finished is still the tail — otherwise the map grows by one dead
// seqState per session id ever used.
func (c *Client) seqDrained(id int, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.seq[id]; ok && st.tail == done {
		delete(c.seq, id)
	}
}

// Session is one client's sequential view of the cluster, pinned to a
// session id. Sessions are cheap; open one per client goroutine. The
// zero read target is the client's default.
type Session struct {
	c      *Client
	id     int
	target wire.ReadTarget
	// Consistency SLA (nil = none): pure-query invocations are routed
	// adaptively under it (see sla.go). slaRouter nil = sla.MaxUtility.
	sla       sla.SLA
	slaRouter sla.Router
}

// ID returns the session id.
func (s *Session) ID() int { return s.id }

// Target returns the session's read target.
func (s *Session) Target() wire.ReadTarget { return s.target }

// WithTarget derives a view of the same session whose reads use the
// given target (Pileus-style per-request consistency): the derived
// handle shares the session id and its program order, only the
// routing of its queries changes.
func (s *Session) WithTarget(t wire.ReadTarget) *Session {
	d := *s
	d.target = t
	return &d
}

// Invoke executes one operation and waits for its result — exactly
// InvokeAsync followed by Get, so it takes its place in the session's
// submission order behind any pending async ops. ctx bounds the wait,
// not the operation (see Future.Get). With batching enabled the op
// rides a batch (the delay flush bounds the wait); without, it is one
// round trip behind the session's earlier async ops.
func (s *Session) Invoke(ctx context.Context, object string, in cc.Input) (cc.Output, error) {
	return s.InvokeAsync(object, in).Get(ctx)
}

// Call is Invoke with the method/args convenience.
func (s *Session) Call(ctx context.Context, object, method string, args ...int) (cc.Output, error) {
	return s.Invoke(ctx, object, cc.NewInput(method, args...))
}

// InvokeAsync submits one operation and returns its Future
// immediately. Ops submitted through one session execute in
// submission order; ops of independent sessions pipeline freely. With
// batching enabled the op coalesces into the next batch flush;
// without, it runs as its own round trip behind the session's earlier
// async ops.
func (s *Session) InvokeAsync(object string, in cc.Input) *Future {
	f := newFuture()
	if err := s.c.checkOpen(); err != nil {
		f.reject(err)
		return f
	}
	sc := s.slaStart(object, in)
	if b := s.c.batch; b != nil {
		op := batchOp{obj: object, in: in, target: s.wireTarget(), fut: f, sc: sc}
		if sc != nil {
			op.target, op.readRep = s.c.slaPlan(s.id, sc)
		}
		b.enqueue(s.id, op)
		return f
	}
	prev, done := s.c.seqPush(s.id)
	go func() {
		if prev != nil {
			<-prev
		}
		start := time.Now()
		resp, err := s.c.invokeHealed(context.Background(), s.id, &wire.InvokeRequest{
			Session: s.id, Object: object, Method: in.Method, Args: in.Args, Target: s.wireTarget(),
		}, sc)
		if sc != nil {
			s.c.slaObserve(sc, resp, time.Since(start), err)
		}
		if err != nil {
			f.reject(err)
		} else {
			f.resolve(outputFromWire(resp))
		}
		close(done)
		s.c.seqDrained(s.id, done)
	}()
	return f
}

// CallAsync is InvokeAsync with the method/args convenience.
func (s *Session) CallAsync(object, method string, args ...int) *Future {
	return s.InvokeAsync(object, cc.NewInput(method, args...))
}

// wireTarget renders the session target for the wire (affinity, the
// default, travels as the empty string).
func (s *Session) wireTarget() wire.ReadTarget {
	if s.target == wire.ReadAffinity {
		return ""
	}
	return s.target
}

func (c *Client) checkOpen() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return nil
}

// Future is the pending result of an asynchronous invocation.
type Future struct {
	done chan struct{}
	out  cc.Output
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) resolve(out cc.Output) {
	f.out = out
	close(f.done)
}

func (f *Future) reject(err error) {
	f.err = err
	close(f.done)
}

// Get waits for the result. A context cancellation abandons the wait,
// not the operation — the op may still execute (it is already on the
// wire).
func (f *Future) Get(ctx context.Context) (cc.Output, error) {
	select {
	case <-f.done:
		return f.out, f.err
	case <-ctx.Done():
		return cc.Output{}, ctx.Err()
	}
}

// Done is closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// outputFromWire decodes one wire result into the spec model.
func outputFromWire(r *wire.InvokeResponse) cc.Output {
	if r == nil || r.Bot {
		return cc.Bot
	}
	return cc.TupleOutput(r.Vals...)
}
