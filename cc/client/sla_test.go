package client_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc/client"
	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/cc/sla"
)

func testSLA(t *testing.T) sla.SLA {
	t.Helper()
	s, err := sla.Parse("rmw@5ms=1,bounded:100ms@2ms=0.5,eventual=0.1")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newSkewedCluster builds the acceptance topology: one shard, three
// replicas, the session's home replica slow (20ms serving delay) and
// replica 0 fast.
func newSkewedCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Shards: 1, Replicas: 3, Criterion: "CCv", BatchOps: 1,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.CreateObject("cnt", "Counter"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2} {
		if err := c.SetReplicaDelay(r, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// runSLAPhase drives one client phase against the cluster: a couple of
// writes, then reads, returning the client's SLA metrics.
func runSLAPhase(t *testing.T, c *cluster.Cluster, router sla.Router, reads int, opts ...client.Option) client.SLAMetrics {
	t.Helper()
	cli, err := client.New(client.NewLoopback(c), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	if err := cli.CreateObject(ctx, "cnt", "Counter"); err != nil {
		t.Fatal(err)
	}
	s := cli.Session(1).WithSLA(testSLA(t)) // home replica 1: slow
	if router != nil {
		s = s.WithSLARouter(router)
	}
	if _, err := s.Call(ctx, "cnt", "inc", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reads; i++ {
		if _, err := s.Call(ctx, "cnt", "get"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	return cli.Metrics().SLA
}

// TestSLAAdaptiveRoutingLoopback is the subsystem's acceptance check
// in miniature: on a skewed topology (fast replica 0, slow affinity),
// the adaptive router steers the overwhelming majority of reads to the
// fast replica while the replicas stay fresh, and beats both static
// baselines on mean delivered utility.
func TestSLAAdaptiveRoutingLoopback(t *testing.T) {
	for _, batched := range []bool{false, true} {
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			c := newSkewedCluster(t)
			var opts []client.Option
			if batched {
				opts = append(opts, client.WithBatching(8, 200*time.Microsecond))
			}
			const reads = 30
			adaptive := runSLAPhase(t, c, nil, reads, opts...)
			if adaptive.Reads != reads {
				t.Fatalf("SLA reads = %d, want %d", adaptive.Reads, reads)
			}
			if got := adaptive.ByReplica[0]; got < reads*8/10 {
				t.Errorf("fast replica served %d/%d SLA reads, want >= 80%%: %+v",
					got, reads, adaptive.ByReplica)
			}
			affinity := runSLAPhase(t, c, sla.StaticAffinity{}, reads, opts...)
			anyRep := runSLAPhase(t, c, sla.StaticAny{}, reads, opts...)
			if adaptive.MeanUtility <= affinity.MeanUtility {
				t.Errorf("adaptive utility %v <= static-affinity %v",
					adaptive.MeanUtility, affinity.MeanUtility)
			}
			if adaptive.MeanUtility <= anyRep.MeanUtility {
				t.Errorf("adaptive utility %v <= static-any %v",
					adaptive.MeanUtility, anyRep.MeanUtility)
			}
		})
	}
}

// TestSLADowngradeRecordsMisses pins the delivered-verdict accounting:
// when the fast replica is partitioned away and falls behind the
// staleness bound, reads that still promised bounded consistency are
// recorded as misses, and the tracker's staleness estimate for the
// partitioned replica grows past the bound so the router stops
// choosing it.
func TestSLADowngradeRecordsMisses(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 1, Replicas: 3, Criterion: "CCv", BatchOps: 1,
		Replication: "antientropy", GossipInterval: 2 * time.Millisecond,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.CreateObject("cnt", "Counter"); err != nil {
		t.Fatal(err)
	}
	// Slow affinity, fast replica 0 — the router wants replica 0.
	for _, r := range []int{1, 2} {
		if err := c.SetReplicaDelay(r, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	cli, err := client.New(client.NewLoopback(c))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	if err := cli.CreateObject(ctx, "cnt", "Counter"); err != nil {
		t.Fatal(err)
	}
	slaSpec, err := sla.Parse("rmw@5ms=1,bounded:30ms@2ms=0.5,eventual=0.1")
	if err != nil {
		t.Fatal(err)
	}
	s := cli.Session(1).WithSLA(slaSpec)
	// Teach the tracker the topology: writes land at the slow affinity,
	// a few reads migrate to the fast replica 0.
	if _, err := s.Call(ctx, "cnt", "inc", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Call(ctx, "cnt", "get"); err != nil {
			t.Fatal(err)
		}
	}
	// Cut replica 0 off and keep writing: its high-water vector
	// freezes while the session's known-freshest view advances.
	if err := c.PartitionReplicas(0, [][]int{{1, 2}, {0}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Call(ctx, "cnt", "inc", 1); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
		if _, err := s.Call(ctx, "cnt", "get"); err != nil {
			t.Fatal(err)
		}
	}
	m := cli.Metrics().SLA
	if m.Misses < 1 {
		t.Errorf("no downgrade verdicts recorded under partition: %+v", m)
	}
	// The tracker now prices replica 0 beyond the bound.
	var c0 sla.Condition
	for _, cd := range m.Conditions {
		if cd.Replica == 0 {
			c0 = cd
		}
	}
	if !c0.StalenessKnown || c0.Staleness <= 30*time.Millisecond {
		t.Errorf("partitioned replica staleness = %+v, want > 30ms", c0)
	}
}

// TestWeakReadsPreserveRYWAcrossFailover interleaves weak reads with
// a crash-driven failover re-attachment: the weak reads (ReadAny and
// SLA bounded) must not corrupt the session's accumulated frontier —
// the next affinity read after the move still observes the session's
// own writes.
func TestWeakReadsPreserveRYWAcrossFailover(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Criterion: "CC",
		Replicas:  3,
		Resync:    true,
		Monitor:   cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := client.New(client.NewLoopback(c),
		client.WithRetry(6, time.Millisecond, 20*time.Millisecond),
		client.WithFailover())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	if err := cli.CreateObject(ctx, "reg", "Register"); err != nil {
		t.Fatal(err)
	}
	s := cli.Session(1) // home replica 1
	weak := s.WithTarget(wire.ReadAny)
	slaSess := s.WithSLA(testSLA(t))
	if _, err := s.Call(ctx, "reg", "w", 7); err != nil {
		t.Fatal(err)
	}
	// Weak reads before the crash: routed anywhere, no session pin.
	if _, err := weak.Call(ctx, "reg", "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := slaSess.Call(ctx, "reg", "r"); err != nil {
		t.Fatal(err)
	}
	if err := c.StopReplica(cluster.AllShards, 1); err != nil {
		t.Fatal(err)
	}
	// The write rides failover to a live replica; weak reads in the
	// middle of the re-attachment must not regress the frontier.
	if _, err := s.Call(ctx, "reg", "w", 8); err != nil {
		t.Fatalf("write during crash failed: %v", err)
	}
	if _, err := weak.Call(ctx, "reg", "r"); err != nil {
		t.Fatal(err)
	}
	if _, err := slaSess.Call(ctx, "reg", "r"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Call(ctx, "reg", "r")
	if err != nil {
		t.Fatalf("affinity read during crash failed: %v", err)
	}
	if len(out.Vals) != 1 || out.Vals[0] != 8 {
		t.Fatalf("read-your-writes after weak reads + failover: got %+v, want [8]", out)
	}
	if m := cli.Metrics(); m.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", m.Failovers)
	}
}

// TestWeakReadsPreserveRYWAcrossRingRefresh scripts a stale-ring
// redirect in the middle of a pinned session's weak reads: the retry
// refreshes the ring, and the next affinity read still re-attaches the
// session's accumulated causal frontier (nothing about the refresh may
// drop it).
func TestWeakReadsPreserveRYWAcrossRingRefresh(t *testing.T) {
	var lastFrontiers []wire.ShardFrontier
	ft := &fakeTransport{replicas: 3}
	ft.steps = []func(*wire.InvokeRequest) (*wire.InvokeResponse, error){
		// Update succeeds on the default replica, echoing a frontier.
		func(*wire.InvokeRequest) (*wire.InvokeResponse, error) {
			return &wire.InvokeResponse{Output: "ok", Frontier: &wire.ShardFrontier{Shard: 0, VC: []int{0, 3, 0}}}, nil
		},
		// Next op fails: the session's replica crashed → failover pin.
		unavailable,
		// Retried on the rotated replica.
		func(*wire.InvokeRequest) (*wire.InvokeResponse, error) {
			return &wire.InvokeResponse{Output: "ok", Frontier: &wire.ShardFrontier{Shard: 0, VC: []int{0, 3, 1}}}, nil
		},
		// A weak read bounces off a topology change...
		func(*wire.InvokeRequest) (*wire.InvokeResponse, error) {
			return nil, wire.Errf(wire.CodeStaleRing, "fake: ring moved")
		},
		// ...and succeeds after the refresh.
		func(req *wire.InvokeRequest) (*wire.InvokeResponse, error) {
			if req.Target != wire.ReadAny {
				return nil, fmt.Errorf("weak read retried with target %q, want any", req.Target)
			}
			return &wire.InvokeResponse{Output: "ok"}, nil
		},
		// The affinity read after all of it must still carry the
		// accumulated frontier for its pinned replica.
		func(req *wire.InvokeRequest) (*wire.InvokeResponse, error) {
			lastFrontiers = append([]wire.ShardFrontier(nil), req.Frontiers...)
			return &wire.InvokeResponse{Output: "ok"}, nil
		},
	}
	cli, err := client.New(ft,
		client.WithRetry(4, time.Millisecond, 2*time.Millisecond),
		client.WithFailover())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	s := cli.Session(1)
	if _, err := s.Call(ctx, "o", "w", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(ctx, "o", "w", 4); err != nil {
		t.Fatalf("failover write failed: %v", err)
	}
	if _, err := s.WithTarget(wire.ReadAny).Call(ctx, "o", "r"); err != nil {
		t.Fatalf("weak read across stale ring failed: %v", err)
	}
	if _, err := s.Call(ctx, "o", "r"); err != nil {
		t.Fatal(err)
	}
	ft.mu.Lock()
	rings := ft.ringCalls
	ft.mu.Unlock()
	if rings < 1 {
		t.Errorf("stale-ring redirect did not refresh the ring")
	}
	if len(lastFrontiers) != 1 || lastFrontiers[0].Shard != 0 {
		t.Fatalf("affinity read carried frontiers %+v, want the shard-0 frontier", lastFrontiers)
	}
	if vc := lastFrontiers[0].VC; len(vc) != 3 || vc[1] != 3 || vc[2] != 1 {
		t.Fatalf("re-attached VC = %v, want [0 3 1]", vc)
	}
}

// TestSLARejectsInvalid pins option validation: a malformed SLA fails
// client construction instead of failing reads later.
func TestSLARejectsInvalid(t *testing.T) {
	_, err := client.New(&fakeTransport{}, client.WithSLA(sla.SLA{{Consistency: "strong", Utility: 1}}))
	if err == nil {
		t.Fatal("invalid SLA accepted")
	}
}
