package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc/client"
	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// fakeTransport scripts the server side of the self-healing tests:
// each Invoke is answered by the next step function, which sees the
// request the healing layer actually built (replica pin, frontiers).
type fakeTransport struct {
	mu        sync.Mutex
	steps     []func(*wire.InvokeRequest) (*wire.InvokeResponse, error)
	calls     int
	pins      []*int // req.Replica per call, copied
	replicas  int    // Healthz topology
	ringCalls int    // Ring fetches (stale-ring refresh probe)
}

func (f *fakeTransport) Invoke(_ context.Context, req *wire.InvokeRequest) (*wire.InvokeResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.calls
	f.calls++
	if req.Replica != nil {
		r := *req.Replica
		f.pins = append(f.pins, &r)
	} else {
		f.pins = append(f.pins, nil)
	}
	if i < len(f.steps) {
		return f.steps[i](req)
	}
	return &wire.InvokeResponse{Output: "ok"}, nil
}

func (f *fakeTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeTransport) Healthz(context.Context) (*wire.HealthzResponse, error) {
	return &wire.HealthzResponse{OK: true, Replicas: f.replicas}, nil
}

func (f *fakeTransport) CreateObject(context.Context, *wire.CreateObjectRequest) error { return nil }
func (f *fakeTransport) Batch(context.Context, *wire.BatchRequest) (*wire.BatchResponse, error) {
	return nil, errors.New("fake: no batch")
}
func (f *fakeTransport) Crash(context.Context, *wire.CrashRequest) error { return nil }
func (f *fakeTransport) Staleness(context.Context) (*wire.StalenessResponse, error) {
	return &wire.StalenessResponse{Protocol: wire.ProtocolVersion}, nil
}
func (f *fakeTransport) Fault(context.Context, *wire.FaultRequest) error { return nil }
func (f *fakeTransport) Ring(context.Context) (*wire.RingResponse, error) {
	f.mu.Lock()
	f.ringCalls++
	f.mu.Unlock()
	return &wire.RingResponse{Epoch: 1, Protocol: wire.ProtocolVersion}, nil
}
func (f *fakeTransport) Stats(context.Context) (*wire.StatsResponse, error) {
	return &wire.StatsResponse{}, nil
}
func (f *fakeTransport) Monitor(context.Context, bool) (*wire.MonitorResponse, error) {
	return &wire.MonitorResponse{}, nil
}
func (f *fakeTransport) MonitorStream(context.Context) (<-chan wire.Verdict, error) {
	ch := make(chan wire.Verdict)
	close(ch)
	return ch, nil
}
func (f *fakeTransport) Readyz(context.Context) (*wire.ReadyzResponse, error) {
	return &wire.ReadyzResponse{Ready: true}, nil
}
func (f *fakeTransport) Close() error { return nil }

func unavailable(*wire.InvokeRequest) (*wire.InvokeResponse, error) {
	return nil, wire.Errf(wire.CodeUnavailable, "fake: replica down")
}

// TestRetryTransientFailure pins the bounded-retry contract: both a
// typed unavailable error and a raw transport error are retried with
// backoff, the op succeeds within its attempt budget, and the retry
// counter records exactly the re-attempts.
func TestRetryTransientFailure(t *testing.T) {
	ft := &fakeTransport{
		steps: []func(*wire.InvokeRequest) (*wire.InvokeResponse, error){
			unavailable,
			func(*wire.InvokeRequest) (*wire.InvokeResponse, error) {
				return nil, errors.New("connection reset") // transport-level
			},
		},
	}
	cli, err := client.New(ft, client.WithRetry(4, time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Session(0).Call(context.Background(), "o", "inc", 1); err != nil {
		t.Fatalf("op failed despite retry budget: %v", err)
	}
	if got := ft.count(); got != 3 {
		t.Fatalf("transport saw %d calls, want 3", got)
	}
	if m := cli.Metrics(); m.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", m.Retries)
	}
}

// TestRetryBudgetExhausted pins the failure side: a persistently
// unavailable server fails the op with the last typed error after
// exactly maxAttempts calls.
func TestRetryBudgetExhausted(t *testing.T) {
	ft := &fakeTransport{steps: []func(*wire.InvokeRequest) (*wire.InvokeResponse, error){
		unavailable, unavailable, unavailable,
	}}
	cli, err := client.New(ft, client.WithRetry(3, time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, callErr := cli.Session(0).Call(context.Background(), "o", "inc", 1)
	var werr *wire.Error
	if !errors.As(callErr, &werr) || werr.Code != wire.CodeUnavailable {
		t.Fatalf("want typed unavailable, got %v", callErr)
	}
	if got := ft.count(); got != 3 {
		t.Fatalf("transport saw %d calls, want 3", got)
	}
}

// TestFailoverRotatesAndCarriesFrontier pins the failover semantics:
// after a replica failure the session re-attaches to the next replica
// (round-robin over the healthz topology) and re-sends its
// accumulated causal frontier, so read-your-writes survives the move.
func TestFailoverRotatesAndCarriesFrontier(t *testing.T) {
	var gotFrontiers []wire.ShardFrontier
	ft := &fakeTransport{replicas: 3}
	ft.steps = []func(*wire.InvokeRequest) (*wire.InvokeResponse, error){
		// Call 1 (update) succeeds on the default replica, echoing a
		// frontier.
		func(*wire.InvokeRequest) (*wire.InvokeResponse, error) {
			return &wire.InvokeResponse{Output: "ok", Frontier: &wire.ShardFrontier{Shard: 0, VC: []int{5, 0, 0}}}, nil
		},
		// Call 2 attempt 1 fails: session 1's replica crashed.
		unavailable,
		// Call 2 attempt 2 lands on the rotated replica and must carry
		// the frontier from call 1.
		func(req *wire.InvokeRequest) (*wire.InvokeResponse, error) {
			gotFrontiers = append([]wire.ShardFrontier(nil), req.Frontiers...)
			return &wire.InvokeResponse{Output: "ok", Frontier: &wire.ShardFrontier{Shard: 0, VC: []int{5, 2, 0}}}, nil
		},
	}
	cli, err := client.New(ft,
		client.WithRetry(4, time.Millisecond, 2*time.Millisecond),
		client.WithFailover())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	s := cli.Session(1)
	if _, err := s.Call(context.Background(), "o", "w", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(context.Background(), "o", "w", 6); err != nil {
		t.Fatalf("op failed despite failover: %v", err)
	}
	m := cli.Metrics()
	if m.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", m.Failovers)
	}
	if m.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", m.Retries)
	}
	// The rotated attempt was pinned away from the default replica 1.
	last := ft.pins[len(ft.pins)-1]
	if last == nil || *last == 1 {
		t.Fatalf("last call's replica pin = %v, want an explicit non-1 pin", last)
	}
	if len(gotFrontiers) != 1 || gotFrontiers[0].Shard != 0 {
		t.Fatalf("rotated attempt carried frontiers %+v, want the shard-0 frontier", gotFrontiers)
	}
	if got := gotFrontiers[0].VC; len(got) != 3 || got[0] != 5 {
		t.Fatalf("re-attached VC = %v, want [5 0 0]", got)
	}
}

// TestBreakerFastFailAndProbe pins the circuit breaker: threshold
// consecutive failures open it, further ops fail fast without a
// transport call, and after the cooldown one probe closes it again.
func TestBreakerFastFailAndProbe(t *testing.T) {
	ft := &fakeTransport{replicas: 1} // one replica: failover cannot rotate
	ft.steps = []func(*wire.InvokeRequest) (*wire.InvokeResponse, error){
		unavailable, unavailable, // trip the breaker (threshold 2)
	}
	cli, err := client.New(ft,
		client.WithFailover(), // teaches the topology on failure
		client.WithBreaker(2, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	s := cli.Session(0)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := s.Call(ctx, "o", "inc", 1); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if got := ft.count(); got != 2 {
		t.Fatalf("transport saw %d calls before trip, want 2", got)
	}
	// Open: the next op must fail fast, without touching the wire.
	_, fastErr := s.Call(ctx, "o", "inc", 1)
	var werr *wire.Error
	if !errors.As(fastErr, &werr) || werr.Code != wire.CodeUnavailable {
		t.Fatalf("fast-fail error = %v, want typed unavailable", fastErr)
	}
	if got := ft.count(); got != 2 {
		t.Fatalf("open breaker let a call through: %d transport calls", got)
	}
	m := cli.Metrics()
	if m.BreakerOpens != 1 || m.BreakerFastFails < 1 {
		t.Fatalf("BreakerOpens = %d, BreakerFastFails = %d; want 1, >=1", m.BreakerOpens, m.BreakerFastFails)
	}
	// Cooldown elapses: the probe goes through (script exhausted →
	// success) and closes the breaker for the op after it.
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := s.Call(ctx, "o", "inc", 1); err != nil {
			t.Fatalf("post-cooldown call %d failed: %v", i, err)
		}
	}
	if got := ft.count(); got != 4 {
		t.Fatalf("transport saw %d calls after probe, want 4", got)
	}
}

// TestSelfHealingLoopback is the end-to-end check over a real
// cluster: a session whose home replica crash-stops keeps operating
// (retry + failover), read-your-writes holds across the move, and the
// restarted replica converges back.
func TestSelfHealingLoopback(t *testing.T) {
	for _, batched := range []bool{false, true} {
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			c, err := cluster.New(cluster.Config{
				Criterion: "CC",
				Replicas:  3,
				Resync:    true,
				Monitor:   cluster.MonitorConfig{Disable: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			opts := []client.Option{
				client.WithRetry(6, time.Millisecond, 20*time.Millisecond),
				client.WithFailover(),
				client.WithBreaker(4, 200*time.Millisecond),
			}
			if batched {
				opts = append(opts, client.WithBatching(8, 200*time.Microsecond))
			}
			cli, err := client.New(client.NewLoopback(c), opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			ctx := context.Background()
			if err := cli.CreateObject(ctx, "reg", "Register"); err != nil {
				t.Fatal(err)
			}
			s := cli.Session(1) // home replica 1
			if _, err := s.Call(ctx, "reg", "w", 7); err != nil {
				t.Fatal(err)
			}
			if err := c.StopReplica(cluster.AllShards, 1); err != nil {
				t.Fatal(err)
			}
			// The write rides retry+failover to a live replica; the read
			// must still observe it there (frontier re-attach).
			if _, err := s.Call(ctx, "reg", "w", 8); err != nil {
				t.Fatalf("write during crash failed: %v", err)
			}
			out, err := s.Call(ctx, "reg", "r")
			if err != nil {
				t.Fatalf("read during crash failed: %v", err)
			}
			if len(out.Vals) != 1 || out.Vals[0] != 8 {
				t.Fatalf("read-your-writes across failover: got %+v, want [8]", out)
			}
			if m := cli.Metrics(); m.Failovers < 1 {
				t.Fatalf("Failovers = %d, want >= 1 (metrics %+v)", m.Failovers, m)
			}
			if err := c.RestartReplica(cluster.AllShards, 1); err != nil {
				t.Fatal(err)
			}
			if err := c.AwaitConvergence(5 * time.Second); err != nil {
				t.Fatal(err)
			}
		})
	}
}
