package client

// Self-healing: bounded retry with jittered exponential backoff,
// per-session failover to a live replica, and a per-replica circuit
// breaker. All three are opt-in (WithRetry, WithFailover,
// WithBreaker) and compose: a retryable failure counts against the
// replica's breaker and may rotate the session to the next replica
// before the next attempt; an open breaker fails fast with a typed
// wire error instead of queuing work against a dead replica.
//
// Failover preserves read-your-writes in the causal criteria: the
// client accumulates the causal frontier echoed on its update
// responses (per session, per shard, componentwise max), and when a
// session is re-attached to another replica it sends the frontier
// back — the server serves only once the new replica has delivered
// everything the session already saw. PC and EC have no frontier to
// carry, which is the paper's hierarchy made operational: failing
// over under those criteria simply re-reads weaker state.

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// healConfig collects the self-healing options.
type healConfig struct {
	retryMax     int // total attempts per op; 0 = no retry (one attempt)
	retryBase    time.Duration
	retryCap     time.Duration
	failover     bool
	brkThreshold int // consecutive failures tripping the breaker; 0 = off
	brkCooldown  time.Duration
}

func (h healConfig) enabled() bool {
	return h.retryMax > 0 || h.failover || h.brkThreshold > 0
}

// attempts is the per-op attempt budget (at least one).
func (h healConfig) attempts() int {
	if h.retryMax > 1 {
		return h.retryMax
	}
	return 1
}

// WithRetry enables bounded retry: an operation failing retryably
// (wire code unavailable or conflict, or a transport-level failure)
// is re-attempted up to maxAttempts times in total, sleeping a
// jittered exponential backoff between attempts (base doubling up to
// cap, each delay drawn uniformly from [delay/2, delay)). Zero values
// default to 4 attempts, 5ms base, 250ms cap.
func WithRetry(maxAttempts int, base, cap time.Duration) Option {
	return func(c *config) {
		if maxAttempts <= 0 {
			maxAttempts = 4
		}
		if base <= 0 {
			base = 5 * time.Millisecond
		}
		if cap <= 0 {
			cap = 250 * time.Millisecond
		}
		c.heal.retryMax = maxAttempts
		c.heal.retryBase = base
		c.heal.retryCap = cap
	}
}

// WithFailover enables per-session replica failover: when a session's
// operation fails retryably, the session re-attaches to the next
// replica (round-robin over the count learned from the server's
// healthz) for its subsequent attempts and operations, carrying its
// accumulated causal frontier so read-your-writes survives the move
// in the causal criteria. Most useful combined with WithRetry.
func WithFailover() Option {
	return func(c *config) { c.heal.failover = true }
}

// WithBreaker enables a per-replica circuit breaker: after threshold
// consecutive retryable failures against one replica, operations
// routed to it fail fast with a typed wire error (CodeUnavailable)
// instead of waiting out timeouts against a dead replica — futures
// resolve to errors, they never hang. After cooldown one probe
// attempt is let through; its success closes the breaker. Zero
// values default to 5 failures and 1s cooldown.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *config) {
		if threshold <= 0 {
			threshold = 5
		}
		if cooldown <= 0 {
			cooldown = time.Second
		}
		c.heal.brkThreshold = threshold
		c.heal.brkCooldown = cooldown
	}
}

// Metrics counts the self-healing machinery's interventions.
type Metrics struct {
	// Retries counts re-attempts after a retryable failure.
	Retries int64
	// Failovers counts session re-attachments to another replica.
	Failovers int64
	// BreakerOpens counts breaker trips (closed/half-open → open).
	BreakerOpens int64
	// BreakerFastFails counts operations failed fast by an open
	// breaker without touching the wire.
	BreakerFastFails int64
	// SLA counts the adaptive-read machinery's decisions and delivered
	// verdicts (all zero until a session with an SLA reads).
	SLA SLAMetrics
}

// Metrics snapshots the self-healing counters (all zero when no
// self-healing option is enabled) and the SLA routing counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Retries:          c.met.retries.Load(),
		Failovers:        c.met.failovers.Load(),
		BreakerOpens:     c.met.breakerOpens.Load(),
		BreakerFastFails: c.met.fastFails.Load(),
		SLA:              c.slaMetrics(),
	}
}

// metCounters is the internal atomic mirror of Metrics.
type metCounters struct {
	retries, failovers, breakerOpens, fastFails atomic.Int64
}

// healState is one session's failover state.
type healState struct {
	replica   *int          // explicit replica pin; nil = server default
	frontiers map[int][]int // shard → causal frontier (componentwise max)
}

// breaker is one replica's circuit state. Guarded by Client.healMu.
type breaker struct {
	fails    int
	open     bool
	openedAt time.Time
}

// jitter draws a uniform delay in [d/2, d]; the top-level math/rand
// functions are safe for concurrent use.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// backoff is the jittered exponential delay before retry attempt
// number attempt (0-based: the delay between the first failure and
// the second attempt is attempt 0).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.heal.retryBase
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	for i := 0; i < attempt && d < c.heal.retryCap; i++ {
		d *= 2
	}
	if c.heal.retryCap > 0 && d > c.heal.retryCap {
		d = c.heal.retryCap
	}
	return jitter(d)
}

// retryable classifies an error as worth another attempt: the typed
// retry codes (unavailable — drain, crash-stop, frontier timeout —
// conflict, which a racing create resolves, and stale_ring, which a
// ring refresh resolves), and transport-level failures (connection
// refused, reset) where the op may not have reached a serving
// replica. Context cancellation and a closed client are the caller's
// decision, never retried.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Code == wire.CodeUnavailable || we.Code == wire.CodeConflict ||
			we.Code == wire.CodeStaleRing
	}
	return !errors.Is(err, ErrClosed) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// breakerWorthy is the subset of retryable failures that indict the
// replica itself (a conflict is a data race, a stale ring a topology
// change — neither means a dead replica).
func breakerWorthy(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Code == wire.CodeUnavailable
	}
	return retryable(err)
}

// sessHealLocked resolves (creating on demand) one session's failover
// state. Caller holds healMu.
func (c *Client) sessHealLocked(sess int) *healState {
	hs, ok := c.sessHeal[sess]
	if !ok {
		hs = &healState{frontiers: make(map[int][]int)}
		c.sessHeal[sess] = hs
	}
	return hs
}

// effReplica computes the replica a session's next RPC lands on: the
// explicit pin if any, else the server's default (session id mod the
// learned replica count, Euclidean), else -1 when the count is
// unknown (breaker bypassed until healthz teaches it).
func (c *Client) effReplica(sess int, pin *int) int {
	if pin != nil {
		return *pin
	}
	n := int(c.replicas.Load())
	if n <= 0 {
		return -1
	}
	r := sess % n
	if r < 0 {
		r += n
	}
	return r
}

// learnTopology caches the server's replica count for failover
// rotation, fetching healthz once on demand.
func (c *Client) learnTopology() int {
	if n := int(c.replicas.Load()); n > 0 {
		return n
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	h, err := c.tr.Healthz(ctx)
	if err != nil || h.Replicas <= 0 {
		return 0
	}
	c.replicas.Store(int32(h.Replicas))
	return h.Replicas
}

// breakerAllowLocked reports whether the replica's breaker admits an
// attempt, transitioning open → half-open after the cooldown (the
// probe's failure re-opens it). Caller holds healMu.
func (c *Client) breakerAllowLocked(replica int) bool {
	b, ok := c.breakers[replica]
	if !ok || !b.open {
		return true
	}
	if time.Since(b.openedAt) >= c.heal.brkCooldown {
		b.open = false
		b.fails = c.heal.brkThreshold - 1 // one more failure re-opens
		return true
	}
	return false
}

// route prepares the failover fields for one session's next RPC:
// its replica pin (nil until a failover happened) and, when pinned,
// the accumulated causal frontier to re-attach with. When the target
// replica's breaker is open the RPC is refused outright with a typed
// fast-fail error — unless failover can rotate to a replica whose
// breaker admits traffic.
func (c *Client) route(sess int) (*int, []wire.ShardFrontier, error) {
	if !c.heal.enabled() {
		return nil, nil, nil
	}
	c.healMu.Lock()
	defer c.healMu.Unlock()
	hs := c.sessHealLocked(sess)
	if c.heal.brkThreshold > 0 {
		r := c.effReplica(sess, hs.replica)
		if r >= 0 && !c.breakerAllowLocked(r) {
			rotated := false
			if c.heal.failover {
				if n := int(c.replicas.Load()); n > 1 {
					for i := 1; i < n; i++ {
						cand := ((r + i) % n)
						if c.breakerAllowLocked(cand) {
							hs.replica = &cand
							c.met.failovers.Add(1)
							rotated = true
							break
						}
					}
				}
			}
			if !rotated {
				c.met.fastFails.Add(1)
				return nil, nil, wire.Errf(wire.CodeUnavailable,
					"client: circuit open for replica %d", r)
			}
		}
	}
	return hs.replica, hs.wireFrontiers(), nil
}

// wireFrontiers renders the session's accumulated frontier for the
// wire — only once the session has been re-attached (an unpinned
// session is still talking to the replica that produced the
// frontier, which trivially dominates it).
func (hs *healState) wireFrontiers() []wire.ShardFrontier {
	if hs.replica == nil || len(hs.frontiers) == 0 {
		return nil
	}
	fs := make([]wire.ShardFrontier, 0, len(hs.frontiers))
	for sh, vc := range hs.frontiers {
		fs = append(fs, wire.ShardFrontier{Shard: sh, VC: vc})
	}
	return fs
}

// mergeLocked folds one echoed frontier into the session's state
// (componentwise max: frontiers from different replicas may each
// know updates the other misses). Caller holds healMu.
func (hs *healState) mergeLocked(f *wire.ShardFrontier) {
	if f == nil {
		return
	}
	have := hs.frontiers[f.Shard]
	for len(have) < len(f.VC) {
		have = append(have, 0)
	}
	for i, v := range f.VC {
		if v > have[i] {
			have[i] = v
		}
	}
	hs.frontiers[f.Shard] = have
}

// frontTracking reports whether session frontiers are worth
// accumulating: self-healing needs them to re-attach after failover,
// and SLA routing needs them to judge whether a weak read delivered
// read-my-writes anyway.
func (c *Client) frontTracking() bool {
	return c.heal.enabled() || c.sla.used.Load()
}

// mergeFronts folds echoed frontiers into the session's state without
// touching the breaker (the batcher judges the breaker from its per-op
// results separately — a served RPC can still carry failed ops).
func (c *Client) mergeFronts(sess int, fronts []wire.ShardFrontier) {
	if !c.frontTracking() || len(fronts) == 0 {
		return
	}
	c.healMu.Lock()
	defer c.healMu.Unlock()
	hs := c.sessHealLocked(sess)
	for i := range fronts {
		hs.mergeLocked(&fronts[i])
	}
}

// noteSuccess records a served RPC: echoed frontiers accumulate and
// the serving replica's breaker resets.
func (c *Client) noteSuccess(sess int, fronts []wire.ShardFrontier) {
	if !c.frontTracking() {
		return
	}
	c.healMu.Lock()
	defer c.healMu.Unlock()
	hs := c.sessHealLocked(sess)
	for i := range fronts {
		hs.mergeLocked(&fronts[i])
	}
	r := c.effReplica(sess, hs.replica)
	if b, ok := c.breakers[r]; ok {
		b.fails = 0
		b.open = false
	}
}

// noteFailure records a failed RPC against the session's current
// replica: the breaker counts it (and may trip), and with failover
// enabled the session rotates to the next replica for its subsequent
// attempts, re-attaching its causal frontier there.
func (c *Client) noteFailure(sess int, err error) {
	if !c.heal.enabled() || !retryable(err) {
		return
	}
	indicts := breakerWorthy(err)
	n := 0
	if c.heal.failover && indicts {
		n = c.learnTopology() // outside healMu: it may do a healthz RPC
	}
	c.healMu.Lock()
	defer c.healMu.Unlock()
	hs := c.sessHealLocked(sess)
	r := c.effReplica(sess, hs.replica)
	if c.heal.brkThreshold > 0 && r >= 0 && indicts {
		b, ok := c.breakers[r]
		if !ok {
			b = &breaker{}
			c.breakers[r] = b
		}
		b.fails++
		if b.fails >= c.heal.brkThreshold && !b.open {
			b.open = true
			b.openedAt = time.Now()
			c.met.breakerOpens.Add(1)
		}
	}
	if c.heal.failover && indicts && n > 1 && r >= 0 {
		next := (r + 1) % n
		hs.replica = &next
		c.met.failovers.Add(1)
	}
}

// invokeHealed runs one invoke RPC under the self-healing policy:
// breaker fast-fail, bounded jittered-exponential retry, per-session
// failover with frontier re-attach. With no self-healing options it
// is exactly one transport call. A non-nil sc makes the op an
// SLA-routed read: every attempt re-plans the route against current
// conditions (the failure that caused a retry may have changed them),
// and the delivered-consistency verdict is judged on the response
// before its frontier merges into the session state.
func (c *Client) invokeHealed(ctx context.Context, sess int, req *wire.InvokeRequest, sc *slaCall) (*wire.InvokeResponse, error) {
	attempts := c.heal.attempts()
	var last error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.met.retries.Add(1)
			select {
			case <-time.After(c.backoff(a - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		rep, fronts, fastErr := c.route(sess)
		if fastErr != nil {
			return nil, fastErr
		}
		req.Replica, req.Frontiers = rep, fronts
		req.Epoch = c.ringEpoch.Load()
		if sc != nil {
			req.Target, req.ReadReplica = c.slaPlan(sess, sc)
		}
		resp, err := c.tr.Invoke(ctx, req)
		if err == nil {
			if sc != nil {
				c.slaJudgeRMW(sess, sc, resp)
			} else {
				c.slaNoteHighWater(resp)
			}
			var fs []wire.ShardFrontier
			if resp.Frontier != nil {
				fs = []wire.ShardFrontier{*resp.Frontier}
			}
			c.noteSuccess(sess, fs)
			return resp, nil
		}
		last = err
		c.noteFailure(sess, err)
		if sc != nil {
			c.sla.trk.ObserveFailure(sc.attemptReplica(c, sess))
		}
		if !retryable(err) {
			return nil, err
		}
		if isStaleRing(err) {
			// The topology moved on under us: refresh the ring before the
			// next attempt so it carries the current epoch.
			c.refreshRing(ctx)
		}
	}
	return nil, last
}

// isStaleRing reports whether the error is the stale-ring redirect.
func isStaleRing(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == wire.CodeStaleRing
}

// Fault injects one scripted fault into the cluster (partition, heal,
// crash, restart, link degradation) — the chaos harness's control
// channel. See wire.FaultRequest.
func (c *Client) Fault(ctx context.Context, req *wire.FaultRequest) error {
	return c.tr.Fault(ctx, req)
}

// Ready reports the server's readiness: Ready=false while it drains
// (the response itself arrives even when the server answers 503).
func (c *Client) Ready(ctx context.Context) (*wire.ReadyzResponse, error) {
	return c.tr.Readyz(ctx)
}
