package client_test

// The stale-ring redirect: a client that cached the placement ring
// keeps working transparently across a server-side topology change.
// Its next request carries the old epoch, the server answers the
// typed stale_ring error, and the SDK refreshes the ring and retries
// — the caller sees only a successful call (plus a retry in the
// metrics), never the redirect.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/client"
	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

func TestStaleRingRedirect(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 2, Replicas: 3, Criterion: "CCv", BatchOps: 4,
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := client.New(client.NewLoopback(c),
		client.WithRetry(4, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx := context.Background()
	var names []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("obj-%d", i)
		if err := cli.CreateObject(ctx, name, "Counter"); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	ring, err := cli.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Epoch == 0 || ring.Protocol != wire.ProtocolVersion {
		t.Fatalf("ring handshake: %+v", ring)
	}
	s := cli.Session(0)
	for _, name := range names {
		if _, err := s.Call(ctx, name, "inc", 1); err != nil {
			t.Fatal(err)
		}
	}

	// Topology change behind the client's back: its cached epoch is now
	// stale, so the next invoke is redirected and must self-heal.
	if _, err := c.AddShard(); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		out, err := s.Call(ctx, name, "get")
		if err != nil {
			t.Fatalf("%s after rebalance: %v", name, err)
		}
		if !out.Equal(cc.IntOutput(1)) {
			t.Fatalf("%s reads %v after rebalance, want 1", name, out)
		}
	}
	if got := cli.Metrics().Retries; got < 1 {
		t.Fatalf("no retry recorded across the stale-ring redirect (retries=%d)", got)
	}
	refreshed, err := cli.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.Epoch != ring.Epoch+1 {
		t.Fatalf("ring epoch %d after AddShard, want %d", refreshed.Epoch, ring.Epoch+1)
	}
}

// TestStaleRingWithoutEpochCheck pins back-compat: a client that never
// fetched the ring sends epoch 0, which the server must not reject —
// epoch checking is opt-in by handshake.
func TestStaleRingWithoutEpochCheck(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 2, Replicas: 3, Criterion: "CC",
		Monitor: cluster.MonitorConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := client.New(client.NewLoopback(c))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	if err := cli.CreateObject(ctx, "o", "Counter"); err != nil {
		t.Fatal(err)
	}
	s := cli.Session(0)
	if _, err := s.Call(ctx, "o", "inc", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddShard(); err != nil {
		t.Fatal(err)
	}
	// No Ring() handshake, no retry option: the call must still succeed
	// on the first attempt (epoch 0 bypasses the check).
	out, err := s.Call(ctx, "o", "get")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(cc.IntOutput(1)) {
		t.Fatalf("read %v, want 1", out)
	}
	if got := cli.Metrics().Retries; got != 0 {
		t.Fatalf("epoch-less client retried %d times", got)
	}
}
