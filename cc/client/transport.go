package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/paper-repro/ccbm/cc/cluster"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// Transport carries wire requests to a cluster. Two implementations
// ship with the SDK: NewHTTPTransport speaks the versioned HTTP
// protocol of cc/cluster's front-end, and NewLoopback short-circuits
// an in-process *cluster.Cluster through exactly the same wire entry
// points (so tests and embedded uses exercise the protocol semantics
// without a socket). Errors returned by a transport are *wire.Error
// where the server produced one.
type Transport interface {
	CreateObject(ctx context.Context, req *wire.CreateObjectRequest) error
	Invoke(ctx context.Context, req *wire.InvokeRequest) (*wire.InvokeResponse, error)
	Batch(ctx context.Context, req *wire.BatchRequest) (*wire.BatchResponse, error)
	Crash(ctx context.Context, req *wire.CrashRequest) error
	// Fault injects one scripted fault (partition/heal/crash/restart,
	// per-link degradation) — the chaos harness's control channel.
	Fault(ctx context.Context, req *wire.FaultRequest) error
	// Ring fetches the server's consistent-hash ring description:
	// topology, per-shard loads, and the current ring epoch.
	Ring(ctx context.Context) (*wire.RingResponse, error)
	Stats(ctx context.Context) (*wire.StatsResponse, error)
	// Staleness fetches every replica's high-water vector and
	// replication lag — the SLA machinery's bulk condition source
	// (per-query piggybacks cover only replicas reads still land on).
	Staleness(ctx context.Context) (*wire.StalenessResponse, error)
	Monitor(ctx context.Context, verdicts bool) (*wire.MonitorResponse, error)
	// MonitorStream subscribes to the monitor's verdict stream: every
	// verdict so far, then new ones live. The channel closes when the
	// context is cancelled, the stream fails, or the server's monitor
	// closes.
	MonitorStream(ctx context.Context) (<-chan wire.Verdict, error)
	Healthz(ctx context.Context) (*wire.HealthzResponse, error)
	// Readyz reports readiness (the response arrives even when the
	// server answers 503-draining; only a transport failure errors).
	Readyz(ctx context.Context) (*wire.ReadyzResponse, error)
	// Close releases transport resources. It does not close a server.
	Close() error
}

// HTTPTransport speaks the wire protocol over HTTP against a ccserved
// base URL.
type HTTPTransport struct {
	base string
	hc   *http.Client
}

// HTTPOption configures an HTTPTransport.
type HTTPOption func(*HTTPTransport)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// proxies, connection limits).
func WithHTTPClient(hc *http.Client) HTTPOption {
	return func(t *HTTPTransport) { t.hc = hc }
}

// NewHTTPTransport builds the HTTP transport for a server base URL
// such as "http://127.0.0.1:8344".
func NewHTTPTransport(baseURL string, opts ...HTTPOption) *HTTPTransport {
	t := &HTTPTransport{
		base: baseURL,
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
		}},
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// decodeError turns a non-2xx response into a *wire.Error, falling
// back to the status-derived code when the body carries no typed
// error (a proxy page, a pre-wire server).
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var er wire.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Err != nil {
		return er.Err
	}
	return wire.Errf(wire.CodeForStatus(resp.StatusCode), "http %s", resp.Status)
}

// roundTrip posts (or gets, when body is nil) one wire value and
// decodes the response into out. The body is always drained so the
// connection returns to the idle pool.
func (t *HTTPTransport) roundTrip(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+wire.PathPrefix+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func (t *HTTPTransport) CreateObject(ctx context.Context, req *wire.CreateObjectRequest) error {
	return t.roundTrip(ctx, http.MethodPost, "/objects", req, nil)
}

func (t *HTTPTransport) Invoke(ctx context.Context, req *wire.InvokeRequest) (*wire.InvokeResponse, error) {
	var resp wire.InvokeResponse
	if err := t.roundTrip(ctx, http.MethodPost, "/invoke", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Batch(ctx context.Context, req *wire.BatchRequest) (*wire.BatchResponse, error) {
	var resp wire.BatchResponse
	if err := t.roundTrip(ctx, http.MethodPost, "/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Crash(ctx context.Context, req *wire.CrashRequest) error {
	return t.roundTrip(ctx, http.MethodPost, "/crash", req, nil)
}

func (t *HTTPTransport) Fault(ctx context.Context, req *wire.FaultRequest) error {
	return t.roundTrip(ctx, http.MethodPost, "/fault", req, nil)
}

// Readyz decodes the readiness body at any status: a 503 while
// draining still carries a wire.ReadyzResponse, which the caller
// wants (Ready=false) rather than an error.
func (t *HTTPTransport) Readyz(ctx context.Context) (*wire.ReadyzResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+wire.PathPrefix+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var r wire.ReadyzResponse
	if json.Unmarshal(body, &r) == nil && r.Protocol != 0 {
		return &r, nil
	}
	return nil, wire.Errf(wire.CodeForStatus(resp.StatusCode), "http %s", resp.Status)
}

func (t *HTTPTransport) Ring(ctx context.Context) (*wire.RingResponse, error) {
	var resp wire.RingResponse
	if err := t.roundTrip(ctx, http.MethodGet, "/ring", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	var resp wire.StatsResponse
	if err := t.roundTrip(ctx, http.MethodGet, "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Staleness(ctx context.Context) (*wire.StalenessResponse, error) {
	var resp wire.StalenessResponse
	if err := t.roundTrip(ctx, http.MethodGet, "/staleness", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Monitor(ctx context.Context, verdicts bool) (*wire.MonitorResponse, error) {
	path := "/monitor"
	if verdicts {
		path += "?verdicts=1"
	}
	var resp wire.MonitorResponse
	if err := t.roundTrip(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) MonitorStream(ctx context.Context) (<-chan wire.Verdict, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+wire.PathPrefix+"/monitor/stream", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	ch := make(chan wire.Verdict, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		for {
			var v wire.Verdict
			if err := dec.Decode(&v); err != nil {
				return // stream ended or ctx cancelled (the transport closes the body)
			}
			select {
			case ch <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

func (t *HTTPTransport) Healthz(ctx context.Context) (*wire.HealthzResponse, error) {
	var resp wire.HealthzResponse
	if err := t.roundTrip(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Close releases the transport's idle connections.
func (t *HTTPTransport) Close() error {
	t.hc.CloseIdleConnections()
	return nil
}

// Loopback is the in-process transport: wire requests execute
// directly against a *cluster.Cluster through the same entry points
// the HTTP front-end uses (ExecuteBatch, InvokeWire), so semantics —
// batch group ordering, read targets, typed errors — are identical to
// the networked path, minus the socket.
type Loopback struct {
	c *cluster.Cluster
}

// NewLoopback wraps an in-process cluster. The caller keeps ownership
// of the cluster (Loopback.Close does not close it).
func NewLoopback(c *cluster.Cluster) *Loopback { return &Loopback{c: c} }

func (l *Loopback) CreateObject(_ context.Context, req *wire.CreateObjectRequest) error {
	if req.Name == "" || req.ADT == "" {
		return wire.Errf(wire.CodeBadRequest, "need name and adt")
	}
	if err := l.c.CreateObject(req.Name, req.ADT); err != nil {
		return cluster.WireError(err)
	}
	return nil
}

func (l *Loopback) Invoke(_ context.Context, req *wire.InvokeRequest) (*wire.InvokeResponse, error) {
	resp, e := l.c.InvokeWire(req)
	if e != nil {
		return nil, e
	}
	return resp, nil
}

func (l *Loopback) Batch(_ context.Context, req *wire.BatchRequest) (*wire.BatchResponse, error) {
	resp, e := l.c.ExecuteBatch(req)
	if e != nil {
		return nil, e
	}
	return resp, nil
}

func (l *Loopback) Crash(_ context.Context, req *wire.CrashRequest) error {
	if err := l.c.CrashReplica(req.Shard, req.Replica); err != nil {
		return cluster.WireError(err)
	}
	return nil
}

func (l *Loopback) Fault(_ context.Context, req *wire.FaultRequest) error {
	if e := l.c.ApplyFault(req); e != nil {
		return e
	}
	return nil
}

func (l *Loopback) Readyz(context.Context) (*wire.ReadyzResponse, error) {
	draining := l.c.Draining()
	return &wire.ReadyzResponse{Ready: !draining, Draining: draining, Protocol: wire.ProtocolVersion}, nil
}

func (l *Loopback) Ring(context.Context) (*wire.RingResponse, error) {
	return l.c.RingWire(), nil
}

func (l *Loopback) Stats(context.Context) (*wire.StatsResponse, error) {
	return l.c.StatsWire(), nil
}

func (l *Loopback) Staleness(context.Context) (*wire.StalenessResponse, error) {
	return l.c.StalenessWire(), nil
}

func (l *Loopback) Monitor(_ context.Context, verdicts bool) (*wire.MonitorResponse, error) {
	resp := &wire.MonitorResponse{Summary: l.c.Monitor().Summary()}
	if verdicts {
		resp.Verdicts = l.c.Monitor().Verdicts()
	}
	return resp, nil
}

func (l *Loopback) MonitorStream(ctx context.Context) (<-chan wire.Verdict, error) {
	in, cancel := l.c.Monitor().Subscribe()
	out := make(chan wire.Verdict, 64)
	go func() {
		defer close(out)
		defer cancel()
		for {
			select {
			case v, ok := <-in:
				if !ok {
					return
				}
				select {
				case out <- v:
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

func (l *Loopback) Healthz(context.Context) (*wire.HealthzResponse, error) {
	return &wire.HealthzResponse{
		OK: true, Criterion: l.c.Criterion(), Protocol: wire.ProtocolVersion,
		Shards: l.c.Shards(), Replicas: l.c.Replicas(), Replication: l.c.Replication(),
	}, nil
}

// Close is a no-op: the wrapped cluster stays up.
func (l *Loopback) Close() error { return nil }

// compile-time interface checks
var (
	_ Transport = (*HTTPTransport)(nil)
	_ Transport = (*Loopback)(nil)
)

// protocolCheck rejects a healthz whose protocol version is not the
// one this SDK speaks.
func protocolCheck(h *wire.HealthzResponse) error {
	if h.Protocol != wire.ProtocolVersion {
		return fmt.Errorf("client: server speaks protocol v%d, this SDK speaks v%d", h.Protocol, wire.ProtocolVersion)
	}
	return nil
}
