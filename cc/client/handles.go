package client

// Typed object handles over the ADT registry: each handle pairs a
// Session with a named object whose ADT was validated against
// cc.LookupADT at construction, and exposes the registry type's
// methods ("inc", "w", "push", ...) as Go methods. The generic
// Object handle covers any registered type — including the textual
// families like "W2^4" and "M[a-c]" — and the named wrappers below it
// are the ergonomic layer for the common types.

import (
	"context"
	"fmt"

	"github.com/paper-repro/ccbm/cc"
)

// Object is a session's handle on one named object of a registered
// ADT. Construction (Session.Object) creates the object on the
// cluster if needed and fails if the name is taken by another type.
type Object struct {
	sess *Session
	name string
	adt  cc.ADT
}

// Object validates adtName against the registry, creates the object
// (idempotent when the type matches) and returns the handle.
func (s *Session) Object(ctx context.Context, name, adtName string) (*Object, error) {
	t, err := cc.LookupADT(adtName)
	if err != nil {
		return nil, err
	}
	if err := s.c.CreateObject(ctx, name, adtName); err != nil {
		return nil, err
	}
	return &Object{sess: s, name: name, adt: t}, nil
}

// Name returns the object's cluster-wide name.
func (o *Object) Name() string { return o.name }

// ADT returns the object's sequential specification.
func (o *Object) ADT() cc.ADT { return o.adt }

// Session returns the session the handle operates through (derive a
// different read target with sess.WithTarget and re-open the handle).
func (o *Object) Session() *Session { return o.sess }

// Call invokes one method synchronously.
func (o *Object) Call(ctx context.Context, method string, args ...int) (cc.Output, error) {
	return o.sess.Call(ctx, o.name, method, args...)
}

// CallAsync invokes one method asynchronously (pipelined under
// batching; see Session.InvokeAsync).
func (o *Object) CallAsync(method string, args ...int) *Future {
	return o.sess.CallAsync(o.name, method, args...)
}

// intVal extracts a single-integer output.
func intVal(out cc.Output, err error) (int, error) {
	if err != nil {
		return 0, err
	}
	if out.Bot || len(out.Vals) == 0 {
		return 0, fmt.Errorf("client: no integer in output %s", out.String())
	}
	return out.Vals[0], nil
}

// boolVal extracts a 0/1 output.
func boolVal(out cc.Output, err error) (bool, error) {
	v, err := intVal(out, err)
	return v != 0, err
}

// Counter is the registry's "Counter": a commutative integer counter.
type Counter struct{ Object }

// Counter opens a Counter handle on name.
func (s *Session) Counter(ctx context.Context, name string) (*Counter, error) {
	o, err := s.Object(ctx, name, "Counter")
	if err != nil {
		return nil, err
	}
	return &Counter{*o}, nil
}

// Inc adds delta to the counter.
func (c *Counter) Inc(ctx context.Context, delta int) error {
	_, err := c.Call(ctx, "inc", delta)
	return err
}

// IncAsync adds delta asynchronously.
func (c *Counter) IncAsync(delta int) *Future { return c.CallAsync("inc", delta) }

// Dec subtracts delta from the counter.
func (c *Counter) Dec(ctx context.Context, delta int) error {
	_, err := c.Call(ctx, "dec", delta)
	return err
}

// Get reads the counter.
func (c *Counter) Get(ctx context.Context) (int, error) {
	return intVal(c.Call(ctx, "get"))
}

// Register is the registry's "Register": a last-writer integer
// register.
type Register struct{ Object }

// Register opens a Register handle on name.
func (s *Session) Register(ctx context.Context, name string) (*Register, error) {
	o, err := s.Object(ctx, name, "Register")
	if err != nil {
		return nil, err
	}
	return &Register{*o}, nil
}

// Write stores v.
func (r *Register) Write(ctx context.Context, v int) error {
	_, err := r.Call(ctx, "w", v)
	return err
}

// WriteAsync stores v asynchronously.
func (r *Register) WriteAsync(v int) *Future { return r.CallAsync("w", v) }

// Read returns the current value.
func (r *Register) Read(ctx context.Context) (int, error) {
	return intVal(r.Call(ctx, "r"))
}

// Queue is the registry's "Queue": the paper's FIFO queue whose pop
// is both update and query.
type Queue struct{ Object }

// Queue opens a Queue handle on name.
func (s *Session) Queue(ctx context.Context, name string) (*Queue, error) {
	o, err := s.Object(ctx, name, "Queue")
	if err != nil {
		return nil, err
	}
	return &Queue{*o}, nil
}

// Push appends v.
func (q *Queue) Push(ctx context.Context, v int) error {
	_, err := q.Call(ctx, "push", v)
	return err
}

// PushAsync appends v asynchronously.
func (q *Queue) PushAsync(v int) *Future { return q.CallAsync("push", v) }

// Pop removes and returns the oldest element; ok is false on an
// empty queue (the paper's pop/⊥).
func (q *Queue) Pop(ctx context.Context) (v int, ok bool, err error) {
	out, err := q.Call(ctx, "pop")
	if err != nil || out.Bot || len(out.Vals) == 0 {
		return 0, false, err
	}
	return out.Vals[0], true, nil
}

// Stack is the registry's "Stack".
type Stack struct{ Object }

// Stack opens a Stack handle on name.
func (s *Session) Stack(ctx context.Context, name string) (*Stack, error) {
	o, err := s.Object(ctx, name, "Stack")
	if err != nil {
		return nil, err
	}
	return &Stack{*o}, nil
}

// Push pushes v.
func (s *Stack) Push(ctx context.Context, v int) error {
	_, err := s.Call(ctx, "push", v)
	return err
}

// Pop removes and returns the top element; ok is false on an empty
// stack.
func (s *Stack) Pop(ctx context.Context) (v int, ok bool, err error) {
	out, err := s.Call(ctx, "pop")
	if err != nil || out.Bot || len(out.Vals) == 0 {
		return 0, false, err
	}
	return out.Vals[0], true, nil
}

// Top reads the top element without removing it; ok is false on an
// empty stack.
func (s *Stack) Top(ctx context.Context) (v int, ok bool, err error) {
	out, err := s.Call(ctx, "top")
	if err != nil || out.Bot || len(out.Vals) == 0 {
		return 0, false, err
	}
	return out.Vals[0], true, nil
}

// GSet is the registry's "GSet": a grow-only set.
type GSet struct{ Object }

// GSet opens a GSet handle on name.
func (s *Session) GSet(ctx context.Context, name string) (*GSet, error) {
	o, err := s.Object(ctx, name, "GSet")
	if err != nil {
		return nil, err
	}
	return &GSet{*o}, nil
}

// Add inserts v.
func (g *GSet) Add(ctx context.Context, v int) error {
	_, err := g.Call(ctx, "add", v)
	return err
}

// AddAsync inserts v asynchronously.
func (g *GSet) AddAsync(v int) *Future { return g.CallAsync("add", v) }

// Has reports membership of v.
func (g *GSet) Has(ctx context.Context, v int) (bool, error) {
	return boolVal(g.Call(ctx, "has", v))
}

// Elems returns the members, sorted.
func (g *GSet) Elems(ctx context.Context) ([]int, error) {
	out, err := g.Call(ctx, "elems")
	if err != nil {
		return nil, err
	}
	return out.Vals, nil
}

// RWSet is the registry's "RWSet": an add/remove set with
// remove-wins conflict resolution.
type RWSet struct{ Object }

// RWSet opens an RWSet handle on name.
func (s *Session) RWSet(ctx context.Context, name string) (*RWSet, error) {
	o, err := s.Object(ctx, name, "RWSet")
	if err != nil {
		return nil, err
	}
	return &RWSet{*o}, nil
}

// Add inserts v.
func (r *RWSet) Add(ctx context.Context, v int) error {
	_, err := r.Call(ctx, "add", v)
	return err
}

// Remove deletes v.
func (r *RWSet) Remove(ctx context.Context, v int) error {
	_, err := r.Call(ctx, "rem", v)
	return err
}

// Has reports membership of v.
func (r *RWSet) Has(ctx context.Context, v int) (bool, error) {
	return boolVal(r.Call(ctx, "has", v))
}

// Elems returns the members, sorted.
func (r *RWSet) Elems(ctx context.Context) ([]int, error) {
	out, err := r.Call(ctx, "elems")
	if err != nil {
		return nil, err
	}
	return out.Vals, nil
}

// CAS is the registry's "CAS": a register with compare-and-swap.
type CAS struct{ Object }

// CAS opens a CAS handle on name.
func (s *Session) CAS(ctx context.Context, name string) (*CAS, error) {
	o, err := s.Object(ctx, name, "CAS")
	if err != nil {
		return nil, err
	}
	return &CAS{*o}, nil
}

// Write stores v unconditionally.
func (c *CAS) Write(ctx context.Context, v int) error {
	_, err := c.Call(ctx, "w", v)
	return err
}

// Read returns the current value.
func (c *CAS) Read(ctx context.Context) (int, error) {
	return intVal(c.Call(ctx, "r"))
}

// CompareAndSwap installs next if the register holds old, reporting
// whether it did.
func (c *CAS) CompareAndSwap(ctx context.Context, old, next int) (bool, error) {
	return boolVal(c.Call(ctx, "cas", old, next))
}
