package client

// Consistency-SLA support: a session declares a ranked sla.SLA, and
// every pure-query invocation through it is routed adaptively — the
// client tracks per-replica conditions (EWMA latency from served ops,
// staleness from the high-water vectors replicas piggyback on
// responses) and asks an sla.Router for the sub-SLA × replica pair
// with the highest expected utility. The chosen route rides the
// existing wire machinery: affinity reads stay the session read,
// bounded/eventual choices travel as ReadAny or ReadReplica targets.
//
// Every SLA-routed read's delivered consistency is judged at response
// time — an affinity read delivers read-my-writes by construction; a
// weak read delivers it anyway when the serving replica's echoed
// frontier dominates the session's accumulated frontier — and the
// verdict (achieved sub-SLA, utility, miss) lands in SLAMetrics.
// Updates and mixed ops are never SLA-routed: they keep the session's
// default path.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
	"github.com/paper-repro/ccbm/cc/sla"
)

// slaRefreshEvery bounds how often the client polls GET /v1/staleness
// in the background: adaptive routing steers reads away from a stale
// replica, which starves the piggyback channel of fresh observations
// about it; the periodic poll keeps the avoided replica's estimate
// live so the router notices when it catches back up.
const slaRefreshEvery = 250 * time.Millisecond

// WithSLA sets a default consistency SLA on every session the client
// hands out (sessions override per-handle with Session.WithSLA). The
// SLA must validate.
func WithSLA(s sla.SLA) Option {
	return func(c *config) { c.sla = s }
}

// WithSLARouter substitutes the routing policy used for SLA-routed
// reads (default sla.MaxUtility). The static baselines
// sla.StaticAffinity and sla.StaticAny plug in here for comparison
// runs.
func WithSLARouter(r sla.Router) Option {
	return func(c *config) { c.slaRouter = r }
}

// WithSLA derives a view of the same session whose pure-query
// invocations are routed adaptively under the SLA: the handle shares
// the session id and its program order; only the routing and
// accounting of its reads change.
func (s *Session) WithSLA(sl sla.SLA) *Session {
	d := *s
	d.sla = sl
	return &d
}

// WithSLARouter derives a view of the same session using the given
// routing policy for its SLA reads (default sla.MaxUtility).
func (s *Session) WithSLARouter(r sla.Router) *Session {
	d := *s
	d.slaRouter = r
	return &d
}

// SLA returns the session's SLA (nil when none is attached).
func (s *Session) SLA() sla.SLA { return s.sla }

// slaState is the client's SLA bookkeeping: the condition tracker and
// the delivered-verdict counters behind SLAMetrics.
type slaState struct {
	trk *sla.Tracker
	// used latches once any SLA read has been planned: it extends the
	// frontier-accumulation gate (see mergeFronts) to clients that
	// enabled no self-healing option, since delivered-consistency
	// verdicts need the session frontier.
	used       atomic.Bool
	refreshing atomic.Bool
	lastPoll   atomic.Int64 // unix nanos of the last staleness poll

	mu        sync.Mutex
	reads     int64
	byReplica map[int]int64
	bySub     map[int]int64
	misses    int64
	latMisses int64
	utilSum   float64
}

func newSLAState() *slaState {
	return &slaState{
		trk:       sla.NewTracker(0),
		byReplica: make(map[int]int64),
		bySub:     make(map[int]int64),
	}
}

// SLAMetrics counts the adaptive-read machinery's decisions and
// delivered verdicts. All zero until a session with an SLA reads.
type SLAMetrics struct {
	// Reads counts SLA-routed reads that resolved (success or failure).
	Reads int64
	// ByReplica counts resolved reads per serving replica (the replica
	// that actually answered, from the response piggyback; -1 when the
	// read failed before any replica answered).
	ByReplica map[int]int64
	// BySubSLA counts reads per chosen sub-SLA rank (the promise the
	// router was trying to deliver, not necessarily what arrived).
	BySubSLA map[int]int64
	// Misses counts reads whose chosen sub-SLA's consistency promise
	// was not delivered — the downgrade verdicts.
	Misses int64
	// LatencyMisses counts reads that beat their consistency promise
	// but blew the chosen sub-SLA's latency target.
	LatencyMisses int64
	// MeanUtility is the mean delivered utility per resolved read
	// (sla.SLA.Achieved over the delivered conditions).
	MeanUtility float64
	// Conditions is the tracker's current per-replica view (EWMA
	// latency and staleness), for operator eyes.
	Conditions []sla.Condition
}

// slaFor resolves the session's effective SLA and router; the SLA is
// nil when the session has none.
func (s *Session) slaFor() (sla.SLA, sla.Router) {
	if len(s.sla) == 0 {
		return nil, nil
	}
	r := s.slaRouter
	if r == nil {
		r = sla.MaxUtility{Explore: sla.DefaultExplore}
	}
	return s.sla, r
}

// slaCall is one SLA-routed read's plan and verdict, threaded through
// the retry loop (each attempt re-plans against current conditions)
// and into the observation at resolution.
type slaCall struct {
	sla    sla.SLA
	router sla.Router
	choice sla.Choice
	rmw    bool // delivered read-my-writes, judged pre-merge at response time
}

// slaPlan picks the route for one read right before it is dispatched:
// snapshot the tracker's conditions, ask the router, and render the
// choice as wire routing. It never does an RPC (learnTopology is the
// caller's job, once, outside any batcher lock).
func (c *Client) slaPlan(sess int, sc *slaCall) (target wire.ReadTarget, readRep *int) {
	c.slaMaybeRefresh()
	n := int(c.replicas.Load())
	conds := c.sla.trk.Conditions(n)
	c.healMu.Lock()
	pin := c.sessHealLocked(sess).replica
	c.healMu.Unlock()
	affinity := c.effReplica(sess, pin)
	sc.choice = sc.router.Choose(sc.sla, affinity, conds)
	switch sc.choice.Route {
	case sla.RouteAny:
		return wire.ReadAny, nil
	case sla.RouteReplica:
		rep := sc.choice.Replica
		return wire.ReadReplica, &rep
	}
	return "", nil // affinity: the wire default
}

// slaAttemptReplica is the replica a failed attempt indicts: the
// explicit choice when the route named one, else -1 (a server-routed
// ReadAny failure blames nobody in particular).
func (sc *slaCall) attemptReplica(c *Client, sess int) int {
	switch sc.choice.Route {
	case sla.RouteReplica:
		return sc.choice.Replica
	case sla.RouteAffinity:
		c.healMu.Lock()
		pin := c.sessHealLocked(sess).replica
		c.healMu.Unlock()
		return c.effReplica(sess, pin)
	}
	return -1
}

// slaJudgeRMW decides, at response time and before the echoed frontier
// is merged into the session state, whether the read delivered
// read-my-writes: an affinity read does by construction; a weak read
// does when the serving replica's echoed frontier dominates the
// session's accumulated frontier on that shard.
func (c *Client) slaJudgeRMW(sess int, sc *slaCall, resp *wire.InvokeResponse) {
	if sc.choice.Route == sla.RouteAffinity {
		sc.rmw = true
		return
	}
	f := resp.Frontier
	if f == nil {
		sc.rmw = false
		return
	}
	c.healMu.Lock()
	defer c.healMu.Unlock()
	hs, ok := c.sessHeal[sess]
	if !ok {
		sc.rmw = true // session has seen nothing yet; anything dominates
		return
	}
	for i, v := range hs.frontiers[f.Shard] {
		if i >= len(f.VC) || f.VC[i] < v {
			sc.rmw = false
			return
		}
	}
	sc.rmw = true
}

// slaObserve records one resolved SLA read: condition samples for the
// tracker and a delivered verdict for the metrics.
func (c *Client) slaObserve(sc *slaCall, resp *wire.InvokeResponse, elapsed time.Duration, err error) {
	st := c.sla
	rep := -1
	var staleness time.Duration
	if err == nil && resp != nil && resp.HighWater != nil {
		rep = resp.HighWater.Replica
		st.trk.ObserveLatency(rep, elapsed)
		staleness = st.trk.ObserveHighWater(resp.HighWater.Shard, rep, resp.HighWater.HW)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reads++
	st.byReplica[rep]++
	if sc.choice.Sub >= 0 {
		st.bySub[sc.choice.Sub]++
	}
	if err != nil {
		st.misses++
		return
	}
	if !sc.sla.Met(sc.choice.Sub, sc.rmw, staleness) {
		st.misses++
	} else if sc.choice.Sub >= 0 && sc.choice.Sub < len(sc.sla) {
		if t := sc.sla[sc.choice.Sub].TargetLatency; t > 0 && elapsed > t {
			st.latMisses++
		}
	}
	_, util := sc.sla.Achieved(sc.rmw, staleness, elapsed)
	st.utilSum += util
}

// slaNoteHighWater feeds a non-SLA response's piggybacked high-water
// vector to the tracker. Updates are the primary freshness signal: a
// session that keeps writing at its affinity replica advances the
// known-max vector even while the router sends every read elsewhere —
// without this, a partitioned-but-reachable replica looks fresh
// forever because only its own frozen vector is ever observed.
func (c *Client) slaNoteHighWater(resp *wire.InvokeResponse) {
	if resp == nil || resp.HighWater == nil || !c.sla.used.Load() {
		return
	}
	c.sla.trk.ObserveHighWater(resp.HighWater.Shard, resp.HighWater.Replica, resp.HighWater.HW)
}

// slaMetrics snapshots the SLA counters for Metrics.
func (c *Client) slaMetrics() SLAMetrics {
	st := c.sla
	st.mu.Lock()
	m := SLAMetrics{
		Reads:         st.reads,
		ByReplica:     make(map[int]int64, len(st.byReplica)),
		BySubSLA:      make(map[int]int64, len(st.bySub)),
		Misses:        st.misses,
		LatencyMisses: st.latMisses,
	}
	for k, v := range st.byReplica {
		m.ByReplica[k] = v
	}
	for k, v := range st.bySub {
		m.BySubSLA[k] = v
	}
	if st.reads > 0 {
		m.MeanUtility = st.utilSum / float64(st.reads)
	}
	st.mu.Unlock()
	if n := int(c.replicas.Load()); n > 0 && st.used.Load() {
		m.Conditions = st.trk.Conditions(n)
	}
	return m
}

// slaMaybeRefresh starts one background staleness poll when the last
// one is old enough — the channel that keeps avoided replicas'
// estimates live (piggybacks only cover replicas the router still
// sends reads to).
func (c *Client) slaMaybeRefresh() {
	st := c.sla
	now := time.Now().UnixNano()
	last := st.lastPoll.Load()
	if now-last < int64(slaRefreshEvery) || !st.lastPoll.CompareAndSwap(last, now) {
		return
	}
	if !st.refreshing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer st.refreshing.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		resp, err := c.tr.Staleness(ctx)
		if err != nil {
			return
		}
		for _, sh := range resp.Shards {
			for r, rs := range sh.Replicas {
				st.trk.ObserveHighWater(sh.Shard, r, rs.HW)
			}
		}
	}()
}

// Staleness fetches every replica's high-water vector and replication
// lag — the body of GET /v1/staleness.
func (c *Client) Staleness(ctx context.Context) (*wire.StalenessResponse, error) {
	return c.tr.Staleness(ctx)
}

// adtFor resolves the cached sequential spec of a named object. The
// cache fills when the object passes through Client.CreateObject or
// Session.Object; operations on objects the client never created are
// not SLA-routed (their update/query split is unknown).
func (c *Client) adtFor(object string) (cc.ADT, bool) {
	v, ok := c.adts.Load(object)
	if !ok {
		return nil, false
	}
	return v.(cc.ADT), true
}

// rememberADT caches an object's spec for read classification.
func (c *Client) rememberADT(object, adtName string) {
	if t, err := cc.LookupADT(adtName); err == nil {
		c.adts.Store(object, t)
	}
}

// slaStart builds the slaCall for one invocation when the session has
// an SLA and the op is a pure query (classifiable and not an update);
// nil otherwise. It also latches frontier accumulation and makes sure
// the replica count is learned (one healthz, cached) so planning has
// candidates.
func (s *Session) slaStart(object string, in cc.Input) *slaCall {
	sl, router := s.slaFor()
	if sl == nil {
		return nil
	}
	t, ok := s.c.adtFor(object)
	if !ok || t.IsUpdate(in) || !t.IsQuery(in) {
		return nil
	}
	s.c.sla.used.Store(true)
	s.c.learnTopology()
	return &slaCall{sla: sl, router: router}
}
