package client

// The client-side batcher: asynchronous invocations queue per
// session, coalesce into wire.BatchRequests (one group per session,
// ops in submission order), and flush when maxOps are pending or
// maxDelay has passed since the first — the same size+delay policy as
// the server's own broadcast batching (core.Station). Up to
// maxInflight batch RPCs pipeline concurrently; a session whose ops
// are in flight contributes nothing to the next batch until they
// resolve, so one session's ops never race each other across
// requests while independent sessions pipeline freely.

import (
	"context"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// batchOp is one queued invocation. attempt counts self-healing
// re-submissions of this op (0 on first enqueue). readRep names the
// serving replica of a ReadReplica-target read; sc is non-nil for
// SLA-routed reads, whose route is re-planned at every dispatch and
// whose delivered consistency is judged at resolution.
type batchOp struct {
	obj     string
	in      cc.Input
	target  wire.ReadTarget
	readRep *int
	sc      *slaCall
	fut     *Future
	attempt int
}

// sameRoute reports whether two ops can share a batch group: one
// group carries one read target and one explicit read replica.
func sameRoute(a, b batchOp) bool {
	if a.target != b.target {
		return false
	}
	if (a.readRep == nil) != (b.readRep == nil) {
		return false
	}
	return a.readRep == nil || *a.readRep == *b.readRep
}

// sessQueue is one session's pending ops. notBefore delays the next
// dispatch of this session's ops (retry backoff after a failure).
type sessQueue struct {
	ops       []batchOp
	inflight  bool // some of this session's ops are in an unresolved batch
	notBefore time.Time
}

type batcher struct {
	tr          Transport
	cli         *Client // self-healing hooks; nil-safe (plain batching)
	maxOps      int
	maxDelay    time.Duration
	maxInflight int

	mu       sync.Mutex
	cond     *sync.Cond // signalled when a batch resolves (close waits on it)
	queues   map[int]*sessQueue
	order    []int // sessions with queued ops, in arrival order
	queued   int   // total queued ops across sessions
	inflight int   // batch RPCs in flight
	timer    *time.Timer
	closed   bool
}

func newBatcher(tr Transport, maxOps int, maxDelay time.Duration, maxInflight int) *batcher {
	b := &batcher{
		tr:          tr,
		maxOps:      maxOps,
		maxDelay:    maxDelay,
		maxInflight: maxInflight,
		queues:      make(map[int]*sessQueue),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// enqueue appends one op to its session's queue and flushes when the
// size threshold is reached (or arms the delay timer when the queue
// just opened).
func (b *batcher) enqueue(sess int, op batchOp) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		op.fut.reject(ErrClosed)
		return
	}
	q, ok := b.queues[sess]
	if !ok {
		q = &sessQueue{}
		b.queues[sess] = q
	}
	if len(q.ops) == 0 {
		b.order = append(b.order, sess)
	}
	q.ops = append(q.ops, op)
	b.queued++
	if b.queued >= b.maxOps {
		b.flushLocked()
	} else if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.timedFlush)
	}
	b.mu.Unlock()
}

func (b *batcher) timedFlush() {
	b.mu.Lock()
	b.timer = nil
	b.flushLocked()
	b.mu.Unlock()
}

// flushLocked dispatches as many batches as the inflight budget
// allows. Caller holds b.mu.
func (b *batcher) flushLocked() {
	for b.inflight < b.maxInflight {
		req, futs, sessions := b.buildLocked()
		if req == nil {
			break
		}
		b.inflight++
		go b.send(req, futs, sessions)
	}
	switch {
	case b.queued == 0 && b.timer != nil:
		b.timer.Stop()
		b.timer = nil
	case b.queued > 0 && b.timer == nil:
		// Ops remain (their sessions are in flight, or the inflight
		// budget is spent); make sure a flush is scheduled for them.
		b.timer = time.AfterFunc(b.maxDelay, b.timedFlush)
	}
}

// buildLocked assembles one batch from the sessions that are not in
// flight (and not in a retry-backoff window): per session, the
// longest prefix run with a uniform read target (a group carries one
// target), capped at maxOps total. Each group carries its session's
// failover routing (replica pin + causal frontier); a session whose
// replica's circuit breaker is open has its queued ops failed fast
// with the typed error instead of being dispatched. It returns nil
// when nothing is dispatchable.
func (b *batcher) buildLocked() (*wire.BatchRequest, [][]batchOp, []int) {
	var (
		req      wire.BatchRequest
		sent     [][]batchOp
		sessions []int
		budget   = b.maxOps
		now      = time.Now()
	)
	keep := b.order[:0]
	for _, sess := range b.order {
		q := b.queues[sess]
		if len(q.ops) == 0 {
			continue // fully drained earlier; drop from order
		}
		if q.inflight || budget == 0 || now.Before(q.notBefore) {
			keep = append(keep, sess)
			continue
		}
		var rep *int
		var fronts []wire.ShardFrontier
		if b.cli != nil {
			var fastErr error
			rep, fronts, fastErr = b.cli.route(sess)
			if fastErr != nil {
				for _, op := range q.ops {
					op.fut.reject(fastErr)
				}
				b.queued -= len(q.ops)
				q.ops = nil
				continue
			}
			// Re-plan queued SLA reads against current conditions: the
			// route chosen at enqueue time may predate a failure or a
			// staleness change.
			for i := range q.ops {
				if sc := q.ops[i].sc; sc != nil {
					q.ops[i].target, q.ops[i].readRep = b.cli.slaPlan(sess, sc)
				}
			}
		}
		head := q.ops[0]
		n := 0
		for n < len(q.ops) && n < budget && sameRoute(q.ops[n], head) {
			n++
		}
		group := wire.BatchGroup{Session: sess, Target: head.target, Replica: rep, Frontiers: fronts, ReadReplica: head.readRep}
		gf := make([]batchOp, n)
		for i, op := range q.ops[:n] {
			group.Ops = append(group.Ops, wire.BatchOp{Object: op.obj, Method: op.in.Method, Args: op.in.Args})
			gf[i] = op
		}
		q.ops = q.ops[n:]
		b.queued -= n
		budget -= n
		q.inflight = true
		req.Groups = append(req.Groups, group)
		sent = append(sent, gf)
		sessions = append(sessions, sess)
		if len(q.ops) > 0 {
			keep = append(keep, sess)
		}
	}
	b.order = keep
	if len(req.Groups) == 0 {
		return nil, nil, nil
	}
	return &req, sent, sessions
}

// send performs one batch RPC and resolves its futures. A retryable
// transport-level failure retries the whole RPC under the client's
// backoff budget (re-routing each group first, since a failover may
// have moved its session); a non-retryable one fails every op. After
// a served RPC, ops that failed retryably (their replica drained,
// crashed, or lagged the frontier) are re-queued at the front of
// their session's queue — order within the session preserved — with
// a backoff window, until their attempt budget runs out.
//
// Over HTTP a transport-level retry is at-least-once: the server may
// have applied the batch before the connection died, and the retry
// re-applies it. The loopback transport never has that window. The
// chaos harness asserts over loopback for exactly this reason; HTTP
// callers enabling WithRetry accept at-least-once updates under
// connection loss (idempotent ops, or dedup above the SDK).
func (b *batcher) send(req *wire.BatchRequest, sent [][]batchOp, sessions []int) {
	attempts := 1
	if b.cli != nil {
		attempts = b.cli.heal.attempts()
	}
	var resp *wire.BatchResponse
	var err error
	var rpcStart time.Time
	for a := 0; a < attempts; a++ {
		if a > 0 {
			b.cli.met.retries.Add(1)
			time.Sleep(b.cli.backoff(a - 1))
			for gi, sess := range sessions {
				rep, fronts, fastErr := b.cli.route(sess)
				if fastErr == nil {
					req.Groups[gi].Replica, req.Groups[gi].Frontiers = rep, fronts
				}
			}
		}
		if b.cli != nil {
			req.Epoch = b.cli.ringEpoch.Load()
		}
		rpcStart = time.Now()
		resp, err = b.tr.Batch(context.Background(), req)
		if err == nil || !retryable(err) {
			break
		}
		if isStaleRing(err) {
			// Topology change, not a replica failure: refresh the ring and
			// retry with the current epoch (the batch never ran).
			b.cli.refreshRing(context.Background())
			continue
		}
		for _, sess := range sessions {
			b.cli.noteFailure(sess, err)
		}
	}
	b.mu.Lock()
	b.inflight--
	now := time.Now()
	for gi, sess := range sessions {
		q := b.queues[sess]
		if q != nil {
			q.inflight = false
		}
		var requeue []batchOp
		var groupErr error // worst per-op failure, for the breaker/failover
		elapsed := time.Since(rpcStart)
		for i, op := range sent[gi] {
			switch {
			case err != nil:
				if op.sc != nil && b.cli != nil {
					b.cli.slaObserve(op.sc, nil, elapsed, err)
				}
				op.fut.reject(err)
			case gi >= len(resp.Groups) || len(resp.Groups[gi].Results) != len(sent[gi]):
				e := wire.Errf(wire.CodeInternal, "malformed batch response for session %d", sess)
				if op.sc != nil && b.cli != nil {
					b.cli.slaObserve(op.sc, nil, elapsed, e)
				}
				op.fut.reject(e)
			default:
				r := resp.Groups[gi].Results[i]
				if r.Err == nil {
					if op.sc != nil && b.cli != nil {
						// Judge before the group's frontiers merge below, or
						// the read's own echo would vacuously dominate.
						b.cli.slaJudgeRMW(sess, op.sc, r.Output)
						b.cli.slaObserve(op.sc, r.Output, elapsed, nil)
					} else if b.cli != nil {
						b.cli.slaNoteHighWater(r.Output)
					}
					op.fut.resolve(outputFromWire(r.Output))
					continue
				}
				if breakerWorthy(r.Err) || groupErr == nil && retryable(r.Err) {
					groupErr = r.Err
				}
				if b.cli != nil && retryable(r.Err) && op.attempt+1 < attempts {
					op.attempt++
					requeue = append(requeue, op)
					continue
				}
				if op.sc != nil && b.cli != nil {
					b.cli.slaObserve(op.sc, nil, elapsed, r.Err)
				}
				op.fut.reject(r.Err)
			}
		}
		if b.cli != nil && err == nil && resp != nil && gi < len(resp.Groups) {
			b.cli.mergeFronts(sess, resp.Groups[gi].Frontiers)
			if groupErr != nil {
				b.cli.noteFailure(sess, groupErr)
			} else {
				b.cli.noteSuccess(sess, nil)
			}
		}
		switch {
		case len(requeue) > 0:
			if q == nil {
				q = &sessQueue{}
				b.queues[sess] = q
			}
			if len(q.ops) == 0 {
				b.order = append(b.order, sess)
			}
			q.ops = append(requeue, q.ops...)
			b.queued += len(requeue)
			q.notBefore = now.Add(b.cli.backoff(requeue[0].attempt - 1))
		case q != nil && len(q.ops) == 0:
			// Idle session: drop its entry, or the map grows by one dead
			// sessQueue per session id ever used (enqueue recreates it on
			// demand).
			delete(b.queues, sess)
		}
	}
	b.flushLocked()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// close flushes and waits until every queued and in-flight op has
// resolved. New enqueues are rejected with ErrClosed.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.flushLocked()
	for b.inflight > 0 || b.queued > 0 {
		b.cond.Wait()
	}
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
}
