package client

// The client-side batcher: asynchronous invocations queue per
// session, coalesce into wire.BatchRequests (one group per session,
// ops in submission order), and flush when maxOps are pending or
// maxDelay has passed since the first — the same size+delay policy as
// the server's own broadcast batching (core.Station). Up to
// maxInflight batch RPCs pipeline concurrently; a session whose ops
// are in flight contributes nothing to the next batch until they
// resolve, so one session's ops never race each other across
// requests while independent sessions pipeline freely.

import (
	"context"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/cc"
	"github.com/paper-repro/ccbm/cc/cluster/wire"
)

// batchOp is one queued invocation.
type batchOp struct {
	obj    string
	in     cc.Input
	target wire.ReadTarget
	fut    *Future
}

// sessQueue is one session's pending ops.
type sessQueue struct {
	ops      []batchOp
	inflight bool // some of this session's ops are in an unresolved batch
}

type batcher struct {
	tr          Transport
	maxOps      int
	maxDelay    time.Duration
	maxInflight int

	mu       sync.Mutex
	cond     *sync.Cond // signalled when a batch resolves (close waits on it)
	queues   map[int]*sessQueue
	order    []int // sessions with queued ops, in arrival order
	queued   int   // total queued ops across sessions
	inflight int   // batch RPCs in flight
	timer    *time.Timer
	closed   bool
}

func newBatcher(tr Transport, maxOps int, maxDelay time.Duration, maxInflight int) *batcher {
	b := &batcher{
		tr:          tr,
		maxOps:      maxOps,
		maxDelay:    maxDelay,
		maxInflight: maxInflight,
		queues:      make(map[int]*sessQueue),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// enqueue appends one op to its session's queue and flushes when the
// size threshold is reached (or arms the delay timer when the queue
// just opened).
func (b *batcher) enqueue(sess int, op batchOp) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		op.fut.reject(ErrClosed)
		return
	}
	q, ok := b.queues[sess]
	if !ok {
		q = &sessQueue{}
		b.queues[sess] = q
	}
	if len(q.ops) == 0 {
		b.order = append(b.order, sess)
	}
	q.ops = append(q.ops, op)
	b.queued++
	if b.queued >= b.maxOps {
		b.flushLocked()
	} else if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.timedFlush)
	}
	b.mu.Unlock()
}

func (b *batcher) timedFlush() {
	b.mu.Lock()
	b.timer = nil
	b.flushLocked()
	b.mu.Unlock()
}

// flushLocked dispatches as many batches as the inflight budget
// allows. Caller holds b.mu.
func (b *batcher) flushLocked() {
	for b.inflight < b.maxInflight {
		req, futs, sessions := b.buildLocked()
		if req == nil {
			break
		}
		b.inflight++
		go b.send(req, futs, sessions)
	}
	switch {
	case b.queued == 0 && b.timer != nil:
		b.timer.Stop()
		b.timer = nil
	case b.queued > 0 && b.timer == nil:
		// Ops remain (their sessions are in flight, or the inflight
		// budget is spent); make sure a flush is scheduled for them.
		b.timer = time.AfterFunc(b.maxDelay, b.timedFlush)
	}
}

// buildLocked assembles one batch from the sessions that are not in
// flight: per session, the longest prefix run with a uniform read
// target (a group carries one target), capped at maxOps total. It
// returns nil when nothing is dispatchable.
func (b *batcher) buildLocked() (*wire.BatchRequest, [][]*Future, []int) {
	var (
		req      wire.BatchRequest
		futs     [][]*Future
		sessions []int
		budget   = b.maxOps
	)
	keep := b.order[:0]
	for _, sess := range b.order {
		q := b.queues[sess]
		if len(q.ops) == 0 {
			continue // fully drained earlier; drop from order
		}
		if q.inflight || budget == 0 {
			keep = append(keep, sess)
			continue
		}
		target := q.ops[0].target
		n := 0
		for n < len(q.ops) && n < budget && q.ops[n].target == target {
			n++
		}
		group := wire.BatchGroup{Session: sess, Target: target}
		gf := make([]*Future, n)
		for i, op := range q.ops[:n] {
			group.Ops = append(group.Ops, wire.BatchOp{Object: op.obj, Method: op.in.Method, Args: op.in.Args})
			gf[i] = op.fut
		}
		q.ops = q.ops[n:]
		b.queued -= n
		budget -= n
		q.inflight = true
		req.Groups = append(req.Groups, group)
		futs = append(futs, gf)
		sessions = append(sessions, sess)
		if len(q.ops) > 0 {
			keep = append(keep, sess)
		}
	}
	b.order = keep
	if len(req.Groups) == 0 {
		return nil, nil, nil
	}
	return &req, futs, sessions
}

// send performs one batch RPC and resolves its futures. A transport
// error fails every op of the batch; a malformed response fails the
// affected group.
func (b *batcher) send(req *wire.BatchRequest, futs [][]*Future, sessions []int) {
	resp, err := b.tr.Batch(context.Background(), req)
	b.mu.Lock()
	b.inflight--
	for gi, sess := range sessions {
		if q := b.queues[sess]; q != nil {
			q.inflight = false
			if len(q.ops) == 0 {
				// Idle session: drop its entry, or the map grows by one
				// dead sessQueue per session id ever used (enqueue
				// recreates it on demand).
				delete(b.queues, sess)
			}
		}
		for i, f := range futs[gi] {
			switch {
			case err != nil:
				f.reject(err)
			case gi >= len(resp.Groups) || len(resp.Groups[gi].Results) != len(futs[gi]):
				f.reject(wire.Errf(wire.CodeInternal, "malformed batch response for session %d", sess))
			default:
				r := resp.Groups[gi].Results[i]
				if r.Err != nil {
					f.reject(r.Err)
				} else {
					f.resolve(outputFromWire(r.Output))
				}
			}
		}
	}
	b.flushLocked()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// close flushes and waits until every queued and in-flight op has
// resolved. New enqueues are rejected with ErrClosed.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.flushLocked()
	for b.inflight > 0 || b.queued > 0 {
		b.cond.Wait()
	}
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
}
