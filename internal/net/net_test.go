package net_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/paper-repro/ccbm/internal/net"
)

func TestLiveDelivery(t *testing.T) {
	lv := net.NewLive(2)
	defer lv.Close()
	var got atomic.Int64
	lv.Register(0, func(int, any) {})
	lv.Register(1, func(from int, payload any) {
		if from == 0 && payload == "hi" {
			got.Add(1)
		}
	})
	lv.Send(0, 1, "hi")
	lv.Quiesce()
	if got.Load() != 1 {
		t.Fatalf("deliveries = %d", got.Load())
	}
}

func TestLiveSequentialPerProcess(t *testing.T) {
	lv := net.NewLive(2)
	defer lv.Close()
	var mu sync.Mutex
	var order []int
	inHandler := false
	lv.Register(0, func(int, any) {})
	lv.Register(1, func(_ int, payload any) {
		mu.Lock()
		if inHandler {
			t.Error("handler re-entered concurrently")
		}
		inHandler = true
		order = append(order, payload.(int))
		inHandler = false
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		lv.Send(0, 1, i)
	}
	lv.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 100 {
		t.Fatalf("delivered %d", len(order))
	}
	// Same-sender messages through one mailbox arrive in order.
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestLiveCrash(t *testing.T) {
	lv := net.NewLive(2)
	defer lv.Close()
	var got atomic.Int64
	lv.Register(0, func(int, any) {})
	lv.Register(1, func(int, any) { got.Add(1) })
	lv.Crash(1)
	if !lv.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
	lv.Send(0, 1, "x")
	lv.Quiesce()
	if got.Load() != 0 {
		t.Fatal("crashed process handled a message")
	}
}

func TestLiveConcurrentSenders(t *testing.T) {
	lv := net.NewLive(4)
	defer lv.Close()
	var got atomic.Int64
	for i := 0; i < 4; i++ {
		lv.Register(i, func(int, any) { got.Add(1) })
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lv.Send(s, (s+1)%4, i)
			}
		}(s)
	}
	wg.Wait()
	lv.Quiesce()
	if got.Load() != 200 {
		t.Fatalf("deliveries = %d, want 200", got.Load())
	}
}

func TestLiveCloseIdempotent(t *testing.T) {
	lv := net.NewLive(1)
	lv.Register(0, func(int, any) {})
	lv.Close()
	lv.Close() // must not panic
	lv.Send(0, 0, "dropped")
}

func TestLiveDoubleRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double register did not panic")
		}
	}()
	lv := net.NewLive(1)
	defer lv.Close()
	lv.Register(0, func(int, any) {})
	lv.Register(0, func(int, any) {})
}
