// Package net defines the message-passing abstraction shared by the
// deterministic simulator (internal/sim) and the live goroutine
// transport defined here. The model is the paper's Sec. 6.1: n
// asynchronous sequential processes, point-to-point messages with
// arbitrary finite delays, crash-stop failures, no bound on the number
// of crashes.
package net

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Handler consumes a message delivered to a process. Handlers of a
// single process are never invoked concurrently (processes are
// sequential); handlers of different processes may be, depending on
// the transport.
type Handler func(from int, payload any)

// Transport moves opaque payloads between n processes.
type Transport interface {
	// N returns the number of processes.
	N() int
	// Register installs the message handler for process id. It must be
	// called for every process before any Send.
	Register(id int, h Handler)
	// Send queues a message from process `from` to process `to`. It
	// never blocks on delivery (asynchronous system).
	Send(from, to int, payload any)
	// Crash stops a process: it no longer receives messages and its
	// sends are dropped.
	Crash(id int)
	// Crashed reports whether the process has crashed.
	Crashed(id int) bool
}

// Live is a goroutine-based Transport: each process owns a mailbox
// goroutine draining an unbounded queue, so handlers of one process
// run sequentially while processes run genuinely in parallel. Send
// never blocks (asynchronous system) and every method is safe against
// every other concurrently — including Close, which the serving layer
// exercises under full load.
//
// Live also carries the fault-injection surface the chaos harness
// drives: Partition/Heal cut and restore links, Restart revives a
// crashed process, and SetLinkFault adds per-link delay/jitter/drop.
// Every injected fault is a legal behavior of the paper's asynchronous
// system (arbitrary finite delays, message loss on cut links, crash-
// stop) — the fault API only makes the adversary schedulable.
type Live struct {
	n      int
	mu     sync.Mutex
	idle   *sync.Cond
	boxes  []*mailbox
	hs     []Handler
	dead   []bool
	cut    map[[2]int]bool      // severed links (both directions recorded)
	faults map[[2]int]linkFault // per-link delay/jitter/drop
	rng    *rand.Rand           // drop/jitter draws, guarded by mu
	inFly  int
	closed bool
	wg     sync.WaitGroup
}

// linkFault is the per-link degradation applied to Send.
type linkFault struct {
	delay  time.Duration
	jitter time.Duration
	drop   float64
}

type liveMsg struct {
	from    int
	payload any
}

// mailbox is one process's unbounded inbox. It has its own lock so a
// push never contends with other processes' traffic, and so shutdown
// can be flagged without closing a channel out from under concurrent
// senders (the seed transport's Send/Close panic).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []liveMsg
	head   int
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// push enqueues a message unless the mailbox is shut down; it reports
// whether the message was accepted. It never blocks.
func (b *mailbox) push(m liveMsg) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	b.queue = append(b.queue, m)
	b.cond.Signal()
	b.mu.Unlock()
	return true
}

// pop blocks until a message is available or the mailbox shuts down;
// ok reports a message (false means the drainer should exit).
func (b *mailbox) pop() (liveMsg, bool) {
	b.mu.Lock()
	for b.head == len(b.queue) && !b.closed {
		b.cond.Wait()
	}
	if b.head == len(b.queue) {
		b.mu.Unlock()
		return liveMsg{}, false
	}
	m := b.queue[b.head]
	b.queue[b.head] = liveMsg{}
	b.head++
	if b.head == len(b.queue) {
		b.queue, b.head = b.queue[:0], 0
	}
	b.mu.Unlock()
	return m, true
}

// drain discards every queued message and returns how many were
// dropped; when terminal, the mailbox also stops accepting pushes and
// wakes its drainer to exit.
func (b *mailbox) drain(terminal bool) int {
	b.mu.Lock()
	dropped := len(b.queue) - b.head
	b.queue, b.head = nil, 0
	if terminal {
		b.closed = true
	}
	b.cond.Broadcast()
	b.mu.Unlock()
	return dropped
}

// NewLive creates a live transport for n processes.
func NewLive(n int) *Live {
	l := &Live{
		n:      n,
		boxes:  make([]*mailbox, n),
		hs:     make([]Handler, n),
		dead:   make([]bool, n),
		cut:    make(map[[2]int]bool),
		faults: make(map[[2]int]linkFault),
		rng:    rand.New(rand.NewSource(1)),
	}
	l.idle = sync.NewCond(&l.mu)
	for i := range l.boxes {
		l.boxes[i] = newMailbox()
	}
	return l
}

// N implements Transport.
func (l *Live) N() int { return l.n }

// Register implements Transport and starts the process's mailbox
// goroutine.
func (l *Live) Register(id int, h Handler) {
	l.mu.Lock()
	if l.hs[id] != nil {
		l.mu.Unlock()
		panic(fmt.Sprintf("net: process %d registered twice", id))
	}
	l.hs[id] = h
	l.wg.Add(1)
	l.mu.Unlock()
	go func() {
		defer l.wg.Done()
		for {
			m, ok := l.boxes[id].pop()
			if !ok {
				return
			}
			l.mu.Lock()
			dead := l.dead[id]
			l.mu.Unlock()
			if !dead {
				h(m.from, m.payload)
			}
			l.settle(1)
		}
	}()
}

// settle removes k messages from the in-flight count, waking Quiesce
// when the network goes idle.
func (l *Live) settle(k int) {
	if k == 0 {
		return
	}
	l.mu.Lock()
	l.inFly -= k
	if l.inFly == 0 {
		l.idle.Broadcast()
	}
	l.mu.Unlock()
}

// Send implements Transport. It never blocks and never panics: a
// message racing a concurrent Close or Crash of the destination is
// silently discarded, exactly as if it were dropped in flight.
// Messages on a cut link are dropped (a partition is message loss);
// a faulted link may drop the message or defer its delivery.
func (l *Live) Send(from, to int, payload any) {
	l.mu.Lock()
	if l.closed || l.dead[from] || l.dead[to] || l.cut[[2]int{from, to}] {
		l.mu.Unlock()
		return
	}
	var lag time.Duration
	if f, ok := l.faults[[2]int{from, to}]; ok {
		if f.drop > 0 && l.rng.Float64() < f.drop {
			l.mu.Unlock()
			return
		}
		lag = f.delay
		if f.jitter > 0 {
			lag += time.Duration(l.rng.Int63n(int64(f.jitter)))
		}
	}
	l.inFly++
	l.mu.Unlock()
	if lag > 0 {
		// A delayed message stays in flight (Quiesce waits for it); it
		// re-checks liveness at delivery time, so a crash or cut that
		// lands during the lag drops it exactly like an in-network loss.
		time.AfterFunc(lag, func() {
			l.mu.Lock()
			dropped := l.closed || l.dead[from] || l.dead[to] || l.cut[[2]int{from, to}]
			l.mu.Unlock()
			if dropped || !l.boxes[to].push(liveMsg{from: from, payload: payload}) {
				l.settle(1)
			}
		})
		return
	}
	if !l.boxes[to].push(liveMsg{from: from, payload: payload}) {
		// Lost the race with Close: the message is dropped, so it must
		// leave the in-flight count or Quiesce would hang.
		l.settle(1)
	}
}

// Partition cuts both directions of every link between group a and
// group b. Messages already queued at a destination are delivered
// (they were "in the network" before the cut); messages sent across a
// cut link are lost, exactly as the asynchronous model allows. Cuts
// accumulate across calls; Heal removes them all.
func (l *Live) Partition(a, b []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range a {
		for _, q := range b {
			l.cut[[2]int{p, q}] = true
			l.cut[[2]int{q, p}] = true
		}
	}
}

// Heal removes every partition cut. It does not resurrect lost
// messages — recovering them is the anti-entropy layer's job.
func (l *Live) Heal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cut = make(map[[2]int]bool)
}

// Partitioned reports whether the from→to link is currently cut.
func (l *Live) Partitioned(from, to int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cut[[2]int{from, to}]
}

// SetLinkFault degrades the from→to link: every message waits delay
// plus a uniform draw in [0, jitter), and is dropped with probability
// drop. Zero values clear the fault. Degraded links model the slow,
// lossy paths a real deployment sees without a full partition.
func (l *Live) SetLinkFault(from, to int, delay, jitter time.Duration, drop float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := [2]int{from, to}
	if delay <= 0 && jitter <= 0 && drop <= 0 {
		delete(l.faults, k)
		return
	}
	l.faults[k] = linkFault{delay: delay, jitter: jitter, drop: drop}
}

// ClearLinkFaults removes every per-link delay/jitter/drop fault.
func (l *Live) ClearLinkFaults() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = make(map[[2]int]linkFault)
}

// Restart revives a crashed process: it receives messages again from
// the moment of the call. Its pre-crash backlog stays lost (Crash
// discarded it) and nothing is replayed — a restarted process
// resynchronizes through the replication layer above (gossip rounds
// or an explicit resync), not through the transport.
func (l *Live) Restart(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dead[id] = false
}

// Crash implements Transport. The process's queued messages are
// discarded (a crashed process handles nothing further, even under a
// backlog); a handler already running is allowed to finish, matching
// crash-stop at handler granularity.
func (l *Live) Crash(id int) {
	l.mu.Lock()
	if l.dead[id] {
		l.mu.Unlock()
		return
	}
	l.dead[id] = true
	l.mu.Unlock()
	l.settle(l.boxes[id].drain(false))
}

// Crashed implements Transport.
func (l *Live) Crashed(id int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead[id]
}

// Quiesce blocks until no message is in flight or being handled. It is
// a test/experiment convenience: with no new invocations, quiescence
// means every broadcast has been delivered everywhere.
func (l *Live) Quiesce() {
	l.mu.Lock()
	for l.inFly != 0 {
		l.idle.Wait()
	}
	l.mu.Unlock()
}

// Close shuts the mailboxes down and waits for the drainer goroutines
// (and thus any in-flight handler) to finish. Pending messages are
// discarded. Close is idempotent and safe against concurrent Sends,
// which become no-ops.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	dropped := 0
	for _, b := range l.boxes {
		dropped += b.drain(true)
	}
	l.settle(dropped)
	l.wg.Wait()
}
