// Package net defines the message-passing abstraction shared by the
// deterministic simulator (internal/sim) and the live goroutine
// transport defined here. The model is the paper's Sec. 6.1: n
// asynchronous sequential processes, point-to-point messages with
// arbitrary finite delays, crash-stop failures, no bound on the number
// of crashes.
package net

import (
	"fmt"
	"sync"
)

// Handler consumes a message delivered to a process. Handlers of a
// single process are never invoked concurrently (processes are
// sequential); handlers of different processes may be, depending on
// the transport.
type Handler func(from int, payload any)

// Transport moves opaque payloads between n processes.
type Transport interface {
	// N returns the number of processes.
	N() int
	// Register installs the message handler for process id. It must be
	// called for every process before any Send.
	Register(id int, h Handler)
	// Send queues a message from process `from` to process `to`. It
	// never blocks on delivery (asynchronous system).
	Send(from, to int, payload any)
	// Crash stops a process: it no longer receives messages and its
	// sends are dropped.
	Crash(id int)
	// Crashed reports whether the process has crashed.
	Crashed(id int) bool
}

// Live is a goroutine-based Transport: each process owns a mailbox
// goroutine draining a queue, so handlers of one process run
// sequentially while processes run genuinely in parallel. It is used by
// the examples and the blocking SC/consensus implementations; the
// deterministic experiments use internal/sim instead.
type Live struct {
	n      int
	mu     sync.Mutex
	idle   *sync.Cond
	inbox  []chan liveMsg
	hs     []Handler
	dead   []bool
	inFly  int
	closed bool
}

type liveMsg struct {
	from    int
	payload any
}

// NewLive creates a live transport for n processes.
func NewLive(n int) *Live {
	l := &Live{
		n:     n,
		inbox: make([]chan liveMsg, n),
		hs:    make([]Handler, n),
		dead:  make([]bool, n),
	}
	l.idle = sync.NewCond(&l.mu)
	for i := range l.inbox {
		l.inbox[i] = make(chan liveMsg, 1024)
	}
	return l
}

// N implements Transport.
func (l *Live) N() int { return l.n }

// Register implements Transport and starts the process's mailbox
// goroutine.
func (l *Live) Register(id int, h Handler) {
	l.mu.Lock()
	if l.hs[id] != nil {
		l.mu.Unlock()
		panic(fmt.Sprintf("net: process %d registered twice", id))
	}
	l.hs[id] = h
	l.mu.Unlock()
	go func() {
		for m := range l.inbox[id] {
			l.mu.Lock()
			dead := l.dead[id]
			l.mu.Unlock()
			if !dead {
				h(m.from, m.payload)
			}
			l.mu.Lock()
			l.inFly--
			if l.inFly == 0 {
				l.idle.Broadcast()
			}
			l.mu.Unlock()
		}
	}()
}

// Send implements Transport.
func (l *Live) Send(from, to int, payload any) {
	l.mu.Lock()
	if l.closed || l.dead[from] || l.dead[to] {
		l.mu.Unlock()
		return
	}
	l.inFly++
	l.mu.Unlock()
	l.inbox[to] <- liveMsg{from: from, payload: payload}
}

// Crash implements Transport.
func (l *Live) Crash(id int) {
	l.mu.Lock()
	l.dead[id] = true
	l.mu.Unlock()
}

// Crashed implements Transport.
func (l *Live) Crashed(id int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead[id]
}

// Quiesce blocks until no message is in flight or being handled. It is
// a test/experiment convenience: with no new invocations, quiescence
// means every broadcast has been delivered everywhere.
func (l *Live) Quiesce() {
	l.mu.Lock()
	for l.inFly != 0 {
		l.idle.Wait()
	}
	l.mu.Unlock()
}

// Close shuts the mailboxes down. Pending messages are discarded.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	for _, ch := range l.inbox {
		close(ch)
	}
}
