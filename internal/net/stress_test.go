package net_test

// Stress tests for the live transport under the race detector: the
// transport must survive arbitrary interleavings of Send, Crash,
// Quiesce and Close without panicking, deadlocking or corrupting the
// in-flight accounting. TestLiveSendCloseRace reproduces the seed
// bug — Send re-checked `closed` under the mutex but performed the
// channel send after unlocking, so a concurrent Close panicked with
// "send on closed channel".

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/internal/net"
)

// TestLiveSendCloseRace hammers Send from many goroutines while Close
// lands mid-burst. On the pre-fix transport this panics within a few
// iterations; on the fixed one every message is either delivered or
// discarded, silently.
func TestLiveSendCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		lv := net.NewLive(4)
		for i := 0; i < 4; i++ {
			lv.Register(i, func(int, any) {})
		}
		var start, done sync.WaitGroup
		for s := 0; s < 4; s++ {
			for g := 0; g < 2; g++ {
				start.Add(1)
				done.Add(1)
				go func(s int) {
					defer done.Done()
					start.Done()
					start.Wait() // maximize overlap with Close
					for i := 0; i < 200; i++ {
						lv.Send(s, (s+i)%4, i)
					}
				}(s)
			}
		}
		start.Wait()
		lv.Close()
		done.Wait()
		// Close is terminal: the transport stays usable as a no-op.
		lv.Send(0, 1, "after close")
		lv.Quiesce()
	}
}

// TestLiveSendCrashQuiesce interleaves senders, crashes and quiescence
// waits: Quiesce must return (exact in-flight accounting even when
// Crash discards queued messages) and crashed processes must handle
// nothing once quiescent.
func TestLiveSendCrashQuiesce(t *testing.T) {
	lv := net.NewLive(8)
	defer lv.Close()
	var handled [8]atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		lv.Register(i, func(int, any) {
			handled[i].Add(1)
		})
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				lv.Send(s, i%8, i)
			}
		}(s)
	}
	// Crash the upper half while traffic flows.
	for id := 4; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lv.Crash(id)
		}(id)
	}
	wg.Wait()
	lv.Quiesce()
	for id := 4; id < 8; id++ {
		if !lv.Crashed(id) {
			t.Fatalf("Crashed(%d) = false", id)
		}
	}
	// After quiescence with no senders, crashed processes handle nothing
	// further.
	snap := [4]int64{}
	for id := 4; id < 8; id++ {
		snap[id-4] = handled[id].Load()
	}
	time.Sleep(10 * time.Millisecond)
	for id := 4; id < 8; id++ {
		if got := handled[id].Load(); got != snap[id-4] {
			t.Fatalf("crashed process %d handled %d messages after quiescence (was %d)", id, got, snap[id-4])
		}
	}
}

// TestLiveQuiesceDuringClose checks that Quiesce never hangs when
// Close discards a backlog: every discarded message must be removed
// from the in-flight count.
func TestLiveQuiesceDuringClose(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		lv := net.NewLive(2)
		blocked := make(chan struct{})
		release := make(chan struct{})
		var once sync.Once
		lv.Register(0, func(int, any) {})
		lv.Register(1, func(int, any) {
			once.Do(func() { close(blocked) })
			<-release
		})
		// Build a backlog behind a handler that is stuck until released.
		for i := 0; i < 100; i++ {
			lv.Send(0, 1, i)
		}
		<-blocked
		qdone := make(chan struct{})
		go func() {
			lv.Quiesce()
			close(qdone)
		}()
		close(release)
		lv.Close()
		select {
		case <-qdone:
		case <-time.After(5 * time.Second):
			t.Fatal("Quiesce hung across Close")
		}
	}
}

// TestLiveChaosCycle hammers the fault-injection surface under the
// race detector: concurrent senders race repeated partition/heal and
// crash/restart cycles plus link-fault churn. The transport must
// neither panic nor corrupt its in-flight accounting (Quiesce must
// return), and after the final heal+restart every link must carry
// messages again.
func TestLiveChaosCycle(t *testing.T) {
	const n = 6
	lv := net.NewLive(n)
	defer lv.Close()
	var handled [n]atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		lv.Register(i, func(int, any) { handled[i].Add(1) })
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lv.Send(s, (s+1+i)%n, i)
			}
		}(s)
	}
	for cycle := 0; cycle < 30; cycle++ {
		lv.Partition([]int{0, 1, 2}, []int{3, 4, 5})
		lv.SetLinkFault(0, 1, 50*time.Microsecond, 20*time.Microsecond, 0.2)
		victim := 3 + cycle%3
		lv.Crash(victim)
		if !lv.Crashed(victim) {
			t.Fatalf("cycle %d: Crashed(%d) = false after Crash", cycle, victim)
		}
		if !lv.Partitioned(0, 3) {
			t.Fatalf("cycle %d: Partitioned(0,3) = false after Partition", cycle)
		}
		lv.Restart(victim)
		lv.ClearLinkFaults()
		lv.Heal()
		if lv.Partitioned(0, 3) {
			t.Fatalf("cycle %d: Partitioned(0,3) = true after Heal", cycle)
		}
		if lv.Crashed(victim) {
			t.Fatalf("cycle %d: Crashed(%d) = true after Restart", cycle, victim)
		}
	}
	close(stop)
	wg.Wait()
	lv.Quiesce()
	// Healed and restarted: every process must be reachable again.
	before := [n]int64{}
	for i := 0; i < n; i++ {
		before[i] = handled[i].Load()
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				lv.Send(s, d, "post-heal")
			}
		}
	}
	lv.Quiesce()
	for i := 0; i < n; i++ {
		if handled[i].Load() != before[i]+int64(n-1) {
			t.Fatalf("process %d handled %d post-heal messages, want %d",
				i, handled[i].Load()-before[i], n-1)
		}
	}
}

// TestLivePartitionDropsAcross pins the partition semantics: messages
// across the cut are dropped (without wedging Quiesce), messages
// within a side flow, and Heal restores the cut links.
func TestLivePartitionDropsAcross(t *testing.T) {
	lv := net.NewLive(4)
	defer lv.Close()
	var handled [4]atomic.Int64
	for i := 0; i < 4; i++ {
		i := i
		lv.Register(i, func(int, any) { handled[i].Add(1) })
	}
	lv.Partition([]int{0, 1}, []int{2, 3})
	lv.Send(0, 2, "cut")    // dropped
	lv.Send(2, 0, "cut")    // dropped
	lv.Send(0, 1, "intact") // delivered
	lv.Send(2, 3, "intact") // delivered
	lv.Quiesce()
	if got := handled[2].Load(); got != 0 {
		t.Fatalf("process 2 handled %d messages across the cut, want 0", got)
	}
	if got := handled[1].Load(); got != 1 {
		t.Fatalf("process 1 handled %d messages within its side, want 1", got)
	}
	lv.Heal()
	lv.Send(0, 2, "healed")
	lv.Quiesce()
	if got := handled[2].Load(); got != 1 {
		t.Fatalf("process 2 handled %d messages after heal, want 1", got)
	}
}

// TestLiveLinkFaultDropAll pins drop=1.0: the link loses everything
// while the reverse direction still delivers, and ClearLinkFaults
// restores it.
func TestLiveLinkFaultDropAll(t *testing.T) {
	lv := net.NewLive(2)
	defer lv.Close()
	var handled [2]atomic.Int64
	for i := 0; i < 2; i++ {
		i := i
		lv.Register(i, func(int, any) { handled[i].Add(1) })
	}
	lv.SetLinkFault(0, 1, 0, 0, 1.0)
	for i := 0; i < 20; i++ {
		lv.Send(0, 1, i)
		lv.Send(1, 0, i)
	}
	lv.Quiesce()
	if got := handled[1].Load(); got != 0 {
		t.Fatalf("faulted link delivered %d messages, want 0", got)
	}
	if got := handled[0].Load(); got != 20 {
		t.Fatalf("reverse link delivered %d messages, want 20", got)
	}
	lv.ClearLinkFaults()
	lv.Send(0, 1, "restored")
	lv.Quiesce()
	if got := handled[1].Load(); got != 1 {
		t.Fatalf("cleared link delivered %d messages, want 1", got)
	}
}

// TestLiveCrashDropsBacklog pins the crash semantics under load: a
// crashed process's queued messages are discarded, not handled.
func TestLiveCrashDropsBacklog(t *testing.T) {
	lv := net.NewLive(2)
	defer lv.Close()
	var handled atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	lv.Register(0, func(int, any) {})
	lv.Register(1, func(int, any) {
		once.Do(func() { close(entered) })
		<-gate
		handled.Add(1)
	})
	for i := 0; i < 50; i++ {
		lv.Send(0, 1, i)
	}
	<-entered // one message is mid-handler
	lv.Crash(1)
	close(gate)
	lv.Quiesce()
	// At most the in-flight handler finished; the backlog is gone.
	if got := handled.Load(); got > 1 {
		t.Fatalf("crashed process handled %d messages, want <= 1", got)
	}
}
