package net_test

// Stress tests for the live transport under the race detector: the
// transport must survive arbitrary interleavings of Send, Crash,
// Quiesce and Close without panicking, deadlocking or corrupting the
// in-flight accounting. TestLiveSendCloseRace reproduces the seed
// bug — Send re-checked `closed` under the mutex but performed the
// channel send after unlocking, so a concurrent Close panicked with
// "send on closed channel".

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/internal/net"
)

// TestLiveSendCloseRace hammers Send from many goroutines while Close
// lands mid-burst. On the pre-fix transport this panics within a few
// iterations; on the fixed one every message is either delivered or
// discarded, silently.
func TestLiveSendCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		lv := net.NewLive(4)
		for i := 0; i < 4; i++ {
			lv.Register(i, func(int, any) {})
		}
		var start, done sync.WaitGroup
		for s := 0; s < 4; s++ {
			for g := 0; g < 2; g++ {
				start.Add(1)
				done.Add(1)
				go func(s int) {
					defer done.Done()
					start.Done()
					start.Wait() // maximize overlap with Close
					for i := 0; i < 200; i++ {
						lv.Send(s, (s+i)%4, i)
					}
				}(s)
			}
		}
		start.Wait()
		lv.Close()
		done.Wait()
		// Close is terminal: the transport stays usable as a no-op.
		lv.Send(0, 1, "after close")
		lv.Quiesce()
	}
}

// TestLiveSendCrashQuiesce interleaves senders, crashes and quiescence
// waits: Quiesce must return (exact in-flight accounting even when
// Crash discards queued messages) and crashed processes must handle
// nothing once quiescent.
func TestLiveSendCrashQuiesce(t *testing.T) {
	lv := net.NewLive(8)
	defer lv.Close()
	var handled [8]atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		lv.Register(i, func(int, any) {
			handled[i].Add(1)
		})
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				lv.Send(s, i%8, i)
			}
		}(s)
	}
	// Crash the upper half while traffic flows.
	for id := 4; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lv.Crash(id)
		}(id)
	}
	wg.Wait()
	lv.Quiesce()
	for id := 4; id < 8; id++ {
		if !lv.Crashed(id) {
			t.Fatalf("Crashed(%d) = false", id)
		}
	}
	// After quiescence with no senders, crashed processes handle nothing
	// further.
	snap := [4]int64{}
	for id := 4; id < 8; id++ {
		snap[id-4] = handled[id].Load()
	}
	time.Sleep(10 * time.Millisecond)
	for id := 4; id < 8; id++ {
		if got := handled[id].Load(); got != snap[id-4] {
			t.Fatalf("crashed process %d handled %d messages after quiescence (was %d)", id, got, snap[id-4])
		}
	}
}

// TestLiveQuiesceDuringClose checks that Quiesce never hangs when
// Close discards a backlog: every discarded message must be removed
// from the in-flight count.
func TestLiveQuiesceDuringClose(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		lv := net.NewLive(2)
		blocked := make(chan struct{})
		release := make(chan struct{})
		var once sync.Once
		lv.Register(0, func(int, any) {})
		lv.Register(1, func(int, any) {
			once.Do(func() { close(blocked) })
			<-release
		})
		// Build a backlog behind a handler that is stuck until released.
		for i := 0; i < 100; i++ {
			lv.Send(0, 1, i)
		}
		<-blocked
		qdone := make(chan struct{})
		go func() {
			lv.Quiesce()
			close(qdone)
		}()
		close(release)
		lv.Close()
		select {
		case <-qdone:
		case <-time.After(5 * time.Second):
			t.Fatal("Quiesce hung across Close")
		}
	}
}

// TestLiveCrashDropsBacklog pins the crash semantics under load: a
// crashed process's queued messages are discarded, not handled.
func TestLiveCrashDropsBacklog(t *testing.T) {
	lv := net.NewLive(2)
	defer lv.Close()
	var handled atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	lv.Register(0, func(int, any) {})
	lv.Register(1, func(int, any) {
		once.Do(func() { close(entered) })
		<-gate
		handled.Add(1)
	})
	for i := 0; i < 50; i++ {
		lv.Send(0, 1, i)
	}
	<-entered // one message is mid-handler
	lv.Crash(1)
	close(gate)
	lv.Quiesce()
	// At most the in-flight handler finished; the backlog is gone.
	if got := handled.Load(); got > 1 {
		t.Fatalf("crashed process handled %d messages, want <= 1", got)
	}
}
