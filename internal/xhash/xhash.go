// Package xhash provides the 64-bit fingerprint mixer shared by the
// search memo tables of internal/check, the bitset fingerprints of
// internal/porder and the state fingerprints of internal/adt.
//
// The checkers memoize failed search states by fingerprint instead of
// by canonical string key: a state is folded word by word into a
// uint64 with Mix, whose full-avalanche finalizer (the splitmix64
// output permutation) makes accidental collisions across the ≤ 2^32
// states a budgeted search can visit vanishingly unlikely. Inputs are
// not adversarial — they come from the histories being checked — so a
// keyed hash is unnecessary.
package xhash

// Seed is the canonical starting value for incremental fingerprints
// (the FNV-1a 64-bit offset basis; any fixed odd constant would do).
const Seed uint64 = 0xcbf29ce484222325

// Mix folds one 64-bit word into a running fingerprint. It is the
// splitmix64 output permutation applied to h + v + γ where γ is the
// golden-ratio increment; sequential folding makes the result depend
// on the order of the folded words.
func Mix(h, v uint64) uint64 {
	x := h + v + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int folds a signed integer into a running fingerprint.
func Int(h uint64, v int) uint64 { return Mix(h, uint64(v)) }

// Ints folds a slice of signed integers, length first so that
// sequences that are prefixes of one another cannot collide with
// equal-content states of different lengths.
func Ints(h uint64, vs []int) uint64 {
	h = Mix(h, uint64(len(vs)))
	for _, v := range vs {
		h = Mix(h, uint64(v))
	}
	return h
}
