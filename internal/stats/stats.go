// Package stats provides the small aggregation helpers used by the
// benchmark harness and cmd/ccexperiments: summaries with mean and
// percentiles, and fixed-width table rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return Summary{
		Count: len(s),
		Mean:  sum / float64(len(s)),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   percentile(s, 0.50),
		P95:   percentile(s, 0.95),
		P99:   percentile(s, 0.99),
	}
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample by
// nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f", s.Count, s.Mean, s.P50, s.P95, s.Max)
}

// Table accumulates rows and renders them with aligned columns; the
// experiment tool uses it to regenerate the paper-style tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; values are rendered with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
