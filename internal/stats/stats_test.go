package stats_test

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/paper-repro/ccbm/internal/stats"
)

func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := stats.Summarize(nil)
	if s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

// TestSummarizeProperties via testing/quick: min ≤ p50 ≤ p95 ≤ max and
// mean within [min, max].
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := stats.Summarize(xs)
		if s.Count != len(xs) {
			return false
		}
		ordered := s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
		meanOK := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return ordered && meanOK && s.Min == sorted[0] && s.Max == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryStringIsFinite(t *testing.T) {
	s := stats.Summarize([]float64{1})
	if strings.Contains(s.String(), "NaN") || math.IsNaN(s.Mean) {
		t.Fatalf("summary = %v", s)
	}
}

func TestTable(t *testing.T) {
	tb := stats.NewTable("mode", "ops/s", "msgs")
	tb.Add("CC", 1234.5678, 42)
	tb.Add("CCv", 99.9, 7)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table rendering:\n%s", out)
	}
	if !strings.Contains(lines[0], "mode") || !strings.Contains(lines[2], "1234.57") {
		t.Fatalf("table content:\n%s", out)
	}
	// Columns aligned: header and rows share prefix widths.
	if len(lines[1]) < len("mode") {
		t.Fatal("separator too short")
	}
}
