package broadcast

// Anti-entropy dissemination: the second replication backend. Where
// the relCore layers flood every envelope eagerly and assume the
// transport eventually delivers it (reliable links), the AntiEntropy
// layer treats the network as lossy: every process keeps a per-origin
// contiguous log of the operations it knows, and periodic gossip
// rounds exchange version vectors ("how much of each origin I have")
// so any two connected processes converge by shipping exactly the
// batched delta the other is missing. A partition merely pauses
// convergence between the sides; the first round after a heal repairs
// it, and a crashed-then-restarted process pulls everything it missed
// the same way. Causal delivery order is reconstructed on replay from
// the vector-clock stamp each operation carries, so the CC/CCv
// delivery discipline survives arbitrary loss and reordering.

import (
	"sync"
	"time"

	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// AEOrdering selects the delivery discipline an AntiEntropy layer
// reconstructs on replay.
type AEOrdering int

const (
	// AECausal delivers in causal order, reconstructed from the VC
	// stamp each envelope carries (the CC/CCv backends).
	AECausal AEOrdering = iota
	// AEFIFO delivers each origin's envelopes in broadcast order with
	// no cross-origin constraint (the PC/EC backends; for EC any order
	// would do, and per-origin order is the one the log gives for free).
	AEFIFO
)

// AEConfig tunes an AntiEntropy layer.
type AEConfig struct {
	// Ordering is the reconstructed delivery discipline.
	Ordering AEOrdering
	// Interval is the gossip round period; default 10ms. Each round
	// sends this process's version vector to one peer (round-robin),
	// which answers with the batched delta of everything missing — and
	// gossips back its own digest when the digest reveals it is behind,
	// making every exchange a push-pull pair.
	Interval time.Duration
	// MaxDelta caps the number of envelopes shipped per delta message
	// (batched delta shipping); default 512. A process far behind
	// catches up over several messages rather than one huge one.
	MaxDelta int
	// EagerPush also sends each new broadcast to every peer immediately,
	// best-effort (no retransmission — repair stays the rounds' job).
	// On healthy links this keeps steady-state delivery latency at one
	// hop instead of half a round; default on in NewAntiEntropy.
	EagerPush bool
}

func (c *AEConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.MaxDelta <= 0 {
		c.MaxDelta = 512
	}
}

// aeMsg is the gossip wire format: a digest carries the sender's
// version vector, a delta carries envelopes the receiver was missing.
type aeMsg struct {
	Digest vclock.VC
	Envs   []envelope
}

// AntiEntropy is the gossip-and-heal broadcast layer for one process.
// It satisfies Broadcaster; deliveries run through the same serialized
// outQueue as the relCore layers.
type AntiEntropy struct {
	cfg AEConfig
	t   net.Transport
	id  int
	out *outQueue

	mu    sync.Mutex
	seq   int                // own broadcast count
	logs  [][]envelope       // logs[o][k] = origin o's (k+1)-th envelope
	pend  []map[int]envelope // out-of-order arrivals awaiting their gap
	know  vclock.VC          // know[o] = contiguous envelopes of origin o held
	deliv vclock.VC          // deliv[o] = envelopes of origin o delivered
	peer  int                // round-robin gossip cursor
	stats AEStats
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// AEStats counts a layer's gossip activity.
type AEStats struct {
	Rounds     int64 // gossip rounds initiated
	Digests    int64 // digests received
	DeltasSent int64 // delta messages sent
	DeltasRecv int64 // delta messages received
	EnvsSent   int64 // envelopes shipped in deltas
	EnvsRecv   int64 // envelopes ingested from deltas (deduped arrivals excluded)
}

// NewAntiEntropy creates the layer for process id, registers it with
// the transport, and starts its gossip loop (stop it with Stop).
func NewAntiEntropy(t net.Transport, id int, cfg AEConfig, d DeliverVC) *AntiEntropy {
	cfg.EagerPush = true
	return newAntiEntropy(t, id, cfg, d)
}

// NewAntiEntropyLazy is NewAntiEntropy without eager push: every
// envelope travels only in gossip rounds. Tests use it to pin
// round-driven convergence; servers want NewAntiEntropy.
func NewAntiEntropyLazy(t net.Transport, id int, cfg AEConfig, d DeliverVC) *AntiEntropy {
	cfg.EagerPush = false
	return newAntiEntropy(t, id, cfg, d)
}

func newAntiEntropy(t net.Transport, id int, cfg AEConfig, d DeliverVC) *AntiEntropy {
	cfg.fill()
	n := t.N()
	a := &AntiEntropy{
		cfg:   cfg,
		t:     t,
		id:    id,
		out:   &outQueue{out: d},
		logs:  make([][]envelope, n),
		pend:  make([]map[int]envelope, n),
		know:  vclock.New(n),
		deliv: vclock.New(n),
		peer:  id, // start the rotation at a per-process offset
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	t.Register(id, a.onReceive)
	go a.loop()
	return a
}

// Broadcast implements Broadcaster: the envelope is stamped with the
// causal frontier, appended to the local log, delivered locally at
// once (wait-free — Sec. 6.1's immediate local delivery), and pushed
// eagerly when configured; gossip rounds carry it to anyone the push
// misses.
func (a *AntiEntropy) Broadcast(payload any) {
	a.mu.Lock()
	a.seq++
	stamp := a.deliv.Clone().Incr(a.id)
	env := envelope{ID: msgID{Origin: a.id, Seq: a.seq}, VC: stamp, Payload: payload}
	a.ingestLocked(env)
	a.releaseLocked()
	eager := a.cfg.EagerPush
	a.mu.Unlock()
	a.out.drain()
	if eager {
		for q := 0; q < a.t.N(); q++ {
			if q != a.id {
				a.t.Send(a.id, q, aeMsg{Envs: []envelope{env}})
			}
		}
	}
}

// VC returns a snapshot of the delivered-count vector — the causal
// frontier consumers use for read-your-writes re-attachment.
func (a *AntiEntropy) VC() vclock.VC {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.deliv.Clone()
}

// Stats returns a snapshot of the gossip counters.
func (a *AntiEntropy) Stats() AEStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// SyncNow gossips this process's digest to every peer immediately —
// the repair accelerator a harness calls right after healing a
// partition instead of waiting out the round timer.
func (a *AntiEntropy) SyncNow() {
	a.mu.Lock()
	dig := a.know.Clone()
	a.mu.Unlock()
	for q := 0; q < a.t.N(); q++ {
		if q != a.id {
			a.t.Send(a.id, q, aeMsg{Digest: dig})
		}
	}
}

// Stop ends the gossip loop. The layer keeps delivering envelopes
// that still arrive (peers may gossip at it); it just stops initiating
// rounds. Idempotent.
func (a *AntiEntropy) Stop() {
	a.once.Do(func() { close(a.stop) })
	<-a.done
}

func (a *AntiEntropy) loop() {
	defer close(a.done)
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			a.round()
		}
	}
}

// round sends this process's digest to the next peer in the rotation.
func (a *AntiEntropy) round() {
	n := a.t.N()
	if n <= 1 {
		return
	}
	a.mu.Lock()
	a.peer = (a.peer + 1) % n
	if a.peer == a.id {
		a.peer = (a.peer + 1) % n
	}
	peer := a.peer
	dig := a.know.Clone()
	a.stats.Rounds++
	a.mu.Unlock()
	a.t.Send(a.id, peer, aeMsg{Digest: dig})
}

// onReceive handles one gossip message: a digest answers with deltas
// (and a pull-back digest when the sender is ahead), a delta ingests.
func (a *AntiEntropy) onReceive(from int, payload any) {
	m, ok := payload.(aeMsg)
	if !ok {
		return
	}
	if m.Digest != nil {
		a.onDigest(from, m.Digest)
	}
	if len(m.Envs) > 0 {
		a.onDelta(m.Envs)
	}
}

// onDigest ships the envelopes the peer is missing, in MaxDelta-sized
// batches, and gossips back this process's own digest when the peer's
// vector shows it knows more (push-pull: one exchange heals both
// directions).
func (a *AntiEntropy) onDigest(from int, theirs vclock.VC) {
	a.mu.Lock()
	a.stats.Digests++
	var delta []envelope
	var deltas [][]envelope
	for o := range a.logs {
		have := a.know[o]
		start := 0
		if o < len(theirs) {
			start = theirs[o]
		}
		for s := start; s < have; s++ {
			delta = append(delta, a.logs[o][s])
			if len(delta) >= a.cfg.MaxDelta {
				deltas = append(deltas, delta)
				delta = nil
			}
		}
	}
	if len(delta) > 0 {
		deltas = append(deltas, delta)
	}
	behind := false
	for o := range a.know {
		if o < len(theirs) && theirs[o] > a.know[o] {
			behind = true
			break
		}
	}
	var pull vclock.VC
	if behind {
		pull = a.know.Clone()
	}
	for _, d := range deltas {
		a.stats.DeltasSent++
		a.stats.EnvsSent += int64(len(d))
	}
	a.mu.Unlock()
	for _, d := range deltas {
		a.t.Send(a.id, from, aeMsg{Envs: d})
	}
	if pull != nil {
		a.t.Send(a.id, from, aeMsg{Digest: pull})
	}
}

// onDelta ingests shipped envelopes and releases whatever the ordering
// discipline now allows.
func (a *AntiEntropy) onDelta(envs []envelope) {
	a.mu.Lock()
	a.stats.DeltasRecv++
	for _, env := range envs {
		a.ingestLocked(env)
	}
	a.releaseLocked()
	a.mu.Unlock()
	a.out.drain()
}

// ingestLocked adds one envelope to the per-origin log. Arrivals are
// deduplicated by sequence number; a gap (possible when deltas from
// different peers interleave with injected link delays) parks the
// envelope until its predecessors arrive.
func (a *AntiEntropy) ingestLocked(env envelope) {
	o := env.ID.Origin
	if o < 0 || o >= len(a.logs) {
		return
	}
	switch {
	case env.ID.Seq <= a.know[o]:
		return // already known
	case env.ID.Seq == a.know[o]+1:
		a.logs[o] = append(a.logs[o], env)
		a.know[o]++
		a.stats.EnvsRecv++
		// Promote any parked successors the gap was hiding.
		for a.pend[o] != nil {
			nxt, ok := a.pend[o][a.know[o]+1]
			if !ok {
				break
			}
			delete(a.pend[o], a.know[o]+1)
			a.logs[o] = append(a.logs[o], nxt)
			a.know[o]++
			a.stats.EnvsRecv++
		}
	default:
		if a.pend[o] == nil {
			a.pend[o] = make(map[int]envelope)
		}
		a.pend[o][env.ID.Seq] = env
	}
}

// releaseLocked enqueues every envelope the ordering discipline now
// admits. Per-origin logs are contiguous, so FIFO release is a scan;
// causal release re-scans until no origin can advance (the classical
// hold-back loop, here over log positions instead of a buffer).
// Deliveries are enqueued under the state lock so their order cannot
// invert across racing ingests; the caller drains after unlocking.
func (a *AntiEntropy) releaseLocked() {
	var ready []delivery
	for {
		progress := false
		for o := range a.logs {
			for a.deliv[o] < a.know[o] {
				env := a.logs[o][a.deliv[o]]
				if a.cfg.Ordering == AECausal && !vclock.CausallyReady(env.VC, a.deliv, o) {
					break
				}
				a.deliv[o]++
				ready = append(ready, delivery{origin: o, vc: env.VC, payload: env.Payload})
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if len(ready) > 0 {
		a.out.enqueue(ready)
	}
}
