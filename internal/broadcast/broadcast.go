// Package broadcast implements the communication stack of Sec. 6.1 on
// top of net.Transport: uniform reliable broadcast (by flooding),
// FIFO-order broadcast, reliable causal-order broadcast (vector-clock
// delivery condition), and a Lamport-timestamp total-order broadcast
// used only by the sequentially consistent baseline and the consensus
// demonstration (total order is not wait-free implementable; the
// paper's algorithms use only the causal layer).
//
// The causal layer provides exactly the paper's four properties:
// validity (only broadcast messages are delivered), uniform reliability
// (if any process delivers m, every non-faulty process eventually
// delivers m — achieved by flooding), immediate local delivery, and
// causal order (no process delivers m before m' when m was broadcast
// after the broadcaster delivered m').
package broadcast

import (
	"sync"

	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// Deliver consumes a delivered application payload; origin is the
// broadcasting process.
type Deliver func(origin int, payload any)

// DeliverVC is Deliver plus the message's causal vector stamp. The
// stamp is assigned atomically with the causal ordering decision, so a
// consumer that derives a total order from it (e.g. the CCv runtime's
// timestamp order: the stamp's coordinate sum, origin-tie-broken) gets
// an order that provably extends causality — with no window between an
// application-level clock read and the broadcast, which on the live
// transport would race concurrent deliveries.
type DeliverVC func(origin int, vc vclock.VC, payload any)

// Broadcaster is the interface shared by all layers.
type Broadcaster interface {
	// Broadcast disseminates the payload to all processes, delivering
	// locally before returning (wait-free: it never waits for remote
	// progress).
	Broadcast(payload any)
}

// msgID identifies a broadcast uniquely.
type msgID struct {
	Origin int
	Seq    int
}

// outQueue serializes delivery callbacks: ordering layers compute
// ready-lists under their state lock, but invoking the application
// callback under that lock would deadlock on re-entrant broadcasts
// (e.g. the total-order layer acknowledging from inside a delivery),
// while invoking it outside the lock would let two concurrent drainers
// (the broadcasting goroutine and the transport's mailbox goroutine)
// interleave deliveries out of order. The queue guarantees the
// callback sees deliveries exactly in enqueue order: whichever
// goroutine finds the queue idle becomes the single drainer.
type outQueue struct {
	mu       sync.Mutex
	queue    []delivery
	draining bool
	out      DeliverVC
}

// plain adapts a stamp-less Deliver to the queue's callback type.
func plain(d Deliver) DeliverVC {
	return func(origin int, _ vclock.VC, payload any) { d(origin, payload) }
}

type delivery struct {
	origin  int
	vc      vclock.VC
	payload any
}

// enqueue appends deliveries without draining. Layers that compute
// ready-lists from more than one goroutine call it while still holding
// their state lock — so the outQueue order always matches the order
// the ordering decision was made — and drain afterwards.
func (q *outQueue) enqueue(ds []delivery) {
	q.mu.Lock()
	q.queue = append(q.queue, ds...)
	q.mu.Unlock()
}

// drain invokes the callback for every queued delivery, in enqueue
// order, unless another goroutine already is.
func (q *outQueue) drain() {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return
	}
	q.draining = true
	for len(q.queue) > 0 {
		d := q.queue[0]
		q.queue = q.queue[1:]
		q.mu.Unlock()
		q.out(d.origin, d.vc, d.payload)
		q.mu.Lock()
	}
	q.draining = false
	q.mu.Unlock()
}

// dispatch enqueues deliveries and drains the queue.
func (q *outQueue) dispatch(ds []delivery) {
	q.enqueue(ds)
	q.drain()
}

// envelope is the wire format shared by all layers.
type envelope struct {
	ID      msgID
	VC      vclock.VC // causal layer only
	Payload any
}

// relCore is the flooding dissemination core shared by every layer: it
// guarantees that every envelope broadcast or received by a live
// process reaches all live connected processes exactly once, in
// arbitrary order. Layers attach their ordering discipline via the
// onEnv hook, which is invoked once per envelope (sequentially for a
// given process).
type relCore struct {
	mu     sync.Mutex
	t      net.Transport
	id     int
	seq    int
	seen   map[msgID]bool
	retain bool       // keep the seen-log for anti-entropy resync
	log    []envelope // every envelope seen (only when retain is set)
	onEnv  func(envelope)
}

func newRelCore(t net.Transport, id int, onEnv func(envelope)) *relCore {
	c := &relCore{t: t, id: id, seen: make(map[msgID]bool), onEnv: onEnv}
	t.Register(id, c.onReceive)
	return c
}

// enableResync turns on envelope retention. Retention costs memory
// proportional to the whole communication history, so it is opt-in:
// long-lived replicas that never face message loss (reliable
// transports) should leave it off. Call it before any traffic — only
// envelopes seen after the call are retransmittable.
func (c *relCore) enableResync() {
	c.mu.Lock()
	c.retain = true
	c.mu.Unlock()
}

// resync re-floods every envelope this process has ever seen. The
// dissemination layer assumes eventually reliable links (Sec. 6.1);
// on transports that lose messages during partitions, calling resync
// after healing restores that assumption by retransmission —
// anti-entropy. Duplicate deliveries are impossible (receivers dedup
// by message id), and the ordering layers are unaffected because they
// already tolerate arbitrary arrival orders.
func (c *relCore) resync() {
	c.mu.Lock()
	if !c.retain {
		c.mu.Unlock()
		panic("broadcast: Resync requires EnableResync before any traffic")
	}
	pending := make([]envelope, len(c.log))
	copy(pending, c.log)
	c.mu.Unlock()
	for _, env := range pending {
		c.fanout(env)
	}
}

// broadcast stamps, floods and locally delivers a new envelope.
func (c *relCore) broadcast(vc vclock.VC, payload any) {
	c.mu.Lock()
	c.seq++
	env := envelope{ID: msgID{Origin: c.id, Seq: c.seq}, VC: vc, Payload: payload}
	c.seen[env.ID] = true
	if c.retain {
		c.log = append(c.log, env)
	}
	c.mu.Unlock()
	c.fanout(env)
	// Immediate local delivery (Sec. 6.1, property 3).
	c.onEnv(env)
}

func (c *relCore) fanout(env envelope) {
	for q := 0; q < c.t.N(); q++ {
		if q != c.id {
			c.t.Send(c.id, q, env)
		}
	}
}

func (c *relCore) onReceive(_ int, payload any) {
	env, ok := payload.(envelope)
	if !ok {
		return
	}
	c.mu.Lock()
	if c.seen[env.ID] {
		c.mu.Unlock()
		return
	}
	c.seen[env.ID] = true
	if c.retain {
		c.log = append(c.log, env)
	}
	c.mu.Unlock()
	// Forward before handling (flooding): even if this process stops
	// right after delivering, others still learn the message, giving
	// uniform reliability under crash of the origin.
	c.fanout(env)
	c.onEnv(env)
}

// Reliable is unordered uniform reliable broadcast. It is the delivery
// discipline of the eventual-consistency baseline.
type Reliable struct {
	core *relCore
	out  *outQueue
}

// NewReliable creates the layer for process id and registers it with
// the transport.
func NewReliable(t net.Transport, id int, d Deliver) *Reliable {
	r := &Reliable{out: &outQueue{out: plain(d)}}
	r.core = newRelCore(t, id, func(env envelope) {
		r.out.dispatch([]delivery{{origin: env.ID.Origin, payload: env.Payload}})
	})
	return r
}

// Broadcast implements Broadcaster.
func (r *Reliable) Broadcast(payload any) { r.core.broadcast(nil, payload) }

// FIFO delivers each origin's messages in broadcast order (PRAM's
// communication layer), buffering out-of-order arrivals.
type FIFO struct {
	mu   sync.Mutex
	core *relCore
	next []int
	hold map[msgID]envelope
	out  *outQueue
}

// NewFIFO creates the layer for process id.
func NewFIFO(t net.Transport, id int, d Deliver) *FIFO {
	f := &FIFO{next: make([]int, t.N()), hold: make(map[msgID]envelope), out: &outQueue{out: plain(d)}}
	for i := range f.next {
		f.next[i] = 1
	}
	f.core = newRelCore(t, id, f.onEnv)
	return f
}

// Broadcast implements Broadcaster.
func (f *FIFO) Broadcast(payload any) { f.core.broadcast(nil, payload) }

func (f *FIFO) onEnv(env envelope) {
	f.mu.Lock()
	f.hold[env.ID] = env
	var ready []delivery
	for {
		progress := false
		for origin := range f.next {
			id := msgID{Origin: origin, Seq: f.next[origin]}
			if e, ok := f.hold[id]; ok {
				delete(f.hold, id)
				f.next[origin]++
				ready = append(ready, delivery{origin: e.ID.Origin, payload: e.Payload})
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	f.mu.Unlock()
	f.out.dispatch(ready)
}

// Causal is reliable causal-order broadcast: a message is delivered
// only after every message its broadcaster had delivered when it
// broadcast (the Birman-Schiper-Stephenson vector-clock condition).
type Causal struct {
	mu   sync.Mutex
	core *relCore
	id   int
	vc   vclock.VC // per-origin count of causally delivered messages
	hold []envelope
	out  *outQueue
}

// NewCausal creates the layer for process id.
func NewCausal(t net.Transport, id int, d Deliver) *Causal {
	return NewCausalVC(t, id, plain(d))
}

// NewCausalVC creates the layer for process id with a delivery
// callback that also receives each message's causal stamp (see
// DeliverVC).
func NewCausalVC(t net.Transport, id int, d DeliverVC) *Causal {
	c := &Causal{id: id, vc: vclock.New(t.N()), out: &outQueue{out: d}}
	c.core = newRelCore(t, id, c.onEnv)
	return c
}

// Broadcast implements Broadcaster. The message carries the vector
// clock it must be delivered at: the broadcaster's delivered-count
// vector with its own entry incremented.
func (c *Causal) Broadcast(payload any) {
	c.mu.Lock()
	stamp := c.vc.Clone().Incr(c.id)
	c.mu.Unlock()
	c.core.broadcast(stamp, payload)
}

func (c *Causal) onEnv(env envelope) {
	var ready []delivery
	c.mu.Lock()
	c.hold = append(c.hold, env)
	for {
		progress := false
		for i := 0; i < len(c.hold); i++ {
			e := c.hold[i]
			if vclock.CausallyReady(e.VC, c.vc, e.ID.Origin) {
				c.vc[e.ID.Origin]++
				ready = append(ready, delivery{origin: e.ID.Origin, vc: e.VC, payload: e.Payload})
				c.hold = append(c.hold[:i], c.hold[i+1:]...)
				progress = true
				i--
			}
		}
		if !progress {
			break
		}
	}
	c.mu.Unlock()
	c.out.dispatch(ready)
}

// VC returns a snapshot of the layer's delivered-count vector, used by
// experiments to measure delivery progress.
func (c *Causal) VC() vclock.VC {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vc.Clone()
}

// EnableResync turns on envelope retention for anti-entropy (memory
// grows with the communication history; opt-in). Call before any
// traffic.
func (c *Causal) EnableResync() { c.core.enableResync() }

// Resync retransmits every message this process has seen — the
// anti-entropy repair to run after a partition heals on lossy
// transports. Safe to call at any time and from any subset of
// processes; a subset suffices when it jointly saw every message.
// Requires EnableResync.
func (c *Causal) Resync() { c.core.resync() }

// EnableResync turns on envelope retention (see Causal.EnableResync).
func (r *Reliable) EnableResync() { r.core.enableResync() }

// Resync retransmits every message this process has seen (see
// Causal.Resync). Requires EnableResync.
func (r *Reliable) Resync() { r.core.resync() }

// EnableResync turns on envelope retention (see Causal.EnableResync).
func (f *FIFO) EnableResync() { f.core.enableResync() }

// Resync retransmits every message this process has seen (see
// Causal.Resync). Requires EnableResync.
func (f *FIFO) Resync() { f.core.resync() }
