package broadcast_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/paper-repro/ccbm/internal/broadcast"
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/sim"
)

// recorder collects deliveries per process.
type recorder struct {
	mu   sync.Mutex
	msgs [][]delivery
}

type delivery struct {
	origin  int
	payload any
}

func newRecorder(n int) *recorder { return &recorder{msgs: make([][]delivery, n)} }

func (r *recorder) deliver(p int) broadcast.Deliver {
	return func(origin int, payload any) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs[p] = append(r.msgs[p], delivery{origin, payload})
	}
}

func TestReliableEveryoneDeliversOnce(t *testing.T) {
	nw := sim.New(4, 1)
	rec := newRecorder(4)
	var bs []*broadcast.Reliable
	for i := 0; i < 4; i++ {
		bs = append(bs, broadcast.NewReliable(nw, i, rec.deliver(i)))
	}
	bs[0].Broadcast("hello")
	bs[2].Broadcast("world")
	nw.Run(0)
	for p := 0; p < 4; p++ {
		if len(rec.msgs[p]) != 2 {
			t.Fatalf("process %d delivered %d messages, want 2", p, len(rec.msgs[p]))
		}
	}
}

func TestReliableLocalDeliveryImmediate(t *testing.T) {
	nw := sim.New(3, 2)
	rec := newRecorder(3)
	b := broadcast.NewReliable(nw, 0, rec.deliver(0))
	broadcast.NewReliable(nw, 1, rec.deliver(1))
	broadcast.NewReliable(nw, 2, rec.deliver(2))
	b.Broadcast("x")
	// Before any network step, the broadcaster has delivered locally.
	if len(rec.msgs[0]) != 1 {
		t.Fatal("local delivery not immediate")
	}
	if len(rec.msgs[1]) != 0 {
		t.Fatal("remote delivery happened without network steps")
	}
	nw.Run(0)
}

// TestReliableSurvivesOriginCrash: flooding gives uniform reliability —
// if any live process received the message, all live processes
// eventually do, even though the origin crashed mid-broadcast.
func TestReliableSurvivesOriginCrash(t *testing.T) {
	nw := sim.New(4, 3)
	rec := newRecorder(4)
	var bs []*broadcast.Reliable
	for i := 0; i < 4; i++ {
		bs = append(bs, broadcast.NewReliable(nw, i, rec.deliver(i)))
	}
	bs[0].Broadcast("m")
	// Deliver exactly one copy (to some process), then crash the origin.
	nw.Step()
	nw.Crash(0)
	nw.Run(0)
	for p := 1; p < 4; p++ {
		if len(rec.msgs[p]) != 1 {
			t.Fatalf("process %d did not deliver after origin crash", p)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		nw := sim.New(3, seed)
		rec := newRecorder(3)
		var bs []*broadcast.FIFO
		for i := 0; i < 3; i++ {
			bs = append(bs, broadcast.NewFIFO(nw, i, rec.deliver(i)))
		}
		for i := 0; i < 10; i++ {
			bs[0].Broadcast(i)
		}
		nw.Run(0)
		for p := 0; p < 3; p++ {
			if len(rec.msgs[p]) != 10 {
				t.Fatalf("seed %d: process %d got %d messages", seed, p, len(rec.msgs[p]))
			}
			for i, d := range rec.msgs[p] {
				if d.payload.(int) != i {
					t.Fatalf("seed %d: process %d saw %v out of order", seed, p, rec.msgs[p])
				}
			}
		}
	}
}

// TestCausalOrder: with causal broadcast, if m was broadcast after its
// sender delivered m', no process delivers m before m'. We generate a
// causal chain across processes and check delivery prefixes.
func TestCausalOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		nw := sim.New(3, seed)
		rec := newRecorder(3)
		var bs []*broadcast.Causal
		for i := 0; i < 3; i++ {
			bs = append(bs, broadcast.NewCausal(nw, i, rec.deliver(i)))
		}
		// p0 broadcasts a; once p1 delivers a it broadcasts b; once p2
		// delivers b it broadcasts c. a → b → c causally.
		bs[0].Broadcast("a")
		// Drive until quiescence, reacting to deliveries.
		reacted1, reacted2 := false, false
		for {
			progressed := nw.Step()
			rec.mu.Lock()
			if !reacted1 {
				for _, d := range rec.msgs[1] {
					if d.payload == "a" {
						reacted1 = true
					}
				}
				if reacted1 {
					rec.mu.Unlock()
					bs[1].Broadcast("b")
					rec.mu.Lock()
				}
			}
			if !reacted2 {
				for _, d := range rec.msgs[2] {
					if d.payload == "b" {
						reacted2 = true
					}
				}
				if reacted2 {
					rec.mu.Unlock()
					bs[2].Broadcast("c")
					rec.mu.Lock()
				}
			}
			rec.mu.Unlock()
			if !progressed {
				break
			}
		}
		// Every process must deliver a before b before c.
		for p := 0; p < 3; p++ {
			pos := map[any]int{}
			for i, d := range rec.msgs[p] {
				pos[d.payload] = i
			}
			for _, pair := range [][2]any{{"a", "b"}, {"b", "c"}} {
				i1, ok1 := pos[pair[0]]
				i2, ok2 := pos[pair[1]]
				if ok2 && (!ok1 || i1 > i2) {
					t.Fatalf("seed %d: process %d delivered %v before %v", seed, p, pair[1], pair[0])
				}
			}
		}
	}
}

func TestCausalVCProgress(t *testing.T) {
	nw := sim.New(2, 4)
	rec := newRecorder(2)
	b0 := broadcast.NewCausal(nw, 0, rec.deliver(0))
	broadcast.NewCausal(nw, 1, rec.deliver(1))
	b0.Broadcast("x")
	b0.Broadcast("y")
	nw.Run(0)
	vc := b0.VC()
	if vc[0] != 2 {
		t.Fatalf("VC = %v, want [2 0]", vc)
	}
}

// TestTotalOrderAgreement: all processes deliver all messages in the
// same order, which extends causality.
func TestTotalOrderAgreement(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		nw := sim.New(3, seed)
		rec := newRecorder(3)
		var bs []*broadcast.Total
		for i := 0; i < 3; i++ {
			bs = append(bs, broadcast.NewTotal(nw, i, rec.deliver(i)))
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 9; i++ {
			bs[rng.Intn(3)].Broadcast(fmt.Sprintf("m%d", i))
			for d := rng.Intn(3); d > 0; d-- {
				nw.Step()
			}
		}
		nw.Run(0)
		if len(rec.msgs[0]) != 9 {
			t.Fatalf("seed %d: delivered %d, want 9", seed, len(rec.msgs[0]))
		}
		for p := 1; p < 3; p++ {
			if len(rec.msgs[p]) != len(rec.msgs[0]) {
				t.Fatalf("seed %d: delivery counts differ", seed)
			}
			for i := range rec.msgs[p] {
				if rec.msgs[p][i].payload != rec.msgs[0][i].payload {
					t.Fatalf("seed %d: orders differ at %d: %v vs %v", seed, i, rec.msgs[p][i], rec.msgs[0][i])
				}
			}
		}
	}
}

// TestLayersOnLiveTransport runs each layer over the goroutine
// transport to exercise the locking paths under the race detector.
func TestLayersOnLiveTransport(t *testing.T) {
	lv := net.NewLive(3)
	rec := newRecorder(3)
	var bs []*broadcast.Causal
	for i := 0; i < 3; i++ {
		bs = append(bs, broadcast.NewCausal(lv, i, rec.deliver(i)))
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				bs[i].Broadcast(fmt.Sprintf("p%d-%d", i, j))
			}
		}(i)
	}
	wg.Wait()
	lv.Quiesce()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for p := 0; p < 3; p++ {
		if len(rec.msgs[p]) != 60 {
			t.Fatalf("process %d delivered %d, want 60", p, len(rec.msgs[p]))
		}
	}
	lv.Close()
}
