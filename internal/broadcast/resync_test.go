package broadcast

import (
	"sync"
	"testing"

	"github.com/paper-repro/ccbm/internal/sim"
)

// collector accumulates deliveries in order, concurrency-safe.
type collector struct {
	mu   sync.Mutex
	msgs []any
}

func (c *collector) deliver(_ int, payload any) {
	c.mu.Lock()
	c.msgs = append(c.msgs, payload)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

// TestResyncRecoversPartitionLossAllLayers: each ordering layer's
// Resync retransmits the seen-log, recovering messages the partition
// dropped, without duplicating anything already delivered.
func TestResyncRecoversPartitionLossAllLayers(t *testing.T) {
	type layer struct {
		name string
		make func(nw *sim.Network, id int, d Deliver) interface {
			Broadcast(any)
		}
		enable func(b any)
		resync func(b any)
	}
	layers := []layer{
		{"Reliable",
			func(nw *sim.Network, id int, d Deliver) interface{ Broadcast(any) } {
				return NewReliable(nw, id, d)
			},
			func(b any) { b.(*Reliable).EnableResync() },
			func(b any) { b.(*Reliable).Resync() }},
		{"FIFO",
			func(nw *sim.Network, id int, d Deliver) interface{ Broadcast(any) } {
				return NewFIFO(nw, id, d)
			},
			func(b any) { b.(*FIFO).EnableResync() },
			func(b any) { b.(*FIFO).Resync() }},
		{"Causal",
			func(nw *sim.Network, id int, d Deliver) interface{ Broadcast(any) } {
				return NewCausal(nw, id, d)
			},
			func(b any) { b.(*Causal).EnableResync() },
			func(b any) { b.(*Causal).Resync() }},
	}
	for _, l := range layers {
		t.Run(l.name, func(t *testing.T) {
			nw := sim.New(2, 3)
			var c0, c1 collector
			b0 := l.make(nw, 0, c0.deliver)
			b1 := l.make(nw, 1, c1.deliver)
			l.enable(b0)
			l.enable(b1)

			nw.Partition([]int{0}, []int{1})
			b0.Broadcast("a")
			b0.Broadcast("b")
			nw.Run(0) // cross-partition copies dropped
			if c1.len() != 0 {
				t.Fatalf("p1 delivered %d messages across a partition", c1.len())
			}
			nw.Heal()
			l.resync(b0)
			nw.Run(0)
			if got := c1.len(); got != 2 {
				t.Fatalf("p1 delivered %d after resync, want 2", got)
			}
			// Resync again: dedup must prevent redelivery.
			l.resync(b0)
			nw.Run(0)
			if got := c1.len(); got != 2 {
				t.Fatalf("p1 delivered %d after duplicate resync, want 2", got)
			}
			// The origin delivered its own messages exactly once too.
			if got := c0.len(); got != 2 {
				t.Fatalf("p0 delivered %d own messages, want 2", got)
			}
			_ = b1
		})
	}
}

// TestFIFOResyncPreservesOrder: recovered messages still respect the
// per-origin FIFO order even when the resync re-floods them out of
// order relative to fresh traffic.
func TestFIFOResyncPreservesOrder(t *testing.T) {
	nw := sim.New(2, 9)
	var c1 collector
	f0 := NewFIFO(nw, 0, func(int, any) {})
	f0.EnableResync()
	NewFIFO(nw, 1, c1.deliver)

	nw.Partition([]int{0}, []int{1})
	f0.Broadcast(1)
	f0.Broadcast(2)
	nw.Run(0)
	nw.Heal()
	f0.Broadcast(3) // fresh message may arrive before the resynced ones
	f0.Resync()
	nw.Run(0)
	c1.mu.Lock()
	defer c1.mu.Unlock()
	if len(c1.msgs) != 3 {
		t.Fatalf("delivered %d, want 3", len(c1.msgs))
	}
	for i, want := range []int{1, 2, 3} {
		if c1.msgs[i] != want {
			t.Fatalf("delivery order %v, want [1 2 3]", c1.msgs)
		}
	}
}

// TestResyncWithoutEnablePanics: retention is opt-in; calling Resync
// on a layer that never enabled it is a programming error, reported
// loudly rather than silently retransmitting nothing.
func TestResyncWithoutEnablePanics(t *testing.T) {
	nw := sim.New(2, 1)
	c := NewCausal(nw, 0, func(int, any) {})
	NewCausal(nw, 1, func(int, any) {})
	c.Broadcast("x")
	nw.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Resync without EnableResync did not panic")
		}
	}()
	c.Resync()
}
