package broadcast

import (
	"sort"
	"sync"

	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// Total is Lamport-timestamp total-order broadcast (the classic
// ISIS-style algorithm): every process delivers every message, all in
// the same total order, which moreover extends the causal order.
//
// Unlike the causal layer, Total is NOT wait-free: a message is held
// until an acknowledgement bearing a larger timestamp has been seen
// from every other process, so a single crashed or disconnected process
// blocks delivery forever — exactly the impossibility that motivates
// the paper's weak criteria (CAP, Sec. 1; Attiya-Welch for SC). It is
// provided only for the sequentially consistent baseline and the
// consensus-number demonstration, both of which assume a crash-free
// run.
type Total struct {
	mu       sync.Mutex
	fifo     *FIFO
	id       int
	n        int
	clock    vclock.Lamport
	pending  []totPending
	lastSeen []vclock.Timestamp
	deliver  Deliver
}

type totMsg struct {
	TS      vclock.Timestamp
	Ack     bool
	Payload any
}

type totPending struct {
	ts      vclock.Timestamp
	origin  int
	payload any
}

// NewTotal creates the layer for process id.
func NewTotal(t net.Transport, id int, d Deliver) *Total {
	tot := &Total{
		id:       id,
		n:        t.N(),
		lastSeen: make([]vclock.Timestamp, t.N()),
		deliver:  d,
	}
	for i := range tot.lastSeen {
		tot.lastSeen[i] = vclock.Timestamp{VT: 0, PID: i}
	}
	tot.fifo = NewFIFO(t, id, tot.onDeliver)
	return tot
}

// Broadcast implements Broadcaster. The call itself does not wait;
// delivery (including local delivery) happens once every process has
// acknowledged, so unlike the other layers local delivery is deferred.
func (tot *Total) Broadcast(payload any) {
	tot.mu.Lock()
	ts := vclock.Timestamp{VT: tot.clock.Tick(), PID: tot.id}
	tot.mu.Unlock()
	tot.fifo.Broadcast(totMsg{TS: ts, Payload: payload})
}

func (tot *Total) onDeliver(origin int, payload any) {
	m := payload.(totMsg)
	var ready []totPending
	var ack *totMsg
	tot.mu.Lock()
	tot.clock.Witness(m.TS.VT)
	if tot.lastSeen[origin].Less(m.TS) {
		tot.lastSeen[origin] = m.TS
	}
	if !m.Ack {
		tot.pending = append(tot.pending, totPending{ts: m.TS, origin: origin, payload: m.Payload})
		sort.Slice(tot.pending, func(i, j int) bool { return tot.pending[i].ts.Less(tot.pending[j].ts) })
		if origin != tot.id {
			ack = &totMsg{TS: vclock.Timestamp{VT: tot.clock.Tick(), PID: tot.id}, Ack: true}
		}
	}
	ready = tot.drainLocked()
	tot.mu.Unlock()
	if ack != nil {
		tot.fifo.Broadcast(*ack)
	}
	for _, p := range ready {
		tot.deliver(p.origin, p.payload)
	}
}

// drainLocked pops every pending message that is stable: it has the
// smallest timestamp and every other process has been seen past it.
func (tot *Total) drainLocked() []totPending {
	var ready []totPending
	for len(tot.pending) > 0 {
		head := tot.pending[0]
		stable := true
		for q := 0; q < tot.n; q++ {
			if q == head.origin {
				continue
			}
			if !head.ts.Less(tot.lastSeen[q]) {
				stable = false
				break
			}
		}
		if !stable {
			break
		}
		tot.pending = tot.pending[1:]
		ready = append(ready, head)
	}
	return ready
}
