package broadcast

import (
	"fmt"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/internal/sim"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// vcCollector records causal deliveries in order, concurrency-safe
// via the sim network's single-threaded Run.
type vcCollector struct {
	msgs []any
	from []int
}

func (c *vcCollector) deliver(origin int, _ vclock.VC, payload any) {
	c.msgs = append(c.msgs, payload)
	c.from = append(c.from, origin)
}

// aeGroup builds n lazy anti-entropy stations on one sim network.
// The huge interval parks the ticker goroutine so rounds run only on
// SyncNow, keeping the single-threaded sim deterministic.
func aeGroup(t *testing.T, nw *sim.Network, n int, ord AEOrdering) ([]*AntiEntropy, []*vcCollector) {
	aes := make([]*AntiEntropy, n)
	cols := make([]*vcCollector, n)
	for i := 0; i < n; i++ {
		col := &vcCollector{}
		cols[i] = col
		a := NewAntiEntropyLazy(nw, i, AEConfig{Ordering: ord, Interval: time.Hour}, col.deliver)
		t.Cleanup(a.Stop)
		aes[i] = a
	}
	return aes, cols
}

func syncAll(nw *sim.Network, aes []*AntiEntropy) {
	for _, a := range aes {
		a.SyncNow()
	}
	nw.Run(0)
}

// TestAntiEntropyConvergesAfterPartition is the backend's core
// promise: operations issued on both sides of a partition reach every
// station exactly once after the heal, through digest/delta rounds
// alone, and the version vectors agree.
func TestAntiEntropyConvergesAfterPartition(t *testing.T) {
	for _, ord := range []AEOrdering{AEFIFO, AECausal} {
		t.Run(fmt.Sprint(ord), func(t *testing.T) {
			nw := sim.New(3, 7)
			aes, cols := aeGroup(t, nw, 3, ord)

			nw.Partition([]int{0}, []int{1, 2})
			aes[0].Broadcast("a1")
			aes[0].Broadcast("a2")
			aes[1].Broadcast("b1")
			aes[2].Broadcast("c1")
			syncAll(nw, aes)
			if got := len(cols[2].msgs); got != 2 {
				// side-of-cut only: own c1 plus p1's b1 — a1/a2 must not cross
				t.Fatalf("p2 delivered %d messages across a partition, want 2", got)
			}

			nw.Heal()
			syncAll(nw, aes)
			for i, col := range cols {
				if got := len(col.msgs); got != 4 {
					t.Fatalf("p%d delivered %d messages after heal, want 4", i, got)
				}
			}
			// Another round must deliver nothing new (exactly-once).
			syncAll(nw, aes)
			want := aes[0].VC()
			for i, a := range aes {
				if got := len(cols[i].msgs); got != 4 {
					t.Fatalf("p%d delivered %d after idle round, want 4", i, got)
				}
				if got := a.VC(); !got.LessEq(want) || !want.LessEq(got) {
					t.Fatalf("p%d VC = %v, want %v", i, got, want)
				}
			}
		})
	}
}

// TestAntiEntropyCausalHoldback pins the causal reconstruction: a
// station that learns of an update before its causal predecessor
// holds it back until the predecessor arrives, so delivery order
// respects causality even though gossip reorders freely.
func TestAntiEntropyCausalHoldback(t *testing.T) {
	nw := sim.New(3, 11)
	aes, cols := aeGroup(t, nw, 3, AECausal)

	// m1 at p0 reaches p1 only (p2 cut off).
	nw.Partition([]int{0, 1}, []int{2})
	aes[0].Broadcast("m1")
	syncAll(nw, aes)
	if got := len(cols[1].msgs); got != 1 {
		t.Fatalf("p1 delivered %d, want 1 (m1)", got)
	}

	// p1 responds with m2, causally after m1.
	aes[1].Broadcast("m2")
	syncAll(nw, aes)
	if got := len(cols[2].msgs); got != 0 {
		t.Fatalf("p2 delivered %d messages while partitioned, want 0", got)
	}

	// Heal: p2 catches up on both, and every station's sequence must
	// order m1 before m2.
	nw.Heal()
	syncAll(nw, aes)
	for i, col := range cols {
		i1, i2 := -1, -1
		for k, m := range col.msgs {
			switch m {
			case "m1":
				i1 = k
			case "m2":
				i2 = k
			}
		}
		if i1 < 0 || i2 < 0 {
			t.Fatalf("p%d missing a message: %v", i, col.msgs)
		}
		if i1 > i2 {
			t.Fatalf("p%d delivered m2 before its cause m1: %v", i, col.msgs)
		}
	}
}

// TestAntiEntropyEagerPush checks the low-latency path: with
// EagerPush, a fresh broadcast reaches peers without waiting for the
// next digest round.
func TestAntiEntropyEagerPush(t *testing.T) {
	nw := sim.New(2, 3)
	var c0, c1 vcCollector
	// A huge interval keeps the gossip goroutine asleep: only the
	// eager push can move the envelope.
	cfg := AEConfig{Ordering: AEFIFO, Interval: time.Hour}
	a0 := NewAntiEntropy(nw, 0, cfg, c0.deliver)
	defer a0.Stop()
	a1 := NewAntiEntropy(nw, 1, cfg, c1.deliver)
	defer a1.Stop()
	a0.Broadcast("hot")
	nw.Run(0) // no SyncNow: the push alone must carry it
	if got := len(c1.msgs); got != 1 {
		t.Fatalf("p1 delivered %d messages via eager push, want 1", got)
	}
}
