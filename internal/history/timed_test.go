package history

import (
	"math"
	"strings"
	"testing"
)

func TestParseTimedBasic(t *testing.T) {
	adtT, evs, err := ParseTimed(`
# the Attiya-Welch stale read
adt: Register
p0: [0,1]w(1)
p1: [2,3]r/0 [4.5,5]r/1
`)
	if err != nil {
		t.Fatal(err)
	}
	if adtT.Name() != "Register" {
		t.Fatalf("adt %q", adtT.Name())
	}
	if len(evs) != 3 {
		t.Fatalf("events %d, want 3", len(evs))
	}
	if evs[0].Proc != 0 || evs[1].Proc != 1 || evs[2].Proc != 1 {
		t.Fatalf("proc assignment wrong: %+v", evs)
	}
	if evs[2].Inv != 4.5 || evs[2].Res != 5 {
		t.Fatalf("interval parse wrong: %+v", evs[2])
	}
	if evs[0].Op.In.Method != "w" || evs[0].Op.In.Args[0] != 1 {
		t.Fatalf("op parse wrong: %+v", evs[0].Op)
	}
}

func TestParseTimedPendingInf(t *testing.T) {
	_, evs, err := ParseTimed("adt: Register\np0: [0,inf]w(7)\n")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(evs[0].Res, 1) {
		t.Fatalf("res %v, want +Inf", evs[0].Res)
	}
	if !evs[0].Op.Hidden {
		t.Fatalf("input-only token must parse as hidden, got %+v", evs[0].Op)
	}
}

func TestParseTimedErrors(t *testing.T) {
	cases := []string{
		"p0: [0,1]w(1)",                // missing adt header
		"adt: Nope\np0: [0,1]w(1)",     // unknown adt
		"adt: Register\np0: w(1)",      // missing interval
		"adt: Register\np0: [0w(1)",    // unterminated interval
		"adt: Register\np0: [0]w(1)",   // one endpoint
		"adt: Register\np0: [x,1]w(1)", // bad number
		"adt: Register\np0: [0,1]w(1]", // bad op
		"",                             // empty
	}
	for _, c := range cases {
		if _, _, err := ParseTimed(c); err == nil {
			t.Errorf("ParseTimed(%q) accepted", c)
		}
	}
}

func TestParseTimedRoundTripThroughChecker(t *testing.T) {
	// The parsed stale-read history must reproduce the separation.
	_, evs, err := ParseTimed("adt: Register\np0: [0,1]w(1)\np1: [2,3]r/0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Res != 3 {
		t.Fatalf("parse: %+v", evs)
	}
	if !strings.Contains(evs[1].Op.String(), "r/0") {
		t.Fatalf("op render: %v", evs[1].Op)
	}
}
