package history

import (
	"fmt"
	"strings"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Parse reads the textual history format used by the cmd tools and
// tests:
//
//	adt: W2
//	p0: w(1) r/(0,1) r/(1,2)*
//	p1: w(2) r/(0,2) r/(1,2)*
//
// The first non-empty, non-comment line must name the ADT (see
// adt.Lookup). Each following line gives one process: a label up to a
// colon (the label text is ignored beyond ordering) followed by
// whitespace-separated operations in spec.ParseOperation syntax. A
// trailing '*' marks the ω-flag (the operation repeats forever; it must
// be the last of its process). Lines starting with '#' are comments.
func Parse(text string) (*History, error) {
	var t spec.ADT
	var b *Builder
	proc := 0
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if t == nil {
			name, ok := strings.CutPrefix(line, "adt:")
			if !ok {
				return nil, fmt.Errorf("history: line %d: expected 'adt: <name>' header, got %q", lineNo+1, line)
			}
			var err error
			t, err = adt.Lookup(strings.TrimSpace(name))
			if err != nil {
				return nil, fmt.Errorf("history: line %d: %v", lineNo+1, err)
			}
			b = NewBuilder(t)
			continue
		}
		_, body, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("history: line %d: expected 'label: ops...', got %q", lineNo+1, line)
		}
		for _, tok := range strings.Fields(body) {
			omega := false
			if strings.HasSuffix(tok, "*") {
				omega = true
				tok = strings.TrimSuffix(tok, "*")
			}
			op, err := spec.ParseOperation(tok)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: %v", lineNo+1, err)
			}
			// A token without '/' denotes a visible operation with the
			// dummy output ⊥ (the paper elides update outputs in its
			// figures), not a hidden operation: hiding is performed by
			// the checkers' projections, never written in source text.
			if op.Hidden {
				op = spec.NewOp(op.In, spec.Bot)
			}
			if omega {
				b.AppendOmega(proc, op)
			} else {
				b.Append(proc, op)
			}
		}
		proc++
	}
	if t == nil {
		return nil, fmt.Errorf("history: empty input")
	}
	return b.Build(), nil
}

// MustParse is Parse for tests and package-level fixtures; it panics on
// error.
func MustParse(text string) *History {
	h, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return h
}

// Dot renders the history as a Graphviz digraph: solid edges for the
// covering relation of the program order, one subgraph rank per
// process. Useful with cmd/ccheck -dot.
func (h *History) Dot() string {
	var b strings.Builder
	b.WriteString("digraph history {\n  rankdir=LR;\n  node [shape=plaintext];\n")
	for p, evs := range h.procs {
		fmt.Fprintf(&b, "  subgraph cluster_p%d {\n    label=\"p%d\";\n", p, p)
		for _, id := range evs {
			label := h.Events[id].Op.String()
			if h.Events[id].Omega {
				label += "*"
			}
			fmt.Fprintf(&b, "    e%d [label=%q];\n", id, label)
		}
		b.WriteString("  }\n")
	}
	red := h.prog.TransitiveReduction()
	for i := 0; i < red.N; i++ {
		red.Succ[i].ForEach(func(j int) {
			fmt.Fprintf(&b, "  e%d -> e%d;\n", i, j)
		})
	}
	b.WriteString("}\n")
	return b.String()
}
