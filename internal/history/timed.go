package history

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
)

// TimedEvent is one operation execution with a real-time interval, the
// input of the linearizability checker (which is the one criterion
// that needs real time; see internal/check). Inv < Res; Res may be
// +Inf for an operation that never responded (a pending invocation,
// usually written as a hidden operation).
type TimedEvent struct {
	Proc     int
	Op       spec.Operation
	Inv, Res float64
}

// ParseTimed reads the timed-history format of the cmd tools:
//
//	adt: Register
//	p0: [0,1]w(1) [2,3]r/1
//	p1: [1.5,2.5]r/0
//	p2: [4,inf]w(9)
//
// Each operation is prefixed with its [invocation,response] interval;
// "inf" marks an operation that never returned. Lines starting with
// '#' are comments.
func ParseTimed(text string) (spec.ADT, []TimedEvent, error) {
	var t spec.ADT
	var events []TimedEvent
	proc := 0
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if t == nil {
			name, ok := strings.CutPrefix(line, "adt:")
			if !ok {
				return nil, nil, fmt.Errorf("history: line %d: expected 'adt: <name>' header, got %q", lineNo+1, line)
			}
			var err error
			t, err = adt.Lookup(strings.TrimSpace(name))
			if err != nil {
				return nil, nil, fmt.Errorf("history: line %d: %v", lineNo+1, err)
			}
			continue
		}
		_, body, ok := strings.Cut(line, ":")
		if !ok {
			return nil, nil, fmt.Errorf("history: line %d: expected 'label: ops...', got %q", lineNo+1, line)
		}
		for _, tok := range strings.Fields(body) {
			ev, err := parseTimedToken(proc, tok)
			if err != nil {
				return nil, nil, fmt.Errorf("history: line %d: %v", lineNo+1, err)
			}
			events = append(events, ev)
		}
		proc++
	}
	if t == nil {
		return nil, nil, fmt.Errorf("history: empty timed history")
	}
	return t, events, nil
}

// parseTimedToken parses one "[inv,res]op" token.
func parseTimedToken(proc int, tok string) (TimedEvent, error) {
	if !strings.HasPrefix(tok, "[") {
		return TimedEvent{}, fmt.Errorf("timed operation %q must start with [inv,res]", tok)
	}
	end := strings.Index(tok, "]")
	if end < 0 {
		return TimedEvent{}, fmt.Errorf("timed operation %q: unterminated interval", tok)
	}
	parts := strings.Split(tok[1:end], ",")
	if len(parts) != 2 {
		return TimedEvent{}, fmt.Errorf("timed operation %q: interval needs two endpoints", tok)
	}
	inv, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return TimedEvent{}, fmt.Errorf("timed operation %q: bad invocation time: %v", tok, err)
	}
	var res float64
	if r := strings.TrimSpace(parts[1]); r == "inf" {
		res = math.Inf(1)
	} else {
		res, err = strconv.ParseFloat(r, 64)
		if err != nil {
			return TimedEvent{}, fmt.Errorf("timed operation %q: bad response time: %v", tok, err)
		}
	}
	op, err := spec.ParseOperation(tok[end+1:])
	if err != nil {
		return TimedEvent{}, err
	}
	return TimedEvent{Proc: proc, Op: op, Inv: inv, Res: res}, nil
}
