package history_test

import (
	"strings"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

func TestFromProcesses(t *testing.T) {
	w2 := adt.NewWindowStream(2)
	h := history.FromProcesses(w2, [][]spec.Operation{
		{spec.NewOp(spec.NewInput("w", 1), spec.Bot), spec.NewOp(spec.NewInput("r"), spec.TupleOutput(0, 1))},
		{spec.NewOp(spec.NewInput("w", 2), spec.Bot)},
	})
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if len(h.Processes()) != 2 {
		t.Fatalf("processes = %v", h.Processes())
	}
	if !h.Prog().Has(0, 1) {
		t.Fatal("missing program edge within process 0")
	}
	if h.Prog().Has(0, 2) || h.Prog().Has(2, 0) {
		t.Fatal("cross-process events must be incomparable")
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `adt: W2
p0: w(1) r/(0,1) r/(1,2)*
p1: w(2) r/(0,2) r/(1,2)*`
	h := history.MustParse(text)
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.OmegaEvents().Count(); got != 2 {
		t.Fatalf("ω count = %d", got)
	}
	// Re-parse the rendered form.
	h2 := history.MustParse(h.String())
	if h2.N() != h.N() || h2.String() != h.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", h, h2)
	}
}

func TestParseUpdateTokensGetBotOutput(t *testing.T) {
	h := history.MustParse("adt: W2\np0: w(1)")
	op := h.Events[0].Op
	if op.Hidden || !op.Out.Equal(spec.Bot) {
		t.Fatalf("w(1) parsed as %v, want visible ⊥", op)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"p0: w(1)",               // missing header
		"adt: Bogus\np0: w(1)",   // unknown ADT
		"adt: W2\nno colon here", // malformed line
		"adt: W2\np0: w(",        // malformed op
	} {
		if _, err := history.Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestUpdatesQueries(t *testing.T) {
	h := history.MustParse("adt: Queue\np0: push(1) pop/1\np1: push(2)")
	u := h.Updates()
	if u.Count() != 3 { // push, pop, push are all updates
		t.Fatalf("updates = %v", u)
	}
	q := h.Queries()
	if q.Count() != 1 || !q.Has(1) {
		t.Fatalf("queries = %v", q)
	}
}

func TestStripOmega(t *testing.T) {
	h := history.MustParse("adt: W2\np0: w(1) r/(0,1)*")
	if !h.HasOmega() {
		t.Fatal("ω flag lost in parsing")
	}
	f := h.StripOmega()
	if f.HasOmega() {
		t.Fatal("StripOmega kept a flag")
	}
	if h.OmegaEvents().Count() != 1 {
		t.Fatal("StripOmega mutated the original")
	}
}

func TestBuilderEdges(t *testing.T) {
	// Fork/join: e0 -> e1, e0 -> e2, e1 -> e3, e2 -> e3.
	w := adt.NewWindowStream(1)
	b := history.NewBuilder(w)
	e0 := b.Append(0, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	e1 := b.Append(1, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	e2 := b.Append(2, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	e3 := b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	b.Edge(e0, e1)
	b.Edge(e0, e2)
	b.Edge(e1, e3)
	b.Edge(e2, e3)
	h := b.Build()
	if !h.Prog().Has(e0, e3) {
		t.Fatal("transitive closure missing e0 -> e3")
	}
	if h.Prog().Has(e1, e2) || h.Prog().Has(e2, e1) {
		t.Fatal("fork branches must stay incomparable")
	}
}

func TestBuilderCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cyclic program order did not panic")
		}
	}()
	b := history.NewBuilder(adt.Register{})
	e0 := b.Append(0, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	e1 := b.Append(1, spec.NewOp(spec.NewInput("w", 2), spec.Bot))
	b.Edge(e0, e1)
	b.Edge(e1, e0)
	b.Build()
}

func TestOmegaMustBeLastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-final ω event did not panic")
		}
	}()
	b := history.NewBuilder(adt.Register{})
	b.AppendOmega(0, spec.NewOp(spec.NewInput("r"), spec.IntOutput(0)))
	b.Append(0, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	b.Build()
}

func TestProcEvents(t *testing.T) {
	h := history.MustParse("adt: W2\np0: w(1) r/(0,1)\np1: w(2)")
	p0 := h.ProcEvents(0)
	if p0.Count() != 2 || !p0.Has(0) || !p0.Has(1) {
		t.Fatalf("p0 events = %v", p0)
	}
}

func TestDot(t *testing.T) {
	h := history.MustParse("adt: W2\np0: w(1) r/(0,1)\np1: w(2)")
	dot := h.Dot()
	for _, want := range []string{"digraph history", "cluster_p0", "cluster_p1", "e0 -> e1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestOps(t *testing.T) {
	h := history.MustParse("adt: W2\np0: w(1) r/(0,1)")
	ops := h.Ops([]int{1, 0})
	if ops[0].In.Method != "r" || ops[1].In.Method != "w" {
		t.Fatalf("Ops = %v", ops)
	}
}
