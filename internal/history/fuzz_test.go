package history

import (
	"strings"
	"testing"
)

// Native fuzz targets for the two text formats the CLI accepts. Run
// with `go test -fuzz=FuzzParse ./internal/history` for continuous
// fuzzing; under plain `go test` the seed corpus below runs as a
// regression suite. The invariant in both cases: arbitrary input must
// produce either a usable value or an error — never a panic, and
// never both.

func FuzzParse(f *testing.F) {
	seeds := []string{
		"adt: W2\np0: w(1) r/(0,1) r/(1,2)*\np1: w(2) r/(0,2) r/(1,2)*\n",
		"adt: Register\np0: w(1) r/1\n",
		"adt: M[a-c]\np0: wa(1) rb/0\np1: wb(2) ra/1\n",
		"adt: Queue\np0: push(1) pop/1\n",
		"adt: Counter\np0: inc(2) get/2\np1: get/0*\n",
		"# comment\nadt: W2\n\np0: w(1)\n",
		"adt: Nope\np0: w(1)\n",
		"p0: w(1)\n",
		"adt: W2\nbroken line\n",
		"adt: W2\np0: r/(1\n",
		"adt: W2\np0: w(1)* r/(0,1)\n", // ω before end of process
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		// ω-misplacement is a documented builder panic (caller bug in
		// programmatic use); the parser converts it into an error
		// before reaching the builder — except the "ω not maximal"
		// case, which Build reports by panic. Treat that one panic as
		// an expected rejection.
		defer func() {
			if r := recover(); r != nil {
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "ω") && !strings.Contains(msg, "omega") {
					panic(r)
				}
			}
		}()
		h, err := Parse(text)
		if err == nil && h == nil {
			t.Fatal("Parse returned neither history nor error")
		}
		if err != nil && h != nil {
			t.Fatal("Parse returned both history and error")
		}
		if h != nil {
			// The parsed history must be internally consistent.
			_ = h.String()
			if h.N() != len(h.Events) {
				t.Fatal("event count mismatch")
			}
		}
	})
}

func FuzzParseTimed(f *testing.F) {
	seeds := []string{
		"adt: Register\np0: [0,1]w(1)\np1: [2,3]r/0\n",
		"adt: Register\np0: [0,inf]w(7)\n",
		"adt: W2\np0: [0,1]w(1) [2,3]r/(0,1)\n",
		"adt: Register\np0: [1,0]w(1)\n", // inverted interval: parser accepts, checker rejects
		"adt: Register\np0: [x,1]w(1)\n",
		"adt: Register\np0: w(1)\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		adtT, evs, err := ParseTimed(text)
		if err == nil && adtT == nil {
			t.Fatal("ParseTimed returned neither ADT nor error")
		}
		if err == nil {
			for _, ev := range evs {
				if ev.Proc < 0 {
					t.Fatal("negative process index")
				}
			}
		}
	})
}
