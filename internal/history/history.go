// Package history implements the execution facet of the paper:
// distributed histories (Def. 4) as labelled partial orders of events,
// with program order, processes as maximal chains, projections, and an
// ω-marking mechanism that encodes the infinite-history semantics the
// causal-order definitions rely on (Def. 7).
//
// # ω-events and cofiniteness
//
// The paper's causal orders must satisfy cofiniteness: every event is
// ordered before all but finitely many events. On finite histories this
// is vacuous, yet several of the paper's examples (e.g. Fig. 3a) only
// make sense when the drawn history is understood as the prefix of an
// infinite execution in which the final reads repeat forever. We encode
// this by allowing the *last* event of a process to carry an ω flag:
// semantically, the event is repeated infinitely often with the same
// label. A causal order on such a history must then place every event
// in the causal past of each ω-event (some repetition of the ω-event
// lies beyond any finite ignorance window, and all repetitions return
// the same output).
package history

import (
	"fmt"
	"strings"

	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Event is a single method execution by a process (Sec. 2.2).
type Event struct {
	ID    int            // dense index in the history
	Proc  int            // process (maximal chain) index, -1 if none
	Op    spec.Operation // label Λ(e)
	Omega bool           // event repeats infinitely (see package doc)
}

// History is a distributed history H = (Σ, E, Λ, 7→) over a specific
// ADT. The program order is stored transitively closed.
type History struct {
	ADT    spec.ADT
	Events []Event

	prog  *porder.Rel // strict program order 7→, transitively closed
	procs [][]int     // events of each process, in program order

	// Derived sets, computed once at Build so that the exponential
	// checkers can read them without per-invocation allocation. All are
	// immutable after Build; the *View accessors expose them shared,
	// the classic accessors return defensive clones.
	updates  porder.Bitset
	omega    porder.Bitset
	preds    []porder.Bitset // prog.Preds()
	procBits []porder.Bitset // per-process event bitsets
}

// N returns the number of events.
func (h *History) N() int { return len(h.Events) }

// Prog returns the strict program order, transitively closed. Callers
// must not mutate it.
func (h *History) Prog() *porder.Rel { return h.prog }

// Processes returns the events of each process in program order. For
// histories built from sequential processes this is the paper's P_H
// (the maximal chains). Callers must not mutate the returned slices.
func (h *History) Processes() [][]int { return h.procs }

// ProcEvents returns the bitset of events belonging to process p.
func (h *History) ProcEvents(p int) porder.Bitset {
	return h.procBits[p].Clone()
}

// ProcEventsView returns the bitset of events belonging to process p,
// shared with the history. Callers must not mutate it.
func (h *History) ProcEventsView(p int) porder.Bitset { return h.procBits[p] }

// Updates returns the bitset of events labelled with update inputs.
func (h *History) Updates() porder.Bitset {
	return h.updates.Clone()
}

// UpdatesView returns the update-event bitset shared with the history.
// Callers must not mutate it.
func (h *History) UpdatesView() porder.Bitset { return h.updates }

// Queries returns the bitset of events labelled with query inputs.
func (h *History) Queries() porder.Bitset {
	b := porder.NewBitset(h.N())
	for _, e := range h.Events {
		if h.ADT.IsQuery(e.Op.In) {
			b.Set(e.ID)
		}
	}
	return b
}

// OmegaEvents returns the bitset of ω-flagged events.
func (h *History) OmegaEvents() porder.Bitset {
	return h.omega.Clone()
}

// OmegaView returns the ω-event bitset shared with the history.
// Callers must not mutate it.
func (h *History) OmegaView() porder.Bitset { return h.omega }

// ProgPreds returns the program-order predecessor sets, shared with
// the history (ProgPreds()[e] = {e' : e' 7→ e}). Callers must not
// mutate them.
func (h *History) ProgPreds() []porder.Bitset { return h.preds }

// HasOmega reports whether any event is ω-flagged.
func (h *History) HasOmega() bool {
	for _, e := range h.Events {
		if e.Omega {
			return true
		}
	}
	return false
}

// StripOmega returns a copy of the history with all ω flags cleared,
// i.e. the literal finite history. Events and order are shared
// structurally (both are immutable by convention).
func (h *History) StripOmega() *History {
	events := make([]Event, len(h.Events))
	copy(events, h.Events)
	for i := range events {
		events[i].Omega = false
	}
	return &History{
		ADT: h.ADT, Events: events, prog: h.prog, procs: h.procs,
		updates:  h.updates,
		omega:    porder.NewBitset(len(events)),
		preds:    h.preds,
		procBits: h.procBits,
	}
}

// Ops returns the operations of the given event ids in order.
func (h *History) Ops(ids []int) []spec.Operation {
	ops := make([]spec.Operation, len(ids))
	for i, id := range ids {
		ops[i] = h.Events[id].Op
	}
	return ops
}

// String renders the history one process per line, using the text
// format understood by Parse.
func (h *History) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adt: %s\n", h.ADT.Name())
	for p, evs := range h.procs {
		fmt.Fprintf(&b, "p%d:", p)
		for _, id := range evs {
			b.WriteByte(' ')
			b.WriteString(h.Events[id].Op.String())
			if h.Events[id].Omega {
				b.WriteByte('*')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FromProcesses builds a history from per-process operation sequences,
// the standard "collection of disjoint maximal chains" model of
// communicating sequential processes.
func FromProcesses(t spec.ADT, procs [][]spec.Operation) *History {
	b := NewBuilder(t)
	for p, ops := range procs {
		for _, op := range ops {
			b.Append(p, op)
		}
	}
	return b.Build()
}

// Builder constructs histories incrementally. Events gain program-order
// edges from the previous event of the same process automatically;
// extra edges (for fork/join-style program orders) can be added with
// Edge.
type Builder struct {
	adt    spec.ADT
	events []Event
	edges  [][2]int
	last   map[int]int // proc -> last event id
	procs  []int       // distinct procs in first-seen order
}

// NewBuilder returns an empty builder for the given ADT.
func NewBuilder(t spec.ADT) *Builder {
	return &Builder{adt: t, last: make(map[int]int)}
}

// Append adds an event for process proc with the given operation and
// returns its id.
func (b *Builder) Append(proc int, op spec.Operation) int {
	id := len(b.events)
	b.events = append(b.events, Event{ID: id, Proc: proc, Op: op})
	if prev, ok := b.last[proc]; ok {
		b.edges = append(b.edges, [2]int{prev, id})
	} else {
		b.procs = append(b.procs, proc)
	}
	b.last[proc] = id
	return id
}

// AppendOmega adds an ω-flagged event (one that conceptually repeats
// forever; it must end its process).
func (b *Builder) AppendOmega(proc int, op spec.Operation) int {
	id := b.Append(proc, op)
	b.events[id].Omega = true
	return id
}

// Edge adds an extra program-order edge from event i to event j,
// allowing general partial orders (forks, joins, sensor networks —
// Sec. 2.2's general model).
func (b *Builder) Edge(i, j int) {
	b.edges = append(b.edges, [2]int{i, j})
}

// Build finalizes the history. It panics if the program order has a
// cycle or an ω-event is not maximal in its process — both are caller
// bugs, not data-dependent conditions.
func (b *Builder) Build() *History {
	n := len(b.events)
	rel := porder.NewRel(n)
	for _, e := range b.edges {
		rel.Add(e[0], e[1])
	}
	if rel.HasCycle() {
		panic("history: program order has a cycle")
	}
	prog := rel.TransitiveClosure()

	// Renumber processes densely in first-seen order.
	procIdx := make(map[int]int, len(b.procs))
	for i, p := range b.procs {
		procIdx[p] = i
	}
	procs := make([][]int, len(b.procs))
	events := make([]Event, n)
	copy(events, b.events)
	for i := range events {
		pi := procIdx[events[i].Proc]
		events[i].Proc = pi
		procs[pi] = append(procs[pi], i)
	}
	for i := range events {
		if events[i].Omega {
			chain := procs[events[i].Proc]
			if chain[len(chain)-1] != i {
				panic("history: ω-event must be the last event of its process")
			}
		}
	}
	h := &History{ADT: b.adt, Events: events, prog: prog, procs: procs}
	h.updates = porder.NewBitset(n)
	h.omega = porder.NewBitset(n)
	for _, e := range events {
		if b.adt.IsUpdate(e.Op.In) {
			h.updates.Set(e.ID)
		}
		if e.Omega {
			h.omega.Set(e.ID)
		}
	}
	h.preds = prog.Preds()
	h.procBits = make([]porder.Bitset, len(procs))
	for p, evs := range procs {
		h.procBits[p] = porder.NewBitset(n)
		for _, e := range evs {
			h.procBits[p].Set(e)
		}
	}
	return h
}
