// Package vclock provides the logical clocks used by the broadcast and
// replication layers: Lamport scalar clocks with (time, pid) timestamp
// pairs (used by the causal-convergence algorithm of Fig. 5) and vector
// clocks (used to implement reliable causal broadcast).
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// Timestamp is a Lamport timestamp pair (VT, PID). Pairs are totally
// ordered lexicographically: (vt, j) < (vt', j') iff vt < vt' or
// vt = vt' and j < j'. Process ids are assumed unique and totally
// ordered, as in the paper (Sec. 6.3).
type Timestamp struct {
	VT  int
	PID int
}

// Less reports whether t < u in the total timestamp order.
func (t Timestamp) Less(u Timestamp) bool {
	if t.VT != u.VT {
		return t.VT < u.VT
	}
	return t.PID < u.PID
}

// LessEq reports whether t ≤ u.
func (t Timestamp) LessEq(u Timestamp) bool { return t == u || t.Less(u) }

// String renders (vt, pid).
func (t Timestamp) String() string { return fmt.Sprintf("(%d,%d)", t.VT, t.PID) }

// Lamport is a Lamport logical clock (Lamport 1978). The zero value is
// a clock at time 0.
type Lamport struct {
	time int
}

// Tick advances the clock for a local event and returns the new time.
func (c *Lamport) Tick() int {
	c.time++
	return c.time
}

// Witness merges an observed remote time into the clock, implementing
// the max rule of line 11 in Fig. 5.
func (c *Lamport) Witness(t int) {
	if t > c.time {
		c.time = t
	}
}

// Time returns the current clock value.
func (c *Lamport) Time() int { return c.time }

// VC is a vector clock over n processes. VCs are the standard carrier
// of causal-delivery conditions in reliable causal broadcast.
type VC []int

// New returns the zero vector clock for n processes.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Incr increments component i and returns the clock for chaining.
func (v VC) Incr(i int) VC {
	v[i]++
	return v
}

// Merge sets v to the componentwise maximum of v and u.
func (v VC) Merge(u VC) {
	for i := range v {
		if u[i] > v[i] {
			v[i] = u[i]
		}
	}
}

// LessEq reports whether v ≤ u componentwise (v happened-before-or-
// equals u).
func (v VC) LessEq(u VC) bool {
	for i := range v {
		if v[i] > u[i] {
			return false
		}
	}
	return true
}

// Less reports whether v < u: v ≤ u and v ≠ u.
func (v VC) Less(u VC) bool { return v.LessEq(u) && !u.LessEq(v) }

// Concurrent reports whether v and u are incomparable.
func (v VC) Concurrent(u VC) bool { return !v.LessEq(u) && !u.LessEq(v) }

// Equal reports componentwise equality.
func (v VC) Equal(u VC) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// CausallyReady reports whether a message stamped with clock m from
// process sender may be delivered at a process whose delivered-state
// vector is v: m[sender] = v[sender]+1 and m[k] ≤ v[k] for k ≠ sender.
// This is the classical Birman-Schiper-Stephenson delivery condition.
func CausallyReady(m, v VC, sender int) bool {
	for k := range m {
		if k == sender {
			if m[k] != v[k]+1 {
				return false
			}
		} else if m[k] > v[k] {
			return false
		}
	}
	return true
}

// String renders the vector as [a b c].
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.Itoa(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
