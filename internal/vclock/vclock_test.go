package vclock_test

import (
	"testing"
	"testing/quick"

	"github.com/paper-repro/ccbm/internal/vclock"
)

func TestTimestampOrder(t *testing.T) {
	a := vclock.Timestamp{VT: 1, PID: 2}
	b := vclock.Timestamp{VT: 2, PID: 0}
	c := vclock.Timestamp{VT: 1, PID: 3}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("vt comparison wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("pid tiebreak wrong")
	}
	if !a.LessEq(a) || a.Less(a) {
		t.Fatal("reflexivity wrong")
	}
}

// TestTimestampTotalOrder: trichotomy and transitivity via quick.
func TestTimestampTotalOrder(t *testing.T) {
	tri := func(a, b vclock.Timestamp) bool {
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	trans := func(a, b, c vclock.Timestamp) bool {
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLamportClock(t *testing.T) {
	var c vclock.Lamport
	if c.Time() != 0 {
		t.Fatal("zero clock not 0")
	}
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Fatal("tick sequence wrong")
	}
	c.Witness(10)
	if c.Time() != 10 {
		t.Fatal("witness did not advance")
	}
	c.Witness(5)
	if c.Time() != 10 {
		t.Fatal("witness regressed")
	}
	if c.Tick() != 11 {
		t.Fatal("tick after witness wrong")
	}
}

func TestVCMergeLessEq(t *testing.T) {
	a := vclock.VC{1, 2, 3}
	b := vclock.VC{2, 1, 3}
	if a.LessEq(b) || b.LessEq(a) {
		t.Fatal("incomparable clocks compared")
	}
	if !a.Concurrent(b) {
		t.Fatal("concurrency not detected")
	}
	m := a.Clone()
	m.Merge(b)
	if !m.Equal(vclock.VC{2, 2, 3}) {
		t.Fatalf("merge = %v", m)
	}
	if !a.LessEq(m) || !b.LessEq(m) {
		t.Fatal("merge not an upper bound")
	}
	if !a.Less(m) {
		t.Fatal("strict less wrong")
	}
}

// TestVCMergeIsLub: merge is the least upper bound (quick).
func TestVCMergeIsLub(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		va, vb := vclock.New(4), vclock.New(4)
		for i := 0; i < 4; i++ {
			va[i], vb[i] = int(a[i]), int(b[i])
		}
		m := va.Clone()
		m.Merge(vb)
		if !va.LessEq(m) || !vb.LessEq(m) {
			return false
		}
		// Any other upper bound dominates m.
		u := vclock.New(4)
		for i := 0; i < 4; i++ {
			u[i] = max(va[i], vb[i])
		}
		return m.Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCausallyReady(t *testing.T) {
	// Delivered nothing yet; p0's first message is ready, second is not.
	v := vclock.New(2)
	m1 := vclock.VC{1, 0}
	m2 := vclock.VC{2, 0}
	if !vclock.CausallyReady(m1, v, 0) {
		t.Fatal("first message must be ready")
	}
	if vclock.CausallyReady(m2, v, 0) {
		t.Fatal("second message delivered before first")
	}
	// A message depending on an undelivered foreign message waits.
	dep := vclock.VC{1, 1}
	if vclock.CausallyReady(dep, vclock.New(2), 1) {
		t.Fatal("dependent message delivered too early")
	}
	if !vclock.CausallyReady(dep, vclock.VC{1, 0}, 1) {
		t.Fatal("dependency satisfied but not ready")
	}
}

func TestVCString(t *testing.T) {
	if got := (vclock.VC{1, 0, 2}).String(); got != "[1 0 2]" {
		t.Fatalf("String = %q", got)
	}
	if got := (vclock.Timestamp{VT: 3, PID: 1}).String(); got != "(3,1)" {
		t.Fatalf("String = %q", got)
	}
}
