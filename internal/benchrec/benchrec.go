// Package benchrec is the shared writer for the repo's BENCH_*.json
// performance records: JSON arrays of labelled run entries
// (label/date/toolchain/platform/results), appended to by cmd/ccbench
// (checker microbenchmarks) and cmd/ccload (runtime load runs).
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Entry is one recorded run. Results is free-form per tool (ccbench
// records per-benchmark ns/bytes/allocs, ccload records a throughput/
// latency/monitor report).
type Entry struct {
	Label    string `json:"label"`
	Date     string `json:"date"`
	Go       string `json:"go"`
	Platform string `json:"platform"`
	Procs    int    `json:"procs,omitempty"` // GOMAXPROCS of the run, when relevant
	Cores    int    `json:"cores,omitempty"` // physical core count (runtime.NumCPU)
	Results  any    `json:"results"`
}

// Percentiles is the full latency summary a load run records, in
// microseconds, on the clock the producer declares (intended-start
// for open-loop runs, stopwatch for closed-loop or service time).
type Percentiles struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// RampStep is one measured step of a target-rate ramp.
type RampStep struct {
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	P99US        float64 `json:"p99_us"`
	Errors       int64   `json:"errors"`
	Sustained    bool    `json:"sustained"`
}

// Knee is the ramp controller's verdict: the highest offered rate the
// service sustained before the measured-vs-offered gap or the p99
// blew past the configured thresholds.
type Knee struct {
	Rate     float64 `json:"rate_ops_per_sec"`
	Achieved float64 `json:"achieved_ops_per_sec"`
	P99US    float64 `json:"p99_us"`
	Step     int     `json:"step"`
	Reason   string  `json:"reason"` // why the ramp stopped
}

// LoadResult is the structured core of a workload-driven load run's
// Results: which named scenario ran, in which loop mode, at what
// offered vs achieved rate, with full percentile records on both the
// intended-start (coordinated-omission-safe) and stopwatch clocks.
type LoadResult struct {
	Scenario     string             `json:"scenario"`
	Mode         string             `json:"mode"`    // "open" or "closed"
	Arrival      string             `json:"arrival"` // "poisson" or "fixed" (open loop)
	Workers      int                `json:"workers"`
	OfferedRate  float64            `json:"offered_rate,omitempty"`
	AchievedRate float64            `json:"achieved_rate"`
	Ops          int64              `json:"ops"`
	Errors       int64              `json:"errors"`
	Intended     *Percentiles       `json:"intended_latency,omitempty"`
	Service      *Percentiles       `json:"service_latency,omitempty"`
	Mix          map[string]float64 `json:"realized_mix,omitempty"`
	Steps        []RampStep         `json:"ramp_steps,omitempty"`
	Knee         *Knee              `json:"knee,omitempty"`
}

// New stamps an entry with the current time and toolchain.
func New(label string, results any) Entry {
	return Entry{
		Label:    label,
		Date:     time.Now().UTC().Format(time.RFC3339),
		Go:       runtime.Version(),
		Platform: runtime.GOOS + "/" + runtime.GOARCH,
		Results:  results,
	}
}

// NewHost is New with the host's GOMAXPROCS and physical core count
// stamped, for runs whose results depend on available parallelism.
func NewHost(label string, results any) Entry {
	e := New(label, results)
	e.Procs = runtime.GOMAXPROCS(0)
	e.Cores = runtime.NumCPU()
	return e
}

// Append appends the entry to the JSON-array file, creating the file
// when missing and preserving existing entries verbatim. It returns
// the new number of entries.
func Append(path string, e Entry) (int, error) {
	var entries []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return 0, fmt.Errorf("%s is not a JSON array of runs: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return 0, err
	}
	entries = append(entries, raw)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(entries), nil
}
