// Package benchrec is the shared writer for the repo's BENCH_*.json
// performance records: JSON arrays of labelled run entries
// (label/date/toolchain/platform/results), appended to by cmd/ccbench
// (checker microbenchmarks) and cmd/ccload (runtime load runs).
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Entry is one recorded run. Results is free-form per tool (ccbench
// records per-benchmark ns/bytes/allocs, ccload records a throughput/
// latency/monitor report).
type Entry struct {
	Label    string `json:"label"`
	Date     string `json:"date"`
	Go       string `json:"go"`
	Platform string `json:"platform"`
	Procs    int    `json:"procs,omitempty"` // GOMAXPROCS of the run, when relevant
	Cores    int    `json:"cores,omitempty"` // physical core count (runtime.NumCPU)
	Results  any    `json:"results"`
}

// New stamps an entry with the current time and toolchain.
func New(label string, results any) Entry {
	return Entry{
		Label:    label,
		Date:     time.Now().UTC().Format(time.RFC3339),
		Go:       runtime.Version(),
		Platform: runtime.GOOS + "/" + runtime.GOARCH,
		Results:  results,
	}
}

// Append appends the entry to the JSON-array file, creating the file
// when missing and preserving existing entries verbatim. It returns
// the new number of entries.
func Append(path string, e Entry) (int, error) {
	var entries []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return 0, fmt.Errorf("%s is not a JSON array of runs: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return 0, err
	}
	entries = append(entries, raw)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(entries), nil
}
