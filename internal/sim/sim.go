// Package sim provides a deterministic discrete-event simulation of the
// paper's system model (Sec. 6.1): asynchronous message passing with
// arbitrary finite delays, crash-stop failures and (optionally)
// temporary partitions. All scheduling randomness flows from an
// explicit seed, so every experiment is reproducible bit-for-bit.
//
// The simulator substitutes for the real distributed testbed the paper
// assumes: it preserves the properties the algorithms depend on —
// unbounded but finite delays, no global clock, reliable links between
// live, connected processes — while making adversarial schedules
// reproducible and checkable.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/paper-repro/ccbm/internal/net"
)

// Network is a deterministic discrete-event implementation of
// net.Transport.
type Network struct {
	n        int
	rng      *rand.Rand
	now      float64
	seq      int64
	queue    eventHeap
	handlers []net.Handler
	dead     []bool
	blocked  map[[2]int]bool // directed link cut (partitions)

	// Delay bounds for message latency, sampled uniformly.
	MinDelay, MaxDelay float64

	// Stats.
	Sent      int64
	Delivered int64
	Dropped   int64
}

type event struct {
	at      float64
	seq     int64
	from    int
	to      int
	payload any
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New creates a network of n processes with the given seed. The default
// delay distribution is uniform in [1, 10) simulated time units.
func New(n int, seed int64) *Network {
	return &Network{
		n:        n,
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make([]net.Handler, n),
		dead:     make([]bool, n),
		blocked:  make(map[[2]int]bool),
		MinDelay: 1,
		MaxDelay: 10,
	}
}

// N implements net.Transport.
func (nw *Network) N() int { return nw.n }

// Register implements net.Transport.
func (nw *Network) Register(id int, h net.Handler) {
	if nw.handlers[id] != nil {
		panic(fmt.Sprintf("sim: process %d registered twice", id))
	}
	nw.handlers[id] = h
}

// Send implements net.Transport: the message is scheduled for delivery
// after a random delay. Messages between live, connected processes are
// never lost (reliable links); messages to or from crashed processes
// and across a partition are dropped.
func (nw *Network) Send(from, to int, payload any) {
	if nw.dead[from] {
		nw.Dropped++
		return
	}
	nw.Sent++
	delay := nw.MinDelay
	if nw.MaxDelay > nw.MinDelay {
		delay += nw.rng.Float64() * (nw.MaxDelay - nw.MinDelay)
	}
	nw.seq++
	heap.Push(&nw.queue, event{at: nw.now + delay, seq: nw.seq, from: from, to: to, payload: payload})
}

// Crash implements net.Transport.
func (nw *Network) Crash(id int) { nw.dead[id] = true }

// Crashed implements net.Transport.
func (nw *Network) Crashed(id int) bool { return nw.dead[id] }

// Partition cuts both directions of every link between group a and
// group b. Heal re-opens them. Messages already in flight across the
// cut are dropped at delivery time, modelling loss during the
// partition; the broadcast layers' flooding recovers them afterwards if
// any connected process received a copy — matching the paper's
// reliable-broadcast assumption, which is implementable only between
// eventually-connected processes.
func (nw *Network) Partition(a, b []int) {
	for _, i := range a {
		for _, j := range b {
			nw.blocked[[2]int{i, j}] = true
			nw.blocked[[2]int{j, i}] = true
		}
	}
}

// Heal removes every partition cut.
func (nw *Network) Heal() { nw.blocked = make(map[[2]int]bool) }

// Now returns the current simulated time.
func (nw *Network) Now() float64 { return nw.now }

// Step delivers the next pending message, if any, and reports whether
// one was delivered (or dropped).
func (nw *Network) Step() bool {
	for nw.queue.Len() > 0 {
		ev := heap.Pop(&nw.queue).(event)
		nw.now = ev.at
		if nw.dead[ev.to] || nw.dead[ev.from] || nw.blocked[[2]int{ev.from, ev.to}] {
			nw.Dropped++
			return true
		}
		nw.Delivered++
		h := nw.handlers[ev.to]
		if h == nil {
			panic(fmt.Sprintf("sim: no handler for process %d", ev.to))
		}
		h(ev.from, ev.payload)
		return true
	}
	return false
}

// Run delivers messages until the network is quiet or maxSteps is
// reached (0 = unbounded). It returns the number of deliveries
// performed. A quiet network with wait-free replicas means every
// broadcast has reached every live connected process.
func (nw *Network) Run(maxSteps int) int {
	steps := 0
	for nw.Step() {
		steps++
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
	}
	return steps
}

// RunFor delivers messages with timestamps up to the given simulated
// time horizon.
func (nw *Network) RunFor(until float64) {
	for nw.queue.Len() > 0 && nw.queue[0].at <= until {
		nw.Step()
	}
	if nw.now < until {
		nw.now = until
	}
}

// Pending returns the number of undelivered messages.
func (nw *Network) Pending() int { return nw.queue.Len() }

// Rand exposes the network's seeded RNG so that drivers can derive
// workload randomness from the same seed.
func (nw *Network) Rand() *rand.Rand { return nw.rng }
