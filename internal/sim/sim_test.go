package sim_test

import (
	"testing"

	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/sim"
)

// collect registers recording handlers on every process.
func collect(nw *sim.Network) [][]any {
	got := make([][]any, nw.N())
	for i := 0; i < nw.N(); i++ {
		i := i
		nw.Register(i, func(from int, payload any) {
			got[i] = append(got[i], payload)
		})
	}
	return got
}

func TestDeliveryAndQuiescence(t *testing.T) {
	nw := sim.New(3, 1)
	got := collect(nw)
	nw.Send(0, 1, "a")
	nw.Send(0, 2, "b")
	if nw.Pending() != 2 {
		t.Fatalf("pending = %d", nw.Pending())
	}
	steps := nw.Run(0)
	if steps != 2 || nw.Pending() != 0 {
		t.Fatalf("steps = %d pending = %d", steps, nw.Pending())
	}
	if len(got[1]) != 1 || got[1][0] != "a" || len(got[2]) != 1 || got[2][0] != "b" {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		nw := sim.New(2, 42)
		var times []float64
		nw.Register(0, func(int, any) { times = append(times, nw.Now()) })
		nw.Register(1, func(int, any) { times = append(times, nw.Now()) })
		for i := 0; i < 20; i++ {
			nw.Send(i%2, (i+1)%2, i)
		}
		nw.Run(0)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different delivery counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	order := func(seed int64) []int {
		nw := sim.New(2, seed)
		var ids []int
		nw.Register(1, func(_ int, payload any) { ids = append(ids, payload.(int)) })
		nw.Register(0, func(int, any) {})
		for i := 0; i < 10; i++ {
			nw.Send(0, 1, i)
		}
		nw.Run(0)
		return ids
	}
	a, b := order(1), order(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Log("seeds 1 and 2 coincide (unlikely but possible); trying 3")
		c := order(3)
		same = true
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produce identical schedules")
		}
	}
}

func TestCrash(t *testing.T) {
	nw := sim.New(2, 7)
	got := collect(nw)
	nw.Send(0, 1, "before")
	nw.Run(0)
	nw.Crash(1)
	if !nw.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
	nw.Send(0, 1, "after")
	nw.Run(0)
	if len(got[1]) != 1 {
		t.Fatalf("crashed process received %v", got[1])
	}
	// Crashed senders drop too.
	nw.Send(1, 0, "from the grave")
	nw.Run(0)
	if len(got[0]) != 0 {
		t.Fatalf("message from crashed process delivered: %v", got[0])
	}
	if nw.Dropped == 0 {
		t.Fatal("drops not counted")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	nw := sim.New(4, 5)
	got := collect(nw)
	nw.Partition([]int{0, 1}, []int{2, 3})
	nw.Send(0, 2, "cut")
	nw.Send(0, 1, "local")
	nw.Run(0)
	if len(got[2]) != 0 {
		t.Fatal("message crossed the partition")
	}
	if len(got[1]) != 1 {
		t.Fatal("intra-group message lost")
	}
	nw.Heal()
	nw.Send(0, 2, "healed")
	nw.Run(0)
	if len(got[2]) != 1 || got[2][0] != "healed" {
		t.Fatalf("post-heal delivery failed: %v", got[2])
	}
}

func TestRunFor(t *testing.T) {
	nw := sim.New(2, 9)
	nw.MinDelay, nw.MaxDelay = 10, 10
	count := 0
	nw.Register(1, func(int, any) { count++ })
	nw.Register(0, func(int, any) {})
	nw.Send(0, 1, "x")
	nw.RunFor(5)
	if count != 0 {
		t.Fatal("message delivered before its time")
	}
	if nw.Now() != 5 {
		t.Fatalf("Now = %v, want 5", nw.Now())
	}
	nw.RunFor(20)
	if count != 1 {
		t.Fatal("message not delivered by its time")
	}
}

func TestTimeMonotone(t *testing.T) {
	nw := sim.New(2, 13)
	var last float64
	nw.Register(0, func(int, any) {})
	nw.Register(1, func(int, any) {
		if nw.Now() < last {
			t.Fatal("time went backwards")
		}
		last = nw.Now()
	})
	for i := 0; i < 50; i++ {
		nw.Send(0, 1, i)
	}
	nw.Run(0)
}

// TestTransportInterface: the simulator satisfies net.Transport.
func TestTransportInterface(t *testing.T) {
	var _ net.Transport = sim.New(1, 0)
}

func TestStatsCounters(t *testing.T) {
	nw := sim.New(2, 3)
	collect(nw)
	nw.Send(0, 1, "a")
	nw.Send(1, 0, "b")
	nw.Run(0)
	if nw.Sent != 2 || nw.Delivered != 2 {
		t.Fatalf("sent %d delivered %d", nw.Sent, nw.Delivered)
	}
}
