package workload

import (
	"math/rand"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/spec"
)

// This file drives the paper's queue discussion (Sec. 4.1, Figs.
// 3e–3g): under weak criteria the coupled pop loses elements (2 is
// never popped) and duplicates them (1 is popped twice), while the
// decoupled Q′ (hd + rh) consumes every element at least once. The
// harness makes those anomalies *rates* instead of anecdotes.

// QueueConfig parameterizes a queue anomaly run.
type QueueConfig struct {
	Procs  int
	Pushes int // total elements pushed, values 1..Pushes (all distinct)
	Seed   int64
	// MaxStepsBetween bounds random message deliveries between
	// operations (0 = fully asynchronous until the final settle).
	MaxStepsBetween int
}

// QueueStats counts consumption anomalies for one run.
type QueueStats struct {
	Pushed     int
	Consumed   int // pop (or hd+rh) results, counting multiplicity
	Lost       int // values never consumed by any process
	Duplicated int // extra consumptions beyond the first, summed
}

// consume tallies one returned element.
func (s *QueueStats) consume(counts map[int]int, v int) {
	s.Consumed++
	counts[v]++
	if counts[v] > 1 {
		s.Duplicated++
	}
}

func (s *QueueStats) finish(counts map[int]int) {
	for v := 1; v <= s.Pushed; v++ {
		if counts[v] == 0 {
			s.Lost++
		}
	}
}

// RunQueue drives the coupled-pop queue Q under the given replication
// mode: random interleaved pushes and pops, then a settle, then every
// process drains its local replica. Exactly-once consumption would
// have Lost == 0 and Duplicated == 0; weak modes violate both.
func RunQueue(mode core.Mode, cfg QueueConfig) QueueStats {
	c := core.NewCluster(cfg.Procs, adt.Queue{}, mode, cfg.Seed)
	c.DisableRecording()
	rng := rand.New(rand.NewSource(cfg.Seed*48271 + 7))
	stats := QueueStats{Pushed: cfg.Pushes}
	counts := make(map[int]int, cfg.Pushes)

	next := 1
	for next <= cfg.Pushes {
		p := rng.Intn(cfg.Procs)
		if rng.Intn(2) == 0 {
			c.Invoke(p, "push", next)
			next++
		} else {
			if out := c.Invoke(p, "pop"); !out.Bot {
				stats.consume(counts, out.Vals[0])
			}
		}
		for d := rng.Intn(cfg.MaxStepsBetween + 1); d > 0; d-- {
			c.Net.Step()
		}
	}
	c.Settle()
	for p := 0; p < cfg.Procs; p++ {
		for {
			out := c.Invoke(p, "pop")
			if out.Bot {
				break
			}
			stats.consume(counts, out.Vals[0])
		}
		c.Settle()
	}
	stats.finish(counts)
	return stats
}

// RunQueue2 drives the paper's Q′ (hd + remove-head): a consumer reads
// the head and then removes exactly the value it saw. Elements can
// still be consumed at more than one process, but none can vanish —
// the at-least-once guarantee Fig. 3g illustrates.
func RunQueue2(mode core.Mode, cfg QueueConfig) QueueStats {
	c := core.NewCluster(cfg.Procs, adt.Queue2{}, mode, cfg.Seed)
	c.DisableRecording()
	rng := rand.New(rand.NewSource(cfg.Seed*48271 + 7))
	stats := QueueStats{Pushed: cfg.Pushes}
	counts := make(map[int]int, cfg.Pushes)

	consumeOne := func(p int) {
		out := c.Invoke(p, "hd")
		if out.Bot {
			return
		}
		v := out.Vals[0]
		c.Invoke(p, "rh", v)
		stats.consume(counts, v)
	}

	next := 1
	for next <= cfg.Pushes {
		p := rng.Intn(cfg.Procs)
		if rng.Intn(2) == 0 {
			c.Invoke(p, "push", next)
			next++
		} else {
			consumeOne(p)
		}
		for d := rng.Intn(cfg.MaxStepsBetween + 1); d > 0; d-- {
			c.Net.Step()
		}
	}
	c.Settle()
	for p := 0; p < cfg.Procs; p++ {
		for {
			out := c.Invoke(p, "hd")
			if out.Bot {
				break
			}
			v := out.Vals[0]
			c.Invoke(p, "rh", v)
			stats.consume(counts, v)
		}
		c.Settle()
	}
	stats.finish(counts)
	return stats
}

// RunQueueSC drives the coupled-pop queue on the sequentially
// consistent baseline (live transport, sequential driver): the
// exactly-once control group.
func RunQueueSC(cfg QueueConfig) QueueStats {
	c := core.NewSCCluster(cfg.Procs, adt.Queue{})
	defer c.Close()
	rng := rand.New(rand.NewSource(cfg.Seed*48271 + 7))
	stats := QueueStats{Pushed: cfg.Pushes}
	counts := make(map[int]int, cfg.Pushes)

	next := 1
	for next <= cfg.Pushes {
		p := rng.Intn(cfg.Procs)
		if rng.Intn(2) == 0 {
			c.Replicas[p].Invoke(spec.NewInput("push", next))
			next++
		} else {
			if out := c.Replicas[p].Invoke(spec.NewInput("pop")); !out.Bot {
				stats.consume(counts, out.Vals[0])
			}
		}
	}
	c.Net.Quiesce()
	for p := 0; p < cfg.Procs; p++ {
		for {
			out := c.Replicas[p].Invoke(spec.NewInput("pop"))
			if out.Bot {
				break
			}
			stats.consume(counts, out.Vals[0])
		}
		c.Net.Quiesce()
	}
	stats.finish(counts)
	return stats
}
