package workload

import (
	"testing"

	"github.com/paper-repro/ccbm/internal/core"
)

func qcfg(seed int64) QueueConfig {
	return QueueConfig{Procs: 3, Pushes: 12, Seed: seed, MaxStepsBetween: 3}
}

// TestQueueSCExactlyOnce: the sequentially consistent control group
// consumes every element exactly once.
func TestQueueSCExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := RunQueueSC(qcfg(seed))
		if s.Lost != 0 || s.Duplicated != 0 {
			t.Fatalf("seed %d: SC queue lost %d, duplicated %d — must be exactly-once", seed, s.Lost, s.Duplicated)
		}
		if s.Consumed != s.Pushed {
			t.Fatalf("seed %d: consumed %d of %d", seed, s.Consumed, s.Pushed)
		}
	}
}

// TestQueueCCAnomaliesExist: over enough seeds the causally consistent
// coupled-pop queue exhibits both anomalies of Sec. 4.1 — elements
// lost (Fig. 3f: 2 is never popped) and duplicated (1 popped twice).
func TestQueueCCAnomaliesExist(t *testing.T) {
	lost, dup := 0, 0
	for seed := int64(1); seed <= 30; seed++ {
		s := RunQueue(core.ModeCC, qcfg(seed))
		lost += s.Lost
		dup += s.Duplicated
	}
	if lost == 0 {
		t.Error("CC queue never lost an element over 30 seeds; Sec. 4.1 predicts losses")
	}
	if dup == 0 {
		t.Error("CC queue never duplicated an element over 30 seeds; Sec. 4.1 predicts duplicates")
	}
}

// TestQueue2NeverLoses: the decoupled Q′ can duplicate consumption but
// never lose an element — the at-least-once guarantee of Fig. 3g —
// under every weak mode.
func TestQueue2NeverLoses(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeCC, core.ModeCCv, core.ModePC, core.ModeEC} {
		for seed := int64(1); seed <= 10; seed++ {
			s := RunQueue2(mode, qcfg(seed))
			if s.Lost != 0 {
				t.Fatalf("%v seed %d: Q' lost %d elements — hd/rh must be at-least-once", mode, seed, s.Lost)
			}
		}
	}
}

// TestQueueConservation: whatever the mode, consumption accounting is
// conserved: consumed = pushed - lost + duplicated.
func TestQueueConservation(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeCC, core.ModeCCv, core.ModePC, core.ModeEC} {
		for seed := int64(1); seed <= 10; seed++ {
			s := RunQueue(mode, qcfg(seed))
			if s.Consumed != s.Pushed-s.Lost+s.Duplicated {
				t.Fatalf("%v seed %d: conservation broken: %+v", mode, seed, s)
			}
		}
	}
}
