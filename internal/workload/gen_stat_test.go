package workload

// Statistical test for GeneratorFor: the realized update fraction of
// every registered ADT's generator must match the requested writeRatio
// within binomial sampling noise. This pins the seed bug where a
// second rng.Float64() draw in the branch chain (CAS and friends)
// skewed the realized mix away from the documented ratio.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
)

// statADTs lists every adt.Lookup spelling the generator supports,
// with the expected realized update fraction as a function of the
// requested ratio. Queue is the documented exception: push and pop are
// both updates, so the ratio biases producing (push) instead.
var statADTs = []struct {
	name    string
	measure string // "update" or "push"
}{
	{"Register", "update"},
	{"CAS", "update"},
	{"W2", "update"},
	{"W2^4", "update"},
	{"M[a-c]", "update"},
	{"Counter", "update"},
	{"GSet", "update"},
	{"RWSet", "update"},
	{"Queue", "push"},
	{"Queue2", "update"},
	{"Stack", "update"},
	{"Sequence", "update"},
}

func TestGeneratorRealizedWriteRatio(t *testing.T) {
	const draws = 40000
	for _, tc := range statADTs {
		typ, err := adt.Lookup(tc.name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", tc.name, err)
		}
		for _, ratio := range []float64{0.2, 0.5, 0.8} {
			gen, err := GeneratorFor(typ, ratio)
			if err != nil {
				t.Fatalf("GeneratorFor(%s): %v", tc.name, err)
			}
			rng := rand.New(rand.NewSource(int64(len(tc.name))*1e6 + int64(ratio*100)))
			hits := 0
			for i := 0; i < draws; i++ {
				in := gen(rng, i)
				switch tc.measure {
				case "update":
					if typ.IsUpdate(in) {
						hits++
					}
				case "push":
					if in.Method == "push" {
						hits++
					}
				}
			}
			realized := float64(hits) / draws
			// 4.5 sigma of a Binomial(draws, ratio) proportion: a false
			// failure is ~1e-5 per cell even across the whole grid.
			tol := 4.5 * math.Sqrt(ratio*(1-ratio)/draws)
			if math.Abs(realized-ratio) > tol {
				t.Errorf("%s ratio=%.1f: realized %s fraction %.4f, want within %.4f",
					tc.name, ratio, tc.measure, realized, tol)
			}
		}
	}
}

// TestQuiescentReadsAreQueries pins that every quiescent read is a
// pure query of its type, and that only Queue lacks one.
func TestQuiescentReadsAreQueries(t *testing.T) {
	for _, tc := range statADTs {
		typ, err := adt.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		ins, ok := QuiescentReads(typ)
		if tc.name == "Queue" {
			if ok {
				t.Errorf("QuiescentReads(Queue) = %v, want none (pop mutates)", ins)
			}
			continue
		}
		if !ok || len(ins) == 0 {
			t.Errorf("QuiescentReads(%s): no quiescent query", tc.name)
			continue
		}
		for _, in := range ins {
			if typ.IsUpdate(in) {
				t.Errorf("QuiescentReads(%s) includes update %v", tc.name, in)
			}
		}
	}
}
