package workload_test

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/workload"
)

func TestRunShape(t *testing.T) {
	cfg := workload.Config{
		Procs: 4, Ops: 100, Streams: 3, Size: 2,
		WriteRatio: 0.5, Seed: 1, MaxStepsBetween: 3,
	}
	res := workload.Run(core.ModeCC, cfg)
	if res.Writes+res.Reads != 100 {
		t.Fatalf("ops = %d + %d", res.Writes, res.Reads)
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("degenerate mix: %d writes %d reads", res.Writes, res.Reads)
	}
	if res.Messages == 0 {
		t.Fatal("no messages sent")
	}
	if res.Cluster.Recorder.Total() != 100 {
		t.Fatalf("recorded %d ops", res.Cluster.Recorder.Total())
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := workload.Config{
		Procs: 3, Ops: 60, Streams: 2, Size: 2,
		WriteRatio: 0.4, Seed: 77, MaxStepsBetween: 2,
	}
	a := workload.Run(core.ModeCCv, cfg)
	b := workload.Run(core.ModeCCv, cfg)
	if a.Writes != b.Writes || a.Messages != b.Messages {
		t.Fatal("same seed, different run")
	}
	ha, hb := a.Cluster.Recorder.History(), b.Cluster.Recorder.History()
	if ha.String() != hb.String() {
		t.Fatal("same seed, different histories")
	}
}

// TestFinalReadsOmega: the quiescent final reads are ω-flagged and make
// the CCv run checkable for eventual consistency.
func TestFinalReadsOmega(t *testing.T) {
	cfg := workload.Config{
		Procs: 3, Ops: 12, Streams: 2, Size: 2,
		WriteRatio: 0.7, Seed: 5, MaxStepsBetween: 2,
	}
	res := workload.Run(core.ModeCCv, cfg)
	workload.FinalReads(res.Cluster, cfg.Streams)
	h := res.Cluster.Recorder.History()
	if h.OmegaEvents().Count() != 3 {
		t.Fatalf("ω events = %d, want one per process", h.OmegaEvents().Count())
	}
	ok, _, err := check.EC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("CCv workload is not eventually consistent at quiescence")
	}
}
