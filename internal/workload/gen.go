package workload

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
)

// OpGen produces a random invocation for a specific ADT: step is a
// monotone counter the generator may use to make written values
// distinct (distinct values keep the exact checkers sharp, per the
// Prop. 4 hypothesis).
type OpGen func(rng *rand.Rand, step int) spec.Input

// GeneratorFor returns a random-operation generator for any ADT
// produced by adt.Lookup. writeRatio is the probability of choosing
// an update operation, realized exactly: each generated operation
// draws one uniform variate and branches on sub-ranges of it, so the
// expected update fraction equals writeRatio for every type with a
// pure-update/pure-query split. The one exception is Queue, whose two
// operations (push, pop) are both updates; there writeRatio biases
// between producing and consuming instead.
func GeneratorFor(t spec.ADT, writeRatio float64) (OpGen, error) {
	switch a := t.(type) {
	case adt.Register:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("w", step+1)
			}
			return spec.NewInput("r")
		}, nil
	case adt.CASRegister:
		return func(rng *rand.Rand, step int) spec.Input {
			switch u := rng.Float64(); {
			case u < writeRatio/2:
				return spec.NewInput("w", step+1)
			case u < writeRatio:
				return spec.NewInput("cas", rng.Intn(step+1), step+1)
			default:
				return spec.NewInput("r")
			}
		}, nil
	case adt.WindowStream:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("w", step+1)
			}
			return spec.NewInput("r")
		}, nil
	case adt.WindowArray:
		return func(rng *rand.Rand, step int) spec.Input {
			x := rng.Intn(a.Streams)
			if rng.Float64() < writeRatio {
				return spec.NewInput("w", x, step+1)
			}
			return spec.NewInput("r", x)
		}, nil
	case adt.Memory:
		regs := a.Registers()
		return func(rng *rand.Rand, step int) spec.Input {
			reg := regs[rng.Intn(len(regs))]
			if rng.Float64() < writeRatio {
				return spec.NewInput("w"+reg, step+1)
			}
			return spec.NewInput("r" + reg)
		}, nil
	case adt.Counter:
		return func(rng *rand.Rand, step int) spec.Input {
			switch u := rng.Float64(); {
			case u < writeRatio/2:
				return spec.NewInput("inc", 1+rng.Intn(3))
			case u < writeRatio:
				return spec.NewInput("dec", 1+rng.Intn(2))
			default:
				return spec.NewInput("get")
			}
		}, nil
	case adt.GSet:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("add", rng.Intn(8))
			}
			if rng.Intn(2) == 0 {
				return spec.NewInput("has", rng.Intn(8))
			}
			return spec.NewInput("elems")
		}, nil
	case adt.RWSet:
		return func(rng *rand.Rand, step int) spec.Input {
			switch u := rng.Float64(); {
			case u < writeRatio/3:
				return spec.NewInput("rem", rng.Intn(8))
			case u < writeRatio:
				return spec.NewInput("add", rng.Intn(8))
			case rng.Intn(2) == 0:
				return spec.NewInput("has", rng.Intn(8))
			default:
				return spec.NewInput("elems")
			}
		}, nil
	case adt.Queue:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("push", step+1)
			}
			return spec.NewInput("pop")
		}, nil
	case adt.Queue2:
		return func(rng *rand.Rand, step int) spec.Input {
			switch u := rng.Float64(); {
			case u < writeRatio/2:
				return spec.NewInput("push", step+1)
			case u < writeRatio:
				// rh of a small value: usually a no-op unless it
				// matches the head, which is the type's point.
				return spec.NewInput("rh", rng.Intn(step+1))
			default:
				return spec.NewInput("hd")
			}
		}, nil
	case adt.Stack:
		return func(rng *rand.Rand, step int) spec.Input {
			switch u := rng.Float64(); {
			case u < writeRatio/2:
				return spec.NewInput("push", step+1)
			case u < writeRatio:
				return spec.NewInput("pop")
			default:
				return spec.NewInput("top")
			}
		}, nil
	case adt.Sequence:
		return func(rng *rand.Rand, step int) spec.Input {
			switch u := rng.Float64(); {
			case u < 2*writeRatio/3:
				return spec.NewInput("ins", rng.Intn(step+1), 'a'+rng.Intn(26))
			case u < writeRatio:
				return spec.NewInput("del", rng.Intn(step+1))
			default:
				return spec.NewInput("read")
			}
		}, nil
	default:
		return nil, fmt.Errorf("workload: no generator for ADT %s", t.Name())
	}
}

// QuiescentReads returns the query inputs that together observe the
// full quiescent state of t — the reads an experiment repeats (and
// flags ω) once the network has settled, turning a finite run into a
// checkable "limit" history for the convergence criteria. ok is false
// when t has no pure query to quiesce with (Queue: pop mutates).
func QuiescentReads(t spec.ADT) (ins []spec.Input, ok bool) {
	switch a := t.(type) {
	case adt.Register, adt.CASRegister, adt.WindowStream:
		return []spec.Input{spec.NewInput("r")}, true
	case adt.WindowArray:
		for x := 0; x < a.Streams; x++ {
			ins = append(ins, spec.NewInput("r", x))
		}
		return ins, true
	case adt.Memory:
		for _, reg := range a.Registers() {
			ins = append(ins, spec.NewInput("r"+reg))
		}
		return ins, true
	case adt.Counter:
		return []spec.Input{spec.NewInput("get")}, true
	case adt.GSet, adt.RWSet:
		return []spec.Input{spec.NewInput("elems")}, true
	case adt.Queue2:
		return []spec.Input{spec.NewInput("hd")}, true
	case adt.Stack:
		return []spec.Input{spec.NewInput("top")}, true
	case adt.Sequence:
		return []spec.Input{spec.NewInput("read")}, true
	default:
		return nil, false
	}
}
