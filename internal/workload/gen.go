package workload

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
)

// OpGen produces a random invocation for a specific ADT: step is a
// monotone counter the generator may use to make written values
// distinct (distinct values keep the exact checkers sharp, per the
// Prop. 4 hypothesis).
type OpGen func(rng *rand.Rand, step int) spec.Input

// GeneratorFor returns a random-operation generator for any ADT
// produced by adt.Lookup. writeRatio is the probability of choosing
// an update operation where the type has a pure-update/pure-query
// split; types whose operations are inherently mixed (queues) use it
// to bias between producing and consuming.
func GeneratorFor(t spec.ADT, writeRatio float64) (OpGen, error) {
	switch a := t.(type) {
	case adt.Register:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("w", step+1)
			}
			return spec.NewInput("r")
		}, nil
	case adt.CASRegister:
		return func(rng *rand.Rand, step int) spec.Input {
			switch {
			case rng.Float64() < writeRatio/2:
				return spec.NewInput("w", step+1)
			case rng.Float64() < writeRatio:
				return spec.NewInput("cas", rng.Intn(step+1), step+1)
			default:
				return spec.NewInput("r")
			}
		}, nil
	case adt.WindowStream:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("w", step+1)
			}
			return spec.NewInput("r")
		}, nil
	case adt.WindowArray:
		return func(rng *rand.Rand, step int) spec.Input {
			x := rng.Intn(a.Streams)
			if rng.Float64() < writeRatio {
				return spec.NewInput("w", x, step+1)
			}
			return spec.NewInput("r", x)
		}, nil
	case adt.Memory:
		regs := a.Registers()
		return func(rng *rand.Rand, step int) spec.Input {
			reg := regs[rng.Intn(len(regs))]
			if rng.Float64() < writeRatio {
				return spec.NewInput("w"+reg, step+1)
			}
			return spec.NewInput("r" + reg)
		}, nil
	case adt.Counter:
		return func(rng *rand.Rand, step int) spec.Input {
			switch {
			case rng.Float64() >= writeRatio:
				return spec.NewInput("get")
			case rng.Intn(2) == 0:
				return spec.NewInput("inc", 1+rng.Intn(3))
			default:
				return spec.NewInput("dec", 1+rng.Intn(2))
			}
		}, nil
	case adt.GSet:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("add", rng.Intn(8))
			}
			if rng.Intn(2) == 0 {
				return spec.NewInput("has", rng.Intn(8))
			}
			return spec.NewInput("elems")
		}, nil
	case adt.RWSet:
		return func(rng *rand.Rand, step int) spec.Input {
			switch {
			case rng.Float64() >= writeRatio:
				if rng.Intn(2) == 0 {
					return spec.NewInput("has", rng.Intn(8))
				}
				return spec.NewInput("elems")
			case rng.Intn(3) == 0:
				return spec.NewInput("rem", rng.Intn(8))
			default:
				return spec.NewInput("add", rng.Intn(8))
			}
		}, nil
	case adt.Queue:
		return func(rng *rand.Rand, step int) spec.Input {
			if rng.Float64() < writeRatio {
				return spec.NewInput("push", step+1)
			}
			return spec.NewInput("pop")
		}, nil
	case adt.Queue2:
		return func(rng *rand.Rand, step int) spec.Input {
			switch {
			case rng.Float64() < writeRatio:
				return spec.NewInput("push", step+1)
			case rng.Intn(2) == 0:
				return spec.NewInput("hd")
			default:
				// rh of a small value: usually a no-op unless it
				// matches the head, which is the type's point.
				return spec.NewInput("rh", rng.Intn(step+1))
			}
		}, nil
	case adt.Stack:
		return func(rng *rand.Rand, step int) spec.Input {
			switch {
			case rng.Float64() < writeRatio:
				return spec.NewInput("push", step+1)
			case rng.Intn(2) == 0:
				return spec.NewInput("top")
			default:
				return spec.NewInput("pop")
			}
		}, nil
	case adt.Sequence:
		return func(rng *rand.Rand, step int) spec.Input {
			switch {
			case rng.Float64() < writeRatio:
				return spec.NewInput("ins", rng.Intn(step+1), 'a'+rng.Intn(26))
			case rng.Intn(3) == 0:
				return spec.NewInput("del", rng.Intn(step+1))
			default:
				return spec.NewInput("read")
			}
		}, nil
	default:
		return nil, fmt.Errorf("workload: no generator for ADT %s", t.Name())
	}
}
