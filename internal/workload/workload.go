// Package workload generates the driver workloads for the experiments
// and benchmarks: seeded random mixes of reads and writes on window
// stream arrays (the object of Fig. 4 and Fig. 5), with configurable
// process counts, operation mixes, and delivery interleavings.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Config parameterizes a window-stream-array workload.
type Config struct {
	Procs      int     // number of processes
	Ops        int     // total operations
	Streams    int     // K
	Size       int     // k
	WriteRatio float64 // fraction of writes (0..1)
	Seed       int64
	// MaxStepsBetween is the maximum number of message deliveries
	// performed between consecutive operations (drawn uniformly),
	// controlling how asynchronous the run is. 0 delivers nothing until
	// the end.
	MaxStepsBetween int
}

// Result summarizes a driven run. Writes and Reads are the realized
// operation counts (updates vs queries actually generated), so tools
// report the achieved mix rather than the requested one.
type Result struct {
	Cluster  *core.Cluster
	Writes   int
	Reads    int
	Messages int64
}

// RealizedWriteRatio returns the update fraction actually generated,
// Writes/(Writes+Reads); 0 on an empty run.
func (r Result) RealizedWriteRatio() float64 {
	if r.Writes+r.Reads == 0 {
		return 0
	}
	return float64(r.Writes) / float64(r.Writes+r.Reads)
}

// Run builds a cluster in the given mode and drives the workload,
// settling the network at the end.
func Run(mode core.Mode, cfg Config) Result {
	c := core.NewCluster(cfg.Procs, adt.NewWindowArray(cfg.Streams, cfg.Size), mode, cfg.Seed)
	res := Drive(c, cfg)
	return res
}

// Drive runs the workload against an existing cluster.
func Drive(c *core.Cluster, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed*2654435761 + 1))
	res := Result{Cluster: c}
	val := 1
	for i := 0; i < cfg.Ops; i++ {
		p := rng.Intn(cfg.Procs)
		x := rng.Intn(cfg.Streams)
		if rng.Float64() < cfg.WriteRatio {
			c.Invoke(p, "w", x, val)
			val++
			res.Writes++
		} else {
			c.Invoke(p, "r", x)
			res.Reads++
		}
		if cfg.MaxStepsBetween > 0 {
			for d := rng.Intn(cfg.MaxStepsBetween + 1); d > 0; d-- {
				c.Net.Step()
			}
		}
	}
	c.Settle()
	res.Messages = c.Net.Sent
	return res
}

// FinalReads performs one quiescent read of every stream on every
// process and marks them ω, turning the run into a checkable
// "limit" history for the convergence criteria.
func FinalReads(c *core.Cluster, streams int) {
	for p := range c.Replicas {
		for x := 0; x < streams; x++ {
			c.Invoke(p, "r", x)
		}
		c.Recorder.MarkOmega(p)
	}
}

// FinalReadsFor is FinalReads for an arbitrary ADT: every process
// performs t's quiescent queries (QuiescentReads) and flags the last
// one ω. It returns an error for types with no pure query.
func FinalReadsFor(c *core.Cluster, t spec.ADT) error {
	ins, ok := QuiescentReads(t)
	if !ok {
		return fmt.Errorf("workload: ADT %s has no pure query to quiesce with", t.Name())
	}
	for p := range c.Replicas {
		for _, in := range ins {
			c.Replicas[p].Invoke(in)
		}
		c.Recorder.MarkOmega(p)
	}
	return nil
}
