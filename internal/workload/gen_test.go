package workload

import (
	"context"
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/spec"
)

// TestGeneratorForAllRegistryTypes: every ADT the registry can
// produce has a generator, and 200 generated operations run against
// the sequential spec without panics (the spec functions are total).
func TestGeneratorForAllRegistryTypes(t *testing.T) {
	names := []string{"Register", "CAS", "W2", "W3^2", "M[a-c]", "Counter", "GSet", "RWSet", "Queue", "Queue2", "Stack", "Sequence"}
	for _, name := range names {
		a, err := adt.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		gen, err := GeneratorFor(a, 0.5)
		if err != nil {
			t.Fatalf("GeneratorFor(%q): %v", name, err)
		}
		rng := rand.New(rand.NewSource(1))
		q := a.Init()
		updates, queries := 0, 0
		for i := 0; i < 200; i++ {
			in := gen(rng, i)
			q, _ = a.Step(q, in)
			if a.IsUpdate(in) {
				updates++
			}
			if a.IsQuery(in) {
				queries++
			}
		}
		if updates == 0 {
			t.Errorf("%s: generator produced no updates", name)
		}
		if queries == 0 {
			t.Errorf("%s: generator produced no queries", name)
		}
	}
}

// TestGeneratorUnknownADT: a type outside the registry is reported,
// not silently defaulted.
func TestGeneratorUnknownADT(t *testing.T) {
	if _, err := GeneratorFor(fakeADT{}, 0.5); err == nil {
		t.Fatal("unknown ADT accepted")
	}
}

type fakeADT struct{}

func (fakeADT) Name() string                                               { return "fake" }
func (fakeADT) Init() spec.State                                           { return nil }
func (fakeADT) Step(q spec.State, in spec.Input) (spec.State, spec.Output) { return q, spec.Bot }
func (fakeADT) IsUpdate(spec.Input) bool                                   { return false }
func (fakeADT) IsQuery(spec.Input) bool                                    { return true }

// TestGeneratedRuntimeHistoriesSatisfyMode drives small generated
// workloads for several ADTs through the CC and CCv runtimes and
// verifies the recorded histories with the exact checkers — the
// ccsim -adt -check loop as a regression test.
func TestGeneratedRuntimeHistoriesSatisfyMode(t *testing.T) {
	cases := []struct {
		adtName string
		mode    core.Mode
		crit    check.Criterion
		ops     int
	}{
		{"Counter", core.ModeCC, check.CritCC, 12},
		{"Counter", core.ModeCCv, check.CritCCv, 12},
		{"RWSet", core.ModeCCv, check.CritCCv, 10},
		{"Queue", core.ModeCC, check.CritCC, 9},
		{"Stack", core.ModeCCv, check.CritCCv, 9},
		{"CAS", core.ModeCC, check.CritCC, 10},
	}
	for _, tc := range cases {
		a, err := adt.Lookup(tc.adtName)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := GeneratorFor(a, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 4; seed++ {
			c := core.NewCluster(3, a, tc.mode, seed)
			rng := rand.New(rand.NewSource(seed * 17))
			for i := 0; i < tc.ops; i++ {
				c.Replicas[rng.Intn(3)].Invoke(gen(rng, i))
				for d := rng.Intn(4); d > 0; d-- {
					c.Net.Step()
				}
			}
			c.Settle()
			ok, _, err := check.Check(context.Background(), tc.crit, c.Recorder.History(), check.Options{})
			if err != nil {
				t.Fatalf("%s/%v seed %d: %v", tc.adtName, tc.mode, seed, err)
			}
			if !ok {
				t.Fatalf("%s/%v seed %d: recorded history violates %v:\n%s",
					tc.adtName, tc.mode, seed, tc.crit, c.Recorder.History())
			}
		}
	}
}
