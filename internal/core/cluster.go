package core

import (
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/sim"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/trace"
)

// Cluster wires n replicas of one shared object over a deterministic
// simulated network. It is the main experiment driver: tests and
// benchmarks invoke operations on chosen replicas, control message
// delivery, and extract the recorded history for the checkers.
type Cluster struct {
	Net      *sim.Network
	Replicas []*Replica
	Recorder *trace.Recorder
	adt      spec.ADT
}

// NewCluster creates a simulated cluster of n replicas in the given
// mode, all randomness derived from seed.
func NewCluster(n int, t spec.ADT, mode Mode, seed int64) *Cluster {
	nw := sim.New(n, seed)
	rec := trace.New(t, n)
	c := &Cluster{Net: nw, Recorder: rec, adt: t}
	for i := 0; i < n; i++ {
		c.Replicas = append(c.Replicas, NewReplica(nw, i, t, mode, rec))
	}
	return c
}

// DisableRecording detaches the trace recorder from every replica (for
// benchmarks; see Replica.DisableRecording).
func (c *Cluster) DisableRecording() {
	for _, r := range c.Replicas {
		r.DisableRecording()
	}
}

// Invoke runs one operation on process p's replica (delivering no
// messages; interleave with Step/Settle to control asynchrony).
func (c *Cluster) Invoke(p int, method string, args ...int) spec.Output {
	return c.Replicas[p].Invoke(spec.NewInput(method, args...))
}

// Settle delivers every in-flight message (bounded by maxSteps; 0
// means unbounded) so that all live, connected replicas reach
// quiescence.
func (c *Cluster) Settle() { c.Net.Run(0) }

// History returns the execution recorded so far.
func (c *Cluster) History() *trace.Recorder { return c.Recorder }

// Converged reports whether all live replicas have identical local
// states.
func (c *Cluster) Converged() bool {
	var key string
	first := true
	for i, r := range c.Replicas {
		if c.Net.Crashed(i) {
			continue
		}
		k := r.StateKey()
		if first {
			key, first = k, false
		} else if k != key {
			return false
		}
	}
	return true
}

// LiveCluster wires n replicas over the goroutine transport for the
// examples and the concurrency (race-detector) tests.
type LiveCluster struct {
	Net      *net.Live
	Replicas []*Replica
	Recorder *trace.Recorder
}

// NewLiveCluster creates a live cluster of n replicas in the given
// mode.
func NewLiveCluster(n int, t spec.ADT, mode Mode) *LiveCluster {
	nw := net.NewLive(n)
	rec := trace.New(t, n)
	c := &LiveCluster{Net: nw, Recorder: rec}
	for i := 0; i < n; i++ {
		c.Replicas = append(c.Replicas, NewReplica(nw, i, t, mode, rec))
	}
	return c
}

// Close shuts the transport down.
func (c *LiveCluster) Close() { c.Net.Close() }

// SCCluster wires n sequentially consistent replicas over the live
// transport (total order needs real waiting; see SCReplica).
type SCCluster struct {
	Net      *net.Live
	Replicas []*SCReplica
	Recorder *trace.Recorder
}

// NewSCCluster creates a live sequentially consistent cluster.
func NewSCCluster(n int, t spec.ADT) *SCCluster {
	nw := net.NewLive(n)
	rec := trace.New(t, n)
	c := &SCCluster{Net: nw, Recorder: rec}
	for i := 0; i < n; i++ {
		c.Replicas = append(c.Replicas, NewSCReplica(nw, i, t, rec))
	}
	return c
}

// Close shuts the transport down.
func (c *SCCluster) Close() { c.Net.Close() }
