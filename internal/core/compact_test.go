package core_test

import (
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/core"
)

// TestCompactLogPreservesReads: compacting the stable prefix of a CCv
// replica's log must not change any subsequent read, including after
// further concurrent writes. Cross-validated against an uncompacted
// twin cluster driven by the identical schedule.
func TestCompactLogPreservesReads(t *testing.T) {
	const n, streams, size, rounds = 3, 2, 3, 15
	for seed := int64(1); seed <= 10; seed++ {
		a := core.NewCluster(n, adt.NewWindowArray(streams, size), core.ModeCCv, seed)
		b := core.NewCluster(n, adt.NewWindowArray(streams, size), core.ModeCCv, seed)
		rng := rand.New(rand.NewSource(seed * 211))
		val := 1
		for i := 0; i < rounds; i++ {
			p := rng.Intn(n)
			x := rng.Intn(streams)
			if rng.Intn(2) == 0 {
				a.Invoke(p, "w", x, val)
				b.Invoke(p, "w", x, val)
				val++
			} else {
				ra := a.Invoke(p, "r", x)
				rb := b.Invoke(p, "r", x)
				if !ra.Equal(rb) {
					t.Fatalf("seed %d: compacted read %v differs from reference %v", seed, ra, rb)
				}
			}
			steps := rng.Intn(4)
			for d := 0; d < steps; d++ {
				a.Net.Step()
				b.Net.Step()
			}
			// Compact cluster a aggressively mid-run.
			for _, r := range a.Replicas {
				r.CompactLog()
			}
		}
		a.Settle()
		b.Settle()
		for p := 0; p < n; p++ {
			for x := 0; x < streams; x++ {
				ra := a.Invoke(p, "r", x)
				rb := b.Invoke(p, "r", x)
				if !ra.Equal(rb) {
					t.Fatalf("seed %d: final read p%d x%d: %v vs %v", seed, p, x, ra, rb)
				}
			}
		}
	}
}

// TestCompactLogShrinks: after quiescence every entry is stable only
// once every process has been heard from — a silent process blocks
// compaction; once all have written, the whole log compacts.
func TestCompactLogShrinks(t *testing.T) {
	c := core.NewCluster(3, adt.NewWindowArray(1, 2), core.ModeCCv, 4)
	// Only process 0 writes: nothing is stable (processes 1, 2 silent).
	for i := 0; i < 5; i++ {
		c.Invoke(0, "w", 0, i+1)
	}
	c.Settle()
	if got := c.Replicas[0].CompactLog(); got != 0 {
		t.Fatalf("compacted %d entries with silent peers", got)
	}
	// Everyone writes once; now the old entries are stable everywhere.
	c.Invoke(1, "w", 0, 100)
	c.Invoke(2, "w", 0, 101)
	c.Settle()
	before := c.Replicas[0].LogLen()
	removed := c.Replicas[0].CompactLog()
	if removed == 0 {
		t.Fatal("nothing compacted after hearing from every process")
	}
	if c.Replicas[0].LogLen() != before-removed {
		t.Fatalf("log length %d after removing %d from %d", c.Replicas[0].LogLen(), removed, before)
	}
	// Reads still correct.
	out := c.Invoke(0, "r", 0)
	if len(out.Vals) != 2 {
		t.Fatalf("read = %v", out)
	}
}

// TestCompactLogNoopOnCC: compaction only applies to the timestamp-log
// modes.
func TestCompactLogNoopOnCC(t *testing.T) {
	c := core.NewCluster(2, adt.NewWindowArray(1, 2), core.ModeCC, 1)
	c.Invoke(0, "w", 0, 1)
	c.Settle()
	if got := c.Replicas[0].CompactLog(); got != 0 {
		t.Fatalf("CC mode compacted %d entries", got)
	}
}

// TestCCConvergesOnCommutativeADT: for update-commutative data types
// (the counter), the apply-on-delivery CC runtime converges even
// without timestamps — the two branches of Fig. 1 coincide when
// concurrent updates commute, which is why CRDTs live happily in the
// convergence branch.
func TestCCConvergesOnCommutativeADT(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := core.NewCluster(3, adt.Counter{}, core.ModeCC, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			c.Invoke(rng.Intn(3), "inc", rng.Intn(5)+1)
			for d := rng.Intn(3); d > 0; d-- {
				c.Net.Step()
			}
		}
		c.Settle()
		if !c.Converged() {
			t.Fatalf("seed %d: counters diverged under CC", seed)
		}
	}
}

// TestPCAllowsCausalityViolation separates the PC runtime from the CC
// runtime operationally: FIFO delivery can let process 2 observe p1's
// write (issued after p1 read p0's write) before p0's own write — a
// causal inversion that causal delivery precludes on every schedule.
// Delays are randomized and the seed space searched: some schedule
// must produce the inversion under PC, no schedule may under CC. This
// is the runtime counterpart of PC ⊉ WCC.
func TestPCAllowsCausalityViolation(t *testing.T) {
	// run probes p2 the moment the effect (stream 1 = 8) becomes
	// visible and reports whether the cause (stream 0 = 7) was there.
	run := func(mode core.Mode, seed int64) (inverted bool) {
		c := core.NewCluster(3, adt.NewWindowArray(2, 1), mode, seed)
		c.Net.MinDelay, c.Net.MaxDelay = 1, 100
		c.Invoke(0, "w", 0, 7)
		for c.Invoke(1, "r", 0).Vals[0] != 7 {
			if !c.Net.Step() {
				break
			}
		}
		c.Invoke(1, "w", 1, 8) // the causally-later effect
		for c.Invoke(2, "r", 1).Vals[0] != 8 {
			if !c.Net.Step() {
				break
			}
		}
		inverted = c.Invoke(2, "r", 1).Vals[0] == 8 && c.Invoke(2, "r", 0).Vals[0] != 7
		c.Settle()
		return
	}
	const seeds = 300
	pcInversions := 0
	for seed := int64(0); seed < seeds; seed++ {
		if run(core.ModePC, seed) {
			pcInversions++
		}
		if run(core.ModeCC, seed) {
			t.Fatalf("seed %d: causal delivery exposed the effect before its cause", seed)
		}
	}
	if pcInversions == 0 {
		t.Fatalf("no schedule out of %d produced the PC causal inversion", seeds)
	}
	t.Logf("PC causal inversions: %d/%d schedules", pcInversions, seeds)
}
