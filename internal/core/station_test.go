package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/spec"
)

// newStationGroup wires n stations over a live transport.
func newStationGroup(t *testing.T, n int, mode Mode, cfg StationConfig) (*net.Live, []*Station) {
	t.Helper()
	lv := net.NewLive(n)
	sts := make([]*Station, n)
	for i := 0; i < n; i++ {
		sts[i] = NewStation(lv, i, mode, cfg)
	}
	return lv, sts
}

func ensureAll(t *testing.T, sts []*Station, name, adtName string) {
	t.Helper()
	for _, s := range sts {
		if err := s.EnsureObject(name, adtName); err != nil {
			t.Fatalf("EnsureObject(%s, %s): %v", name, adtName, err)
		}
	}
}

// settleGroup flushes every pending batch and waits for quiescence:
// with no new invocations, once every station is observed with no
// pending batch and no flush in flight, a final Quiesce covers any
// straggler broadcast (flushes run entirely under flushMu).
func settleGroup(lv *net.Live, sts []*Station) {
	for {
		for _, s := range sts {
			s.Flush()
		}
		lv.Quiesce()
		quiet := true
		for _, s := range sts {
			s.flushMu.Lock()
			s.batchMu.Lock()
			if len(s.pending) > 0 {
				quiet = false
			}
			s.batchMu.Unlock()
			s.flushMu.Unlock()
		}
		if quiet {
			lv.Quiesce()
			return
		}
	}
}

// TestStationConvergence drives concurrent sessions against every mode
// and checks that all stations converge per object once quiescent.
func TestStationConvergence(t *testing.T) {
	objects := map[string]string{
		"cart:1":  "Counter",
		"seen:2":  "GSet",
		"prof:3":  "Register",
		"queue:4": "Queue2",
	}
	for _, mode := range []Mode{ModeCC, ModePC, ModeEC, ModeCCv} {
		t.Run(mode.String(), func(t *testing.T) {
			lv, sts := newStationGroup(t, 3, mode, StationConfig{BatchOps: 4, BatchWait: 50 * time.Microsecond})
			defer lv.Close()
			for name, adtName := range objects {
				ensureAll(t, sts, name, adtName)
			}
			var wg sync.WaitGroup
			for sess := 0; sess < 6; sess++ {
				wg.Add(1)
				go func(sess int) {
					defer wg.Done()
					st := sts[sess%3]
					for i := 0; i < 40; i++ {
						var err error
						switch i % 4 {
						case 0:
							_, err = st.Invoke("cart:1", spec.NewInput("inc", 1))
						case 1:
							_, err = st.Invoke("seen:2", spec.NewInput("add", sess))
						case 2:
							_, err = st.Invoke("prof:3", spec.NewInput("w", sess*100+i))
						case 3:
							_, err = st.Invoke("queue:4", spec.NewInput("push", sess*1000+i))
						}
						if err != nil {
							t.Errorf("session %d: %v", sess, err)
							return
						}
					}
				}(sess)
			}
			wg.Wait()
			settleGroup(lv, sts)
			for name := range objects {
				// CC and PC order only causally/FIFO-related updates, so
				// replicas of non-commutative types may legitimately end in
				// different states; convergence of every object is the
				// timestamp modes' guarantee (EC, CCv). The commutative
				// objects (inc-only Counter, add-only GSet) must converge
				// under every mode.
				commutative := name == "cart:1" || name == "seen:2"
				if !commutative && mode != ModeEC && mode != ModeCCv {
					continue
				}
				key0, ok := sts[0].StateKey(name)
				if !ok {
					t.Fatalf("station 0 lost object %s", name)
				}
				for _, st := range sts[1:] {
					key, ok := st.StateKey(name)
					if !ok || key != key0 {
						t.Fatalf("mode %v object %s diverged: %q vs %q", mode, name, key0, key)
					}
				}
			}
		})
	}
}

// TestStationBatchingAmortizes pins that the batch path actually
// amortizes broadcasts: with many concurrent sessions and a roomy
// batch, broadcasts sent is well below updates sent.
func TestStationBatchingAmortizes(t *testing.T) {
	lv, sts := newStationGroup(t, 2, ModeCC, StationConfig{BatchOps: 16, BatchWait: 2 * time.Millisecond})
	defer lv.Close()
	ensureAll(t, sts, "o", "Counter")
	var wg sync.WaitGroup
	const sessions, each = 8, 50
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := sts[0].Invoke("o", spec.NewInput("inc", 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	settleGroup(lv, sts)
	st := sts[0].Stats()
	if st.BatchedOps != sessions*each {
		t.Fatalf("BatchedOps = %d, want %d", st.BatchedOps, sessions*each)
	}
	if st.Broadcasts >= st.BatchedOps {
		t.Fatalf("no batching: %d broadcasts for %d updates", st.Broadcasts, st.BatchedOps)
	}
	out, err := sts[0].Invoke("o", spec.NewInput("get"))
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.IntOutput(sessions * each); !out.Equal(want) {
		t.Fatalf("get = %v, want %v", out, want)
	}
}

// TestStationUpdateOutputs pins per-op output routing under
// concurrency: every push output is ⊥, every pop obtains a distinct
// value or ⊥, and the multiset of popped values is a subset of pushes.
func TestStationUpdateOutputs(t *testing.T) {
	lv, sts := newStationGroup(t, 2, ModeCCv, StationConfig{BatchOps: 4, BatchWait: 100 * time.Microsecond})
	defer lv.Close()
	ensureAll(t, sts, "q", "Queue")
	var mu sync.Mutex
	popped := map[int]int{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := sts[g%2]
			for i := 0; i < 30; i++ {
				if g%2 == 0 {
					out, err := st.Invoke("q", spec.NewInput("push", g*1000+i))
					if err != nil || !out.Equal(spec.Bot) {
						t.Errorf("push: out=%v err=%v", out, err)
						return
					}
				} else {
					out, err := st.Invoke("q", spec.NewInput("pop"))
					if err != nil {
						t.Error(err)
						return
					}
					if !out.Equal(spec.Bot) {
						mu.Lock()
						popped[out.Vals[0]]++
						mu.Unlock()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	settleGroup(lv, sts)
	for v, n := range popped {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

// TestStationCompact folds the stable prefix on CCv and preserves the
// observable state.
func TestStationCompact(t *testing.T) {
	lv, sts := newStationGroup(t, 3, ModeCCv, StationConfig{BatchOps: 1})
	defer lv.Close()
	ensureAll(t, sts, "c", "Counter")
	// Every station broadcasts so every origin's timestamp advances
	// everywhere (stability needs to hear from all).
	for round := 0; round < 5; round++ {
		for _, st := range sts {
			if _, err := st.Invoke("c", spec.NewInput("inc", 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	settleGroup(lv, sts)
	before, _ := sts[0].StateKey("c")
	if n := sts[0].Compact(); n == 0 {
		t.Fatal("Compact folded nothing despite all origins heard from")
	}
	after, _ := sts[0].StateKey("c")
	if before != after {
		t.Fatalf("Compact changed the state: %q -> %q", before, after)
	}
	if st := sts[0].Stats(); st.LogLen >= 15 {
		t.Fatalf("log not compacted: %d entries", st.LogLen)
	}
	// EC must refuse: unordered dissemination has no stable prefix.
	lvEC, stsEC := newStationGroup(t, 2, ModeEC, StationConfig{})
	defer lvEC.Close()
	ensureAll(t, stsEC, "c", "Counter")
	if _, err := stsEC[0].Invoke("c", spec.NewInput("inc", 1)); err != nil {
		t.Fatal(err)
	}
	settleGroup(lvEC, stsEC)
	if n := stsEC[0].Compact(); n != 0 {
		t.Fatalf("EC Compact folded %d entries, want 0", n)
	}
}

// TestStationClose: Close flushes the pending batch (releasing
// waiters), further updates fail, queries still serve.
func TestStationClose(t *testing.T) {
	lv, sts := newStationGroup(t, 2, ModeCC, StationConfig{BatchOps: 1 << 20, BatchWait: time.Hour})
	defer lv.Close()
	ensureAll(t, sts, "r", "Register")
	done := make(chan error, 1)
	go func() {
		_, err := sts[0].Invoke("r", spec.NewInput("w", 7))
		done <- err
	}()
	// The update is parked on a batch that will never fill; Close must
	// release it.
	deadline := time.After(5 * time.Second)
	for {
		sts[0].batchMu.Lock()
		n := len(sts[0].pending)
		sts[0].batchMu.Unlock()
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("update never reached the pending batch")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	sts[0].Close()
	if err := <-done; err != nil {
		t.Fatalf("parked update failed at Close: %v", err)
	}
	if _, err := sts[0].Invoke("r", spec.NewInput("w", 8)); err == nil {
		t.Fatal("update accepted after Close")
	}
	if out, err := sts[0].Invoke("r", spec.NewInput("r")); err != nil || !out.Equal(spec.IntOutput(7)) {
		t.Fatalf("query after Close: out=%v err=%v", out, err)
	}
}

// TestStationUnknownObject pins the error path.
func TestStationUnknownObject(t *testing.T) {
	lv, sts := newStationGroup(t, 1, ModeCC, StationConfig{})
	defer lv.Close()
	if _, err := sts[0].Invoke("nope", spec.NewInput("r")); err == nil {
		t.Fatal("Invoke on unknown object succeeded")
	}
	if err := sts[0].EnsureObject("bad", "NotAnADT"); err == nil {
		t.Fatal("EnsureObject accepted an unknown ADT")
	}
}

// TestStationLazyRemoteCreation: an object created on one station only
// still materializes on its peers at first delivery.
func TestStationLazyRemoteCreation(t *testing.T) {
	lv, sts := newStationGroup(t, 2, ModeCC, StationConfig{})
	defer lv.Close()
	if err := sts[0].EnsureObject("solo", "Counter"); err != nil {
		t.Fatal(err)
	}
	if _, err := sts[0].Invoke("solo", spec.NewInput("inc", 5)); err != nil {
		t.Fatal(err)
	}
	settleGroup(lv, sts)
	out, err := sts[1].Invoke("solo", spec.NewInput("get"))
	if err != nil {
		t.Fatalf("peer did not materialize the object: %v", err)
	}
	if !out.Equal(spec.IntOutput(5)) {
		t.Fatalf("peer state = %v, want 5", out)
	}
}

// TestStationManyObjectsManySessions is the kitchen-sink soak: mixed
// ADTs, many sessions, all four modes, convergence at the end. Kept
// small enough for -race in CI.
func TestStationManyObjectsManySessions(t *testing.T) {
	// Timestamp modes only: they are the ones that promise convergence
	// for the non-commutative types in the mix (Register, Stack).
	for _, mode := range []Mode{ModeEC, ModeCCv} {
		lv, sts := newStationGroup(t, 3, mode, StationConfig{BatchOps: 8, BatchWait: 100 * time.Microsecond})
		adts := []string{"Counter", "GSet", "Register", "RWSet", "Stack"}
		var names []string
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("obj-%d", i)
			names = append(names, name)
			ensureAll(t, sts, name, adts[i%len(adts)])
		}
		var wg sync.WaitGroup
		for sess := 0; sess < 9; sess++ {
			wg.Add(1)
			go func(sess int) {
				defer wg.Done()
				st := sts[sess%3]
				for i := 0; i < 25; i++ {
					name := names[(sess+i)%len(names)]
					var in spec.Input
					switch (sess + i) % len(adts) {
					case 0:
						in = spec.NewInput("inc", 1)
					case 1:
						in = spec.NewInput("add", i%8)
					case 2:
						in = spec.NewInput("w", sess*100+i)
					case 3:
						in = spec.NewInput("add", i%8)
					case 4:
						in = spec.NewInput("push", sess*100+i)
					}
					if _, err := st.Invoke(name, in); err != nil {
						t.Error(err)
						return
					}
				}
			}(sess)
		}
		wg.Wait()
		settleGroup(lv, sts)
		for _, name := range names {
			key0, _ := sts[0].StateKey(name)
			for _, st := range sts[1:] {
				if key, _ := st.StateKey(name); key != key0 {
					t.Fatalf("mode %v: object %s diverged", mode, name)
				}
			}
		}
		lv.Close()
	}
}
