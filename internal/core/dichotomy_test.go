package core_test

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
)

// TestPCvsECDichotomy is experiment E10: pipelined (or causal)
// consistency and eventual consistency cannot be combined in wait-free
// systems (Sec. 1, citing [19]). We stage the Fig. 3a scenario — two
// replicas write concurrently during a partition, then the partition
// heals — and observe that:
//
//   - the CC runtime preserves pipelined consistency but the replicas
//     never converge (each keeps its own arrival order forever);
//   - the CCv runtime converges but the resulting history is exactly
//     Fig. 3a's shape, which violates pipelined consistency.
func TestPCvsECDichotomy(t *testing.T) {
	t.Run("CC keeps PC, loses convergence", func(t *testing.T) {
		c := core.NewCluster(2, adt.NewWindowArray(1, 2), core.ModeCC, 7)
		c.Net.Partition([]int{0}, []int{1})
		c.Invoke(0, "w", 0, 1)
		c.Invoke(1, "w", 0, 2)
		c.Invoke(0, "r", 0) // (0,1)
		c.Invoke(1, "r", 0) // (0,2)
		c.Net.Run(0)        // in-flight copies die at the partition
		c.Net.Heal()
		// Re-flood by new activity is not modelled; deliver the healed
		// messages by re-broadcasting through fresh writes would change
		// the experiment, so instead model the heal as late delivery:
		// the flooding layer already dropped the cut messages, so the
		// divergence below is permanent — exactly the point.
		r0 := c.Invoke(0, "r", 0)
		r1 := c.Invoke(1, "r", 0)
		if r0.Equal(r1) {
			t.Fatalf("replicas agreed (%v); partition should have split the orders", r0)
		}
		h := c.Recorder.History()
		ok, _, err := check.PC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("CC runtime broke pipelined consistency:\n%s", h)
		}
	})

	t.Run("CCv converges, loses PC", func(t *testing.T) {
		c := core.NewCluster(2, adt.NewWindowArray(1, 2), core.ModeCCv, 7)
		// Both write concurrently; each reads its own before delivery.
		c.Invoke(0, "w", 0, 1)
		c.Invoke(1, "w", 0, 2)
		r0a := c.Invoke(0, "r", 0)
		r1a := c.Invoke(1, "r", 0)
		c.Settle()
		r0b := c.Invoke(0, "r", 0)
		r1b := c.Invoke(1, "r", 0)
		c.Recorder.MarkOmega(0)
		c.Recorder.MarkOmega(1)
		if !r0b.Equal(r1b) {
			t.Fatalf("CCv replicas did not converge: %v vs %v", r0b, r1b)
		}
		if r0a.Equal(r1a) {
			t.Fatalf("first reads should differ, got %v", r0a)
		}
		h := c.Recorder.History()
		// The converged history is CCv but not PC — Fig. 3a reproduced
		// from a live system rather than drawn by hand.
		ccv, _, err := check.CCv(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pc, _, err := check.PC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ccv || pc {
			t.Fatalf("want CCv ∧ ¬PC, got CCv=%v PC=%v:\n%s", ccv, pc, h)
		}
	})
}

// TestPartitionedConvergenceAfterHeal: with the CCv runtime, replicas
// that wrote on both sides of a partition converge once connectivity
// returns and new messages flow — provided some copy survived. Here we
// keep one process connected to both sides so flooding re-disseminates
// after the heal.
func TestPartitionedConvergenceAfterHeal(t *testing.T) {
	c := core.NewCluster(3, adt.NewWindowArray(1, 3), core.ModeCCv, 11)
	// Partition {0} | {2}; process 1 stays connected to both.
	c.Net.Partition([]int{0}, []int{2})
	c.Invoke(0, "w", 0, 1)
	c.Invoke(2, "w", 0, 2)
	c.Net.Run(0)
	c.Net.Heal()
	// Flooding via process 1 has already spread both writes (1 was
	// never cut from either side).
	c.Settle()
	if !c.Converged() {
		t.Fatalf("replicas did not converge after heal: %v / %v / %v",
			c.Replicas[0].StateKey(), c.Replicas[1].StateKey(), c.Replicas[2].StateKey())
	}
}
