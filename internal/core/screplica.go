package core

import (
	"sync"

	"github.com/paper-repro/ccbm/internal/broadcast"
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/trace"
)

// SCReplica implements sequential consistency with the classic
// "slow writes, fast reads" construction: updates go through
// total-order broadcast and the invoking process WAITS for its own
// update to be delivered; pure queries read the local state
// immediately. Because the total order extends every process's program
// order and reads are inserted at their process's current position,
// the resulting histories are sequentially consistent.
//
// This replica is intentionally not wait-free — the wait on the total
// order is exactly the cost the paper's Sec. 1 attributes to strong
// criteria (and the reason SC cannot survive partitions). Use it only
// on the live transport in crash-free runs; on the deterministic
// simulator the wait would deadlock the single-threaded event loop.
type SCReplica struct {
	mu      sync.Mutex
	applied *sync.Cond
	id      int
	t       spec.ADT
	bc      broadcast.Broadcaster
	rec     *trace.Recorder
	state   spec.State
	issued  int // own updates broadcast
	done    int // own updates delivered
	ownOuts []spec.Output
}

// NewSCReplica creates the sequentially consistent replica for process
// id and registers it with the transport.
func NewSCReplica(tr net.Transport, id int, t spec.ADT, rec *trace.Recorder) *SCReplica {
	r := &SCReplica{id: id, t: t, rec: rec, state: t.Init()}
	r.applied = sync.NewCond(&r.mu)
	r.bc = broadcast.NewTotal(tr, id, r.onDeliver)
	return r
}

// ID returns the replica's process id.
func (r *SCReplica) ID() int { return r.id }

// Invoke executes one operation. Updates block until globally ordered.
func (r *SCReplica) Invoke(in spec.Input) spec.Output {
	var out spec.Output
	if r.t.IsUpdate(in) {
		r.mu.Lock()
		r.issued++
		target := r.issued
		r.mu.Unlock()
		r.bc.Broadcast(updMsg{In: in})
		r.mu.Lock()
		for r.done < target {
			r.applied.Wait()
		}
		out = r.ownOuts[0]
		r.ownOuts = r.ownOuts[1:]
		r.mu.Unlock()
	} else {
		r.mu.Lock()
		_, out = r.t.Step(r.state, in)
		r.mu.Unlock()
	}
	if r.rec != nil {
		r.rec.Record(r.id, in, out)
	}
	return out
}

func (r *SCReplica) onDeliver(origin int, payload any) {
	m, ok := payload.(updMsg)
	if !ok {
		return
	}
	r.mu.Lock()
	var out spec.Output
	r.state, out = r.t.Step(r.state, m.In)
	if origin == r.id {
		r.ownOuts = append(r.ownOuts, out)
		r.done++
		r.applied.Broadcast()
	}
	r.mu.Unlock()
}

// StateKey returns the canonical key of the current local state.
func (r *SCReplica) StateKey() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Key()
}
