package core
