package core

import (
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
)

// TestOperationLatencyIndependentOfDelays is the wait-freedom claim of
// Sec. 1 as an invariant: no Invoke on the weak-criteria replicas ever
// advances simulated time, for any message-delay distribution — the
// operation completes at the instant it is invoked, while convergence
// time scales with the delays.
func TestOperationLatencyIndependentOfDelays(t *testing.T) {
	for _, mode := range []Mode{ModeCC, ModeCCv, ModePC, ModeEC} {
		var prevConv float64
		for _, scale := range []float64{1, 100} {
			c := NewCluster(3, adt.NewWindowArray(2, 2), mode, 5)
			c.DisableRecording()
			c.Net.MinDelay = scale
			c.Net.MaxDelay = 10 * scale
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 100; i++ {
				p := rng.Intn(3)
				before := c.Net.Now()
				if rng.Intn(2) == 0 {
					c.Invoke(p, "w", rng.Intn(2), i+1)
				} else {
					c.Invoke(p, "r", rng.Intn(2))
				}
				if after := c.Net.Now(); after != before {
					t.Fatalf("%v scale=%g: operation %d advanced sim time %g -> %g (not wait-free)",
						mode, scale, i, before, after)
				}
				if rng.Intn(3) == 0 {
					c.Net.Step()
				}
			}
			c.Settle()
			conv := c.Net.Now()
			if scale > 1 && conv <= prevConv {
				t.Fatalf("%v: convergence time %g at scale %g not larger than %g at scale 1 — delays must cost quiescence, not operations",
					mode, conv, scale, prevConv)
			}
			prevConv = conv
		}
	}
}
