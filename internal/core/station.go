package core

// Station is the serving-layer counterpart of Replica: one process's
// copy of MANY named objects, all disseminated over a single broadcast
// layer, with update batching on the hot path. A replica group of n
// Stations over one transport forms a shard of the multi-object
// service (cc/cluster); clients may invoke one Station from many
// goroutines concurrently (unlike Replica, whose contract is the
// paper's sequential process).
//
// The consistency criterion is per-group, selected exactly as for
// Replica: CC (causal broadcast, apply on delivery), PC (FIFO), EC
// (unordered + timestamp-ordered fold), CCv (causal + timestamp-
// ordered fold). For CCv the total-order timestamp is derived from the
// causal layer's own vector stamp (its coordinate sum, tie-broken by
// origin), which the layer assigns atomically with the causal ordering
// decision — so the timestamp order extends causality by construction
// even when deliveries race invocations, with no application-level
// Lamport window.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/broadcast"
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/vclock"
	"github.com/paper-repro/ccbm/internal/xhash"
)

// ErrClosed reports an update submitted to a closed station — a
// shutdown-in-progress condition, distinct from data errors like an
// unknown object.
var ErrClosed = errors.New("core: station closed")

// ErrDown reports an operation routed to a replica that has been
// crash-stopped by fault injection: the process refuses service until
// restarted. The wire layer maps it to "unavailable" (503), so clients
// retry or fail over instead of reading a corpse.
var ErrDown = errors.New("core: replica down")

// Replication selects the dissemination backend of a station group.
type Replication int

const (
	// ReplBroadcast is the reliable-broadcast stack of Sec. 6.1
	// (flooding relCore + ordering layer): assumes eventually reliable
	// links; a partition silently loses messages unless Retain is set
	// and Resync is called after the heal.
	ReplBroadcast Replication = iota
	// ReplAntiEntropy is the gossip backend: per-pair version-vector
	// exchange with batched delta shipping in periodic rounds
	// (broadcast.AntiEntropy). Partitions merely pause convergence;
	// causal order is reconstructed from VC stamps on replay, so
	// CC/CCv delivery survives loss and reordering.
	ReplAntiEntropy
)

// String names the backend the way flags spell it.
func (r Replication) String() string {
	if r == ReplAntiEntropy {
		return "antientropy"
	}
	return "broadcast"
}

// ParseReplication resolves a backend name.
func ParseReplication(s string) (Replication, error) {
	switch s {
	case "", "broadcast":
		return ReplBroadcast, nil
	case "antientropy", "anti-entropy", "gossip":
		return ReplAntiEntropy, nil
	}
	return 0, fmt.Errorf("core: unknown replication backend %q (want broadcast or antientropy)", s)
}

// StationConfig tunes a station's hot path.
type StationConfig struct {
	// BatchOps is the maximum number of updates carried by one
	// broadcast message; <= 1 disables batching (every update is its
	// own broadcast).
	BatchOps int
	// BatchWait bounds how long an enqueued update may wait for the
	// batch to fill before it is flushed anyway. Ignored when batching
	// is disabled; 0 defaults to 200µs.
	BatchWait time.Duration
	// Replication selects the dissemination backend (default
	// ReplBroadcast).
	Replication Replication
	// GossipInterval is the anti-entropy round period (default 10ms;
	// ReplAntiEntropy only).
	GossipInterval time.Duration
	// Retain keeps the broadcast backend's envelope log so Resync can
	// retransmit after a partition heals (memory grows with the
	// communication history; ReplBroadcast only — anti-entropy always
	// retains, that is its sync state).
	Retain bool
	// Birth seeds the per-origin high-water stamps (unix nanos). A
	// replica group must share one birth, or the construction-time
	// skew between its members reads as a permanent phantom lag. 0
	// defaults to the station's own construction time.
	Birth int64
}

// totalTS orders updates in the timestamp modes (EC, CCv): time, then
// intra-batch position, then origin.
type totalTS struct {
	VT  int // EC: origin Lamport time; CCv: causal-stamp coordinate sum
	Seq int // position within the batch
	PID int // origin process, the tie-breaker
}

func (a totalTS) less(b totalTS) bool {
	if a.VT != b.VT {
		return a.VT < b.VT
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.PID < b.PID
}

// wireOp is one update on the wire.
type wireOp struct {
	Obj string // object name
	ADT string // ADT registry name, creates the object lazily on first delivery
	In  spec.Input
	ID  uint64 // origin-local id routing the output back to the invoker
	VT  int    // EC only: origin-assigned Lamport time
}

// batchMsg is the broadcast payload: a batch of updates applied in
// order on delivery. SentAt is the origin's wall-clock send stamp
// (unix nanos); receivers keep, per origin, the largest stamp
// delivered — the per-origin high-water mark that staleness-bounded
// reads compare against (Pileus-style). Replicas of one shard share a
// clock domain in this runtime (one process), so cross-replica stamp
// comparison needs no clock-sync caveats.
type batchMsg struct {
	Ops    []wireOp
	SentAt int64
}

// stObject is the per-object replicated state.
type stObject struct {
	t       spec.ADT
	adtName string

	// Apply-on-delivery modes (CC, PC).
	state spec.State

	// Timestamp-ordered modes (EC, CCv): the shared timestamp-ordered
	// log with its replay cache.
	tl *tsLog[totalTS]
}

// StationStats counts a station's activity.
type StationStats struct {
	Invocations int64
	Updates     int64
	Queries     int64
	Applied     int64 // update deliveries applied (own + remote, all objects)
	Broadcasts  int64 // batches sent
	BatchedOps  int64 // updates carried by those batches
	Objects     int   // named objects hosted
	LogLen      int   // timestamp-log entries across objects (EC/CCv)
}

// Station is one process of a multi-object replica group. All methods
// are safe for concurrent use by many client sessions.
type Station struct {
	id   int
	mode Mode
	bc   broadcast.Broadcaster

	repl   Replication
	ae     *broadcast.AntiEntropy // ReplAntiEntropy backend
	causal *broadcast.Causal      // ReplBroadcast causal layer (CC/CCv)
	resync func()                 // backend repair hook; nil when unavailable

	mu      sync.Mutex
	objs    map[string]*stObject
	outs    map[uint64]spec.Output
	outCond *sync.Cond
	down    bool    // fault-injected crash-stop: refuse service until Restart
	delivFP uint64  // XOR of delivered-op hashes (set convergence witness)
	delivB  []int64 // per-origin delivered-batch counts (quiescence probe)
	hw      []int64 // per-origin high-water: latest delivered send stamp (unix ns)
	tsHigh  int     // EC: Lamport high-water (assigned ∨ witnessed)
	lastVT  []int   // per-origin largest timestamp seen, for compaction
	stats   StationStats

	batchMu  sync.Mutex
	pending  []wireOp
	nextID   uint64
	timer    *time.Timer
	closed   bool
	batchOps int
	wait     time.Duration

	// flushMu serializes take+broadcast, so batches leave in the order
	// their timestamps were assigned (EC) and a quiescence check can
	// rule out an in-flight flush by acquiring it.
	flushMu sync.Mutex
}

// NewStation creates the station for process id over the transport and
// registers its delivery handler.
func NewStation(tr net.Transport, id int, mode Mode, cfg StationConfig) *Station {
	s := &Station{
		id:       id,
		mode:     mode,
		objs:     make(map[string]*stObject),
		outs:     make(map[uint64]spec.Output),
		delivB:   make([]int64, tr.N()),
		hw:       make([]int64, tr.N()),
		lastVT:   make([]int, tr.N()),
		batchOps: cfg.BatchOps,
		wait:     cfg.BatchWait,
	}
	if s.wait <= 0 {
		s.wait = 200 * time.Microsecond
	}
	// High-water marks start at the group's birth: "everything up to
	// now" is vacuously delivered from every origin (the group starts
	// together with empty histories), so an origin that never writes
	// contributes zero staleness instead of an unbounded one.
	birth := cfg.Birth
	if birth == 0 {
		birth = time.Now().UnixNano()
	}
	for i := range s.hw {
		s.hw[i] = birth
	}
	s.outCond = sync.NewCond(&s.mu)
	s.repl = cfg.Replication
	if s.repl == ReplAntiEntropy {
		aeCfg := broadcast.AEConfig{Interval: cfg.GossipInterval}
		switch mode {
		case ModeCC, ModeCCv:
			aeCfg.Ordering = broadcast.AECausal
		case ModePC, ModeEC:
			aeCfg.Ordering = broadcast.AEFIFO
		default:
			panic(fmt.Sprintf("core: unknown mode %v", mode))
		}
		s.ae = broadcast.NewAntiEntropy(tr, id, aeCfg, s.onDeliverVC)
		s.bc = s.ae
		s.resync = s.ae.SyncNow
		return s
	}
	switch mode {
	case ModeCC, ModeCCv:
		s.causal = broadcast.NewCausalVC(tr, id, s.onDeliverVC)
		s.bc = s.causal
		if cfg.Retain {
			s.causal.EnableResync()
			s.resync = s.causal.Resync
		}
	case ModePC:
		f := broadcast.NewFIFO(tr, id, s.onDeliver)
		s.bc = f
		if cfg.Retain {
			f.EnableResync()
			s.resync = f.Resync
		}
	case ModeEC:
		r := broadcast.NewReliable(tr, id, s.onDeliver)
		s.bc = r
		if cfg.Retain {
			r.EnableResync()
			s.resync = r.Resync
		}
	default:
		panic(fmt.Sprintf("core: unknown mode %v", mode))
	}
	return s
}

// ID returns the station's process id.
func (s *Station) ID() int { return s.id }

// Mode returns the group's consistency mode.
func (s *Station) Mode() Mode { return s.mode }

// Replication returns the group's dissemination backend.
func (s *Station) Replication() Replication { return s.repl }

// SetDown flips the station's fault-injected crash-stop state. While
// down, Invoke and InvokeAsync refuse with ErrDown; replicated state
// and the delivery plumbing stay intact, so a later SetDown(false)
// resumes service exactly where the transport-level catch-up
// (gossip or resync) has brought the local copy.
func (s *Station) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports whether the station is refusing service.
func (s *Station) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// Resync triggers the backend's repair path: a gossip round to every
// peer (anti-entropy) or a full retransmission of the retained
// envelope log (broadcast with Retain). It reports false when the
// backend has no repair path (broadcast without Retain) — convergence
// after a heal is then not guaranteed.
func (s *Station) Resync() bool {
	if s.resync == nil {
		return false
	}
	s.resync()
	return true
}

// Frontier returns the station's causal delivery frontier — the
// vector of delivered-message counts per origin — or nil for the
// non-causal modes (PC, EC), whose backends make no causal promise a
// frontier could carry. A session that re-attaches to another replica
// with its last-seen frontier preserves read-your-writes: once the
// new replica's frontier dominates it, every update the session saw
// applied is applied there too.
func (s *Station) Frontier() vclock.VC {
	switch {
	case s.ae != nil && (s.mode == ModeCC || s.mode == ModeCCv):
		return s.ae.VC()
	case s.causal != nil:
		return s.causal.VC()
	}
	return nil
}

// WaitFrontier blocks until the station's causal frontier dominates
// want, or the timeout lapses; it reports whether the wait succeeded.
// Stations without a frontier (PC, EC) succeed trivially — there is
// no causal promise to wait for.
func (s *Station) WaitFrontier(want vclock.VC, timeout time.Duration) bool {
	if len(want) == 0 {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		have := s.Frontier()
		if have == nil || want.LessEq(have) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Fingerprint summarizes the station's replicated knowledge in one
// 64-bit value; equal fingerprints across a replica group mean the
// group has converged — the chaos harness's post-heal assertion.
// What converges depends on the mode. EC and CCv arbitrate delivered
// updates into one total order, so their states themselves converge:
// the fingerprint folds every hosted object's canonical state key
// (object names in sorted order, then keys). CC and PC apply updates
// in delivery order, and causal delivery lets replicas interleave
// concurrent non-commuting updates differently — their states may
// legitimately differ forever, which is exactly the paper's point in
// separating the criteria. There convergence means equal delivered
// sets, witnessed by the order-insensitive XOR of delivered-op
// hashes (delivery is exactly-once: the FIFO/causal layers and the
// anti-entropy logs dedup by per-origin sequence).
func (s *Station) Fingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode == ModeCC || s.mode == ModePC {
		return s.delivFP
	}
	names := make([]string, 0, len(s.objs))
	for n := range s.objs {
		names = append(names, n)
	}
	sort.Strings(names)
	h := xhash.Seed
	for _, n := range names {
		h = xhash.Ints(h, []int{len(n)})
		for _, c := range []byte(n) {
			h = xhash.Mix(h, uint64(c))
		}
		key := s.objs[n].queryStateLocked(s.mode).Key()
		h = xhash.Ints(h, []int{len(key)})
		for _, c := range []byte(key) {
			h = xhash.Mix(h, uint64(c))
		}
	}
	return h
}

// EnsureObject creates the named object locally if it does not exist.
// Call it on every station of the group before routing traffic for the
// object (remote stations also create lazily on first delivery, so a
// missed call only affects queries racing the first update).
func (s *Station) EnsureObject(name, adtName string) error {
	t, err := adt.Lookup(adtName)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objs[name]; !ok {
		s.createLocked(name, adtName, t)
	}
	return nil
}

func (s *Station) createLocked(name, adtName string, t spec.ADT) *stObject {
	o := &stObject{t: t, adtName: adtName, state: t.Init(), tl: newTSLog(t, totalTS.less)}
	s.objs[name] = o
	s.stats.Objects = len(s.objs)
	return o
}

// ensureLocked resolves an object at delivery time, creating it from
// its wire ADT name when this station has not seen it yet.
func (s *Station) ensureLocked(name, adtName string) *stObject {
	if o, ok := s.objs[name]; ok {
		return o
	}
	t, err := adt.Lookup(adtName)
	if err != nil {
		return nil // unknown type on the wire: drop, counted nowhere
	}
	return s.createLocked(name, adtName, t)
}

// Objects returns the names of the objects hosted, sorted.
func (s *Station) Objects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objs))
	for n := range s.objs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the station's counters.
func (s *Station) Stats() StationStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.LogLen = 0
	for _, o := range s.objs {
		st.LogLen += o.tl.size()
	}
	return st
}

// Invoke executes one operation on the named object. Queries read the
// local state; updates are enqueued on the current batch, broadcast,
// and complete when the local delivery applies them (never waiting for
// remote progress — wait-freedom is preserved, batching only delays
// the local flush by at most BatchWait).
func (s *Station) Invoke(obj string, in spec.Input) (spec.Output, error) {
	wait, err := s.InvokeAsync(obj, in)
	if err != nil {
		return spec.Output{}, err
	}
	return wait(), nil
}

// InvokeAsync begins one operation and returns the function that
// waits for its output — the per-op routing primitive batch groups
// pipeline on. A query's wait function returns immediately (the state
// was read at the call); an update's blocks until the local delivery
// applies it. Updates submitted by one caller complete in submission
// order (origin FIFO through the batcher and the broadcast layer), so
// a caller may hold many update handles and collect them at the end
// without reordering its program order.
func (s *Station) InvokeAsync(obj string, in spec.Input) (func() spec.Output, error) {
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		return nil, fmt.Errorf("station %d: %w", s.id, ErrDown)
	}
	o, ok := s.objs[obj]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: unknown object %q", obj)
	}
	if !o.t.IsUpdate(in) {
		q := o.queryStateLocked(s.mode)
		_, out := o.t.Step(q, in)
		s.stats.Invocations++
		s.stats.Queries++
		s.mu.Unlock()
		return func() spec.Output { return out }, nil
	}
	s.stats.Invocations++
	s.stats.Updates++
	s.mu.Unlock()

	id, err := s.enqueue(wireOp{Obj: obj, ADT: o.adtName, In: in})
	if err != nil {
		return nil, err
	}
	return func() spec.Output { return s.await(id) }, nil
}

// enqueue adds an update to the pending batch, flushing when full (or
// scheduling a timed flush when the batch just opened), and returns
// the op id to await.
func (s *Station) enqueue(op wireOp) (uint64, error) {
	s.batchMu.Lock()
	if s.closed {
		s.batchMu.Unlock()
		return 0, fmt.Errorf("station %d: %w", s.id, ErrClosed)
	}
	s.nextID++
	op.ID = s.nextID
	s.pending = append(s.pending, op)
	switch {
	case s.batchOps <= 1 || len(s.pending) >= s.batchOps:
		s.batchMu.Unlock()
		s.Flush()
	case len(s.pending) == 1:
		s.timer = time.AfterFunc(s.wait, s.Flush)
		s.batchMu.Unlock()
	default:
		s.batchMu.Unlock()
	}
	return op.ID, nil
}

// takeLocked claims the pending batch and cancels its flush timer.
func (s *Station) takeLocked() []wireOp {
	ops := s.pending
	s.pending = nil
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	return ops
}

// Flush broadcasts the pending batch, if any. It runs when a batch
// fills, on the batch timer, and at Close; callers never need it for
// correctness.
func (s *Station) Flush() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.batchMu.Lock()
	ops := s.takeLocked()
	s.batchMu.Unlock()
	s.broadcast(ops)
}

// broadcast stamps (EC) and disseminates one batch. Local delivery —
// synchronous inside Broadcast or handed to a concurrent delivery
// drainer — produces the per-op outputs the invokers await.
func (s *Station) broadcast(ops []wireOp) {
	if len(ops) == 0 {
		return
	}
	s.mu.Lock()
	if s.mode == ModeEC {
		// Origin-assigned Lamport times: unique per (VT, PID) because
		// tsHigh never decreases, monotone enough for the fold order;
		// EC makes no causality promise for them to violate.
		for i := range ops {
			ops[i].VT = s.tsHigh + 1 + i
		}
		s.tsHigh += len(ops)
	}
	s.stats.Broadcasts++
	s.stats.BatchedOps += int64(len(ops))
	s.mu.Unlock()
	s.bc.Broadcast(batchMsg{Ops: ops, SentAt: time.Now().UnixNano()})
}

// await blocks until the local delivery of op id produces its output.
func (s *Station) await(id uint64) spec.Output {
	s.mu.Lock()
	for {
		if out, ok := s.outs[id]; ok {
			delete(s.outs, id)
			s.mu.Unlock()
			return out
		}
		s.outCond.Wait()
	}
}

// onDeliver handles FIFO/Reliable deliveries (PC, EC).
func (s *Station) onDeliver(origin int, payload any) {
	s.apply(origin, 0, payload)
}

// onDeliverVC handles causal deliveries (CC, CCv) carrying the stamp.
func (s *Station) onDeliverVC(origin int, vc vclock.VC, payload any) {
	vt := 0
	if s.mode == ModeCCv {
		for _, v := range vc {
			vt += v
		}
	}
	s.apply(origin, vt, payload)
}

// apply folds one delivered batch into the local states. ccvVT is the
// causal-stamp coordinate sum (CCv mode only).
func (s *Station) apply(origin, ccvVT int, payload any) {
	m, ok := payload.(batchMsg)
	if !ok {
		return
	}
	s.mu.Lock()
	if origin >= 0 && origin < len(s.delivB) {
		s.delivB[origin]++
		if m.SentAt > s.hw[origin] {
			s.hw[origin] = m.SentAt
		}
	}
	woke := false
	for i, op := range m.Ops {
		o := s.ensureLocked(op.Obj, op.ADT)
		if o == nil {
			continue
		}
		fp := xhash.Ints(xhash.Seed, []int{origin, int(op.ID)})
		for _, c := range []byte(op.Obj) {
			fp = xhash.Mix(fp, uint64(c))
		}
		for _, c := range []byte(op.In.Method) {
			fp = xhash.Mix(fp, uint64(c))
		}
		s.delivFP ^= xhash.Ints(fp, op.In.Args)
		var out spec.Output
		switch s.mode {
		case ModeCC, ModePC:
			o.state, out = o.t.Step(o.state, op.In)
		case ModeEC, ModeCCv:
			ts := totalTS{VT: op.VT, Seq: i, PID: origin}
			if s.mode == ModeCCv {
				ts.VT = ccvVT
			}
			if ts.VT > s.tsHigh {
				s.tsHigh = ts.VT // Lamport witness (EC)
			}
			if ts.VT > s.lastVT[origin] {
				s.lastVT[origin] = ts.VT
			}
			pos := o.tl.insert(ts, op.In)
			if origin == s.id {
				// The op's own output is computed in the state reached by
				// the updates preceding it in the shared total order.
				q := o.tl.replay(pos)
				_, out = o.t.Step(q, op.In)
			}
		}
		s.stats.Applied++
		if origin == s.id {
			s.outs[op.ID] = out
			woke = true
		}
	}
	if woke {
		s.outCond.Broadcast()
	}
	s.mu.Unlock()
}

// queryStateLocked returns the state a query observes.
func (o *stObject) queryStateLocked(mode Mode) spec.State {
	if mode == ModeCC || mode == ModePC {
		return o.state
	}
	return o.tl.state()
}

// StateKey returns the canonical key of the named object's current
// local state; equal keys across a group mean convergence.
func (s *Station) StateKey(obj string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objs[obj]
	if !ok {
		return "", false
	}
	return o.queryStateLocked(s.mode).Key(), true
}

// DeliveredBatches returns the per-origin counts of update batches
// this station has applied. Together with every peer's Broadcasts
// stat it forms a quiescence probe that works in all four modes: once
// each station's vector dominates a snapshot of the group's per-origin
// broadcast counts, every batch counted in that snapshot has been
// applied everywhere (delivery is exactly-once per origin sequence,
// so counts cannot be satisfied by other origins' later traffic).
func (s *Station) DeliveredBatches() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.delivB...)
}

// HighWater returns the station's per-origin high-water marks: for
// each origin, the wall-clock send stamp (unix nanos) of the latest
// update batch delivered from it, initialized to the station's birth
// time. A replica whose vector componentwise matches the freshest
// vector in the group has delivered every batch the group has sent;
// the componentwise deficit against the group-wide maximum, in time
// units, is the replica's replication lag — what bounded-staleness
// reads and the /v1/staleness endpoint report.
func (s *Station) HighWater() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.hw...)
}

// ExportObject returns the named object's current local query state —
// the migration snapshot. Callers must have quiesced the group first
// (see DeliveredBatches); the export is then the fold of every update
// the object will ever see on this group.
func (s *Station) ExportObject(name string) (spec.State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objs[name]
	if !ok {
		return nil, false
	}
	return o.queryStateLocked(s.mode), true
}

// ImportObject installs a migrated object with the given state as its
// local base: the apply-on-delivery modes (CC, PC) adopt it as the
// live state, the timestamp-ordered modes (EC, CCv) seed the log's
// fold base with it. Everything baked into the base is strictly "in
// the past" of any update this group later delivers for the object —
// the causal handoff is by construction, no log entries travel.
func (s *Station) ImportObject(name, adtName string, state spec.State) error {
	t, err := adt.Lookup(adtName)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objs[name]
	if !ok {
		o = s.createLocked(name, adtName, t)
	}
	o.state = state
	o.tl.seed(state)
	return nil
}

// DropObject removes the local copy of a migrated-away object. Safe
// while traffic for other objects continues; the caller guarantees no
// further operations or deliveries route the dropped object here.
func (s *Station) DropObject(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objs, name)
	s.stats.Objects = len(s.objs)
}

// Compact garbage-collects the stable prefix of every object's
// timestamp log, returning the total number of entries folded away.
// Only CCv compacts: causal delivery is per-origin FIFO, so an entry
// is stable once every origin has been heard from with a strictly
// larger timestamp (see Replica.CompactLog). EC's unordered
// dissemination gives no such guarantee — a slow flood may deliver an
// old timestamp after arbitrarily newer ones — so EC logs are left
// intact.
func (s *Station) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode != ModeCCv {
		return 0
	}
	stable := s.lastVT[0]
	for _, vt := range s.lastVT[1:] {
		if vt < stable {
			stable = vt
		}
	}
	total := 0
	for _, o := range s.objs {
		total += o.tl.compact(func(ts totalTS) bool { return ts.VT <= stable })
	}
	return total
}

// Close flushes the pending batch and stops accepting updates. Safe to
// call before or after the transport's own Close; either way every
// in-flight invoker is released (local delivery does not need the
// network).
func (s *Station) Close() {
	s.batchMu.Lock()
	if s.closed {
		s.batchMu.Unlock()
		return
	}
	s.closed = true
	s.batchMu.Unlock()
	s.Flush()
	if s.ae != nil {
		s.ae.Stop()
	}
}
