package core

import (
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
)

// TestGenericCCvSequenceInterleaves pins down experiment E19's generic
// half: the CCv runtime replicating the positional Sequence ADT
// converges on concurrent typing, but the common total order
// interleaves the two editors' characters — causal convergence alone
// does not give the CCI model's intention preservation (the RGA type
// in internal/crdt does; see its tests).
func TestGenericCCvSequenceInterleaves(t *testing.T) {
	interleavedSomewhere := false
	for seed := int64(1); seed <= 10; seed++ {
		c := NewCluster(2, adt.Sequence{}, ModeCCv, seed)
		c.DisableRecording()
		typeWord := func(p int, word string) {
			for _, ch := range word {
				l := len(c.Invoke(p, "read").Vals)
				c.Invoke(p, "ins", l, int(ch))
			}
		}
		typeWord(0, "one")
		typeWord(1, "two")
		c.Settle()
		a := c.Invoke(0, "read")
		b := c.Invoke(1, "read")
		if !a.Equal(b) {
			t.Fatalf("seed %d: CCv runtime diverged: %v vs %v", seed, a, b)
		}
		s := ""
		for _, v := range a.Vals {
			s += string(rune(v))
		}
		if len(s) != 6 {
			t.Fatalf("seed %d: merged text %q, want 6 characters", seed, s)
		}
		if s != "onetwo" && s != "twoone" {
			interleavedSomewhere = true
		}
	}
	if !interleavedSomewhere {
		t.Error("generic CCv never interleaved concurrent words over 10 seeds; E19's contrast is vacuous")
	}
}
