package core_test

import (
	"context"
	"sync"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/spec"
)

// TestLiveClusterConcurrent drives the CC runtime over the goroutine
// transport with genuinely concurrent invokers, then checks the
// recorded history. This is the same code path the examples use and
// the main workout for the delivery-serialization logic under -race.
func TestLiveClusterConcurrent(t *testing.T) {
	c := core.NewLiveCluster(3, adt.NewWindowArray(2, 2), core.ModeCC)
	defer c.Close()
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.Replicas[p]
			r.Invoke(spec.NewInput("w", p%2, p+1))
			r.Invoke(spec.NewInput("r", p%2))
			r.Invoke(spec.NewInput("w", (p+1)%2, p+4))
		}(p)
	}
	wg.Wait()
	c.Net.Quiesce()
	// All replicas have applied all 6 updates.
	for p, r := range c.Replicas {
		if got := r.Stats().Applied; got != 6 {
			t.Fatalf("replica %d applied %d updates, want 6", p, got)
		}
	}
	h := c.Recorder.History()
	ok, _, err := check.CC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("live CC run violated causal consistency:\n%s", h)
	}
}

// TestLiveClusterCCvConverges: concurrent writers over the live
// transport still converge under CCv once quiescent.
func TestLiveClusterCCvConverges(t *testing.T) {
	c := core.NewLiveCluster(4, adt.NewWindowArray(2, 3), core.ModeCCv)
	defer c.Close()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.Replicas[p]
			for i := 0; i < 10; i++ {
				r.Invoke(spec.NewInput("w", i%2, p*100+i))
			}
		}(p)
	}
	wg.Wait()
	c.Net.Quiesce()
	key := c.Replicas[0].StateKey()
	for p := 1; p < 4; p++ {
		if got := c.Replicas[p].StateKey(); got != key {
			t.Fatalf("replica %d state %q differs from replica 0 %q", p, got, key)
		}
	}
	// The op logs carry all 40 updates; compaction reclaims them all
	// once every process has been heard from.
	for p, r := range c.Replicas {
		if r.LogLen() != 40 {
			t.Fatalf("replica %d log has %d entries, want 40", p, r.LogLen())
		}
		if removed := r.CompactLog(); removed == 0 {
			t.Fatalf("replica %d compacted nothing after full exchange", p)
		}
	}
}

// TestLiveClusterQueue: mixed update+query operations (pop) behave over
// the live transport, and the recorded history checks out.
func TestLiveClusterQueue(t *testing.T) {
	c := core.NewLiveCluster(2, adt.Queue{}, core.ModeCC)
	defer c.Close()
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.Replicas[p]
			r.Invoke(spec.NewInput("push", p+1))
			r.Invoke(spec.NewInput("pop"))
			r.Invoke(spec.NewInput("pop"))
		}(p)
	}
	wg.Wait()
	c.Net.Quiesce()
	h := c.Recorder.History()
	ok, _, err := check.CC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("live CC queue run violated causal consistency:\n%s", h)
	}
}
