package core_test

import (
	"context"
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
)

// TestCrashMidRunStillCC: fault injection for experiment E4 — crashing
// processes mid-run must not compromise the causal consistency of the
// survivors' histories (wait-free algorithms tolerate any number of
// crashes, Sec. 6.1).
func TestCrashMidRunStillCC(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		c := core.NewCluster(4, adt.NewWindowArray(2, 2), core.ModeCC, seed)
		rng := rand.New(rand.NewSource(seed * 97))
		val := 1
		crashed := map[int]bool{}
		for i := 0; i < 10; i++ {
			// Crash a random process a third of the way in.
			if i == 3 {
				victim := rng.Intn(4)
				c.Net.Crash(victim)
				crashed[victim] = true
			}
			p := rng.Intn(4)
			if crashed[p] {
				continue // crashed processes stop invoking
			}
			if rng.Intn(2) == 0 {
				c.Invoke(p, "w", rng.Intn(2), val)
				val++
			} else {
				c.Invoke(p, "r", rng.Intn(2))
			}
			for d := rng.Intn(3); d > 0; d-- {
				c.Net.Step()
			}
		}
		c.Settle()
		h := c.Recorder.History()
		ok, _, err := check.CC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: crash broke causal consistency:\n%s", seed, h)
		}
	}
}

// TestCrashMidRunCCvStillConverges: same fault injection for the CCv
// runtime — the survivors must still converge and stay causally
// convergent.
func TestCrashMidRunCCvStillConverges(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		c := core.NewCluster(4, adt.NewWindowArray(2, 2), core.ModeCCv, seed)
		rng := rand.New(rand.NewSource(seed * 89))
		val := 1
		victim := rng.Intn(4)
		for i := 0; i < 10; i++ {
			if i == 4 {
				c.Net.Crash(victim)
			}
			p := rng.Intn(4)
			if i >= 4 && p == victim {
				continue
			}
			if rng.Intn(2) == 0 {
				c.Invoke(p, "w", rng.Intn(2), val)
				val++
			} else {
				c.Invoke(p, "r", rng.Intn(2))
			}
			for d := rng.Intn(3); d > 0; d-- {
				c.Net.Step()
			}
		}
		c.Settle()
		if !c.Converged() {
			t.Fatalf("seed %d: survivors diverged after crash", seed)
		}
		h := c.Recorder.History()
		ok, _, err := check.CCv(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: crash broke causal convergence:\n%s", seed, h)
		}
	}
}

// TestUniformReliabilityAtRuntime: if any survivor applied an update
// from a crashed origin, every survivor eventually applies it (the
// flooding layer's uniform agreement, observed at the replica level).
func TestUniformReliabilityAtRuntime(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := core.NewCluster(4, adt.NewWindowArray(1, 4), core.ModeCC, seed)
		c.Invoke(0, "w", 0, 42)
		// Deliver a random number of messages, then crash the origin.
		rng := rand.New(rand.NewSource(seed))
		for d := rng.Intn(4); d > 0; d-- {
			c.Net.Step()
		}
		c.Net.Crash(0)
		c.Settle()
		sawIt := 0
		for p := 1; p < 4; p++ {
			out := c.Invoke(p, "r", 0)
			if out.Vals[len(out.Vals)-1] == 42 {
				sawIt++
			}
		}
		if sawIt != 0 && sawIt != 3 {
			t.Fatalf("seed %d: uniform reliability violated: %d/3 survivors saw the update", seed, sawIt)
		}
	}
}
