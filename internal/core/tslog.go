package core

import (
	"sort"

	"github.com/paper-repro/ccbm/internal/spec"
)

// tsEntry is one timestamped update in a tsLog.
type tsEntry[TS any] struct {
	ts TS
	in spec.Input
}

// tsLog is the timestamp-ordered update log of the convergent modes
// (EC, CCv), shared by Replica and Station objects: updates are
// inserted at their timestamp position and reads fold base+log through
// a replay cache. The cache discipline: cacheState is the fold of base
// plus log[:cacheLen]; an insertion below cacheLen invalidates it, a
// full replay re-arms it. The caller provides the strict total order
// on timestamps.
type tsLog[TS any] struct {
	t    spec.ADT
	less func(a, b TS) bool

	log        []tsEntry[TS]
	base       spec.State
	cacheState spec.State
	cacheLen   int
}

func newTSLog[TS any](t spec.ADT, less func(a, b TS) bool) *tsLog[TS] {
	base := t.Init()
	return &tsLog[TS]{t: t, less: less, base: base, cacheState: base}
}

// insert places the update at its timestamp-ordered position and
// returns that position.
func (l *tsLog[TS]) insert(ts TS, in spec.Input) int {
	pos := sort.Search(len(l.log), func(i int) bool { return l.less(ts, l.log[i].ts) })
	l.log = append(l.log, tsEntry[TS]{})
	copy(l.log[pos+1:], l.log[pos:])
	l.log[pos] = tsEntry[TS]{ts: ts, in: in}
	if pos < l.cacheLen {
		// Mid-log insertion invalidates the replay cache.
		l.cacheState = l.base
		l.cacheLen = 0
	}
	return pos
}

// replay folds base plus log[:n], advancing the cache when possible.
func (l *tsLog[TS]) replay(n int) spec.State {
	if n >= l.cacheLen {
		q := l.cacheState
		for i := l.cacheLen; i < n; i++ {
			q, _ = l.t.Step(q, l.log[i].in)
		}
		if n == len(l.log) {
			l.cacheState, l.cacheLen = q, n
		}
		return q
	}
	q := l.base
	for i := 0; i < n; i++ {
		q, _ = l.t.Step(q, l.log[i].in)
	}
	return q
}

// state returns the fold of the whole log.
func (l *tsLog[TS]) state() spec.State { return l.replay(len(l.log)) }

// size returns the number of live log entries.
func (l *tsLog[TS]) size() int { return len(l.log) }

// seed resets the log to an externally produced base state with no
// live entries — the migration import path. Every update folded into
// base is strictly "in the past" of any entry inserted later, the same
// invariant compact establishes for its folded prefix.
func (l *tsLog[TS]) seed(base spec.State) {
	l.base = base
	l.log = nil
	l.cacheState, l.cacheLen = base, 0
}

// compact folds away the longest prefix of entries satisfying stable
// (which must be downward closed in the log order: once false, false
// for every later entry) and returns how many were removed. The
// soundness condition — no future insert may be ordered inside the
// folded prefix — is the caller's to establish (see Replica.CompactLog
// and Station.Compact).
func (l *tsLog[TS]) compact(stable func(TS) bool) int {
	idx := sort.Search(len(l.log), func(i int) bool { return !stable(l.log[i].ts) })
	if idx == 0 {
		return 0
	}
	q := l.base
	for i := 0; i < idx; i++ {
		q, _ = l.t.Step(q, l.log[i].in)
	}
	l.base = q
	l.log = append([]tsEntry[TS](nil), l.log[idx:]...)
	l.cacheState, l.cacheLen = l.base, 0
	return idx
}
