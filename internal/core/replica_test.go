package core_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/spec"
)

// randomRun drives a cluster with a seeded random workload of writes
// and reads on an array of window streams, interleaving invocations
// with partial message delivery so that replicas observe genuinely
// different orders. It keeps histories small enough for the exact
// checkers.
func randomRun(t *testing.T, mode core.Mode, seed int64, nProcs, nOps, streams, size int) *core.Cluster {
	t.Helper()
	c := core.NewCluster(nProcs, adt.NewWindowArray(streams, size), mode, seed)
	rng := rand.New(rand.NewSource(seed * 7711))
	val := 1
	for i := 0; i < nOps; i++ {
		p := rng.Intn(nProcs)
		if rng.Intn(2) == 0 {
			c.Invoke(p, "w", rng.Intn(streams), val)
			val++
		} else {
			c.Invoke(p, "r", rng.Intn(streams))
		}
		// Deliver a random number of pending messages (possibly none),
		// creating asynchrony between replicas.
		for d := rng.Intn(4); d > 0; d-- {
			c.Net.Step()
		}
	}
	c.Settle()
	return c
}

// TestProp6RuntimeHistoriesAreCC is Prop. 6 as a test: every history
// admitted by the generic causal-broadcast replica (the Fig. 4
// construction generalized to any ADT) is causally consistent — and, a
// fortiori, pipelined and weakly causally consistent.
func TestProp6RuntimeHistoriesAreCC(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		c := randomRun(t, core.ModeCC, seed, 3, 9, 2, 2)
		h := c.Recorder.History()
		for _, crit := range []check.Criterion{check.CritCC, check.CritPC, check.CritWCC} {
			ok, _, err := check.Check(context.Background(), crit, h, check.Options{})
			if err != nil {
				t.Fatalf("seed %d: %v: %v", seed, crit, err)
			}
			if !ok {
				t.Fatalf("seed %d: ModeCC produced a non-%v history:\n%s", seed, crit, h)
			}
		}
	}
}

// TestProp7RuntimeHistoriesAreCCv is Prop. 7 as a test: every history
// admitted by the timestamp-ordered causal replica (the Fig. 5
// construction generalized) is causally convergent.
func TestProp7RuntimeHistoriesAreCCv(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		c := randomRun(t, core.ModeCCv, seed, 3, 9, 2, 2)
		h := c.Recorder.History()
		for _, crit := range []check.Criterion{check.CritCCv, check.CritWCC} {
			ok, _, err := check.Check(context.Background(), crit, h, check.Options{})
			if err != nil {
				t.Fatalf("seed %d: %v: %v", seed, crit, err)
			}
			if !ok {
				t.Fatalf("seed %d: ModeCCv produced a non-%v history:\n%s", seed, crit, h)
			}
		}
	}
}

// TestPCRuntimeHistoriesArePC: the FIFO-broadcast replica implements
// pipelined consistency.
func TestPCRuntimeHistoriesArePC(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		c := randomRun(t, core.ModePC, seed, 3, 9, 2, 2)
		h := c.Recorder.History()
		ok, _, err := check.PC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: ModePC produced a non-PC history:\n%s", seed, h)
		}
	}
}

// TestConvergenceAfterQuiescence: the timestamp-ordered modes (EC and
// CCv) drive every replica to the same state once all messages are
// delivered — eventual consistency. The apply-on-delivery modes (CC,
// PC) do NOT guarantee this: causal consistency and convergence are the
// two irreconcilable branches (Sec. 1).
func TestConvergenceAfterQuiescence(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeEC, core.ModeCCv} {
		for seed := int64(1); seed <= 20; seed++ {
			c := randomRun(t, mode, seed, 4, 20, 3, 2)
			if !c.Converged() {
				t.Fatalf("%v seed %d: replicas diverged after quiescence", mode, seed)
			}
		}
	}
}

// TestCCMayDiverge demonstrates the other side of the dichotomy: with
// apply-on-delivery and concurrent writes, causally consistent replicas
// can remain permanently different (the Fig. 3a scenario). We force the
// adversarial schedule: both processes write before any delivery.
func TestCCMayDiverge(t *testing.T) {
	c := core.NewCluster(2, adt.NewWindowArray(1, 2), core.ModeCC, 1)
	c.Invoke(0, "w", 0, 1)
	c.Invoke(1, "w", 0, 2)
	c.Settle()
	r0 := c.Invoke(0, "r", 0)
	r1 := c.Invoke(1, "r", 0)
	if r0.Equal(r1) {
		t.Fatalf("expected divergence, both read %v", r0)
	}
	want := map[string]bool{"(1,2)": true, "(2,1)": true}
	if !want[r0.String()] || !want[r1.String()] {
		t.Fatalf("unexpected reads %v / %v", r0, r1)
	}
}

// TestECViolatesCausality shows that the unordered (EC) mode can
// deliver an update before one it causally depends on, which the causal
// modes preclude: process 1 reads p0's second write while missing its
// first for a while; with causal delivery the two arrive in order.
func TestECViolatesCausality(t *testing.T) {
	// Craft the scenario directly at the delivery layer: p0 writes a
	// then b; the network delays the first write's messages long past
	// the second's. Under EC mode, p1 applies w(b) before w(a).
	c := core.NewCluster(2, adt.NewWindowArray(2, 1), core.ModeEC, 42)
	c.Net.MinDelay, c.Net.MaxDelay = 50, 60
	c.Invoke(0, "w", 0, 7) // stream 0 := 7 (the "question")
	c.Net.MinDelay, c.Net.MaxDelay = 1, 2
	c.Invoke(0, "w", 1, 8) // stream 1 := 8 (the "answer")
	// Deliver only the fast message.
	c.Net.RunFor(10)
	sawAnswer := c.Invoke(1, "r", 1).Vals[0] == 8
	sawQuestion := c.Invoke(1, "r", 0).Vals[0] == 7
	if !sawAnswer || sawQuestion {
		t.Fatalf("expected EC to expose the answer (got %v) without the question (got %v)", sawAnswer, sawQuestion)
	}
	c.Settle()

	// Same schedule under causal delivery: the answer is buffered until
	// the question arrives.
	cc := core.NewCluster(2, adt.NewWindowArray(2, 1), core.ModeCC, 42)
	cc.Net.MinDelay, cc.Net.MaxDelay = 50, 60
	cc.Invoke(0, "w", 0, 7)
	cc.Net.MinDelay, cc.Net.MaxDelay = 1, 2
	cc.Invoke(0, "w", 1, 8)
	cc.Net.RunFor(10)
	if cc.Invoke(1, "r", 1).Vals[0] == 8 && cc.Invoke(1, "r", 0).Vals[0] != 7 {
		t.Fatal("causal delivery exposed the answer before the question")
	}
	cc.Settle()
}

// TestWaitFreedomUnderCrash: operations on live replicas complete even
// when every other process has crashed (wait-freedom, Sec. 6.1).
func TestWaitFreedomUnderCrash(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeCC, core.ModeCCv, core.ModePC, core.ModeEC} {
		c := core.NewCluster(3, adt.NewWindowArray(1, 2), mode, 9)
		c.Net.Crash(1)
		c.Net.Crash(2)
		c.Invoke(0, "w", 0, 5)
		out := c.Invoke(0, "r", 0)
		if got := out.Vals[1]; got != 5 {
			t.Fatalf("%v: survivor read %v, want own write 5", mode, out)
		}
		c.Settle()
	}
}

// TestMixedUpdateQueryOps exercises an ADT whose operations are both
// update and query (the queue's pop) under each wait-free mode: outputs
// must be computed against the mode's own notion of current state, and
// the recorded histories must satisfy the mode's criterion.
func TestMixedUpdateQueryOps(t *testing.T) {
	for _, tc := range []struct {
		mode core.Mode
		crit check.Criterion
	}{{core.ModeCC, check.CritCC}, {core.ModeCCv, check.CritCCv}, {core.ModePC, check.CritPC}} {
		for seed := int64(1); seed <= 10; seed++ {
			c := core.NewCluster(2, adt.Queue{}, tc.mode, seed)
			rng := rand.New(rand.NewSource(seed))
			v := 1
			for i := 0; i < 8; i++ {
				p := rng.Intn(2)
				if rng.Intn(2) == 0 {
					c.Invoke(p, "push", v)
					v++
				} else {
					c.Invoke(p, "pop")
				}
				for d := rng.Intn(3); d > 0; d-- {
					c.Net.Step()
				}
			}
			c.Settle()
			h := c.Recorder.History()
			ok, _, err := check.Check(context.Background(), tc.crit, h, check.Options{})
			if err != nil {
				t.Fatalf("%v seed %d: %v", tc.mode, seed, err)
			}
			if !ok {
				t.Fatalf("%v seed %d: queue history violates %v:\n%s", tc.mode, seed, tc.crit, h)
			}
		}
	}
}

// TestSCClusterIsSC drives the blocking sequentially consistent
// replica over the live transport and checks the recorded history with
// the SC checker.
func TestSCClusterIsSC(t *testing.T) {
	c := core.NewSCCluster(3, adt.NewWindowStream(2))
	defer c.Close()
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := c.Replicas[p]
			r.Invoke(spec.NewInput("w", p+1))
			r.Invoke(spec.NewInput("r"))
			r.Invoke(spec.NewInput("w", p+4))
			r.Invoke(spec.NewInput("r"))
		}(p)
	}
	wg.Wait()
	c.Net.Quiesce()
	h := c.Recorder.History()
	ok, _, err := check.SC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("SC cluster produced a non-SC history:\n%s", h)
	}
}

// TestStatsAccounting sanity-checks the replica counters: one broadcast
// per update, zero per query (the message-economy shape of Fig. 4).
func TestStatsAccounting(t *testing.T) {
	c := core.NewCluster(3, adt.NewWindowArray(1, 2), core.ModeCC, 5)
	c.Invoke(0, "w", 0, 1)
	c.Invoke(0, "r", 0)
	c.Invoke(0, "r", 0)
	c.Settle()
	st := c.Replicas[0].Stats()
	if st.Updates != 1 || st.Queries != 2 {
		t.Fatalf("stats = %+v, want 1 update / 2 queries", st)
	}
	// All three replicas applied the single update exactly once.
	for p, r := range c.Replicas {
		if got := r.Stats().Applied; got != 1 {
			t.Fatalf("replica %d applied %d updates, want 1", p, got)
		}
	}
}
