// Package core is the paper's primary contribution made runnable: a
// wait-free replicated-object runtime for arbitrary abstract data
// types, parameterized by consistency criterion. Every replica holds a
// full copy of the object; operations complete without waiting for any
// other process (Sec. 6.1), queries read local state, updates are
// disseminated by broadcast and applied on delivery.
//
// The criterion is selected by the delivery discipline and the state
// representation:
//
//   - CC  — causal broadcast, apply on delivery (generalizes Fig. 4
//     from window-stream arrays to any ADT; Prop. 6's proof only uses
//     the causal delivery order and local application, so the
//     construction stays causally consistent for every ADT).
//   - PC  — FIFO broadcast, apply on delivery (pipelined consistency;
//     the PRAM construction).
//   - EC  — unordered reliable broadcast; updates carry Lamport
//     timestamps and are folded in timestamp order, so replicas
//     converge but causality may be violated (eventual consistency
//     without the causal guarantees).
//   - CCv — causal broadcast plus Lamport timestamps, updates folded
//     in timestamp order (generalizes Fig. 5; the shared total order
//     is the timestamp order, which extends the causal order).
//
// SC (sequential consistency) is deliberately not in this list: it
// cannot be wait-free (Sec. 1); see SCReplica.
package core

import (
	"fmt"
	"strings"
	"sync"

	"github.com/paper-repro/ccbm/internal/broadcast"
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/trace"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// Mode selects the consistency criterion a replica implements.
type Mode int

// The wait-free modes.
const (
	ModeCC Mode = iota
	ModePC
	ModeEC
	ModeCCv
)

// String returns the criterion abbreviation — the exact spelling the
// checker registry uses.
func (m Mode) String() string {
	switch m {
	case ModeCC:
		return "CC"
	case ModePC:
		return "PC"
	case ModeEC:
		return "EC"
	case ModeCCv:
		return "CCv"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a criterion abbreviation, case-insensitively, to
// its Mode. Round-tripping through Mode.String canonicalizes the
// spelling.
func ParseMode(s string) (Mode, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "CC":
		return ModeCC, nil
	case "PC":
		return ModePC, nil
	case "EC":
		return ModeEC, nil
	case "CCV":
		return ModeCCv, nil
	}
	return 0, fmt.Errorf("core: unknown mode %q (want CC, PC, EC or CCv)", s)
}

// updMsg is the broadcast payload: one update operation.
type updMsg struct {
	In spec.Input
	TS vclock.Timestamp // EC/CCv modes only
}

// Replica is one process's copy of a shared object. All methods are
// safe for concurrent use; Invoke never blocks on communication
// (wait-freedom), so its latency is independent of network delays and
// of other processes' failures.
type Replica struct {
	mu      sync.Mutex
	ownCond *sync.Cond
	id      int
	t       spec.ADT
	mode    Mode
	bc      broadcast.Broadcaster
	rec     *trace.Recorder
	stats   Stats

	// Apply-on-delivery modes (CC, PC).
	state spec.State

	// Timestamp-ordered modes (EC, CCv): Lamport clock plus the shared
	// timestamp-ordered log with its replay cache (tsLog); its base is
	// the fold of the compacted stable prefix, see CompactLog.
	clock vclock.Lamport
	tl    *tsLog[vclock.Timestamp]
	// lastVT[q] is the largest Lamport time seen from origin q, used
	// to determine which log prefix is stable.
	lastVT []int

	// Output of this replica's own update deliveries, in order
	// (local delivery is synchronous inside Broadcast).
	ownOuts []spec.Output
}

// Stats counts a replica's activity.
type Stats struct {
	Invocations int64
	Updates     int64
	Queries     int64
	Applied     int64 // update deliveries applied (own + remote)
}

// NewReplica creates the replica for process id over the transport and
// registers its delivery handler. rec may be nil (no recording).
func NewReplica(tr net.Transport, id int, t spec.ADT, mode Mode, rec *trace.Recorder) *Replica {
	r := &Replica{id: id, t: t, mode: mode, rec: rec, state: t.Init()}
	r.ownCond = sync.NewCond(&r.mu)
	r.tl = newTSLog(t, vclock.Timestamp.Less)
	r.lastVT = make([]int, tr.N())
	switch mode {
	case ModeCC, ModeCCv:
		r.bc = broadcast.NewCausal(tr, id, r.onDeliver)
	case ModePC:
		r.bc = broadcast.NewFIFO(tr, id, r.onDeliver)
	case ModeEC:
		r.bc = broadcast.NewReliable(tr, id, r.onDeliver)
	default:
		panic(fmt.Sprintf("core: unknown mode %v", mode))
	}
	return r
}

// ID returns the replica's process id.
func (r *Replica) ID() int { return r.id }

// Mode returns the replica's consistency mode.
func (r *Replica) Mode() Mode { return r.mode }

// Stats returns a snapshot of the replica's counters.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// DisableRecording detaches the trace recorder, for long benchmark runs
// whose histories would otherwise grow without bound. Call it before
// invoking operations; it is not synchronized with concurrent Invokes.
func (r *Replica) DisableRecording() { r.rec = nil }

// Invoke executes one operation on the shared object and returns its
// output. Pure queries read the local state; updates are broadcast and
// take effect at every replica upon delivery (immediately at the
// caller). The call never waits for the network.
func (r *Replica) Invoke(in spec.Input) spec.Output {
	isUpdate := r.t.IsUpdate(in)
	var out spec.Output
	if isUpdate {
		var ts vclock.Timestamp
		if r.mode == ModeEC || r.mode == ModeCCv {
			r.mu.Lock()
			ts = vclock.Timestamp{VT: r.clock.Time() + 1, PID: r.id} // Fig. 5 line 8: vtime+1
			r.mu.Unlock()
		}
		// Local delivery is immediate: on the single-threaded simulator
		// it happens synchronously inside Broadcast; on the live
		// transport it may be handed to a concurrent delivery drainer,
		// so wait for it (a local computation, not remote progress —
		// wait-freedom is preserved).
		r.bc.Broadcast(updMsg{In: in, TS: ts})
		r.mu.Lock()
		for len(r.ownOuts) == 0 {
			r.ownCond.Wait()
		}
		out = r.ownOuts[0]
		r.ownOuts = r.ownOuts[1:]
		r.stats.Invocations++
		r.stats.Updates++
		r.mu.Unlock()
	} else {
		r.mu.Lock()
		q := r.currentStateLocked()
		_, out = r.t.Step(q, in)
		r.stats.Invocations++
		r.stats.Queries++
		r.mu.Unlock()
	}
	if r.rec != nil {
		r.rec.Record(r.id, in, out)
	}
	return out
}

// Read is a convenience for query methods without arguments.
func (r *Replica) Read(method string, args ...int) spec.Output {
	return r.Invoke(spec.NewInput(method, args...))
}

// onDeliver applies a delivered update.
func (r *Replica) onDeliver(origin int, payload any) {
	m, ok := payload.(updMsg)
	if !ok {
		return
	}
	r.mu.Lock()
	var out spec.Output
	switch r.mode {
	case ModeCC, ModePC:
		r.state, out = r.t.Step(r.state, m.In)
	case ModeEC, ModeCCv:
		// Fig. 5 line 11: witness the timestamp, then insert the update
		// at its timestamp-ordered position.
		r.clock.Witness(m.TS.VT)
		if m.TS.VT > r.lastVT[origin] {
			r.lastVT[origin] = m.TS.VT
		}
		pos := r.tl.insert(m.TS, m.In)
		if origin == r.id {
			// The update's own output is computed in the state reached
			// by the updates that precede it in the shared total order.
			q := r.tl.replay(pos)
			_, out = r.t.Step(q, m.In)
		}
	}
	r.stats.Applied++
	if origin == r.id {
		r.ownOuts = append(r.ownOuts, out)
		r.ownCond.Broadcast()
	}
	r.mu.Unlock()
}

// currentStateLocked returns the state a query observes.
func (r *Replica) currentStateLocked() spec.State {
	switch r.mode {
	case ModeCC, ModePC:
		return r.state
	default:
		return r.tl.state()
	}
}

// CompactLog garbage-collects the stable prefix of the timestamp log
// (EC/CCv modes): an entry is stable once every process has been heard
// from with a strictly larger Lamport time — causal (hence per-origin
// FIFO) delivery and clock monotonicity then guarantee no future update
// can be ordered before it, so the prefix can be folded into a base
// state without changing any future read. This is the generic
// counterpart of Fig. 5's built-in truncation to the k newest cells
// (the window array is, in effect, permanently compacted). It returns
// the number of entries removed.
//
// Stability requires hearing from every process, so a silent process
// blocks compaction — the classic price of log-based convergence.
func (r *Replica) CompactLog() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mode != ModeEC && r.mode != ModeCCv {
		return 0
	}
	stable := r.lastVT[0]
	for _, vt := range r.lastVT[1:] {
		if vt < stable {
			stable = vt
		}
	}
	// Fold the stable prefix into the base and drop it.
	return r.tl.compact(func(ts vclock.Timestamp) bool { return ts.VT <= stable })
}

// StateKey returns the canonical key of the replica's current local
// state; two replicas with equal keys have converged.
func (r *Replica) StateKey() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.currentStateLocked().Key()
}

// LogLen returns the number of updates the replica has applied to its
// timestamp log (EC/CCv modes).
func (r *Replica) LogLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tl.size()
}
