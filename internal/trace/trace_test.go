package trace_test

import (
	"sync"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/trace"
)

func TestRecorderHistory(t *testing.T) {
	rec := trace.New(adt.NewWindowStream(2), 2)
	rec.Record(0, spec.NewInput("w", 1), spec.Bot)
	rec.Record(1, spec.NewInput("r"), spec.TupleOutput(0, 1))
	rec.Record(0, spec.NewInput("r"), spec.TupleOutput(0, 1))
	if rec.Len(0) != 2 || rec.Len(1) != 1 || rec.Total() != 3 {
		t.Fatalf("lengths wrong: %d %d %d", rec.Len(0), rec.Len(1), rec.Total())
	}
	h := rec.History()
	if h.N() != 3 {
		t.Fatalf("history has %d events", h.N())
	}
	if len(h.Processes()) != 2 {
		t.Fatalf("processes = %d", len(h.Processes()))
	}
	// Program order within process 0, none across.
	p0 := h.Processes()[0]
	if !h.Prog().Has(p0[0], p0[1]) {
		t.Fatal("missing program edge")
	}
}

func TestMarkOmega(t *testing.T) {
	rec := trace.New(adt.NewWindowStream(2), 1)
	rec.Record(0, spec.NewInput("r"), spec.TupleOutput(0, 0))
	rec.MarkOmega(0)
	h := rec.History()
	if !h.Events[0].Omega {
		t.Fatal("ω flag lost")
	}
	// A further record clears the flag (only the final op can be ω).
	rec.Record(0, spec.NewInput("r"), spec.TupleOutput(0, 0))
	h = rec.History()
	if h.Events[0].Omega || h.Events[1].Omega {
		t.Fatal("stale ω flag")
	}
}

func TestMarkOmegaEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MarkOmega on empty process did not panic")
		}
	}()
	trace.New(adt.NewWindowStream(2), 1).MarkOmega(0)
}

func TestRecorderConcurrent(t *testing.T) {
	rec := trace.New(adt.Counter{}, 4)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Record(p, spec.NewInput("inc"), spec.Bot)
			}
		}(p)
	}
	wg.Wait()
	if rec.Total() != 400 {
		t.Fatalf("Total = %d", rec.Total())
	}
	if rec.History().N() != 400 {
		t.Fatal("history event count wrong")
	}
}
