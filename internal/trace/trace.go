// Package trace records executions of the replicated-object runtime as
// distributed histories, so that the consistency checkers can verify
// runtime behaviour (Prop. 6 and Prop. 7 as executable tests).
package trace

import (
	"sync"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Recorder accumulates one operation sequence per process. It is safe
// for concurrent use (the live transport invokes processes from
// different goroutines).
type Recorder struct {
	mu    sync.Mutex
	adt   spec.ADT
	procs [][]spec.Operation
	omega []bool // per process: last op flagged ω
}

// New creates a recorder for n processes over the given ADT.
func New(t spec.ADT, n int) *Recorder {
	return &Recorder{adt: t, procs: make([][]spec.Operation, n), omega: make([]bool, n)}
}

// Record appends an operation to process p's sequence.
func (r *Recorder) Record(p int, in spec.Input, out spec.Output) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.procs[p] = append(r.procs[p], spec.NewOp(in, out))
	r.omega[p] = false
}

// MarkOmega flags the last operation of process p as ω-repeating (used
// when an experiment's final quiescent reads stand for the infinite
// tail of the execution).
func (r *Recorder) MarkOmega(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.procs[p]) == 0 {
		panic("trace: MarkOmega on empty process")
	}
	r.omega[p] = true
}

// Len returns the number of operations recorded for process p.
func (r *Recorder) Len(p int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.procs[p])
}

// Total returns the number of operations recorded across all processes.
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.procs {
		n += len(p)
	}
	return n
}

// History builds the distributed history recorded so far.
func (r *Recorder) History() *history.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := history.NewBuilder(r.adt)
	for p, ops := range r.procs {
		for i, op := range ops {
			if r.omega[p] && i == len(ops)-1 {
				b.AppendOmega(p, op)
			} else {
				b.Append(p, op)
			}
		}
	}
	return b.Build()
}
