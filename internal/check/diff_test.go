package check

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/spec"
)

// This file is the safety net for the allocation-free search core: a
// faithful port of the PREVIOUS implementation (string-keyed memo
// tables, materialized popcount-sorted mask slices, per-call cloned
// bitsets) is kept here as the reference semantics, and both cores are
// run over seeded random histories and an exhaustive mini-census. Any
// divergence in verdict or error is a bug in the rewrite.
//
// One deliberate deviation: the seed implementation's causal stateKey
// concatenated the committed set with the pasts in commit order but
// NOT which event owned which past, so two branches assigning the same
// multiset of pasts to different events were merged — an unsound prune
// this very differential test caught (the seed returned CCv=false for
// the Fig. 3e queue history; a memo-free search, and the fingerprint
// core whose fold includes event ids, both return true). The reference
// below keys pasts by event id; see TestCCvFig3eMemoSoundness.

// --- reference linearization search (old semantics) ---

type refLinSearcher struct {
	t      spec.ADT
	events []history.Event
	budget *int
	memo   map[string]bool
}

func (ls *refLinSearcher) findLin(include, visible porder.Bitset, preds func(e int) porder.Bitset) ([]int, bool) {
	n := len(ls.events)
	if ls.memo == nil {
		ls.memo = make(map[string]bool)
	}
	total := include.Count()
	done := porder.NewBitset(n)
	seq := make([]int, 0, total)

	var rec func(q spec.State, placed int) bool
	rec = func(q spec.State, placed int) bool {
		if placed == total {
			return true
		}
		*ls.budget--
		if *ls.budget < 0 {
			return false
		}
		key := done.Key() + "|" + q.Key()
		if ls.memo[key] {
			return false
		}
		ok := false
		include.ForEach(func(e int) {
			if ok || done.Has(e) {
				return
			}
			p := preds(e).Clone()
			p.IntersectWith(include)
			if !p.SubsetOf(done) {
				return
			}
			q2, out := ls.t.Step(q, ls.events[e].Op.In)
			if visible.Has(e) && !ls.events[e].Op.Hidden && !out.Equal(ls.events[e].Op.Out) {
				return
			}
			done.Set(e)
			seq = append(seq, e)
			if rec(q2, placed+1) {
				ok = true
				return
			}
			seq = seq[:len(seq)-1]
			done.Clear(e)
		})
		if !ok && *ls.budget >= 0 {
			ls.memo[key] = true
		}
		return ok
	}
	if rec(ls.t.Init(), 0) {
		out := make([]int, len(seq))
		copy(out, seq)
		return out, true
	}
	return nil, false
}

func refPredsFromRel(rel *porder.Rel) func(e int) porder.Bitset {
	preds := rel.Preds()
	return func(e int) porder.Bitset { return preds[e] }
}

func refOmegaPreds(h *history.History, base func(e int) porder.Bitset, omegaSubset porder.Bitset) func(e int) porder.Bitset {
	n := h.N()
	nonOmega := porder.FullBitset(n)
	for _, ev := range h.Events {
		if ev.Omega {
			nonOmega.Clear(ev.ID)
		}
	}
	return func(e int) porder.Bitset {
		if !omegaSubset.Has(e) {
			return base(e)
		}
		p := base(e).Clone()
		p.UnionWith(nonOmega)
		p.Clear(e)
		return p
	}
}

// --- reference causal-family search (old semantics) ---

type refCausalSearcher struct {
	h           *history.History
	kind        causalKind
	budget      *int
	n           int
	updates     porder.Bitset
	omega       porder.Bitset
	progPreds   []porder.Bitset
	procVisible []porder.Bitset

	committed porder.Bitset
	order     []int
	pos       []int
	pasts     []porder.Bitset
	perEvent  [][]int
	memo      map[string]bool
}

func newRefCausalSearcher(h *history.History, kind causalKind, budget *int) *refCausalSearcher {
	n := h.N()
	cs := &refCausalSearcher{
		h:         h,
		kind:      kind,
		budget:    budget,
		n:         n,
		updates:   h.Updates(),
		omega:     h.OmegaEvents(),
		progPreds: h.Prog().Preds(),
		committed: porder.NewBitset(n),
		pos:       make([]int, n),
		pasts:     make([]porder.Bitset, n),
		perEvent:  make([][]int, n),
		memo:      make(map[string]bool),
	}
	for i := range cs.pos {
		cs.pos[i] = -1
	}
	if kind == kindCC {
		cs.procVisible = make([]porder.Bitset, n)
		for p := range h.Processes() {
			b := h.ProcEvents(p)
			for _, e := range h.Processes()[p] {
				cs.procVisible[e] = b
			}
		}
	}
	return cs
}

func (cs *refCausalSearcher) run() bool {
	if len(cs.order) == cs.n {
		return true
	}
	*cs.budget--
	if *cs.budget < 0 {
		return false
	}
	key := cs.stateKey()
	if cs.memo[key] {
		return false
	}
	allUpdatesIn := cs.updates.SubsetOf(cs.committed)
	for e := 0; e < cs.n; e++ {
		if cs.committed.Has(e) {
			continue
		}
		if !cs.progPreds[e].SubsetOf(cs.committed) {
			continue
		}
		if cs.omega.Has(e) && !allUpdatesIn {
			continue
		}
		if cs.tryCommit(e) {
			return true
		}
		if *cs.budget < 0 {
			return false
		}
	}
	if *cs.budget >= 0 {
		cs.memo[key] = true
	}
	return false
}

func (cs *refCausalSearcher) stateKey() string {
	key := cs.committed.Key()
	for _, e := range cs.order {
		// The seed omitted the event id here — see the file comment.
		key += fmt.Sprintf(".%d=", e) + cs.pasts[e].Key()
	}
	return key
}

func (cs *refCausalSearcher) tryCommit(e int) bool {
	forced := porder.NewBitset(cs.n)
	cs.progPreds[e].ForEach(func(pr int) {
		forced.Set(pr)
		forced.UnionWith(cs.pasts[pr])
	})

	extra := cs.committed.Clone()
	extra.IntersectWith(cs.updates)
	extra.DiffWith(forced)
	cand := extra.Elems()

	commitWith := func(x []int) bool {
		past := forced.Clone()
		for _, u := range x {
			past.Set(u)
			past.UnionWith(cs.pasts[u])
		}
		lin, ok := cs.checkEvent(e, past)
		if !ok {
			return false
		}
		cs.committed.Set(e)
		cs.pos[e] = len(cs.order)
		cs.order = append(cs.order, e)
		cs.pasts[e] = past
		cs.perEvent[e] = lin
		if cs.run() {
			return true
		}
		cs.order = cs.order[:len(cs.order)-1]
		cs.pos[e] = -1
		cs.committed.Clear(e)
		cs.pasts[e] = nil
		cs.perEvent[e] = nil
		return false
	}

	if cs.omega.Has(e) {
		return commitWith(cand)
	}
	if len(cand) > 24 {
		*cs.budget = -1
		return false
	}
	masks := make([]uint32, 0, 1<<len(cand))
	for m := uint32(0); m < 1<<len(cand); m++ {
		masks = append(masks, m)
	}
	refSortByPopcount(masks)
	x := make([]int, 0, len(cand))
	for _, m := range masks {
		*cs.budget--
		if *cs.budget < 0 {
			return false
		}
		x = x[:0]
		for i, u := range cand {
			if m&(1<<uint(i)) != 0 {
				x = append(x, u)
			}
		}
		if commitWith(x) {
			return true
		}
	}
	return false
}

func refSortByPopcount(masks []uint32) {
	var buckets [33][]uint32
	for _, m := range masks {
		c := bits.OnesCount32(m)
		buckets[c] = append(buckets[c], m)
	}
	masks = masks[:0]
	for _, b := range buckets {
		masks = append(masks, b...)
	}
}

func (cs *refCausalSearcher) checkEvent(e int, past porder.Bitset) ([]int, bool) {
	include := past.Clone()
	include.Set(e)
	var visible porder.Bitset
	switch cs.kind {
	case kindCC:
		visible = cs.procVisible[e].Clone()
		visible.IntersectWith(include)
	default:
		visible = porder.NewBitset(cs.n)
		visible.Set(e)
	}

	if cs.kind == kindCCv {
		q := cs.h.ADT.Init()
		lin := make([]int, 0, include.Count())
		for _, f := range cs.order {
			if !past.Has(f) {
				continue
			}
			var out spec.Output
			q, out = cs.h.ADT.Step(q, cs.h.Events[f].Op.In)
			if visible.Has(f) && !cs.h.Events[f].Op.Hidden && !out.Equal(cs.h.Events[f].Op.Out) {
				return nil, false
			}
			lin = append(lin, f)
		}
		_, out := cs.h.ADT.Step(q, cs.h.Events[e].Op.In)
		if !cs.h.Events[e].Op.Hidden && !out.Equal(cs.h.Events[e].Op.Out) {
			return nil, false
		}
		return append(lin, e), true
	}

	ls := &refLinSearcher{t: cs.h.ADT, events: cs.h.Events, budget: cs.budget}
	preds := func(f int) porder.Bitset {
		if f == e {
			return past
		}
		return cs.pasts[f]
	}
	return ls.findLin(include, visible, preds)
}

func refRunCausal(h *history.History, kind causalKind, opt Options) (bool, error) {
	if err := validateOmega(h); err != nil {
		return false, err
	}
	budget := opt.maxNodes()
	cs := newRefCausalSearcher(h, kind, &budget)
	ok := cs.run()
	if budget < 0 {
		return false, ErrBudget
	}
	return ok, nil
}

// --- reference whole-history checkers built on the old lin search ---

func refSC(h *history.History, opt Options) (bool, error) {
	if err := validateOmega(h); err != nil {
		return false, err
	}
	budget := opt.maxNodes()
	ls := &refLinSearcher{t: h.ADT, events: h.Events, budget: &budget}
	all := porder.FullBitset(h.N())
	preds := refOmegaPreds(h, refPredsFromRel(h.Prog()), h.OmegaEvents())
	_, ok := ls.findLin(all, all, preds)
	if budget < 0 {
		return false, ErrBudget
	}
	return ok, nil
}

func refPC(h *history.History, opt Options) (bool, error) {
	if err := validateOmega(h); err != nil {
		return false, err
	}
	all := porder.FullBitset(h.N())
	basePreds := refPredsFromRel(h.Prog())
	for p := range h.Processes() {
		budget := opt.maxNodes()
		ls := &refLinSearcher{t: h.ADT, events: h.Events, budget: &budget}
		visible := h.ProcEvents(p)
		ownOmega := h.OmegaEvents()
		ownOmega.IntersectWith(visible)
		preds := refOmegaPreds(h, basePreds, ownOmega)
		_, ok := ls.findLin(all, visible, preds)
		if budget < 0 {
			return false, ErrBudget
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func refUC(h *history.History, opt Options) (bool, error) {
	if err := validateOmega(h); err != nil {
		return false, err
	}
	budget := opt.maxNodes()
	updates := h.Updates()
	omega := h.OmegaEvents()
	if omega.Empty() {
		return true, nil
	}
	ls := &refLinSearcher{t: h.ADT, events: h.Events, budget: &budget}
	include := updates.Clone()
	include.UnionWith(omega)
	visible := omega.Clone()
	base := refPredsFromRel(h.Prog())
	preds := func(e int) porder.Bitset {
		if omega.Has(e) {
			p := base(e).Clone()
			p.UnionWith(updates)
			p.Clear(e)
			return p
		}
		p := base(e).Clone()
		p.IntersectWith(updates)
		return p
	}
	_, ok := ls.findLin(include, visible, preds)
	if budget < 0 {
		return false, ErrBudget
	}
	return ok, nil
}

// refCheck dispatches to the reference implementation of a criterion.
// EC is excluded (its checker has no search core and was not touched).
func refCheck(c Criterion, h *history.History, opt Options) (bool, error) {
	switch c {
	case CritUC:
		return refUC(h, opt)
	case CritPC:
		return refPC(h, opt)
	case CritWCC:
		return refRunCausal(h, kindWCC, opt)
	case CritCC:
		return refRunCausal(h, kindCC, opt)
	case CritCCv:
		return refRunCausal(h, kindCCv, opt)
	case CritSC:
		return refSC(h, opt)
	}
	panic("no reference for " + c.String())
}

var diffCriteria = []Criterion{CritUC, CritPC, CritWCC, CritCCv, CritCC, CritSC}

func compareCores(t *testing.T, h *history.History, label string) {
	t.Helper()
	opt := Options{MaxNodes: 500_000}
	for _, c := range diffCriteria {
		got, _, gotErr := Check(context.Background(), c, h, opt)
		want, wantErr := refCheck(c, h, opt)
		if got != want || (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%s: %v: new core = (%v, %v), reference = (%v, %v)\nhistory:\n%s",
				label, c, got, gotErr, want, wantErr, h)
		}
	}
}

// --- random history generation ---

// diffADTs are the data types the random differential sweeps over.
var diffADTs = []spec.ADT{
	adt.NewWindowStream(1),
	adt.NewWindowStream(2),
	adt.Queue{},
	adt.Stack{},
	adt.Counter{},
	adt.NewMemory("a", "b"),
}

// randomInput draws a random input for the ADT.
func randomInput(r *rand.Rand, t spec.ADT) spec.Input {
	v := r.Intn(3) + 1
	switch t.Name() {
	case "W1", "W2":
		if r.Intn(2) == 0 {
			return spec.NewInput("w", v)
		}
		return spec.NewInput("r")
	case "Queue", "Stack":
		if r.Intn(2) == 0 {
			return spec.NewInput("push", v)
		}
		return spec.NewInput("pop")
	case "Counter":
		if r.Intn(2) == 0 {
			return spec.NewInput("inc")
		}
		return spec.NewInput("get")
	default: // M[a,b]
		reg := []string{"a", "b"}[r.Intn(2)]
		if r.Intn(2) == 0 {
			return spec.NewInput("w"+reg, v)
		}
		return spec.NewInput("r" + reg)
	}
}

// randomHistory builds a small random history: random inputs per
// process, outputs assigned by running a random interleaving (so a
// fair share of histories is consistent), then corrupted with small
// probability (so inconsistent histories of every flavour appear too).
// With probability ½, final pure-query events are ω-flagged.
func randomHistory(r *rand.Rand) *history.History {
	t := diffADTs[r.Intn(len(diffADTs))]
	procs := r.Intn(2) + 2 // 2..3
	total := r.Intn(3) + procs + 1

	ins := make([][]spec.Input, procs)
	for i := 0; i < total; i++ {
		p := r.Intn(procs)
		ins[p] = append(ins[p], randomInput(r, t))
	}

	// Random interleaving: repeatedly pick a process with remaining ops.
	type slot struct{ proc, idx int }
	var order []slot
	next := make([]int, procs)
	for {
		var ready []int
		for p := 0; p < procs; p++ {
			if next[p] < len(ins[p]) {
				ready = append(ready, p)
			}
		}
		if len(ready) == 0 {
			break
		}
		p := ready[r.Intn(len(ready))]
		order = append(order, slot{p, next[p]})
		next[p]++
	}

	outs := make([][]spec.Output, procs)
	for p := range outs {
		outs[p] = make([]spec.Output, len(ins[p]))
	}
	q := t.Init()
	for _, s := range order {
		var out spec.Output
		q, out = t.Step(q, ins[s.proc][s.idx])
		outs[s.proc][s.idx] = out
	}

	// Corrupt some visible outputs.
	for p := range outs {
		for i, out := range outs[p] {
			if out.Bot || len(out.Vals) == 0 || r.Intn(4) != 0 {
				continue
			}
			vals := append([]int(nil), out.Vals...)
			vals[r.Intn(len(vals))] = r.Intn(4)
			outs[p][i] = spec.Output{Vals: vals}
		}
	}

	omega := r.Intn(2) == 0
	b := history.NewBuilder(t)
	for p := 0; p < procs; p++ {
		for i := range ins[p] {
			op := spec.NewOp(ins[p][i], outs[p][i])
			last := i == len(ins[p])-1
			if omega && last && !t.IsUpdate(op.In) && t.IsQuery(op.In) {
				b.AppendOmega(p, op)
			} else {
				b.Append(p, op)
			}
		}
	}
	return b.Build()
}

// TestDifferentialRandomHistories cross-checks the allocation-free
// core against the reference semantics over seeded random histories.
func TestDifferentialRandomHistories(t *testing.T) {
	const rounds = 300
	r := rand.New(rand.NewSource(20160312)) // PPoPP'16, deterministically
	for i := 0; i < rounds; i++ {
		h := randomHistory(r)
		compareCores(t, h, fmt.Sprintf("random[%d] %s", i, h.ADT.Name()))
	}
}

// TestDifferentialMiniCensus exhaustively enumerates every W1 history
// of shape [2,2] over inputs {w(1), w(2), r} with read outputs in
// {0,1,2}, and cross-checks both cores on all of them — the
// differential analogue of the census package's self-check.
func TestDifferentialMiniCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	w1 := adt.NewWindowStream(1)
	ops := []spec.Operation{
		spec.NewOp(spec.NewInput("w", 1), spec.Bot),
		spec.NewOp(spec.NewInput("w", 2), spec.Bot),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(0)),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(2)),
	}
	var idx [4]int
	count := 0
	for idx[0] = 0; idx[0] < len(ops); idx[0]++ {
		for idx[1] = 0; idx[1] < len(ops); idx[1]++ {
			for idx[2] = 0; idx[2] < len(ops); idx[2]++ {
				for idx[3] = 0; idx[3] < len(ops); idx[3]++ {
					b := history.NewBuilder(w1)
					b.Append(0, ops[idx[0]])
					b.Append(0, ops[idx[1]])
					b.Append(1, ops[idx[2]])
					b.Append(1, ops[idx[3]])
					h := b.Build()
					compareCores(t, h, fmt.Sprintf("census[%d%d%d%d]", idx[0], idx[1], idx[2], idx[3]))
					count++
				}
			}
		}
	}
	if count != len(ops)*len(ops)*len(ops)*len(ops) {
		t.Fatalf("enumerated %d histories", count)
	}
}

// TestCCvFig3eMemoSoundness pins the verdict the seed implementation
// got wrong: the Fig. 3e queue history IS causally convergent (a
// memo-free exhaustive search confirms it), while remaining not
// causally consistent as the caption claims. The seed's identity-blind
// memo key merged two branches whose pasts were assigned to different
// events and pruned the live one.
func TestCCvFig3eMemoSoundness(t *testing.T) {
	h := history.MustParse(`adt: Queue
p0: push(1) pop/1 pop/1 push(3)
p1: push(2) pop/3 push(1)`)
	ccv, _, err := CCv(context.Background(), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ccv {
		t.Error("CCv(fig3e) = false, want true (the seed's unsound memo verdict)")
	}
	cc, _, err := CC(context.Background(), h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cc {
		t.Error("CC(fig3e) = true, want false (caption claim)")
	}
}

// TestDifferentialFig3 cross-checks both cores on the paper's own
// example histories (finite and ω readings), the corpus the existing
// tests classify.
func TestDifferentialFig3(t *testing.T) {
	for _, text := range []string{
		"adt: W2\np0: w(1) r/(0,1) r/(1,2)*\np1: w(2) r/(0,2) r/(1,2)*",
		"adt: W2\np0: w(1) r/(0,1)*\np1: w(2) r/(0,2)*",
		"adt: W2\np0: w(1) r/(2,1)\np1: w(2) r/(1,2)",
		"adt: W2\np0: w(1) r/(0,1)\np1: w(2) r/(1,2)",
		"adt: Queue\np0: push(1) pop/1 pop/1 push(3)\np1: push(2) pop/3 push(1)",
		"adt: Queue\np0: pop/1 pop/_\np1: push(1) push(2) pop/1 pop/_",
		"adt: Queue2\np0: hd/1 rh(1) hd/2 rh(2)\np1: push(1) push(2) hd/1 rh(1) hd/2 rh(2)",
	} {
		h := history.MustParse(text)
		compareCores(t, h, strings.SplitN(text, "\n", 2)[0])
		compareCores(t, h.StripOmega(), strings.SplitN(text, "\n", 2)[0]+" (finite)")
	}
}
