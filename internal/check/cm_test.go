package check_test

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/history"
)

// TestCMBasic: a trivially causal memory history is CM, and a read of a
// never-written value is rejected outright.
func TestCMBasic(t *testing.T) {
	h := history.MustParse(`adt: M[x,y]
p0: wx(1)
p1: rx/1 wy(2)
p2: ry/2 rx/1`)
	ok, w, err := check.CM(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("CM = %v %v", ok, err)
	}
	if len(w.PerProcess) != 3 {
		t.Fatalf("witness = %+v", w)
	}
	bad := history.MustParse(`adt: M[x]
p0: rx/9`)
	ok, _, err = check.CM(context.Background(), bad, check.Options{})
	if err != nil || ok {
		t.Fatalf("CM accepted a read of a never-written value (%v %v)", ok, err)
	}
}

// TestCMInitialReads: reads of 0 may be unbound (initial value) even
// when a write of another value exists.
func TestCMInitialReads(t *testing.T) {
	h := history.MustParse(`adt: M[x]
p0: rx/0 wx(1)
p1: rx/0 rx/1`)
	ok, _, err := check.CM(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("CM = %v %v", ok, err)
	}
}

// TestCMCycleDetected: a writes-into binding that would create a causal
// cycle must be rejected; with no alternative binding the history is
// not CM. Here each process reads the other's *second* write before the
// first could have been propagated, in a way that forces a cycle for
// the only value-compatible bindings.
func TestCMRejectsStale(t *testing.T) {
	// p1 must read x=1 before p0 writes... impossible ordering: p0's
	// only wx(1) is program-after its read of y=2, and p1's only wy(2)
	// is program-after its read of x=1 — a causal cycle.
	h := history.MustParse(`adt: M[x,y]
p0: ry/2 wx(1)
p1: rx/1 wy(2)`)
	ok, _, err := check.CM(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("CM accepted a causally cyclic history")
	}
}

// TestCMNonMemoryRejected: the CM checker only applies to memory.
func TestCMNonMemoryRejected(t *testing.T) {
	h := history.MustParse(`adt: Queue
p0: push(1) pop/1`)
	if _, _, err := check.CM(context.Background(), h, check.Options{}); err != check.ErrNotMemory {
		t.Fatalf("err = %v, want ErrNotMemory", err)
	}
	if _, err := check.Sessions(h, check.Options{}); err != check.ErrNotMemory {
		t.Fatalf("Sessions err = %v, want ErrNotMemory", err)
	}
}

// TestCMWeakerThanCCOnDuplicates is the Fig. 3i point in miniature: a
// two-event-per-process duplicated-write history that CM accepts by
// cross-binding while CC rejects.
func TestCMFigure3iMiniature(t *testing.T) {
	f := `adt: M[a-d]
p0: wa(1) wa(2) wb(3) rd/3 rc/1 wa(1)
p1: wc(1) wc(2) wd(3) rb/3 ra/1 wc(1)`
	h := history.MustParse(f)
	cm, _, err := check.CM(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cc, _, err := check.CC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cm || cc {
		t.Fatalf("want CM ∧ ¬CC, got CM=%v CC=%v", cm, cc)
	}
}
