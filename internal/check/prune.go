package check

import (
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/xhash"
)

// The pruning layer of the exploration engine (see explore.go for the
// engine itself). The causal-family search enumerates commit orders and
// visibility choices; most distinct commit orders of independent
// operations lead to state-identical continuations that an unpruned
// search re-explores from scratch. The three pruners below — adapted
// from dynamic partial order reduction — cut those re-explorations
// while provably preserving the verdict:
//
//  1. Canonical representatives (Prune.Canon). Frames (search states
//     after a prefix of commits) are fingerprinted order-insensitively:
//     for WCC/CC an XOR-fold of the per-commit (event, past) hashes,
//     because the continuation of a frame depends only on the committed
//     set and the per-event pasts, not on the interleaving that built
//     them. Two frames with colliding fingerprints are interchangeable,
//     so once one has been refuted exhaustively, the other is pruned —
//     the canonical key simply replaces the engine's order-sensitive
//     failed-state key, which makes the existing memo (local map or the
//     parallel pipeline's lock-sharded table) the canonicalization
//     table. For CCv the naive order-insensitive key would be unsound:
//     the shared total order ≤ is the commit order, and a future event's
//     replay of its past depends on the relative commit order of the
//     state-changing events in it (two different update interleavings
//     can compose to the same full state yet replay differently on
//     strict subsets). The CCv key therefore keeps an order-sensitive
//     fold over the state-changing commits and quotients only the
//     placement of pure queries, which never affect any replay's state
//     (spec.ADT's IsUpdate contract: a non-update's δ is a loop).
//     Because only exhaustively-failed frames enter the table, this
//     pruner cannot change which branch succeeds first: verdicts and
//     witnesses are bit-for-bit those of the unpruned search.
//
//  2. Sleep-set-style exclusion (Prune.Sleep). A static rule on commit
//     orders: committing e immediately after d is skipped when e < d,
//     d is not in e's causal past, and d and e commute — the transposed
//     order [..., e, d, ...] reaches the same frame (same committed
//     set, same pasts, and for CCv the same update interleaving up to
//     commuting steps), is lexicographically smaller, and was therefore
//     already entered earlier by the DFS, which enumerates events in
//     increasing id order. For WCC/CC any such pair commutes (the
//     continuation depends only on the committed set and pasts); for
//     CCv two commits commute when either is a pure query or their
//     inputs are equal (equal inputs are the same state transformer,
//     and the adjacent swap changes no past's internal replay order).
//     Iterating the rule terminates at the lexicographically least
//     member of each equivalence class, which is never skipped, so
//     every continuation remains reachable and the first success —
//     hence verdict and witness — is unchanged.
//
//  3. Symmetry quotient (Prune.Symmetry). Processes whose programs are
//     identical (same inputs, outputs, hidden and ω flags, in the same
//     order) are interchangeable: renaming them maps witnesses to
//     witnesses for WCC, CC and CCv alike (their visibility projections
//     are per-event or per-process, both stable under renaming). The
//     search therefore only enters orders in which identical processes
//     start in process-id order: the first event of process p may
//     commit only once the first event of the previous identical
//     process has. The quotient is disabled for histories whose program
//     order is not a disjoint union of per-process chains (Edge-built
//     cross-process constraints, or events outside every process),
//     where renaming is not an automorphism. Unlike the other two
//     pruners this one can skip branches containing the search's first
//     success (an equivalent renamed success survives), so the returned
//     witness may differ from the unpruned search's — still a valid
//     witness, as the differential suite re-validates independently.
//
// The three compose: sleep-set swaps move smaller event ids earlier,
// and within a symmetry class the first events are id-ordered (process
// ids follow first-appearance order), so a swap can never produce an
// order the symmetry rule rejects; the canonical key folds in the last
// committed event whenever Sleep is active, because the sleep rule's
// future decisions depend on it (two frames equal up to that event
// have different pruned continuations otherwise).

// Prune selects which pruners the causal-family checkers (WCC, CC,
// CCv) apply on top of the exhaustive search. The zero value disables
// pruning entirely — the bit-exact PR 1 search. Every pruner preserves
// the verdict; Canon and Sleep also preserve the witness bit-for-bit,
// while Symmetry may return a different (still valid) witness when
// identical processes exist. Disabling pruning is therefore only
// needed when a byte-identical witness across configurations matters
// more than search time, or when cross-checking the pruned search
// itself (as the differential tests do).
type Prune struct {
	// Canon prunes frames whose order-insensitive state fingerprint
	// matches an exhaustively refuted frame.
	Canon bool
	// Sleep statically excludes commit orders that transpose to an
	// already-visited equivalent order.
	Sleep bool
	// Symmetry explores identical processes up to renaming.
	Symmetry bool
}

// PruneAll enables every pruner.
func PruneAll() Prune { return Prune{Canon: true, Sleep: true, Symmetry: true} }

func (p Prune) any() bool { return p.Canon || p.Sleep || p.Symmetry }

// PruneStats counts the frames and branches each pruner cut. The
// counters measure pruning effectiveness, not correctness: any value
// (including zero) is sound.
type PruneStats struct {
	// CanonHits counts frames pruned through the canonical-fingerprint
	// table (with Canon enabled this includes the hits the plain
	// order-sensitive memo would also have had, since the canonical key
	// replaces it).
	CanonHits int64
	// SleepSkips counts (event, visibility) choices excluded by the
	// sleep-set transposition rule.
	SleepSkips int64
	// SymSkips counts frontier events excluded by the symmetry
	// quotient.
	SymSkips int64
}

// Add accumulates t into s.
func (s *PruneStats) Add(t PruneStats) {
	s.CanonHits += t.CanonHits
	s.SleepSkips += t.SleepSkips
	s.SymSkips += t.SymSkips
}

// Total is the sum of all counters.
func (s PruneStats) Total() int64 { return s.CanonHits + s.SleepSkips + s.SymSkips }

// pruner is the pluggable pruning layer of the exploration engine. The
// engine consults it at three points of the enumeration — frame entry
// (frameKey), frontier-event admission (admitEvent) and visibility-
// choice admission (admitChoice) — and notifies it of every commit and
// uncommit so incremental fingerprints stay in step with the search
// state. A nil pruner (the engine's default) is the unpruned search.
type pruner interface {
	// frameKey returns the canonical failed-state key for the current
	// frame, replacing the engine's order-sensitive key; ok reports
	// whether canonicalization is active.
	frameKey() (key uint64, ok bool)
	// canonHit records that the current frame was pruned through the
	// canonical table.
	canonHit()
	// admitEvent reports whether frontier event e may be tried at the
	// current frame.
	admitEvent(e int) bool
	// admitChoice reports whether committing e with the given causal
	// past may be explored from the current frame. past excludes e and
	// is downward closed.
	admitChoice(e int, past porder.Bitset) bool
	// pushed/popped track the engine's commit stack; pastHash is
	// past.Hash64() of the committed event's causal past.
	pushed(e int, pastHash uint64)
	popped()
	// snapshot returns the counters accumulated so far.
	snapshot() PruneStats
}

// dporPruner implements all three pruners over one causalSearcher.
type dporPruner struct {
	cs    *causalSearcher
	cfg   Prune
	stats PruneStats

	// Canonical-representative fingerprints, maintained incrementally
	// across push/pop: setHash is the XOR-fold of the order-insensitive
	// commits, updHash the order-sensitive fold of the state-changing
	// commits (CCv only; zero otherwise). The stacks save the previous
	// values per depth.
	setHash  uint64
	updHash  uint64
	setStack []uint64
	updStack []uint64

	// Symmetry quotient, nil slices when disabled: symFirst[p] is the
	// id of process p's first event (-1 for empty processes) and
	// symPrev[p] the nearest smaller process with an identical program
	// (-1 for class leaders).
	symFirst []int
	symPrev  []int
}

// newPruner builds the pruning layer for cs, or returns nil when cfg
// enables nothing.
func newPruner(cs *causalSearcher, cfg Prune) *dporPruner {
	if !cfg.any() {
		return nil
	}
	pr := &dporPruner{cs: cs, cfg: cfg, setHash: xhash.Seed, updHash: xhash.Seed}
	if cfg.Canon {
		pr.setStack = make([]uint64, 0, cs.n)
		if cs.kind == kindCCv {
			pr.updStack = make([]uint64, 0, cs.n)
		}
	}
	if cfg.Symmetry {
		pr.initSymmetry()
	}
	return pr
}

// initSymmetry computes the identical-program classes, leaving symFirst
// nil when the quotient does not apply (cross-process program-order
// edges, events outside every process, or no repeated program).
func (pr *dporPruner) initSymmetry() {
	h := pr.cs.h
	n := h.N()
	procs := len(h.Processes())
	if procs < 2 {
		return
	}
	// The quotient is sound only when program order is exactly the
	// disjoint union of per-process chains: each event's program
	// predecessors must be precisely the earlier events of its own
	// process (event ids within a process ascend in program order by
	// construction of the history builder).
	perProc := make([][]int, procs)
	scratch := porder.NewBitset(n)
	for e := 0; e < n; e++ {
		p := h.Events[e].Proc
		if p < 0 {
			return // event outside every process: renaming undefined
		}
		scratch.ClearAll()
		for _, f := range perProc[p] {
			scratch.Set(f)
		}
		if !pr.cs.progPreds[e].SubsetOf(scratch) || !scratch.SubsetOf(pr.cs.progPreds[e]) {
			return // forked/joined program order: not chain-shaped
		}
		perProc[p] = append(perProc[p], e)
	}
	sameProgram := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			ea, eb := h.Events[a[i]], h.Events[b[i]]
			if !ea.Op.In.Equal(eb.Op.In) || !ea.Op.Out.Equal(eb.Op.Out) ||
				ea.Op.Hidden != eb.Op.Hidden || ea.Omega != eb.Omega {
				return false
			}
		}
		return true
	}
	symFirst := make([]int, procs)
	symPrev := make([]int, procs)
	classes := false
	for p := range perProc {
		symFirst[p] = -1
		if len(perProc[p]) > 0 {
			symFirst[p] = perProc[p][0]
		}
		symPrev[p] = -1
		for q := p - 1; q >= 0; q-- {
			if sameProgram(perProc[p], perProc[q]) {
				symPrev[p] = q
				classes = classes || len(perProc[p]) > 0
				break
			}
		}
	}
	if !classes {
		return // every program unique: nothing to quotient
	}
	pr.symFirst, pr.symPrev = symFirst, symPrev
}

// frameKey implements pruner: the canonical failed-state key of the
// current frame. The commit level disambiguates the empty fold, the
// last committed event is folded in when the sleep rule is active (its
// future skip decisions depend on it), and for CCv the order-sensitive
// update fold rides along.
func (pr *dporPruner) frameKey() (uint64, bool) {
	if !pr.cfg.Canon {
		return 0, false
	}
	cs := pr.cs
	key := xhash.Mix(pr.setHash, uint64(len(cs.order)))
	if cs.kind == kindCCv {
		key = xhash.Mix(key, pr.updHash)
	}
	if pr.cfg.Sleep && len(cs.order) > 0 {
		key = xhash.Mix(key, uint64(cs.order[len(cs.order)-1]+1))
	}
	return key, true
}

func (pr *dporPruner) canonHit() { pr.stats.CanonHits++ }

// admitEvent implements pruner: the symmetry quotient. Only the first
// event of a process is ever constrained — it may commit only once the
// nearest smaller identical process has started.
func (pr *dporPruner) admitEvent(e int) bool {
	if pr.symFirst == nil {
		return true
	}
	p := pr.cs.h.Events[e].Proc
	if pr.symFirst[p] != e {
		return true
	}
	if q := pr.symPrev[p]; q >= 0 && !pr.cs.committed.Has(pr.symFirst[q]) {
		pr.stats.SymSkips++
		return false
	}
	return true
}

// admitChoice implements pruner: the sleep-set transposition rule.
// Committing e right after d is skipped when the transposed order is
// equivalent and lexicographically smaller — see the file comment for
// the commutation conditions and the soundness argument.
func (pr *dporPruner) admitChoice(e int, past porder.Bitset) bool {
	if !pr.cfg.Sleep {
		return true
	}
	cs := pr.cs
	if len(cs.order) == 0 {
		return true
	}
	d := cs.order[len(cs.order)-1]
	if e > d || past.Has(d) {
		return true
	}
	if cs.kind == kindCCv && cs.updates.Has(d) && cs.updates.Has(e) &&
		!cs.h.Events[d].Op.In.Equal(cs.h.Events[e].Op.In) {
		return true // two distinct state transformers: order matters for ≤
	}
	pr.stats.SleepSkips++
	return false
}

// pushed/popped maintain the canonical fingerprints alongside the
// engine's commit stack: both folds are saved per depth, so popping
// restores them unconditionally.
func (pr *dporPruner) pushed(e int, pastHash uint64) {
	if !pr.cfg.Canon {
		return
	}
	cs := pr.cs
	pr.setStack = append(pr.setStack, pr.setHash)
	if cs.kind == kindCCv {
		pr.updStack = append(pr.updStack, pr.updHash)
		if cs.updates.Has(e) {
			// State-changing commit: order-sensitive fold, because CCv
			// replays pasts in commit order.
			pr.updHash = xhash.Mix(xhash.Mix(pr.updHash, uint64(e)), pastHash)
			return
		}
	}
	// Full-avalanche per-commit hash, XOR-folded so the interleaving
	// that built the frame cancels out.
	pr.setHash ^= xhash.Mix(xhash.Mix(xhash.Seed, uint64(e)+1), pastHash)
}

func (pr *dporPruner) popped() {
	if !pr.cfg.Canon {
		return
	}
	pr.setHash = pr.setStack[len(pr.setStack)-1]
	pr.setStack = pr.setStack[:len(pr.setStack)-1]
	if pr.cs.kind == kindCCv {
		pr.updHash = pr.updStack[len(pr.updStack)-1]
		pr.updStack = pr.updStack[:len(pr.updStack)-1]
	}
}

func (pr *dporPruner) snapshot() PruneStats { return pr.stats }
