package check

import (
	"context"
	"math/bits"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/xhash"
)

// The causal-family checkers (WCC, CC, CCv) share one search skeleton.
//
// A causal order → is searched as follows: events are "committed" one
// at a time in a dynamically chosen order; when an event e is
// committed, the search picks the set of extra updates X_e (among
// already-committed updates) that e observes beyond what is forced by
// program order and transitivity. The causal order is the transitive
// closure of the program order plus the visibility edges {(u, e) : u ∈
// X_e}; because every edge points into the event being committed, the
// causal past ⌊e⌋ of a committed event never changes afterwards, so the
// per-event admissibility requirement of each criterion can be checked
// immediately and the search prunes early.
//
// Completeness: if a valid causal order →₀ (with per-event
// linearizations) exists, committing events along any linear extension
// of →₀ with X_e := (⌊e⌋₀ ∩ updates) reproduces exactly the update
// content of every causal past, while our → ⊆ →₀ imposes no more
// ordering than →₀ did, so every original per-event linearization
// remains available. Soundness: the constructed → is a partial order
// containing program order by construction, and the committed
// constraints are precisely the definitions' requirements.
//
// ω-events (repeating pure queries standing for infinite suffixes,
// Def. 7's cofiniteness) must observe every update: they can only be
// committed once all updates are committed, and their visibility set is
// forced to include all of them.
//
// The search loop is allocation-free in steady state: the failed-state
// memo is keyed by an incrementally maintained 64-bit fingerprint,
// visibility subsets are enumerated lazily with Gosper's hack, and all
// per-node working sets live in per-depth scratch frames sized once at
// construction.

// causalKind selects which criterion the shared search decides.
type causalKind int

const (
	kindWCC causalKind = iota
	kindCC
	kindCCv
)

// maxSubsetCands bounds the width of one commit's visibility-subset
// enumeration. Enumeration is lazy over uint64 masks, so the bound is
// the word width (with margin for Gosper's carry), not a memory cap —
// a search that wide is hopeless anyway and surfaces as ErrBudget.
const maxSubsetCands = 62

// eagerFrameLimit bounds the history size for which the per-depth int
// scratch (candidate lists, witness buffers — O(n²) ints in total) is
// preallocated in one slab; larger histories grow those buffers lazily
// per reached depth.
const eagerFrameLimit = 256

// csFrame is the per-depth scratch of tryCommit: the forced visibility
// set, the candidate past under construction, the candidate update
// list and the subset currently tried. Depth d commits at most one
// event at a time, so one frame per depth suffices; pasts[e] of a
// committed event aliases its frame's past buffer until uncommit.
type csFrame struct {
	forced porder.Bitset
	past   porder.Bitset
	cand   []int
	x      []int
	lin    []int // witness linearization buffer for the event committed here
}

type causalSearcher struct {
	h       *history.History
	kind    causalKind
	budget  *int
	n       int
	updates porder.Bitset
	omega   porder.Bitset
	// progPreds[e] = all strict program-order predecessors of e.
	progPreds []porder.Bitset

	committed porder.Bitset
	order     []int           // commit order (the total order ≤ for CCv)
	pos       []int           // commit position per event (-1 if not committed)
	pasts     []porder.Bitset // ⌊e⌋ \ {e} for committed events
	perEvent  [][]int         // witness linearization per event

	// memo holds fingerprints of failed states; stateHash is the
	// current state's fingerprint, maintained incrementally across
	// commit/uncommit (hashStack saves the pre-commit value per depth).
	// In parallel mode the commit-level entries live in shard instead —
	// a lock-sharded table the subtree tasks share — while memo keeps
	// serving the (epoch-mixed, task-private) per-event lin queries.
	memo      map[uint64]struct{}
	shard     *shardedMemo
	stateHash uint64
	hashStack []uint64

	// feed, when non-nil, refills the budget in chunks from a shared
	// pool and carries interrupt/cancel signals (see parallel.go).
	feed *feeder

	// next is the continuation commitWith invokes after a successful
	// commit: cs.run for the ordinary recursive search, or the
	// frontier expander's depth-limited descent in parallel mode.
	// Routing the recursion through one field keeps tryCommit the
	// single source of the (event, visibility subset) enumeration
	// order, which the parallel determinism guarantee depends on.
	next func() bool

	frames []csFrame

	// Reusable per-event check machinery: one linearization engine for
	// the whole search (epoch-separated memo), plus scratch for the
	// include/visible projections. The engine's preds slice is cs.pasts
	// itself: commitWith publishes the tentative past in pasts[e] before
	// checkEvent runs, so no per-event predecessor indirection exists.
	ls      linSearcher
	include porder.Bitset
	visible porder.Bitset

	budgetVal int // backing store for budget when the caller has none
}

func newCausalSearcher(h *history.History, kind causalKind, maxNodes int) *causalSearcher {
	n := h.N()
	cs := &causalSearcher{
		h:         h,
		kind:      kind,
		n:         n,
		updates:   h.UpdatesView(),
		omega:     h.OmegaView(),
		progPreds: h.ProgPreds(),
		pasts:     make([]porder.Bitset, n),
		perEvent:  make([][]int, n),
		memo:      make(map[uint64]struct{}),
		stateHash: xhash.Seed,
		frames:    make([]csFrame, n),
		budgetVal: maxNodes,
	}
	cs.budget = &cs.budgetVal
	cs.ls = linSearcher{
		t: h.ADT, events: h.Events, budget: cs.budget,
		// The causal search issues one linearization query per candidate
		// commit over overlapping pasts, so transition caching pays for
		// itself (see linSearcher.steps). One failed-state memo serves
		// both searches: the commit-level keys are order-sensitive folds
		// and the per-event keys are epoch-mixed, so the two key
		// populations cannot collide except by 64-bit accident.
		memo:  cs.memo,
		steps: make(map[stepKey]stepVal),
	}
	// All fixed-size working memory comes out of two slabs: one for
	// every scratch bitset (per-depth frames plus the searcher's own),
	// one for every scratch int slice. This keeps construction at a
	// handful of allocations regardless of history size. The int slab
	// is quadratic in n, so beyond eagerFrameLimit events the frames'
	// int buffers start nil instead and grow on first use at each
	// depth (append-amortized) — exact checking at that scale is only
	// feasible for trivially-satisfiable histories anyway, and an
	// upfront O(n²) allocation would dwarf the search's real footprint.
	words := (n + 63) / 64
	bitSlab := make(porder.Bitset, (2*n+5)*words+n)
	cut := func(k int) porder.Bitset {
		b := bitSlab[: k*words : k*words]
		bitSlab = bitSlab[k*words:]
		return b
	}
	cs.committed = cut(1)
	cs.include = cut(1)
	cs.visible = cut(1)
	cs.ls.done = cut(1)
	cs.ls.scratch = cut(1)
	for i := range cs.frames {
		cs.frames[i] = csFrame{forced: cut(1), past: cut(1)}
	}
	cs.hashStack = []uint64(bitSlab[:0:n]) // remaining slab words back the hash stack
	if n <= eagerFrameLimit {
		intSlab := make([]int, n*(3*n+1)+2*n)
		cutInts := func(k int) []int {
			s := intSlab[:0:k]
			intSlab = intSlab[k:]
			return s
		}
		for i := range cs.frames {
			cs.frames[i].cand = cutInts(n)
			cs.frames[i].x = cutInts(n)
			cs.frames[i].lin = cutInts(n + 1)
		}
		cs.order = cutInts(n)
		cs.pos = cutInts(n)[:n]
	} else {
		cs.order = make([]int, 0, n)
		cs.pos = make([]int, n)
	}
	for i := range cs.pos {
		cs.pos[i] = -1
	}
	cs.next = cs.run
	return cs
}

// run performs the search and reports success.
func (cs *causalSearcher) run() bool {
	if len(cs.order) == cs.n {
		return true
	}
	*cs.budget--
	if *cs.budget < 0 && !cs.feed.refill() {
		return false
	}
	// stateHash fingerprints the committed set plus each committed
	// event's past, folded in commit order — the same information the
	// memo used to key on as a built string. Two branches that
	// committed the same events with the same pasts are interchangeable
	// for the remaining search (for CCv the commit order also fixes
	// past linearizations, but those are functions of the pasts and
	// positions, which the order-sensitive fold captures).
	key := cs.stateHash
	if cs.shard != nil {
		if cs.shard.failed(key) {
			return false
		}
	} else if _, failed := cs.memo[key]; failed {
		return false
	}
	allUpdatesIn := cs.updates.SubsetOf(cs.committed)
	for e := 0; e < cs.n; e++ {
		if cs.committed.Has(e) {
			continue
		}
		if !cs.progPreds[e].SubsetOf(cs.committed) {
			continue
		}
		if cs.omega.Has(e) && !allUpdatesIn {
			continue // ω-events observe every update
		}
		if cs.tryCommit(e) {
			return true
		}
		if *cs.budget < 0 {
			return false
		}
	}
	if *cs.budget >= 0 {
		if cs.shard != nil {
			cs.shard.add(key)
		} else {
			cs.memo[key] = struct{}{}
		}
	}
	return false
}

// tryCommit enumerates visibility choices for e and recurses.
func (cs *causalSearcher) tryCommit(e int) bool {
	fr := &cs.frames[len(cs.order)]

	// forced = program predecessors and their pasts.
	forced := fr.forced
	forced.ClearAll()
	for wi, w := range cs.progPreds[e] {
		for w != 0 {
			pr := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			forced.Set(pr)
			forced.UnionWith(cs.pasts[pr])
		}
	}

	// Candidate extra updates: committed updates not already forced.
	fr.cand = fr.cand[:0]
	for wi := range cs.committed {
		w := cs.committed[wi] & cs.updates[wi] &^ forced[wi]
		for w != 0 {
			fr.cand = append(fr.cand, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}

	if cs.omega.Has(e) {
		// Forced full visibility of all updates.
		return cs.commitWith(e, fr, fr.cand)
	}

	// Enumerate subsets of the candidates lazily, smallest first:
	// minimal visibility is most often sufficient and keeps later
	// events freer. Within each popcount class, Gosper's hack yields
	// the masks in increasing numeric order, so the enumeration order
	// is identical to the materialized popcount-sorted enumeration it
	// replaces — without the 2^k mask slice.
	k := len(fr.cand)
	if k > maxSubsetCands {
		// Unrealistically wide; treat as budget exhaustion.
		cs.exhaust()
		return false
	}
	limit := uint64(1) << k
	for c := 0; c <= k; c++ {
		m := uint64(1)<<c - 1 // smallest mask with popcount c
		for {
			*cs.budget--
			if *cs.budget < 0 && !cs.feed.refill() {
				return false
			}
			fr.x = fr.x[:0]
			for mm := m; mm != 0; mm &= mm - 1 {
				fr.x = append(fr.x, fr.cand[bits.TrailingZeros64(mm)])
			}
			if cs.commitWith(e, fr, fr.x) {
				return true
			}
			if m == 0 {
				break
			}
			// Gosper's hack: next mask with the same popcount.
			u := m & -m
			w := m + u
			m = w | (((m ^ w) / u) >> 2)
			if m >= limit {
				break
			}
		}
	}
	return false
}

// commitWith builds e's past from the forced set plus the chosen extra
// updates x, checks the criterion, and recurses on success. The
// tentative past is published in pasts[e] up front so that the
// linearization engine can read predecessor sets straight from
// cs.pasts (e is not yet committed, so nothing else reads it).
func (cs *causalSearcher) commitWith(e int, fr *csFrame, x []int) bool {
	past := fr.past
	past.CopyFrom(fr.forced)
	for _, u := range x {
		past.Set(u)
		past.UnionWith(cs.pasts[u])
	}
	cs.pasts[e] = past
	lin, ok := cs.checkEvent(e, past, fr)
	if !ok {
		cs.pasts[e] = nil
		return false
	}
	cs.push(e, past, lin)
	if cs.next() {
		return true
	}
	cs.pop(e)
	return false
}

// push performs the commit bookkeeping for e once checkEvent accepted
// it: pasts[e] must already hold the (frame-aliased) past. pop undoes
// it. The pair is shared by the sequential recursion (commitWith), the
// parallel frontier expansion and the per-task prefix replay, so all
// three maintain the state — including the incremental fingerprint —
// identically.
func (cs *causalSearcher) push(e int, past porder.Bitset, lin []int) {
	cs.committed.Set(e)
	cs.pos[e] = len(cs.order)
	cs.order = append(cs.order, e)
	cs.perEvent[e] = lin
	cs.hashStack = append(cs.hashStack, cs.stateHash)
	cs.stateHash = xhash.Mix(xhash.Mix(cs.stateHash, uint64(e)), past.Hash64())
}

func (cs *causalSearcher) pop(e int) {
	cs.stateHash = cs.hashStack[len(cs.hashStack)-1]
	cs.hashStack = cs.hashStack[:len(cs.hashStack)-1]
	cs.order = cs.order[:len(cs.order)-1]
	cs.pos[e] = -1
	cs.committed.Clear(e)
	cs.pasts[e] = nil
	cs.perEvent[e] = nil
}

// exhaust forces the search to unwind as budget-exhausted.
func (cs *causalSearcher) exhaust() {
	*cs.budget = -1
	if cs.feed != nil {
		cs.feed.exhausted = true
	}
}

// checkEvent verifies the criterion's per-event requirement for e with
// causal past `past` (not containing e), returning a witness
// linearization. The witness lives in fr.lin (per-depth scratch); it
// is only cloned if the whole search succeeds.
func (cs *causalSearcher) checkEvent(e int, past porder.Bitset, fr *csFrame) ([]int, bool) {
	if cs.kind == kindCCv {
		// The linearization is forced: ⌊e⌋ sorted by the shared total
		// order ≤, which is the commit order, then e (Def. 12). Only
		// e's own output is visible (π(⌊e⌋, {e}), Def. 12), so the
		// replay checks nothing until the final step.
		q := cs.ls.initState()
		lin := fr.lin[:0]
		for _, f := range cs.order {
			if !past.Has(f) {
				continue
			}
			q, _ = cs.ls.step(q, q.Hash64(), f)
			lin = append(lin, f)
		}
		_, out := cs.ls.step(q, q.Hash64(), e)
		if !cs.h.Events[e].Op.Hidden && !out.Equal(cs.h.Events[e].Op.Out) {
			return nil, false
		}
		lin = append(lin, e)
		fr.lin = lin
		return lin, true
	}

	// WCC/CC: search for a linearization of ⌊e⌋ ∪ {e} respecting the
	// constructed causal order (pasts of committed events are final).
	include := cs.include
	include.CopyFrom(past)
	include.Set(e)
	visible := cs.visible
	if cs.kind == kindCC {
		// π(⌊e⌋, p): outputs of e's process are visible (Def. 9).
		// Events outside every process (Proc < 0, possible in general
		// partial orders) have no process outputs to reproduce.
		if p := cs.h.Events[e].Proc; p >= 0 {
			visible.CopyFrom(cs.h.ProcEventsView(p))
			visible.IntersectWith(include)
		} else {
			visible.ClearAll()
		}
	} else {
		// π(⌊e⌋, {e}): only e's own output is visible (Def. 8).
		visible.ClearAll()
		visible.Set(e)
	}
	lin, ok := cs.ls.findLinInto(fr.lin, include, visible, cs.pasts)
	if ok {
		fr.lin = lin
	}
	return lin, ok
}

func runCausal(ctx context.Context, h *history.History, kind causalKind, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	if opt.parallelism() > 1 && h.N() >= minParallelEvents {
		return runCausalParallel(ctx, h, kind, opt)
	}
	cs := newCausalSearcher(h, kind, opt.maxNodes())
	if opt.Stats != nil {
		defer func() { opt.Stats.Nodes += cs.explored(opt.maxNodes()) }()
	}
	if ctx != nil && ctx.Done() != nil {
		// Route the budget through a chunked pool so the searcher polls
		// ctx.Err() at least every feederChunk nodes. The node count at
		// which the budget runs out is unchanged (the pool hands out
		// exactly maxNodes in total).
		cs.feed = newFeeder(newBudgetPool(opt.maxNodes()), ctx, nil, cs.budget)
		cs.ls.feed = cs.feed
		cs.budgetVal = 0
	}
	ok := cs.run()
	if cs.feed != nil && cs.feed.interrupted {
		return false, nil, ctx.Err()
	}
	if cs.budgetVal < 0 {
		return false, nil, ErrBudget
	}
	if !ok {
		return false, nil, nil
	}
	return true, cs.witness(), nil
}

// explored returns the number of nodes this searcher consumed out of
// an initial budget of `total`, whether the countdown was local or
// routed through a feeder's chunked pool.
func (cs *causalSearcher) explored(total int) int64 {
	var pool *budgetPool
	if cs.feed != nil {
		pool = cs.feed.pool
	}
	return spentNodes(total, pool, cs.budgetVal)
}

// witness clones the committed pasts and per-event linearizations out
// of the searcher's scratch frames (via two slabs) so the returned
// Witness owns its memory. It must only be called after a successful
// run.
func (cs *causalSearcher) witness() *Witness {
	words := (cs.n + 63) / 64
	pastSlab := make(porder.Bitset, cs.n*words)
	pasts := make([]porder.Bitset, len(cs.pasts))
	for i, p := range cs.pasts {
		if p != nil {
			row := pastSlab[:words:words]
			pastSlab = pastSlab[words:]
			copy(row, p)
			pasts[i] = row
		}
	}
	total := cs.n
	for _, l := range cs.perEvent {
		total += len(l)
	}
	linSlab := make([]int, total)
	order := linSlab[:0:cs.n]
	linSlab = linSlab[cs.n:]
	perEvent := make([][]int, len(cs.perEvent))
	for i, l := range cs.perEvent {
		if l != nil {
			row := linSlab[:len(l):len(l)]
			linSlab = linSlab[len(l):]
			copy(row, l)
			perEvent[i] = row
		}
	}
	return &Witness{
		Order:    append(order, cs.order...),
		Pasts:    pasts,
		PerEvent: perEvent,
	}
}

// WCC reports whether the history is weakly causally consistent with
// its ADT (Def. 8): there is a causal order → such that every event's
// output is explained by some linearization of its causal past with all
// other outputs hidden.
func WCC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(ctx, h, kindWCC, opt)
}

// CC reports whether the history is causally consistent with its ADT
// (Def. 9): there is a causal order → such that every event's causal
// past has a linearization that additionally reproduces the outputs of
// the event's own process.
func CC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(ctx, h, kindCC, opt)
}

// CCv reports whether the history is causally convergent with its ADT
// (Def. 12): there are a causal order → and a total order ≤ ⊇ → such
// that each event is explained by its causal past linearized in the
// shared order ≤.
func CCv(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(ctx, h, kindCCv, opt)
}
