package check

import (
	"context"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
)

// The causal-family checkers (WCC, CC, CCv) share one search skeleton,
// the exploration engine of explore.go.
//
// A causal order → is searched as follows: events are "committed" one
// at a time in a dynamically chosen order; when an event e is
// committed, the search picks the set of extra updates X_e (among
// already-committed updates) that e observes beyond what is forced by
// program order and transitivity. The causal order is the transitive
// closure of the program order plus the visibility edges {(u, e) : u ∈
// X_e}; because every edge points into the event being committed, the
// causal past ⌊e⌋ of a committed event never changes afterwards, so the
// per-event admissibility requirement of each criterion can be checked
// immediately and the search prunes early.
//
// Completeness: if a valid causal order →₀ (with per-event
// linearizations) exists, committing events along any linear extension
// of →₀ with X_e := (⌊e⌋₀ ∩ updates) reproduces exactly the update
// content of every causal past, while our → ⊆ →₀ imposes no more
// ordering than →₀ did, so every original per-event linearization
// remains available. Soundness: the constructed → is a partial order
// containing program order by construction, and the committed
// constraints are precisely the definitions' requirements.
//
// ω-events (repeating pure queries standing for infinite suffixes,
// Def. 7's cofiniteness) must observe every update: they can only be
// committed once all updates are committed, and their visibility set is
// forced to include all of them.
//
// This file holds the criterion layer: which per-event admissibility
// check each kind runs (checkEvent), and the WCC/CC/CCv entry points.
// The engine (frame loop, frontier and visibility enumeration, memo,
// slab allocation) lives in explore.go, the optional pruning layer in
// prune.go, and the parallel pipeline in parallel.go.

// causalKind selects which criterion the shared search decides.
type causalKind int

const (
	kindWCC causalKind = iota
	kindCC
	kindCCv
)

// checkEvent verifies the criterion's per-event requirement for e with
// causal past `past` (not containing e), returning a witness
// linearization. The witness lives in fr.lin (per-depth scratch); it
// is only cloned if the whole search succeeds.
func (cs *causalSearcher) checkEvent(e int, past porder.Bitset, fr *csFrame) ([]int, bool) {
	if cs.kind == kindCCv {
		// The linearization is forced: ⌊e⌋ sorted by the shared total
		// order ≤, which is the commit order, then e (Def. 12). Only
		// e's own output is visible (π(⌊e⌋, {e}), Def. 12), so the
		// replay checks nothing until the final step.
		q := cs.ls.initState()
		lin := fr.lin[:0]
		for _, f := range cs.order {
			if !past.Has(f) {
				continue
			}
			q, _ = cs.ls.step(q, q.Hash64(), f)
			lin = append(lin, f)
		}
		_, out := cs.ls.step(q, q.Hash64(), e)
		if !cs.h.Events[e].Op.Hidden && !out.Equal(cs.h.Events[e].Op.Out) {
			return nil, false
		}
		lin = append(lin, e)
		fr.lin = lin
		return lin, true
	}

	// WCC/CC: search for a linearization of ⌊e⌋ ∪ {e} respecting the
	// constructed causal order (pasts of committed events are final).
	include := cs.include
	include.CopyFrom(past)
	include.Set(e)
	visible := cs.visible
	if cs.kind == kindCC {
		// π(⌊e⌋, p): outputs of e's process are visible (Def. 9).
		// Events outside every process (Proc < 0, possible in general
		// partial orders) have no process outputs to reproduce.
		if p := cs.h.Events[e].Proc; p >= 0 {
			visible.CopyFrom(cs.h.ProcEventsView(p))
			visible.IntersectWith(include)
		} else {
			visible.ClearAll()
		}
	} else {
		// π(⌊e⌋, {e}): only e's own output is visible (Def. 8).
		visible.ClearAll()
		visible.Set(e)
	}
	lin, ok := cs.ls.findLinInto(fr.lin, include, visible, cs.pasts)
	if ok {
		fr.lin = lin
	}
	return lin, ok
}

func runCausal(ctx context.Context, h *history.History, kind causalKind, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	if opt.parallelism() > 1 && h.N() >= minParallelEvents {
		return runCausalParallel(ctx, h, kind, opt)
	}
	cs := newCausalSearcher(h, kind, opt.maxNodes(), opt.Prune)
	if opt.Stats != nil {
		defer func() {
			opt.Stats.Nodes += cs.explored(opt.maxNodes())
			opt.Stats.Prune.Add(cs.pruneStats())
		}()
	}
	if ctx != nil && ctx.Done() != nil {
		// Route the budget through a chunked pool so the searcher polls
		// ctx.Err() at least every feederChunk nodes. The node count at
		// which the budget runs out is unchanged (the pool hands out
		// exactly maxNodes in total).
		cs.feed = newFeeder(newBudgetPool(opt.maxNodes()), ctx, nil, cs.budget)
		cs.ls.feed = cs.feed
		cs.budgetVal = 0
	}
	ok := cs.run()
	if cs.feed != nil && cs.feed.interrupted {
		return false, nil, ctx.Err()
	}
	if cs.budgetVal < 0 {
		return false, nil, ErrBudget
	}
	if !ok {
		return false, nil, nil
	}
	return true, cs.witness(), nil
}

// WCC reports whether the history is weakly causally consistent with
// its ADT (Def. 8): there is a causal order → such that every event's
// output is explained by some linearization of its causal past with all
// other outputs hidden.
func WCC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(ctx, h, kindWCC, opt)
}

// CC reports whether the history is causally consistent with its ADT
// (Def. 9): there is a causal order → such that every event's causal
// past has a linearization that additionally reproduces the outputs of
// the event's own process.
func CC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(ctx, h, kindCC, opt)
}

// CCv reports whether the history is causally convergent with its ADT
// (Def. 12): there are a causal order → and a total order ≤ ⊇ → such
// that each event is explained by its causal past linearized in the
// shared order ≤.
func CCv(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(ctx, h, kindCCv, opt)
}
