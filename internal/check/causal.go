package check

import (
	"math/bits"

	"repro/internal/history"
	"repro/internal/porder"
	"repro/internal/spec"
)

// The causal-family checkers (WCC, CC, CCv) share one search skeleton.
//
// A causal order → is searched as follows: events are "committed" one
// at a time in a dynamically chosen order; when an event e is
// committed, the search picks the set of extra updates X_e (among
// already-committed updates) that e observes beyond what is forced by
// program order and transitivity. The causal order is the transitive
// closure of the program order plus the visibility edges {(u, e) : u ∈
// X_e}; because every edge points into the event being committed, the
// causal past ⌊e⌋ of a committed event never changes afterwards, so the
// per-event admissibility requirement of each criterion can be checked
// immediately and the search prunes early.
//
// Completeness: if a valid causal order →₀ (with per-event
// linearizations) exists, committing events along any linear extension
// of →₀ with X_e := (⌊e⌋₀ ∩ updates) reproduces exactly the update
// content of every causal past, while our → ⊆ →₀ imposes no more
// ordering than →₀ did, so every original per-event linearization
// remains available. Soundness: the constructed → is a partial order
// containing program order by construction, and the committed
// constraints are precisely the definitions' requirements.
//
// ω-events (repeating pure queries standing for infinite suffixes,
// Def. 7's cofiniteness) must observe every update: they can only be
// committed once all updates are committed, and their visibility set is
// forced to include all of them.

// causalKind selects which criterion the shared search decides.
type causalKind int

const (
	kindWCC causalKind = iota
	kindCC
	kindCCv
)

type causalSearcher struct {
	h       *history.History
	kind    causalKind
	budget  *int
	n       int
	updates porder.Bitset
	omega   porder.Bitset
	// progPreds[e] = all strict program-order predecessors of e.
	progPreds []porder.Bitset
	// procVisible[e] = events of e's process (visibility set for CC).
	procVisible []porder.Bitset

	committed porder.Bitset
	order     []int           // commit order (the total order ≤ for CCv)
	pos       []int           // commit position per event (-1 if not committed)
	pasts     []porder.Bitset // ⌊e⌋ \ {e} for committed events
	perEvent  [][]int         // witness linearization per event
	memo      map[string]bool // failed states: committed set + past fingerprint
}

func newCausalSearcher(h *history.History, kind causalKind, budget *int) *causalSearcher {
	n := h.N()
	cs := &causalSearcher{
		h:         h,
		kind:      kind,
		budget:    budget,
		n:         n,
		updates:   h.Updates(),
		omega:     h.OmegaEvents(),
		progPreds: h.Prog().Preds(),
		committed: porder.NewBitset(n),
		pos:       make([]int, n),
		pasts:     make([]porder.Bitset, n),
		perEvent:  make([][]int, n),
		memo:      make(map[string]bool),
	}
	for i := range cs.pos {
		cs.pos[i] = -1
	}
	if kind == kindCC {
		cs.procVisible = make([]porder.Bitset, n)
		for p := range h.Processes() {
			b := h.ProcEvents(p)
			for _, e := range h.Processes()[p] {
				cs.procVisible[e] = b
			}
		}
	}
	return cs
}

// run performs the search and reports success.
func (cs *causalSearcher) run() bool {
	if len(cs.order) == cs.n {
		return true
	}
	*cs.budget--
	if *cs.budget < 0 {
		return false
	}
	key := cs.stateKey()
	if cs.memo[key] {
		return false
	}
	allUpdatesIn := cs.updates.SubsetOf(cs.committed)
	for e := 0; e < cs.n; e++ {
		if cs.committed.Has(e) {
			continue
		}
		if !cs.progPreds[e].SubsetOf(cs.committed) {
			continue
		}
		if cs.omega.Has(e) && !allUpdatesIn {
			continue // ω-events observe every update
		}
		if cs.tryCommit(e) {
			return true
		}
		if *cs.budget < 0 {
			return false
		}
	}
	if *cs.budget >= 0 {
		cs.memo[key] = true
	}
	return false
}

// stateKey fingerprints the search state: the committed set plus each
// committed event's past. Two branches that committed the same events
// with the same pasts are interchangeable for the remaining search
// (for CCv the commit order also fixes past linearizations, but those
// are functions of the pasts and positions; positions are included via
// the order of keys).
func (cs *causalSearcher) stateKey() string {
	key := cs.committed.Key()
	for _, e := range cs.order {
		key += "." + cs.pasts[e].Key()
	}
	return key
}

// tryCommit enumerates visibility choices for e and recurses.
func (cs *causalSearcher) tryCommit(e int) bool {
	// forced = program predecessors and their pasts.
	forced := porder.NewBitset(cs.n)
	cs.progPreds[e].ForEach(func(pr int) {
		forced.Set(pr)
		forced.UnionWith(cs.pasts[pr])
	})

	// Candidate extra updates: committed updates not already forced.
	extra := cs.committed.Clone()
	extra.IntersectWith(cs.updates)
	extra.DiffWith(forced)
	cand := extra.Elems()

	commitWith := func(x []int) bool {
		past := forced.Clone()
		for _, u := range x {
			past.Set(u)
			past.UnionWith(cs.pasts[u])
		}
		lin, ok := cs.checkEvent(e, past)
		if !ok {
			return false
		}
		cs.committed.Set(e)
		cs.pos[e] = len(cs.order)
		cs.order = append(cs.order, e)
		cs.pasts[e] = past
		cs.perEvent[e] = lin
		if cs.run() {
			return true
		}
		cs.order = cs.order[:len(cs.order)-1]
		cs.pos[e] = -1
		cs.committed.Clear(e)
		cs.pasts[e] = nil
		cs.perEvent[e] = nil
		return false
	}

	if cs.omega.Has(e) {
		// Forced full visibility of all updates.
		return commitWith(cand)
	}
	// Enumerate subsets of the candidates, smallest first: minimal
	// visibility is most often sufficient and keeps later events freer.
	if len(cand) > 24 {
		// Unrealistically wide; treat as budget exhaustion.
		*cs.budget = -1
		return false
	}
	masks := make([]uint32, 0, 1<<len(cand))
	for m := uint32(0); m < 1<<len(cand); m++ {
		masks = append(masks, m)
	}
	// Order by popcount so minimal sets come first.
	sortByPopcount(masks)
	x := make([]int, 0, len(cand))
	for _, m := range masks {
		*cs.budget--
		if *cs.budget < 0 {
			return false
		}
		x = x[:0]
		for i, u := range cand {
			if m&(1<<uint(i)) != 0 {
				x = append(x, u)
			}
		}
		if commitWith(x) {
			return true
		}
	}
	return false
}

func sortByPopcount(masks []uint32) {
	// Counting sort over popcounts (≤ 32 buckets) keeps enumeration
	// order deterministic.
	var buckets [33][]uint32
	for _, m := range masks {
		c := bits.OnesCount32(m)
		buckets[c] = append(buckets[c], m)
	}
	masks = masks[:0]
	for _, b := range buckets {
		masks = append(masks, b...)
	}
}

// checkEvent verifies the criterion's per-event requirement for e with
// causal past `past` (not containing e), returning a witness
// linearization.
func (cs *causalSearcher) checkEvent(e int, past porder.Bitset) ([]int, bool) {
	include := past.Clone()
	include.Set(e)
	var visible porder.Bitset
	switch cs.kind {
	case kindCC:
		// π(⌊e⌋, p): outputs of e's process are visible (Def. 9).
		visible = cs.procVisible[e].Clone()
		visible.IntersectWith(include)
	default:
		// π(⌊e⌋, {e}): only e's own output is visible (Defs. 8, 12).
		visible = porder.NewBitset(cs.n)
		visible.Set(e)
	}

	if cs.kind == kindCCv {
		// The linearization is forced: ⌊e⌋ sorted by the shared total
		// order ≤, which is the commit order, then e (Def. 12).
		q := cs.h.ADT.Init()
		lin := make([]int, 0, include.Count())
		for _, f := range cs.order {
			if !past.Has(f) {
				continue
			}
			var out spec.Output
			q, out = cs.h.ADT.Step(q, cs.h.Events[f].Op.In)
			if visible.Has(f) && !cs.h.Events[f].Op.Hidden && !out.Equal(cs.h.Events[f].Op.Out) {
				return nil, false
			}
			lin = append(lin, f)
		}
		_, out := cs.h.ADT.Step(q, cs.h.Events[e].Op.In)
		if !cs.h.Events[e].Op.Hidden && !out.Equal(cs.h.Events[e].Op.Out) {
			return nil, false
		}
		return append(lin, e), true
	}

	// WCC/CC: search for a linearization of ⌊e⌋ ∪ {e} respecting the
	// constructed causal order (pasts of committed events are final).
	ls := &linSearcher{t: cs.h.ADT, events: cs.h.Events, budget: cs.budget}
	preds := func(f int) porder.Bitset {
		if f == e {
			return past
		}
		return cs.pasts[f]
	}
	return ls.findLin(include, visible, preds)
}

func runCausal(h *history.History, kind causalKind, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	budget := opt.maxNodes()
	cs := newCausalSearcher(h, kind, &budget)
	ok := cs.run()
	if budget < 0 {
		return false, nil, ErrBudget
	}
	if !ok {
		return false, nil, nil
	}
	w := &Witness{
		Order:    append([]int(nil), cs.order...),
		Pasts:    append([]porder.Bitset(nil), cs.pasts...),
		PerEvent: append([][]int(nil), cs.perEvent...),
	}
	return true, w, nil
}

// WCC reports whether the history is weakly causally consistent with
// its ADT (Def. 8): there is a causal order → such that every event's
// output is explained by some linearization of its causal past with all
// other outputs hidden.
func WCC(h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(h, kindWCC, opt)
}

// CC reports whether the history is causally consistent with its ADT
// (Def. 9): there is a causal order → such that every event's causal
// past has a linearization that additionally reproduces the outputs of
// the event's own process.
func CC(h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(h, kindCC, opt)
}

// CCv reports whether the history is causally convergent with its ADT
// (Def. 12): there are a causal order → and a total order ≤ ⊇ → such
// that each event is explained by its causal past linearized in the
// shared order ≤.
func CCv(h *history.History, opt Options) (bool, *Witness, error) {
	return runCausal(h, kindCCv, opt)
}
