package check

import (
	"context"
	"fmt"
	"sort"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/spec"
)

// This file adds the one strong criterion the paper discusses but does
// not define formally: linearizability [13]. Unlike every criterion in
// the rest of this package, linearizability is not a predicate on
// (Σ, E, Λ, 7→) histories — it constrains *real time*, which Def. 4
// deliberately omits ("our model does not introduce any notion of real
// time", Sec. 2.2). It therefore gets its own input type: operations
// with invocation/response intervals. It is included as the reference
// point above sequential consistency in Fig. 1's hierarchy, and to
// reproduce the classic separation of Attiya & Welch [3]: histories
// that are sequentially consistent but not linearizable.

// TimedOp is one completed method execution with its real-time
// interval. Inv must be strictly smaller than Res; operations of one
// process must not overlap each other.
type TimedOp struct {
	Proc int
	Op   spec.Operation
	Inv  float64 // invocation time
	Res  float64 // response time
}

// String renders the op with its interval.
func (o TimedOp) String() string {
	return fmt.Sprintf("p%d:%s@[%g,%g]", o.Proc, o.Op, o.Inv, o.Res)
}

// validateTimed checks interval sanity and per-process sequentiality.
func validateTimed(ops []TimedOp) error {
	byProc := make(map[int][]TimedOp)
	for _, o := range ops {
		if o.Inv >= o.Res {
			return fmt.Errorf("check: %v: invocation must precede response", o)
		}
		byProc[o.Proc] = append(byProc[o.Proc], o)
	}
	for p, po := range byProc {
		sort.Slice(po, func(i, j int) bool { return po[i].Inv < po[j].Inv })
		for i := 1; i < len(po); i++ {
			if po[i].Inv < po[i-1].Res {
				return fmt.Errorf("check: process %d overlaps its own operations %v and %v", p, po[i-1], po[i])
			}
		}
	}
	return nil
}

// Linearizable reports whether the timed history is linearizable with
// respect to t: there is a total order of the operations, admissible
// for t, that extends the real-time precedence relation (o1 precedes
// o2 when o1.Res < o2.Inv). On success the returned witness gives the
// linearization as indices into ops.
//
// The search reuses the package's memoized linearization engine; the
// real-time precedence of an interval order plays the role the program
// order plays for sequential consistency. Hidden operations (pending
// invocations whose response was never observed can be modelled as
// hidden with Res = +Inf) are admitted like everywhere else in the
// package.
func Linearizable(ctx context.Context, t spec.ADT, ops []TimedOp, opt Options) (bool, []int, error) {
	if err := validateTimed(ops); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	n := len(ops)
	events := make([]history.Event, n)
	for i, o := range ops {
		events[i] = history.Event{ID: i, Proc: o.Proc, Op: o.Op}
	}
	preds := make([]porder.Bitset, n)
	for i := range ops {
		preds[i] = porder.NewBitset(n)
		for j := range ops {
			if ops[j].Res < ops[i].Inv {
				preds[i].Set(j)
			}
		}
	}
	run := newSearchRun(ctx, opt)
	defer run.record(opt)
	ls := &linSearcher{t: t, events: events, budget: &run.budget, feed: run.feed}
	order, ok := ls.findLin(porder.FullBitset(n), porder.FullBitset(n), preds)
	if err := run.err(); err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, order, nil
}

// TimedToHistory forgets real time, keeping only the per-process
// program order — the projection under which linearizability questions
// become sequential-consistency questions. It is the bridge used by
// the differential tests: Linearizable(ops) always implies
// SC(TimedToHistory(ops)).
func TimedToHistory(t spec.ADT, ops []TimedOp) *history.History {
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if ops[idx[a]].Proc != ops[idx[b]].Proc {
			return ops[idx[a]].Proc < ops[idx[b]].Proc
		}
		return ops[idx[a]].Inv < ops[idx[b]].Inv
	})
	b := history.NewBuilder(t)
	for _, i := range idx {
		b.Append(ops[i].Proc, ops[i].Op)
	}
	return b.Build()
}
