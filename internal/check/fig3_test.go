package check_test

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/paperfig"
)

// TestFig3Classification verifies every caption claim of the paper's
// Fig. 3 against the checkers. Claims
// marked OmegaReading are checked on the ω-flagged history, the others
// on the literal finite history.
func TestFig3Classification(t *testing.T) {
	for _, f := range paperfig.Fig3() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			omega := f.History()
			finite := f.FiniteHistory()
			for _, claim := range f.Claims {
				h := finite
				if claim.OmegaReading {
					h = omega
				}
				got, _, err := check.Check(context.Background(), claim.Criterion, h, check.Options{})
				if err != nil {
					t.Fatalf("%s: %v checker failed: %v", f.Name, claim.Criterion, err)
				}
				if got != claim.Holds {
					t.Errorf("%s (%s): %v = %v, paper claims %v",
						f.Name, f.Caption, claim.Criterion, got, claim.Holds)
				}
			}
		})
	}
}

// TestFig3aDetailed pins down the full classification of Fig. 3a under
// the ω reading: causally convergent (and hence WCC, EC, UC) but not
// pipelined consistent (and hence not CC, not SC).
func TestFig3aDetailed(t *testing.T) {
	f, _ := paperfig.Fig3ByName("3a")
	h := f.History()
	want := map[check.Criterion]bool{
		check.CritEC:  true,
		check.CritUC:  true,
		check.CritWCC: true,
		check.CritCCv: true,
		check.CritPC:  false,
		check.CritCC:  false,
		check.CritSC:  false,
	}
	cl, err := check.Classify(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, exp := range want {
		if cl[c] != exp {
			t.Errorf("3a: %v = %v, want %v", c, cl[c], exp)
		}
	}
}

// TestFig3bBothReadings documents the dual reading of Fig. 3b: the
// finite prefix is PC (and even WCC — without cofiniteness a causal
// order need not make processes interact), while the ω reading is
// neither WCC nor even eventually consistent (the two processes
// disagree forever).
func TestFig3bBothReadings(t *testing.T) {
	f, _ := paperfig.Fig3ByName("3b")
	finite := f.FiniteHistory()
	omega := f.History()

	for crit, want := range map[check.Criterion]bool{
		check.CritPC: true, check.CritWCC: true, check.CritSC: false,
	} {
		got, _, err := check.Check(context.Background(), crit, finite, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("3b finite: %v = %v, want %v", crit, got, want)
		}
	}
	for crit, want := range map[check.Criterion]bool{
		check.CritPC: false, check.CritWCC: false, check.CritEC: false,
		check.CritUC: false, check.CritCCv: false,
	} {
		got, _, err := check.Check(context.Background(), crit, omega, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("3b ω: %v = %v, want %v", crit, got, want)
		}
	}
}

// TestFig3cWitness checks that the CC witness for Fig. 3c matches the
// paper's linearizations: each read sees both writes, ordered so that
// its own value is last.
func TestFig3cWitness(t *testing.T) {
	f, _ := paperfig.Fig3ByName("3c")
	h := f.History()
	ok, w, err := check.CC(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("CC(3c) = %v, %v; want true", ok, err)
	}
	// Event ids: 0 = w(1), 1 = r/(2,1), 2 = w(2), 3 = r/(1,2).
	if len(w.PerEvent[1]) != 3 {
		t.Errorf("r/(2,1) witness linearization = %v, want both writes plus the read", w.PerEvent[1])
	}
	if len(w.PerEvent[3]) != 3 {
		t.Errorf("r/(1,2) witness linearization = %v, want both writes plus the read", w.PerEvent[3])
	}
}

// TestFig3gNoLostValues exercises the point of Fig. 3g: with the
// hd/rh queue, an rh only removes the head when it matches, so the
// "both processes remove the same element" race cannot delete an
// unread element. Sequentially, rh(1) after the head became 2 is a
// no-op.
func TestFig3gNoLostValues(t *testing.T) {
	f, _ := paperfig.Fig3ByName("3g")
	h := f.History()
	ok, _, err := check.CC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("Fig. 3g should be causally consistent")
	}
}

// TestFig3iSessionGuaranteesRejected: the session-guarantee checkers
// require distinct written values and must reject Fig. 3i, which
// deliberately duplicates writes.
func TestFig3iSessionGuaranteesRejected(t *testing.T) {
	f, _ := paperfig.Fig3ByName("3i")
	if _, err := check.Sessions(f.History(), check.Options{}); err != check.ErrDuplicateValues {
		t.Errorf("Sessions(3i) error = %v, want ErrDuplicateValues", err)
	}
}

// TestFig3ImplicationsHold runs the full classification of every
// fixture (both readings) and asserts that no Fig. 1 arrow is violated
// (experiment E1's inclusion direction on the paper's own examples).
func TestFig3ImplicationsHold(t *testing.T) {
	for _, f := range paperfig.Fig3() {
		for _, h := range []*history.History{f.History(), f.FiniteHistory()} {
			cl, err := check.Classify(context.Background(), h, check.Options{})
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			if bad := check.VerifyImplications(cl); len(bad) != 0 {
				t.Errorf("%s: hierarchy violations %v (classification %v)", f.Name, bad, cl)
			}
		}
	}
}
