package check

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/spec"
)

func top(p int, op spec.Operation, inv, res float64) TimedOp {
	return TimedOp{Proc: p, Op: op, Inv: inv, Res: res}
}

func w(v int) spec.Operation  { return spec.NewOp(spec.NewInput("w", v), spec.Bot) }
func rd(v int) spec.Operation { return spec.NewOp(spec.NewInput("r"), spec.IntOutput(v)) }

func TestLinearizableFreshRead(t *testing.T) {
	ops := []TimedOp{
		top(0, w(1), 0, 1),
		top(1, rd(1), 2, 3),
	}
	ok, order, err := Linearizable(context.Background(), adt.Register{}, ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fresh read after completed write must be linearizable")
	}
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("witness %v, want write first", order)
	}
}

// TestStaleReadSeparatesLinFromSC is the classic separation [3]: a
// read that returns the old value strictly after a write completed is
// not linearizable, yet the same operations without real time are
// sequentially consistent.
func TestStaleReadSeparatesLinFromSC(t *testing.T) {
	ops := []TimedOp{
		top(0, w(1), 0, 1),
		top(1, rd(0), 2, 3), // stale: reads 0 after w(1) responded
	}
	ok, _, err := Linearizable(context.Background(), adt.Register{}, ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("stale read after completed write must not be linearizable")
	}
	sc, _, err := SC(context.Background(), TimedToHistory(adt.Register{}, ops), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sc {
		t.Fatal("the untimed projection is sequentially consistent (read ordered first)")
	}
}

func TestOverlappingWriteFloats(t *testing.T) {
	// The write overlaps both reads, so it may linearize between them.
	ops := []TimedOp{
		top(0, w(1), 0, 10),
		top(1, rd(0), 1, 2),
		top(1, rd(1), 3, 4),
	}
	ok, _, err := Linearizable(context.Background(), adt.Register{}, ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("overlapping write must be allowed to take effect between the reads")
	}
}

// TestSCNotLinTwoWriters: both writers then disagreeing reads in
// strict sequence — SC can reorder a write after the first read, real
// time cannot.
func TestSCNotLinTwoWriters(t *testing.T) {
	ops := []TimedOp{
		top(0, w(1), 0, 1),
		top(1, w(2), 0.5, 1.5),
		top(0, rd(1), 2, 3),
		top(1, rd(2), 4, 5),
	}
	ok, _, err := Linearizable(context.Background(), adt.Register{}, ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("value cannot change between the sequential reads without an intervening write")
	}
	sc, _, err := SC(context.Background(), TimedToHistory(adt.Register{}, ops), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sc {
		t.Fatal("the untimed projection is sequentially consistent (w1 r1 w2 r2)")
	}
}

func TestLinearizableCounter(t *testing.T) {
	inc := spec.NewOp(spec.NewInput("inc"), spec.Bot)
	get := func(v int) spec.Operation { return spec.NewOp(spec.NewInput("get"), spec.IntOutput(v)) }
	ok, _, err := Linearizable(context.Background(), adt.Counter{}, []TimedOp{
		top(0, inc, 0, 1),
		top(1, get(0), 2, 3),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("get/0 after a completed inc is not linearizable")
	}
	ok, _, err = Linearizable(context.Background(), adt.Counter{}, []TimedOp{
		top(0, inc, 0, 1),
		top(1, get(1), 2, 3),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("get/1 after a completed inc is linearizable")
	}
}

func TestPendingOperationAsHidden(t *testing.T) {
	// A crashed writer's pending w(1) may or may not have taken
	// effect; modelled as a hidden operation with an unbounded
	// response time it can explain the second read.
	ops := []TimedOp{
		top(0, spec.HiddenOp(spec.NewInput("w", 1)), 0, math.Inf(1)),
		top(1, rd(0), 1, 2),
		top(1, rd(1), 3, 4),
	}
	ok, _, err := Linearizable(context.Background(), adt.Register{}, ops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pending write must be allowed to take effect between the reads")
	}
}

func TestTimedValidation(t *testing.T) {
	if _, _, err := Linearizable(context.Background(), adt.Register{}, []TimedOp{top(0, w(1), 2, 1)}, Options{}); err == nil {
		t.Error("inverted interval accepted")
	}
	ops := []TimedOp{
		top(0, w(1), 0, 2),
		top(0, w(2), 1, 3), // overlaps its own process
	}
	if _, _, err := Linearizable(context.Background(), adt.Register{}, ops, Options{}); err == nil {
		t.Error("overlapping same-process operations accepted")
	}
}

// TestSequentialExecutionsAreLinearizable generates random legal
// sequential executions (an arbitrary interleaving run against the
// sequential specification) and schedules each operation in its own
// real-time slot: the result must always be linearizable, and its
// untimed projection sequentially consistent.
func TestSequentialExecutionsAreLinearizable(t *testing.T) {
	reg := adt.Register{}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nproc := 2 + rng.Intn(2)
		nops := 4 + rng.Intn(5)
		q := reg.Init()
		ops := make([]TimedOp, 0, nops)
		for i := 0; i < nops; i++ {
			p := rng.Intn(nproc)
			var in spec.Input
			if rng.Intn(2) == 0 {
				in = spec.NewInput("w", rng.Intn(3))
			} else {
				in = spec.NewInput("r")
			}
			var out spec.Output
			q, out = reg.Step(q, in)
			ops = append(ops, top(p, spec.NewOp(in, out), float64(i), float64(i)+0.5))
		}
		ok, _, err := Linearizable(context.Background(), reg, ops, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: a sequential execution must be linearizable: %v", seed, ops)
		}
		sc, _, err := SC(context.Background(), TimedToHistory(reg, ops), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sc {
			t.Fatalf("seed %d: linearizable execution whose projection is not SC", seed)
		}
	}
}

// TestLinImpliesSCRandom: on arbitrary random timed histories (many of
// them inconsistent), whenever the linearizability checker accepts,
// the SC checker must accept the untimed projection — the Fig. 1 arrow
// above SC, validated differentially between two independent search
// procedures.
func TestLinImpliesSCRandom(t *testing.T) {
	reg := adt.Register{}
	linCount := 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nproc := 2
		nops := 3 + rng.Intn(4)
		ops := make([]TimedOp, 0, nops)
		clock := make([]float64, nproc)
		for i := 0; i < nops; i++ {
			p := rng.Intn(nproc)
			var op spec.Operation
			if rng.Intn(2) == 0 {
				op = w(rng.Intn(2) + 1)
			} else {
				op = rd(rng.Intn(3)) // arbitrary, often impossible, output
			}
			inv := clock[p] + rng.Float64()
			res := inv + 0.1 + 2*rng.Float64()
			clock[p] = res
			ops = append(ops, top(p, op, inv, res))
		}
		ok, _, err := Linearizable(context.Background(), reg, ops, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			continue
		}
		linCount++
		sc, _, err := SC(context.Background(), TimedToHistory(reg, ops), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sc {
			t.Fatalf("seed %d: linearizable but not SC: %v", seed, ops)
		}
	}
	if linCount == 0 {
		t.Fatal("generator produced no linearizable histories; test is vacuous")
	}
}
