package check

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/internal/history"
)

// TestErrBudgetExceededTyped pins the typed budget error contract:
// Check returns *ErrBudgetExceeded carrying the criterion and budget,
// it unwraps to the ErrBudget sentinel, and the typing survives
// Classify's wrapping — the property batch callers rely on to
// distinguish resource exhaustion from real verdicts.
func TestErrBudgetExceededTyped(t *testing.T) {
	h := history.MustParse("adt: M[a-e]\np0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3\np1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3")
	_, _, err := Check(context.Background(), CritCCv, h, Options{MaxNodes: 10})
	if err == nil {
		t.Fatal("MaxNodes=10 did not exhaust the budget")
	}
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("Check error %T is not *ErrBudgetExceeded", err)
	}
	if be.Criterion != CritCCv || be.MaxNodes != 10 {
		t.Fatalf("ErrBudgetExceeded = %+v, want {CCv 10}", be)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatal("ErrBudgetExceeded does not unwrap to ErrBudget")
	}
	if got := err.Error(); got != "check: CCv search budget exceeded (MaxNodes=10)" {
		t.Fatalf("Error() = %q", got)
	}

	// Through Classify's %w wrapping.
	_, cerr := Classify(context.Background(), h, Options{MaxNodes: 10})
	if cerr == nil {
		t.Fatal("Classify did not surface the budget error")
	}
	be = nil
	if !errors.As(cerr, &be) || !errors.Is(cerr, ErrBudget) {
		t.Fatalf("Classify error %v lost the typed budget error", cerr)
	}
}

func batchCorpus(t *testing.T) []BatchItem {
	t.Helper()
	items := make([]BatchItem, len(parFig3Texts))
	for i, text := range parFig3Texts {
		items[i] = BatchItem{Name: fmt.Sprintf("fig3-%d", i), H: history.MustParse(text)}
	}
	return items
}

// TestClassifyBatchMatchesClassify cross-checks the batch engine
// against per-history Classify over the Fig. 3 corpus plus random
// histories, with several workers.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	items := batchCorpus(t)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		h := randomHistory(r)
		items = append(items, BatchItem{Name: fmt.Sprintf("random-%d", i), H: h})
	}
	res := ClassifyBatch(context.Background(), items, BatchOptions{Workers: 4})
	if len(res) != len(items) {
		t.Fatalf("got %d results for %d items", len(res), len(items))
	}
	for i, r := range res {
		if r.Item.Name != items[i].Name {
			t.Fatalf("result %d is %q, want %q (order lost)", i, r.Item.Name, items[i].Name)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", r.Item.Name, err)
		}
		if len(r.LatticeViolations) > 0 {
			t.Fatalf("%s: lattice violations %v", r.Item.Name, r.LatticeViolations)
		}
		want, err := Classify(context.Background(), items[i].H, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(r.Class) {
			t.Fatalf("%s: criteria differ: %v vs %v", r.Item.Name, want, r.Class)
		}
		for c, v := range want {
			if r.Class[c] != v {
				t.Fatalf("%s: %v = %v, want %v", r.Item.Name, c, r.Class[c], v)
			}
		}
	}
}

// TestClassifyAllStreams feeds the engine through the channel API and
// checks every index comes back exactly once.
func TestClassifyAllStreams(t *testing.T) {
	items := batchCorpus(t)
	in := make(chan BatchItem)
	go func() {
		for i, it := range items {
			it.Index = i
			in <- it
		}
		close(in)
	}()
	seen := make(map[int]bool)
	for r := range ClassifyAll(context.Background(), in, BatchOptions{Workers: 3}) {
		if seen[r.Item.Index] {
			t.Fatalf("index %d delivered twice", r.Item.Index)
		}
		seen[r.Item.Index] = true
	}
	if len(seen) != len(items) {
		t.Fatalf("got %d results, want %d", len(seen), len(items))
	}
}

// TestClassifyBatchBudget pins that budget exhaustion is reported
// per-criterion as BudgetExceeded with the typed error, without
// failing the whole batch.
func TestClassifyBatchBudget(t *testing.T) {
	items := batchCorpus(t)
	res := ClassifyBatch(context.Background(), items[7:8], BatchOptions{Options: Options{MaxNodes: 10}})
	o, ok := res[0].Outcomes[CritCCv]
	if !ok {
		t.Fatal("no CCv outcome")
	}
	if !o.BudgetExceeded || !errors.Is(o.Err, ErrBudget) {
		t.Fatalf("outcome = %+v, want BudgetExceeded with typed error", o)
	}
	var be *ErrBudgetExceeded
	if !errors.As(o.Err, &be) || be.Criterion != CritCCv {
		t.Fatalf("outcome error %v is not the typed budget error", o.Err)
	}
	if _, ok := res[0].Class[CritCCv]; ok {
		t.Fatal("budget-exceeded criterion leaked into Class")
	}
}

// TestClassifyBatchTimeout pins the per-criterion timeout: an
// effectively-zero deadline must surface TimedOut (not a verdict, not
// an error) and the engine must return promptly.
func TestClassifyBatchTimeout(t *testing.T) {
	items := batchCorpus(t)[7:8] // 3h: the 12-event memory history
	start := time.Now()
	res := ClassifyBatch(context.Background(), items, BatchOptions{Timeout: time.Nanosecond})
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("timeout batch took %v", el)
	}
	sawTimeout := false
	for c, o := range res[0].Outcomes {
		if o.Err != nil {
			t.Fatalf("%v: err %v alongside timeout", c, o.Err)
		}
		if o.TimedOut {
			sawTimeout = true
			if _, ok := res[0].Class[c]; ok {
				t.Fatalf("%v: timed out but present in Class", c)
			}
		}
	}
	if !sawTimeout {
		t.Fatal("nanosecond timeout produced no TimedOut outcome")
	}

	// And with a generous timeout nothing times out and verdicts match
	// the plain path.
	res = ClassifyBatch(context.Background(), items, BatchOptions{Timeout: time.Minute})
	want, err := Classify(context.Background(), items[0].H, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range want {
		o := res[0].Outcomes[c]
		if o.TimedOut || o.Err != nil || o.Satisfied != v {
			t.Fatalf("%v: outcome %+v, want clean %v", c, o, v)
		}
	}
}
