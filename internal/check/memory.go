package check

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
)

// This file implements the memory-specific criteria of Sec. 4.2: causal
// memory (Def. 11, Ahamad et al.) via writes-into orders, and Terry's
// four session guarantees (Sec. 1 and 4.1).

// ErrNotMemory is returned when a memory-specific checker is applied to
// a history over a non-memory ADT.
var ErrNotMemory = errors.New("check: history is not over a memory ADT")

// ErrDuplicateValues is returned by the session-guarantee checkers when
// two writes to the same register write the same value; the guarantees
// are classically defined under the distinct-values hypothesis the
// paper discusses (Sec. 4.2, citing Misra).
var ErrDuplicateValues = errors.New("check: session guarantees require distinct written values per register")

// memOps describes a memory history: per event, whether it is a write
// or read, its register (as a dense integer id — the search loops
// compare and pack register identities, so strings are resolved once
// here), and its value.
type memOps struct {
	isWrite []bool
	reg     []int
	val     []int
	regName []string // id -> name, for diagnostics
}

// regVal packs a (register, value) identity for map keys without any
// string formatting.
type regVal struct {
	reg int
	val int
}

func memoryOps(h *history.History) (*memOps, error) {
	if _, ok := h.ADT.(adt.Memory); !ok {
		return nil, ErrNotMemory
	}
	m := &memOps{
		isWrite: make([]bool, h.N()),
		reg:     make([]int, h.N()),
		val:     make([]int, h.N()),
	}
	regID := make(map[string]int)
	intern := func(name string) int {
		id, ok := regID[name]
		if !ok {
			id = len(m.regName)
			regID[name] = id
			m.regName = append(m.regName, name)
		}
		return id
	}
	for _, ev := range h.Events {
		method := ev.Op.In.Method
		switch {
		case strings.HasPrefix(method, "w"):
			if len(ev.Op.In.Args) != 1 {
				return nil, fmt.Errorf("check: malformed write %v", ev.Op)
			}
			m.isWrite[ev.ID] = true
			m.reg[ev.ID] = intern(method[1:])
			m.val[ev.ID] = ev.Op.In.Args[0]
		case strings.HasPrefix(method, "r"):
			if ev.Op.Out.Bot || len(ev.Op.Out.Vals) != 1 {
				return nil, fmt.Errorf("check: read %v has no scalar output", ev.Op)
			}
			m.reg[ev.ID] = intern(method[1:])
			m.val[ev.ID] = ev.Op.Out.Vals[0]
		default:
			return nil, fmt.Errorf("check: unknown memory method %q", method)
		}
	}
	return m, nil
}

// CM reports whether a memory history is M_X-causal in the sense of
// causal memory (Def. 11): there exists a writes-into order ⇝ (each
// read bound to at most one write of the same register and value, reads
// of 0 possibly unbound) whose union with the program order generates
// an acyclic causal order →, such that every process can linearize the
// whole history ordered by → with its own outputs visible.
func CM(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	mo, err := memoryOps(h)
	if err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	// One run serves the whole CM search (the writes-into enumeration
	// and every per-process linearization inside it share the budget),
	// so a cancelled context reclaims the search promptly.
	run := newSearchRun(ctx, opt)
	defer run.record(opt)
	feed := run.feed

	// Candidate dictating writes per read.
	n := h.N()
	var reads []int
	cands := make([][]int, n)
	for e := 0; e < n; e++ {
		if mo.isWrite[e] {
			continue
		}
		reads = append(reads, e)
		for w := 0; w < n; w++ {
			if mo.isWrite[w] && mo.reg[w] == mo.reg[e] && mo.val[w] == mo.val[e] {
				cands[e] = append(cands[e], w)
			}
		}
		if mo.val[e] != 0 && len(cands[e]) == 0 {
			return false, nil, nil // read of a never-written value
		}
		if mo.val[e] == 0 {
			cands[e] = append(cands[e], -1) // unbound (initial value)
		}
	}

	checkChoice := func(binding map[int]int) (bool, *Witness) {
		rel := porder.NewRel(n)
		for i := 0; i < n; i++ {
			h.Prog().Succ[i].ForEach(func(j int) { rel.Add(i, j) })
		}
		for r, w := range binding {
			if w >= 0 {
				rel.Add(w, r)
			}
		}
		if rel.HasCycle() {
			return false, nil
		}
		closed := rel.TransitiveClosure()
		closedPreds := closed.Preds()
		wit := &Witness{PerProcess: make([][]int, len(h.Processes()))}
		all := porder.FullBitset(n)
		for p := range h.Processes() {
			ls := &linSearcher{t: h.ADT, events: h.Events, budget: &run.budget, feed: feed}
			visible := h.ProcEventsView(p)
			ownOmega := h.OmegaEvents()
			ownOmega.IntersectWith(visible)
			preds := omegaPreds(h, closedPreds, ownOmega)
			order, ok := ls.findLin(all, visible, preds)
			if !ok {
				return false, nil
			}
			wit.PerProcess[p] = order
		}
		return true, wit
	}

	binding := make(map[int]int, len(reads))
	var rec func(i int) (bool, *Witness)
	rec = func(i int) (bool, *Witness) {
		if run.budget < 0 && !feed.refill() {
			return false, nil
		}
		if i == len(reads) {
			return checkChoice(binding)
		}
		r := reads[i]
		for _, w := range cands[r] {
			run.budget--
			binding[r] = w
			if ok, wit := rec(i + 1); ok {
				return true, wit
			}
		}
		delete(binding, r)
		return false, nil
	}
	ok, wit := rec(0)
	if err := run.err(); err != nil {
		return false, nil, err
	}
	return ok, wit, nil
}

// SessionGuarantees holds the outcome of the four session-guarantee
// checks of Terry et al. (Sec. 1): Read Your Writes, Monotonic Reads,
// Monotonic Writes, Writes Follow Reads. A false field means a
// violation was attributed to that guarantee (see Sessions).
type SessionGuarantees struct {
	ReadYourWrites    bool
	MonotonicReads    bool
	MonotonicWrites   bool
	WritesFollowReads bool
}

// All reports whether the four guarantees hold together.
func (g SessionGuarantees) All() bool {
	return g.ReadYourWrites && g.MonotonicReads && g.MonotonicWrites && g.WritesFollowReads
}

// sessionKind selects the constraint set of one guarantee.
type sessionKind int

const (
	kindMR sessionKind = iota
	kindMW
	kindRYW
	kindWFR
)

// Sessions checks Terry's four session guarantees on a memory history
// whose written values are distinct per register (so each read has a
// unique dictating write; Sec. 4.2 discusses why this hypothesis is
// needed). Sessions are identified with processes.
//
// The model is Terry's server model specialized to replica-per-process
// systems: each session observes a growing sequence of writes. A
// guarantee holds for session p if there exists, for each of p's reads
// in order, a write sequence T_r such that (a) the previous read's
// sequence is a subsequence of T_r (the view only grows), (b) the last
// write to the read register in T_r dictates the value read (absence
// means the initial 0), and (c) the guarantee's specific closure holds:
//
//   - MR: nothing beyond (a)+(b) — the view is monotonic;
//   - MW: every write in T_r is preceded by its session's earlier
//     writes, in order;
//   - RYW: p's own program-earlier writes belong to T_r;
//   - WFR: every write w ∈ T_r whose session read some value before
//     issuing w has that value's dictating write in T_r before w.
//
// Because MW/RYW/WFR strictly strengthen the monotonic-view baseline,
// a failure of MR alone would make all of them fail; violations are
// therefore attributed: MW/RYW/WFR are reported violated only when
// their check fails while plain MR passes.
func Sessions(h *history.History, opt Options) (SessionGuarantees, error) {
	g := SessionGuarantees{}
	mo, err := memoryOps(h)
	if err != nil {
		return g, err
	}
	n := h.N()

	// Unique dictating writes (distinct-values hypothesis).
	dict := make([]int, n) // -1 = initial value
	writerOf := make(map[regVal]int)
	for e := 0; e < n; e++ {
		if !mo.isWrite[e] {
			continue
		}
		key := regVal{reg: mo.reg[e], val: mo.val[e]}
		if _, dup := writerOf[key]; dup {
			return g, ErrDuplicateValues
		}
		writerOf[key] = e
	}
	for e := 0; e < n; e++ {
		if mo.isWrite[e] {
			dict[e] = -1
			continue
		}
		w, ok := writerOf[regVal{reg: mo.reg[e], val: mo.val[e]}]
		if !ok {
			if mo.val[e] != 0 {
				return g, fmt.Errorf("check: read %v has no matching write", h.Events[e].Op)
			}
			w = -1
		}
		dict[e] = w
	}

	var writes []int
	for e := 0; e < n; e++ {
		if mo.isWrite[e] {
			writes = append(writes, e)
		}
	}
	if len(writes) > 8 {
		return g, fmt.Errorf("check: session-guarantee search supports at most 8 writes, history has %d", len(writes))
	}
	seqs := allSequences(writes)

	widx := make([]int, n)
	pos := make([]int, n)
	for e := range widx {
		widx[e] = -1
		pos[e] = -1
	}
	for i, w := range writes {
		widx[w] = i
	}
	s := &sessionChecker{h: h, mo: mo, dict: dict, seqs: seqs, budget: opt.maxNodes(), widx: widx, pos: pos}
	raw := make(map[sessionKind]bool, 4)
	for _, k := range []sessionKind{kindMR, kindMW, kindRYW, kindWFR} {
		ok, err := s.check(k)
		if err != nil {
			return g, err
		}
		raw[k] = ok
	}
	g.MonotonicReads = raw[kindMR]
	// Attribution: the stronger checks are meaningful only when the
	// monotonic-view baseline holds.
	g.MonotonicWrites = raw[kindMW] || !raw[kindMR]
	g.ReadYourWrites = raw[kindRYW] || !raw[kindMR]
	g.WritesFollowReads = raw[kindWFR] || !raw[kindMR]
	return g, nil
}

// allSequences enumerates every ordered sequence over every subset of
// the given elements (including the empty sequence).
func allSequences(elems []int) [][]int {
	var out [][]int
	cur := make([]int, 0, len(elems))
	used := make([]bool, len(elems))
	var rec func()
	rec = func() {
		seq := make([]int, len(cur))
		copy(seq, cur)
		out = append(out, seq)
		for i, e := range elems {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, e)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

type sessionChecker struct {
	h      *history.History
	mo     *memOps
	dict   []int
	seqs   [][]int
	budget int
	widx   []int // event id -> dense write index (for memo packing), -1 otherwise
	pos    []int // scratch: event id -> position in the current sequence, -1 otherwise
}

// check decides one guarantee over every session.
func (s *sessionChecker) check(kind sessionKind) (bool, error) {
	for p := range s.h.Processes() {
		ok, err := s.checkSession(p, kind)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (s *sessionChecker) checkSession(p int, kind sessionKind) (bool, error) {
	var reads []int
	for _, e := range s.h.Processes()[p] {
		if !s.mo.isWrite[e] {
			reads = append(reads, e)
		}
	}
	if len(reads) == 0 {
		return true, nil
	}
	memo := make(map[uint64]bool)
	var rec func(i int, prev []int) (bool, error)
	rec = func(i int, prev []int) (bool, error) {
		if i == len(reads) {
			return true, nil
		}
		// Pack (read index, view sequence) into one word: the view is a
		// sequence over at most 8 distinct writes, folded base-9 (digit
		// 0 terminates, so prefixes cannot collide), the read index in
		// the low half.
		acc := uint64(0)
		for _, w := range prev {
			acc = acc*9 + uint64(s.widx[w]+1)
		}
		key := acc<<32 | uint64(i)
		if memo[key] {
			return false, nil
		}
		r := reads[i]
		for _, cand := range s.seqs {
			s.budget--
			if s.budget < 0 {
				return false, ErrBudget
			}
			if !isSubsequence(prev, cand) {
				continue
			}
			if !s.valueOK(r, cand) {
				continue
			}
			if !s.closureOK(kind, p, r, cand) {
				continue
			}
			ok, err := rec(i+1, cand)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		memo[key] = true
		return false, nil
	}
	return rec(0, nil)
}

// isSubsequence reports whether a appears within b in order.
func isSubsequence(a, b []int) bool {
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// valueOK checks that the last write to r's register in seq dictates
// r's value.
func (s *sessionChecker) valueOK(r int, seq []int) bool {
	last := -1
	for _, w := range seq {
		if s.mo.reg[w] == s.mo.reg[r] {
			last = w
		}
	}
	return last == s.dict[r]
}

// closureOK checks the guarantee-specific constraint on seq. The
// event-position index is kept in the reusable s.pos scratch (reset on
// exit), so the check allocates nothing.
func (s *sessionChecker) closureOK(kind sessionKind, p, r int, seq []int) bool {
	pos := s.pos
	for i, w := range seq {
		pos[w] = i
	}
	ok := s.closureHolds(kind, p, r, seq)
	for _, w := range seq {
		pos[w] = -1
	}
	return ok
}

func (s *sessionChecker) closureHolds(kind sessionKind, p, r int, seq []int) bool {
	pos := s.pos
	prog := s.h.Prog()
	switch kind {
	case kindMR:
		return true
	case kindMW:
		// Same-session earlier writes must be present, in order.
		for _, w := range seq {
			wp := s.h.Events[w].Proc
			for _, w0 := range s.h.Processes()[wp] {
				if w0 == w {
					break
				}
				if !s.mo.isWrite[w0] || !prog.Has(w0, w) {
					continue
				}
				if pos[w0] < 0 || pos[w0] > pos[w] {
					return false
				}
			}
		}
		return true
	case kindRYW:
		for _, w := range s.h.Processes()[p] {
			if s.mo.isWrite[w] && prog.Has(w, r) {
				if pos[w] < 0 {
					return false
				}
			}
		}
		return true
	case kindWFR:
		// For every write w in the view: any read its session made
		// before issuing w must have its dictating write in the view,
		// before w.
		for _, w := range seq {
			wp := s.h.Events[w].Proc
			for _, r0 := range s.h.Processes()[wp] {
				if r0 == w {
					break
				}
				if s.mo.isWrite[r0] || !prog.Has(r0, w) || s.dict[r0] < 0 {
					continue
				}
				p0 := pos[s.dict[r0]]
				if p0 < 0 || p0 > pos[w] {
					return false
				}
			}
		}
		return true
	}
	return false
}
