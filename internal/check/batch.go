package check

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repro/ccbm/internal/history"
)

// The batch engine: stream many histories through a bounded worker
// pool and classify each against every requested criterion, with an
// optional per-criterion wall-clock timeout. This is the scale path
// the cmd tools and the census build on — the per-history exponential
// searches stay single-threaded by default (cross-history parallelism
// has no coordination cost), while Options.Parallelism can additionally
// fan out the causal searches of each history when the batch is small
// and the histories are big.

// BatchItem is one history to classify. Index is echoed back in the
// result so streaming consumers can restore input order; Name is free
// text for reporting (file name, enumeration index, ...).
type BatchItem struct {
	Index int
	Name  string
	H     *history.History
}

// CriterionOutcome is the result of one checker on one history.
type CriterionOutcome struct {
	// Satisfied is meaningful only when Err == nil and !TimedOut.
	Satisfied bool
	// TimedOut reports that the per-criterion timeout elapsed before
	// the checker finished.
	TimedOut bool
	// BudgetExceeded reports that the checker ran out of MaxNodes
	// (Err is then a *ErrBudgetExceeded).
	BudgetExceeded bool
	// Err is the checker error, if any (budget, ω-encoding, a
	// cancelled batch context, ...).
	Err error
	// Explored is the number of search-tree nodes the checker visited.
	Explored int64
	// Pruned counts the frames and branches each pruner cut when
	// Options.Prune enabled any (zero otherwise).
	Pruned PruneStats
	// Elapsed is the checker's wall-clock time.
	Elapsed time.Duration
}

// ExtraChecker is a caller-supplied criterion the batch engine runs
// alongside the built-in ones, through the same worker pool and
// timeout machinery. The public facade's registry uses it to dispatch
// user-registered criteria; Fn follows the built-in checkers' contract
// (ctx.Err() on cancellation, ErrNotMemory to skip, ErrBudget wrapping
// on exhaustion).
type ExtraChecker struct {
	Name string
	Fn   func(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error)
}

// BatchResult is the classification of one history.
type BatchResult struct {
	Item BatchItem
	// Outcomes holds one entry per attempted criterion. CM on a
	// non-memory history is skipped entirely (no entry), mirroring
	// Classify.
	Outcomes map[Criterion]CriterionOutcome
	// ExtraOutcomes holds one entry per attempted ExtraChecker, keyed
	// by its name; extras returning ErrNotMemory are skipped like CM.
	ExtraOutcomes map[string]CriterionOutcome
	// Class collects the Satisfied verdicts of the criteria that
	// completed cleanly — the subset of Outcomes usable as a
	// Classification.
	Class Classification
	// LatticeViolations lists the Fig. 1 implication arrows violated by
	// Class (expected empty; non-empty means a checker bug).
	LatticeViolations [][2]Criterion
}

// Err returns the first criterion error in AllCriteria order (then
// ExtraChecker order), nil if every attempted checker completed
// (timeouts are not errors).
func (r *BatchResult) Err() error {
	for _, c := range AllCriteria {
		if o, ok := r.Outcomes[c]; ok && o.Err != nil {
			return o.Err
		}
	}
	for _, o := range r.ExtraOutcomes {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// BatchOptions tunes ClassifyAll.
type BatchOptions struct {
	// Options is passed to every checker invocation (MaxNodes,
	// Parallelism for the per-history causal searches, ...). The Stats
	// field must be nil; the engine installs a private one per check
	// and reports the count in CriterionOutcome.Explored.
	Options
	// Workers bounds the number of histories classified concurrently;
	// 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each (history, criterion) check's wall-clock time;
	// 0 means no timeout. A timed-out check reports TimedOut instead of
	// a verdict: the engine runs the checker under a context deadline,
	// which the search polls every few thousand nodes, so the check
	// returns within its poll interval of the deadline.
	Timeout time.Duration
	// Criteria selects the checkers to run; nil means AllCriteria
	// (with CM auto-skipped on non-memory histories).
	Criteria []Criterion
	// Extra lists caller-defined criteria to run in addition to
	// Criteria.
	Extra []ExtraChecker
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o BatchOptions) criteria() []Criterion {
	if o.Criteria != nil {
		return o.Criteria
	}
	return AllCriteria
}

// classifyOne runs every requested criterion on one item.
func classifyOne(ctx context.Context, it BatchItem, opt BatchOptions) BatchResult {
	res := BatchResult{
		Item:     it,
		Outcomes: make(map[Criterion]CriterionOutcome),
		Class:    make(Classification),
	}
	for _, c := range opt.criteria() {
		out := checkWithTimeout(ctx, opt.Options, opt.Timeout,
			func(ctx context.Context, o Options) (bool, error) {
				ok, _, err := Check(ctx, c, it.H, o)
				return ok, err
			})
		if errors.Is(out.Err, ErrNotMemory) {
			continue // criterion not applicable, mirror Classify
		}
		res.Outcomes[c] = out
		if out.Err == nil && !out.TimedOut {
			res.Class[c] = out.Satisfied
		}
	}
	for _, ex := range opt.Extra {
		fn := ex.Fn
		out := checkWithTimeout(ctx, opt.Options, opt.Timeout,
			func(ctx context.Context, o Options) (bool, error) {
				ok, _, err := fn(ctx, it.H, o)
				return ok, err
			})
		if errors.Is(out.Err, ErrNotMemory) {
			continue
		}
		if res.ExtraOutcomes == nil {
			res.ExtraOutcomes = make(map[string]CriterionOutcome)
		}
		res.ExtraOutcomes[ex.Name] = out
	}
	res.LatticeViolations = VerifyImplications(res.Class)
	return res
}

// checkWithTimeout runs one checker, bounding its wall-clock time with
// a context deadline. The search-based checkers poll the context every
// few thousand nodes, so the call returns within that poll interval of
// the deadline — no helper goroutine is needed. A deadline raised by
// the per-criterion timer reports TimedOut; a cancellation (or earlier
// deadline) of the batch context itself surfaces as the outcome error.
func checkWithTimeout(ctx context.Context, opt Options, timeout time.Duration, fn func(context.Context, Options) (bool, error)) CriterionOutcome {
	start := time.Now()
	stats := &Stats{}
	opt.Stats = stats
	cctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ok, err := fn(cctx, opt)
	timedOut := false
	if timeout > 0 && errors.Is(err, context.DeadlineExceeded) && ctxErr(ctx) == nil {
		// The per-criterion timer fired, not the caller's context.
		ok, err, timedOut = false, nil, true
	}
	return CriterionOutcome{
		Satisfied:      ok,
		TimedOut:       timedOut,
		BudgetExceeded: errors.Is(err, ErrBudget),
		Err:            err,
		Explored:       stats.Nodes,
		Pruned:         stats.Prune,
		Elapsed:        time.Since(start),
	}
}

// ClassifyAll streams items through a bounded worker pool and emits
// one BatchResult per item. The output channel is unordered (use
// BatchItem.Index to restore input order) and is closed once every
// item has been classified. The items channel must be closed by the
// producer; consuming the result channel to the end is required to
// release the workers. Cancelling ctx makes in-flight checks unwind
// within their poll interval; the remaining items still flow through
// (draining the input keeps producers unblocked), each reporting
// ctx.Err() in its outcomes.
func ClassifyAll(ctx context.Context, items <-chan BatchItem, opt BatchOptions) <-chan BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan BatchResult, opt.workers())
	var wg sync.WaitGroup
	wg.Add(opt.workers())
	for w := 0; w < opt.workers(); w++ {
		go func() {
			defer wg.Done()
			for it := range items {
				out <- classifyOne(ctx, it, opt)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// ClassifyBatch is ClassifyAll over a slice, returning results in
// input order. Index is overwritten with the slice position.
func ClassifyBatch(ctx context.Context, items []BatchItem, opt BatchOptions) []BatchResult {
	in := make(chan BatchItem)
	go func() {
		for i, it := range items {
			it.Index = i
			in <- it
		}
		close(in)
	}()
	res := make([]BatchResult, len(items))
	for r := range ClassifyAll(ctx, in, opt) {
		res[r.Item.Index] = r
	}
	return res
}
