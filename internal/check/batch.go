package check

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
)

// The batch engine: stream many histories through a bounded worker
// pool and classify each against every requested criterion, with an
// optional per-criterion wall-clock timeout. This is the scale path
// the cmd tools and the census build on — the per-history exponential
// searches stay single-threaded by default (cross-history parallelism
// has no coordination cost), while Options.Parallelism can additionally
// fan out the causal searches of each history when the batch is small
// and the histories are big.

// BatchItem is one history to classify. Index is echoed back in the
// result so streaming consumers can restore input order; Name is free
// text for reporting (file name, enumeration index, ...).
type BatchItem struct {
	Index int
	Name  string
	H     *history.History
}

// CriterionOutcome is the result of one checker on one history.
type CriterionOutcome struct {
	// Satisfied is meaningful only when Err == nil and !TimedOut.
	Satisfied bool
	// TimedOut reports that the per-criterion timeout elapsed before
	// the checker finished.
	TimedOut bool
	// BudgetExceeded reports that the checker ran out of MaxNodes
	// (Err is then a *ErrBudgetExceeded).
	BudgetExceeded bool
	// Err is the checker error, if any (budget, ω-encoding, ...).
	Err error
	// Elapsed is the checker's wall-clock time.
	Elapsed time.Duration
}

// BatchResult is the classification of one history.
type BatchResult struct {
	Item BatchItem
	// Outcomes holds one entry per attempted criterion. CM on a
	// non-memory history is skipped entirely (no entry), mirroring
	// Classify.
	Outcomes map[Criterion]CriterionOutcome
	// Class collects the Satisfied verdicts of the criteria that
	// completed cleanly — the subset of Outcomes usable as a
	// Classification.
	Class Classification
	// LatticeViolations lists the Fig. 1 implication arrows violated by
	// Class (expected empty; non-empty means a checker bug).
	LatticeViolations [][2]Criterion
}

// Err returns the first criterion error in AllCriteria order, nil if
// every attempted checker completed (timeouts are not errors).
func (r *BatchResult) Err() error {
	for _, c := range AllCriteria {
		if o, ok := r.Outcomes[c]; ok && o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// BatchOptions tunes ClassifyAll.
type BatchOptions struct {
	// Options is passed to every checker invocation (MaxNodes,
	// Parallelism for the per-history causal searches, ...). The
	// Interrupt field must be nil; the engine installs its own.
	Options
	// Workers bounds the number of histories classified concurrently;
	// 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each (history, criterion) check's wall-clock time;
	// 0 means no timeout. A timed-out check reports TimedOut instead of
	// a verdict and the search is interrupted promptly (see
	// Options.Interrupt).
	Timeout time.Duration
	// Criteria selects the checkers to run; nil means AllCriteria
	// (with CM auto-skipped on non-memory histories).
	Criteria []Criterion
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o BatchOptions) criteria() []Criterion {
	if o.Criteria != nil {
		return o.Criteria
	}
	return AllCriteria
}

// classifyOne runs every requested criterion on one item.
func classifyOne(it BatchItem, opt BatchOptions) BatchResult {
	res := BatchResult{
		Item:     it,
		Outcomes: make(map[Criterion]CriterionOutcome),
		Class:    make(Classification),
	}
	for _, c := range opt.criteria() {
		out := checkWithTimeout(c, it.H, opt.Options, opt.Timeout)
		if errors.Is(out.Err, ErrNotMemory) {
			continue // criterion not applicable, mirror Classify
		}
		res.Outcomes[c] = out
		if out.Err == nil && !out.TimedOut {
			res.Class[c] = out.Satisfied
		}
	}
	res.LatticeViolations = VerifyImplications(res.Class)
	return res
}

// checkWithTimeout runs one checker, bounding its wall-clock time.
// The timeout path sets an interrupt flag the search-based checkers
// poll every few thousand nodes, so the worker goroutine below is
// reclaimed almost immediately after the timer fires; the engine still
// waits only for the timer, not the unwind.
func checkWithTimeout(c Criterion, h *history.History, opt Options, timeout time.Duration) CriterionOutcome {
	start := time.Now()
	if timeout <= 0 {
		ok, _, err := Check(c, h, opt)
		return outcome(ok, err, false, start)
	}
	intr := &atomic.Bool{}
	opt.Interrupt = intr
	type reply struct {
		ok  bool
		err error
	}
	done := make(chan reply, 1)
	go func() {
		ok, _, err := Check(c, h, opt)
		done <- reply{ok, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		if errors.Is(r.err, ErrInterrupted) {
			// The timer fired while the reply was in flight.
			return outcome(false, nil, true, start)
		}
		return outcome(r.ok, r.err, false, start)
	case <-timer.C:
		intr.Store(true)
		return outcome(false, nil, true, start)
	}
}

func outcome(ok bool, err error, timedOut bool, start time.Time) CriterionOutcome {
	return CriterionOutcome{
		Satisfied:      ok,
		TimedOut:       timedOut,
		BudgetExceeded: errors.Is(err, ErrBudget),
		Err:            err,
		Elapsed:        time.Since(start),
	}
}

// ClassifyAll streams items through a bounded worker pool and emits
// one BatchResult per item. The output channel is unordered (use
// BatchItem.Index to restore input order) and is closed once every
// item has been classified. The items channel must be closed by the
// producer; consuming the result channel to the end is required to
// release the workers.
func ClassifyAll(items <-chan BatchItem, opt BatchOptions) <-chan BatchResult {
	out := make(chan BatchResult, opt.workers())
	var wg sync.WaitGroup
	wg.Add(opt.workers())
	for w := 0; w < opt.workers(); w++ {
		go func() {
			defer wg.Done()
			for it := range items {
				out <- classifyOne(it, opt)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// ClassifyBatch is ClassifyAll over a slice, returning results in
// input order. Index is overwritten with the slice position.
func ClassifyBatch(items []BatchItem, opt BatchOptions) []BatchResult {
	in := make(chan BatchItem)
	go func() {
		for i, it := range items {
			it.Index = i
			in <- it
		}
		close(in)
	}()
	res := make([]BatchResult, len(items))
	for r := range ClassifyAll(in, opt) {
		res[r.Item.Index] = r
	}
	return res
}
