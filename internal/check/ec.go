package check

import (
	"context"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
)

// EC reports whether the history is eventually consistent in the sense
// of Vogels (Sec. 5.1): if the processes stop updating, all local
// copies converge to a common state. On our encoding, the "limit" reads
// are the ω-events; EC requires all ω-events with the same input to
// return the same output. A history without ω-events is trivially EC
// (nothing is observed "at infinity"). Note that plain EC does not
// require the common state to be justified by any ordering of the
// updates — see UC for the strengthened version.
func EC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	type slot struct {
		e int
	}
	byInput := make(map[string]slot)
	for _, ev := range h.Events {
		if !ev.Omega || ev.Op.Hidden {
			continue
		}
		k := ev.Op.In.String()
		if prev, ok := byInput[k]; ok {
			if !h.Events[prev.e].Op.Out.Equal(ev.Op.Out) {
				return false, nil, nil
			}
		} else {
			byInput[k] = slot{e: ev.ID}
		}
	}
	return true, &Witness{}, nil
}

// UC reports whether the history is update consistent (Perrin et al.,
// IPDPS 2015 — the strengthening of eventual consistency the paper
// cites as [19]): there exists a total order on all the updates,
// containing the program order, such that every ω-event's output is
// correct in the state reached after applying all updates in that
// order. Causal convergence is strictly stronger (it additionally makes
// the shared order a causal order and constrains every event, not only
// the limit reads).
func UC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	updates := h.UpdatesView()
	omega := h.OmegaView()
	if omega.Empty() {
		return true, &Witness{}, nil
	}

	// Search over linearizations of the updates (respecting program
	// order among them); at the end, check every ω-event.
	run := newSearchRun(ctx, opt)
	defer run.record(opt)
	ls := &linSearcher{t: h.ADT, events: h.Events, budget: &run.budget, feed: run.feed}

	// Build an include set of updates plus ω-events, with every update
	// preceding every ω-event; ω outputs are visible, update outputs
	// are not checked (hidden). Predecessor sets are materialized once:
	// ω-events require every update, updates require their
	// program-order update predecessors.
	include := updates.Clone()
	include.UnionWith(omega)
	visible := omega
	base := h.ProgPreds()
	preds := make([]porder.Bitset, h.N())
	for e := range preds {
		p := base[e].Clone()
		if omega.Has(e) {
			p.UnionWith(updates)
			p.Clear(e)
		} else {
			p.IntersectWith(updates)
		}
		preds[e] = p
	}
	order, ok := ls.findLin(include, visible, preds)
	if err := run.err(); err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, &Witness{Linearization: order}, nil
}
