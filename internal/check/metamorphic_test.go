package check

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Metamorphic properties of the classification pipeline: the paper's
// criteria are defined up to isomorphism of the labelled partial
// order, so a classification must be invariant under
//
//   - value relabeling (a permutation of the data alphabet applied to
//     every input and output — the ADTs under test are
//     data-independent),
//   - process renaming (permuting the process indices), and
//   - event relabeling (re-building the history along any linear
//     extension of the program order, which permutes the dense event
//     ids),
//
// and every classification must respect the Fig. 1 implication
// lattice (VerifyImplications returns nothing). These are the
// oracle-free counterparts of the differential tests: they need no
// reference implementation, only symmetry.

// classifyOrFail classifies with the default options.
func classifyOrFail(t *testing.T, h *history.History, name string) Classification {
	t.Helper()
	cl, err := Classify(context.Background(), h, Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if bad := VerifyImplications(cl); len(bad) > 0 {
		t.Fatalf("%s: implication lattice violated: %v (classification %v)", name, bad, cl)
	}
	return cl
}

func sameClassification(t *testing.T, name string, a, b Classification) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: criteria sets differ: %v vs %v", name, a, b)
	}
	for c, v := range a {
		w, ok := b[c]
		if !ok || v != w {
			t.Fatalf("%s: %v: %v vs %v\nbase:    %v\nvariant: %v", name, c, v, w, a, b)
		}
	}
}

// mapOps rebuilds the history with every operation rewritten by f,
// preserving processes, program order, event ids and ω flags.
func mapOps(h *history.History, f func(spec.Operation) spec.Operation) *history.History {
	b := history.NewBuilder(h.ADT)
	for _, ev := range h.Events {
		if ev.Omega {
			b.AppendOmega(ev.Proc, f(ev.Op))
		} else {
			b.Append(ev.Proc, f(ev.Op))
		}
	}
	return b.Build()
}

// relabelValues applies a permutation of the positive value alphabet
// to every input argument and output value. 0 is fixed: it is the
// ADTs' structural default (initial reads), not a data value.
func relabelValues(h *history.History, perm map[int]int) *history.History {
	mapv := func(v int) int {
		if w, ok := perm[v]; ok {
			return w
		}
		return v
	}
	return mapOps(h, func(op spec.Operation) spec.Operation {
		in := op.In
		if len(in.Args) > 0 {
			args := make([]int, len(in.Args))
			for i, v := range in.Args {
				args[i] = mapv(v)
			}
			in = spec.NewInput(in.Method, args...)
		}
		out := op.Out
		if !out.Bot && len(out.Vals) > 0 {
			vals := make([]int, len(out.Vals))
			for i, v := range out.Vals {
				vals[i] = mapv(v)
			}
			out = spec.Output{Vals: vals}
		}
		op2 := spec.NewOp(in, out)
		if op.Hidden {
			op2 = op2.Hide()
		}
		return op2
	})
}

// renameProcesses rebuilds the history appending the processes in
// permuted order (process indices and event ids both change).
func renameProcesses(h *history.History, perm []int) *history.History {
	b := history.NewBuilder(h.ADT)
	for newP, oldP := range perm {
		for _, id := range h.Processes()[oldP] {
			ev := h.Events[id]
			if ev.Omega {
				b.AppendOmega(newP, ev.Op)
			} else {
				b.Append(newP, ev.Op)
			}
		}
	}
	return b.Build()
}

// relabelEvents rebuilds the history along a random linear extension
// of the program order: processes keep their identities, but the dense
// event ids are permuted.
func relabelEvents(h *history.History, r *rand.Rand) *history.History {
	b := history.NewBuilder(h.ADT)
	next := make([]int, len(h.Processes()))
	for {
		var ready []int
		for p, evs := range h.Processes() {
			if next[p] < len(evs) {
				ready = append(ready, p)
			}
		}
		if len(ready) == 0 {
			break
		}
		p := ready[r.Intn(len(ready))]
		ev := h.Events[h.Processes()[p][next[p]]]
		if ev.Omega {
			b.AppendOmega(p, ev.Op)
		} else {
			b.Append(p, ev.Op)
		}
		next[p]++
	}
	return b.Build()
}

// dataIndependent reports whether value relabeling is
// meaning-preserving for the ADT. Counter outputs are counts
// (arithmetic, not opaque data), so it is excluded.
func dataIndependent(t spec.ADT) bool {
	return t.Name() != "Counter"
}

func TestMetamorphicClassification(t *testing.T) {
	rounds := 120
	if testing.Short() {
		rounds = 30
	}
	r := rand.New(rand.NewSource(3141))
	perms3 := [][3]int{{1, 2, 3}, {2, 1, 3}, {3, 2, 1}, {1, 3, 2}, {2, 3, 1}, {3, 1, 2}}
	for i := 0; i < rounds; i++ {
		h := randomHistory(r)
		name := fmt.Sprintf("random[%d] %s", i, h.ADT.Name())
		base := classifyOrFail(t, h, name)

		if dataIndependent(h.ADT) {
			p := perms3[r.Intn(len(perms3))]
			perm := map[int]int{1: p[0], 2: p[1], 3: p[2]}
			hv := relabelValues(h, perm)
			sameClassification(t, name+" value-relabeled", base, classifyOrFail(t, hv, name+" value-relabeled"))
		}

		nproc := len(h.Processes())
		pperm := r.Perm(nproc)
		hp := renameProcesses(h, pperm)
		sameClassification(t, name+" proc-renamed", base, classifyOrFail(t, hp, name+" proc-renamed"))

		he := relabelEvents(h, r)
		sameClassification(t, name+" event-relabeled", base, classifyOrFail(t, he, name+" event-relabeled"))
	}
}

// TestMetamorphicParseShuffle re-parses each history from its own
// textual rendering with the process lines shuffled: the file-level
// counterpart of process renaming, additionally covering the
// Parse/String round trip.
func TestMetamorphicParseShuffle(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	r := rand.New(rand.NewSource(2718))
	for i := 0; i < rounds; i++ {
		h := randomHistory(r)
		name := fmt.Sprintf("random[%d] %s", i, h.ADT.Name())
		base := classifyOrFail(t, h, name)

		lines := strings.Split(strings.TrimSpace(h.String()), "\n")
		header, procLines := lines[0], lines[1:]
		r.Shuffle(len(procLines), func(a, b int) {
			procLines[a], procLines[b] = procLines[b], procLines[a]
		})
		h2, err := history.Parse(header + "\n" + strings.Join(procLines, "\n"))
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", name, err, h.String())
		}
		sameClassification(t, name+" line-shuffled", base, classifyOrFail(t, h2, name+" line-shuffled"))
	}
}

// TestMetamorphicFig3 applies the same relations to the paper's own
// histories (and checks the lattice on each), so the properties are
// exercised on the hand-constructed corpus too, not only on generator
// output.
func TestMetamorphicFig3(t *testing.T) {
	r := rand.New(rand.NewSource(1618))
	for _, text := range parFig3Texts {
		h := history.MustParse(text)
		name := strings.SplitN(text, "\n", 2)[0]
		base := classifyOrFail(t, h, name)
		if dataIndependent(h.ADT) {
			hv := relabelValues(h, map[int]int{1: 3, 2: 1, 3: 2})
			sameClassification(t, name+" value-relabeled", base, classifyOrFail(t, hv, name))
		}
		hp := renameProcesses(h, []int{1, 0})
		sameClassification(t, name+" proc-renamed", base, classifyOrFail(t, hp, name))
		he := relabelEvents(h, r)
		sameClassification(t, name+" event-relabeled", base, classifyOrFail(t, he, name))
	}
}

// adtNameRoundTrip guards the String→Parse bridge the shuffle test
// relies on for every ADT the random generator emits.
func TestDiffADTNamesParse(t *testing.T) {
	for _, a := range diffADTs {
		if _, err := adt.Lookup(a.Name()); err != nil {
			t.Errorf("adt.Lookup(%q): %v", a.Name(), err)
		}
	}
}
