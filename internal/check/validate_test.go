package check_test

import (
	"context"
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/check"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/paperfig"
	"github.com/paper-repro/ccbm/internal/spec"
)

// randomHistory builds a random (often inconsistent) history over the
// given ADT using the provided op generator.
func randomHistory(t spec.ADT, rng *rand.Rand, procs, opsPer int, gen func(rng *rand.Rand) spec.Operation) *history.History {
	b := history.NewBuilder(t)
	for p := 0; p < procs; p++ {
		for i := 0; i < opsPer; i++ {
			b.Append(p, gen(rng))
		}
	}
	return b.Build()
}

// TestWitnessesValidate: every acceptance by WCC/CC/CCv/SC on random
// register and window-stream histories must come with a witness that
// the independent validator accepts — the anti-bug pact between the
// memoized searchers and the plain replay of the definitions.
func TestWitnessesValidate(t *testing.T) {
	reg := adt.Register{}
	w2 := adt.NewWindowStream(2)
	genReg := func(rng *rand.Rand) spec.Operation {
		if rng.Intn(2) == 0 {
			return spec.NewOp(spec.NewInput("w", rng.Intn(3)+1), spec.Bot)
		}
		return spec.NewOp(spec.NewInput("r"), spec.IntOutput(rng.Intn(4)))
	}
	genW2 := func(rng *rand.Rand) spec.Operation {
		if rng.Intn(2) == 0 {
			return spec.NewOp(spec.NewInput("w", rng.Intn(3)+1), spec.Bot)
		}
		return spec.NewOp(spec.NewInput("r"), spec.TupleOutput(rng.Intn(3), rng.Intn(3)))
	}

	accepted := map[check.Criterion]int{}
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 400; trial++ {
		var h *history.History
		if trial%2 == 0 {
			h = randomHistory(reg, rng, 2, 3, genReg)
		} else {
			h = randomHistory(w2, rng, 2, 3, genW2)
		}
		for _, crit := range []check.Criterion{check.CritWCC, check.CritCC, check.CritCCv} {
			ok, w, err := check.Check(context.Background(), crit, h, check.Options{})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, crit, err)
			}
			if !ok {
				continue
			}
			accepted[crit]++
			if err := check.ValidateCausalWitness(h, crit, w); err != nil {
				t.Fatalf("trial %d: %v accepted with invalid witness: %v\n%s", trial, crit, err, h)
			}
		}
		ok, w, err := check.SC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted[check.CritSC]++
			if err := check.ValidateSCWitness(h, w); err != nil {
				t.Fatalf("trial %d: SC accepted with invalid witness: %v\n%s", trial, err, h)
			}
		}
	}
	for _, crit := range []check.Criterion{check.CritWCC, check.CritCC, check.CritCCv, check.CritSC} {
		if accepted[crit] == 0 {
			t.Errorf("%v never accepted a random history; validation test is vacuous", crit)
		}
	}
}

// TestPaperFigureWitnessesValidate runs the validator over the Fig. 3
// fixtures for every criterion that accepts them.
func TestPaperFigureWitnessesValidate(t *testing.T) {
	for _, f := range paperfig.Fig3() {
		for _, h := range []*history.History{f.History(), f.FiniteHistory()} {
			for _, crit := range []check.Criterion{check.CritWCC, check.CritCC, check.CritCCv} {
				ok, w, err := check.Check(context.Background(), crit, h, check.Options{})
				if err != nil {
					t.Fatalf("%s %v: %v", f.Name, crit, err)
				}
				if !ok {
					continue
				}
				if err := check.ValidateCausalWitness(h, crit, w); err != nil {
					t.Errorf("%s: %v witness invalid: %v", f.Name, crit, err)
				}
			}
		}
	}
}

// TestValidatorRejectsTampering: corrupting a genuine witness must be
// detected (the validator is not a rubber stamp).
func TestValidatorRejectsTampering(t *testing.T) {
	b := history.NewBuilder(adt.Register{})
	b.Append(0, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	b.Append(0, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	b.Append(1, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	h := b.Build()

	ok, w, err := check.CC(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("fixture must be CC: ok=%v err=%v", ok, err)
	}
	if err := check.ValidateCausalWitness(h, check.CritCC, w); err != nil {
		t.Fatalf("genuine witness rejected: %v", err)
	}

	// Tamper 1: swap the commit order.
	bad := *w
	bad.Order = []int{w.Order[1], w.Order[0], w.Order[2]}
	if err := check.ValidateCausalWitness(h, check.CritCC, &bad); err == nil {
		t.Error("reordered witness accepted")
	}

	// Tamper 2: drop an event's program past from its causal past.
	bad2 := *w
	p2 := append(w.Pasts[:0:0], w.Pasts...)
	p2[1] = p2[1].Clone()
	p2[1].Clear(0) // event 1's program predecessor 0
	bad2.Pasts = p2
	if err := check.ValidateCausalWitness(h, check.CritCC, &bad2); err == nil {
		t.Error("witness with truncated causal past accepted")
	}

	// Tamper 3: nil witness.
	if err := check.ValidateCausalWitness(h, check.CritCC, nil); err == nil {
		t.Error("nil witness accepted")
	}
}
