package check_test

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/paperfig"
	"github.com/paper-repro/ccbm/internal/porder"
)

// TestFig2TimeZones is experiment E2: on the 12-event, 3-process
// history shaped like the paper's Fig. 2, the six time zones of an
// event partition the history, program zones are contained in causal
// zones, and zone structure behaves as drawn.
func TestFig2TimeZones(t *testing.T) {
	h, extra := paperfig.Fig2History()
	causal := check.CausalOrderFrom(h, extra)
	if causal == nil {
		t.Fatal("Fig. 2 causal order is cyclic")
	}
	n := h.N()
	for e := 0; e < n; e++ {
		z := check.ZonesOf(h, causal, e)
		// The five non-present zones plus {e} partition the events.
		total := z.CausalPast.Count() + z.CausalFuture.Count() + z.ConcurrentPresent.Count() + 1
		if total != n {
			t.Fatalf("event %d: zones do not partition (%d of %d)", e, total, n)
		}
		if z.CausalPast.Intersects(z.CausalFuture) {
			t.Fatalf("event %d: past and future intersect", e)
		}
		if !z.ProgramPast.SubsetOf(z.CausalPast) {
			t.Fatalf("event %d: program past outside causal past", e)
		}
		if !z.ProgramFuture.SubsetOf(z.CausalFuture) {
			t.Fatalf("event %d: program future outside causal future", e)
		}
	}

	// The middle event of the middle process (σ7 in the figure, our
	// event id 6 = p1's third event) must have non-empty versions of
	// all six zones, as the figure draws.
	z := check.ZonesOf(h, causal, 6)
	if z.ProgramPast.Empty() || z.CausalPast.Count() <= z.ProgramPast.Count() {
		t.Fatalf("σ7 causal past %v must strictly contain program past %v", z.CausalPast, z.ProgramPast)
	}
	if z.ProgramFuture.Empty() || z.CausalFuture.Count() <= z.ProgramFuture.Count() {
		t.Fatalf("σ7 causal future %v must strictly contain program future %v", z.CausalFuture, z.ProgramFuture)
	}
	if z.ConcurrentPresent.Empty() {
		t.Fatal("σ7 must have a concurrent present")
	}
}

// TestZonesTotalOrder: under a total causal order (sequential
// consistency's causal order, Fig. 2d) the concurrent present of every
// event is empty.
func TestZonesTotalOrder(t *testing.T) {
	h, _ := paperfig.Fig2History()
	rel := porder.NewRel(h.N())
	for i := 0; i < h.N(); i++ {
		for j := i + 1; j < h.N(); j++ {
			rel.Add(i, j)
		}
	}
	// A total order is only a causal order if it contains the program
	// order; our event ids happen to be topologically compatible except
	// for cross-process edges, so check first.
	for i := 0; i < h.N(); i++ {
		h.Prog().Succ[i].ForEach(func(j int) {
			if j < i {
				t.Skip("event numbering incompatible with the total order")
			}
		})
	}
	for e := 0; e < h.N(); e++ {
		z := check.ZonesOf(h, rel, e)
		if !z.ConcurrentPresent.Empty() {
			t.Fatalf("event %d has concurrent present under a total order", e)
		}
	}
}

// TestCausalOrderFromRejectsCycles: adding an edge against program
// order must be detected.
func TestCausalOrderFromRejectsCycles(t *testing.T) {
	h, _ := paperfig.Fig2History()
	// Program order has 0 -> 1 (both on p0); adding 1 -> 0 is a cycle.
	if check.CausalOrderFrom(h, [][2]int{{1, 0}}) != nil {
		t.Fatal("cyclic causal order accepted")
	}
}

// TestZonesWitnessOrder: the causal order produced by the CC checker
// for Fig. 3c yields zones consistent with the paper's reading — each
// read has the other process's write in its causal past.
func TestZonesWitnessOrder(t *testing.T) {
	f, _ := paperfig.Fig3ByName("3c")
	h := f.History()
	ok, w, err := check.CC(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("CC(3c) = %v %v", ok, err)
	}
	// Rebuild the witness causal order from the pasts.
	var edges [][2]int
	for e, past := range w.Pasts {
		if past == nil {
			continue
		}
		past.ForEach(func(f int) { edges = append(edges, [2]int{f, e}) })
	}
	causal := check.CausalOrderFrom(h, edges)
	if causal == nil {
		t.Fatal("witness causal order is cyclic")
	}
	// Events: 0 = w(1), 1 = r/(2,1), 2 = w(2), 3 = r/(1,2).
	z1 := check.ZonesOf(h, causal, 1)
	if !z1.CausalPast.Has(2) {
		t.Fatal("r/(2,1) lacks w(2) in its causal past")
	}
	z3 := check.ZonesOf(h, causal, 3)
	if !z3.CausalPast.Has(0) {
		t.Fatal("r/(1,2) lacks w(1) in its causal past")
	}
}
