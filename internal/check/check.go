package check

import (
	"context"
	"errors"
	"fmt"

	"github.com/paper-repro/ccbm/internal/history"
)

// Criterion identifies one of the consistency criteria studied in the
// paper (Fig. 1) plus the memory-specific causal memory criterion.
type Criterion int

// The criteria, from weakest to strongest along the two branches of
// Fig. 1.
const (
	CritEC  Criterion = iota // eventual consistency
	CritUC                   // update consistency ([19])
	CritPC                   // pipelined consistency (PRAM)
	CritWCC                  // weak causal consistency (Def. 8)
	CritCCv                  // causal convergence (Def. 12)
	CritCC                   // causal consistency (Def. 9)
	CritCM                   // causal memory (Def. 11; memory only)
	CritSC                   // sequential consistency (Def. 5)
)

// AllCriteria lists every criterion in display order.
var AllCriteria = []Criterion{CritEC, CritUC, CritPC, CritWCC, CritCCv, CritCC, CritCM, CritSC}

// String returns the paper's abbreviation.
func (c Criterion) String() string {
	switch c {
	case CritEC:
		return "EC"
	case CritUC:
		return "UC"
	case CritPC:
		return "PC"
	case CritWCC:
		return "WCC"
	case CritCCv:
		return "CCv"
	case CritCC:
		return "CC"
	case CritCM:
		return "CM"
	case CritSC:
		return "SC"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// ErrBudgetExceeded is the typed error Check returns when a checker
// runs out of its MaxNodes search budget, so batch callers can tell
// resource exhaustion apart from genuine verdicts and from parse or
// encoding errors. It unwraps to ErrBudget: both
// errors.Is(err, check.ErrBudget) and
// errors.As(err, *(*check.ErrBudgetExceeded)) hold, even after further
// %w wrapping.
type ErrBudgetExceeded struct {
	Criterion Criterion
	MaxNodes  int
}

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("check: %v search budget exceeded (MaxNodes=%d)", e.Criterion, e.MaxNodes)
}

// Unwrap ties the typed error to the ErrBudget sentinel the individual
// checkers return.
func (e *ErrBudgetExceeded) Unwrap() error { return ErrBudget }

// Check runs a single criterion's checker. A cancelled or expired
// context surfaces as ctx.Err(); budget exhaustion surfaces as
// *ErrBudgetExceeded carrying the criterion and the budget.
func Check(ctx context.Context, c Criterion, h *history.History, opt Options) (bool, *Witness, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ok, w, err := checkRaw(ctx, c, h, opt)
	if errors.Is(err, ErrBudget) && !errors.As(err, new(*ErrBudgetExceeded)) {
		err = &ErrBudgetExceeded{Criterion: c, MaxNodes: opt.maxNodes()}
	}
	return ok, w, err
}

func checkRaw(ctx context.Context, c Criterion, h *history.History, opt Options) (bool, *Witness, error) {
	switch c {
	case CritEC:
		return EC(ctx, h, opt)
	case CritUC:
		return UC(ctx, h, opt)
	case CritPC:
		return PC(ctx, h, opt)
	case CritWCC:
		return WCC(ctx, h, opt)
	case CritCCv:
		return CCv(ctx, h, opt)
	case CritCC:
		return CC(ctx, h, opt)
	case CritCM:
		return CM(ctx, h, opt)
	case CritSC:
		return SC(ctx, h, opt)
	default:
		return false, nil, fmt.Errorf("check: unknown criterion %v", c)
	}
}

// Classification maps each criterion to the outcome of its check.
type Classification map[Criterion]bool

// Classify runs every applicable checker on the history. CM is only
// attempted on memory histories; its absence from the result map means
// "not applicable". Checkers that exceed their budget surface an error.
func Classify(ctx context.Context, h *history.History, opt Options) (Classification, error) {
	out := make(Classification, len(AllCriteria))
	for _, c := range AllCriteria {
		ok, _, err := Check(ctx, c, h, opt)
		if err != nil {
			if c == CritCM && err == ErrNotMemory {
				continue
			}
			return nil, fmt.Errorf("%v: %w", c, err)
		}
		out[c] = ok
	}
	return out, nil
}

// Implications returns the paper's Fig. 1 arrows as (stronger, weaker)
// pairs: every C1-consistent history must also be C2-consistent.
// CC ⇒ PC is Prop. 2's corollary; SC ⇒ CC and SC ⇒ CCv are the
// "strongest" arrows; CCv ⇒ EC holds on the ω-encoding (the shared
// total order makes ω-reads agree); CCv ⇒ UC is Sec. 5.1's remark on
// strong update consistency.
func Implications() [][2]Criterion {
	return [][2]Criterion{
		{CritSC, CritCC},
		{CritSC, CritCCv},
		{CritCC, CritPC},
		{CritCC, CritWCC},
		{CritCCv, CritWCC},
		{CritCCv, CritEC},
		{CritCCv, CritUC},
		{CritUC, CritEC},
	}
}

// VerifyImplications checks every Fig. 1 arrow on a classification and
// returns the violated pairs (expected: none).
func VerifyImplications(cl Classification) [][2]Criterion {
	var bad [][2]Criterion
	for _, imp := range Implications() {
		stronger, weaker := imp[0], imp[1]
		s, okS := cl[stronger]
		w, okW := cl[weaker]
		if okS && okW && s && !w {
			bad = append(bad, imp)
		}
	}
	return bad
}
