package check

import (
	"fmt"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/spec"
)

// This file validates witnesses *independently* of the search that
// produced them: a small, direct transcription of Defs. 8, 9 and 12
// that replays each per-event linearization against the sequential
// specification. It exists as a safety net — the causal searchers are
// heavily memoized and pruned, and a bug there would silently admit
// bad histories; re-deriving every acceptance from first principles
// catches that class of bug. The property tests run it on every
// accepted random history.

// ValidateCausalWitness checks that w is genuine evidence that h
// satisfies the criterion crit (one of CritWCC, CritCC, CritCCv). It
// returns nil when every requirement of the corresponding definition
// holds, and a descriptive error otherwise.
func ValidateCausalWitness(h *history.History, crit Criterion, w *Witness) error {
	if w == nil {
		return fmt.Errorf("check: nil witness")
	}
	n := h.N()
	if len(w.Order) != n || len(w.Pasts) != n {
		return fmt.Errorf("check: witness covers %d/%d events", len(w.Order), n)
	}

	// The commit order must be a permutation; position lookup.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, e := range w.Order {
		if e < 0 || e >= n || pos[e] != -1 {
			return fmt.Errorf("check: witness order is not a permutation")
		}
		pos[e] = i
	}

	progPreds := h.Prog().Preds()
	updates := h.Updates()
	omega := h.OmegaEvents()

	for e := 0; e < n; e++ {
		past := w.Pasts[e]
		if past.Has(e) {
			return fmt.Errorf("check: event %d contained in its own past", e)
		}
		// → contains 7→: program predecessors are in the past.
		if !progPreds[e].SubsetOf(past) {
			return fmt.Errorf("check: event %d: program past escapes causal past", e)
		}
		// → is transitive on the recorded pasts.
		var terr error
		past.ForEach(func(f int) {
			if terr == nil && !w.Pasts[f].SubsetOf(past) {
				terr = fmt.Errorf("check: event %d: causal past not downward closed at %d", e, f)
			}
			if terr == nil && pos[f] >= pos[e] {
				terr = fmt.Errorf("check: event %d: past event %d not committed earlier", e, f)
			}
		})
		if terr != nil {
			return terr
		}
		// Cofiniteness encoding: ω-events see every update (Def. 7's
		// role in our finite encoding).
		if omega.Has(e) {
			missing := updates.Clone()
			missing.DiffWith(past)
			missing.Clear(e)
			if !missing.Empty() {
				return fmt.Errorf("check: ω-event %d is missing updates from its causal past", e)
			}
		}
	}

	for e := 0; e < n; e++ {
		visible := porder.NewBitset(n)
		visible.Set(e)
		if crit == CritCC {
			p := h.Events[e].Proc
			if p >= 0 {
				visible.UnionWith(h.ProcEvents(p))
			}
		}
		var lin []int
		switch crit {
		case CritCCv:
			// Def. 12: the linearization is ⌊e⌋ sorted by the shared
			// total order, then e.
			lin = make([]int, 0, w.Pasts[e].Count()+1)
			for _, f := range w.Order {
				if w.Pasts[e].Has(f) {
					lin = append(lin, f)
				}
			}
			lin = append(lin, e)
			// When the checker recorded its per-event linearizations,
			// cross-check them: Def. 12 forces the linearization, so a
			// recorded one that differs from ⌊e⌋ sorted by the shared
			// order betrays a search bug even if some other lin replays.
			if len(w.PerEvent) == n && w.PerEvent[e] != nil {
				if len(w.PerEvent[e]) != len(lin) {
					return fmt.Errorf("check: event %d: recorded CCv linearization has %d events, want %d", e, len(w.PerEvent[e]), len(lin))
				}
				for i := range lin {
					if w.PerEvent[e][i] != lin[i] {
						return fmt.Errorf("check: event %d: recorded CCv linearization deviates from the shared order at position %d", e, i)
					}
				}
			}
		case CritWCC, CritCC:
			if len(w.PerEvent) != n || w.PerEvent[e] == nil {
				return fmt.Errorf("check: event %d: missing per-event linearization", e)
			}
			lin = w.PerEvent[e]
			// The linearization must be exactly ⌊e⌋ ∪ {e}, each once.
			seen := porder.NewBitset(n)
			for _, f := range lin {
				if seen.Has(f) {
					return fmt.Errorf("check: event %d: duplicate %d in linearization", e, f)
				}
				seen.Set(f)
			}
			want := w.Pasts[e].Clone()
			want.Set(e)
			if !seen.SubsetOf(want) || !want.SubsetOf(seen) {
				return fmt.Errorf("check: event %d: linearization is not ⌊e⌋ ∪ {e}", e)
			}
			// It must respect the causal order among its members.
			at := make(map[int]int, len(lin))
			for i, f := range lin {
				at[f] = i
			}
			for _, f := range lin {
				var oerr error
				w.Pasts[f].ForEach(func(g int) {
					if j, ok := at[g]; ok && oerr == nil && j >= at[f] {
						oerr = fmt.Errorf("check: event %d: linearization violates causal order %d → %d", e, g, f)
					}
				})
				if oerr != nil {
					return oerr
				}
			}
		default:
			return fmt.Errorf("check: ValidateCausalWitness does not handle %v", crit)
		}
		if err := replay(h, lin, visible); err != nil {
			return fmt.Errorf("check: event %d: %w", e, err)
		}
	}
	return nil
}

// replay runs the operations of lin from the initial state, comparing
// the output of every visible, non-hidden event with its record.
func replay(h *history.History, lin []int, visible porder.Bitset) error {
	q := h.ADT.Init()
	for _, f := range lin {
		var out spec.Output
		q, out = h.ADT.Step(q, h.Events[f].Op.In)
		if visible.Has(f) && !h.Events[f].Op.Hidden && !out.Equal(h.Events[f].Op.Out) {
			return fmt.Errorf("replay: event %d output %v, recorded %v", f, out, h.Events[f].Op.Out)
		}
	}
	return nil
}

// ValidateWitness dispatches to the checker-independent validator for
// crit. It covers the criteria whose witnesses carry enough structure
// to re-derive the acceptance from first principles (the causal family
// and SC); for the rest it reports that no independent validator
// exists rather than vacuously succeeding.
func ValidateWitness(h *history.History, crit Criterion, w *Witness) error {
	switch crit {
	case CritWCC, CritCC, CritCCv:
		return ValidateCausalWitness(h, crit, w)
	case CritSC:
		return ValidateSCWitness(h, w)
	default:
		return fmt.Errorf("check: no independent validator for %v", crit)
	}
}

// ValidateSCWitness checks an SC witness: a single admissible
// linearization of all events respecting the program order.
func ValidateSCWitness(h *history.History, w *Witness) error {
	if w == nil || len(w.Linearization) != h.N() {
		return fmt.Errorf("check: SC witness missing or incomplete")
	}
	pos := make([]int, h.N())
	for i := range pos {
		pos[i] = -1
	}
	for i, e := range w.Linearization {
		if e < 0 || e >= h.N() || pos[e] != -1 {
			return fmt.Errorf("check: SC witness is not a permutation")
		}
		pos[e] = i
	}
	preds := h.Prog().Preds()
	for e := 0; e < h.N(); e++ {
		var perr error
		preds[e].ForEach(func(f int) {
			if perr == nil && pos[f] >= pos[e] {
				perr = fmt.Errorf("check: SC witness violates program order %d 7→ %d", f, e)
			}
		})
		if perr != nil {
			return perr
		}
	}
	return replay(h, w.Linearization, porder.FullBitset(h.N()))
}
