package check_test

import (
	"context"
	"strings"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/paperfig"
	"github.com/paper-repro/ccbm/internal/spec"
)

// projectRegister extracts the sub-history of a memory history that
// touches one register, re-labelled over the single-register ADT.
func projectRegister(t *testing.T, h *history.History, reg string) *history.History {
	t.Helper()
	b := history.NewBuilder(adt.Register{})
	for p, events := range h.Processes() {
		for _, e := range events {
			op := h.Events[e].Op
			m := op.In.Method
			if !strings.HasSuffix(m, reg) || (m[0] != 'w' && m[0] != 'r') {
				continue
			}
			b.Append(p, spec.Operation{In: spec.NewInput(string(m[0]), op.In.Args...), Out: op.Out, Hidden: op.Hidden})
		}
	}
	return b.Build()
}

// TestNonComposability demonstrates the paper's remark (Sec. 4.2) that
// causal consistency is not composable: in Fig. 3h's history, every
// single register taken alone is causally consistent — yet the pool of
// registers is not. This is exactly why Def. 10 defines causal memory
// as a causally consistent pool of registers rather than a pool of
// causally consistent registers.
func TestNonComposability(t *testing.T) {
	f, ok := paperfig.Fig3ByName("3h")
	if !ok {
		t.Fatal("missing fixture 3h")
	}
	h := f.History()

	whole, _, err := check.CC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if whole {
		t.Fatal("Fig. 3h must not be causally consistent as a pool")
	}

	for _, reg := range []string{"a", "b", "c", "d", "e"} {
		sub := projectRegister(t, h, reg)
		if sub.N() == 0 {
			t.Fatalf("register %s has no events", reg)
		}
		ok, _, err := check.CC(context.Background(), sub, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("register %s alone is not CC; composability witness broken:\n%s", reg, sub)
		}
	}
}

// TestComposabilityOfSC: sequential consistency is not composable
// either (a classical fact); but the projections of an SC history are
// always SC — inclusion holds in the easy direction. Checked on
// Fig. 3d extended to memory via a small SC memory history.
func TestProjectionsOfSCHistoryAreSC(t *testing.T) {
	h := history.MustParse(`adt: M[x,y]
p0: wx(1) ry/2
p1: wy(2) rx/1`)
	ok, _, err := check.SC(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("base history should be SC (ok=%v err=%v)", ok, err)
	}
	for _, reg := range []string{"x", "y"} {
		sub := projectRegister(t, h, reg)
		ok, _, err := check.SC(context.Background(), sub, check.Options{})
		if err != nil || !ok {
			t.Fatalf("projection on %s not SC (ok=%v err=%v)", reg, ok, err)
		}
	}
}
