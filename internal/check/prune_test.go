package check

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

// The differential harness for the pruning layer: every pruner
// configuration must return the same verdict (and the same error
// class) as the exhaustive search, on the paper's corpus, the
// metamorphic variants, an exhaustive mini-census and seeded random
// histories — for all of WCC, CC and CCv. Canonicalization and
// sleep-set exclusion additionally preserve the witness bit for bit;
// the symmetry quotient may return a renamed equivalent, so its
// witnesses are instead re-validated by the checker-independent
// validator (validate.go). Run with -race to exercise the shared
// canonical table in the parallel pipeline (the CI prune-equivalence
// job does).

// pruneConfigs enumerates the pruner configurations under test: each
// pruner alone, the witness-preserving pair, and everything.
var pruneConfigs = []struct {
	name string
	cfg  Prune
}{
	{"canon", Prune{Canon: true}},
	{"sleep", Prune{Sleep: true}},
	{"canon+sleep", Prune{Canon: true, Sleep: true}},
	{"symmetry", Prune{Symmetry: true}},
	{"all", PruneAll()},
}

// comparePruned checks every pruner configuration against the
// exhaustive sequential search on all three causal criteria, and the
// parallel pruned pipeline against the sequential pruned search.
func comparePruned(t *testing.T, h *history.History, name string) {
	t.Helper()
	for _, c := range []Criterion{CritWCC, CritCC, CritCCv} {
		okS, wS, errS := Check(context.Background(), c, h, Options{})
		for _, pc := range pruneConfigs {
			okP, wP, errP := Check(context.Background(), c, h, Options{Prune: pc.cfg})
			if okS != okP || (errS == nil) != (errP == nil) {
				t.Fatalf("%s: %v: exhaustive (%v, %v) != pruned[%s] (%v, %v)",
					name, c, okS, errS, pc.name, okP, errP)
			}
			if !pc.cfg.Symmetry {
				// Canonicalization and sleep sets always keep the
				// lexicographically first witness alive: bit-identical.
				if !reflect.DeepEqual(wS, wP) {
					t.Fatalf("%s: %v: witness diverged under %s\nexhaustive: %+v\npruned:     %+v",
						name, c, pc.name, wS, wP)
				}
			} else if okP {
				// The symmetry quotient may surface a renamed
				// equivalent; it must still be a legal witness.
				if err := ValidateWitness(h, c, wP); err != nil {
					t.Fatalf("%s: %v: pruned[%s] witness invalid: %v", name, c, pc.name, err)
				}
			}
			// The parallel pipeline shares the pruning tables across
			// workers; its verdict and witness must match the pruned
			// sequential search bit for bit.
			okPar, wPar, errPar := Check(context.Background(), c, h, Options{Prune: pc.cfg, Parallelism: 8})
			if okP != okPar || (errP == nil) != (errPar == nil) {
				t.Fatalf("%s: %v: pruned[%s] sequential (%v, %v) != parallel (%v, %v)",
					name, c, pc.name, okP, errP, okPar, errPar)
			}
			if !reflect.DeepEqual(wP, wPar) {
				t.Fatalf("%s: %v: pruned[%s] parallel witness diverged\nseq: %+v\npar: %+v",
					name, c, pc.name, wP, wPar)
			}
		}
	}
}

func TestPruneFig3Corpus(t *testing.T) {
	forceParallel(t)
	for _, text := range parFig3Texts {
		h := history.MustParse(text)
		name := strings.SplitN(text, "\n", 2)[0]
		comparePruned(t, h, name)
		comparePruned(t, h.StripOmega(), name+" (finite)")
	}
}

// TestPruneMetamorphicCorpus runs the differential check over the
// metamorphic variants of the corpus: value relabelings, process
// renamings and event relabelings all preserve the criteria, so
// pruned and exhaustive searches must agree on every variant too
// (process renaming in particular permutes the symmetry classes).
func TestPruneMetamorphicCorpus(t *testing.T) {
	forceParallel(t)
	r := rand.New(rand.NewSource(8))
	for i, text := range parFig3Texts {
		h := history.MustParse(text)
		name := fmt.Sprintf("fig3[%d]", i)
		if dataIndependent(h.ADT) {
			comparePruned(t, relabelValues(h, map[int]int{1: 2, 2: 3, 3: 1}), name+" relabeled")
		}
		procs := len(h.Processes())
		perm := make([]int, procs)
		for p := range perm {
			perm[p] = procs - 1 - p
		}
		comparePruned(t, renameProcesses(h, perm), name+" renamed")
		comparePruned(t, relabelEvents(h, r), name+" shuffled")
	}
}

// TestPruneRandomHistories covers ≥250 seeded random histories (same
// generator as the other differential suites, independent seed).
func TestPruneRandomHistories(t *testing.T) {
	forceParallel(t)
	rounds := 250
	if testing.Short() {
		rounds = 60
	}
	r := rand.New(rand.NewSource(19114))
	for i := 0; i < rounds; i++ {
		h := randomHistory(r)
		comparePruned(t, h, fmt.Sprintf("random[%d] %s", i, h.ADT.Name()))
	}
}

// TestPruneMiniCensusW1 exhaustively cross-checks pruned vs exhaustive
// over every W1 history of shape [2,2] — the same space the
// seed-vs-rewrite and parallel differential tests enumerate.
func TestPruneMiniCensusW1(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	forceParallel(t)
	w1 := adt.NewWindowStream(1)
	ops := []spec.Operation{
		spec.NewOp(spec.NewInput("w", 1), spec.Bot),
		spec.NewOp(spec.NewInput("w", 2), spec.Bot),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(0)),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(2)),
	}
	var idx [4]int
	for idx[0] = 0; idx[0] < len(ops); idx[0]++ {
		for idx[1] = 0; idx[1] < len(ops); idx[1]++ {
			for idx[2] = 0; idx[2] < len(ops); idx[2]++ {
				for idx[3] = 0; idx[3] < len(ops); idx[3]++ {
					b := history.NewBuilder(w1)
					b.Append(0, ops[idx[0]])
					b.Append(0, ops[idx[1]])
					b.Append(1, ops[idx[2]])
					b.Append(1, ops[idx[3]])
					comparePruned(t, b.Build(), fmt.Sprintf("census[%d%d%d%d]", idx[0], idx[1], idx[2], idx[3]))
				}
			}
		}
	}
}

// TestPruneReducesNodes pins the point of the exercise: on the
// hardest Fig. 3 history (3h), full pruning must explore at least 2×
// fewer nodes than the exhaustive search, with identical verdicts —
// the acceptance bar the benchmark records reproduce.
func TestPruneReducesNodes(t *testing.T) {
	h := history.MustParse(parFig3Texts[7]) // 3h, 12 events
	var exhaustive, pruned int64
	for _, c := range []Criterion{CritWCC, CritCC, CritCCv} {
		sE := &Stats{}
		okE, _, err := Check(context.Background(), c, h, Options{Stats: sE})
		if err != nil {
			t.Fatalf("%v exhaustive: %v", c, err)
		}
		sP := &Stats{}
		okP, _, err := Check(context.Background(), c, h, Options{Stats: sP, Prune: PruneAll()})
		if err != nil {
			t.Fatalf("%v pruned: %v", c, err)
		}
		if okE != okP {
			t.Fatalf("%v: verdict flipped under pruning: %v vs %v", c, okE, okP)
		}
		if sP.Nodes > sE.Nodes {
			t.Errorf("%v: pruned search explored MORE nodes: %d vs %d", c, sP.Nodes, sE.Nodes)
		}
		if sP.Prune.Total() == 0 {
			t.Errorf("%v: pruning counters all zero on 3h", c)
		}
		t.Logf("%v: exhaustive %d nodes, pruned %d nodes (canon %d, sleep %d, sym %d)",
			c, sE.Nodes, sP.Nodes, sP.Prune.CanonHits, sP.Prune.SleepSkips, sP.Prune.SymSkips)
		exhaustive += sE.Nodes
		pruned += sP.Nodes
	}
	if pruned*2 > exhaustive {
		t.Fatalf("pruning reduced 3h exploration only %d → %d nodes (< 2×)", exhaustive, pruned)
	}
}

// TestPruneCountersPlumbed checks that each pruner's counter fires on
// a history crafted for it and flows through Options.Stats, both
// sequentially and through the parallel pipeline's per-task
// aggregation.
func TestPruneCountersPlumbed(t *testing.T) {
	forceParallel(t)

	// Two identical processes, inconsistent outputs: the search
	// backtracks through every commit order, so the symmetry quotient,
	// the sleep rule and the canonical table all engage.
	sym := history.MustParse("adt: Counter\np0: inc get/9\np1: inc get/9")
	for _, par := range []int{0, 4} {
		s := &Stats{}
		ok, _, err := Check(context.Background(), CritCCv, sym, Options{Stats: s, Prune: PruneAll(), Parallelism: par})
		if err != nil || ok {
			t.Fatalf("par=%d: (%v, %v), want unsatisfiable", par, ok, err)
		}
		if s.Prune.SleepSkips == 0 || s.Prune.SymSkips == 0 {
			t.Fatalf("par=%d: expected sleep and symmetry counters > 0, got %+v", par, s.Prune)
		}
	}

	// 3h under CC drives enough backtracking for canonical hits (CCv
	// refutes it almost immediately, before the table ever fills).
	h := history.MustParse(parFig3Texts[7])
	s := &Stats{}
	if _, _, err := Check(context.Background(), CritCC, h, Options{Stats: s, Prune: Prune{Canon: true}}); err != nil {
		t.Fatal(err)
	}
	if s.Prune.CanonHits == 0 {
		t.Fatalf("expected canonical hits on 3h, got %+v", s.Prune)
	}
	if s.Prune.SleepSkips != 0 || s.Prune.SymSkips != 0 {
		t.Fatalf("disabled pruners reported work: %+v", s.Prune)
	}
}

// TestPruneSymmetryRequiresChains pins the safety gate: the symmetry
// quotient only applies to identical-program processes whose program
// order is a plain chain. Extra cross-process edges disable it (the
// renaming argument breaks), leaving the verdict to the other layers.
func TestPruneSymmetryRequiresChains(t *testing.T) {
	build := func() *history.Builder {
		b := history.NewBuilder(adt.Counter{})
		b.Append(0, spec.NewOp(spec.NewInput("inc"), spec.Bot))
		b.Append(0, spec.NewOp(spec.NewInput("get"), spec.IntOutput(9)))
		b.Append(1, spec.NewOp(spec.NewInput("inc"), spec.Bot))
		b.Append(1, spec.NewOp(spec.NewInput("get"), spec.IntOutput(9)))
		return b
	}

	chain := build().Build()
	s := &Stats{}
	if ok, _, err := Check(context.Background(), CritWCC, chain, Options{Stats: s, Prune: Prune{Symmetry: true}}); ok || err != nil {
		t.Fatalf("chain: (%v, %v), want unsatisfiable", ok, err)
	}
	if s.Prune.SymSkips == 0 {
		t.Fatal("chain-shaped identical processes should engage the quotient")
	}

	edged := build()
	edged.Edge(0, 3) // p0's inc 7→ p1's get: programs are no longer chains
	h := edged.Build()
	s = &Stats{}
	ok, _, err := Check(context.Background(), CritWCC, h, Options{Stats: s, Prune: Prune{Symmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Prune.SymSkips != 0 {
		t.Fatalf("quotient engaged on a non-chain program order: %+v", s.Prune)
	}
	okE, _, errE := Check(context.Background(), CritWCC, h, Options{})
	if ok != okE || (err == nil) != (errE == nil) {
		t.Fatalf("edged: pruned (%v, %v) != exhaustive (%v, %v)", ok, err, okE, errE)
	}
}

// TestPruneBudgetExhaustion: a starved pruned search still surfaces
// the typed budget error (pruning shrinks the tree but cannot rescue
// a budget this small).
func TestPruneBudgetExhaustion(t *testing.T) {
	h := history.MustParse(parFig3Texts[7])
	for _, par := range []int{0, 4} {
		_, _, err := Check(context.Background(), CritCCv, h, Options{MaxNodes: 5, Prune: PruneAll(), Parallelism: par})
		var be *ErrBudgetExceeded
		if !errors.As(err, &be) {
			t.Fatalf("par=%d: got %v, want *ErrBudgetExceeded", par, err)
		}
		if be.Criterion != CritCCv || be.MaxNodes != 5 {
			t.Fatalf("par=%d: bad error payload: %+v", par, be)
		}
	}
}

// TestPruneRaceStress runs pruned parallel classifications from many
// goroutines at once; meaningful under -race (shared canonical table,
// per-task counter aggregation).
func TestPruneRaceStress(t *testing.T) {
	forceParallel(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, text := range parFig3Texts {
				h := history.MustParse(text)
				for _, c := range []Criterion{CritWCC, CritCC, CritCCv} {
					s := &Stats{}
					if _, _, err := Check(context.Background(), c, h, Options{Prune: PruneAll(), Parallelism: 4, Stats: s}); err != nil {
						t.Errorf("%v: %v", c, err)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// FuzzPruneEquivalence fuzzes the pruning layer against the
// exhaustive search over parseable history texts. Seeds deliberately
// include fingerprint-collision shapes: identical writes on distinct
// processes (equal ADT states under distinct commit orders),
// commuting updates to independent registers, and identical-program
// processes (symmetry classes). The nightly fuzz smoke job runs this
// target.
func FuzzPruneEquivalence(f *testing.F) {
	for _, text := range parFig3Texts {
		f.Add(text)
	}
	f.Add("adt: W2\np0: w(1) r/(0,1)\np1: w(1) r/(0,1)")      // identical writes: colliding state fingerprints
	f.Add("adt: M[a-b]\np0: wa(1) rb/2\np1: wb(2) ra/1")      // commuting updates to independent cells
	f.Add("adt: Counter\np0: inc get/2\np1: inc get/2")       // identical programs: symmetry classes
	f.Add("adt: Counter\np0: inc get/9\np1: inc get/9")       // identical programs, unsatisfiable: full backtrack
	f.Add("adt: Queue\np0: push(1) push(1) pop/1\np1: pop/1") // identical inputs inside one process
	f.Fuzz(func(t *testing.T, text string) {
		h, err := history.Parse(text)
		if err != nil || h.N() == 0 || h.N() > 11 {
			t.Skip()
		}
		for _, c := range []Criterion{CritWCC, CritCC, CritCCv} {
			opt := Options{MaxNodes: 200000}
			okE, _, errE := Check(context.Background(), c, h, opt)
			opt.Prune = PruneAll()
			okP, wP, errP := Check(context.Background(), c, h, opt)
			if errE != nil || errP != nil {
				// A budget blown on one side only is legitimate
				// (pruning shrinks the tree); nothing to compare.
				continue
			}
			if okE != okP {
				t.Fatalf("%v: exhaustive %v != pruned %v\n%s", c, okE, okP, text)
			}
			if okP {
				if err := ValidateWitness(h, c, wP); err != nil {
					t.Fatalf("%v: pruned witness invalid: %v\n%s", c, err, text)
				}
			}
		}
	})
}
