package check

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Histories may contain hidden operations (Def. 2): the method called
// is known but the return value was not observed — the parser produces
// them for input-only tokens and runtimes produce them for updates
// whose dummy outputs are irrelevant. Every checker must treat a
// hidden event's output as unconstrained, including when the
// projection π(E′,E″) would make that event's output visible.

// hiddenCounterHistory: p0: inc(2) get/2 ; p1: get/2, updates hidden.
func hiddenCounterHistory() *history.History {
	b := history.NewBuilder(adt.Counter{})
	b.Append(0, spec.HiddenOp(spec.NewInput("inc", 2)))
	b.Append(0, spec.NewOp(spec.NewInput("get"), spec.IntOutput(2)))
	b.Append(1, spec.NewOp(spec.NewInput("get"), spec.IntOutput(2)))
	return b.Build()
}

func TestHiddenUpdatesAcceptedByAllCriteria(t *testing.T) {
	h := hiddenCounterHistory()
	for _, crit := range []Criterion{CritSC, CritCC, CritCCv, CritWCC, CritPC, CritEC, CritUC} {
		ok, _, err := Check(context.Background(), crit, h, Options{})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		if !ok {
			t.Errorf("%v rejected a history whose only oddity is hidden update outputs", crit)
		}
	}
}

// A hidden *query* constrains nothing either: the history below would
// violate every criterion if the first read's output (99) were
// visible, and must pass once that read is hidden.
func TestHiddenQueryOutputUnconstrained(t *testing.T) {
	b := history.NewBuilder(adt.Register{})
	b.Append(0, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	b.Append(0, spec.HiddenOp(spec.NewInput("r"))) // would be r/99: impossible if visible
	b.Append(0, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	h := b.Build()
	for _, crit := range []Criterion{CritSC, CritCC, CritCCv, CritWCC, CritPC} {
		ok, _, err := Check(context.Background(), crit, h, Options{})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		if !ok {
			t.Errorf("%v rejected a history with a hidden query", crit)
		}
	}

	// Control: the same history with the impossible output visible is
	// rejected by SC (and everything above PC on one process).
	b2 := history.NewBuilder(adt.Register{})
	b2.Append(0, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	b2.Append(0, spec.NewOp(spec.NewInput("r"), spec.IntOutput(99)))
	b2.Append(0, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	h2 := b2.Build()
	ok, _, err := SC(context.Background(), h2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("SC accepted an impossible visible read")
	}
}
