// Package check implements exact decision procedures for the paper's
// consistency criteria: sequential consistency (Def. 5), pipelined
// consistency (Def. 6), weak causal consistency (Def. 8), causal
// consistency (Def. 9), causal convergence (Def. 12), causal memory
// via writes-into orders (Def. 11), eventual/update consistency, and
// Terry's four session guarantees.
//
// The checkers are sound and complete with respect to the formal
// definitions on finite histories, with the ω-event convention of the
// history package standing in for infinite executions (see that
// package's documentation). All are exponential-time searches — the
// underlying problems generalize the NP-hard verification of sequential
// consistency — so they are intended for the small histories of the
// paper's figures and for runtime-produced histories of bounded size.
package check

import (
	"errors"

	"repro/internal/history"
	"repro/internal/porder"
	"repro/internal/spec"
)

// ErrBudget is returned when a search exceeds Options.MaxNodes.
var ErrBudget = errors.New("check: search budget exceeded")

// ErrOmegaUpdate is returned when a history marks an update operation
// as ω-repeating; the encoding only supports repeating pure queries.
var ErrOmegaUpdate = errors.New("check: ω-events must be pure queries")

// Options tunes the search procedures.
type Options struct {
	// MaxNodes bounds the total number of search-tree nodes explored by
	// one checker invocation; 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes is the default search budget.
const DefaultMaxNodes = 20_000_000

func (o Options) maxNodes() int {
	if o.MaxNodes <= 0 {
		return DefaultMaxNodes
	}
	return o.MaxNodes
}

// linSearcher finds a linearization of a subset of a history's events,
// conforming to the ADT's sequential specification, where only some
// events' outputs are visible (the others are hidden operations in the
// sense of Def. 2). It implements lin(H'.π(E', E”)) ∩ L(T) ≠ ∅
// queries, the building block of every criterion.
type linSearcher struct {
	t      spec.ADT
	events []history.Event
	budget *int
	memo   map[string]bool // visited (done, state) pairs that failed
}

// findLin searches for an order of the events in include, respecting
// preds (required strict predecessors per event; only members of
// include constrain), such that running the operations from the initial
// state matches the recorded output of every event in visible. It
// returns the witness order and whether one exists. If the budget runs
// out it returns found=false with *budget < 0; callers translate that
// into ErrBudget.
func (ls *linSearcher) findLin(include, visible porder.Bitset, preds func(e int) porder.Bitset) ([]int, bool) {
	n := len(ls.events)
	if ls.memo == nil {
		ls.memo = make(map[string]bool)
	}
	total := include.Count()
	done := porder.NewBitset(n)
	seq := make([]int, 0, total)

	var rec func(q spec.State, placed int) bool
	rec = func(q spec.State, placed int) bool {
		if placed == total {
			return true
		}
		*ls.budget--
		if *ls.budget < 0 {
			return false
		}
		key := done.Key() + "|" + q.Key()
		if ls.memo[key] {
			return false
		}
		ok := false
		include.ForEach(func(e int) {
			if ok || done.Has(e) {
				return
			}
			p := preds(e).Clone()
			p.IntersectWith(include)
			if !p.SubsetOf(done) {
				return
			}
			q2, out := ls.t.Step(q, ls.events[e].Op.In)
			// Hidden operations (Def. 2) have no recorded output to
			// match, whatever the visibility projection says.
			if visible.Has(e) && !ls.events[e].Op.Hidden && !out.Equal(ls.events[e].Op.Out) {
				return
			}
			done.Set(e)
			seq = append(seq, e)
			if rec(q2, placed+1) {
				ok = true
				return
			}
			seq = seq[:len(seq)-1]
			done.Clear(e)
		})
		if !ok && *ls.budget >= 0 {
			ls.memo[key] = true
		}
		return ok
	}
	if rec(ls.t.Init(), 0) {
		out := make([]int, len(seq))
		copy(out, seq)
		return out, true
	}
	return nil, false
}

// predsFromRel adapts a transitively closed relation into a preds
// function (predecessor bitsets are materialized once).
func predsFromRel(rel *porder.Rel) func(e int) porder.Bitset {
	preds := rel.Preds()
	return func(e int) porder.Bitset { return preds[e] }
}

// validateOmega returns ErrOmegaUpdate if any ω-event is an update.
func validateOmega(h *history.History) error {
	for _, e := range h.Events {
		if e.Omega && h.ADT.IsUpdate(e.Op.In) {
			return ErrOmegaUpdate
		}
	}
	return nil
}

// omegaPreds wraps base preds so that each ω-event additionally
// requires every non-ω event (and, for determinism, nothing among
// ω-events themselves): in an infinite execution the ω-event has copies
// beyond any finite position, so every concrete event precedes some
// copy, and since ω-events are pure queries a single representative
// placed after everything is faithful.
func omegaPreds(h *history.History, base func(e int) porder.Bitset, omegaSubset porder.Bitset) func(e int) porder.Bitset {
	n := h.N()
	nonOmega := porder.FullBitset(n)
	for _, ev := range h.Events {
		if ev.Omega {
			nonOmega.Clear(ev.ID)
		}
	}
	return func(e int) porder.Bitset {
		if !omegaSubset.Has(e) {
			return base(e)
		}
		p := base(e).Clone()
		p.UnionWith(nonOmega)
		p.Clear(e)
		return p
	}
}
