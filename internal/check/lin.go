// Package check implements exact decision procedures for the paper's
// consistency criteria: sequential consistency (Def. 5), pipelined
// consistency (Def. 6), weak causal consistency (Def. 8), causal
// consistency (Def. 9), causal convergence (Def. 12), causal memory
// via writes-into orders (Def. 11), eventual/update consistency, and
// Terry's four session guarantees.
//
// The checkers are sound and complete with respect to the formal
// definitions on finite histories, with the ω-event convention of the
// history package standing in for infinite executions (see that
// package's documentation). All are exponential-time searches — the
// underlying problems generalize the NP-hard verification of sequential
// consistency — so they are intended for the small histories of the
// paper's figures and for runtime-produced histories of bounded size.
//
// Because the searches are exponential, per-node constant factors
// decide how large a history is checkable in practice. The search core
// is therefore written to be allocation-free in steady state: memo
// tables are keyed by 64-bit fingerprints (porder.Bitset.Hash64,
// spec.State.Hash64) rather than built strings, scratch bitsets are
// reused across nodes, and subset enumeration is lazy.
// Fingerprint memoization is probabilistic — a 64-bit collision could
// in principle prune a live branch — but over the ≤ DefaultMaxNodes
// states a search can visit, the collision probability is ~10⁻¹²,
// far below the chance of a hardware fault, and the census and
// differential tests cross-check the checkers against each other.
//
// # The layered exploration engine
//
// The causal-family checkers (WCC, CC, CCv) share one engine, split
// into layers:
//
//   - causal.go — the criterion layer: which visibility choices are
//     admissible for a commit under each definition, and the extra
//     total-order obligations CCv carries. The only layer that can
//     tell the three criteria apart.
//   - explore.go — the search core: frontier enumeration over the
//     program order, visibility-choice enumeration, incremental
//     fingerprints, commit memoization, per-depth scratch frames.
//   - prune.go — the pruning layer: DPOR-style reduction behind the
//     pruner interface, selected by Options.Prune. Three pruners —
//     canonical frame fingerprints, sleep-set exclusion of adjacent
//     commuting commits, and a symmetry quotient over
//     identical-program sessions. Verdict-preserving by construction;
//     see prune.go for each pruner's soundness conditions (notably:
//     the CCv canonical key must keep the update suborder, and the
//     symmetry quotient disables itself off chain-shaped program
//     orders).
//   - parallel.go — the parallel pipeline: the top of the commit tree
//     forks into deterministically ordered subtree tasks; the shared
//     lock-sharded failed-state table doubles as the shared canonical
//     pruning table.
//
// The non-causal checkers (SC, PC, EC/UC, CM, the session guarantees)
// predate the engine and keep their own specialized searches.
package check

import (
	"context"
	"errors"
	"math/bits"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/xhash"
)

// ErrBudget is returned when a search exceeds Options.MaxNodes.
var ErrBudget = errors.New("check: search budget exceeded")

// ErrOmegaUpdate is returned when a history marks an update operation
// as ω-repeating; the encoding only supports repeating pure queries.
var ErrOmegaUpdate = errors.New("check: ω-events must be pure queries")

// Options tunes the search procedures. Cancellation and deadlines are
// not options: every search-based checker takes a context.Context and
// polls ctx.Err() at least every feederChunk explored nodes, unwinding
// promptly with the context's error.
type Options struct {
	// MaxNodes bounds the total number of search-tree nodes explored by
	// one checker invocation; 0 means DefaultMaxNodes.
	MaxNodes int

	// Parallelism, when > 1, lets the causal-family checkers (WCC, CC,
	// CCv) fork the top levels of their commit decision tree into that
	// many concurrently searched subtree tasks. Verdicts and witnesses
	// are bit-for-bit identical to the sequential search whenever the
	// node budget is not exhausted; only the point at which a
	// budget-bound search gives up may shift, because the budget is
	// drawn from a shared pool in chunks. 0 and 1 mean sequential.
	// The non-causal checkers ignore the field (their searches are
	// either trivial or per-process, and the batch engine parallelizes
	// across histories instead).
	Parallelism int

	// Prune selects the DPOR-style pruners the causal-family checkers
	// apply (see the Prune type); the zero value is the exhaustive,
	// unpruned search. Verdicts are identical either way; witnesses
	// are bit-identical unless Prune.Symmetry applies to the history.
	// The non-causal checkers ignore the field.
	Prune Prune

	// Stats, when non-nil, accumulates search statistics across the
	// checker invocations that receive this Options value. It must not
	// be shared between concurrent invocations (the batch engine
	// installs a private one per check).
	Stats *Stats
}

// Stats counts the work checker invocations performed.
type Stats struct {
	// Nodes is the number of search-tree nodes explored.
	Nodes int64

	// Prune counts the frames and branches each enabled pruner cut
	// (all zero when Options.Prune enables nothing).
	Prune PruneStats
}

// DefaultMaxNodes is the default search budget.
const DefaultMaxNodes = 20_000_000

func (o Options) maxNodes() int {
	if o.MaxNodes <= 0 {
		return DefaultMaxNodes
	}
	return o.MaxNodes
}

func (o Options) parallelism() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// linSearcher finds a linearization of a subset of a history's events,
// conforming to the ADT's sequential specification, where only some
// events' outputs are visible (the others are hidden operations in the
// sense of Def. 2). It implements lin(H'.π(E', E”)) ∩ L(T) ≠ ∅
// queries, the building block of every criterion.
//
// One linSearcher may serve many queries (the causal checkers issue
// one per candidate commit): all scratch state is reused across
// queries, and the failed-state memo is shared, with a per-query epoch
// folded into every fingerprint so entries from different queries can
// never match.
type linSearcher struct {
	t      spec.ADT
	events []history.Event
	budget *int
	// feed, when non-nil, tops the budget back up in chunks from a
	// shared pool and carries the interrupt/cancel signals (see
	// parallel.go); a nil feed leaves the classic "count down from
	// MaxNodes" behaviour untouched.
	feed  *feeder
	memo  map[uint64]struct{} // failed (epoch, done, state) fingerprints
	epoch uint64

	// q0 caches t.Init() (states are immutable, so one instance serves
	// every query). steps, when non-nil, memoizes δ/λ by (state
	// fingerprint, event): the causal checkers issue one query per
	// candidate commit and revisit the same few states constantly, so
	// a cached transition (a map probe) beats rebuilding an immutable
	// state; single-query searchers (SC, PC, UC, CM, linearizability)
	// leave it nil and call Step directly, as most transitions are
	// visited once. Both caches are query-independent and live for the
	// searcher's lifetime.
	q0    spec.State
	steps map[stepKey]stepVal

	// Query context, fixed for the duration of one findLin call.
	include porder.Bitset
	visible porder.Bitset
	preds   []porder.Bitset
	total   int

	// Scratch reused across queries.
	done    porder.Bitset
	scratch porder.Bitset
	seq     []int
}

type stepKey struct {
	q uint64 // state fingerprint
	e int32  // event id (fixed input + expected output)
}

type stepVal struct {
	q   spec.State
	out spec.Output
}

// step applies event e's input to state q (with fingerprint qh),
// memoized. Like the fingerprint memo tables, it trusts Hash64 to
// identify states.
func (ls *linSearcher) step(q spec.State, qh uint64, e int) (spec.State, spec.Output) {
	if ls.steps == nil {
		return ls.t.Step(q, ls.events[e].Op.In)
	}
	sk := stepKey{q: qh, e: int32(e)}
	sv, ok := ls.steps[sk]
	if !ok {
		sv.q, sv.out = ls.t.Step(q, ls.events[e].Op.In)
		ls.steps[sk] = sv
	}
	return sv.q, sv.out
}

// initState returns the cached initial state.
func (ls *linSearcher) initState() spec.State {
	if ls.q0 == nil {
		ls.q0 = ls.t.Init()
	}
	return ls.q0
}

// searchRun couples one checker invocation's budget countdown with the
// optional context-cancellation feeder and the explored-node tally.
// When ctx is cancellable the budget is routed through a chunked pool
// so the search polls ctx.Err() at least every feederChunk nodes; an
// uncancellable context (context.Background(), context.TODO(), nil)
// keeps the classic zero-overhead "count down from MaxNodes"
// behaviour, so the hot sequential path pays nothing for the plumbing.
type searchRun struct {
	ctx     context.Context
	initial int
	budget  int
	pool    *budgetPool
	feed    *feeder
}

func newSearchRun(ctx context.Context, opt Options) *searchRun {
	r := &searchRun{ctx: ctx, initial: opt.maxNodes()}
	if ctx != nil && ctx.Done() != nil {
		r.pool = newBudgetPool(r.initial)
		r.feed = newFeeder(r.pool, ctx, nil, &r.budget)
	} else {
		r.budget = r.initial
	}
	return r
}

// explored returns the number of search nodes consumed so far.
func (r *searchRun) explored() int64 {
	return spentNodes(r.initial, r.pool, r.budget)
}

// spentNodes computes how many nodes a search consumed out of an
// initial budget: against the chunked pool's remainder when the
// countdown was routed through one (minus the unspent local chunk),
// against the local countdown otherwise, clamped to [0, initial].
// Shared by searchRun and the causal searcher so the Explored
// statistic is accounted identically everywhere.
func spentNodes(initial int, pool *budgetPool, local int) int64 {
	var spent int
	if pool != nil {
		left := int(pool.left.Load())
		if left < 0 {
			left = 0
		}
		spent = initial - left
		if local > 0 {
			spent -= local
		}
	} else {
		spent = initial - local
	}
	if spent < 0 {
		spent = 0
	}
	if spent > initial {
		spent = initial
	}
	return int64(spent)
}

// record adds the run's work to the caller's stats, if requested.
func (r *searchRun) record(opt Options) {
	if opt.Stats != nil {
		opt.Stats.Nodes += r.explored()
	}
}

// err translates the run's terminal state into the checker error: the
// context's error if the search was interrupted, ErrBudget if the node
// budget ran out, nil otherwise.
func (r *searchRun) err() error {
	if r.feed.wasInterrupted() {
		return r.ctx.Err()
	}
	if r.budget < 0 {
		return ErrBudget
	}
	return nil
}

// ctxErr is a nil-safe ctx.Err(), for the entry check every checker
// performs so a pre-cancelled context returns before any search work.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// wasInterrupted is a nil-safe accessor for callers that may not have
// attached a feeder at all.
func (f *feeder) wasInterrupted() bool { return f != nil && f.interrupted }

// findLin searches for an order of the events in include, respecting
// preds (required strict predecessors per event, one materialized
// bitset per event; only members of include constrain), such that
// running the operations from the initial state matches the recorded
// output of every event in visible. It returns the witness order and
// whether one exists. If the budget runs out it returns found=false
// with *budget < 0; callers translate that into ErrBudget.
func (ls *linSearcher) findLin(include, visible porder.Bitset, preds []porder.Bitset) ([]int, bool) {
	return ls.findLinInto(nil, include, visible, preds)
}

// findLinInto is findLin with a caller-provided witness buffer: on
// success the witness overwrites dst[:0] (growing it as needed) — the
// causal checkers pass per-depth scratch so that successful per-event
// queries allocate nothing in steady state.
func (ls *linSearcher) findLinInto(dst []int, include, visible porder.Bitset, preds []porder.Bitset) ([]int, bool) {
	n := len(ls.events)
	if ls.memo == nil {
		ls.memo = make(map[uint64]struct{})
	}
	ls.epoch++
	ls.include, ls.visible, ls.preds = include, visible, preds
	ls.total = include.Count()
	if len(ls.done)*64 < n {
		ls.done = porder.NewBitset(n)
		ls.scratch = porder.NewBitset(n)
	} else {
		ls.done.ClearAll()
	}
	ls.seq = ls.seq[:0]
	if ls.rec(ls.initState(), 0) {
		return append(dst[:0], ls.seq...), true
	}
	return nil, false
}

// rec extends the partial linearization by one event and recurses.
func (ls *linSearcher) rec(q spec.State, placed int) bool {
	if placed == ls.total {
		return true
	}
	*ls.budget--
	if *ls.budget < 0 && !ls.feed.refill() {
		return false
	}
	qh := q.Hash64()
	key := xhash.Mix(xhash.Mix(ls.epoch, ls.done.Hash64()), qh)
	if _, failed := ls.memo[key]; failed {
		return false
	}
	for wi, w := range ls.include {
		for w != 0 {
			e := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			if ls.done.Has(e) {
				continue
			}
			ls.scratch.CopyFrom(ls.preds[e])
			ls.scratch.IntersectWith(ls.include)
			if !ls.scratch.SubsetOf(ls.done) {
				continue
			}
			q2, out := ls.step(q, qh, e)
			// Hidden operations (Def. 2) have no recorded output to
			// match, whatever the visibility projection says.
			if ls.visible.Has(e) && !ls.events[e].Op.Hidden && !out.Equal(ls.events[e].Op.Out) {
				continue
			}
			ls.done.Set(e)
			ls.seq = append(ls.seq, e)
			if ls.rec(q2, placed+1) {
				return true
			}
			ls.seq = ls.seq[:len(ls.seq)-1]
			ls.done.Clear(e)
		}
	}
	if *ls.budget >= 0 {
		ls.memo[key] = struct{}{}
	}
	return false
}

// validateOmega returns ErrOmegaUpdate if any ω-event is an update.
func validateOmega(h *history.History) error {
	for _, e := range h.Events {
		if e.Omega && h.ADT.IsUpdate(e.Op.In) {
			return ErrOmegaUpdate
		}
	}
	return nil
}

// omegaPreds augments base preds so that each ω-event in omegaSubset
// additionally requires every non-ω event (and, for determinism,
// nothing among ω-events themselves): in an infinite execution the
// ω-event has copies beyond any finite position, so every concrete
// event precedes some copy, and since ω-events are pure queries a
// single representative placed after everything is faithful.
//
// The result is a fresh slice sharing the non-augmented rows of base;
// base itself is never mutated.
func omegaPreds(h *history.History, base []porder.Bitset, omegaSubset porder.Bitset) []porder.Bitset {
	n := h.N()
	nonOmega := porder.FullBitset(n)
	for _, ev := range h.Events {
		if ev.Omega {
			nonOmega.Clear(ev.ID)
		}
	}
	out := make([]porder.Bitset, n)
	copy(out, base)
	omegaSubset.ForEach(func(e int) {
		p := base[e].Clone()
		p.UnionWith(nonOmega)
		p.Clear(e)
		out[e] = p
	})
	return out
}
