package check

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

// The differential harness for the parallel classification pipeline:
// the parallel causal searchers must agree with the sequential ones —
// verdict, error AND witness, bit for bit — on the paper's corpus, an
// exhaustive mini-census and seeded random histories. Run with -race
// to also exercise the sharded memo and budget pool under the race
// detector (the CI race job does).

// forceParallel drops the small-history gate so that the tiny test
// histories actually exercise the forked path, restoring it on
// cleanup. Tests in this package run sequentially (none call
// t.Parallel), so the write is safe.
func forceParallel(t *testing.T) {
	t.Helper()
	old := minParallelEvents
	minParallelEvents = 2
	t.Cleanup(func() { minParallelEvents = old })
}

// parFig3Texts is the Fig. 3 corpus (the same texts paperfig encodes;
// kept inline because importing paperfig from package check would be
// cyclic).
var parFig3Texts = []string{
	"adt: W2\np0: w(1) r/(0,1) r/(1,2)*\np1: w(2) r/(0,2) r/(1,2)*",
	"adt: W2\np0: w(1) r/(0,1)*\np1: w(2) r/(0,2)*",
	"adt: W2\np0: w(1) r/(2,1)\np1: w(2) r/(1,2)",
	"adt: W2\np0: w(1) r/(0,1)\np1: w(2) r/(1,2)",
	"adt: Queue\np0: push(1) pop/1 pop/1 push(3)\np1: push(2) pop/3 push(1)",
	"adt: Queue\np0: pop/1 pop/_\np1: push(1) push(2) pop/1 pop/_",
	"adt: Queue2\np0: hd/1 rh(1) hd/2 rh(2)\np1: push(1) push(2) hd/1 rh(1) hd/2 rh(2)",
	"adt: M[a-e]\np0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3\np1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3",
	"adt: M[a-d]\np0: wa(1) wa(2) wb(3) rd/3 rc/1 wa(1)\np1: wc(1) wc(2) wd(3) rb/3 ra/1 wc(1)",
}

// compareParSeq checks parallel against sequential on all three causal
// criteria, including witness equality.
func compareParSeq(t *testing.T, h *history.History, name string, par int) {
	t.Helper()
	for _, c := range []Criterion{CritWCC, CritCC, CritCCv} {
		okS, wS, errS := Check(context.Background(), c, h, Options{})
		okP, wP, errP := Check(context.Background(), c, h, Options{Parallelism: par})
		if okS != okP || (errS == nil) != (errP == nil) {
			t.Fatalf("%s: %v: sequential (%v, %v) != parallel (%v, %v)", name, c, okS, errS, okP, errP)
		}
		if !reflect.DeepEqual(wS, wP) {
			t.Fatalf("%s: %v: witness diverged\nseq: %+v\npar: %+v", name, c, wS, wP)
		}
	}
}

func TestParallelFig3Corpus(t *testing.T) {
	forceParallel(t)
	for _, text := range parFig3Texts {
		h := history.MustParse(text)
		name := strings.SplitN(text, "\n", 2)[0]
		compareParSeq(t, h, name, 8)
		compareParSeq(t, h.StripOmega(), name+" (finite)", 8)
	}
}

// TestParallelMiniCensusW1 exhaustively cross-checks parallel vs
// sequential over every W1 history of shape [2,2] with inputs
// {w(1), w(2), r} and read outputs in {0,1,2} — the same space the
// seed-vs-rewrite differential test enumerates.
func TestParallelMiniCensusW1(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	forceParallel(t)
	w1 := adt.NewWindowStream(1)
	ops := []spec.Operation{
		spec.NewOp(spec.NewInput("w", 1), spec.Bot),
		spec.NewOp(spec.NewInput("w", 2), spec.Bot),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(0)),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)),
		spec.NewOp(spec.NewInput("r"), spec.IntOutput(2)),
	}
	var idx [4]int
	for idx[0] = 0; idx[0] < len(ops); idx[0]++ {
		for idx[1] = 0; idx[1] < len(ops); idx[1]++ {
			for idx[2] = 0; idx[2] < len(ops); idx[2]++ {
				for idx[3] = 0; idx[3] < len(ops); idx[3]++ {
					b := history.NewBuilder(w1)
					b.Append(0, ops[idx[0]])
					b.Append(0, ops[idx[1]])
					b.Append(1, ops[idx[2]])
					b.Append(1, ops[idx[3]])
					compareParSeq(t, b.Build(), fmt.Sprintf("census[%d%d%d%d]", idx[0], idx[1], idx[2], idx[3]), 4)
				}
			}
		}
	}
}

// TestParallelRandomHistories covers ≥200 seeded random histories
// (same generator as the seed-vs-rewrite differential test).
func TestParallelRandomHistories(t *testing.T) {
	forceParallel(t)
	rounds := 250
	if testing.Short() {
		rounds = 60
	}
	r := rand.New(rand.NewSource(20160312))
	for i := 0; i < rounds; i++ {
		h := randomHistory(r)
		compareParSeq(t, h, fmt.Sprintf("random[%d] %s", i, h.ADT.Name()), 8)
	}
}

// TestParallelWitnessDeterministic re-runs the parallel checker many
// times on histories with many witnesses and requires the identical
// witness every time — the bit-for-bit determinism guarantee.
func TestParallelWitnessDeterministic(t *testing.T) {
	forceParallel(t)
	for _, text := range []string{
		"adt: M[a-e]\np0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3\np1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3",
		"adt: W2\np0: w(1) r/(0,1) r/(1,2)*\np1: w(2) r/(0,2) r/(1,2)*",
	} {
		h := history.MustParse(text)
		for _, c := range []Criterion{CritWCC, CritCCv} {
			_, ref, err := Check(context.Background(), c, h, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				_, w, err := Check(context.Background(), c, h, Options{Parallelism: 8})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, w) {
					t.Fatalf("%v run %d: witness diverged from sequential", c, i)
				}
			}
		}
	}
}

// TestParallelRaceStress hammers the forked path with Parallelism=8
// and several histories classified concurrently — its value is under
// `go test -race`, where it drives the sharded memo, the budget pool
// and the cancellation flags across goroutines.
func TestParallelRaceStress(t *testing.T) {
	forceParallel(t)
	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		for _, text := range parFig3Texts {
			wg.Add(1)
			go func(text string) {
				defer wg.Done()
				h := history.MustParse(text)
				for _, c := range []Criterion{CritWCC, CritCC, CritCCv} {
					if _, _, err := Check(context.Background(), c, h, Options{Parallelism: 8}); err != nil {
						t.Errorf("%q %v: %v", strings.SplitN(text, "\n", 2)[0], c, err)
					}
				}
			}(text)
		}
	}
	wg.Wait()
}

// TestParallelBudgetExhaustion pins that a starved parallel search
// reports budget exhaustion (as the typed error) rather than a wrong
// verdict.
func TestParallelBudgetExhaustion(t *testing.T) {
	forceParallel(t)
	h := history.MustParse(parFig3Texts[7]) // 3h, 12 events
	_, _, err := Check(context.Background(), CritCCv, h, Options{Parallelism: 4, MaxNodes: 50})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("starved parallel search: err = %v, want ErrBudget", err)
	}
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Criterion != CritCCv || be.MaxNodes != 50 {
		t.Fatalf("starved parallel search: err = %#v, want *ErrBudgetExceeded{CCv, 50}", err)
	}
}

// TestParallelCancel pins that a cancelled context aborts a parallel
// search with the context's error.
func TestParallelCancel(t *testing.T) {
	forceParallel(t)
	h := history.MustParse(parFig3Texts[7])
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: must abort on the first poll
	_, _, err := Check(ctx, CritCCv, h, Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled search: err = %v, want context.Canceled", err)
	}
}

// TestSequentialCancel covers the context plumbing of the non-parallel
// searchers (SC, PC, UC and the sequential causal path).
func TestSequentialCancel(t *testing.T) {
	h := history.MustParse(parFig3Texts[7])
	hOmega := history.MustParse(parFig3Texts[0]) // UC only searches when ω-events exist
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range []Criterion{CritSC, CritPC, CritWCC, CritCC, CritCCv} {
		_, _, err := Check(ctx, c, h, Options{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", c, err)
		}
	}
	if _, _, err := Check(ctx, CritUC, hOmega, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("UC: err = %v, want context.Canceled", err)
	}
	hMem := history.MustParse(parFig3Texts[8]) // 3i: a memory history, for CM
	if _, _, err := Check(ctx, CritCM, hMem, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CM: err = %v, want context.Canceled", err)
	}
	// And a cancellation arriving mid-search, from another goroutine.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		_, _, err := Check(ctx2, CritCCv, h, Options{})
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		// Either the search finished before the cancellation landed
		// (fine) or it was interrupted.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-search cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled search did not unwind")
	}
}
