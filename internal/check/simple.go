package check

import (
	"repro/internal/history"
	"repro/internal/porder"
	"repro/internal/spec"
)

// Witness carries evidence that a history satisfies a criterion. Not
// every checker fills every field.
type Witness struct {
	// Linearization is the single witness order for SC.
	Linearization []int
	// PerProcess maps process index to its witness linearization (PC).
	PerProcess [][]int
	// Order is the witness causal order (WCC, CC) or total order (CCv)
	// as a processing sequence; Pasts[e] is the causal past ⌊e⌋ \ {e}.
	Order []int
	Pasts []porder.Bitset
	// PerEvent maps event id to the witness linearization of its causal
	// past used to validate it (WCC, CC).
	PerEvent [][]int
}

// FormatLin renders a witness order as the paper's dot-separated word.
func FormatLin(h *history.History, order []int, visible porder.Bitset) string {
	ops := make([]spec.Operation, len(order))
	for i, e := range order {
		op := h.Events[e].Op
		if visible != nil && !visible.Has(e) {
			op = op.Hide()
		}
		ops[i] = op
	}
	return spec.FormatSeq(ops)
}

// SC reports whether the history is sequentially consistent with its
// ADT (Def. 5): lin(H) ∩ L(T) ≠ ∅. ω-events are placed after all
// non-ω events (they repeat forever, so every event precedes almost
// every copy).
func SC(h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	budget := opt.maxNodes()
	ls := &linSearcher{t: h.ADT, events: h.Events, budget: &budget}
	feed := ls.attachInterrupt(opt, &budget)
	all := porder.FullBitset(h.N())
	preds := omegaPreds(h, h.ProgPreds(), h.OmegaView())
	order, ok := ls.findLin(all, all, preds)
	if feed.wasInterrupted() {
		return false, nil, ErrInterrupted
	}
	if budget < 0 {
		return false, nil, ErrBudget
	}
	if !ok {
		return false, nil, nil
	}
	return true, &Witness{Linearization: order}, nil
}

// PC reports whether the history is pipelined consistent with its ADT
// (Def. 6): for every process p, lin(H.π(E_H, p)) ∩ L(T) ≠ ∅ — each
// process must explain the whole history with all outputs hidden except
// its own. The process's own ω-event, if any, is placed after every
// other event; other processes' ω-events are hidden pure queries and
// need no special treatment.
func PC(h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	w := &Witness{PerProcess: make([][]int, len(h.Processes()))}
	all := porder.FullBitset(h.N())
	basePreds := h.ProgPreds()
	for p := range h.Processes() {
		budget := opt.maxNodes()
		ls := &linSearcher{t: h.ADT, events: h.Events, budget: &budget}
		feed := ls.attachInterrupt(opt, &budget)
		visible := h.ProcEventsView(p)
		ownOmega := h.OmegaEvents()
		ownOmega.IntersectWith(visible)
		preds := omegaPreds(h, basePreds, ownOmega)
		order, ok := ls.findLin(all, visible, preds)
		if feed.wasInterrupted() {
			return false, nil, ErrInterrupted
		}
		if budget < 0 {
			return false, nil, ErrBudget
		}
		if !ok {
			return false, nil, nil
		}
		w.PerProcess[p] = order
	}
	return true, w, nil
}
