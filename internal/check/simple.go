package check

import (
	"context"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Witness carries evidence that a history satisfies a criterion. Not
// every checker fills every field.
type Witness struct {
	// Linearization is the single witness order for SC.
	Linearization []int
	// PerProcess maps process index to its witness linearization (PC).
	PerProcess [][]int
	// Order is the witness causal order (WCC, CC) or total order (CCv)
	// as a processing sequence; Pasts[e] is the causal past ⌊e⌋ \ {e}.
	Order []int
	Pasts []porder.Bitset
	// PerEvent maps event id to the witness linearization of its causal
	// past used to validate it (WCC, CC).
	PerEvent [][]int
}

// FormatLin renders a witness order as the paper's dot-separated word.
func FormatLin(h *history.History, order []int, visible porder.Bitset) string {
	ops := make([]spec.Operation, len(order))
	for i, e := range order {
		op := h.Events[e].Op
		if visible != nil && !visible.Has(e) {
			op = op.Hide()
		}
		ops[i] = op
	}
	return spec.FormatSeq(ops)
}

// SC reports whether the history is sequentially consistent with its
// ADT (Def. 5): lin(H) ∩ L(T) ≠ ∅. ω-events are placed after all
// non-ω events (they repeat forever, so every event precedes almost
// every copy).
func SC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	run := newSearchRun(ctx, opt)
	defer run.record(opt)
	ls := &linSearcher{t: h.ADT, events: h.Events, budget: &run.budget, feed: run.feed}
	all := porder.FullBitset(h.N())
	preds := omegaPreds(h, h.ProgPreds(), h.OmegaView())
	order, ok := ls.findLin(all, all, preds)
	if err := run.err(); err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, &Witness{Linearization: order}, nil
}

// PC reports whether the history is pipelined consistent with its ADT
// (Def. 6): for every process p, lin(H.π(E_H, p)) ∩ L(T) ≠ ∅ — each
// process must explain the whole history with all outputs hidden except
// its own. The process's own ω-event, if any, is placed after every
// other event; other processes' ω-events are hidden pure queries and
// need no special treatment.
func PC(ctx context.Context, h *history.History, opt Options) (bool, *Witness, error) {
	if err := validateOmega(h); err != nil {
		return false, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return false, nil, err
	}
	w := &Witness{PerProcess: make([][]int, len(h.Processes()))}
	all := porder.FullBitset(h.N())
	basePreds := h.ProgPreds()
	for p := range h.Processes() {
		run := newSearchRun(ctx, opt)
		ls := &linSearcher{t: h.ADT, events: h.Events, budget: &run.budget, feed: run.feed}
		visible := h.ProcEventsView(p)
		ownOmega := h.OmegaEvents()
		ownOmega.IntersectWith(visible)
		preds := omegaPreds(h, basePreds, ownOmega)
		order, ok := ls.findLin(all, visible, preds)
		run.record(opt)
		if err := run.err(); err != nil {
			return false, nil, err
		}
		if !ok {
			return false, nil, nil
		}
		w.PerProcess[p] = order
	}
	return true, w, nil
}
