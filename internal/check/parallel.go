package check

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
)

// Parallel mode for the causal-family searchers.
//
// The sequential search is a DFS over commit decisions: at each level
// it picks the next event to commit and the extra updates that event
// observes. Parallel mode runs the same DFS, but forks its top levels:
// the coordinator first expands the tree sequentially down to a small
// frontier, then hands every surviving frontier node to a worker as an
// independent subtree task. Each task replays its prefix of commit
// decisions on a private searcher (own scratch frames, own per-event
// lin memo) and searches its subtree to completion; only the
// commit-level failed-state memo is shared, through a lock-sharded
// fingerprint table, so one task's dead ends prune the others. With
// canonical pruning enabled (Options.Prune.Canon) the shared table
// holds the pruner's canonical frame keys instead, so the sharing
// additionally collapses equivalent frames across tasks; the static
// sleep-set and symmetry rules are deterministic per frame and apply
// identically in the expansion, the prefix-admitted replays aside, and
// the subtree searches, so verdict and witness equality with the
// sequential pruned search is preserved (equivalent frames have
// identical pruned continuations, hence canonical entries still only
// ever prune branches that would fail).
//
// Determinism. Tasks are numbered in the exact order the sequential
// DFS would enter their subtrees, and the parallel verdict is defined
// as the sequential one: the first task in that order to succeed wins,
// and its witness is returned. A success at task i cancels only tasks
// j > i — tasks before i must still run to completion, because one of
// them succeeding would make it the sequential answer instead. Within
// a task the DFS order is identical to the sequential search, and memo
// entries (shared or not) only ever prune branches that have failed
// exhaustively, which can never change which branch succeeds first.
// Verdict and witness are therefore bit-for-bit identical to the
// sequential path. The only divergence is budget exhaustion: the node
// budget is drawn from a shared pool in chunks, so *which* task hits
// the bottom of the pool depends on scheduling. A run that stays under
// budget is fully deterministic; a run that exhausts it returns
// ErrBudget on both paths whenever the exhaustion happens before the
// winning task in sequential order.

// feederChunk is the number of nodes a searcher draws from the shared
// budget pool at a time. It bounds both the atomic traffic (one CAS
// per chunk) and the cancellation latency (stop flags are polled once
// per chunk).
const feederChunk = 4096

// minParallelEvents gates parallel mode: below this many events the
// per-task searcher construction and prefix replay cost more than the
// whole sequential search. A variable so the differential tests can
// force tiny histories down the parallel path.
var minParallelEvents = 8

// parallelForkFactor scales the size of the task frontier: the
// expansion deepens until it has at least parallelism*forkFactor
// tasks (or gives up at maxForkDepth). More tasks than workers keeps
// the pool busy when subtree sizes are skewed.
const parallelForkFactor = 4

// maxForkDepth bounds the frontier expansion depth; the expansion
// re-runs the top of the tree once per level, so this also bounds the
// duplicated sequential work.
const maxForkDepth = 3

// budgetPool is the shared node budget of one parallel (or
// interruptible) search, handed out in chunks.
type budgetPool struct {
	left atomic.Int64
}

func newBudgetPool(total int) *budgetPool {
	p := &budgetPool{}
	p.left.Store(int64(total))
	return p
}

// take grabs up to feederChunk nodes, returning 0 when the pool is
// empty.
func (p *budgetPool) take() int {
	for {
		cur := p.left.Load()
		if cur <= 0 {
			return 0
		}
		g := int64(feederChunk)
		if cur < g {
			g = cur
		}
		if p.left.CompareAndSwap(cur, cur-g) {
			return int(g)
		}
	}
}

// put returns unspent budget (a finishing task's remainder).
func (p *budgetPool) put(n int) {
	if n > 0 {
		p.left.Add(int64(n))
	}
}

// feeder tops a searcher's countdown budget back up from the shared
// pool and carries the two abort signals: the caller's context (whose
// cancellation or deadline interrupts the search) and the task's
// cancellation flag. A nil feeder (the sequential, uncancellable
// configuration) refuses every refill, which leaves the classic
// "count down from MaxNodes and stop" behaviour.
type feeder struct {
	pool   *budgetPool
	ctx    context.Context // caller-level cancellation; nil = never
	cancel *atomic.Bool    // task-level cancellation (sibling won)
	budget *int

	interrupted bool
	cancelled   bool
	exhausted   bool
}

func newFeeder(pool *budgetPool, ctx context.Context, cancel *atomic.Bool, budget *int) *feeder {
	return &feeder{pool: pool, ctx: ctx, cancel: cancel, budget: budget}
}

// refill is called when the local budget dips below zero; it reports
// whether the search may continue. On refusal the budget stays
// negative and the search unwinds (without writing memo entries, since
// those writes are guarded by a non-negative budget).
func (f *feeder) refill() bool {
	if f == nil {
		return false
	}
	if f.exhausted || f.cancelled || f.interrupted {
		return false
	}
	if f.ctx != nil && f.ctx.Err() != nil {
		f.interrupted = true
		return false
	}
	if f.cancel != nil && f.cancel.Load() {
		f.cancelled = true
		return false
	}
	g := f.pool.take()
	if g == 0 {
		f.exhausted = true
		return false
	}
	*f.budget += g
	return true
}

// release returns the searcher's unspent budget to the pool.
func (f *feeder) release() {
	if f != nil && *f.budget > 0 {
		f.pool.put(*f.budget)
		*f.budget = 0
	}
}

// shardedMemo is the commit-level failed-state table shared by the
// subtree tasks: 64 mutex-guarded shards selected by the low key bits.
// Entries are only ever added (failed states stay failed), so a racy
// miss is merely a missed prune, never an unsound one.
type shardedMemo struct {
	shards [64]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
	}
}

func newShardedMemo() *shardedMemo {
	s := &shardedMemo{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

func (s *shardedMemo) failed(key uint64) bool {
	sh := &s.shards[key&63]
	sh.mu.Lock()
	_, ok := sh.m[key]
	sh.mu.Unlock()
	return ok
}

func (s *shardedMemo) add(key uint64) {
	sh := &s.shards[key&63]
	sh.mu.Lock()
	sh.m[key] = struct{}{}
	sh.mu.Unlock()
}

// prefixStep is one replayable commit decision: event e committed with
// the given causal past (past excludes e and is an owned clone).
type prefixStep struct {
	e    int
	past porder.Bitset
}

// task states, written once by the owning worker (or by the dispatch
// loop for tasks skipped after a smaller-index success).
const (
	taskPending = iota
	taskFailed  // subtree exhaustively refuted
	taskSuccess // witness found; cs retained
	taskAborted // cancelled / interrupted / out of budget
)

type causalTask struct {
	steps  []prefixStep
	cancel atomic.Bool

	status int
	feed   *feeder
	cs     *causalSearcher // retained on success for witness extraction
	prune  PruneStats      // the task searcher's pruning counters
}

// expander drives the frontier expansion by hijacking the searcher's
// commit continuation (cs.next): tryCommit keeps enumerating the
// (event, visibility subset) choices — so the expansion order is the
// sequential DFS order by construction, not by careful duplication —
// while descend bounds the depth and records the decisions as a
// replayable prefix.
type expander struct {
	cs    *causalSearcher
	depth int // remaining fork levels below the current node
	steps []prefixStep
	tasks *[]*causalTask
}

// descend is installed as cs.next for the duration of the expansion;
// commitWith calls it right after push(e, ...), so the just-committed
// event is the last of cs.order and its (frame-aliased) past is
// pasts[e].
func (x *expander) descend() bool {
	cs := x.cs
	e := cs.order[len(cs.order)-1]
	x.steps = append(x.steps, prefixStep{e: e, past: cs.pasts[e]})
	x.depth--
	ok := x.level()
	x.depth++
	x.steps = x.steps[:len(x.steps)-1]
	return ok
}

// level is the expansion counterpart of cs.run: the same frontier
// enumeration (including the static sleep/symmetry pruning rules,
// which must cut the same branches in expansion as in the subtree
// searches), but cut off at the fork depth (emitting a task instead of
// recursing further) and without the failed-state memo — a frontier
// node's "failure" is not exhaustive, so nothing may be recorded, and
// reads would never hit (the expansion searcher's memo starts empty
// and the shared canonical table only fills once tasks run).
func (x *expander) level() bool {
	cs := x.cs
	if len(cs.order) == cs.n {
		return true
	}
	if x.depth == 0 {
		t := &causalTask{steps: make([]prefixStep, len(x.steps))}
		for i, st := range x.steps {
			t.steps[i] = prefixStep{e: st.e, past: st.past.Clone()}
		}
		*x.tasks = append(*x.tasks, t)
		return false
	}
	*cs.budget--
	if *cs.budget < 0 && !cs.feed.refill() {
		return false
	}
	return cs.frontier()
}

// expandFrontier runs the search down to `levels` commit levels,
// appending one causalTask per surviving frontier node in exact
// sequential DFS order. It returns true if a complete causal order was
// discovered during expansion (possible when the history has no more
// than `levels` events); the caller then reads the witness straight
// off cs.
func expandFrontier(cs *causalSearcher, levels int, tasks *[]*causalTask) (found bool) {
	x := &expander{cs: cs, depth: levels, steps: make([]prefixStep, 0, levels), tasks: tasks}
	cs.next = x.descend
	defer func() { cs.next = cs.run }()
	return x.level()
}

// replayPrefix re-applies a task's commit decisions on a fresh
// searcher. Every step passed checkEvent during expansion, so the only
// way a replay step can fail is running out of budget (or being
// cancelled); a failure with budget to spare would mean the replay
// diverged from the expansion, which the panic makes loud.
func (cs *causalSearcher) replayPrefix(steps []prefixStep) bool {
	for _, st := range steps {
		fr := &cs.frames[len(cs.order)]
		fr.past.CopyFrom(st.past)
		cs.pasts[st.e] = fr.past
		lin, ok := cs.checkEvent(st.e, fr.past, fr)
		if !ok {
			cs.pasts[st.e] = nil
			if *cs.budget >= 0 {
				panic("check: parallel prefix replay diverged from expansion")
			}
			return false
		}
		cs.push(st.e, fr.past, lin)
	}
	return true
}

// runCausalParallel is the parallel counterpart of the sequential body
// of runCausal; see the file comment for the determinism argument.
func runCausalParallel(ctx context.Context, h *history.History, kind causalKind, opt Options) (bool, *Witness, error) {
	par := opt.parallelism()
	pool := newBudgetPool(opt.maxNodes())
	shard := newShardedMemo()
	root := newCausalSearcher(h, kind, 0, opt.Prune)
	var tasks []*causalTask
	if opt.Stats != nil {
		// Every feeder releases its unspent chunk back to the pool, so
		// at return time the pool deficit is exactly the explored count.
		// Pruning counters come from the expansion searcher plus every
		// task searcher that ran (workers record them before finishing,
		// so reading after wg.Wait — or before dispatch — is safe).
		defer func() {
			left := int(pool.left.Load())
			if left < 0 {
				left = 0
			}
			opt.Stats.Nodes += int64(opt.maxNodes() - left)
			opt.Stats.Prune.Add(root.pruneStats())
			for _, t := range tasks {
				opt.Stats.Prune.Add(t.prune)
			}
		}()
	}

	// Frontier expansion on a root searcher, deepening until there are
	// enough tasks to keep the workers busy. Each deepening re-expands
	// from scratch (the push/pop discipline restores the root searcher
	// between rounds); the duplicated work is bounded by maxForkDepth
	// levels of the top of the tree.
	root.feed = newFeeder(pool, ctx, nil, root.budget)
	root.ls.feed = root.feed
	target := par * parallelForkFactor
	for depth := 1; ; depth++ {
		tasks = tasks[:0]
		if expandFrontier(root, depth, &tasks) {
			// The search completed while expanding (tiny histories or a
			// witness within `depth` commits).
			root.feed.release()
			return true, root.witness(), nil
		}
		if root.feed.interrupted {
			return false, nil, ctx.Err()
		}
		if *root.budget < 0 {
			return false, nil, ErrBudget
		}
		if len(tasks) == 0 {
			// Every branch died within `depth` levels: exhaustive
			// refutation found during expansion.
			root.feed.release()
			return false, nil, nil
		}
		if len(tasks) >= target || depth >= maxForkDepth || depth >= h.N() {
			break
		}
	}
	root.feed.release()

	// Dispatch. Workers pull task indices in order; a success at index
	// i cancels every task after i but lets earlier ones finish.
	var (
		next     atomic.Int64
		firstWin atomic.Int64
		wg       sync.WaitGroup
	)
	firstWin.Store(int64(len(tasks)))
	workers := par
	if workers > len(tasks) {
		workers = len(tasks)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				if int64(i) > firstWin.Load() {
					t.status = taskAborted // outrun by an earlier success
					continue
				}
				cs := newCausalSearcher(h, kind, 0, opt.Prune)
				feed := newFeeder(pool, ctx, &t.cancel, cs.budget)
				cs.feed = feed
				cs.ls.feed = feed
				cs.shard = shard
				t.feed = feed
				if cs.replayPrefix(t.steps) && cs.run() {
					t.status = taskSuccess
					t.cs = cs
					for {
						cur := firstWin.Load()
						if int64(i) >= cur || firstWin.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					for j := i + 1; j < len(tasks); j++ {
						tasks[j].cancel.Store(true)
					}
				} else if feed.cancelled || feed.interrupted || feed.exhausted || *cs.budget < 0 {
					t.status = taskAborted
				} else {
					t.status = taskFailed
				}
				t.prune = cs.pruneStats()
				feed.release()
			}
		}()
	}
	wg.Wait()

	// Decide in sequential order: the first task that is not an
	// exhaustive failure determines the outcome. An aborted task before
	// the first success means the sequential verdict is unknowable with
	// this budget (or the caller interrupted) — surface that instead of
	// a possibly wrong answer.
	for _, t := range tasks {
		switch t.status {
		case taskSuccess:
			return true, t.cs.witness(), nil
		case taskFailed:
			continue
		default:
			if t.feed != nil && t.feed.interrupted || ctx != nil && ctx.Err() != nil {
				return false, nil, ctx.Err()
			}
			return false, nil, ErrBudget
		}
	}
	return false, nil, nil
}
