package check

import (
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
)

// Zones partitions a history's events relative to one event e and a
// causal order →, reproducing the six time zones of the paper's Fig. 2:
// causal past, program past (a subset of the causal past), present
// (e itself), concurrent present, causal future and program future
// (a subset of the causal future). The more constraints the past
// imposes on the present, the stronger the criterion.
type Zones struct {
	Event             int
	CausalPast        porder.Bitset // {e' : e' → e}, without e
	ProgramPast       porder.Bitset // {e' : e' 7→ e}
	CausalFuture      porder.Bitset // {e' : e → e'}
	ProgramFuture     porder.Bitset // {e' : e 7→ e'}
	ConcurrentPresent porder.Bitset // incomparable with e in →
}

// ZonesOf computes the time zones of event e. prog must be the
// history's transitively closed program order and causal a transitively
// closed causal order containing it (both strict).
func ZonesOf(h *history.History, causal *porder.Rel, e int) Zones {
	n := h.N()
	z := Zones{
		Event:             e,
		CausalPast:        porder.NewBitset(n),
		ProgramPast:       porder.NewBitset(n),
		CausalFuture:      porder.NewBitset(n),
		ProgramFuture:     porder.NewBitset(n),
		ConcurrentPresent: porder.NewBitset(n),
	}
	prog := h.Prog()
	for f := 0; f < n; f++ {
		if f == e {
			continue
		}
		switch {
		case causal.Has(f, e):
			z.CausalPast.Set(f)
			if prog.Has(f, e) {
				z.ProgramPast.Set(f)
			}
		case causal.Has(e, f):
			z.CausalFuture.Set(f)
			if prog.Has(e, f) {
				z.ProgramFuture.Set(f)
			}
		default:
			z.ConcurrentPresent.Set(f)
		}
	}
	return z
}

// CausalOrderFrom builds the transitively closed causal order generated
// by the history's program order plus the given extra edges, returning
// nil if the result is cyclic (hence not a causal order).
func CausalOrderFrom(h *history.History, extra [][2]int) *porder.Rel {
	rel := porder.NewRel(h.N())
	for i := 0; i < h.N(); i++ {
		h.Prog().Succ[i].ForEach(func(j int) { rel.Add(i, j) })
	}
	for _, e := range extra {
		rel.Add(e[0], e[1])
	}
	if rel.HasCycle() {
		return nil
	}
	return rel.TransitiveClosure()
}
