package check

import (
	"context"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
)

// Sec. 2.2 allows the program order to be ANY partial order with
// finite pasts — "multithreaded programs in which threads can fork and
// join, Web services orchestrations, sensor networks". These tests
// exercise the checkers on fork/join DAGs built with Builder.Edge.

// forkJoinHistory models:
//
//	      ┌─ p1: w(1) ─┐
//	p0: w(9)            p3: r/out
//	      └─ p2: w(2) ─┘
//
// p0 forks two writers, p3 joins them and reads. The program order
// makes both writes precede the read, so any criterion at least as
// strong as WCC forces the read to see both writes (in some order).
func forkJoinHistory(out int) *history.History {
	b := history.NewBuilder(adt.Register{})
	root := b.Append(0, spec.NewOp(spec.NewInput("w", 9), spec.Bot))
	w1 := b.Append(1, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	w2 := b.Append(2, spec.NewOp(spec.NewInput("w", 2), spec.Bot))
	join := b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(out)))
	b.Edge(root, w1)
	b.Edge(root, w2)
	b.Edge(w1, join)
	b.Edge(w2, join)
	return b.Build()
}

func TestForkJoinReadSeesAJoinedWrite(t *testing.T) {
	// The joined read must return one of the two forked writes: both
	// precede it in program order, so the last write before the read
	// in any linearization of its causal past is 1 or 2, never the
	// root's 9 and never the default 0.
	for _, tc := range []struct {
		out  int
		want bool
	}{
		{1, true}, {2, true}, {9, false}, {0, false},
	} {
		h := forkJoinHistory(tc.out)
		for _, crit := range []Criterion{CritWCC, CritCC, CritCCv, CritSC} {
			ok, _, err := Check(context.Background(), crit, h, Options{})
			if err != nil {
				t.Fatalf("out=%d %v: %v", tc.out, crit, err)
			}
			if ok != tc.want {
				t.Errorf("out=%d: %v = %v, want %v", tc.out, crit, ok, tc.want)
			}
		}
	}
}

func TestForkJoinHierarchyHolds(t *testing.T) {
	// The Fig. 1 arrows hold on DAG program orders too.
	for _, out := range []int{0, 1, 2, 9} {
		cl, err := Classify(context.Background(), forkJoinHistory(out), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bad := VerifyImplications(cl); len(bad) != 0 {
			t.Errorf("out=%d: implication violations %v", out, bad)
		}
	}
}

// TestDiamondConcurrentBranches: without the join, the two branch
// writes stay concurrent, and a fourth process may see them in either
// order — but a single process cannot see both orders (its two reads
// are program-ordered after one another).
func TestDiamondConcurrentBranches(t *testing.T) {
	build := func(r1, r2 int) *history.History {
		b := history.NewBuilder(adt.Register{})
		root := b.Append(0, spec.NewOp(spec.NewInput("w", 9), spec.Bot))
		w1 := b.Append(1, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
		w2 := b.Append(2, spec.NewOp(spec.NewInput("w", 2), spec.Bot))
		b.Edge(root, w1)
		b.Edge(root, w2)
		b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(r1)))
		b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(r2)))
		return b.Build()
	}
	// Reading 1 then 2 is causally consistent (w1 delivered, then w2).
	ok, _, err := CC(context.Background(), build(1, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("r/1 then r/2 rejected by CC on the diamond")
	}
	// Reading 1, then 2, then 1 again without a new write violates
	// even WCC: the causal past only grows, and the replayed state
	// cannot oscillate... unless a causal order delivers w1 after w2
	// at that process. For a register that IS allowed by WCC (the
	// first r/1 can see only w1, the r/2 sees w1 then w2 — after
	// which 1 can never return). Verify the oscillation is rejected.
	b := history.NewBuilder(adt.Register{})
	root := b.Append(0, spec.NewOp(spec.NewInput("w", 9), spec.Bot))
	w1 := b.Append(1, spec.NewOp(spec.NewInput("w", 1), spec.Bot))
	w2 := b.Append(2, spec.NewOp(spec.NewInput("w", 2), spec.Bot))
	b.Edge(root, w1)
	b.Edge(root, w2)
	b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(2)))
	b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(1)))
	ok, _, err = CC(context.Background(), b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("oscillating reads accepted by CC: monotonic reads must hold within one process")
	}
}
