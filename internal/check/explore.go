package check

import (
	"math/bits"

	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/porder"
	"github.com/paper-repro/ccbm/internal/xhash"
)

// The exploration engine of the causal-family checkers, layered as:
//
//	run            frame loop: terminal test, budget, failed-state memo
//	└ frontier     frontier enumeration: which events may commit next
//	  └ tryCommit  visibility-choice enumeration for one event
//	    └ commitWith  build the past, check the criterion, recurse
//
// plus a pluggable pruning layer (the pruner interface, prune.go)
// consulted at each level: run swaps the failed-state key for the
// pruner's canonical frame key, frontier filters events through
// admitEvent, and commitWith filters (event, visibility) choices
// through admitChoice. The criterion itself is confined to checkEvent
// (causal.go); the parallel pipeline (parallel.go) reuses frontier and
// tryCommit verbatim by swapping the cs.next continuation, which is
// what keeps its enumeration order — and therefore its verdicts —
// identical to the sequential engine's.

// maxSubsetCands bounds the width of one commit's visibility-subset
// enumeration. Enumeration is lazy over uint64 masks, so the bound is
// the word width (with margin for Gosper's carry), not a memory cap —
// a search that wide is hopeless anyway and surfaces as ErrBudget.
const maxSubsetCands = 62

// eagerFrameLimit bounds the history size for which the per-depth int
// scratch (candidate lists, witness buffers — O(n²) ints in total) is
// preallocated in one slab; larger histories grow those buffers lazily
// per reached depth.
const eagerFrameLimit = 256

// csFrame is the per-depth scratch of tryCommit: the forced visibility
// set, the candidate past under construction, the candidate update
// list and the subset currently tried. Depth d commits at most one
// event at a time, so one frame per depth suffices; pasts[e] of a
// committed event aliases its frame's past buffer until uncommit.
type csFrame struct {
	forced porder.Bitset
	past   porder.Bitset
	cand   []int
	x      []int
	lin    []int // witness linearization buffer for the event committed here
}

type causalSearcher struct {
	h       *history.History
	kind    causalKind
	budget  *int
	n       int
	updates porder.Bitset
	omega   porder.Bitset
	// progPreds[e] = all strict program-order predecessors of e.
	progPreds []porder.Bitset

	committed porder.Bitset
	order     []int           // commit order (the total order ≤ for CCv)
	pos       []int           // commit position per event (-1 if not committed)
	pasts     []porder.Bitset // ⌊e⌋ \ {e} for committed events
	perEvent  [][]int         // witness linearization per event

	// memo holds fingerprints of failed states; stateHash is the
	// current state's fingerprint, maintained incrementally across
	// commit/uncommit (hashStack saves the pre-commit value per depth).
	// In parallel mode the commit-level entries live in shard instead —
	// a lock-sharded table the subtree tasks share — while memo keeps
	// serving the (epoch-mixed, task-private) per-event lin queries.
	// With canonical pruning active, the pruner's frame key replaces
	// the order-sensitive stateHash as the commit-level key, making the
	// same tables the canonicalization tables.
	memo      map[uint64]struct{}
	shard     *shardedMemo
	stateHash uint64
	hashStack []uint64

	// prune, when non-nil, is the pruning layer (see prune.go).
	prune pruner

	// feed, when non-nil, refills the budget in chunks from a shared
	// pool and carries interrupt/cancel signals (see parallel.go).
	feed *feeder

	// next is the continuation commitWith invokes after a successful
	// commit: cs.run for the ordinary recursive search, or the
	// frontier expander's depth-limited descent in parallel mode.
	// Routing the recursion through one field keeps tryCommit the
	// single source of the (event, visibility subset) enumeration
	// order, which the parallel determinism guarantee depends on.
	next func() bool

	frames []csFrame

	// Reusable per-event check machinery: one linearization engine for
	// the whole search (epoch-separated memo), plus scratch for the
	// include/visible projections. The engine's preds slice is cs.pasts
	// itself: commitWith publishes the tentative past in pasts[e] before
	// checkEvent runs, so no per-event predecessor indirection exists.
	ls      linSearcher
	include porder.Bitset
	visible porder.Bitset

	budgetVal int // backing store for budget when the caller has none
}

func newCausalSearcher(h *history.History, kind causalKind, maxNodes int, prune Prune) *causalSearcher {
	n := h.N()
	cs := &causalSearcher{
		h:         h,
		kind:      kind,
		n:         n,
		updates:   h.UpdatesView(),
		omega:     h.OmegaView(),
		progPreds: h.ProgPreds(),
		pasts:     make([]porder.Bitset, n),
		perEvent:  make([][]int, n),
		memo:      make(map[uint64]struct{}),
		stateHash: xhash.Seed,
		frames:    make([]csFrame, n),
		budgetVal: maxNodes,
	}
	cs.budget = &cs.budgetVal
	cs.ls = linSearcher{
		t: h.ADT, events: h.Events, budget: cs.budget,
		// The causal search issues one linearization query per candidate
		// commit over overlapping pasts, so transition caching pays for
		// itself (see linSearcher.steps). One failed-state memo serves
		// both searches: the commit-level keys are order-sensitive folds
		// (or the pruner's canonical folds) and the per-event keys are
		// epoch-mixed, so the two key populations cannot collide except
		// by 64-bit accident.
		memo:  cs.memo,
		steps: make(map[stepKey]stepVal),
	}
	// All fixed-size working memory comes out of two slabs: one for
	// every scratch bitset (per-depth frames plus the searcher's own),
	// one for every scratch int slice. This keeps construction at a
	// handful of allocations regardless of history size. The int slab
	// is quadratic in n, so beyond eagerFrameLimit events the frames'
	// int buffers start nil instead and grow on first use at each
	// depth (append-amortized) — exact checking at that scale is only
	// feasible for trivially-satisfiable histories anyway, and an
	// upfront O(n²) allocation would dwarf the search's real footprint.
	words := (n + 63) / 64
	bitSlab := make(porder.Bitset, (2*n+5)*words+n)
	cut := func(k int) porder.Bitset {
		b := bitSlab[: k*words : k*words]
		bitSlab = bitSlab[k*words:]
		return b
	}
	cs.committed = cut(1)
	cs.include = cut(1)
	cs.visible = cut(1)
	cs.ls.done = cut(1)
	cs.ls.scratch = cut(1)
	for i := range cs.frames {
		cs.frames[i] = csFrame{forced: cut(1), past: cut(1)}
	}
	cs.hashStack = []uint64(bitSlab[:0:n]) // remaining slab words back the hash stack
	if n <= eagerFrameLimit {
		intSlab := make([]int, n*(3*n+1)+2*n)
		cutInts := func(k int) []int {
			s := intSlab[:0:k]
			intSlab = intSlab[k:]
			return s
		}
		for i := range cs.frames {
			cs.frames[i].cand = cutInts(n)
			cs.frames[i].x = cutInts(n)
			cs.frames[i].lin = cutInts(n + 1)
		}
		cs.order = cutInts(n)
		cs.pos = cutInts(n)[:n]
	} else {
		cs.order = make([]int, 0, n)
		cs.pos = make([]int, n)
	}
	for i := range cs.pos {
		cs.pos[i] = -1
	}
	if pr := newPruner(cs, prune); pr != nil {
		cs.prune = pr
	}
	cs.next = cs.run
	return cs
}

// run performs the search and reports success.
func (cs *causalSearcher) run() bool {
	if len(cs.order) == cs.n {
		return true
	}
	*cs.budget--
	if *cs.budget < 0 && !cs.feed.refill() {
		return false
	}
	// stateHash fingerprints the committed set plus each committed
	// event's past, folded in commit order — the same information the
	// memo used to key on as a built string. Two branches that
	// committed the same events with the same pasts are interchangeable
	// for the remaining search (for CCv the commit order also fixes
	// past linearizations, but those are functions of the pasts and
	// positions, which the order-sensitive fold captures). A canonical
	// pruner coarsens the key further — interchangeable frames reached
	// through different interleavings then share one entry.
	key := cs.stateHash
	canon := false
	if cs.prune != nil {
		if k, ok := cs.prune.frameKey(); ok {
			key, canon = k, true
		}
	}
	if cs.shard != nil {
		if cs.shard.failed(key) {
			if canon {
				cs.prune.canonHit()
			}
			return false
		}
	} else if _, failed := cs.memo[key]; failed {
		if canon {
			cs.prune.canonHit()
		}
		return false
	}
	if cs.frontier() {
		return true
	}
	if *cs.budget >= 0 {
		if cs.shard != nil {
			cs.shard.add(key)
		} else {
			cs.memo[key] = struct{}{}
		}
	}
	return false
}

// frontier enumerates the events eligible to commit at the current
// frame — uncommitted, program predecessors committed, ω-events only
// once every update is in — in increasing id order, trying each
// through tryCommit. The id order is the enumeration order the
// parallel determinism guarantee and the sleep-set rule's
// lexicographic argument both build on. It reports whether some
// continuation succeeded; on budget exhaustion it unwinds early.
func (cs *causalSearcher) frontier() bool {
	allUpdatesIn := cs.updates.SubsetOf(cs.committed)
	for e := 0; e < cs.n; e++ {
		if cs.committed.Has(e) {
			continue
		}
		if !cs.progPreds[e].SubsetOf(cs.committed) {
			continue
		}
		if cs.omega.Has(e) && !allUpdatesIn {
			continue // ω-events observe every update
		}
		if cs.prune != nil && !cs.prune.admitEvent(e) {
			continue
		}
		if cs.tryCommit(e) {
			return true
		}
		if *cs.budget < 0 {
			return false
		}
	}
	return false
}

// tryCommit enumerates visibility choices for e and recurses.
func (cs *causalSearcher) tryCommit(e int) bool {
	fr := &cs.frames[len(cs.order)]

	// forced = program predecessors and their pasts.
	forced := fr.forced
	forced.ClearAll()
	for wi, w := range cs.progPreds[e] {
		for w != 0 {
			pr := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			forced.Set(pr)
			forced.UnionWith(cs.pasts[pr])
		}
	}

	// Candidate extra updates: committed updates not already forced.
	fr.cand = fr.cand[:0]
	for wi := range cs.committed {
		w := cs.committed[wi] & cs.updates[wi] &^ forced[wi]
		for w != 0 {
			fr.cand = append(fr.cand, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}

	if cs.omega.Has(e) {
		// Forced full visibility of all updates.
		return cs.commitWith(e, fr, fr.cand)
	}

	// Enumerate subsets of the candidates lazily, smallest first:
	// minimal visibility is most often sufficient and keeps later
	// events freer. Within each popcount class, Gosper's hack yields
	// the masks in increasing numeric order, so the enumeration order
	// is identical to the materialized popcount-sorted enumeration it
	// replaces — without the 2^k mask slice.
	k := len(fr.cand)
	if k > maxSubsetCands {
		// Unrealistically wide; treat as budget exhaustion.
		cs.exhaust()
		return false
	}
	limit := uint64(1) << k
	for c := 0; c <= k; c++ {
		m := uint64(1)<<c - 1 // smallest mask with popcount c
		for {
			*cs.budget--
			if *cs.budget < 0 && !cs.feed.refill() {
				return false
			}
			fr.x = fr.x[:0]
			for mm := m; mm != 0; mm &= mm - 1 {
				fr.x = append(fr.x, fr.cand[bits.TrailingZeros64(mm)])
			}
			if cs.commitWith(e, fr, fr.x) {
				return true
			}
			if m == 0 {
				break
			}
			// Gosper's hack: next mask with the same popcount.
			u := m & -m
			w := m + u
			m = w | (((m ^ w) / u) >> 2)
			if m >= limit {
				break
			}
		}
	}
	return false
}

// commitWith builds e's past from the forced set plus the chosen extra
// updates x, checks the criterion, and recurses on success. The
// tentative past is published in pasts[e] up front so that the
// linearization engine can read predecessor sets straight from
// cs.pasts (e is not yet committed, so nothing else reads it).
func (cs *causalSearcher) commitWith(e int, fr *csFrame, x []int) bool {
	past := fr.past
	past.CopyFrom(fr.forced)
	for _, u := range x {
		past.Set(u)
		past.UnionWith(cs.pasts[u])
	}
	if cs.prune != nil && !cs.prune.admitChoice(e, past) {
		return false
	}
	cs.pasts[e] = past
	lin, ok := cs.checkEvent(e, past, fr)
	if !ok {
		cs.pasts[e] = nil
		return false
	}
	cs.push(e, past, lin)
	if cs.next() {
		return true
	}
	cs.pop(e)
	return false
}

// push performs the commit bookkeeping for e once checkEvent accepted
// it: pasts[e] must already hold the (frame-aliased) past. pop undoes
// it. The pair is shared by the sequential recursion (commitWith), the
// parallel frontier expansion and the per-task prefix replay, so all
// three maintain the state — including the incremental fingerprints,
// the pruner's included — identically.
func (cs *causalSearcher) push(e int, past porder.Bitset, lin []int) {
	cs.committed.Set(e)
	cs.pos[e] = len(cs.order)
	cs.order = append(cs.order, e)
	cs.perEvent[e] = lin
	cs.hashStack = append(cs.hashStack, cs.stateHash)
	ph := past.Hash64()
	cs.stateHash = xhash.Mix(xhash.Mix(cs.stateHash, uint64(e)), ph)
	if cs.prune != nil {
		cs.prune.pushed(e, ph)
	}
}

func (cs *causalSearcher) pop(e int) {
	if cs.prune != nil {
		cs.prune.popped()
	}
	cs.stateHash = cs.hashStack[len(cs.hashStack)-1]
	cs.hashStack = cs.hashStack[:len(cs.hashStack)-1]
	cs.order = cs.order[:len(cs.order)-1]
	cs.pos[e] = -1
	cs.committed.Clear(e)
	cs.pasts[e] = nil
	cs.perEvent[e] = nil
}

// exhaust forces the search to unwind as budget-exhausted.
func (cs *causalSearcher) exhaust() {
	*cs.budget = -1
	if cs.feed != nil {
		cs.feed.exhausted = true
	}
}

// pruneStats returns the pruning counters accumulated by this
// searcher, zero when pruning is off.
func (cs *causalSearcher) pruneStats() PruneStats {
	if cs.prune == nil {
		return PruneStats{}
	}
	return cs.prune.snapshot()
}

// explored returns the number of nodes this searcher consumed out of
// an initial budget of `total`, whether the countdown was local or
// routed through a feeder's chunked pool.
func (cs *causalSearcher) explored(total int) int64 {
	var pool *budgetPool
	if cs.feed != nil {
		pool = cs.feed.pool
	}
	return spentNodes(total, pool, cs.budgetVal)
}

// witness clones the committed pasts and per-event linearizations out
// of the searcher's scratch frames (via two slabs) so the returned
// Witness owns its memory. It must only be called after a successful
// run.
func (cs *causalSearcher) witness() *Witness {
	words := (cs.n + 63) / 64
	pastSlab := make(porder.Bitset, cs.n*words)
	pasts := make([]porder.Bitset, len(cs.pasts))
	for i, p := range cs.pasts {
		if p != nil {
			row := pastSlab[:words:words]
			pastSlab = pastSlab[words:]
			copy(row, p)
			pasts[i] = row
		}
	}
	total := cs.n
	for _, l := range cs.perEvent {
		total += len(l)
	}
	linSlab := make([]int, total)
	order := linSlab[:0:cs.n]
	linSlab = linSlab[cs.n:]
	perEvent := make([][]int, len(cs.perEvent))
	for i, l := range cs.perEvent {
		if l != nil {
			row := linSlab[:len(l):len(l)]
			linSlab = linSlab[len(l):]
			copy(row, l)
			perEvent[i] = row
		}
	}
	return &Witness{
		Order:    append(order, cs.order...),
		Pasts:    pasts,
		PerEvent: perEvent,
	}
}
