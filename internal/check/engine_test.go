package check_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/history"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/workload"
)

// TestSequentialExecutionsAreSC: any history obtained by running the
// ADT sequentially and splitting the operations across processes in
// execution order is sequentially consistent — the checkers must accept
// all ground-truth positives (quick).
func TestSequentialExecutionsAreSC(t *testing.T) {
	w2 := adt.NewWindowStream(2)
	f := func(choices []uint8, procBits []bool) bool {
		if len(choices) > 8 {
			choices = choices[:8]
		}
		b := history.NewBuilder(w2)
		q := w2.Init()
		for i, ch := range choices {
			var in spec.Input
			if ch%2 == 0 {
				in = spec.NewInput("w", int(ch%5)+1)
			} else {
				in = spec.NewInput("r")
			}
			var out spec.Output
			q, out = w2.Step(q, in)
			proc := 0
			if i < len(procBits) && procBits[i] {
				proc = 1
			}
			b.Append(proc, spec.NewOp(in, out))
		}
		h := b.Build()
		ok, _, err := check.SC(context.Background(), h, check.Options{})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSCWitnessIsValid: the witness linearization returned by the SC
// checker must itself be admissible and respect program order.
func TestSCWitnessIsValid(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := workload.Config{Procs: 2, Ops: 8, Streams: 2, Size: 2, WriteRatio: 0.5, Seed: seed, MaxStepsBetween: 6}
		res := workload.Run(core.ModeCC, cfg)
		h := res.Cluster.Recorder.History()
		ok, w, err := check.SC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // CC histories need not be SC
		}
		if len(w.Linearization) != h.N() {
			t.Fatalf("witness misses events: %v", w.Linearization)
		}
		if !spec.Admissible(h.ADT, h.Ops(w.Linearization)) {
			t.Fatalf("witness linearization inadmissible: %v", w.Linearization)
		}
		pos := make([]int, h.N())
		for i, e := range w.Linearization {
			pos[e] = i
		}
		for i := 0; i < h.N(); i++ {
			h.Prog().Succ[i].ForEach(func(j int) {
				if pos[i] >= pos[j] {
					t.Fatalf("witness violates program order %d -> %d", i, j)
				}
			})
		}
	}
}

// TestCCWitnessPastsAreDownwardClosed: the causal pasts reported by the
// CC checker form a genuine causal order — downward closed and
// containing the program order.
func TestCCWitnessPastsAreDownwardClosed(t *testing.T) {
	f, _ := paperFixture3e()
	h := f
	ok, w, err := check.CC(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("CC(3e history variant) = %v %v", ok, err)
	}
	for e := 0; e < h.N(); e++ {
		past := w.Pasts[e]
		if past == nil {
			t.Fatalf("event %d has no past", e)
		}
		// Contains program past.
		h.Prog().Preds()[e].ForEach(func(p int) {
			if !past.Has(p) {
				t.Fatalf("event %d past misses program predecessor %d", e, p)
			}
		})
		// Downward closed.
		past.ForEach(func(f int) {
			w.Pasts[f].ForEach(func(g int) {
				if !past.Has(g) {
					t.Fatalf("past of %d not closed: %d in, %d out", e, f, g)
				}
			})
		})
	}
}

func paperFixture3e() (*history.History, bool) {
	h := history.MustParse(`adt: Queue
p0: push(1) pop/1
p1: push(2) pop/2`)
	return h, true
}

// TestBudgetExhaustion: a tiny budget must surface ErrBudget rather
// than a wrong verdict.
func TestBudgetExhaustion(t *testing.T) {
	h := history.MustParse(`adt: W2
p0: w(1) r/(0,1) w(3) r/(1,3)
p1: w(2) r/(0,2) w(4) r/(2,4)`)
	_, _, err := check.CC(context.Background(), h, check.Options{MaxNodes: 5})
	if err != check.ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// TestOmegaUpdateRejected: ω-events must be pure queries.
func TestOmegaUpdateRejected(t *testing.T) {
	h := history.MustParse(`adt: W2
p0: w(1)*`)
	for _, c := range []check.Criterion{check.CritSC, check.CritPC, check.CritWCC, check.CritCC, check.CritCCv, check.CritEC, check.CritUC} {
		if _, _, err := check.Check(context.Background(), c, h, check.Options{}); err != check.ErrOmegaUpdate {
			t.Errorf("%v: err = %v, want ErrOmegaUpdate", c, err)
		}
	}
}

// TestUCSeparation: update consistency sits strictly between EC and
// CCv. A history whose ω-reads agree but cannot be explained by any
// update order is EC but not UC.
func TestUCSeparation(t *testing.T) {
	// Both processes converge on reading (2,1), but program order of
	// the single writer forces w(1) before w(2), so the only final
	// windows an update order allows is (1,2).
	h := history.MustParse(`adt: W2
p0: w(1) w(2) r/(2,1)*
p1: r/(2,1)*`)
	ec, _, err := check.EC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	uc, _, err := check.UC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ec || uc {
		t.Fatalf("want EC ∧ ¬UC, got EC=%v UC=%v", ec, uc)
	}
}

// TestUCWitness: on a satisfiable instance UC returns the update order.
func TestUCWitness(t *testing.T) {
	h := history.MustParse(`adt: W2
p0: w(1) r/(1,2)*
p1: w(2) r/(1,2)*`)
	ok, w, err := check.UC(context.Background(), h, check.Options{})
	if err != nil || !ok {
		t.Fatalf("UC = %v %v", ok, err)
	}
	if len(w.Linearization) != 4 { // two updates + two ω reads
		t.Fatalf("witness = %v", w.Linearization)
	}
}

// TestECDisagreementDetected: different ω outputs on the same input
// violate EC.
func TestECDisagreementDetected(t *testing.T) {
	h := history.MustParse(`adt: W2
p0: w(1) r/(0,1)*
p1: w(2) r/(0,2)*`)
	ok, _, err := check.EC(context.Background(), h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("diverging ω reads accepted as EC")
	}
}

// TestECNoOmegaTrivial: a history without ω-events is trivially EC and
// UC (nothing is observed at infinity).
func TestECNoOmegaTrivial(t *testing.T) {
	h := history.MustParse(`adt: W2
p0: w(1) r/(0,2)`)
	for _, c := range []check.Criterion{check.CritEC, check.CritUC} {
		ok, _, err := check.Check(context.Background(), c, h, check.Options{})
		if err != nil || !ok {
			t.Fatalf("%v on ω-free history = %v %v, want true", c, ok, err)
		}
	}
}

// TestFormatLin renders witness words in the paper's notation.
func TestFormatLin(t *testing.T) {
	h := history.MustParse(`adt: W2
p0: w(1) r/(0,1)`)
	vis := h.ProcEvents(0)
	got := check.FormatLin(h, []int{0, 1}, vis)
	if got != "w(1)/⊥.r/(0,1)" {
		t.Fatalf("FormatLin = %q", got)
	}
	none := check.FormatLin(h, []int{0, 1}, nil)
	if none != "w(1)/⊥.r/(0,1)" {
		t.Fatalf("FormatLin(nil vis) = %q", none)
	}
}

// TestCheckerDeterminism: same history, same verdict and same witness
// across repeated invocations (the searches are deterministic).
func TestCheckerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		cfg := workload.Config{Procs: 3, Ops: 8, Streams: 2, Size: 2, WriteRatio: 0.5, Seed: rng.Int63(), MaxStepsBetween: 3}
		res := workload.Run(core.ModeCC, cfg)
		h := res.Cluster.Recorder.History()
		ok1, w1, err1 := check.CC(context.Background(), h, check.Options{})
		ok2, w2, err2 := check.CC(context.Background(), h, check.Options{})
		if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
			t.Fatal("nondeterministic verdict")
		}
		if ok1 {
			for e := range w1.PerEvent {
				if len(w1.PerEvent[e]) != len(w2.PerEvent[e]) {
					t.Fatal("nondeterministic witness")
				}
			}
		}
	}
}

// TestGeneralProgramOrders: the checkers accept histories whose program
// order is a general DAG (fork/join), not just disjoint chains
// (Sec. 2.2's general model).
func TestGeneralProgramOrders(t *testing.T) {
	w1 := adt.NewWindowStream(1)
	b := history.NewBuilder(w1)
	root := b.Append(0, spec.NewOp(spec.NewInput("w", 5), spec.Bot))
	left := b.Append(1, spec.NewOp(spec.NewInput("r"), spec.IntOutput(5)))
	right := b.Append(2, spec.NewOp(spec.NewInput("r"), spec.IntOutput(5)))
	join := b.Append(3, spec.NewOp(spec.NewInput("r"), spec.IntOutput(5)))
	b.Edge(root, left)
	b.Edge(root, right)
	b.Edge(left, join)
	b.Edge(right, join)
	h := b.Build()
	for _, c := range []check.Criterion{check.CritSC, check.CritCC, check.CritWCC, check.CritCCv} {
		ok, _, err := check.Check(context.Background(), c, h, check.Options{})
		if err != nil || !ok {
			t.Fatalf("%v on fork/join history = %v %v, want true", c, ok, err)
		}
	}
}
