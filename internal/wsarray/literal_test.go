package wsarray_test

import (
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/sim"
	"github.com/paper-repro/ccbm/internal/wsarray"
)

// TestFig5LiteralIsBroken is the ablation behind our Fig. 5 fidelity
// note (see wsarray.NewCCvArrayLiteral): running
// the insertion loop exactly as the HAL text extraction prints it
// files a strictly-newest value one slot short of the end, so the
// ascending-timestamp invariant — and with it convergence — breaks on
// some schedule, while the corrected insertion never does (invariant
// and convergence are asserted over the same schedules in
// TestFig5TimestampInvariant and TestFig5AlwaysCausallyConvergent).
func TestFig5LiteralIsBroken(t *testing.T) {
	brokenSomewhere := false
	for seed := int64(1); seed <= 40 && !brokenSomewhere; seed++ {
		nw := sim.New(3, seed)
		arrs := make([]*wsarray.CCvArray, 3)
		for i := range arrs {
			arrs[i] = wsarray.NewCCvArrayLiteral(nw, i, 1, 3, nil)
		}
		rng := rand.New(rand.NewSource(seed * 13))
		for i := 0; i < 20; i++ {
			arrs[rng.Intn(3)].Write(0, i+1)
			for d := rng.Intn(4); d > 0; d-- {
				nw.Step()
			}
		}
		nw.Run(0)
		// Either the timestamp invariant broke or replicas diverged.
		for _, a := range arrs {
			ts := a.Timestamps(0)
			for y := 1; y < len(ts); y++ {
				if ts[y].Less(ts[y-1]) {
					brokenSomewhere = true
				}
			}
		}
		for p := 1; p < 3; p++ {
			if arrs[p].StateKey() != arrs[0].StateKey() {
				brokenSomewhere = true
			}
		}
	}
	if !brokenSomewhere {
		t.Fatal("the literal pseudocode behaved correctly on 40 schedules; the fidelity note would be unjustified")
	}
}
