package wsarray_test

import (
	"context"
	"math/rand"
	"testing"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/core"
	"github.com/paper-repro/ccbm/internal/sim"
	"github.com/paper-repro/ccbm/internal/trace"
	"github.com/paper-repro/ccbm/internal/wsarray"
)

// ccCluster wires n Fig. 4 replicas on a simulated network.
func ccCluster(n, streams, size int, seed int64) (*sim.Network, []*wsarray.CCArray, *trace.Recorder) {
	nw := sim.New(n, seed)
	rec := trace.New(adt.NewWindowArray(streams, size), n)
	arrs := make([]*wsarray.CCArray, n)
	for i := range arrs {
		arrs[i] = wsarray.NewCCArray(nw, i, streams, size, rec)
	}
	return nw, arrs, rec
}

// ccvCluster wires n Fig. 5 replicas on a simulated network.
func ccvCluster(n, streams, size int, seed int64) (*sim.Network, []*wsarray.CCvArray, *trace.Recorder) {
	nw := sim.New(n, seed)
	rec := trace.New(adt.NewWindowArray(streams, size), n)
	arrs := make([]*wsarray.CCvArray, n)
	for i := range arrs {
		arrs[i] = wsarray.NewCCvArray(nw, i, streams, size, rec)
	}
	return nw, arrs, rec
}

// TestFig4AlwaysCausallyConsistent is experiment E4's verification leg:
// random adversarial schedules of the exact Fig. 4 algorithm always
// produce causally consistent histories (Prop. 6).
func TestFig4AlwaysCausallyConsistent(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		nw, arrs, rec := ccCluster(3, 2, 2, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		val := 1
		for i := 0; i < 9; i++ {
			p := rng.Intn(len(arrs))
			if rng.Intn(2) == 0 {
				arrs[p].Write(rng.Intn(2), val)
				val++
			} else {
				arrs[p].Read(rng.Intn(2))
			}
			for d := rng.Intn(4); d > 0; d-- {
				nw.Step()
			}
		}
		nw.Run(0)
		h := rec.History()
		ok, _, err := check.CC(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: Fig. 4 produced a non-CC history:\n%s", seed, h)
		}
	}
}

// TestFig5AlwaysCausallyConvergent is experiment E5's verification leg:
// random schedules of the exact Fig. 5 algorithm always produce
// causally convergent histories (Prop. 7), and all replicas converge
// after quiescence.
func TestFig5AlwaysCausallyConvergent(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		nw, arrs, rec := ccvCluster(3, 2, 2, seed)
		rng := rand.New(rand.NewSource(seed * 37))
		val := 1
		for i := 0; i < 9; i++ {
			p := rng.Intn(len(arrs))
			if rng.Intn(2) == 0 {
				arrs[p].Write(rng.Intn(2), val)
				val++
			} else {
				arrs[p].Read(rng.Intn(2))
			}
			for d := rng.Intn(4); d > 0; d-- {
				nw.Step()
			}
		}
		nw.Run(0)
		h := rec.History()
		ok, _, err := check.CCv(context.Background(), h, check.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: Fig. 5 produced a non-CCv history:\n%s", seed, h)
		}
		for p := 1; p < len(arrs); p++ {
			if arrs[p].StateKey() != arrs[0].StateKey() {
				t.Fatalf("seed %d: replicas %d and 0 diverged after quiescence", seed, p)
			}
		}
	}
}

// TestFig5TimestampInvariant: each stream's cells stay sorted by
// timestamp — the invariant the insertion loop maintains.
func TestFig5TimestampInvariant(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		nw, arrs, _ := ccvCluster(4, 3, 4, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			arrs[rng.Intn(4)].Write(rng.Intn(3), i+1)
			for d := rng.Intn(5); d > 0; d-- {
				nw.Step()
			}
		}
		nw.Run(0)
		for p, a := range arrs {
			for x := 0; x < 3; x++ {
				ts := a.Timestamps(x)
				for y := 1; y < len(ts); y++ {
					if ts[y].Less(ts[y-1]) {
						t.Fatalf("seed %d: replica %d stream %d timestamps out of order: %v", seed, p, x, ts)
					}
				}
			}
		}
	}
}

// TestFig5MatchesGenericCCv cross-validates the specialized Fig. 5
// algorithm against the generic timestamp-log CCv replica: same seed,
// same workload, same delivery schedule — every read must return the
// same window. This pins the window-trimming optimization (keeping only
// the k newest cells) to the reference semantics.
func TestFig5MatchesGenericCCv(t *testing.T) {
	const n, streams, size, ops = 3, 2, 3, 40
	for seed := int64(1); seed <= 10; seed++ {
		nwA, arrs, _ := ccvCluster(n, streams, size, seed)
		cB := core.NewCluster(n, adt.NewWindowArray(streams, size), core.ModeCCv, seed)
		rng := rand.New(rand.NewSource(seed * 101))
		val := 1
		for i := 0; i < ops; i++ {
			p := rng.Intn(n)
			if rng.Intn(2) == 0 {
				x := rng.Intn(streams)
				arrs[p].Write(x, val)
				cB.Invoke(p, "w", x, val)
				val++
			} else {
				x := rng.Intn(streams)
				got := arrs[p].Read(x)
				want := cB.Invoke(p, "r", x)
				for y := range got {
					if got[y] != want.Vals[y] {
						t.Fatalf("seed %d op %d: Fig.5 read %v, generic CCv read %v", seed, i, got, want.Vals)
					}
				}
			}
			steps := rng.Intn(4)
			for d := 0; d < steps; d++ {
				nwA.Step()
				cB.Net.Step()
			}
		}
		nwA.Run(0)
		cB.Settle()
	}
}

// TestFig4MatchesGenericCC does the same cross-validation for Fig. 4
// against the generic apply-on-causal-delivery replica.
func TestFig4MatchesGenericCC(t *testing.T) {
	const n, streams, size, ops = 3, 2, 3, 40
	for seed := int64(1); seed <= 10; seed++ {
		nwA, arrs, _ := ccCluster(n, streams, size, seed)
		cB := core.NewCluster(n, adt.NewWindowArray(streams, size), core.ModeCC, seed)
		rng := rand.New(rand.NewSource(seed * 103))
		val := 1
		for i := 0; i < ops; i++ {
			p := rng.Intn(n)
			if rng.Intn(2) == 0 {
				x := rng.Intn(streams)
				arrs[p].Write(x, val)
				cB.Invoke(p, "w", x, val)
				val++
			} else {
				x := rng.Intn(streams)
				got := arrs[p].Read(x)
				want := cB.Invoke(p, "r", x)
				for y := range got {
					if got[y] != want.Vals[y] {
						t.Fatalf("seed %d op %d: Fig.4 read %v, generic CC read %v", seed, i, got, want.Vals)
					}
				}
			}
			steps := rng.Intn(4)
			for d := 0; d < steps; d++ {
				nwA.Step()
				cB.Net.Step()
			}
		}
		nwA.Run(0)
		cB.Settle()
	}
}

// TestFalseCausality reproduces Sec. 6.2's observation: the history of
// Fig. 3c is causally consistent, yet the Fig. 4 algorithm can never
// produce it — causal reception implements "a little more than
// causality". Each process would have to read its own value as the
// NEWER of the two, which requires each write to be delivered at the
// other process after the local one, i.e. each message to overtake the
// other under causal broadcast with immediate local delivery; then the
// second read of either process cannot see its own write first.
func TestFalseCausality(t *testing.T) {
	// Exhaust all delivery schedules of the two-write scenario: p0
	// writes 1, p1 writes 2 concurrently; each then reads. Under Fig. 4
	// the read of p0 can be (0,1) [own only], (1,2) or (2,1) depending
	// on delivery, but the PAIR (r0, r1) = ((2,1), (1,2)) — Fig. 3c —
	// is unreachable.
	for seed := int64(0); seed < 200; seed++ {
		nw, arrs, _ := ccCluster(2, 1, 2, seed)
		arrs[0].Write(0, 1)
		arrs[1].Write(0, 2)
		// Random interleaving of deliveries with the reads.
		rng := rand.New(rand.NewSource(seed))
		for d := rng.Intn(3); d > 0; d-- {
			nw.Step()
		}
		r0 := arrs[0].Read(0)
		for d := rng.Intn(3); d > 0; d-- {
			nw.Step()
		}
		r1 := arrs[1].Read(0)
		nw.Run(0)
		if r0[0] == 2 && r0[1] == 1 && r1[0] == 1 && r1[1] == 2 {
			t.Fatalf("seed %d: Fig. 4 produced the Fig. 3c false-causality outcome", seed)
		}
	}
}
