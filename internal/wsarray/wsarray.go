// Package wsarray contains faithful transcriptions of the paper's two
// algorithms for an array of K window streams of size k: the causally
// consistent implementation of Fig. 4 and the causally convergent
// implementation of Fig. 5. They are the specialized counterparts of
// the generic core.Replica modes (which the tests cross-validate
// against); unlike the generic replicas they store only the k newest
// values per stream, exactly as the pseudocode does.
package wsarray

import (
	"sync"

	"github.com/paper-repro/ccbm/internal/adt"
	"github.com/paper-repro/ccbm/internal/broadcast"
	"github.com/paper-repro/ccbm/internal/net"
	"github.com/paper-repro/ccbm/internal/spec"
	"github.com/paper-repro/ccbm/internal/trace"
	"github.com/paper-repro/ccbm/internal/vclock"
)

// ccMsg is Fig. 4's Mess(x, v).
type ccMsg struct {
	X, V int
}

// CCArray is the algorithm of Fig. 4: a causally consistent array of K
// window streams of size k. Writes causally broadcast (x, v); upon
// delivery each process shifts the stream and appends the value; reads
// return the local stream. Every operation completes without waiting
// (wait-freedom, hence fault-tolerance).
type CCArray struct {
	mu  sync.Mutex
	id  int
	k   int
	str [][]int // stri ∈ N^{K×k}
	bc  *broadcast.Causal
	rec *trace.Recorder
}

// NewCCArray creates process id's replica (code for p_i in Fig. 4).
func NewCCArray(tr net.Transport, id, streams, size int, rec *trace.Recorder) *CCArray {
	a := &CCArray{id: id, k: size, rec: rec, str: make([][]int, streams)}
	for x := range a.str {
		a.str[x] = make([]int, size) // [0, ..., 0]
	}
	a.bc = broadcast.NewCausal(tr, id, a.onReceive)
	return a
}

// Read implements fun read(x): it simply returns the corresponding
// local state (Fig. 4 line 4).
func (a *CCArray) Read(x int) []int {
	a.mu.Lock()
	out := make([]int, a.k)
	copy(out, a.str[x])
	a.mu.Unlock()
	if a.rec != nil {
		a.rec.Record(a.id, spec.NewInput("r", x), spec.TupleOutput(out...))
	}
	return out
}

// Write implements fun write(x, v): causal broadcast Mess(x, v)
// (Fig. 4 line 7). The local application happens through the
// broadcast's immediate local delivery.
func (a *CCArray) Write(x, v int) {
	a.bc.Broadcast(ccMsg{X: x, V: v})
	if a.rec != nil {
		a.rec.Record(a.id, spec.NewInput("w", x, v), spec.Bot)
	}
}

// onReceive implements "on receive Mess(x, v)" (Fig. 4 lines 9-14):
// shift the old values and insert the new value at the end.
func (a *CCArray) onReceive(_ int, payload any) {
	m, ok := payload.(ccMsg)
	if !ok {
		return
	}
	a.mu.Lock()
	s := a.str[m.X]
	for y := 0; y <= a.k-2; y++ {
		s[y] = s[y+1]
	}
	s[a.k-1] = m.V
	a.mu.Unlock()
}

// StateKey fingerprints the local state for convergence measurements.
func (a *CCArray) StateKey() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return stateKey(a.str)
}

func stateKey(str [][]int) string {
	w := adt.NewWindowArray(len(str), len(str[0]))
	q := w.Init()
	for x, s := range str {
		for _, v := range s {
			q, _ = w.Step(q, spec.NewInput("w", x, v))
		}
	}
	return q.Key()
}

// ccvMsg is Fig. 5's Mess(x, v, vt, j).
type ccvMsg struct {
	X, V int
	TS   vclock.Timestamp
}

// ccvCell is one stream cell: a value and the timestamp of the write
// that produced it — Fig. 5's structure (v, (vt, j)).
type ccvCell struct {
	V  int
	TS vclock.Timestamp
}

// CCvArray is the algorithm of Fig. 5: a causally convergent array of
// K window streams of size k. Writes carry Lamport timestamps; upon
// delivery each process inserts the value at its timestamp-ordered
// position, so all replicas converge to the same state once they have
// the same writes, while causal broadcast keeps the shared order
// compatible with causality.
//
// Note on fidelity: the HAL text extraction of Fig. 5's insertion loop
// reads "while y < k−1 ∧ str[x][y][1] ≤ (vt,j)", which (inserting at
// y−1 afterwards) would file a strictly newest value one slot short of
// the end, breaking the ascending-timestamp invariant. We implement
// the evidently intended insertion — shift every strictly older cell
// left, insert at the vacated slot, drop the value if it is older than
// all k cells — which is the unique behaviour satisfying Prop. 7; the
// checker-backed tests (TestFig5AlwaysCausallyConvergent and the
// equivalence test against the generic CCv replica) confirm it.
type CCvArray struct {
	mu      sync.Mutex
	id      int
	k       int
	str     [][]ccvCell // stri ∈ N^{K×k×(1+2)}
	clock   vclock.Lamport
	bc      *broadcast.Causal
	rec     *trace.Recorder
	literal bool // use the (buggy) literal HAL pseudocode; see NewCCvArrayLiteral
}

// NewCCvArray creates process id's replica (code for p_i in Fig. 5).
func NewCCvArray(tr net.Transport, id, streams, size int, rec *trace.Recorder) *CCvArray {
	a := &CCvArray{id: id, k: size, rec: rec, str: make([][]ccvCell, streams)}
	for x := range a.str {
		a.str[x] = make([]ccvCell, size) // [0, (0,0)] cells
	}
	a.bc = broadcast.NewCausal(tr, id, a.onReceive)
	return a
}

// NewCCvArrayLiteral creates a replica that runs the insertion loop
// exactly as the HAL text extraction prints it ("while y < k−1 ∧
// str[x][y][1] ≤ (vt,j)" with the insert at y−1). It exists as an
// executable refutation of that reading: TestFig5LiteralIsBroken shows
// it violates the ascending-timestamp invariant and convergence, which
// is how we justified the corrected insertion in NewCCvArray.
func NewCCvArrayLiteral(tr net.Transport, id, streams, size int, rec *trace.Recorder) *CCvArray {
	a := &CCvArray{id: id, k: size, rec: rec, literal: true, str: make([][]ccvCell, streams)}
	for x := range a.str {
		a.str[x] = make([]ccvCell, size)
	}
	a.bc = broadcast.NewCausal(tr, id, a.onReceive)
	return a
}

// Read implements fun read(x): it strips the timestamps from the local
// state (Fig. 5 line 5).
func (a *CCvArray) Read(x int) []int {
	a.mu.Lock()
	out := make([]int, a.k)
	for y, c := range a.str[x] {
		out[y] = c.V
	}
	a.mu.Unlock()
	if a.rec != nil {
		a.rec.Record(a.id, spec.NewInput("r", x), spec.TupleOutput(out...))
	}
	return out
}

// Write implements fun write(x, v): causal broadcast of
// Mess(x, v, vtime+1, i) (Fig. 5 line 8).
func (a *CCvArray) Write(x, v int) {
	a.mu.Lock()
	ts := vclock.Timestamp{VT: a.clock.Time() + 1, PID: a.id}
	a.mu.Unlock()
	a.bc.Broadcast(ccvMsg{X: x, V: v, TS: ts})
	if a.rec != nil {
		a.rec.Record(a.id, spec.NewInput("w", x, v), spec.Bot)
	}
}

// onReceive implements "on receive Mess(x, v, vt, j)" (Fig. 5 lines
// 10-20): update the Lamport clock, then insert the value at its
// timestamp-ordered position in the stream, dropping it if it is older
// than every retained cell.
func (a *CCvArray) onReceive(_ int, payload any) {
	m, ok := payload.(ccvMsg)
	if !ok {
		return
	}
	a.mu.Lock()
	a.clock.Witness(m.TS.VT) // line 11: vtime ← max(vtime, vt)
	s := a.str[m.X]
	y := 0
	if a.literal {
		// Lines 12-19 verbatim from the HAL extraction: the loop bound
		// y < k-1 stops one shift short when the value is newer than
		// every retained cell, filing it at k-2 instead of k-1.
		for y < a.k-1 && s[y].TS.LessEq(m.TS) {
			s[y] = s[y+1]
			y++
		}
		if y != 0 {
			s[y-1] = ccvCell{V: m.V, TS: m.TS}
		}
		a.mu.Unlock()
		return
	}
	for y < a.k && s[y].TS.LessEq(m.TS) {
		if y+1 < a.k {
			s[y] = s[y+1]
		}
		y++
	}
	if y != 0 {
		s[y-1] = ccvCell{V: m.V, TS: m.TS} // line 18
	}
	a.mu.Unlock()
}

// StateKey fingerprints the visible (timestamp-stripped) local state.
func (a *CCvArray) StateKey() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	str := make([][]int, len(a.str))
	for x, s := range a.str {
		str[x] = make([]int, a.k)
		for y, c := range s {
			str[x][y] = c.V
		}
	}
	return stateKey(str)
}

// Timestamps returns the timestamp column of stream x (ascending if the
// invariant holds) — used by tests to check the sortedness invariant.
func (a *CCvArray) Timestamps(x int) []vclock.Timestamp {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]vclock.Timestamp, a.k)
	for y, c := range a.str[x] {
		out[y] = c.TS
	}
	return out
}
