package paperfig_test

import (
	"testing"

	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/paperfig"
)

func TestFixturesParse(t *testing.T) {
	figs := paperfig.Fig3()
	if len(figs) != 9 {
		t.Fatalf("Fig. 3 has %d sub-figures, want 9", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.Name] {
			t.Fatalf("duplicate fixture %s", f.Name)
		}
		seen[f.Name] = true
		h := f.History()
		if h.N() == 0 {
			t.Fatalf("%s: empty history", f.Name)
		}
		if len(f.Claims) == 0 {
			t.Fatalf("%s: no claims", f.Name)
		}
		for _, cl := range f.Claims {
			if cl.Criterion < check.CritEC || cl.Criterion > check.CritSC {
				t.Fatalf("%s: bad criterion %v", f.Name, cl.Criterion)
			}
		}
	}
}

// TestVerifyClaims runs the fixtures' claim oracle sequentially and
// with the causal searches forked over 4 subtree workers; the parallel
// pipeline must reproduce every caption verdict.
func TestVerifyClaims(t *testing.T) {
	for _, f := range paperfig.Fig3() {
		if err := f.VerifyClaims(check.Options{}); err != nil {
			t.Errorf("sequential: %v", err)
		}
		if err := f.VerifyClaims(check.Options{Parallelism: 4}); err != nil {
			t.Errorf("parallel: %v", err)
		}
	}
}

func TestFig3ByName(t *testing.T) {
	f, ok := paperfig.Fig3ByName("3c")
	if !ok || f.Name != "3c" {
		t.Fatalf("Fig3ByName(3c) = %v %v", f.Name, ok)
	}
	if _, ok := paperfig.Fig3ByName("9z"); ok {
		t.Fatal("Fig3ByName accepted a bogus name")
	}
}

// TestOmegaFlagsMatchClaims: only fixtures with ω-reading claims carry
// ω flags, and stripping them yields ω-free histories.
func TestOmegaFlagsMatchClaims(t *testing.T) {
	for _, f := range paperfig.Fig3() {
		h := f.History()
		needsOmega := false
		for _, cl := range f.Claims {
			if cl.OmegaReading {
				needsOmega = true
			}
		}
		if needsOmega && !h.HasOmega() {
			t.Errorf("%s: ω-reading claim but no ω flags", f.Name)
		}
		if f.FiniteHistory().HasOmega() {
			t.Errorf("%s: FiniteHistory still has ω flags", f.Name)
		}
	}
}

func TestFig2HistoryShape(t *testing.T) {
	h, extra := paperfig.Fig2History()
	if h.N() != 12 || len(h.Processes()) != 3 {
		t.Fatalf("Fig. 2 history: %d events, %d processes", h.N(), len(h.Processes()))
	}
	if len(extra) == 0 {
		t.Fatal("Fig. 2 needs cross-process causal edges")
	}
	if check.CausalOrderFrom(h, extra) == nil {
		t.Fatal("Fig. 2 causal edges are cyclic")
	}
}
