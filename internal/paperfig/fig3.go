// Package paperfig encodes the paper's figures as executable fixtures:
// the nine example histories of Fig. 3 with their caption claims, and
// the abstract 12-event history of Fig. 2 used for the time-zone
// illustration. Tests, benchmarks and cmd/ccexperiments all consume
// these fixtures, so the reproduction of the paper's "evaluation" is
// centralized here.
//
// Source fidelity: the HAL text extraction of Fig. 3 is partially
// garbled (sub-figure (b)'s labels disagree between the figure and the
// prose of Sec. 3.2, and (g) is only sketched). Each fixture records
// which reading was encoded. Histories whose caption claims rely on
// the infinite-execution interpretation (cofiniteness of causal
// orders, Def. 7) carry ω flags on their final reads; the experiment
// battery reports classifications under both the finite and ω readings.
package paperfig

import (
	"context"
	"fmt"

	"github.com/paper-repro/ccbm/internal/check"
	"github.com/paper-repro/ccbm/internal/history"
)

// Claim is a caption claim: the history satisfies (or not) a criterion.
type Claim struct {
	Criterion check.Criterion
	Holds     bool
	// OmegaReading marks claims that only hold under the infinite
	// (ω-flagged) interpretation of the drawn history.
	OmegaReading bool
}

// Fixture is one sub-figure of Fig. 3.
type Fixture struct {
	Name    string // e.g. "3a"
	Caption string // the paper's caption, e.g. "W2: CCv, not PC"
	Text    string // history in the parser's format (ω flags included)
	Claims  []Claim
	Notes   string // reconstruction notes for garbled sub-figures
}

// History parses the fixture's history (panics only on programmer
// error: the fixtures are compile-time constants exercised by tests).
func (f Fixture) History() *history.History { return history.MustParse(f.Text) }

// FiniteHistory returns the fixture's history with ω flags stripped —
// the literal finite prefix as drawn.
func (f Fixture) FiniteHistory() *history.History { return f.History().StripOmega() }

// Fig3 returns the nine sub-figures of Fig. 3.
func Fig3() []Fixture {
	return []Fixture{
		{
			Name:    "3a",
			Caption: "W2: CCv, not PC",
			Text: `adt: W2
p0: w(1) r/(0,1) r/(1,2)*
p1: w(2) r/(0,2) r/(1,2)*`,
			Claims: []Claim{
				{check.CritCCv, true, false},
				{check.CritPC, false, false},
			},
			Notes: "Prose (Sec. 3.2) gives all six linearizations; the final reads repeat forever (the convergence discussion), hence ω flags.",
		},
		{
			Name:    "3b",
			Caption: "W2: PC, not WCC",
			Text: `adt: W2
p0: w(1) r/(0,1)*
p1: w(2) r/(0,2)*`,
			Claims: []Claim{
				// PC holds for the literal finite prefix; the WCC
				// refutation needs cofiniteness, i.e. the ω reading
				// (on the ω reading PC fails too — the figure's two
				// claims use the two readings).
				{check.CritPC, true, false},
				{check.CritWCC, false, true},
			},
			Notes: "Figure text garbled (prose mentions r/(2,1), figure shows r/(0,2)); encoded as the figure shows. Without ω flags every finite history whose processes are locally consistent is WCC (causal order = program order), so the caption's 'not WCC' is the ω reading.",
		},
		{
			Name:    "3c",
			Caption: "W2: CC, not CCv",
			Text: `adt: W2
p0: w(1) r/(2,1)
p1: w(2) r/(1,2)`,
			Claims: []Claim{
				{check.CritCC, true, false},
				{check.CritCCv, false, false},
			},
		},
		{
			Name:    "3d",
			Caption: "W2: SC",
			Text: `adt: W2
p0: w(1) r/(0,1)
p1: w(2) r/(1,2)`,
			Claims: []Claim{
				{check.CritSC, true, false},
			},
		},
		{
			Name:    "3e",
			Caption: "Q: WCC and PC, not CC",
			Text: `adt: Queue
p0: push(1) pop/1 pop/1 push(3)
p1: push(2) pop/3 push(1)`,
			Claims: []Claim{
				{check.CritWCC, true, false},
				{check.CritPC, true, false},
				{check.CritCC, false, false},
			},
			Notes: "Events recovered from the prose's two pipelined linearizations.",
		},
		{
			Name:    "3f",
			Caption: "Q: CC, not SC",
			Text: `adt: Queue
p0: pop/1 pop/_
p1: push(1) push(2) pop/1 pop/_`,
			Claims: []Claim{
				{check.CritCC, true, false},
				{check.CritSC, false, false},
			},
			Notes: "pop/_ is pop on an empty queue returning ⊥. The history shows CC neither guarantees existence (2 is never popped) nor unicity (1 is popped twice).",
		},
		{
			Name:    "3g",
			Caption: "Q': CC, not SC",
			Text: `adt: Queue2
p0: hd/1 rh(1) hd/2 rh(2)
p1: push(1) push(2) hd/1 rh(1) hd/2 rh(2)`,
			Claims: []Claim{
				{check.CritCC, true, false},
			},
			Notes: "Reconstruction from the garbled figure; the drawn events also admit a sequentially consistent linearization (rh(1) is a no-op when the head is 2), so the caption's 'not SC' is not checkable on this reconstruction and is omitted from the claims. The sub-figure's point — hd/rh never loses elements — is exercised by the jobqueue example and TestFig3gNoLostValues.",
		},
		{
			Name:    "3h",
			Caption: "M[a-e]: CCv, not CC",
			Text: `adt: M[a-e]
p0: wa(1) wc(2) wd(1) rb/0 re/1 rc/3
p1: wb(1) wc(3) we(1) ra/0 rd/1 rc/3`,
			Claims: []Claim{
				{check.CritCCv, true, false},
				{check.CritCC, false, false},
			},
		},
		{
			Name:    "3i",
			Caption: "M[a-d]: CM, not CC",
			Text: `adt: M[a-d]
p0: wa(1) wa(2) wb(3) rd/3 rc/1 wa(1)
p1: wc(1) wc(2) wd(3) rb/3 ra/1 wc(1)`,
			Claims: []Claim{
				{check.CritCM, true, false},
				{check.CritCC, false, false},
			},
			Notes: "The duplicated writes (wa(1) twice on p0, wc(1) twice on p1) let a writes-into order bind each read to the wrong write (Sec. 4.2): causal memory accepts the history while causal consistency rejects it.",
		},
	}
}

// VerifyClaims checks every caption claim of the fixture against the
// exact checkers and returns the first mismatch (or checker error) as
// a non-nil error. opt flows through to the checkers, so callers can
// pick budgets and — via Options.Parallelism — fan the causal searches
// out over all cores. It is the pass/fail claim oracle used by the
// tests; tools that need each verdict individually (cmd/ccexperiments'
// E3 table, cmd/ccbench's timing loop) iterate Claims themselves.
func (f Fixture) VerifyClaims(opt check.Options) error {
	return f.VerifyClaimsContext(context.Background(), opt)
}

// VerifyClaimsContext is VerifyClaims under a caller-controlled
// context: cancellation or deadline expiry aborts the claim loop with
// ctx.Err().
func (f Fixture) VerifyClaimsContext(ctx context.Context, opt check.Options) error {
	omega := f.History()
	finite := f.FiniteHistory()
	for _, cl := range f.Claims {
		h := finite
		if cl.OmegaReading {
			h = omega
		}
		got, _, err := check.Check(ctx, cl.Criterion, h, opt)
		if err != nil {
			return fmt.Errorf("fig %s: %v: %w", f.Name, cl.Criterion, err)
		}
		if got != cl.Holds {
			return fmt.Errorf("fig %s: %v = %v, caption claims %v", f.Name, cl.Criterion, got, cl.Holds)
		}
	}
	return nil
}

// Fig3ByName returns the named fixture.
func Fig3ByName(name string) (Fixture, bool) {
	for _, f := range Fig3() {
		if f.Name == name {
			return f, true
		}
	}
	return Fixture{}, false
}

// Fig2History returns a 12-event, 3-process history in the shape of
// Fig. 2 (σ1..σ12 laid out three processes by four events), over a
// 3-register memory so that it is concrete. The causal order used by
// the time-zone demonstration adds the two message-style edges that the
// figure draws between processes around the "present" event σ7.
func Fig2History() (*history.History, [][2]int) {
	h := history.MustParse(`adt: M[x,y,z]
p0: wx(2) wx(6) rx/9 wx(12)
p1: wy(3) ry/5 wy(7) ry/10
p2: wz(1) rz/4 wz(8) wz(11)`)
	// Extra causal edges (beyond program order): p2's σ4 → p1's σ7 and
	// p1's σ5 → p0's σ9-slot event, mirroring the figure's diagonals.
	// Events are numbered row-major: p0 = 0..3, p1 = 4..7, p2 = 8..11.
	edges := [][2]int{{9, 6}, {5, 2}, {1, 7}, {6, 3}}
	return h, edges
}
